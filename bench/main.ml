(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section VI) plus the ablations of DESIGN.md,
   and runs Bechamel micro-benchmarks of the substrate costs.

   Usage:
     dune exec bench/main.exe             -- everything, full windows
     dune exec bench/main.exe -- --quick  -- everything, short windows
     dune exec bench/main.exe -- --only fig7a,fig12
     dune exec bench/main.exe -- --skip-micro | --only-micro
     dune exec bench/main.exe -- --audit     -- safety-audit every run
     dune exec bench/main.exe -- --metrics BENCH_rbft.json
                                          -- machine-readable perf report
     dune exec bench/main.exe -- --scale [BENCH_scale.json]
                                          -- f = 1..3 scaling sweep only
     dune exec bench/main.exe -- --clients [BENCH_clients.json]
                                          -- client-population capacity
                                             sweep only (peak live words,
                                             GC stats, footprint peaks)
     dune exec bench/main.exe -- --prom FILE -- Prometheus dump of the
                                             end-of-run metric registry
     dune exec bench/main.exe -- --seeds 5  -- fault-free baselines across
                                             5 seeds, mean +/- spread
*)

open Bftharness

let micro_benchmarks () =
  let open Bechamel in
  let payload_4k = String.make 4096 'x' in
  let keys = Bftcrypto.Keys.create ~master:"bench" in
  let src = Bftcrypto.Principal.client 0 and dst = Bftcrypto.Principal.node 0 in
  let tests =
    [
      Test.make ~name:"sha256-8B"
        (Staged.stage (fun () -> ignore (Bftcrypto.Sha256.digest_string "12345678")));
      Test.make ~name:"sha256-4kB"
        (Staged.stage (fun () -> ignore (Bftcrypto.Sha256.digest_string payload_4k)));
      Test.make ~name:"hmac-sha256-64B"
        (Staged.stage (fun () ->
             ignore (Bftcrypto.Hmac.mac ~key:"key" (String.sub payload_4k 0 64))));
      Test.make ~name:"wire-mac-tag"
        (Staged.stage (fun () -> ignore (Bftcrypto.Keys.mac keys ~src ~dst "payload")));
      Test.make ~name:"wire-codec-roundtrip"
        (Staged.stage (fun () ->
             let w = Bftnet.Wire.Writer.create () in
             Bftnet.Wire.Writer.varint w 123456;
             Bftnet.Wire.Writer.string w "hello world";
             let r = Bftnet.Wire.Reader.of_string (Bftnet.Wire.Writer.contents w) in
             ignore (Bftnet.Wire.Reader.varint r);
             ignore (Bftnet.Wire.Reader.string r)));
      (* The two quorum-tracking representations, same workload: seven
         votes arrive for one entry (n = 10, f = 3), each vote is
         dedup-checked, recorded, and the matching count compared to
         the 2f+1 = 7 quorum. The assoc variant is the pre-bitset
         hot path (cons + List.mem_assoc + List.filter per vote). The
         vote set is allocated once, like a log entry's, and reset per
         round: the per-vote path is what the protocol pays per
         message. *)
      (let v = Pbftcore.Voteset.Tagged.create ~n:10 in
       Test.make ~name:"voteset-bitset-16x7-votes"
         (Staged.stage (fun () ->
              for _ = 1 to 16 do
                Pbftcore.Voteset.Tagged.clear v;
                Pbftcore.Voteset.Tagged.set_reference v "digest";
                let reached = ref false in
                for r = 0 to 6 do
                  if Pbftcore.Voteset.Tagged.add v ~replica:r ~digest:"digest"
                  then
                    if Pbftcore.Voteset.Tagged.matching v >= 7 then
                      reached := true
                done;
                assert !reached
              done)));
      Test.make ~name:"voteset-assoc-16x7-votes"
        (Staged.stage (fun () ->
             for _ = 1 to 16 do
               let votes = ref [] in
               let reached = ref false in
               for r = 0 to 6 do
                 if not (List.mem_assoc r !votes) then begin
                   votes := (r, "digest") :: !votes;
                   let matching =
                     List.length
                       (List.filter
                          (fun (_, d) -> String.equal d "digest")
                          !votes)
                   in
                   if matching >= 7 then reached := true
                 end
               done;
               assert !reached
             done));
      (* Same pair at a production-scale cluster (n = 31, f = 10,
         2f+1 = 21): the assoc walk grows with the vote count, the
         bitset does not. *)
      (let v = Pbftcore.Voteset.Tagged.create ~n:31 in
       Test.make ~name:"voteset-bitset-16x21-votes"
         (Staged.stage (fun () ->
              for _ = 1 to 16 do
                Pbftcore.Voteset.Tagged.clear v;
                Pbftcore.Voteset.Tagged.set_reference v "digest";
                let reached = ref false in
                for r = 0 to 20 do
                  if Pbftcore.Voteset.Tagged.add v ~replica:r ~digest:"digest"
                  then
                    if Pbftcore.Voteset.Tagged.matching v >= 21 then
                      reached := true
                done;
                assert !reached
              done)));
      Test.make ~name:"voteset-assoc-16x21-votes"
        (Staged.stage (fun () ->
             for _ = 1 to 16 do
               let votes = ref [] in
               let reached = ref false in
               for r = 0 to 20 do
                 if not (List.mem_assoc r !votes) then begin
                   votes := (r, "digest") :: !votes;
                   let matching =
                     List.length
                       (List.filter
                          (fun (_, d) -> String.equal d "digest")
                          !votes)
                   in
                   if matching >= 21 then reached := true
                 end
               done;
               assert !reached
             done));
      Test.make ~name:"engine-1k-events"
        (Staged.stage (fun () ->
             let e = Dessim.Engine.create () in
             for i = 1 to 1000 do
               ignore (Dessim.Engine.after e (Dessim.Time.us i) (fun () -> ()))
             done;
             Dessim.Engine.run e));
      Test.make ~name:"pbft-order-100-requests"
        (Staged.stage (fun () ->
             let e = Dessim.Engine.create () in
             let delivered = ref 0 in
             let replicas = Array.make 4 None in
             let get i = match replicas.(i) with Some r -> r | None -> assert false in
             for i = 0 to 3 do
               let cfg = Pbftcore.Replica.default_config ~n:4 ~f:1 ~replica_id:i in
               let send dst m =
                 ignore
                   (Dessim.Engine.after e (Dessim.Time.us 50) (fun () ->
                        Pbftcore.Replica.receive (get dst) ~from:i m))
               in
               let broadcast m =
                 for d = 0 to 3 do
                   if d <> i then send d m
                 done
               in
               replicas.(i) <-
                 Some
                   (Pbftcore.Replica.create e cfg
                      {
                        Pbftcore.Replica.send;
                        broadcast;
                        deliver =
                          (fun _ descs -> delivered := !delivered + List.length descs);
                        on_view_change = (fun _ -> ());
                      })
             done;
             for rid = 1 to 100 do
               let d = Pbftcore.Types.desc_of_op ~client:0 ~rid "op" in
               Array.iter
                 (function Some r -> Pbftcore.Replica.submit r d | None -> ())
                 replicas
             done;
             Dessim.Engine.run e));
    ]
  in
  print_endline "\n== Micro-benchmarks (Bechamel, ns per operation) ==";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let run_tests tests =
    List.iter
      (fun test ->
        let raw = Benchmark.all cfg [ instance ] test in
        let results = Analyze.all ols instance raw in
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/op\n%!" name est
            | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
          results)
      tests
  in
  run_tests tests;
  (* Audit-bus emission cost, mirroring a protocol call site: the event
     record is only allocated behind the [Bus.active] guard, so the
     disabled case is a ref read and a branch. The two tests bracket a
     subscription, so they run outside the shared list. *)
  let emit_guarded () =
    if Bftaudit.Bus.active () then
      Bftaudit.Bus.emit
        {
          Bftaudit.Event.time = Dessim.Time.us 1;
          node = 1;
          instance = 0;
          kind = Bftaudit.Event.Prepare_sent { view = 0; seq = 1; digest = "d" };
        }
  in
  run_tests
    [ Test.make ~name:"audit-emit-disabled" (Staged.stage emit_guarded) ];
  let token = Bftaudit.Bus.subscribe (fun _ -> ()) in
  run_tests
    [ Test.make ~name:"audit-emit-null-sink" (Staged.stage emit_guarded) ];
  Bftaudit.Bus.unsubscribe token;
  (* Metric-registry update cost, same discipline: the handle is
     registered once outside the loop, the update site is guarded, so
     the disabled case is a ref read and a branch and the enabled case
     a field mutation — no allocation either way. *)
  let was_active = Bftmetrics.Registry.active () in
  Bftmetrics.Registry.disable ();
  let bench_ctr =
    Bftmetrics.Registry.counter Bftmetrics.Registry.default
      "bench_micro_increments_total" ~help:"Micro-benchmark counter"
      ~labels:[ ("site", "bench") ]
  in
  let bench_hist =
    Bftmetrics.Registry.histogram Bftmetrics.Registry.default
      "bench_micro_latency_seconds" ~help:"Micro-benchmark histogram"
      ~labels:[ ("site", "bench") ]
  in
  let inc_guarded () =
    if Bftmetrics.Registry.active () then
      Bftmetrics.Registry.Counter.inc bench_ctr
  in
  let observe_guarded () =
    if Bftmetrics.Registry.active () then
      Bftmetrics.Hist.add bench_hist 1.2e-4
  in
  run_tests
    [ Test.make ~name:"metrics-counter-disabled" (Staged.stage inc_guarded) ];
  Bftmetrics.Registry.enable ();
  run_tests
    [
      Test.make ~name:"metrics-counter-enabled" (Staged.stage inc_guarded);
      Test.make ~name:"metrics-hist-observe" (Staged.stage observe_guarded);
    ];
  if not was_active then Bftmetrics.Registry.disable ();
  (* Span-tracer hook cost at the two hot call sites: a [job] with no
     parent (the common untraced case: one int compare, no ref read)
     and a root-sampling check. Both must stay in the audit-emit
     ballpark (< ~10 ns) for the hooks to be free when tracing is off. *)
  let span_was_active = Bftspan.Tracer.active () in
  Bftspan.Tracer.disable ();
  let job_untraced () =
    ignore
      (Bftspan.Tracer.job ~parent:(-1) ~tag:Bftspan.Tag.Crypto_verify ~node:1
         ~instance:0 ~now:(Dessim.Time.us 1))
  in
  let root_guarded () =
    if Bftspan.Tracer.sampled ~rid:7 then
      ignore
        (Bftspan.Tracer.root ~client:0 ~rid:7 ~node:(-1) ~instance:(-1)
           ~tag:Bftspan.Tag.Client ~t0:(Dessim.Time.us 1))
  in
  run_tests
    [
      Test.make ~name:"span-job-disabled" (Staged.stage job_untraced);
      Test.make ~name:"span-root-disabled" (Staged.stage root_guarded);
    ];
  if span_was_active then Bftspan.Tracer.enable ();
  (* Flight-recorder hook cost with no doctor attached. The recorder's
     bus and metrics paths are already covered by the guards above (it
     rides Bus.subscribe and Registry.snapshot); what it adds of its
     own is the [Recorder.active] guard at prospective call sites and
     the tracer's close-hook dispatch in [Tracer.finish]. Both must
     stay in the same < ~10 ns ballpark as the other disabled hooks. *)
  let recorder_guarded () =
    if Bftdoctor.Recorder.active () then ignore (Sys.opaque_identity 0)
  in
  let close_hook_dispatch () =
    match Bftspan.Tracer.close_hook () with
    | Some _ -> ignore (Sys.opaque_identity 1)
    | None -> ()
  in
  run_tests
    [
      Test.make ~name:"doctor-hook-disabled" (Staged.stage recorder_guarded);
      Test.make ~name:"doctor-span-close-disabled"
        (Staged.stage close_hook_dispatch);
    ];
  (* Footprint-probe hook cost, same discipline as every other gate:
     [note] on a registered probe is a ref read and a branch when
     capacity observability is off — it sits on the request-table
     insert path, so it must stay in the < ~5 ns disabled-hook
     ballpark. The enabled case is an int compare and one or two
     field mutations (peak tracking), no allocation. *)
  let cap_was_active = Bftcap.Footprint.active () in
  Bftcap.Footprint.disable ();
  let bench_tbl = Hashtbl.create 16 in
  let bench_probe =
    Bftcap.Footprint.register ~name:"bench.table" ~owner:"bench"
      ~entries:(fun () -> Hashtbl.length bench_tbl)
      ~root:(fun () -> Some (Obj.repr bench_tbl))
      ()
  in
  let note_guarded () = Bftcap.Footprint.note bench_probe in
  let active_check () =
    if Bftcap.Footprint.active () then ignore (Sys.opaque_identity 0)
  in
  run_tests
    [
      Test.make ~name:"cap-note-disabled" (Staged.stage note_guarded);
      Test.make ~name:"cap-active-disabled" (Staged.stage active_check);
    ];
  Bftcap.Footprint.enable ();
  run_tests
    [ Test.make ~name:"cap-note-enabled" (Staged.stage note_guarded) ];
  if not cap_was_active then Bftcap.Footprint.disable ()

let want only id = match only with [] -> true | ids -> List.mem id ids

let () =
  let quick = ref false in
  let skip_micro = ref false in
  let only_micro = ref false in
  let only = ref [] in
  let metrics = ref None in
  let prom = ref None in
  let seeds = ref 0 in
  let scale = ref None in
  let clients = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--skip-micro" :: rest ->
      skip_micro := true;
      parse rest
    | "--only-micro" :: rest ->
      only_micro := true;
      parse rest
    | "--only" :: ids :: rest ->
      only := String.split_on_char ',' ids;
      parse rest
    | "--audit" :: rest ->
      Audit.enabled := true;
      parse rest
    | "--metrics" :: path :: rest ->
      metrics := Some path;
      parse rest
    | "--prom" :: path :: rest ->
      prom := Some path;
      parse rest
    | "--seeds" :: n :: rest ->
      seeds := (match int_of_string_opt n with Some n when n > 0 -> n | _ -> 0);
      parse rest
    | "--scale" :: path :: rest
      when path = "-" || not (String.length path > 1 && path.[0] = '-') ->
      scale := Some path;
      parse rest
    | "--scale" :: rest ->
      scale := Some "BENCH_scale.json";
      parse rest
    | "--clients" :: path :: rest
      when path = "-" || not (String.length path > 1 && path.[0] = '-') ->
      clients := Some path;
      parse rest
    | "--clients" :: rest ->
      clients := Some "BENCH_clients.json";
      parse rest
    | _ :: rest -> parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quick = !quick in
  if !prom <> None then Bftmetrics.Registry.enable ();
  Printf.printf "RBFT reproduction benchmarks (%s mode)\n"
    (if quick then "quick" else "full");
  if !seeds > 0 then begin
    let t = Unix.gettimeofday () in
    Report.print (Experiments.seed_sweep ~quick ~seeds:!seeds);
    Printf.printf "  (seed sweep took %.1fs)\n%!" (Unix.gettimeofday () -. t)
  end
  else if !scale <> None || !clients <> None then
    (* Dedicated mode: the sweep is written below, after option
       handling; the figure experiments are skipped. *)
    ()
  else if not !only_micro then begin
    let t0 = Unix.gettimeofday () in
    let groups =
      [
        ( "fig1/2/3+table1",
          [ "fig1"; "fig2"; "fig3"; "table1" ],
          fun () -> Experiments.robustness_of_baselines ~quick );
        ("fig7", [ "fig7a"; "fig7b" ], fun () -> Experiments.fig7 ~quick);
        ("fig8/9", [ "fig8"; "fig9" ], fun () -> Experiments.fig8_9 ~quick);
        ("fig10/11", [ "fig10"; "fig11" ], fun () -> Experiments.fig10_11 ~quick);
        ("fig12", [ "fig12" ], fun () -> [ Experiments.fig12 ~quick ]);
        ( "ablations",
          [ "ablation-ordering"; "ablation-viewchange"; "ablation-delta"; "ablation-recovery"; "ablation-closedloop" ],
          fun () -> Experiments.ablations ~quick );
      ]
    in
    List.iter
      (fun (label, ids, run) ->
        if List.exists (want !only) ids then begin
          let t = Unix.gettimeofday () in
          let tables = Bftmetrics.Profile.time ("experiments:" ^ label) run in
          List.iter Report.print (List.filter (fun t -> want !only t.Report.id) tables);
          Printf.printf "  (%s took %.1fs)\n%!" label (Unix.gettimeofday () -. t)
        end)
      groups;
    Printf.printf "\nTotal experiment time: %.1fs\n%!" (Unix.gettimeofday () -. t0);
    match Audit.summary () with
    | Some s -> Printf.printf "Safety audit: %s\n%!" s
    | None -> ()
  end;
  if (not !skip_micro) && !only = [] && !seeds = 0 && !scale = None
     && !clients = None
  then
    Bftmetrics.Profile.time "micro-benchmarks" micro_benchmarks;
  (match !metrics with
   | Some path -> Perfreport.write ~quick ~path
   | None -> ());
  (match !scale with
   | Some path -> Perfreport.write_scale ~quick ~path
   | None -> ());
  (match !clients with
   | Some path -> Perfreport.write_clients ~quick ~path
   | None -> ());
  (match !prom with
   | Some path ->
     Bftmetrics.Export.to_channel_or_file ~path
       (Bftmetrics.Export.prometheus Bftmetrics.Registry.default);
     if path <> "-" then Printf.printf "prometheus dump -> %s\n%!" path
   | None -> ());
  if Bftmetrics.Profile.total () > 0.0 then begin
    print_endline "\n== Wall-clock profile ==";
    Bftmetrics.Profile.print stdout
  end
