(* A replicated key-value store on RBFT: the kind of open-loop service
   (ZooKeeper/Boxwood-style) the paper's introduction motivates.

   Drives typed KV operations through the cluster and checks that all
   nodes converge to identical store contents, then survives a faulty
   node going silent mid-run.

   Run with: dune exec examples/kvstore_cluster.exe *)

open Dessim
open Bftapp

let () =
  Printf.printf "== Replicated key-value store over RBFT (f = 1) ==\n\n";
  let params = Rbft.Params.default ~f:1 in
  let stores = Array.init 4 (fun _ -> Kvstore.create ()) in
  let next = ref (-1) in
  let service () =
    incr next;
    Kvstore.service stores.(!next)
  in
  let cluster = Rbft.Cluster.create ~service ~clients:1 params in
  let client = Rbft.Cluster.client cluster 0 in

  (* The default client sends opaque payloads; for typed operations we
     inject requests through a custom sender. *)
  let rid = ref 0 in
  let send op =
    incr rid;
    let encoded = Kvstore.encode_op op in
    let desc = Pbftcore.Types.desc_of_op ~client:0 ~rid:!rid encoded in
    let req = { Rbft.Messages.desc; sig_valid = true; mac_invalid_for = [] } in
    let msg = Rbft.Messages.Request req in
    let size = Rbft.Messages.request_wire_size req ~n:4 in
    for node = 0 to 3 do
      Bftnet.Network.send (Rbft.Cluster.network cluster)
        ~src:(Bftcrypto.Principal.client 0)
        ~dst:(Bftcrypto.Principal.node node) ~size msg
    done
  in
  ignore client;

  Printf.printf "phase 1: 500 puts and deletes\n";
  for i = 1 to 500 do
    let key = Printf.sprintf "user:%d" (i mod 50) in
    if i mod 7 = 0 then send (Kvstore.Delete key)
    else send (Kvstore.Put (key, Printf.sprintf "v%d" i))
  done;
  Rbft.Cluster.run_for cluster (Time.sec 1);

  Printf.printf "phase 2: node 3 turns Byzantine (silent everywhere)\n";
  let faulty = Rbft.Cluster.node cluster 3 in
  (Rbft.Node.faults faulty).Rbft.Node.no_propagate <- true;
  for i = 0 to 1 do
    (Pbftcore.Replica.adversary (Rbft.Node.replica faulty ~instance:i))
      .Pbftcore.Replica.silent <- true
  done;
  for i = 501 to 1000 do
    send (Kvstore.Put (Printf.sprintf "late:%d" (i mod 30), string_of_int i))
  done;
  Rbft.Cluster.run_for cluster (Time.sec 1);

  Printf.printf "\nexecuted at node 0: %d operations\n"
    (Rbft.Node.executed_count (Rbft.Cluster.node cluster 0));
  Array.iteri
    (fun i store ->
      Printf.printf "node %d store: %d keys, digest %s\n" i (Kvstore.size store)
        (String.sub (Bftcrypto.Sha256.to_hex (Kvstore.digest store)) 0 16))
    stores;
  let reference = Kvstore.digest stores.(0) in
  let agree =
    Kvstore.digest stores.(1) = reference && Kvstore.digest stores.(2) = reference
  in
  Printf.printf "correct nodes agree on store contents: %b\n" agree;
  if not agree then exit 1
