(* Compare the four robust BFT protocols in the fault-free case: a
   miniature of the paper's Figure 7 at one load point per protocol.

   Run with: dune exec examples/compare_protocols.exe *)

open Dessim
open Bftharness

let measure_latency hists =
  let s = Bftmetrics.Stats.create () in
  List.iter
    (fun h -> if Bftmetrics.Hist.count h > 0 then Bftmetrics.Stats.add s (Bftmetrics.Hist.mean h))
    hists;
  1e3 *. Bftmetrics.Stats.mean s

let run_one proto =
  let payload = 8 in
  let offered = 0.9 *. Calibrate.peak_rate proto ~size:payload in
  let clients = 20 in
  let rate = offered /. float_of_int clients in
  let duration = Time.of_sec_f 1.5 in
  let warm = Time.ms 400 in
  match proto with
  | Calibrate.Rbft | Calibrate.Rbft_udp | Calibrate.Rbft_concurrent ->
    let transport =
      match proto with Calibrate.Rbft_udp -> Bftnet.Network.Udp | _ -> Bftnet.Network.Tcp
    in
    let cluster =
      Rbft.Cluster.create ~transport ~clients ~payload_size:payload (Rbft.Params.default ~f:1)
    in
    Array.iter (fun c -> Rbft.Client.set_rate c rate) (Rbft.Cluster.clients cluster);
    Rbft.Cluster.run_for cluster duration;
    let tput = Rbft.Cluster.throughput_between cluster warm duration in
    let lat =
      measure_latency
        (Array.to_list (Array.map Rbft.Client.latencies (Rbft.Cluster.clients cluster)))
    in
    (tput, lat)
  | Calibrate.Aardvark ->
    let cluster =
      Aardvark.Cluster.create ~clients ~payload_size:payload (Aardvark.Node.default_config ~f:1)
    in
    Array.iter (fun c -> Aardvark.Client.set_rate c rate) (Aardvark.Cluster.clients cluster);
    Aardvark.Cluster.run_for cluster duration;
    let tput = Aardvark.Cluster.throughput_between cluster warm duration in
    let lat =
      measure_latency
        (Array.to_list (Array.map Aardvark.Client.latencies (Aardvark.Cluster.clients cluster)))
    in
    (tput, lat)
  | Calibrate.Spinning ->
    let cluster =
      Spinning.Cluster.create ~clients ~payload_size:payload (Spinning.Node.default_config ~f:1)
    in
    Array.iter (fun c -> Spinning.Client.set_rate c rate) (Spinning.Cluster.clients cluster);
    Spinning.Cluster.run_for cluster duration;
    let tput = Spinning.Cluster.throughput_between cluster warm duration in
    let lat =
      measure_latency
        (Array.to_list (Array.map Spinning.Client.latencies (Spinning.Cluster.clients cluster)))
    in
    (tput, lat)
  | Calibrate.Prime ->
    let cfg = { (Prime.Node.default_config ~f:1) with Prime.Node.exec_cost = Time.us 1 } in
    let cluster = Prime.Cluster.create ~clients ~payload_size:payload cfg in
    Array.iter (fun c -> Prime.Client.set_rate c rate) (Prime.Cluster.clients cluster);
    Prime.Cluster.run_for cluster duration;
    let tput = Prime.Cluster.throughput_between cluster warm duration in
    let lat =
      measure_latency
        (Array.to_list (Array.map Prime.Client.latencies (Prime.Cluster.clients cluster)))
    in
    (tput, lat)

let () =
  Printf.printf "== Fault-free comparison, 8B requests at 90%% of peak (f = 1) ==\n\n";
  Printf.printf "  %-10s %18s %14s\n" "protocol" "throughput(kreq/s)" "latency(ms)";
  List.iter
    (fun proto ->
      let tput, lat = run_one proto in
      Printf.printf "  %-10s %18.1f %14.2f\n%!" (Calibrate.name proto) (tput /. 1e3) lat)
    [
      Calibrate.Spinning;
      Calibrate.Rbft;
      Calibrate.Rbft_udp;
      Calibrate.Aardvark;
      Calibrate.Prime;
    ];
  Printf.printf
    "\npaper (Fig 7a): Spinning fastest, then RBFT ~= Aardvark, Prime slowest\n\
     with an order-of-magnitude latency penalty for Prime.\n"
