(* Attack demo: runs RBFT under the paper's worst-attack-2 (Section
   VI-C2) and shows the monitoring mechanism at work: the malicious
   master primary throttles itself just above the Delta envelope, the
   monitored master/backup ratio stays legal, and no protocol instance
   change fires — the attack is contained to a few percent.

   Then the primary gets greedy (throttles well below Delta) and the
   nodes evict it.

   Run with: dune exec examples/attack_demo.exe *)

open Dessim

let print_monitoring cluster ~label =
  Printf.printf "%s\n" label;
  for node = 1 to 3 do
    let m = Rbft.Node.monitoring (Rbft.Cluster.node cluster node) in
    match Rbft.Monitoring.latest m with
    | Some (_, rates) ->
      Printf.printf
        "  node %d sees master %.1f kreq/s, backup %.1f kreq/s (ratio %.2f)\n"
        node (rates.(0) /. 1e3) (rates.(1) /. 1e3)
        (if rates.(1) > 0.0 then rates.(0) /. rates.(1) else 0.0)
    | None -> ()
  done;
  Printf.printf "  instance changes so far: %d\n\n"
    (Rbft.Node.instance_changes (Rbft.Cluster.node cluster 1))

(* Print the control-plane events as a structured timeline: suspicion
   verdicts, instance-change votes and the eviction itself. Data-plane
   events (orderings, executions) are left out — there are millions. *)
let timeline_sink (ev : Bftaudit.Event.t) =
  match ev.kind with
  | Bftaudit.Event.Instance_change_vote _ | Bftaudit.Event.Instance_changed _
  | Bftaudit.Event.Nic_closed _ | Bftaudit.Event.Blacklisted _
  | Bftaudit.Event.View_entered _ ->
    Printf.printf "  | %s\n" (Bftaudit.Event.to_string ev)
  | Bftaudit.Event.Monitor_verdict { suspicious = true; _ } ->
    Printf.printf "  | %s\n" (Bftaudit.Event.to_string ev)
  | _ -> ()

let () =
  Printf.printf "== RBFT worst-attack-2 demo (f = 1, 8B requests) ==\n\n";
  ignore (Bftaudit.Bus.subscribe timeline_sink);
  let auditor = Bftaudit.Auditor.attach ~n:4 ~f:1 () in
  (* Delta = 0.9 leaves the monitoring a clear noise margin; the smart
     primary will sit a whisker above it. *)
  let params = { (Rbft.Params.default ~f:1) with Rbft.Params.delta = 0.9 } in
  let cluster = Rbft.Cluster.create ~clients:10 params in
  Array.iter (fun c -> Rbft.Client.set_rate c 3600.0) (Rbft.Cluster.clients cluster);

  Printf.printf "phase 1: fault-free warmup\n";
  Rbft.Cluster.run_for cluster (Time.sec 1);
  print_monitoring cluster ~label:"monitoring after fault-free second:";

  Printf.printf "phase 2: worst-attack-2 (smart primary, floods, silent backups)\n";
  Rbft.Attacks.worst_attack_2 cluster;
  Rbft.Cluster.run_for cluster (Time.sec 2);
  print_monitoring cluster
    ~label:"monitoring under attack (primary hugs the Delta envelope):";

  Printf.printf "phase 3: the primary gets greedy (drops to 30%% of backups)\n";
  let replica = Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:0 in
  (Pbftcore.Replica.adversary replica).Pbftcore.Replica.pp_rate_limit <-
    (fun () -> 0.3 *. 34_000.0);
  Rbft.Cluster.run_for cluster (Time.sec 1);
  print_monitoring cluster ~label:"monitoring after the greedy move:";
  (* Drain in-flight requests before comparing execution logs. *)
  Array.iter (fun c -> Rbft.Client.set_rate c 0.0) (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.sec 1);

  let changes = Rbft.Node.instance_changes (Rbft.Cluster.node cluster 1) in
  Printf.printf "final primary of the master instance: node %d (%d instance change%s)\n"
    (Pbftcore.Replica.current_primary
       (Rbft.Node.replica (Rbft.Cluster.node cluster 1) ~instance:0))
    changes
    (if changes = 1 then "" else "s");
  Printf.printf "agreement among correct nodes: %b\n"
    (Rbft.Cluster.agreement_ok cluster ~faulty:[ 0 ]);
  Printf.printf "safety audit: %d events checked, %d violation(s)\n"
    (Bftaudit.Auditor.events_checked auditor)
    (List.length (Bftaudit.Auditor.violations auditor));
  if changes = 0 then exit 1
