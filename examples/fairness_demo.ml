(* Fairness demo (the paper's Figure 12): an unfair master primary
   delays one client's requests. The latency monitoring (Λ = 1.5 ms)
   catches the moment a single request crosses the threshold, the
   nodes vote a protocol instance change, and fairness returns.

   Run with: dune exec examples/fairness_demo.exe *)

open Dessim

let () =
  Printf.printf "== Unfair-primary demo (Fig 12): 2 clients, 4kB requests, f = 1 ==\n\n";
  let params =
    {
      (Rbft.Params.default ~f:1) with
      Rbft.Params.lambda = Time.of_us_f 1500.0;
      batch_delay = Time.of_us_f 200.0;
      delta = 0.5 (* keep the throughput check out of the way, as in the paper *);
    }
  in
  let cluster = Rbft.Cluster.create ~clients:2 ~payload_size:4096 params in

  (* Sample every ordering latency observed by (correct) node 1. *)
  let count = ref 0 in
  let samples = ref [] in
  Rbft.Node.set_latency_probe (Rbft.Cluster.node cluster 1)
    (fun ~instance ~client latency ->
      if instance = 0 then begin
        incr count;
        samples := (!count, client, latency) :: !samples
      end);

  Array.iter (fun c -> Rbft.Client.set_rate c 350.0) (Rbft.Cluster.clients cluster);

  (* The unfair primary: fair for 500 requests, then holds client 0's
     requests 0.5 ms, then 1 ms — the same escalation as the paper. *)
  let replica = Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:0 in
  (Pbftcore.Replica.adversary replica).Pbftcore.Replica.client_hold <-
    (fun id ->
      if id.Pbftcore.Types.client <> 0 then Time.zero
      else begin
        let ordered = Pbftcore.Replica.ordered_count replica in
        if ordered < 500 then Time.zero
        else if ordered < 1000 then Time.of_us_f 500.0
        else Time.of_us_f 1000.0
      end);
  Rbft.Cluster.run_for cluster (Time.of_sec_f 3.0);

  (* Render the latency series, bucketed by 100 requests. *)
  let samples = List.rev !samples in
  Printf.printf "%8s  %-22s  %-22s\n" "request" "client 0 (attacked)" "client 1";
  let bucket lo hi client =
    let s = Bftmetrics.Stats.create () in
    List.iter
      (fun (i, c, lat) ->
        if i >= lo && i < hi && c = client then Bftmetrics.Stats.add s (Time.to_ms_f lat))
      samples;
    s
  in
  let bar ms = String.make (Stdlib.min 40 (int_of_float (ms *. 12.0))) '#' in
  let rec render lo =
    if lo < 1400 then begin
      let s0 = bucket lo (lo + 100) 0 and s1 = bucket lo (lo + 100) 1 in
      if Bftmetrics.Stats.count s0 + Bftmetrics.Stats.count s1 > 0 then begin
        let m0 = Bftmetrics.Stats.mean s0 and m1 = Bftmetrics.Stats.mean s1 in
        Printf.printf "%8d  %5.2fms %-14s  %5.2fms %-14s\n" lo m0 (bar m0) m1 (bar m1);
        render (lo + 100)
      end
    end
  in
  render 0;
  let changes = Rbft.Node.instance_changes (Rbft.Cluster.node cluster 1) in
  Printf.printf
    "\nprotocol instance changes: %d (the request that crossed Lambda = 1.5 ms \
     evicted the unfair primary)\n"
    changes;
  Printf.printf "master primary is now node %d\n"
    (Pbftcore.Replica.current_primary
       (Rbft.Node.replica (Rbft.Cluster.node cluster 1) ~instance:0));
  if changes < 1 then exit 1
