(* Quickstart: a 4-node RBFT cluster (f = 1) replicating a counter,
   with two open-loop clients. Shows request completion, per-instance
   monitoring and the fault-free behaviour of the protocol.

   Run with: dune exec examples/quickstart.exe *)

open Dessim

let () =
  Printf.printf "== RBFT quickstart: f = 1, counter service, 2 clients ==\n%!";
  let params = Rbft.Params.default ~f:1 in
  let cluster =
    Rbft.Cluster.create
      ~service:(fun () -> Bftapp.Counter.service (Bftapp.Counter.create ()))
      ~clients:2 ~payload_size:8 params
  in
  (* Clients send "inc" operations? The default client sends opaque
     payloads; for the counter we drive requests manually. *)
  let c0 = Rbft.Cluster.client cluster 0 in
  let c1 = Rbft.Cluster.client cluster 1 in
  Rbft.Client.set_rate c0 500.0;
  Rbft.Client.set_rate c1 300.0;
  Rbft.Cluster.run_for cluster (Time.sec 2);
  Rbft.Client.set_rate c0 0.0;
  Rbft.Client.set_rate c1 0.0;
  Rbft.Cluster.run_for cluster (Time.sec 1);

  Printf.printf "client 0: sent %d, completed %d, mean latency %.2f ms\n"
    (Rbft.Client.sent c0) (Rbft.Client.completed c0)
    (1e3 *. Bftmetrics.Hist.mean (Rbft.Client.latencies c0));
  Printf.printf "client 1: sent %d, completed %d, mean latency %.2f ms\n"
    (Rbft.Client.sent c1) (Rbft.Client.completed c1)
    (1e3 *. Bftmetrics.Hist.mean (Rbft.Client.latencies c1));
  Array.iter
    (fun node ->
      Printf.printf "node %d: executed %d requests, %d instance changes\n"
        (Rbft.Node.id node)
        (Rbft.Node.executed_count node)
        (Rbft.Node.instance_changes node))
    (Rbft.Cluster.nodes cluster);
  let ok = Rbft.Cluster.agreement_ok cluster ~faulty:[] in
  Printf.printf "all nodes agree on the executed sequence: %b\n" ok;
  if not ok then exit 1
