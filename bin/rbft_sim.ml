(* rbft-sim: command-line driver for the RBFT reproduction.

   Subcommands:
     run         simulate an RBFT cluster (fault-free or under attack)
     trace-spans run with causal per-request tracing and print the
                 critical-path latency attribution
     compare     show calibrated peaks of the four protocols
     experiment  run one named experiment from the benchmark harness
     scenario    replay a chaos scenario file and judge it
     explore     randomized chaos sweep with shrinking of failures
     doctor      analyze an incident bundle written by the flight recorder

   Examples:
     rbft_sim run --f 1 --clients 10 --rate 2000 --seconds 2
     rbft_sim run --attack worst2 --payload 4096
     rbft_sim run --clients 200 --cap-deep   -- memory footprint table
     rbft_sim trace-spans --span-sample 1/8 --attack worst1
     rbft_sim experiment --id fig12
     rbft_sim scenario --file examples/scenarios/flapping_partition.scn
     rbft_sim explore --count 200 --seed 7 *)

open Cmdliner
open Dessim

(* ------------------------------------------------------------------ *)
(* run                                                                *)
(* ------------------------------------------------------------------ *)

let run_cluster f clients rate seconds payload attack mode transport seed trace
    chrome audit metrics prom doctor cap cap_deep cap_chrome =
  (* Structured observability: a capture (for file export and the run
     digest) whenever any trace output is requested, a console printer
     for [--trace -], and an online safety auditor for [--audit]. *)
  let capture =
    if trace <> None || chrome <> None then Some (Bftaudit.Capture.attach ())
    else None
  in
  if trace = Some "-" then
    ignore
      (Bftaudit.Bus.subscribe (fun ev ->
           print_endline (Bftaudit.Event.to_string ev)));
  let auditor =
    if audit then begin
      Bftaudit.Auditor.reset_declared ();
      Some (Bftaudit.Auditor.attach ~n:((3 * f) + 1) ~f ())
    end
    else None
  in
  let ordering =
    match mode with
    | "redundant" -> Rbft.Params.Redundant
    | "concurrent" -> Rbft.Params.Concurrent
    | other -> failwith ("unknown mode: " ^ other)
  in
  let params = { (Rbft.Params.default ~f) with Rbft.Params.ordering } in
  (* The unfair-primary attack is detected by the latency check, which
     is disabled by default (it is workload-dependent, Sec. IV-C). *)
  let params =
    if attack = "unfair" then
      {
        params with
        Rbft.Params.lambda = Dessim.Time.of_us_f 1500.0;
        batch_delay = Dessim.Time.of_us_f 200.0;
      }
    else params
  in
  let transport =
    match transport with "udp" -> Bftnet.Network.Udp | _ -> Bftnet.Network.Tcp
  in
  (* Metrics: enable the registry whenever an export was requested;
     [--metrics] additionally attaches the sim-time sampler so the CSV
     carries a time series rather than only end-of-run totals. *)
  if metrics <> None || prom <> None then Bftmetrics.Registry.enable ();
  (* Capacity observability: turn on footprint peak tracking before
     the cluster exists so every probe sees the whole run; deep
     (reachable-words) measurement stays behind its own gate because
     it traverses the heap at snapshot time. *)
  let cap_on = cap || cap_deep || cap_chrome <> None in
  if cap_on then begin
    Bftcap.Footprint.enable ();
    if cap_deep then Bftcap.Footprint.set_deep true
  end;
  let cluster =
    Rbft.Cluster.create ~seed:(Int64.of_int seed) ~transport ~clients
      ~payload_size:payload params
  in
  let sampler =
    match metrics with
    | Some _ ->
      Some
        (Bftmetrics.Sampler.attach ~period:(Time.ms 100)
           (Rbft.Cluster.engine cluster) Bftmetrics.Registry.default)
    | None -> None
  in
  (* The doctor attaches before the attack so the flight recorder sees
     the whole run, including the attack's installation effects. *)
  let doctor_t =
    Option.map
      (fun dir ->
        Bftharness.Incident.attach ~dir
          ~extra_fields:[ ("attack", attack); ("mode", mode) ]
          cluster)
      doctor
  in
  (* GC sampler for --cap: periodic Gc.quick_stat deltas folded with
     the footprint probe entries, so the end-of-run summary can report
     peaks and a growth slope. The gauges go to the registry only when
     an export was asked for (they are wall-runtime state). *)
  let gcstats =
    if cap_on then
      Some
        (Bftcap.Gcstats.create
           ~metrics:(metrics <> None || prom <> None)
           ~window:256 ())
    else None
  in
  (match gcstats with
   | Some g ->
     let engine = Rbft.Cluster.engine cluster in
     let rec tick () =
       Bftcap.Gcstats.sample g ~now:(Engine.now engine);
       ignore (Engine.after engine (Time.ms 100) tick)
     in
     ignore (Engine.after engine (Time.ms 100) tick)
   | None -> ());
  (match attack with
   | "none" -> ()
   | "worst1" -> Rbft.Attacks.worst_attack_1 cluster
   | "worst2" -> Rbft.Attacks.worst_attack_2 cluster
   | "unfair" ->
     Rbft.Attacks.unfair_primary cluster ~node:0 ~target_client:0 ~after_requests:100
       ~hold:(Time.ms 1)
   | other -> failwith ("unknown attack: " ^ other));
  Array.iter (fun c -> Rbft.Client.set_rate c rate) (Rbft.Cluster.clients cluster);
  let duration = Time.of_sec_f seconds in
  Rbft.Cluster.run_for cluster duration;
  let faulty =
    match attack with
    | "worst1" -> List.init f (fun i -> (3 * f) - i)
    | "worst2" | "unfair" -> List.init f (fun i -> i)
    | _ -> []
  in
  Printf.printf "simulated %.1fs: executed %d requests (%.1f kreq/s)\n" seconds
    (Rbft.Cluster.total_executed cluster)
    (Rbft.Cluster.throughput_between cluster (Time.ms 200) duration /. 1e3);
  Array.iter
    (fun node ->
      Printf.printf "  node %d: executed %d, instance changes %d%s\n"
        (Rbft.Node.id node) (Rbft.Node.executed_count node)
        (Rbft.Node.instance_changes node)
        (if List.mem (Rbft.Node.id node) faulty then "  [faulty]" else ""))
    (Rbft.Cluster.nodes cluster);
  Printf.printf "agreement among correct nodes: %b\n"
    (Rbft.Cluster.agreement_ok cluster ~faulty);
  Printf.printf "events simulated: %d\n"
    (Engine.events_processed (Rbft.Cluster.engine cluster));
  (match gcstats with
   | Some g ->
     Bftcap.Gcstats.sample g ~now:(Engine.now (Rbft.Cluster.engine cluster));
     print_newline ();
     print_string (Bftcap.Footprint.table ~deep:cap_deep ());
     Printf.printf "\nGC over the run (%d samples):\n"
       (Bftcap.Gcstats.sample_count g);
     List.iter
       (fun (k, v) -> Printf.printf "  %-24s %14.0f\n" k v)
       (Bftcap.Gcstats.deltas g);
     Printf.printf "  %-24s %14d\n" "peak_live_words"
       (Bftcap.Gcstats.peak_live_words g);
     Printf.printf "  %-24s %14d\n" "peak_heap_words"
       (Bftcap.Gcstats.peak_heap_words g);
     (match Bftcap.Gcstats.growth g with
      | Some gr ->
        Printf.printf "  %-24s %14.0f words/s%s\n" "live_growth_slope"
          gr.Bftcap.Gcstats.g_live_slope
          (match gr.Bftcap.Gcstats.g_culprit with
           | Some (name, per_s) ->
             Printf.sprintf "  (fastest probe: %s, %+.0f entries/s)" name per_s
           | None -> "")
      | None -> ());
     (match cap_chrome with
      | Some path ->
        Bftcap.Gcstats.write_chrome_counters g path;
        Printf.printf "gc counter trace -> %s\n" path
      | None -> ())
   | None -> ());
  (match sampler with
   | Some s ->
     Bftmetrics.Sampler.detach s;
     let path = Option.get metrics in
     Bftmetrics.Export.to_channel_or_file ~path
       (Bftmetrics.Export.csv_of_series s);
     if path <> "-" then
       Printf.printf "metrics: %d sample points -> %s\n"
         (Bftmetrics.Sampler.count s) path
   | None -> ());
  (match prom with
   | Some path ->
     Bftmetrics.Export.to_channel_or_file ~path
       (Bftmetrics.Export.prometheus Bftmetrics.Registry.default);
     if path <> "-" then Printf.printf "prometheus dump -> %s\n" path
   | None -> ());
  (match capture with
   | Some c ->
     (match trace with
      | Some path when path <> "-" ->
        Bftaudit.Capture.write_jsonl c path;
        Printf.printf "trace: %d events -> %s\n" (Bftaudit.Capture.count c) path
      | Some _ | None -> ());
     (match chrome with
      | Some path ->
        Bftaudit.Capture.write_chrome_trace c path;
        Printf.printf "chrome trace: %d events -> %s\n"
          (Bftaudit.Capture.count c) path
      | None -> ());
     Printf.printf "trace digest: %s\n" (Bftaudit.Capture.digest c);
     Bftaudit.Capture.detach c
   | None -> ());
  (match doctor_t with
   | Some d ->
     let incidents = Bftdoctor.Doctor.incidents d in
     Printf.printf "doctor: %d incident(s) recorded%s\n" (List.length incidents)
       (match Bftdoctor.Doctor.fires_suppressed d with
        | 0 -> ""
        | n -> Printf.sprintf " (%d further fire(s) suppressed)" n);
     List.iter
       (fun (i : Bftdoctor.Doctor.incident_ref) ->
         Printf.printf "  #%d [%s] at %s: %s\n" i.Bftdoctor.Doctor.i_seq
           i.Bftdoctor.Doctor.i_trigger
           (Time.to_string i.Bftdoctor.Doctor.i_at)
           i.Bftdoctor.Doctor.i_reason;
         (match i.Bftdoctor.Doctor.i_dir with
          | Some dir -> Printf.printf "      bundle: %s\n" dir
          | None -> ());
         Printf.printf "      digest: %s\n" i.Bftdoctor.Doctor.i_digest)
       incidents;
     Bftdoctor.Doctor.detach d
   | None -> ());
  match auditor with
  | Some a ->
    let viols = Bftaudit.Auditor.violations a in
    Printf.printf "safety audit: %d events checked, %d violation(s)\n"
      (Bftaudit.Auditor.events_checked a)
      (List.length viols);
    List.iter
      (fun v -> Format.printf "  %a@." Bftaudit.Auditor.pp_violation v)
      viols;
    Bftaudit.Auditor.detach a;
    if viols <> [] then exit 1
  | None -> ()

let run_cmd =
  let f =
    Arg.(
      value & opt int 1
      & info [ "f"; "faults" ] ~doc:"Faults tolerated (n = 3f+1 nodes).")
  in
  let clients = Arg.(value & opt int 10 & info [ "clients" ] ~doc:"Client count.") in
  let rate =
    Arg.(value & opt float 2000.0 & info [ "rate" ] ~doc:"Requests/s per client.")
  in
  let seconds =
    Arg.(value & opt float 2.0 & info [ "seconds" ] ~doc:"Virtual seconds to simulate.")
  in
  let payload =
    Arg.(value & opt int 8 & info [ "payload" ] ~doc:"Request payload bytes.")
  in
  let attack =
    Arg.(
      value & opt string "none"
      & info [ "attack" ] ~doc:"none | worst1 | worst2 | unfair.")
  in
  let mode =
    Arg.(
      value & opt string "redundant"
      & info [ "mode" ]
          ~doc:
            "Ordering mode: $(b,redundant) (every instance orders every \
             request, classic RBFT) or $(b,concurrent) (bftrcc: disjoint \
             client partitions per instance, merged deterministically, so \
             added instances add capacity).")
  in
  let transport =
    Arg.(value & opt string "tcp" & info [ "transport" ] ~doc:"tcp | udp.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the structured event trace as JSONL to $(docv), and print \
             the run's chained SHA-256 trace digest. Use '-' to print events \
             to stdout instead of a file.")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Write the event trace in Chrome trace_event JSON format to \
             $(docv) (open in chrome://tracing or Perfetto).")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Attach the online safety auditor (agreement, quorums, no double \
             execution, checkpoint and instance-change consistency) and report \
             its verdict.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Enable the metric registry, sample it every 100 ms of virtual \
             time and write the series as CSV to $(docv) ('-' for stdout).")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "Enable the metric registry and write an end-of-run Prometheus \
             text-format dump to $(docv) ('-' for stdout).")
  in
  let doctor =
    Arg.(
      value
      & opt (some string) None
      & info [ "doctor" ] ~docv:"DIR"
          ~doc:
            "Attach the always-on flight recorder with the default anomaly \
             triggers (instance change, auditor violation, Δ-ratio near \
             miss) and write incident bundles under $(docv). Analyze them \
             with $(b,rbft_sim doctor).")
  in
  let cap =
    Arg.(
      value & flag
      & info [ "cap" ]
          ~doc:
            "Capacity observability: track per-structure footprint peaks and \
             sample GC statistics every 100 ms of virtual time; print the \
             footprint table and a GC summary (with the live-heap growth \
             slope and the fastest-growing structure) at the end.")
  in
  let cap_deep =
    Arg.(
      value & flag
      & info [ "cap-deep" ]
          ~doc:
            "Like $(b,--cap), but also measure each probed structure's \
             approximate exclusive bytes with Obj.reachable_words at snapshot \
             time (heap traversal — slower, never on a hot path).")
  in
  let cap_chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "cap-chrome" ] ~docv:"FILE"
          ~doc:
            "Write the GC sample window (live words, heap words, collection \
             counts) as Chrome trace_event counter series to $(docv) (open \
             in Perfetto). Implies $(b,--cap).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate an RBFT cluster")
    Term.(
      const run_cluster $ f $ clients $ rate $ seconds $ payload $ attack $ mode
      $ transport $ seed $ trace $ chrome $ audit $ metrics $ prom $ doctor
      $ cap $ cap_deep $ cap_chrome)

(* ------------------------------------------------------------------ *)
(* trace-spans                                                        *)
(* ------------------------------------------------------------------ *)

(* "--span-sample 1/8" keeps every 8th request; a bare integer is also
   accepted. *)
let parse_sample s =
  let bad () = failwith (Printf.sprintf "bad --span-sample %S (want 1/N)" s) in
  match String.index_opt s '/' with
  | Some i ->
    let num = String.sub s 0 i
    and den = String.sub s (i + 1) (String.length s - i - 1) in
    (match (int_of_string_opt num, int_of_string_opt den) with
     | Some 1, Some n when n >= 1 -> n
     | _ -> bad ())
  | None -> (
    match int_of_string_opt s with Some n when n >= 1 -> n | _ -> bad ())

let print_analysis ~slowest spans =
  let summary = Bftspan.Analyze.summarize spans in
  print_string (Bftspan.Analyze.report ~slowest summary);
  print_newline ();
  print_string (Bftspan.Analyze.client_report summary);
  (match Bftspan.Analyze.check_trees spans with
   | [] -> ()
   | errs ->
     Printf.printf "\nspan-tree violations (%d):\n" (List.length errs);
     List.iter (fun e -> Printf.printf "  %s\n" e) errs)

let trace_spans f clients rate seconds payload attack seed sample spans_out
    chrome slowest input =
  match input with
  | Some path ->
    (* Offline: analyze a previously captured span JSONL. *)
    print_analysis ~slowest (Bftspan.Analyze.read_jsonl path)
  | None ->
    let sample = parse_sample sample in
    Bftspan.Tracer.reset ();
    Bftspan.Tracer.enable ~sample ();
    let capture =
      if chrome <> None then Some (Bftaudit.Capture.attach ()) else None
    in
    let cluster =
      Rbft.Cluster.create ~seed:(Int64.of_int seed) ~transport:Bftnet.Network.Tcp
        ~clients ~payload_size:payload
        (Rbft.Params.default ~f)
    in
    (match attack with
     | "none" -> ()
     | "worst1" -> Rbft.Attacks.worst_attack_1 cluster
     | "worst2" -> Rbft.Attacks.worst_attack_2 cluster
     | other -> failwith ("unknown attack: " ^ other));
    Array.iter (fun c -> Rbft.Client.set_rate c rate) (Rbft.Cluster.clients cluster);
    Rbft.Cluster.run_for cluster (Time.of_sec_f seconds);
    Bftspan.Tracer.disable ();
    let spans = Bftspan.Tracer.to_array () in
    Printf.printf
      "traced %.1fs (attack %s, sampling 1/%d): %d requests executed\n\n" seconds
      attack sample
      (Rbft.Cluster.total_executed cluster);
    print_analysis ~slowest spans;
    Printf.printf "\nspan digest: %s\n" (Bftspan.Tracer.digest ());
    (match spans_out with
     | Some path ->
       Bftspan.Tracer.write_jsonl path;
       Printf.printf "spans: %d -> %s\n" (Array.length spans) path
     | None -> ());
    (match chrome with
     | Some path ->
       Bftspan.Analyze.write_chrome ?audit:capture spans path;
       Printf.printf "chrome trace -> %s\n" path
     | None -> ());
    (match capture with Some c -> Bftaudit.Capture.detach c | None -> ())

let trace_spans_cmd =
  let f =
    Arg.(
      value & opt int 1
      & info [ "f"; "faults" ] ~doc:"Faults tolerated (n = 3f+1 nodes).")
  in
  let clients = Arg.(value & opt int 10 & info [ "clients" ] ~doc:"Client count.") in
  let rate =
    Arg.(value & opt float 2000.0 & info [ "rate" ] ~doc:"Requests/s per client.")
  in
  let seconds =
    Arg.(
      value & opt float 1.0 & info [ "seconds" ] ~doc:"Virtual seconds to simulate.")
  in
  let payload =
    Arg.(value & opt int 8 & info [ "payload" ] ~doc:"Request payload bytes.")
  in
  let attack =
    Arg.(
      value & opt string "none" & info [ "attack" ] ~doc:"none | worst1 | worst2.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let sample =
    Arg.(
      value & opt string "1/1"
      & info [ "span-sample" ] ~docv:"1/N"
          ~doc:"Trace every $(docv)-th request (by request id).")
  in
  let spans_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "spans" ] ~docv:"FILE" ~doc:"Write captured spans as JSONL to $(docv).")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Write nested spans plus audit-bus instants as a combined Chrome \
             trace_event file to $(docv) (open in Perfetto).")
  in
  let slowest =
    Arg.(
      value & opt int 5
      & info [ "slowest" ] ~doc:"Critical paths to print for the slowest requests.")
  in
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "input" ] ~docv:"FILE"
          ~doc:"Analyze an existing span JSONL instead of running a simulation.")
  in
  Cmd.v
    (Cmd.info "trace-spans"
       ~doc:
         "Run an RBFT cluster with causal per-request tracing and print the \
          per-stage critical-path latency attribution")
    Term.(
      const trace_spans $ f $ clients $ rate $ seconds $ payload $ attack $ seed
      $ sample $ spans_out $ chrome $ slowest $ input)

(* ------------------------------------------------------------------ *)
(* experiment                                                         *)
(* ------------------------------------------------------------------ *)

let run_experiment id quick audit =
  Bftharness.Audit.enabled := audit;
  let tables =
    match id with
    | "fig1" | "fig2" | "fig3" | "table1" ->
      Bftharness.Experiments.robustness_of_baselines ~quick
    | "fig7" | "fig7a" | "fig7b" -> Bftharness.Experiments.fig7 ~quick
    | "fig8" | "fig9" -> Bftharness.Experiments.fig8_9 ~quick
    | "fig10" | "fig11" -> Bftharness.Experiments.fig10_11 ~quick
    | "fig12" -> [ Bftharness.Experiments.fig12 ~quick ]
    | "ablations" -> Bftharness.Experiments.ablations ~quick
    | other -> failwith ("unknown experiment: " ^ other)
  in
  List.iter Bftharness.Report.print tables;
  match Bftharness.Audit.summary () with
  | Some s -> Printf.printf "Safety audit: %s\n" s
  | None -> ()

let experiment_cmd =
  let id =
    Arg.(
      value & opt string "fig12"
      & info [ "id" ]
          ~doc:"fig1|fig2|fig3|table1|fig7|fig8|fig9|fig10|fig11|fig12|ablations.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Short windows.") in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ] ~doc:"Safety-audit every run inside the experiment.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one experiment from the harness")
    Term.(const run_experiment $ id $ quick $ audit)

(* ------------------------------------------------------------------ *)
(* compare                                                            *)
(* ------------------------------------------------------------------ *)

let compare_protocols payload =
  let open Bftharness in
  Printf.printf "calibrated peaks, %dB requests (f=1)\n" payload;
  List.iter
    (fun proto ->
      Printf.printf "  %-10s %.1f kreq/s\n" (Calibrate.name proto)
        (Calibrate.peak_rate proto ~size:payload /. 1e3))
    [ Calibrate.Rbft; Calibrate.Rbft_udp; Calibrate.Aardvark; Calibrate.Spinning;
      Calibrate.Prime ];
  Printf.printf "(run examples/compare_protocols.exe for measured numbers)\n"

let compare_cmd =
  let payload =
    Arg.(value & opt int 8 & info [ "payload" ] ~doc:"Request payload bytes.")
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Show calibrated peaks of all protocols")
    Term.(const compare_protocols $ payload)

(* ------------------------------------------------------------------ *)
(* scenario                                                           *)
(* ------------------------------------------------------------------ *)

let print_result r =
  print_endline (Bftchaos.Runner.summary r);
  List.iter
    (fun v -> Format.printf "  %a@." Bftaudit.Auditor.pp_violation v)
    r.Bftchaos.Runner.safety_violations;
  (match r.Bftchaos.Runner.digest with
   | Some d -> Printf.printf "audit digest: %s\n" d
   | None -> ());
  if not (Bftchaos.Runner.liveness_ok r) then
    Printf.printf "liveness: %d of %d requests incomplete after drain\n"
      (r.Bftchaos.Runner.sent - r.Bftchaos.Runner.completed)
      r.Bftchaos.Runner.sent

let print_incidents incidents =
  List.iter
    (fun (i : Bftdoctor.Doctor.incident_ref) ->
      Printf.printf "incident #%d [%s]: %s\n" i.Bftdoctor.Doctor.i_seq
        i.Bftdoctor.Doctor.i_trigger i.Bftdoctor.Doctor.i_reason;
      match i.Bftdoctor.Doctor.i_dir with
      | Some dir -> Printf.printf "  bundle: %s\n" dir
      | None -> ())
    incidents

let run_scenario file verbose doctor =
  match Bftchaos.Scenario.load file with
  | Error e ->
    Printf.eprintf "cannot load %s: %s\n" file e;
    exit 2
  | Ok s ->
    if verbose then
      List.iter
        (fun f -> print_endline ("  " ^ Bftchaos.Fault.describe f))
        s.Bftchaos.Scenario.faults;
    let r = Bftchaos.Runner.run ~capture:true ?doctor_dir:doctor s in
    print_result r;
    print_incidents r.Bftchaos.Runner.incidents;
    if not (Bftchaos.Runner.ok r) then exit 1

let scenario_cmd =
  let file =
    Arg.(
      required
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE" ~doc:"Scenario file (.scn) to replay.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print the fault plan first.")
  in
  let doctor =
    Arg.(
      value
      & opt (some string) None
      & info [ "doctor" ] ~docv:"DIR"
          ~doc:
            "Ride a flight recorder along the replay and write incident \
             bundles under $(docv) (the active .scn is embedded in each \
             bundle).")
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Replay a chaos scenario deterministically, print the audit digest \
          and exit non-zero on any safety or liveness violation")
    Term.(const run_scenario $ file $ verbose $ doctor)

(* ------------------------------------------------------------------ *)
(* explore                                                            *)
(* ------------------------------------------------------------------ *)

let run_explore count seed f duration drain protocols out_dir shrink_budget verbose
    bundles =
  let protocols =
    match protocols with
    | "" -> Bftchaos.Scenario.all_protocols
    | names ->
      names |> String.split_on_char ','
      |> List.map (fun n ->
             match Bftchaos.Scenario.protocol_of_name (String.trim n) with
             | Some p -> p
             | None -> failwith ("unknown protocol: " ^ n))
      |> Array.of_list
  in
  let grammar =
    {
      Bftchaos.Explorer.default_grammar with
      Bftchaos.Explorer.protocols;
      f;
      duration = Time.of_sec_f duration;
      drain = Time.of_sec_f drain;
    }
  in
  let progress r =
    if verbose || not (Bftchaos.Runner.ok r) then
      print_endline (Bftchaos.Runner.summary r)
  in
  let sweep =
    Bftchaos.Explorer.sweep ~grammar ~progress ?bundle_dir:bundles
      ~seed:(Int64.of_int seed) ~count ()
  in
  Printf.printf "%d/%d scenarios passed\n" sweep.Bftchaos.Explorer.passed
    sweep.Bftchaos.Explorer.total;
  let failures = sweep.Bftchaos.Explorer.failures in
  if failures <> [] then begin
    (match out_dir with
     | Some dir ->
       (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
       List.iter
         (fun r ->
           let s = r.Bftchaos.Runner.scenario in
           let still_fails c = not (Bftchaos.Runner.ok (Bftchaos.Runner.run c)) in
           let minimized, spent =
             Bftchaos.Shrink.minimize ~budget:shrink_budget still_fails s
           in
           let path =
             Filename.concat dir (minimized.Bftchaos.Scenario.name ^ ".scn")
           in
           Bftchaos.Scenario.save minimized path;
           Printf.printf "shrunk %s (%d candidate runs) -> %s\n"
             s.Bftchaos.Scenario.name spent path)
         failures
     | None -> ());
    exit 1
  end

let explore_cmd =
  let count =
    Arg.(value & opt int 50 & info [ "count" ] ~doc:"Scenarios to sample.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Sweep seed.") in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Faults tolerated (n = 3f+1).") in
  let duration =
    Arg.(
      value & opt float 1.0
      & info [ "duration" ] ~doc:"Chaos phase, virtual seconds.")
  in
  let drain =
    Arg.(
      value & opt float 1.5
      & info [ "drain" ] ~doc:"Drain phase (liveness bound), virtual seconds.")
  in
  let protocols =
    Arg.(
      value & opt string ""
      & info [ "protocols" ]
          ~doc:
            "Comma-separated subset: \
             rbft,rbft-udp,rbft-concurrent,aardvark,spinning,prime.")
  in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Where to write minimized .scn repro files for failures.")
  in
  let shrink_budget =
    Arg.(
      value & opt int 150
      & info [ "shrink-budget" ] ~doc:"Max candidate runs per shrink.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print every run, not only failures.")
  in
  let bundles =
    Arg.(
      value
      & opt (some string) None
      & info [ "bundles" ] ~docv:"DIR"
          ~doc:
            "Ride a flight recorder along every sampled run; incident \
             bundles land under $(docv)/<scenario-name>/.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Sample random fault scenarios across protocols, check safety and \
          liveness oracles, shrink and save any failure")
    Term.(
      const run_explore $ count $ seed $ f $ duration $ drain $ protocols $ out_dir
      $ shrink_budget $ verbose $ bundles)

(* ------------------------------------------------------------------ *)
(* doctor                                                             *)
(* ------------------------------------------------------------------ *)

let run_doctor bundle json chrome no_verify =
  if not (Sys.file_exists (Filename.concat bundle "manifest.json")) then begin
    Printf.eprintf "%s: not an incident bundle (no manifest.json)\n" bundle;
    exit 2
  end;
  (if not no_verify then
     match Bftdoctor.Bundle.verify ~dir:bundle with
     | Ok _ -> ()
     | Error e ->
       Printf.eprintf "bundle integrity check FAILED: %s\n" e;
       exit 3);
  let l = Bftdoctor.Bundle.load ~dir:bundle in
  if json then print_endline (Bftdoctor.Analyze.verdict_json l)
  else print_string (Bftdoctor.Analyze.report l);
  match chrome with
  | Some path ->
    Bftdoctor.Analyze.write_chrome l path;
    if not json then Printf.printf "chrome trace -> %s\n" path
  | None -> ()

let doctor_cmd =
  let bundle =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BUNDLE" ~doc:"Incident bundle directory to analyze.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print a one-line machine-readable verdict instead of the report.")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Export the incident window (spans + audit instants) as a Chrome \
             trace_event file to $(docv) (open in Perfetto).")
  in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"Skip the chained-digest integrity check before analyzing.")
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Analyze an incident bundle: verify its chained digest, reconstruct \
          the timeline, attribute the cause (node / instance / stage) and \
          print a forensic report or JSON verdict")
    Term.(const run_doctor $ bundle $ json $ chrome $ no_verify)

(* ------------------------------------------------------------------ *)
(* mc                                                                 *)
(* ------------------------------------------------------------------ *)

let run_mc requests max_faults depth no_por stats_flag mutate seed out compare_por
    =
  let cfg =
    {
      Bftmc.World.default_config with
      Bftmc.World.requests;
      depth;
      mutate;
      seed = Int64.of_int seed;
    }
  in
  let por = not no_por in
  let progress (s : Bftmc.Search.stats) =
    Printf.eprintf "  ... %d states, %d dedup, %d leaves\n%!"
      s.Bftmc.Search.states s.Bftmc.Search.dedup_hits s.Bftmc.Search.leaves
  in
  let on_progress = if stats_flag then Some progress else None in
  let outcome = Bftmc.Search.run ~por ~max_faults ?on_progress cfg in
  let s = outcome.Bftmc.Search.stats in
  Printf.printf "bftmc: n=%d f=%d requests=%d depth<=%d max-faults=%d por=%b%s\n"
    ((3 * cfg.Bftmc.World.f) + 1)
    cfg.Bftmc.World.f requests depth max_faults por
    (if mutate then " mutate=ic-quorum-low" else "");
  Printf.printf "states explored:  %d\n" s.Bftmc.Search.states;
  Printf.printf "dedup hits:       %d\n" s.Bftmc.Search.dedup_hits;
  Printf.printf "leaves judged:    %d\n" s.Bftmc.Search.leaves;
  if stats_flag then begin
    Printf.printf "replays:          %d\n" s.Bftmc.Search.replays;
    Printf.printf "max depth:        %d\n" s.Bftmc.Search.max_depth;
    Printf.printf "por skipped:      %d (+%d pruned subtrees)\n"
      s.Bftmc.Search.por_skipped s.Bftmc.Search.por_pruned_subtrees;
    Printf.printf "frontier choices: %d\n" s.Bftmc.Search.choices_seen;
    List.iter
      (fun (crashes, (ps : Bftmc.Search.stats)) ->
        Printf.printf "  placement [%s]: %d states, %d leaves\n"
          (String.concat "," (List.map string_of_int crashes))
          ps.Bftmc.Search.states ps.Bftmc.Search.leaves)
      outcome.Bftmc.Search.per_placement
  end;
  (match outcome.Bftmc.Search.counterexample with
   | None ->
     if compare_por && por then begin
       (* Same sweep without the reduction, to report the factor. *)
       let base = Bftmc.Search.run ~por:false ~max_faults cfg in
       let b = base.Bftmc.Search.stats in
       Printf.printf "no-por states:    %d\n" b.Bftmc.Search.states;
       Printf.printf "por reduction:    %.2fx\n"
         (float_of_int b.Bftmc.Search.states
         /. float_of_int (Stdlib.max 1 s.Bftmc.Search.states))
     end;
     Printf.printf "verdict: no violation found\n"
   | Some cex ->
     Printf.printf "verdict: VIOLATION\n";
     Format.printf "%a@?" Bftmc.Cex.pp cex;
     let path =
       match out with
       | None -> None
       | Some dir ->
         (try Unix.mkdir dir 0o755
          with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
         Some (Filename.concat dir "mc-cex.scn")
     in
     let repro = Bftmc.Cex.extract ?out:path cex in
     (match path with
      | Some p ->
        Printf.printf "cex scenario: %s (%s, %d shrink runs)\n" p
          (if repro.Bftmc.Cex.reproduced then "reproduces, shrunk"
           else "schedule-sensitive, saved unshrunk")
          repro.Bftmc.Cex.shrink_tests
      | None -> ());
     Printf.printf "invariant digest: %s\n" repro.Bftmc.Cex.target_digest;
     exit 1)

let mc_cmd =
  let requests =
    Arg.(
      value & opt int 2
      & info [ "requests" ] ~doc:"Client requests in the workload burst.")
  in
  let max_faults =
    Arg.(
      value & opt int 0
      & info [ "max-faults" ]
          ~doc:"Sweep crash placements of up to this many nodes (capped at f).")
  in
  let depth =
    Arg.(value & opt int 6 & info [ "depth" ] ~doc:"Schedule length bound.")
  in
  let no_por =
    Arg.(
      value & flag
      & info [ "no-por" ] ~doc:"Disable the partial-order reduction.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print detailed search statistics.")
  in
  let mutate =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Self-test: break the instance-change quorum (accept 1 vote \
             instead of 2f+1) and expect a violation.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"World seed.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Where to write the counterexample .scn scenario.")
  in
  let compare_por =
    Arg.(
      value & flag
      & info [ "compare-por" ]
          ~doc:"After a clean sweep, rerun without POR and report the factor.")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Exhaustively model-check delivery orders and crash placements of a \
          small cluster; exit non-zero with a shrunk .scn repro on any \
          safety, agreement or instance-change-liveness violation")
    Term.(
      const run_mc $ requests $ max_faults $ depth $ no_por $ stats_flag
      $ mutate $ seed $ out $ compare_por)

let () =
  let doc = "RBFT: Redundant Byzantine Fault Tolerance (ICDCS 2013) reproduction" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "rbft_sim" ~doc)
          [ run_cmd; trace_spans_cmd; experiment_cmd; compare_cmd; scenario_cmd; mc_cmd;
            explore_cmd; doctor_cmd ]))
