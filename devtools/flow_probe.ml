(* flow_probe: quick saturation probe for the flow-control layer.

   Runs the same saturated fault-free configuration as the perf report
   at 8 B with a chosen admission budget / adaptive-batching setting
   and prints throughput plus the admission and client retry counters,
   so budget tuning doesn't require a full bench regeneration. *)

open Dessim

let () =
  let budget = ref 96 in
  let adaptive = ref true in
  let retry_base_ms = ref 1.0 in
  let rate_mult = ref 1.05 in
  let payload = ref 8 in
  let attack = ref "" in
  let secs = ref 1.0 in
  let rec parse = function
    | [] -> ()
    | "--budget" :: b :: rest ->
      budget := int_of_string b;
      parse rest
    | "--no-adaptive" :: rest ->
      adaptive := false;
      parse rest
    | "--retry-base-ms" :: b :: rest ->
      retry_base_ms := float_of_string b;
      parse rest
    | "--rate-mult" :: m :: rest ->
      rate_mult := float_of_string m;
      parse rest
    | "--secs" :: s :: rest ->
      secs := float_of_string s;
      parse rest
    | "--payload" :: b :: rest ->
      payload := int_of_string b;
      parse rest
    | "--attack" :: a :: rest ->
      attack := a;
      parse rest
    | a :: _ ->
      Printf.eprintf "unknown arg %S\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let f = 1 in
  let peak = Bftharness.Calibrate.saturating_rate ~f Bftharness.Calibrate.Rbft ~size:!payload in
  let rate = peak /. 1.05 *. !rate_mult in
  Printf.printf "peak*1.05=%.0f req/s, offering %.0f req/s\n%!" peak rate;
  let params =
    { (Rbft.Params.default ~f) with
      Rbft.Params.admission_budget = !budget;
      busy_retry_base = Time.of_sec_f (!retry_base_ms /. 1e3);
      adaptive_batching = !adaptive }
  in
  let clients = 20 in
  Bftmetrics.Registry.reset Bftmetrics.Registry.default;
  Bftmetrics.Registry.enable ();
  Bftspan.Tracer.reset ();
  Bftspan.Tracer.enable ~sample:8 ();
  let drops = Hashtbl.create 16 in
  let audit_tok =
    Bftaudit.Bus.subscribe (fun (e : Bftaudit.Event.t) ->
        match e.kind with
        | Bftaudit.Event.Nic_closed { peer; _ } ->
          Printf.printf "[%s] node %d closed NIC to %d\n"
            (Time.to_string e.time) e.node peer
        | Bftaudit.Event.View_entered { view; primary } ->
          Printf.printf "[%s] node %d i%d entered view %d (primary %d)\n"
            (Time.to_string e.time) e.node e.instance view primary
        | Bftaudit.Event.Instance_changed { cpi; _ } ->
          Printf.printf "[%s] node %d instance-change cpi=%d\n"
            (Time.to_string e.time) e.node cpi
        | Bftaudit.Event.Net_dropped { src; reason } ->
          let key = (e.node, src, reason) in
          Hashtbl.replace drops key
            (1 + Option.value ~default:0 (Hashtbl.find_opt drops key))
        | _ -> ())
  in
  let cluster = Rbft.Cluster.create ~clients ~payload_size:!payload params in
  (match !attack with
   | "" -> ()
   | "worst1" -> Rbft.Attacks.worst_attack_1 cluster
   | "worst2" -> Rbft.Attacks.worst_attack_2 cluster
   | a ->
     Printf.eprintf "unknown attack %S\n" a;
     exit 2);
  let engine = Rbft.Cluster.engine cluster in
  ignore engine;
  Array.iter
    (fun c -> Rbft.Client.set_rate c (rate /. float_of_int clients))
    (Rbft.Cluster.clients cluster);
  let total = Time.of_sec_f !secs in
  Rbft.Cluster.run_for cluster (Time.add total (Time.ms 200));
  let node1 = Rbft.Cluster.node cluster 1 in
  let counter = Rbft.Node.executed_counter node1 in
  let tput = Bftmetrics.Throughput.rate_between counter (Time.ms 200) total in
  let sent, completed, busy, retries =
    Array.fold_left
      (fun (s, c, b, r) cl ->
        ( s + Rbft.Client.sent cl,
          c + Rbft.Client.completed cl,
          b + Rbft.Client.busy_replies cl,
          r + Rbft.Client.retries cl ))
      (0, 0, 0, 0) (Rbft.Cluster.clients cluster)
  in
  Printf.printf "throughput %.0f req/s\n" tput;
  Printf.printf "clients: sent %d completed %d busy %d retries %d\n" sent
    completed busy retries;
  for i = 0 to (3 * f) + 1 - 1 do
    let node = Rbft.Cluster.node cluster i in
    Printf.printf "node %d: inflight %d shed %d executed %d\n" i
      (Rbft.Node.admission_inflight node)
      (Rbft.Node.admission_shed node)
      (Rbft.Node.executed_count node);
    Printf.printf "  r0: %s\n"
      (Pbftcore.Replica.debug_dump (Rbft.Node.replica node ~instance:0))
  done;
  List.iter
    (fun s ->
      match s.Bftmetrics.Registry.s_value with
      | Bftmetrics.Registry.Counter_v v
        when s.Bftmetrics.Registry.s_name = "bft_net_dropped_total" && v > 0 ->
        Printf.printf "  %s %s = %d\n" s.Bftmetrics.Registry.s_name
          (String.concat ","
             (List.map snd s.Bftmetrics.Registry.s_labels))
          v
      | Bftmetrics.Registry.Gauge_v v
        when (s.Bftmetrics.Registry.s_name = "bft_thread_backlog"
              || s.Bftmetrics.Registry.s_name = "bft_thread_depth")
             && v > 0.0 ->
        Printf.printf "  %s %s = %g\n" s.Bftmetrics.Registry.s_name
          (String.concat ","
             (List.map snd s.Bftmetrics.Registry.s_labels))
          v
      | _ -> ())
    (Bftmetrics.Registry.snapshot Bftmetrics.Registry.default);
  Bftaudit.Bus.unsubscribe audit_tok;
  Hashtbl.iter
    (fun (node, src, reason) c ->
      Printf.printf "  drops at node %d from %s (%s): %d\n" node src reason c)
    drops;
  Bftspan.Tracer.disable ();
  let summary = Bftspan.Analyze.summarize (Bftspan.Tracer.to_array ()) in
  Printf.printf "breakdown: committed %d e2e p50 %.3fms\n"
    summary.Bftspan.Analyze.committed summary.Bftspan.Analyze.total_p50_ms;
  List.iter
    (fun (r : Bftspan.Analyze.stage_row) ->
      if r.Bftspan.Analyze.share > 0.005 then
        Printf.printf "  %-14s share %.4f p50 %.3fms\n"
          (Bftspan.Tag.name r.Bftspan.Analyze.tag)
          r.Bftspan.Analyze.share r.Bftspan.Analyze.p50_ms)
    summary.Bftspan.Analyze.stages
