open Dessim

(* Every sweep point runs under the online safety auditor; a violation
   raises and kills the sweep, so completing it is a checked run. *)
let run ~f ~rate ~payload =
  Bftaudit.Auditor.reset_declared ();
  let auditor = Bftaudit.Auditor.attach ~n:((3 * f) + 1) ~f () in
  let params = Rbft.Params.default ~f in
  let nc = 30 in
  let cluster = Rbft.Cluster.create ~clients:nc ~payload_size:payload params in
  Array.iter (fun c -> Rbft.Client.set_rate c (rate /. float_of_int nc)) (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.ms 1200);
  let rate = Rbft.Cluster.throughput_between cluster (Time.ms 400) (Time.ms 1200) in
  let checked = Bftaudit.Auditor.events_checked auditor in
  Bftaudit.Auditor.detach auditor;
  (rate, checked)
let () =
  (* Structured timeline of the interesting control-plane events: this
     sweep should be quiet (no instance changes, no closed NICs). *)
  ignore
    (Bftaudit.Bus.subscribe (fun ev ->
         match ev.Bftaudit.Event.kind with
         | Bftaudit.Event.Instance_changed _ | Bftaudit.Event.Instance_change_vote _
         | Bftaudit.Event.Nic_closed _ | Bftaudit.Event.Blacklisted _
         | Bftaudit.Event.View_entered _ ->
           Printf.printf "    event: %s\n%!" (Bftaudit.Event.to_string ev)
         | _ -> ()));
  List.iter (fun (f, payload, rates) ->
      List.iter (fun rate ->
          let achieved, checked = run ~f ~rate ~payload in
          Printf.printf "f=%d size=%d offered=%.1fk achieved=%.1fk audited=%d\n%!"
            f payload (rate /. 1e3) (achieved /. 1e3) checked) rates)
    [ (1, 8, [32e3; 35e3; 38e3]); (1, 4096, [5e3; 6e3; 7e3]); (2, 8, [20e3; 23e3]); (2, 4096, [3e3; 3.6e3]) ]
