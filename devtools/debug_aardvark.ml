open Dessim
let run ~f ~rate ~payload =
  let params = Rbft.Params.default ~f in
  let nc = 30 in
  let cluster = Rbft.Cluster.create ~clients:nc ~payload_size:payload params in
  Array.iter (fun c -> Rbft.Client.set_rate c (rate /. float_of_int nc)) (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.ms 1200);
  Rbft.Cluster.throughput_between cluster (Time.ms 400) (Time.ms 1200)
let () =
  List.iter (fun (f, payload, rates) ->
      List.iter (fun rate ->
          Printf.printf "f=%d size=%d offered=%.1fk achieved=%.1fk\n%!"
            f payload (rate /. 1e3) (run ~f ~rate ~payload /. 1e3)) rates)
    [ (1, 8, [32e3; 35e3; 38e3]); (1, 4096, [5e3; 6e3; 7e3]); (2, 8, [20e3; 23e3]); (2, 4096, [3e3; 3.6e3]) ]
