(* bench_diff: perf-regression gate over two BENCH_*.json reports.

   The benchmark numbers that matter (throughput, latency percentiles,
   relative throughput under attack) are derived from *virtual* time
   in a seeded deterministic simulation, so a fresh run on any machine
   reproduces the committed baseline exactly unless the code's
   behaviour changed. Wall-clock sections (profile, metrics_overhead)
   are machine-dependent and skipped by default.

   Usage:
     bench_diff BASELINE.json FRESH.json [--tolerance 0.15]
                [--skip SUBSTR] [--list]

   Every numeric leaf present in the baseline must exist in the fresh
   report and agree within the relative tolerance; missing keys and
   out-of-tolerance deviations fail the gate (exit 1). Leaves whose
   path contains a skip substring, or whose baseline magnitude is
   below 1e-3 (noise-dominated shares), are ignored. *)

let default_skips =
  [ "profile"; "metrics_overhead"; "seconds"; "share"; "sample"; "calls" ]

(* Flatten a Jmini tree to (dotted-path, number) leaves. *)
let rec flatten prefix (v : Bftdoctor.Jmini.v) acc =
  let join p k = if p = "" then k else p ^ "." ^ k in
  match v with
  | Bftdoctor.Jmini.Num n -> (prefix, n) :: acc
  | Bftdoctor.Jmini.Obj kvs ->
    List.fold_left (fun acc (k, v) -> flatten (join prefix k) v acc) acc kvs
  | Bftdoctor.Jmini.Arr vs ->
    List.fold_left
      (fun (i, acc) v -> (i + 1, flatten (join prefix (string_of_int i)) v acc))
      (0, acc) vs
    |> snd
  | Bftdoctor.Jmini.Null | Bftdoctor.Jmini.Bool _ | Bftdoctor.Jmini.Str _ ->
    acc

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try Bftdoctor.Jmini.parse s
  with Bftdoctor.Jmini.Parse_error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 2

let () =
  let baseline = ref None and fresh = ref None in
  let tolerance = ref 0.15 in
  let skips = ref default_skips in
  let list_all = ref false in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: t :: rest ->
      (match float_of_string_opt t with
      | Some t when t >= 0.0 -> tolerance := t
      | _ ->
        Printf.eprintf "bad --tolerance %S\n" t;
        exit 2);
      parse rest
    | "--skip" :: s :: rest ->
      skips := s :: !skips;
      parse rest
    | "--list" :: rest ->
      list_all := true;
      parse rest
    | path :: rest ->
      (if !baseline = None then baseline := Some path
       else if !fresh = None then fresh := Some path
       else begin
         Printf.eprintf "unexpected argument %S\n" path;
         exit 2
       end);
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline, fresh =
    match (!baseline, !fresh) with
    | Some b, Some f -> (b, f)
    | _ ->
      Printf.eprintf
        "usage: bench_diff BASELINE.json FRESH.json [--tolerance T] [--skip \
         SUBSTR] [--list]\n";
      exit 2
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let skipped path = List.exists (contains path) !skips in
  let base_leaves =
    flatten "" (read_json baseline) []
    |> List.filter (fun (p, v) -> (not (skipped p)) && Float.abs v >= 1e-3)
    |> List.sort compare
  in
  let fresh_tbl = Hashtbl.create 256 in
  List.iter
    (fun (p, v) -> Hashtbl.replace fresh_tbl p v)
    (flatten "" (read_json fresh) []);
  let failures = ref [] in
  let compared = ref 0 in
  List.iter
    (fun (path, bv) ->
      match Hashtbl.find_opt fresh_tbl path with
      | None -> failures := Printf.sprintf "%s: missing in %s" path fresh :: !failures
      | Some fv ->
        incr compared;
        let rel = Float.abs (fv -. bv) /. Float.abs bv in
        if !list_all then
          Printf.printf "  %-60s %14.6g %14.6g %+7.2f%%\n" path bv fv
            (100.0 *. (fv -. bv) /. bv);
        if rel > !tolerance then
          failures :=
            Printf.sprintf "%s: baseline %.6g, fresh %.6g (%+.1f%%, tolerance ±%.0f%%)"
              path bv fv
              (100.0 *. (fv -. bv) /. bv)
              (100.0 *. !tolerance)
            :: !failures)
    base_leaves;
  match List.rev !failures with
  | [] ->
    Printf.printf "bench_diff: %d leaves within ±%.0f%% of %s\n" !compared
      (100.0 *. !tolerance) baseline
  | fs ->
    Printf.eprintf "bench_diff: %d regression(s) vs %s:\n" (List.length fs)
      baseline;
    List.iter (fun f -> Printf.eprintf "  %s\n" f) fs;
    exit 1
