(* bench_diff: perf-regression gate over two BENCH_*.json reports.

   The benchmark numbers that matter (throughput, latency percentiles,
   relative throughput under attack) are derived from *virtual* time
   in a seeded deterministic simulation, so a fresh run on any machine
   reproduces the committed baseline exactly unless the code's
   behaviour changed. Wall-clock sections (profile, metrics_overhead)
   are machine-dependent and skipped by default.

   Usage:
     bench_diff BASELINE.json FRESH.json [--tolerance 0.15]
                [--skip SUBSTR] [--list]
     bench_diff --scale-check BENCH_scale.json
     bench_diff --clients-check BENCH_clients.json

   Every numeric leaf present in the baseline must exist in the fresh
   report and agree within the relative tolerance; missing keys and
   out-of-tolerance deviations fail the gate (exit 1). Leaves whose
   path contains a skip substring, or whose baseline magnitude is
   below 1e-3 (noise-dominated shares), are ignored.

   [--scale-check] instead validates a single BENCH_scale.json
   structurally: cluster shapes, positive headline numbers, and the
   two scaling laws — redundant ordering loses throughput with every
   extra fault tolerated while concurrent (bftrcc) ordering gains it,
   with f = 3 concurrent at least 1.5x the f = 1 value.

   [--clients-check] validates a single BENCH_clients.json
   structurally: at least three sweep points with strictly increasing
   population sizes reaching 10^4 clients, each reporting positive
   throughput, GC statistics with a positive peak live-words figure,
   and a non-empty per-structure footprint-peak table — plus the
   capacity law the sweep exists to watch: peak live words must grow
   with the population (client endpoints cost memory), while no
   per-structure footprint peak may grow proportionally with it
   (that would be an unbounded per-client table).

   [--breakdown-check] validates a single BENCH_rbft.json's latency
   attribution: per-stage shares must sum to ~1.0 for every request
   size (the tracer accounted for the whole end-to-end path), the 8 B
   queue-wait share must stay below --queue-wait-max (default 0.5 —
   the flow-control layer's reason to exist), and the fault-free 8 B
   throughput must not dip below --min-throughput (backpressure is
   only allowed to cut waiting, not capacity). Shares are in the
   default skip list of the two-file diff precisely because they are
   gated here structurally instead. *)

let default_skips =
  [ "profile"; "metrics_overhead"; "seconds"; "share"; "sample"; "calls" ]

(* Flatten a Jmini tree to (dotted-path, number) leaves. *)
let rec flatten prefix (v : Bftdoctor.Jmini.v) acc =
  let join p k = if p = "" then k else p ^ "." ^ k in
  match v with
  | Bftdoctor.Jmini.Num n -> (prefix, n) :: acc
  | Bftdoctor.Jmini.Obj kvs ->
    List.fold_left (fun acc (k, v) -> flatten (join prefix k) v acc) acc kvs
  | Bftdoctor.Jmini.Arr vs ->
    List.fold_left
      (fun (i, acc) v -> (i + 1, flatten (join prefix (string_of_int i)) v acc))
      (0, acc) vs
    |> snd
  | Bftdoctor.Jmini.Null | Bftdoctor.Jmini.Bool _ | Bftdoctor.Jmini.Str _ ->
    acc

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try Bftdoctor.Jmini.parse s
  with Bftdoctor.Jmini.Parse_error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 2

(* Structural gate over the scaling sweep: replaces the shell-side
   monotonicity check that used to live in CI. Exit 1 with every
   complaint listed, so a broken report shows all its problems at
   once. *)
let scale_check path =
  let v = read_json path in
  let problems = ref [] in
  let complain fmt =
    Printf.ksprintf (fun m -> problems := m :: !problems) fmt
  in
  let obj = function Bftdoctor.Jmini.Obj kvs -> Some kvs | _ -> None in
  let field kvs k = List.assoc_opt k kvs in
  let num kvs k =
    match field kvs k with Some (Bftdoctor.Jmini.Num n) -> Some n | _ -> None
  in
  let headline =
    [ "throughput_req_s"; "latency_p50_ms"; "latency_p99_ms";
      "ordering_p50_ms"; "ordering_p99_ms" ]
  in
  let check_block label kvs =
    List.iter
      (fun k ->
        match num kvs k with
        | Some n when n > 0.0 -> ()
        | Some n -> complain "%s.%s non-positive: %g" label k n
        | None -> complain "%s.%s missing" label k)
      headline
  in
  let sweep =
    match obj v with
    | Some kvs -> field kvs "sweep" |> Option.map obj |> Option.join
    | None -> None
  in
  (match sweep with
   | None -> complain "no sweep section"
   | Some sweep ->
     let redundant = Array.make 3 0.0 and concurrent = Array.make 3 0.0 in
     for f = 1 to 3 do
       let fkey = Printf.sprintf "f%d" f in
       match field sweep fkey |> Option.map obj |> Option.join with
       | None -> complain "sweep.%s missing" fkey
       | Some row ->
         if num row "n" <> Some (float_of_int ((3 * f) + 1)) then
           complain "sweep.%s.n should be %d" fkey ((3 * f) + 1);
         if num row "instances" <> Some (float_of_int (f + 1)) then
           complain "sweep.%s.instances should be %d" fkey (f + 1);
         check_block ("sweep." ^ fkey) row;
         (match num row "throughput_req_s" with
          | Some n -> redundant.(f - 1) <- n
          | None -> ());
         (match field row "concurrent" |> Option.map obj |> Option.join with
          | None -> complain "sweep.%s.concurrent missing" fkey
          | Some c ->
            check_block ("sweep." ^ fkey ^ ".concurrent") c;
            (match num c "throughput_req_s" with
             | Some n -> concurrent.(f - 1) <- n
             | None -> ()))
     done;
     (* Redundant ordering: added instances are pure overhead, so
        throughput must fall with every extra fault tolerated. *)
     if not (redundant.(0) > redundant.(1) && redundant.(1) > redundant.(2))
     then
       complain "redundant throughput should decrease with f, got %g > %g > %g"
         redundant.(0) redundant.(1) redundant.(2);
     (* Concurrent ordering: disjoint partitions turn the same
        instances into capacity, so throughput must rise instead —
        and by at least 1.5x from f = 1 to f = 3 (the headline claim
        of the bftrcc subsystem). *)
     if not (concurrent.(0) < concurrent.(1) && concurrent.(1) < concurrent.(2))
     then
       complain "concurrent throughput should increase with f, got %g < %g < %g"
         concurrent.(0) concurrent.(1) concurrent.(2);
     if concurrent.(0) > 0.0 && concurrent.(2) < 1.5 *. concurrent.(0) then
       complain "concurrent f3 is %.2fx f1, need >= 1.5x"
         (concurrent.(2) /. concurrent.(0));
     if !problems = [] then
       Printf.printf
         "scale-check ok: redundant %.0f > %.0f > %.0f req/s, concurrent %.0f \
          < %.0f < %.0f req/s (f3 = %.2fx f1)\n"
         redundant.(0) redundant.(1) redundant.(2) concurrent.(0)
         concurrent.(1) concurrent.(2)
         (concurrent.(2) /. concurrent.(0)));
  match List.rev !problems with
  | [] -> ()
  | ps ->
    Printf.eprintf "scale-check: %d problem(s) in %s:\n" (List.length ps) path;
    List.iter (fun p -> Printf.eprintf "  %s\n" p) ps;
    exit 1

(* Structural gate over the client-population capacity sweep. Numbers
   are virtual-time deterministic, so the structural laws hold exactly
   on every machine; the absolute values are gated by the committed
   baseline through the ordinary two-file diff. *)
let clients_check path =
  let v = read_json path in
  let problems = ref [] in
  let complain fmt =
    Printf.ksprintf (fun m -> problems := m :: !problems) fmt
  in
  let obj = function Bftdoctor.Jmini.Obj kvs -> Some kvs | _ -> None in
  let field kvs k = List.assoc_opt k kvs in
  let num kvs k =
    match field kvs k with Some (Bftdoctor.Jmini.Num n) -> Some n | _ -> None
  in
  let sweep =
    match obj v with
    | Some kvs ->
      (match field kvs "sweep" with
       | Some (Bftdoctor.Jmini.Arr points) -> Some points
       | _ -> None)
    | None -> None
  in
  (match sweep with
   | None -> complain "no sweep array"
   | Some points ->
     if List.length points < 3 then
       complain "sweep has %d point(s), need >= 3" (List.length points);
     let prev_clients = ref 0.0 in
     let max_clients = ref 0.0 in
     let first_live = ref None and last_live = ref None in
     (* name -> (clients, peak) of first and last sightings, for the
        proportional-growth check. *)
     let fp_first = Hashtbl.create 16 and fp_last = Hashtbl.create 16 in
     List.iteri
       (fun i point ->
         let label = Printf.sprintf "sweep.%d" i in
         match obj point with
         | None -> complain "%s is not an object" label
         | Some row ->
           let clients = Option.value ~default:0.0 (num row "clients") in
           if clients <= !prev_clients then
             complain "%s.clients %g not increasing (prev %g)" label clients
               !prev_clients;
           prev_clients := clients;
           if clients > !max_clients then max_clients := clients;
           List.iter
             (fun k ->
               match num row k with
               | Some n when n > 0.0 -> ()
               | Some n -> complain "%s.%s non-positive: %g" label k n
               | None -> complain "%s.%s missing" label k)
             [ "active"; "offered_req"; "throughput_req_s";
               "latency_p50_ms"; "latency_p99_ms" ];
           (match field row "gc" |> Option.map obj |> Option.join with
            | None -> complain "%s.gc missing" label
            | Some gc ->
              (match num gc "peak_live_words" with
               | Some n when n > 0.0 ->
                 if !first_live = None then first_live := Some n;
                 last_live := Some n
               | Some n -> complain "%s.gc.peak_live_words non-positive: %g" label n
               | None -> complain "%s.gc.peak_live_words missing" label);
              List.iter
                (fun k ->
                  if num gc k = None then complain "%s.gc.%s missing" label k)
                [ "minor_collections"; "major_collections"; "minor_words";
                  "promoted_words"; "peak_heap_words" ]);
           (match field row "footprint_peak" |> Option.map obj |> Option.join
            with
            | None -> complain "%s.footprint_peak missing" label
            | Some fps ->
              if fps = [] then complain "%s.footprint_peak is empty" label;
              List.iter
                (fun (name, v) ->
                  match v with
                  | Bftdoctor.Jmini.Num peak ->
                    if not (Hashtbl.mem fp_first name) then
                      Hashtbl.replace fp_first name (clients, peak);
                    Hashtbl.replace fp_last name (clients, peak)
                  | _ -> complain "%s.footprint_peak.%s not a number" label name)
                fps))
       points;
     if !max_clients < 10_000.0 then
       complain "largest sweep point is %g clients, need >= 10000" !max_clients;
     (* Capacity law 1: memory grows with the population. *)
     (match (!first_live, !last_live) with
      | Some a, Some b when b <= a ->
        complain
          "peak live words %g at the largest population <= %g at the \
           smallest — population size should cost memory"
          b a
      | _ -> ());
     (* Capacity law 2: no per-structure peak may scale with the
        population — growing half as fast as clients (or worse) over
        a >= 10x population spread means an unbounded per-client
        table slipped back in. *)
     Hashtbl.iter
       (fun name (c1, p1) ->
         let c0, p0 = Hashtbl.find fp_first name in
         if c1 >= 10.0 *. c0 && p0 > 0.0 && p1 /. p0 >= 0.5 *. (c1 /. c0)
         then
           complain
             "footprint %s peak grew %.0fx over a %.0fx population spread — \
              unbounded per-client structure?"
             name (p1 /. p0) (c1 /. c0))
       fp_last);
  match List.rev !problems with
  | [] ->
    Printf.printf
      "clients-check ok: >= 3 increasing population points reaching >= 10^4 \
       clients, GC and footprint series present, no structure scaling with \
       the population\n"
  | ps ->
    Printf.eprintf "clients-check: %d problem(s) in %s:\n" (List.length ps)
      path;
    List.iter (fun p -> Printf.eprintf "  %s\n" p) ps;
    exit 1

(* Structural gate over the latency attribution of one BENCH_rbft.json:
   the breakdown must cover the whole path (shares sum to ~1) and the
   queue-wait wall must stay down. Mirrors [scale_check]: every
   complaint listed, exit 1 on any. *)
let breakdown_check ~queue_wait_max ~min_throughput path =
  let v = read_json path in
  let problems = ref [] in
  let complain fmt =
    Printf.ksprintf (fun m -> problems := m :: !problems) fmt
  in
  let obj = function Bftdoctor.Jmini.Obj kvs -> Some kvs | _ -> None in
  let field kvs k = List.assoc_opt k kvs in
  let num kvs k =
    match field kvs k with Some (Bftdoctor.Jmini.Num n) -> Some n | _ -> None
  in
  let section k =
    match obj v with
    | Some kvs -> field kvs k |> Option.map obj |> Option.join
    | None -> None
  in
  (match section "latency_breakdown" with
   | None -> complain "no latency_breakdown section"
   | Some sizes ->
     if sizes = [] then complain "latency_breakdown is empty";
     List.iter
       (fun (size, row) ->
         match obj row with
         | None -> complain "latency_breakdown.%s is not an object" size
         | Some row ->
           (match field row "stages" |> Option.map obj |> Option.join with
            | None -> complain "latency_breakdown.%s.stages missing" size
            | Some stages ->
              let sum =
                List.fold_left
                  (fun acc (_, stage) ->
                    match obj stage with
                    | Some kvs ->
                      acc +. Option.value ~default:0.0 (num kvs "share")
                    | None -> acc)
                  0.0 stages
              in
              if sum < 0.99 || sum > 1.01 then
                complain
                  "latency_breakdown.%s stage shares sum to %.4f, want ~1.0"
                  size sum;
              let queue_wait =
                match field stages "queue-wait" |> Option.map obj |> Option.join
                with
                | Some kvs -> Option.value ~default:0.0 (num kvs "share")
                | None -> 0.0
              in
              if size = "8B" && queue_wait >= queue_wait_max then
                complain
                  "latency_breakdown.8B queue-wait share %.4f, want < %.2f"
                  queue_wait queue_wait_max))
       sizes);
  (if min_throughput > 0.0 then
     match section "fault_free" with
     | None -> complain "no fault_free section"
     | Some sizes ->
       (match field sizes "8B" |> Option.map obj |> Option.join with
        | None -> complain "fault_free.8B missing"
        | Some row ->
          (match num row "throughput_req_s" with
           | Some n when n >= min_throughput -> ()
           | Some n ->
             complain "fault_free.8B throughput %.0f req/s, want >= %.0f" n
               min_throughput
           | None -> complain "fault_free.8B.throughput_req_s missing")));
  match List.rev !problems with
  | [] ->
    Printf.printf
      "breakdown-check ok: shares sum to ~1.0, 8B queue-wait < %.2f%s\n"
      queue_wait_max
      (if min_throughput > 0.0 then
         Printf.sprintf ", throughput >= %.0f req/s" min_throughput
       else "")
  | ps ->
    Printf.eprintf "breakdown-check: %d problem(s) in %s:\n" (List.length ps)
      path;
    List.iter (fun p -> Printf.eprintf "  %s\n" p) ps;
    exit 1

let () =
  let baseline = ref None and fresh = ref None in
  let scale = ref None in
  let clients = ref None in
  let breakdown = ref None in
  let queue_wait_max = ref 0.5 in
  let min_throughput = ref 0.0 in
  let tolerance = ref 0.15 in
  let skips = ref default_skips in
  let list_all = ref false in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: t :: rest ->
      (match float_of_string_opt t with
      | Some t when t >= 0.0 -> tolerance := t
      | _ ->
        Printf.eprintf "bad --tolerance %S\n" t;
        exit 2);
      parse rest
    | "--skip" :: s :: rest ->
      skips := s :: !skips;
      parse rest
    | "--list" :: rest ->
      list_all := true;
      parse rest
    | "--scale-check" :: path :: rest ->
      scale := Some path;
      parse rest
    | "--clients-check" :: path :: rest ->
      clients := Some path;
      parse rest
    | "--breakdown-check" :: path :: rest ->
      breakdown := Some path;
      parse rest
    | "--queue-wait-max" :: x :: rest ->
      (match float_of_string_opt x with
      | Some x when x > 0.0 -> queue_wait_max := x
      | _ ->
        Printf.eprintf "bad --queue-wait-max %S\n" x;
        exit 2);
      parse rest
    | "--min-throughput" :: x :: rest ->
      (match float_of_string_opt x with
      | Some x when x >= 0.0 -> min_throughput := x
      | _ ->
        Printf.eprintf "bad --min-throughput %S\n" x;
        exit 2);
      parse rest
    | path :: rest ->
      (if !baseline = None then baseline := Some path
       else if !fresh = None then fresh := Some path
       else begin
         Printf.eprintf "unexpected argument %S\n" path;
         exit 2
       end);
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !scale with
   | Some path ->
     scale_check path;
     exit 0
   | None -> ());
  (match !clients with
   | Some path ->
     clients_check path;
     exit 0
   | None -> ());
  (match !breakdown with
   | Some path ->
     breakdown_check ~queue_wait_max:!queue_wait_max
       ~min_throughput:!min_throughput path;
     exit 0
   | None -> ());
  let baseline, fresh =
    match (!baseline, !fresh) with
    | Some b, Some f -> (b, f)
    | _ ->
      Printf.eprintf
        "usage: bench_diff BASELINE.json FRESH.json [--tolerance T] [--skip \
         SUBSTR] [--list] | bench_diff --scale-check REPORT.json | bench_diff \
         --clients-check REPORT.json | bench_diff --breakdown-check \
         REPORT.json [--queue-wait-max X] [--min-throughput Y]\n";
      exit 2
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let skipped path = List.exists (contains path) !skips in
  let base_leaves =
    flatten "" (read_json baseline) []
    |> List.filter (fun (p, v) -> (not (skipped p)) && Float.abs v >= 1e-3)
    |> List.sort compare
  in
  let fresh_tbl = Hashtbl.create 256 in
  List.iter
    (fun (p, v) -> Hashtbl.replace fresh_tbl p v)
    (flatten "" (read_json fresh) []);
  let failures = ref [] in
  let compared = ref 0 in
  List.iter
    (fun (path, bv) ->
      match Hashtbl.find_opt fresh_tbl path with
      | None -> failures := Printf.sprintf "%s: missing in %s" path fresh :: !failures
      | Some fv ->
        incr compared;
        let rel = Float.abs (fv -. bv) /. Float.abs bv in
        if !list_all then
          Printf.printf "  %-60s %14.6g %14.6g %+7.2f%%\n" path bv fv
            (100.0 *. (fv -. bv) /. bv);
        if rel > !tolerance then
          failures :=
            Printf.sprintf "%s: baseline %.6g, fresh %.6g (%+.1f%%, tolerance ±%.0f%%)"
              path bv fv
              (100.0 *. (fv -. bv) /. bv)
              (100.0 *. !tolerance)
            :: !failures)
    base_leaves;
  match List.rev !failures with
  | [] ->
    Printf.printf "bench_diff: %d leaves within ±%.0f%% of %s\n" !compared
      (100.0 *. !tolerance) baseline
  | fs ->
    Printf.eprintf "bench_diff: %d regression(s) vs %s:\n" (List.length fs)
      baseline;
    List.iter (fun f -> Printf.eprintf "  %s\n" f) fs;
    exit 1
