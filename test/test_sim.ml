(* Tests for the discrete-event simulation substrate. *)

open Dessim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Time                                                               *)
(* ------------------------------------------------------------------ *)

let test_time_units () =
  check_int "us" 1_000 (Time.us 1);
  check_int "ms" 1_000_000 (Time.ms 1);
  check_int "sec" 1_000_000_000 (Time.sec 1);
  check_int "of_sec_f" 1_500_000_000 (Time.of_sec_f 1.5);
  check_int "of_us_f" 2_500 (Time.of_us_f 2.5)

let test_time_arith () =
  check_int "add" (Time.ms 3) (Time.add (Time.ms 1) (Time.ms 2));
  check_int "sub" (Time.ms 1) (Time.sub (Time.ms 3) (Time.ms 2));
  check_int "mul_f" (Time.ms 2) (Time.mul_f (Time.ms 4) 0.5);
  Alcotest.(check (float 1e-9)) "to_sec_f" 0.25 (Time.to_sec_f (Time.ms 250));
  Alcotest.(check (float 1e-9)) "to_ms_f" 1.5 (Time.to_ms_f (Time.us 1500))

let test_time_pp () =
  Alcotest.(check string) "ns" "12ns" (Time.to_string (Time.ns 12));
  Alcotest.(check string) "us" "2.00us" (Time.to_string (Time.us 2));
  Alcotest.(check string) "ms" "3.00ms" (Time.to_string (Time.ms 3));
  Alcotest.(check string) "s" "4.000s" (Time.to_string (Time.sec 4))

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 42L in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int64 a) in
  let ys = List.init 10 (fun _ -> Rng.int64 b) in
  check_bool "streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.float r 3.5 in
    check_bool "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_exponential_mean () =
  let r = Rng.create 11L in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.exponential r ~mean:2.0 in
    check_bool "positive" true (v >= 0.0);
    total := !total +. v
  done;
  let mean = !total /. float_of_int n in
  check_bool "mean close to 2" true (mean > 1.9 && mean < 2.1)

let test_rng_shuffle_permutation () =
  let r = Rng.create 3L in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_bytes_len () =
  let r = Rng.create 5L in
  List.iter
    (fun n -> check_int "length" n (Bytes.length (Rng.bytes r n)))
    [ 0; 1; 7; 8; 9; 64; 1000 ]

let prop_rng_int_uniformish =
  QCheck.Test.make ~name:"rng ints hit all small buckets"
    QCheck.(int_bound 1000)
    (fun seed ->
      let r = Rng.create (Int64.of_int (seed + 1)) in
      let seen = Array.make 8 false in
      for _ = 1 to 400 do
        seen.(Rng.int r 8) <- true
      done;
      Array.for_all (fun b -> b) seen)

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_order () =
  let h = Heap.create () in
  List.iteri (fun i k -> Heap.push h ~key:k ~seq:i k) [ 5; 3; 9; 1; 7; 3 ];
  let rec drain acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (k, _, _) -> drain (k :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 3; 5; 7; 9 ] (drain [])

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iteri (fun i v -> Heap.push h ~key:10 ~seq:i v) [ "a"; "b"; "c" ];
  let rec drain acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (_, _, v) -> drain (v :: acc)
  in
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ] (drain [])

let test_heap_empty () =
  let h = Heap.create () in
  check_bool "empty" true (Heap.is_empty h);
  check_bool "pop none" true (Heap.pop h = None);
  check_bool "peek none" true (Heap.peek_key h = None)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h ~key:1 ~seq:0 ();
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let test_heap_drops_popped_references () =
  (* Popped and cleared slots must not keep their values alive: track
     each pushed value with a weak pointer and check it is collected
     once it leaves the heap, even though the heap itself stays live. *)
  let h = Heap.create () in
  let n = 8 in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let v = ref i in
    Weak.set weak i (Some v);
    Heap.push h ~key:i ~seq:i v
  done;
  for i = 0 to (n / 2) - 1 do
    (match Heap.pop h with
    | Some (k, _, _) -> check_int "pop order" i k
    | None -> Alcotest.fail "heap empty too early");
    Gc.full_major ();
    check_bool
      (Printf.sprintf "popped value %d collected" i)
      true
      (Weak.get weak i = None);
    check_bool
      (Printf.sprintf "resident value %d retained" (i + 1))
      true
      (Weak.get weak (n - 1) <> None)
  done;
  Heap.clear h;
  Gc.full_major ();
  for i = n / 2 to n - 1 do
    check_bool
      (Printf.sprintf "cleared value %d collected" i)
      true
      (Weak.get weak i = None)
  done;
  (* The heap stays usable after the sweep. *)
  Heap.push h ~key:42 ~seq:0 (ref 42);
  check_bool "usable after clear" true (Heap.peek_key h = Some 42)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in key order"
    QCheck.(list (int_bound 10_000))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i ()) keys;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (k, _, ()) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

let prop_heap_tie_total_order =
  (* Keys drawn from {0..3} so almost every pop is a tie: the (key, seq)
     order must be total — pops equal a stable sort of the insertion
     sequence, which is what makes whole simulations replayable. *)
  QCheck.Test.make ~name:"same-key pops follow insertion order"
    QCheck.(list_of_size Gen.(int_range 0 200) (int_bound 3))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i (k, i)) keys;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (_, _, v) -> drain (v :: acc)
      in
      drain []
      = List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i k -> (k, i)) keys))

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  let record tag () = log := (tag, Engine.now e) :: !log in
  ignore (Engine.after e (Time.ms 3) (record "c"));
  ignore (Engine.after e (Time.ms 1) (record "a"));
  ignore (Engine.after e (Time.ms 2) (record "b"));
  Engine.run e;
  let expected =
    [ ("a", Time.ms 1); ("b", Time.ms 2); ("c", Time.ms 3) ]
  in
  Alcotest.(check (list (pair string int))) "order" expected (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.after e (Time.ms 10) (fun () -> fired := true));
  Engine.run ~until:(Time.ms 5) e;
  check_bool "not yet" false !fired;
  check_int "clock at horizon" (Time.ms 5) (Engine.now e);
  Engine.run ~until:(Time.ms 20) e;
  check_bool "fired" true !fired;
  check_int "clock at second horizon" (Time.ms 20) (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let t = Engine.after e (Time.ms 1) (fun () -> fired := true) in
  check_bool "pending" true (Engine.pending t);
  Engine.cancel t;
  Engine.run e;
  check_bool "cancelled" false !fired;
  check_bool "not pending" false (Engine.pending t)

let test_engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Engine.after e (Time.ms 1) (fun () ->
           incr count;
           if !count = 3 then Engine.stop e))
  done;
  Engine.run e;
  check_int "stopped after 3" 3 !count;
  Engine.run e;
  check_int "resumes" 10 !count

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let finish = ref Time.zero in
  ignore
    (Engine.after e (Time.ms 1) (fun () ->
         ignore
           (Engine.after e (Time.ms 1) (fun () -> finish := Engine.now e))));
  Engine.run e;
  check_int "nested time" (Time.ms 2) !finish

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.after e (Time.ms 1) (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_events_processed () =
  let e = Engine.create () in
  for _ = 1 to 4 do
    ignore (Engine.after e Time.zero (fun () -> ()))
  done;
  Engine.run e;
  check_int "processed" 4 (Engine.events_processed e)

let test_engine_past_event_clamped () =
  let e = Engine.create () in
  ignore (Engine.after e (Time.ms 5) (fun () ->
      (* Scheduling "in the past" must not move the clock backwards. *)
      ignore (Engine.at e (Time.ms 1) (fun () ->
          check_int "clamped to now" (Time.ms 5) (Engine.now e)))));
  Engine.run e

(* ------------------------------------------------------------------ *)
(* Engine choice seam (the model checker's scheduler hook)            *)
(* ------------------------------------------------------------------ *)

let test_choice_passthrough_when_off () =
  let e = Engine.create () in
  let fired = ref Time.zero in
  ignore
    (Engine.at_choice e (Time.ms 2) ~src:0 ~dst:1 ~label:"m" (fun () ->
         fired := Engine.now e));
  Engine.run e;
  check_int "fires like a plain event" (Time.ms 2) !fired;
  check_int "nothing parked" 0 (Engine.pending_choice_count e)

let test_choice_capture_parks_and_fires () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.set_choice_capture e true;
  ignore
    (Engine.at_choice e (Time.ms 1) ~src:0 ~dst:1 ~label:"a" (fun () ->
         log := ("a", Engine.now e) :: !log));
  ignore
    (Engine.at_choice e (Time.ms 2) ~src:0 ~dst:2 ~label:"b" (fun () ->
         log := ("b", Engine.now e) :: !log));
  Engine.run ~until:(Time.ms 10) e;
  check_bool "parked past their instants" true (!log = []);
  (match Engine.pending_choices e with
   | [ a; b ] ->
     check_bool "listed in id order" true (a.Engine.id < b.Engine.id);
     Alcotest.(check string) "label" "a" a.Engine.label;
     check_int "src" 0 b.Engine.src;
     check_int "dst" 2 b.Engine.dst;
     (* Fire against timestamp order: the checker's whole point. *)
     check_bool "fire b" true (Engine.fire_choice e b.Engine.id);
     check_bool "fire a" true (Engine.fire_choice e a.Engine.id)
   | other -> Alcotest.failf "expected 2 parked choices, got %d" (List.length other));
  (* Both ran at the clock — firing never advances virtual time — and
     in the chosen order, not key order. *)
  Alcotest.(check (list (pair string int)))
    "chosen order, at the clock"
    [ ("b", Time.ms 10); ("a", Time.ms 10) ]
    (List.rev !log);
  check_int "clock unmoved" (Time.ms 10) (Engine.now e);
  check_bool "unknown id refused" false (Engine.fire_choice e 999);
  check_int "all consumed" 0 (Engine.pending_choice_count e)

let test_choice_release_restores_timestamp_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.set_choice_capture e true;
  ignore
    (Engine.at_choice e (Time.ms 5) ~src:0 ~dst:1 ~label:"late" (fun () ->
         log := ("late", Engine.now e) :: !log));
  ignore
    (Engine.at_choice e (Time.ms 3) ~src:0 ~dst:2 ~label:"early" (fun () ->
         log := ("early", Engine.now e) :: !log));
  Engine.run ~until:(Time.ms 1) e;
  Engine.set_choice_capture e false;
  Engine.release_choices e;
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "released back to key order"
    [ ("early", Time.ms 3); ("late", Time.ms 5) ]
    (List.rev !log)

let test_choice_release_clamps_past_keys () =
  let e = Engine.create () in
  let at = ref Time.zero in
  Engine.set_choice_capture e true;
  ignore
    (Engine.at_choice e (Time.ms 1) ~src:0 ~dst:1 ~label:"x" (fun () ->
         at := Engine.now e));
  (* The clock overtakes the parked key; release must not schedule into
     the past. *)
  Engine.run ~until:(Time.ms 8) e;
  Engine.release_choices e;
  Engine.run e;
  check_int "clamped to now" (Time.ms 8) !at

let test_choice_cancel_while_parked () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.set_choice_capture e true;
  let t =
    Engine.at_choice e (Time.ms 1) ~src:0 ~dst:1 ~label:"x" (fun () ->
        fired := true)
  in
  Engine.run ~until:(Time.ms 2) e;
  Engine.cancel t;
  check_int "cancelled choice not listed" 0 (Engine.pending_choice_count e);
  Engine.release_choices e;
  Engine.run e;
  check_bool "never fires" false !fired

(* ------------------------------------------------------------------ *)
(* Resource                                                           *)
(* ------------------------------------------------------------------ *)

let test_resource_fifo_service () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" in
  let log = ref [] in
  Resource.submit r ~cost:(Time.ms 2) (fun () -> log := ("a", Engine.now e) :: !log);
  Resource.submit r ~cost:(Time.ms 3) (fun () -> log := ("b", Engine.now e) :: !log);
  Engine.run e;
  let expected = [ ("a", Time.ms 2); ("b", Time.ms 5) ] in
  Alcotest.(check (list (pair string int))) "fifo completion" expected (List.rev !log)

let test_resource_idle_gap () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" in
  let done_at = ref Time.zero in
  Resource.submit r ~cost:(Time.ms 1) (fun () -> ());
  ignore
    (Engine.after e (Time.ms 10) (fun () ->
         Resource.submit r ~cost:(Time.ms 1) (fun () -> done_at := Engine.now e)));
  Engine.run e;
  check_int "starts at submission" (Time.ms 11) !done_at

let test_resource_charge_pushes_back () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" in
  let second = ref Time.zero in
  Resource.submit r ~cost:(Time.ms 1) (fun () ->
      (* The handler performs extra work: sending messages, MACs... *)
      Resource.charge r (Time.ms 4));
  Resource.submit r ~cost:(Time.ms 1) (fun () -> second := Engine.now e);
  Engine.run e;
  check_int "second delayed by charge" (Time.ms 6) !second

let test_resource_accounting () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" in
  Resource.submit r ~cost:(Time.ms 2) (fun () -> ());
  Resource.submit r ~cost:(Time.ms 3) (fun () -> ());
  Engine.run e;
  check_int "busy total" (Time.ms 5) (Resource.busy_total r);
  check_int "jobs" 2 (Resource.jobs_served r);
  check_int "no backlog when idle" Time.zero (Resource.backlog r)

let prop_resource_completion_monotonic =
  QCheck.Test.make ~name:"resource completions are monotonic and FIFO"
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 0 1000))
    (fun costs ->
      let e = Engine.create () in
      let r = Resource.create e ~name:"cpu" in
      let completions = ref [] in
      List.iteri
        (fun i c ->
          Resource.submit r ~cost:(Time.us c) (fun () ->
              completions := (i, Engine.now e) :: !completions))
        costs;
      Engine.run e;
      let completions = List.rev !completions in
      let indices = List.map fst completions in
      let times = List.map snd completions in
      let rec sorted = function
        | [] | [ _ ] -> true
        | a :: b :: tl -> a <= b && sorted (b :: tl)
      in
      indices = List.init (List.length costs) (fun i -> i) && sorted times)

(* The O(1) running-sum backlog must agree with the O(n) fold over the
   queue at every observable instant: before and after each submit,
   after partial runs that land mid-service, inside handlers (including
   ones that [charge] extra work), and at drain. *)
let prop_resource_backlog_matches_fold =
  QCheck.Test.make ~name:"incremental backlog matches the fold reference"
    QCheck.(
      list_of_size
        Gen.(int_range 1 30)
        (triple (int_range 0 500) (int_range 0 400) bool))
    (fun ops ->
      let e = Engine.create () in
      let r = Resource.create e ~name:"cpu" in
      let ok = ref true in
      let check () =
        if
          Resource.backlog r <> Resource.backlog_fold r
          || Resource.backlog r < Time.zero
        then ok := false
      in
      List.iter
        (fun (cost, advance, charges) ->
          check ();
          Resource.submit r ~cost:(Time.us cost) (fun () ->
              if charges then Resource.charge r (Time.us 150);
              check ());
          check ();
          Engine.run ~until:(Time.add (Engine.now e) (Time.us advance)) e;
          check ())
        ops;
      (* A trailing [charge] can leave [busy_until] past the last event,
         so park the clock beyond every possible busy period before
         asserting the drained backlog is zero. *)
      ignore (Engine.after e (Time.of_sec_f 1.0) (fun () -> ()));
      Engine.run e;
      check ();
      !ok && Resource.backlog r = Time.zero && Resource.depth r = 0)

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_sink_receives () =
  let e = Engine.create () in
  let ring = Trace.Ring.create ~capacity:8 () in
  Trace.set_sink (Some (Trace.Ring.sink ring));
  ignore (Engine.after e (Time.ms 2) (fun () ->
      Trace.emit e Trace.Info ~component:"test" "hello"));
  ignore (Engine.after e (Time.ms 3) (fun () ->
      Trace.emitf e Trace.Warn ~component:"test" "x=%d" 42));
  Engine.run e;
  Trace.set_sink None;
  match Trace.Ring.events ring with
  | [ a; b ] ->
    check_int "first time" (Time.ms 2) a.Trace.time;
    Alcotest.(check string) "first msg" "hello" a.Trace.message;
    Alcotest.(check string) "second msg" "x=42" b.Trace.message;
    Alcotest.(check string) "level" "warn" (Trace.level_name b.Trace.level)
  | other -> Alcotest.failf "expected 2 events, got %d" (List.length other)

let test_trace_ring_wraps () =
  let ring = Trace.Ring.create ~capacity:3 () in
  let e = Engine.create () in
  Trace.set_sink (Some (Trace.Ring.sink ring));
  for i = 1 to 5 do
    Trace.emitf e Trace.Debug ~component:"t" "%d" i
  done;
  Trace.set_sink None;
  let msgs = List.map (fun ev -> ev.Trace.message) (Trace.Ring.events ring) in
  Alcotest.(check (list string)) "keeps the newest" [ "3"; "4"; "5" ] msgs

let test_trace_no_sink_noop () =
  let e = Engine.create () in
  Trace.set_sink None;
  (* Must not raise and must not build messages eagerly. *)
  Trace.emitf e Trace.Debug ~component:"t" "%d" 1;
  Trace.emit e Trace.Info ~component:"t" "x"

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "sim.time",
      [
        Alcotest.test_case "units" `Quick test_time_units;
        Alcotest.test_case "arithmetic" `Quick test_time_arith;
        Alcotest.test_case "pretty-printing" `Quick test_time_pp;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "bytes length" `Quick test_rng_bytes_len;
      ]
      @ qsuite [ prop_rng_int_uniformish ] );
    ( "sim.heap",
      [
        Alcotest.test_case "pops in order" `Quick test_heap_order;
        Alcotest.test_case "FIFO on ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "empty behaviour" `Quick test_heap_empty;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        Alcotest.test_case "pop/clear drop value references" `Quick
          test_heap_drops_popped_references;
      ]
      @ qsuite [ prop_heap_sorts; prop_heap_tie_total_order ] );
    ( "sim.engine",
      [
        Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
        Alcotest.test_case "run until" `Quick test_engine_until;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "stop/resume" `Quick test_engine_stop;
        Alcotest.test_case "nested scheduling" `Quick test_engine_nested_schedule;
        Alcotest.test_case "FIFO ties" `Quick test_engine_same_time_fifo;
        Alcotest.test_case "event count" `Quick test_engine_events_processed;
        Alcotest.test_case "past events clamped" `Quick test_engine_past_event_clamped;
      ] );
    ( "sim.choice",
      [
        Alcotest.test_case "pass-through when capture off" `Quick
          test_choice_passthrough_when_off;
        Alcotest.test_case "capture parks, fire runs at the clock" `Quick
          test_choice_capture_parks_and_fires;
        Alcotest.test_case "release restores timestamp order" `Quick
          test_choice_release_restores_timestamp_order;
        Alcotest.test_case "release clamps past keys" `Quick
          test_choice_release_clamps_past_keys;
        Alcotest.test_case "cancel while parked" `Quick
          test_choice_cancel_while_parked;
      ] );
    ( "sim.trace",
      [
        Alcotest.test_case "sink receives events" `Quick test_trace_sink_receives;
        Alcotest.test_case "ring wraps" `Quick test_trace_ring_wraps;
        Alcotest.test_case "no sink is a no-op" `Quick test_trace_no_sink_noop;
      ] );
    ( "sim.resource",
      [
        Alcotest.test_case "FIFO service" `Quick test_resource_fifo_service;
        Alcotest.test_case "idle gap" `Quick test_resource_idle_gap;
        Alcotest.test_case "charge pushes back" `Quick test_resource_charge_pushes_back;
        Alcotest.test_case "accounting" `Quick test_resource_accounting;
      ]
      @ qsuite
          [
            prop_resource_completion_monotonic;
            prop_resource_backlog_matches_fold;
          ] );
  ]
