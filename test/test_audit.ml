(* Tests for the bftaudit subsystem: bus dispatch and the legacy-trace
   bridge, trace capture (digest determinism, JSONL / Chrome export)
   and the online safety auditor (clean runs stay clean, forged
   violations are caught). *)

open Dessim

let mk_event ?(time = Time.us 1) ?(node = 1) ?(instance = 0) kind =
  { Bftaudit.Event.time; node; instance; kind }

(* ------------------------------------------------------------------ *)
(* Bus                                                                *)
(* ------------------------------------------------------------------ *)

let test_bus_zero_cost_when_disabled () =
  Alcotest.(check bool) "inactive without sinks" false (Bftaudit.Bus.active ());
  let tok = Bftaudit.Bus.subscribe (fun _ -> ()) in
  Alcotest.(check bool) "active with a sink" true (Bftaudit.Bus.active ());
  Bftaudit.Bus.unsubscribe tok;
  Alcotest.(check bool) "inactive again" false (Bftaudit.Bus.active ())

let test_bus_dispatch_and_trace_bridge () =
  let got = ref [] in
  let tok = Bftaudit.Bus.subscribe (fun ev -> got := ev :: !got) in
  Bftaudit.Bus.emit
    (mk_event (Bftaudit.Event.Ordered { seq = 1; count = 1; digest = "d" }));
  (* Legacy string traces are forwarded onto the bus as Log events. *)
  let engine = Engine.create () in
  Trace.emitf engine Trace.Info ~component:"test" "hello %d" 42;
  Bftaudit.Bus.unsubscribe tok;
  match List.rev !got with
  | [ first; second ] ->
    (match first.Bftaudit.Event.kind with
     | Bftaudit.Event.Ordered { seq = 1; _ } -> ()
     | _ -> Alcotest.fail "expected the Ordered event first");
    (match second.Bftaudit.Event.kind with
     | Bftaudit.Event.Log { component = "test"; message = "hello 42"; _ } -> ()
     | _ -> Alcotest.fail "expected the bridged Log event")
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Capture: export formats and digest determinism                     *)
(* ------------------------------------------------------------------ *)

let test_capture_export () =
  let c = Bftaudit.Capture.attach () in
  Bftaudit.Bus.emit
    (mk_event
       (Bftaudit.Event.Request_received { client = 0; rid = 1; size = 8 }));
  Bftaudit.Bus.emit
    (mk_event ~time:(Time.us 2)
       (Bftaudit.Event.Executed { client = 0; rid = 1; digest = "d" }));
  Alcotest.(check int) "count" 2 (Bftaudit.Capture.count c);
  Alcotest.(check int) "digest is hex sha256" 64
    (String.length (Bftaudit.Capture.digest c));
  let jsonl = Filename.temp_file "audit" ".jsonl" in
  let chrome = Filename.temp_file "audit" ".json" in
  Bftaudit.Capture.write_jsonl c jsonl;
  Bftaudit.Capture.write_chrome_trace c chrome;
  Bftaudit.Capture.detach c;
  let read_all path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    s
  in
  let lines = String.split_on_char '\n' (String.trim (read_all jsonl)) in
  Alcotest.(check int) "jsonl lines" 2 (List.length lines);
  List.iter
    (fun l -> Alcotest.(check bool) "jsonl object" true (l.[0] = '{')) lines;
  let ch = read_all chrome in
  Alcotest.(check bool) "chrome envelope" true
    (ch.[0] = '{'
    && String.length ch > 20
    &&
    let rec contains i =
      i + 11 <= String.length ch
      && (String.sub ch i 11 = "traceEvents" || contains (i + 1))
    in
    contains 0)

let run_captured_cluster () =
  let c = Bftaudit.Capture.attach () in
  let params = Rbft.Params.default ~f:1 in
  let cluster = Rbft.Cluster.create ~seed:7L ~clients:3 params in
  Array.iter (fun cl -> Rbft.Client.set_rate cl 400.0) (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.ms 300);
  let digest = Bftaudit.Capture.digest c and count = Bftaudit.Capture.count c in
  Bftaudit.Capture.detach c;
  (digest, count)

let test_digest_deterministic () =
  let d1, c1 = run_captured_cluster () in
  let d2, c2 = run_captured_cluster () in
  Alcotest.(check bool) "trace is non-trivial" true (c1 > 1000);
  Alcotest.(check int) "same event count" c1 c2;
  Alcotest.(check string) "same-seed runs give identical digests" d1 d2

(* ------------------------------------------------------------------ *)
(* Auditor                                                            *)
(* ------------------------------------------------------------------ *)

let invariants a =
  List.map (fun v -> v.Bftaudit.Auditor.invariant) (Bftaudit.Auditor.violations a)

let test_auditor_clean_run () =
  Bftaudit.Auditor.reset_declared ();
  let a = Bftaudit.Auditor.attach ~n:4 ~f:1 () in
  let params = Rbft.Params.default ~f:1 in
  let cluster = Rbft.Cluster.create ~seed:11L ~clients:3 params in
  Array.iter (fun cl -> Rbft.Client.set_rate cl 400.0) (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.ms 300);
  let checked = Bftaudit.Auditor.events_checked a in
  Bftaudit.Auditor.detach a;
  Alcotest.(check bool) "events were checked" true (checked > 1000);
  Alcotest.(check (list string)) "no violations" [] (invariants a)

let test_auditor_flags_double_execution () =
  Bftaudit.Auditor.reset_declared ();
  let a = Bftaudit.Auditor.attach ~raise_on_violation:false ~n:4 ~f:1 () in
  let exec = Bftaudit.Event.Executed { client = 0; rid = 1; digest = "d" } in
  Bftaudit.Bus.emit (mk_event exec);
  Bftaudit.Bus.emit (mk_event ~time:(Time.us 2) exec);
  Bftaudit.Auditor.detach a;
  Alcotest.(check (list string)) "double execution flagged"
    [ "double-execution" ] (invariants a)

let test_auditor_flags_disagreement () =
  Bftaudit.Auditor.reset_declared ();
  let a = Bftaudit.Auditor.attach ~raise_on_violation:false ~n:4 ~f:1 () in
  Bftaudit.Bus.emit
    (mk_event ~node:1
       (Bftaudit.Event.Ordered { seq = 5; count = 1; digest = "aaaa" }));
  Bftaudit.Bus.emit
    (mk_event ~node:2
       (Bftaudit.Event.Ordered { seq = 5; count = 1; digest = "bbbb" }));
  Bftaudit.Auditor.detach a;
  Alcotest.(check (list string)) "disagreement flagged" [ "agreement" ]
    (invariants a)

let test_auditor_flags_thin_prepare_quorum () =
  Bftaudit.Auditor.reset_declared ();
  let a = Bftaudit.Auditor.attach ~raise_on_violation:false ~n:4 ~f:1 () in
  (* Only the primary's pre-prepare backs this ordering: 1 vote < 2f+1. *)
  Bftaudit.Bus.emit
    (mk_event ~node:0
       (Bftaudit.Event.Pre_prepare_sent
          { view = 0; seq = 1; count = 1; digest = "aaaa" }));
  Bftaudit.Bus.emit
    (mk_event ~node:1
       (Bftaudit.Event.Ordered { seq = 1; count = 1; digest = "aaaa" }));
  Bftaudit.Auditor.detach a;
  Alcotest.(check (list string)) "thin quorum flagged" [ "prepare-quorum" ]
    (invariants a)

let test_auditor_skips_declared_faulty () =
  Bftaudit.Auditor.reset_declared ();
  let a = Bftaudit.Auditor.attach ~raise_on_violation:false ~n:4 ~f:1 () in
  Bftaudit.Auditor.declare_faulty [ 2 ];
  Bftaudit.Bus.emit
    (mk_event ~node:1
       (Bftaudit.Event.Ordered { seq = 5; count = 1; digest = "aaaa" }));
  (* The divergent ordering comes from a node the attack declared
     Byzantine: its events must not count against the correct ones. *)
  Bftaudit.Bus.emit
    (mk_event ~node:2
       (Bftaudit.Event.Ordered { seq = 5; count = 1; digest = "bbbb" }));
  Bftaudit.Auditor.detach a;
  Bftaudit.Auditor.reset_declared ();
  Alcotest.(check (list string)) "faulty node ignored" [] (invariants a)

let suites =
  [
    ( "audit",
      [
        Alcotest.test_case "bus zero-cost when disabled" `Quick
          test_bus_zero_cost_when_disabled;
        Alcotest.test_case "bus dispatch + legacy trace bridge" `Quick
          test_bus_dispatch_and_trace_bridge;
        Alcotest.test_case "capture export (jsonl + chrome)" `Quick
          test_capture_export;
        Alcotest.test_case "same-seed digests are identical" `Quick
          test_digest_deterministic;
        Alcotest.test_case "auditor: clean f=1 run" `Quick test_auditor_clean_run;
        Alcotest.test_case "auditor: double execution" `Quick
          test_auditor_flags_double_execution;
        Alcotest.test_case "auditor: ordering disagreement" `Quick
          test_auditor_flags_disagreement;
        Alcotest.test_case "auditor: thin prepare quorum" `Quick
          test_auditor_flags_thin_prepare_quorum;
        Alcotest.test_case "auditor: declared-faulty nodes skipped" `Quick
          test_auditor_skips_declared_faulty;
      ] );
  ]
