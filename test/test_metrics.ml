(* Tests for measurement utilities. *)

open Bftmetrics
open Dessim

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s);
  Alcotest.(check (float 1e-6)) "variance" (5.0 /. 3.0) (Stats.variance s);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Stats.sum s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Stats.variance s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.0; 5.0; 2.5 ] and ys = [ 10.0; 0.5; 3.0; 7.0 ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let merged = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean whole) (Stats.mean merged);
  Alcotest.(check (float 1e-6)) "variance" (Stats.variance whole) (Stats.variance merged);
  Alcotest.(check (float 1e-9)) "min" (Stats.min whole) (Stats.min merged);
  Alcotest.(check (float 1e-9)) "max" (Stats.max whole) (Stats.max merged)

let test_hist_percentiles () =
  let h = Hist.create () in
  (* 1..1000 us as seconds. *)
  for i = 1 to 1000 do
    Hist.add h (float_of_int i *. 1e-6)
  done;
  Alcotest.(check int) "count" 1000 (Hist.count h);
  let p50 = Hist.percentile h 50.0 in
  Alcotest.(check bool) "p50 near 500us" true (p50 > 4.2e-4 && p50 < 5.8e-4);
  let p99 = Hist.percentile h 99.0 in
  Alcotest.(check bool) "p99 near 990us" true (p99 > 8.8e-4 && p99 < 1.12e-3);
  Alcotest.(check (float 1e-9)) "max observed" 1e-3 (Hist.max_observed h)

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check (float 0.0)) "p50 of empty" 0.0 (Hist.percentile h 50.0);
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Hist.mean h)

let test_hist_mean () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 0.001; 0.003 ];
  Alcotest.(check (float 1e-9)) "mean" 0.002 (Hist.mean h)

let test_throughput_windows () =
  let t = Throughput.create () in
  (* 100 events in the first second, 50 in the second. *)
  for i = 0 to 99 do
    Throughput.record t ~now:(Time.ms (10 * i))
  done;
  for i = 0 to 49 do
    Throughput.record t ~now:(Time.add (Time.sec 1) (Time.ms (20 * i)))
  done;
  Alcotest.(check int) "total" 150 (Throughput.total t);
  Alcotest.(check int) "first window" 100 (Throughput.count_between t Time.zero (Time.sec 1));
  Alcotest.(check int) "second window" 50 (Throughput.count_between t (Time.sec 1) (Time.sec 2));
  Alcotest.(check (float 1e-6)) "rate" 100.0 (Throughput.rate_between t Time.zero (Time.sec 1))

let test_throughput_batch () =
  let t = Throughput.create () in
  Throughput.record_many t ~now:(Time.ms 5) 32;
  Throughput.record_many t ~now:(Time.ms 5) 32;
  Alcotest.(check int) "same-instant accumulate" 64
    (Throughput.count_between t Time.zero (Time.ms 10));
  Alcotest.(check int) "empty window" 0
    (Throughput.count_between t (Time.ms 10) (Time.ms 20))

let prop_throughput_counts =
  QCheck.Test.make ~name:"windowed counts partition the total"
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 10_000))
    (fun times ->
      let sorted = List.sort compare times in
      let t = Throughput.create () in
      List.iter (fun x -> Throughput.record t ~now:(Time.us x)) sorted;
      let mid = Time.us 5_000 in
      Throughput.count_between t Time.zero mid
      + Throughput.count_between t mid (Time.us 10_001)
      = List.length times)

let test_throughput_zero_and_reversed () =
  let t = Throughput.create () in
  Throughput.record_many t ~now:(Time.ms 5) 10;
  Alcotest.(check int) "zero-length count" 0
    (Throughput.count_between t (Time.ms 5) (Time.ms 5));
  Alcotest.(check (float 0.0)) "zero-length rate" 0.0
    (Throughput.rate_between t (Time.ms 5) (Time.ms 5));
  Alcotest.(check int) "reversed count" 0
    (Throughput.count_between t (Time.ms 9) (Time.ms 1));
  Alcotest.(check (float 0.0)) "reversed rate" 0.0
    (Throughput.rate_between t (Time.ms 9) (Time.ms 1));
  Alcotest.(check bool) "rate is finite" true
    (Float.is_finite (Throughput.rate_between t Time.zero Time.zero))

(* Windows are half-open [start, stop): any tiling of a range must see
   each event exactly once, wherever the cuts fall relative to event
   timestamps. *)
let prop_throughput_tiling =
  QCheck.Test.make ~name:"half-open windows tile exactly"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 200) (int_range 0 10_000))
        (list_of_size Gen.(int_range 0 8) (int_range 0 10_000)))
    (fun (times, cuts) ->
      let t = Throughput.create () in
      List.iter (fun x -> Throughput.record t ~now:(Time.us x)) times;
      let bounds =
        List.sort_uniq compare ((0 :: cuts) @ [ 10_001 ])
      in
      let rec windows = function
        | a :: (b :: _ as rest) ->
          Throughput.count_between t (Time.us a) (Time.us b) + windows rest
        | _ -> 0
      in
      windows bounds = List.length times)

let prop_throughput_degenerate =
  QCheck.Test.make ~name:"degenerate windows are 0, never NaN"
    QCheck.(pair (list_of_size Gen.(int_range 0 50) (int_range 0 1000)) (int_range 0 1000))
    (fun (times, at) ->
      let t = Throughput.create () in
      List.iter (fun x -> Throughput.record t ~now:(Time.us x)) times;
      Throughput.count_between t (Time.us at) (Time.us at) = 0
      && Throughput.rate_between t (Time.us at) (Time.us at) = 0.0
      && Throughput.count_between t (Time.us (at + 1)) (Time.us at) = 0
      && Throughput.rate_between t (Time.us (at + 1)) (Time.us at) = 0.0)

let test_hist_single_sample () =
  let h = Hist.create () in
  Hist.add h 0.007;
  Alcotest.(check int) "count" 1 (Hist.count h);
  let within p =
    let v = Hist.percentile h p in
    v > 0.005 && v < 0.009
  in
  Alcotest.(check bool) "p1 ~ sample" true (within 1.0);
  Alcotest.(check bool) "p50 ~ sample" true (within 50.0);
  Alcotest.(check bool) "p99 ~ sample" true (within 99.0);
  Alcotest.(check (float 1e-9)) "max observed" 0.007 (Hist.max_observed h)

let test_hist_all_equal () =
  let h = Hist.create () in
  for _ = 1 to 100 do
    Hist.add h 2.5e-4
  done;
  let p50 = Hist.percentile h 50.0 and p99 = Hist.percentile h 99.0 in
  Alcotest.(check (float 1e-12)) "p50 = p99 when all equal" p50 p99;
  Alcotest.(check bool) "in bucket" true (p50 > 1.5e-4 && p50 < 3.5e-4)

let test_hist_beyond_top_bucket () =
  let h = Hist.create () in
  Hist.add h 1e9;
  (* way past the top bucket *)
  Hist.add h 1e-3;
  let p99 = Hist.percentile h 99.0 in
  Alcotest.(check bool) "p99 finite" true (Float.is_finite p99);
  Alcotest.(check bool) "p99 at top bucket or above observed floor" true
    (p99 >= 1e-3);
  Alcotest.(check (float 1e-3)) "max observed exact" 1e9 (Hist.max_observed h);
  Alcotest.(check int) "cumulative_le +inf sees all" 2
    (Hist.cumulative_le h Float.infinity)

let test_hist_reset_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.add a) [ 1e-3; 2e-3 ];
  List.iter (Hist.add b) [ 4e-3 ];
  let m = Hist.merge a b in
  Alcotest.(check int) "merged count" 3 (Hist.count m);
  Alcotest.(check (float 1e-9)) "merged sum" 7e-3 (Hist.sum m);
  Alcotest.(check (float 1e-9)) "merged max" 4e-3 (Hist.max_observed m);
  Hist.reset a;
  Alcotest.(check int) "reset count" 0 (Hist.count a);
  Alcotest.(check (float 0.0)) "reset p50" 0.0 (Hist.percentile a 50.0)

(* --- registry ----------------------------------------------------- *)

let test_registry_families () =
  let r = Registry.create () in
  let c1 = Registry.counter r "reqs_total" ~labels:[ ("node", "0") ] in
  let c2 = Registry.counter r "reqs_total" ~labels:[ ("node", "1") ] in
  let c1' = Registry.counter r "reqs_total" ~labels:[ ("node", "0") ] in
  Registry.Counter.inc c1;
  Registry.Counter.add c1' 2;
  Registry.Counter.inc c2;
  Alcotest.(check int) "re-registration returns the same child" 3
    (Registry.Counter.value c1);
  Alcotest.(check int) "one family" 1 (List.length (Registry.families r));
  Alcotest.(check int) "two children" 2
    (List.length (Registry.children_of (List.hd (Registry.families r))));
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Registry: reqs_total already registered as a counter")
    (fun () -> ignore (Registry.gauge r "reqs_total" ~labels:[ ("node", "9") ]))

let test_registry_reset_keeps_handles () =
  let r = Registry.create () in
  let c = Registry.counter r "c_total" ~labels:[] in
  let g = Registry.gauge r "g" ~labels:[] in
  let h = Registry.histogram r "h_seconds" ~labels:[] in
  Registry.Counter.add c 5;
  Registry.Gauge.set g 2.5;
  Hist.add h 1e-3;
  Registry.reset r;
  Alcotest.(check int) "counter zeroed" 0 (Registry.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge zeroed" 0.0 (Registry.Gauge.value g);
  Alcotest.(check int) "hist zeroed" 0 (Hist.count h);
  (* The same handles keep working after reset. *)
  Registry.Counter.inc c;
  Alcotest.(check int) "handle live after reset" 1 (Registry.Counter.value c)

let test_registry_merge () =
  let a = Registry.create () and b = Registry.create () in
  let ca = Registry.counter a "m_total" ~labels:[ ("k", "x") ] in
  let cb = Registry.counter b "m_total" ~labels:[ ("k", "x") ] in
  let hb = Registry.histogram b "lat_seconds" ~labels:[] in
  Registry.Counter.add ca 2;
  Registry.Counter.add cb 3;
  Hist.add hb 1e-3;
  Registry.merge ~into:a b;
  Alcotest.(check int) "counters add" 5 (Registry.Counter.value ca);
  let ha = Registry.histogram a "lat_seconds" ~labels:[] in
  Alcotest.(check int) "histograms merge samplewise" 1 (Hist.count ha)

let test_registry_snapshot_gauge_fn () =
  let r = Registry.create () in
  let calls = ref 0 in
  Registry.gauge_fn r "cb" ~labels:[] (fun () ->
      incr calls;
      42.0);
  Alcotest.(check int) "callback not read eagerly" 0 !calls;
  let snap = Registry.snapshot r in
  Alcotest.(check int) "callback read once per snapshot" 1 !calls;
  (match snap with
   | [ { Registry.s_name = "cb"; s_value = Registry.Gauge_v v; _ } ] ->
     Alcotest.(check (float 0.0)) "value" 42.0 v
   | _ -> Alcotest.fail "unexpected snapshot shape");
  (* Re-registering replaces the callback. *)
  Registry.gauge_fn r "cb" ~labels:[] (fun () -> 7.0);
  match Registry.snapshot r with
  | [ { Registry.s_value = Registry.Gauge_v v; _ } ] ->
    Alcotest.(check (float 0.0)) "replaced" 7.0 v
  | _ -> Alcotest.fail "unexpected snapshot shape"

(* --- sampler ------------------------------------------------------ *)

let test_sampler_series () =
  let e = Engine.create () in
  let r = Registry.create () in
  let c = Registry.counter r "ticks_total" ~labels:[] in
  ignore (Engine.after e (Time.ms 25) (fun () -> Registry.Counter.add c 10));
  let s = Sampler.attach ~period:(Time.ms 10) e r in
  Engine.run ~until:(Time.ms 55) e;
  Sampler.detach s;
  let pts = Sampler.points s in
  Alcotest.(check bool) "collected several points" true (List.length pts >= 4);
  let times = List.map (fun p -> p.Sampler.p_time) pts in
  Alcotest.(check bool) "oldest first" true (List.sort compare times = times);
  let value_at p =
    match
      List.find_opt (fun s -> s.Registry.s_name = "ticks_total") p.Sampler.p_samples
    with
    | Some { Registry.s_value = Registry.Counter_v v; _ } -> v
    | _ -> -1
  in
  Alcotest.(check int) "first sample before the tick" 0 (value_at (List.hd pts));
  Alcotest.(check int) "last sample after the tick" 10
    (value_at (List.nth pts (List.length pts - 1)));
  (* Detached: running further adds no points. *)
  let n = Sampler.count s in
  ignore (Engine.after e (Time.ms 100) (fun () -> ()));
  Engine.run ~until:(Time.ms 200) e;
  Alcotest.(check int) "no points after detach" n (Sampler.count s)

(* Regression: the sampler is anchored to absolute engine sim-time
   ([epoch + k*period]), never to a per-node Clock, so a skewed clock
   driving the workload shifts the *values* but cannot drift the
   sample *timestamps*. Before the anchoring fix a tick rearmed
   relative to its own callback, and any scheduling perturbation
   accumulated into the series timeline. *)
let test_sampler_skew_anchoring () =
  let run factor =
    let e = Engine.create () in
    let r = Registry.create () in
    let c = Registry.counter r "work_total" ~labels:[] in
    let clock = Clock.create e in
    Clock.set_factor clock factor;
    (* periodic workload routed through the (possibly skewed) clock,
       the way protocol nodes drive their loops *)
    let rec work () =
      Registry.Counter.inc c;
      ignore (Clock.after clock (Time.ms 7) work)
    in
    ignore (Clock.after clock (Time.ms 7) work);
    let s = Sampler.attach ~period:(Time.ms 10) e r in
    Engine.run ~until:(Time.ms 95) e;
    Sampler.detach s;
    let value_at (p : Sampler.point) =
      match
        List.find_opt
          (fun smp -> smp.Registry.s_name = "work_total")
          p.Sampler.p_samples
      with
      | Some { Registry.s_value = Registry.Counter_v v; _ } -> v
      | _ -> -1
    in
    ( Sampler.epoch s,
      List.map (fun p -> p.Sampler.p_time) (Sampler.points s),
      List.map value_at (Sampler.points s) )
  in
  let epoch, times_plain, values_plain = run 1.0 in
  let _, times_skew, values_skew = run 1.7 in
  Alcotest.(check bool) "several samples" true (List.length times_plain >= 8);
  (* the skew really perturbed the workload... *)
  Alcotest.(check bool) "skew changes the sampled values" true
    (values_plain <> values_skew);
  (* ...but the sample instants are identical and sit exactly on the
     epoch + k*period grid *)
  Alcotest.(check bool) "timestamps immune to clock skew" true
    (times_plain = times_skew);
  List.iter
    (fun t ->
      Alcotest.(check int) "on the absolute period grid" 0
        ((Time.sub t epoch : Time.t) mod (Time.ms 10 : Time.t)))
    times_plain

(* --- exporters ---------------------------------------------------- *)

let starts_with s prefix =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_export_prometheus () =
  let r = Registry.create () in
  let c = Registry.counter r "req_total" ~help:"Requests" ~labels:[ ("node", "0") ] in
  Registry.Counter.add c 7;
  let g = Registry.gauge r "ratio" ~labels:[] in
  Registry.Gauge.set g Float.nan;
  let h = Registry.histogram r "lat_seconds" ~labels:[] in
  Hist.add h 1e-3;
  let text = Export.prometheus r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains text needle))
    [
      "# HELP req_total Requests";
      "# TYPE req_total counter";
      "req_total{node=\"0\"} 7";
      "# TYPE ratio gauge";
      "ratio NaN";
      "# TYPE lat_seconds histogram";
      "lat_seconds_bucket{le=\"+Inf\"} 1";
      "lat_seconds_count 1";
    ];
  let bucket_counts =
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           if starts_with line "lat_seconds_bucket" then
             String.rindex_opt line ' '
             |> Option.map (fun i ->
                    int_of_string
                      (String.sub line (i + 1) (String.length line - i - 1)))
           else None)
  in
  Alcotest.(check bool) "has bucket lines" true (bucket_counts <> []);
  Alcotest.(check bool) "cumulative buckets monotone" true
    (List.sort compare bucket_counts = bucket_counts)

let test_export_csv_json () =
  let e = Engine.create () in
  let r = Registry.create () in
  let c = Registry.counter r "x_total" ~labels:[] in
  let s = Sampler.attach ~period:(Time.ms 10) e r in
  ignore (Engine.after e (Time.ms 5) (fun () -> Registry.Counter.inc c));
  Engine.run ~until:(Time.ms 30) e;
  Sampler.detach s;
  let csv = Export.csv_of_series s in
  (match String.split_on_char '\n' csv with
   | header :: _ ->
     Alcotest.(check string) "csv header" "time_s,metric,labels,field,value" header
   | [] -> Alcotest.fail "empty csv");
  let json = Export.json_of_snapshot r in
  Alcotest.(check bool) "json mentions metric" true (contains json "\"x_total\"");
  Alcotest.(check string) "json_float nan" "null" (Export.json_float Float.nan);
  Alcotest.(check string) "json escaping" {|"a\"b"|} ({|"|} ^ Export.json_escape {|a"b|} ^ {|"|})

(* --- audit bridge ------------------------------------------------- *)

let test_metrics_bridge () =
  let r = Registry.create () in
  let bridge = Bftaudit.Metrics_bridge.attach ~registry:r () in
  let emit kind =
    Bftaudit.Bus.emit { Bftaudit.Event.time = Time.ms 1; node = 2; instance = 0; kind }
  in
  emit (Bftaudit.Event.Net_dropped { src = "node0"; reason = "nic-closed" });
  emit (Bftaudit.Event.Net_dropped { src = "node0"; reason = "nic-closed" });
  emit
    (Bftaudit.Event.Monitor_verdict
       { master_rate = 10.0; backup_rate = 100.0; suspicious = true });
  Bftaudit.Metrics_bridge.detach bridge;
  (* Detached: further events derive nothing. *)
  emit (Bftaudit.Event.Net_dropped { src = "node0"; reason = "nic-closed" });
  let value name labels =
    Registry.Counter.value (Registry.counter r name ~labels)
  in
  Alcotest.(check int) "drop reason counted" 2
    (value "bft_net_drops_total" [ ("reason", "nic-closed") ]);
  Alcotest.(check int) "suspicious verdict counted" 1
    (value "bft_monitor_suspicious_total" [ ("node", "2") ]);
  Alcotest.(check int) "event kinds counted" 2
    (value "bft_audit_events_total" [ ("kind", "net-dropped") ])

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "metrics.stats",
      [
        Alcotest.test_case "basic moments" `Quick test_stats_basic;
        Alcotest.test_case "empty" `Quick test_stats_empty;
        Alcotest.test_case "merge" `Quick test_stats_merge;
      ] );
    ( "metrics.hist",
      [
        Alcotest.test_case "percentiles" `Quick test_hist_percentiles;
        Alcotest.test_case "empty" `Quick test_hist_empty;
        Alcotest.test_case "mean" `Quick test_hist_mean;
        Alcotest.test_case "single sample" `Quick test_hist_single_sample;
        Alcotest.test_case "all equal" `Quick test_hist_all_equal;
        Alcotest.test_case "beyond top bucket" `Quick test_hist_beyond_top_bucket;
        Alcotest.test_case "reset and merge" `Quick test_hist_reset_merge;
      ] );
    ( "metrics.throughput",
      [
        Alcotest.test_case "windows" `Quick test_throughput_windows;
        Alcotest.test_case "batched records" `Quick test_throughput_batch;
        Alcotest.test_case "zero-length and reversed" `Quick
          test_throughput_zero_and_reversed;
      ]
      @ qsuite
          [
            prop_throughput_counts;
            prop_throughput_tiling;
            prop_throughput_degenerate;
          ] );
    ( "metrics.registry",
      [
        Alcotest.test_case "families and children" `Quick test_registry_families;
        Alcotest.test_case "reset keeps handles" `Quick
          test_registry_reset_keeps_handles;
        Alcotest.test_case "merge" `Quick test_registry_merge;
        Alcotest.test_case "snapshot and gauge_fn" `Quick
          test_registry_snapshot_gauge_fn;
      ] );
    ( "metrics.sampler",
      [
        Alcotest.test_case "time series" `Quick test_sampler_series;
        Alcotest.test_case "skewed-clock anchoring" `Quick
          test_sampler_skew_anchoring;
      ] );
    ( "metrics.export",
      [
        Alcotest.test_case "prometheus text" `Quick test_export_prometheus;
        Alcotest.test_case "csv and json" `Quick test_export_csv_json;
      ] );
    ( "metrics.bridge",
      [ Alcotest.test_case "audit events to counters" `Quick test_metrics_bridge ] );
  ]
