(* Tests for measurement utilities. *)

open Bftmetrics
open Dessim

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s);
  Alcotest.(check (float 1e-6)) "variance" (5.0 /. 3.0) (Stats.variance s);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Stats.sum s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Stats.variance s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.0; 5.0; 2.5 ] and ys = [ 10.0; 0.5; 3.0; 7.0 ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let merged = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean whole) (Stats.mean merged);
  Alcotest.(check (float 1e-6)) "variance" (Stats.variance whole) (Stats.variance merged);
  Alcotest.(check (float 1e-9)) "min" (Stats.min whole) (Stats.min merged);
  Alcotest.(check (float 1e-9)) "max" (Stats.max whole) (Stats.max merged)

let test_hist_percentiles () =
  let h = Hist.create () in
  (* 1..1000 us as seconds. *)
  for i = 1 to 1000 do
    Hist.add h (float_of_int i *. 1e-6)
  done;
  Alcotest.(check int) "count" 1000 (Hist.count h);
  let p50 = Hist.percentile h 50.0 in
  Alcotest.(check bool) "p50 near 500us" true (p50 > 4.2e-4 && p50 < 5.8e-4);
  let p99 = Hist.percentile h 99.0 in
  Alcotest.(check bool) "p99 near 990us" true (p99 > 8.8e-4 && p99 < 1.12e-3);
  Alcotest.(check (float 1e-9)) "max observed" 1e-3 (Hist.max_observed h)

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check (float 0.0)) "p50 of empty" 0.0 (Hist.percentile h 50.0);
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Hist.mean h)

let test_hist_mean () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 0.001; 0.003 ];
  Alcotest.(check (float 1e-9)) "mean" 0.002 (Hist.mean h)

let test_throughput_windows () =
  let t = Throughput.create () in
  (* 100 events in the first second, 50 in the second. *)
  for i = 0 to 99 do
    Throughput.record t ~now:(Time.ms (10 * i))
  done;
  for i = 0 to 49 do
    Throughput.record t ~now:(Time.add (Time.sec 1) (Time.ms (20 * i)))
  done;
  Alcotest.(check int) "total" 150 (Throughput.total t);
  Alcotest.(check int) "first window" 100 (Throughput.count_between t Time.zero (Time.sec 1));
  Alcotest.(check int) "second window" 50 (Throughput.count_between t (Time.sec 1) (Time.sec 2));
  Alcotest.(check (float 1e-6)) "rate" 100.0 (Throughput.rate_between t Time.zero (Time.sec 1))

let test_throughput_batch () =
  let t = Throughput.create () in
  Throughput.record_many t ~now:(Time.ms 5) 32;
  Throughput.record_many t ~now:(Time.ms 5) 32;
  Alcotest.(check int) "same-instant accumulate" 64
    (Throughput.count_between t Time.zero (Time.ms 10));
  Alcotest.(check int) "empty window" 0
    (Throughput.count_between t (Time.ms 10) (Time.ms 20))

let prop_throughput_counts =
  QCheck.Test.make ~name:"windowed counts partition the total"
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 10_000))
    (fun times ->
      let sorted = List.sort compare times in
      let t = Throughput.create () in
      List.iter (fun x -> Throughput.record t ~now:(Time.us x)) sorted;
      let mid = Time.us 5_000 in
      Throughput.count_between t Time.zero mid
      + Throughput.count_between t mid (Time.us 10_001)
      = List.length times)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "metrics.stats",
      [
        Alcotest.test_case "basic moments" `Quick test_stats_basic;
        Alcotest.test_case "empty" `Quick test_stats_empty;
        Alcotest.test_case "merge" `Quick test_stats_merge;
      ] );
    ( "metrics.hist",
      [
        Alcotest.test_case "percentiles" `Quick test_hist_percentiles;
        Alcotest.test_case "empty" `Quick test_hist_empty;
        Alcotest.test_case "mean" `Quick test_hist_mean;
      ] );
    ( "metrics.throughput",
      [
        Alcotest.test_case "windows" `Quick test_throughput_windows;
        Alcotest.test_case "batched records" `Quick test_throughput_batch;
      ]
      @ qsuite [ prop_throughput_counts ] );
  ]
