(* Tests for the protocol wire codecs: roundtrips (including qcheck
   property coverage) and agreement between encoded lengths and the
   wire-size model used for cost accounting. *)

open Pbftcore.Types

let desc ?(heavy = false) ?(client = 3) ?(rid = 77) op =
  { (desc_of_op ~client ~rid op) with flagged_heavy = heavy }

let sample_pbft_messages =
  [
    Pbftcore.Messages.Pre_prepare
      { view = 2; seq = 19; descs = [ desc "alpha"; desc ~heavy:true ~client:1 ~rid:4 "bravo" ] };
    Pbftcore.Messages.Prepare
      { view = 0; seq = 1; digest = Bftcrypto.Sha256.digest_string "d"; replica = 2 };
    Pbftcore.Messages.Commit
      { view = 5; seq = 123_456; digest = Bftcrypto.Sha256.digest_string "e"; replica = 0 };
    Pbftcore.Messages.Checkpoint
      { seq = 128; state_digest = Bftcrypto.Sha256.digest_string "state"; replica = 3 };
    Pbftcore.Messages.View_change
      {
        new_view = 7;
        last_stable = 256;
        prepared =
          [
            {
              Pbftcore.Messages.pseq = 260;
              pview = 6;
              pdigest = Bftcrypto.Sha256.digest_string "p";
              pdescs = [ desc ~client:2 ~rid:9 "cert" ];
            };
          ];
        replica = 1;
      };
    Pbftcore.Messages.New_view
      {
        view = 7;
        pre_prepares = [ { Pbftcore.Messages.view = 7; seq = 260; descs = [ desc "x" ] } ];
        replica = 3;
      };
  ]

(* Identifier ordering erases operation bodies from the wire. *)
let strip_ops (msg : Pbftcore.Messages.t) =
  let strip_desc d = { d with op = "" } in
  let strip_pp (pp : Pbftcore.Messages.pre_prepare) =
    { pp with Pbftcore.Messages.descs = List.map strip_desc pp.descs }
  in
  match msg with
  | Pbftcore.Messages.Pre_prepare pp -> Pbftcore.Messages.Pre_prepare (strip_pp pp)
  | Pbftcore.Messages.New_view { view; pre_prepares; replica } ->
    Pbftcore.Messages.New_view
      { view; pre_prepares = List.map strip_pp pre_prepares; replica }
  | Pbftcore.Messages.View_change { new_view; last_stable; prepared; replica }
    ->
    Pbftcore.Messages.View_change
      {
        new_view;
        last_stable;
        prepared =
          List.map
            (fun (p : Pbftcore.Messages.prepared_proof) ->
              { p with pdescs = List.map strip_desc p.pdescs })
            prepared;
        replica;
      }
  | Pbftcore.Messages.Prepare _ | Pbftcore.Messages.Commit _
  | Pbftcore.Messages.Checkpoint _ ->
    msg

let test_pbft_roundtrip_identifiers () =
  List.iter
    (fun msg ->
      match Pbftcore.Codec.decode ~order_full_requests:false
              (Pbftcore.Codec.encode ~order_full_requests:false msg)
      with
      | Some decoded ->
        Alcotest.(check bool)
          (Pbftcore.Messages.type_tag msg ^ " roundtrip (ids)")
          true
          (decoded = strip_ops msg)
      | None -> Alcotest.fail "decode failed")
    sample_pbft_messages

let test_pbft_roundtrip_full () =
  List.iter
    (fun msg ->
      match Pbftcore.Codec.decode ~order_full_requests:true
              (Pbftcore.Codec.encode ~order_full_requests:true msg)
      with
      | Some decoded ->
        (* New-view re-proposals and view-change certificate batches
           always travel as identifiers. *)
        let expected =
          match msg with
          | Pbftcore.Messages.New_view _ | Pbftcore.Messages.View_change _ ->
            strip_ops msg
          | m -> m
        in
        Alcotest.(check bool)
          (Pbftcore.Messages.type_tag msg ^ " roundtrip (full)")
          true (decoded = expected)
      | None -> Alcotest.fail "decode failed")
    sample_pbft_messages

let test_pbft_garbage_rejected () =
  Alcotest.(check bool) "empty" true
    (Pbftcore.Codec.decode ~order_full_requests:false "" = None);
  Alcotest.(check bool) "bad tag" true
    (Pbftcore.Codec.decode ~order_full_requests:false "\xFF rest" = None);
  let valid =
    Pbftcore.Codec.encode ~order_full_requests:false (List.hd sample_pbft_messages)
  in
  Alcotest.(check bool) "trailing bytes" true
    (Pbftcore.Codec.decode ~order_full_requests:false (valid ^ "x") = None);
  Alcotest.(check bool) "truncated" true
    (Pbftcore.Codec.decode ~order_full_requests:false
       (String.sub valid 0 (String.length valid / 2))
    = None)

let sample_rbft_messages =
  let req op = { Rbft.Messages.desc = desc op; sig_valid = true; mac_invalid_for = [ 0; 2 ] } in
  [
    Rbft.Messages.Request (req "operation body");
    Rbft.Messages.Propagate { req = req "other"; from = 2; junk = false };
    Rbft.Messages.Instance
      {
        instance = 1;
        msg =
          Pbftcore.Messages.Prepare
            { view = 1; seq = 9; digest = Bftcrypto.Sha256.digest_string "z"; replica = 1 };
      };
    Rbft.Messages.Instance_change { cpi = 4; node = 2 };
    Rbft.Messages.Reply { id = { client = 9; rid = 12 }; result = "ok"; node = 1 };
    Rbft.Messages.Busy
      { id = { client = 5; rid = 77 }; retry_after = Dessim.Time.ms 10; node = 3 };
  ]

let test_rbft_roundtrip () =
  List.iter
    (fun msg ->
      match
        Rbft.Codec.decode ~order_full_requests:false
          (Rbft.Codec.encode ~order_full_requests:false msg)
      with
      | Some decoded ->
        Alcotest.(check bool) (Rbft.Messages.type_tag msg ^ " roundtrip") true
          (decoded = msg)
      | None -> Alcotest.fail (Rbft.Messages.type_tag msg ^ ": decode failed"))
    sample_rbft_messages

let test_rbft_junk_propagate_roundtrip () =
  let junk =
    Rbft.Messages.Propagate
      {
        req =
          {
            Rbft.Messages.desc = { (desc "junk" ~client:(-1) ~rid:3) with op_size = 9000 };
            sig_valid = false;
            mac_invalid_for = [];
          };
        from = 3;
        junk = true;
      }
  in
  match
    Rbft.Codec.decode ~order_full_requests:false
      (Rbft.Codec.encode ~order_full_requests:false junk)
  with
  | Some (Rbft.Messages.Propagate { junk = true; from = 3; req }) ->
    Alcotest.(check int) "padding size preserved" 9000 req.Rbft.Messages.desc.op_size
  | Some _ | None -> Alcotest.fail "junk roundtrip failed"

(* BUSY is the admission gate's refusal; it must survive both codec
   variants byte-exactly (the retry hint drives client backoff, so a
   lossy hint would desynchronise the retry schedule). *)
let test_rbft_busy_roundtrip () =
  List.iter
    (fun order_full_requests ->
      List.iter
        (fun retry_after ->
          let msg =
            Rbft.Messages.Busy
              { id = { client = 2; rid = 41 }; retry_after; node = 1 }
          in
          match
            Rbft.Codec.decode ~order_full_requests
              (Rbft.Codec.encode ~order_full_requests msg)
          with
          | Some decoded ->
            Alcotest.(check bool)
              (Printf.sprintf "busy roundtrip (full=%b hint=%s)"
                 order_full_requests
                 (Dessim.Time.to_string retry_after))
              true (decoded = msg)
          | None -> Alcotest.fail "busy decode failed")
        [ Dessim.Time.zero; Dessim.Time.us 1; Dessim.Time.ms 10; Dessim.Time.of_sec_f 1.3 ])
    [ false; true ]

(* Wire sizes used for cost accounting must track encoded lengths for
   the dominant, size-dependent parts (bodies, digests, batches). The
   model adds the MAC authenticator which the codec does not carry. *)
let test_sizes_track_model () =
  let n = 4 in
  let mac_auth = n * Bftcrypto.Keys.mac_tag_size in
  List.iter
    (fun msg ->
      let model = Pbftcore.Messages.wire_size ~n ~order_full_requests:false msg in
      let actual =
        String.length (Pbftcore.Codec.encode ~order_full_requests:false msg) + mac_auth
      in
      let drift = abs (model - actual) in
      Alcotest.(check bool)
        (Printf.sprintf "%s model %d vs encoded %d"
           (Pbftcore.Messages.type_tag msg) model actual)
        true
        (drift * 100 <= 30 * Stdlib.max model actual))
    sample_pbft_messages

let prop_pbft_pp_roundtrip =
  QCheck.Test.make ~name:"pre-prepare codec roundtrip"
    QCheck.(
      pair (int_bound 1000)
        (small_list (triple (int_bound 50) (int_bound 10_000) (string_of_size Gen.(int_range 0 64)))))
    (fun (view, reqs) ->
      let descs = List.map (fun (c, rid, op) -> desc ~client:c ~rid op) reqs in
      let msg = Pbftcore.Messages.Pre_prepare { view; seq = view + 1; descs } in
      match
        Pbftcore.Codec.decode ~order_full_requests:true
          (Pbftcore.Codec.encode ~order_full_requests:true msg)
      with
      | Some decoded -> decoded = msg
      | None -> false)

let prop_rbft_request_roundtrip =
  QCheck.Test.make ~name:"request codec roundtrip"
    QCheck.(triple (int_bound 100) (int_bound 100_000) string)
    (fun (client, rid, op) ->
      let msg =
        Rbft.Messages.Request
          { desc = desc ~client ~rid op; sig_valid = client mod 2 = 0; mac_invalid_for = [] }
      in
      match
        Rbft.Codec.decode ~order_full_requests:false
          (Rbft.Codec.encode ~order_full_requests:false msg)
      with
      | Some decoded -> decoded = msg
      | None -> false)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "codec.pbft",
      [
        Alcotest.test_case "roundtrip (identifiers)" `Quick test_pbft_roundtrip_identifiers;
        Alcotest.test_case "roundtrip (full requests)" `Quick test_pbft_roundtrip_full;
        Alcotest.test_case "garbage rejected" `Quick test_pbft_garbage_rejected;
        Alcotest.test_case "wire sizes track the model" `Quick test_sizes_track_model;
      ]
      @ qsuite [ prop_pbft_pp_roundtrip ] );
    ( "codec.rbft",
      [
        Alcotest.test_case "roundtrip" `Quick test_rbft_roundtrip;
        Alcotest.test_case "junk propagate" `Quick test_rbft_junk_propagate_roundtrip;
        Alcotest.test_case "busy roundtrip" `Quick test_rbft_busy_roundtrip;
      ]
      @ qsuite [ prop_rbft_request_roundtrip ] );
  ]
