(* Tests for the capacity-observability layer ({!Bftcap}) and the
   structures it watches: footprint probe accuracy and nested
   accounting, GC-sampler growth analysis, the mem-growth doctor
   trigger (synthetic-leak self-test), the compact per-client reply
   cache, the client-population workload model, and the regression
   pinning bounded per-client tables under churn. *)

open Dessim
module Footprint = Bftcap.Footprint
module Gcstats = Bftcap.Gcstats

(* Every test that touches the global probe registry starts from a
   clean slate and leaves the gates off; components re-register their
   probes at creation, so clearing cannot break later tests. *)
let with_probes f =
  Footprint.clear ();
  Footprint.enable ();
  Fun.protect
    ~finally:(fun () ->
      Footprint.set_deep false;
      Footprint.disable ();
      Footprint.clear ())
    f

(* ------------------------------------------------------------------ *)
(* Footprint probes                                                   *)
(* ------------------------------------------------------------------ *)

(* A hash table with n bindings must report exactly n entries, and a
   deep snapshot must charge it at least the words those bindings
   cost (conservatively 2 words per binding: the bucket cons cell
   alone is more). *)
let test_probe_accuracy =
  QCheck.Test.make ~count:30 ~name:"footprint probe accuracy"
    QCheck.(int_range 0 400)
    (fun n ->
      with_probes (fun () ->
          Footprint.set_deep true;
          let tbl = Hashtbl.create 16 in
          for i = 1 to n do
            Hashtbl.replace tbl i (string_of_int i)
          done;
          let _p =
            Footprint.register ~name:"t.table" ~owner:"test"
              ~entries:(fun () -> Hashtbl.length tbl)
              ~root:(fun () -> Some (Obj.repr tbl))
              ()
          in
          match Footprint.snapshot ~deep:true () with
          | [ row ] ->
            row.Footprint.r_entries = n
            && row.Footprint.r_bytes >= n * 2 * (Sys.word_size / 8)
            && (n = 0 || row.Footprint.r_bytes > 0)
          | rows ->
            QCheck.Test.fail_reportf "expected 1 row, got %d"
              (List.length rows)))

let test_nested_no_double_count () =
  with_probes (fun () ->
      Footprint.set_deep true;
      (* The child array dominates the parent's reachable words; after
         the exclusive-byte subtraction the parent must be charged
         only its own cells, far below the child. *)
      let child = Array.make 4096 0 in
      let parent = ref [ ("child", Obj.repr child); ("tag", Obj.repr "x") ] in
      ignore
        (Footprint.register ~name:"t.parent" ~owner:"test"
           ~entries:(fun () -> List.length !parent)
           ~root:(fun () -> Some (Obj.repr !parent))
           ());
      ignore
        (Footprint.register ~name:"t.child" ~owner:"test" ~parent:"t.parent"
           ~entries:(fun () -> Array.length child)
           ~root:(fun () -> Some (Obj.repr child))
           ());
      let rows = Footprint.snapshot ~deep:true () in
      let find name =
        List.find (fun r -> r.Footprint.r_name = name) rows
      in
      let parent_row = find "t.parent" and child_row = find "t.child" in
      let child_min = 4096 * (Sys.word_size / 8) in
      Alcotest.(check bool) "child charged its array" true
        (child_row.Footprint.r_bytes >= child_min);
      Alcotest.(check bool) "parent bytes are exclusive" true
        (parent_row.Footprint.r_bytes < child_min);
      let total =
        List.fold_left (fun acc r -> acc + r.Footprint.r_bytes) 0 rows
      in
      (* Sum of exclusive bytes stays in the ballpark of the combined
         structure: no child counted twice. *)
      Alcotest.(check bool) "no double count in the sum" true
        (total < 2 * child_min))

let test_disabled_note_is_noop () =
  with_probes (fun () ->
      Footprint.disable ();
      let count = ref 0 in
      let p =
        Footprint.register ~name:"t.gated" ~owner:"test"
          ~entries:(fun () -> !count)
          ~root:(fun () -> None)
          ()
      in
      count := 500;
      for _ = 1 to 100 do
        Footprint.note p
      done;
      Alcotest.(check int) "peak untouched while disabled" 0
        (Footprint.peak p);
      Footprint.enable ();
      Footprint.note p;
      Alcotest.(check int) "peak tracks once enabled" 500 (Footprint.peak p))

let test_register_rebinds_and_resets_peak () =
  with_probes (fun () ->
      let p1 =
        Footprint.register ~name:"t.rebind" ~owner:"test"
          ~entries:(fun () -> 42)
          ~root:(fun () -> None)
          ()
      in
      Footprint.note p1;
      Alcotest.(check int) "first binding peak" 42 (Footprint.peak p1);
      let p2 =
        Footprint.register ~name:"t.rebind" ~owner:"test"
          ~entries:(fun () -> 7)
          ~root:(fun () -> None)
          ()
      in
      Alcotest.(check int) "rebind resets the peak" 0 (Footprint.peak p2);
      Alcotest.(check int) "one probe, not two" 1
        (List.length (Footprint.snapshot ())))

(* ------------------------------------------------------------------ *)
(* GC sampler growth analysis                                         *)
(* ------------------------------------------------------------------ *)

(* Fabricated heap trajectory: live words climb 200k per sample at
   100 ms spacing = 2e6 words/s. The slope estimate and the culprit
   probe must both come out. *)
let test_gcstats_growth_and_culprit () =
  with_probes (fun () ->
      let live = ref 1_000_000 in
      let read_stat () =
        { (Gc.quick_stat ()) with Gc.live_words = !live; heap_words = !live }
      in
      let leak = ref 0 in
      ignore
        (Footprint.register ~name:"t.leak" ~owner:"test"
           ~entries:(fun () -> !leak)
           ~root:(fun () -> None)
           ());
      let g = Gcstats.create ~read_stat ~window:16 () in
      for i = 1 to 8 do
        Gcstats.sample g ~now:(Time.ms (100 * i));
        live := !live + 200_000;
        leak := !leak + 1_000
      done;
      Alcotest.(check int) "peak live words" (1_000_000 + (7 * 200_000))
        (Gcstats.peak_live_words g);
      match Gcstats.growth g with
      | None -> Alcotest.fail "expected a growth estimate"
      | Some gr ->
        Alcotest.(check bool) "slope near 2e6 words/s" true
          (gr.Gcstats.g_live_slope > 1.5e6 && gr.Gcstats.g_live_slope < 2.5e6);
        (match gr.Gcstats.g_culprit with
         | Some (name, rate) ->
           Alcotest.(check string) "culprit names the leaking probe"
             "t.leak/test" name;
           Alcotest.(check bool) "culprit rate positive" true (rate > 0.0)
         | None -> Alcotest.fail "expected a culprit"))

(* ------------------------------------------------------------------ *)
(* Synthetic-leak self-test: the mem-growth trigger end to end        *)
(* ------------------------------------------------------------------ *)

let leak_trigger =
  Bftdoctor.Trigger.spec
    (Bftdoctor.Trigger.Mem_growth
       { slope = 100_000.0; min_span = Time.ms 300 })
    ~cooldown:(Time.sec 10)

let run_doctor_heap ~grow f =
  with_probes (fun () ->
      let engine = Engine.create () in
      let live = ref 1_000_000 in
      let read_gc () =
        { (Gc.quick_stat ()) with Gc.live_words = !live; heap_words = !live }
      in
      let leak = ref 0 in
      ignore
        (Footprint.register ~name:"leak.table" ~owner:"node-9"
           ~entries:(fun () -> !leak)
           ~root:(fun () -> None)
           ());
      (* The fabricated heap climbs (or stays flat) on its own timer,
         independent of the doctor's sampling period. *)
      let rec churn () =
        if Engine.now engine < Time.sec 1 then begin
          if grow then begin
            live := !live + 100_000;
            leak := !leak + 500
          end;
          ignore (Engine.after engine (Time.ms 50) churn)
        end
      in
      ignore (Engine.after engine (Time.ms 50) churn);
      let config =
        Bftdoctor.Doctor.default_config ~seed:7L ~read_gc:(Some read_gc)
          ~triggers:[ leak_trigger ] ()
      in
      let d = Bftdoctor.Doctor.attach config engine in
      Fun.protect
        ~finally:(fun () -> Bftdoctor.Doctor.detach d)
        (fun () ->
          Engine.run ~until:(Time.sec 1) engine;
          f d))

let test_synthetic_leak_fires_mem_growth () =
  run_doctor_heap ~grow:true (fun d ->
      match Bftdoctor.Doctor.incidents d with
      | [ i ] ->
        Alcotest.(check string) "trigger kind" "mem-growth"
          i.Bftdoctor.Doctor.i_trigger;
        let reason = i.Bftdoctor.Doctor.i_reason in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "reason names the culprit structure: %s" reason)
          true
          (contains reason "leak.table/node-9")
      | l ->
        Alcotest.fail
          (Printf.sprintf "expected exactly one incident, got %d"
             (List.length l)))

let test_steady_heap_stays_quiet () =
  run_doctor_heap ~grow:false (fun d ->
      Alcotest.(check int) "no incident on a flat heap" 0
        (List.length (Bftdoctor.Doctor.incidents d)))

(* ------------------------------------------------------------------ *)
(* Reply cache                                                        *)
(* ------------------------------------------------------------------ *)

module Replycache = Rbft.Replycache

let test_replycache_out_of_order_coalesces () =
  let c = Replycache.create ~window:4 () in
  (* The degraded-fallback/view-change shape: batches land in
     scrambled per-client order, yet must coalesce to one range. *)
  List.iter
    (fun rid -> Replycache.mark c ~client:3 ~rid ~result:(string_of_int rid))
    [ 5; 6; 1; 9; 10; 2; 7; 8; 3; 4 ];
  Alcotest.(check (list (pair int int))) "one merged range" [ (1, 10) ]
    (Replycache.ranges c ~client:3);
  for rid = 1 to 10 do
    Alcotest.(check bool) (Printf.sprintf "rid %d seen" rid) true
      (Replycache.seen c ~client:3 ~rid)
  done;
  Alcotest.(check bool) "rid 11 unseen" false
    (Replycache.seen c ~client:3 ~rid:11);
  Alcotest.(check bool) "other client unseen" false
    (Replycache.seen c ~client:4 ~rid:5)

let test_replycache_gap_ranges_then_merge () =
  let c = Replycache.create () in
  List.iter
    (fun rid -> Replycache.mark c ~client:0 ~rid ~result:"r")
    [ 1; 2; 3; 7; 8 ];
  Alcotest.(check (list (pair int int))) "two ranges across the gap"
    [ (1, 3); (7, 8) ]
    (Replycache.ranges c ~client:0);
  Replycache.mark c ~client:0 ~rid:5 ~result:"r";
  Alcotest.(check (list (pair int int))) "isolated rid opens a range"
    [ (1, 3); (5, 5); (7, 8) ]
    (Replycache.ranges c ~client:0);
  Replycache.mark c ~client:0 ~rid:4 ~result:"r";
  Replycache.mark c ~client:0 ~rid:6 ~result:"r";
  Alcotest.(check (list (pair int int))) "gap filled, all coalesced"
    [ (1, 8) ]
    (Replycache.ranges c ~client:0);
  (* Duplicate marks must not grow anything. *)
  Replycache.mark c ~client:0 ~rid:4 ~result:"r";
  Alcotest.(check (list (pair int int))) "duplicate mark is idempotent"
    [ (1, 8) ]
    (Replycache.ranges c ~client:0)

let test_replycache_window_eviction () =
  let c = Replycache.create ~window:2 () in
  for rid = 1 to 3 do
    Replycache.mark c ~client:1 ~rid ~result:(Printf.sprintf "r%d" rid)
  done;
  Alcotest.(check (option string)) "latest result cached" (Some "r3")
    (Replycache.find c ~client:1 ~rid:3);
  Alcotest.(check (option string)) "window holds the previous" (Some "r2")
    (Replycache.find c ~client:1 ~rid:2);
  Alcotest.(check (option string)) "evicted result gone" None
    (Replycache.find c ~client:1 ~rid:1);
  Alcotest.(check bool) "evicted rid still seen" true
    (Replycache.seen c ~client:1 ~rid:1)

let test_replycache_overflow_client_ids () =
  let c = Replycache.create ~window:2 () in
  (* Negative and far-out-of-range client ids must not allocate a
     dense slot array; they take the overflow path but behave the
     same. *)
  Replycache.mark c ~client:(-5) ~rid:1 ~result:"neg";
  Replycache.mark c ~client:50_000_000 ~rid:2 ~result:"big";
  Alcotest.(check bool) "negative id seen" true
    (Replycache.seen c ~client:(-5) ~rid:1);
  Alcotest.(check (option string)) "negative id result" (Some "neg")
    (Replycache.find c ~client:(-5) ~rid:1);
  Alcotest.(check (option string)) "huge id result" (Some "big")
    (Replycache.find c ~client:50_000_000 ~rid:2);
  Alcotest.(check int) "two clients tracked" 2 (Replycache.clients c);
  let ids =
    Replycache.fold_ids
      (fun ~client ~rid acc -> (client, rid) :: acc)
      c []
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "fold enumerates both"
    [ (-5, 1); (50_000_000, 2) ]
    ids

(* ------------------------------------------------------------------ *)
(* Population model                                                   *)
(* ------------------------------------------------------------------ *)

module Population = Bftworkload.Population

let test_population_rates_sum_to_aggregate () =
  let p =
    Population.create ~clients:1000 ~active:100 ~aggregate_rate:5000.0
      ~duration:(Time.sec 1) ()
  in
  let sum = Array.fold_left ( +. ) 0.0 (Population.rates p) in
  Alcotest.(check bool) "zipf rates sum to the aggregate" true
    (Float.abs (sum -. 5000.0) < 1e-6);
  let r = Population.rates p in
  Alcotest.(check bool) "heaviest slot first" true (r.(0) > r.(99));
  Alcotest.(check bool) "offered = rate x duration (steady)" true
    (Float.abs (Population.offered_total p -. 5000.0) < 1e-6)

let test_population_offered_by_profile () =
  let mk profile =
    Population.create ~profile ~clients:10 ~aggregate_rate:1000.0
      ~duration:(Time.sec 2) ()
  in
  Alcotest.(check bool) "flash offers 1.2x steady" true
    (Float.abs
       (Population.offered_total (mk Population.Flash) -. (1.2 *. 2000.0))
     < 1e-6);
  let diurnal = Population.offered_total (mk Population.Diurnal) in
  Alcotest.(check bool) "diurnal offers less than steady" true
    (diurnal < 2000.0 && diurnal > 0.3 *. 2000.0)

(* Same seed, same engine schedule -> the exact same sequence of
   set_rate calls, including churn rotations. *)
let test_population_apply_deterministic () =
  let record () =
    let engine = Engine.create () in
    let p =
      Population.create ~clients:60 ~active:12 ~churn_fraction:0.25
        ~aggregate_rate:600.0 ~duration:(Time.ms 800) ()
    in
    let calls = ref [] in
    Population.apply engine p ~set_rate:(fun c r ->
        calls := (Time.to_string (Engine.now engine), c, r) :: !calls);
    Engine.run ~until:(Time.sec 1) engine;
    List.rev !calls
  in
  let a = record () and b = record () in
  Alcotest.(check int) "same call count" (List.length a) (List.length b);
  Alcotest.(check bool) "identical schedules" true (a = b);
  (* Churn keeps introducing unseen population members. *)
  let distinct =
    List.sort_uniq compare (List.map (fun (_, c, _) -> c) a)
  in
  Alcotest.(check bool)
    (Printf.sprintf "churn rotated in fresh clients (%d distinct)"
       (List.length distinct))
    true
    (List.length distinct > 12);
  (* After the duration everyone is stopped. *)
  let final = Hashtbl.create 64 in
  List.iter (fun (_, c, r) -> Hashtbl.replace final c r) a;
  Hashtbl.iter
    (fun c r ->
      if r <> 0.0 then
        Alcotest.failf "client %d left running at %g req/s" c r)
    final

let test_population_flash_triples_midrun () =
  let engine = Engine.create () in
  let p =
    Population.create ~profile:Population.Flash ~clients:8
      ~churn_interval:Time.zero ~aggregate_rate:800.0
      ~duration:(Time.sec 1) ()
  in
  let peak = Array.make 8 0.0 in
  Population.apply engine p ~set_rate:(fun c r ->
      if r > peak.(c) then peak.(c) <- r);
  Engine.run ~until:(Time.sec 2) engine;
  let base = (Population.rates p).(0) in
  Alcotest.(check bool) "heaviest slot peaked at 3x its base rate" true
    (Float.abs (peak.(0) -. (3.0 *. base)) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Bounded per-client tables under churn (regression)                 *)
(* ------------------------------------------------------------------ *)

(* Run a churning population against a cluster twice — once with the
   capacity knobs on, once off — and read the per-client tables
   through the footprint probes. The knobs must keep the request
   table and the monitoring latency table bounded near the live set
   while the unswept run grows with every client ever seen. *)
let churn_run ~params =
  with_probes (fun () ->
      let duration = Time.ms 800 in
      let pop =
        Population.create ~clients:300 ~active:40 ~churn_fraction:0.25
          ~aggregate_rate:2000.0 ~duration ()
      in
      let cluster =
        Rbft.Cluster.create ~clients:(Population.clients pop)
          ~payload_size:8 params
      in
      let engine = Rbft.Cluster.engine cluster in
      Population.apply engine pop ~set_rate:(fun c r ->
          Rbft.Client.set_rate (Rbft.Cluster.client cluster c) r);
      Rbft.Cluster.run_for cluster (Time.add duration (Time.ms 200));
      let entries name owner =
        match
          List.find_opt
            (fun r ->
              r.Footprint.r_name = name && r.Footprint.r_owner = owner)
            (Footprint.snapshot ())
        with
        | Some r -> r.Footprint.r_entries
        | None -> Alcotest.failf "probe %s/%s not registered" name owner
      in
      let requests = entries "node.requests" "node-1" in
      let client_lat = entries "monitoring.client_lat" "node-1" in
      let monitoring_count =
        Rbft.Monitoring.client_count
          (Rbft.Node.monitoring (Rbft.Cluster.node cluster 1))
      in
      Alcotest.(check int) "probe and accessor agree" client_lat
        monitoring_count;
      (requests, client_lat))

let test_churn_bounded_with_knobs () =
  let base = Rbft.Params.default ~f:1 in
  let on =
    { base with
      Rbft.Params.request_gc_age = Time.ms 100;
      monitoring_idle_prune = Time.ms 200 }
  in
  let req_on, lat_on = churn_run ~params:on in
  let req_off, lat_off = churn_run ~params:base in
  (* ~200 distinct clients are seen over the run (40 live + 10 fresh
     per 50 ms churn); the pruned table must track the live set, the
     unpruned one the whole history. *)
  Alcotest.(check bool)
    (Printf.sprintf "unpruned latency table grows with history (%d)" lat_off)
    true (lat_off >= 120);
  Alcotest.(check bool)
    (Printf.sprintf "pruned latency table near the live set (%d)" lat_on)
    true
    (lat_on < 120 && lat_on * 2 < lat_off);
  Alcotest.(check bool)
    (Printf.sprintf "swept request table bounded (%d vs %d)" req_on req_off)
    true
    (req_on * 2 < req_off)

(* ------------------------------------------------------------------ *)
(* BENCH_clients.json structural determinism                          *)
(* ------------------------------------------------------------------ *)

(* Two same-seed sweeps must produce the same JSON skeleton and the
   same sim-deterministic series; only wall-runtime GC numbers may
   differ, so the shape comparison erases scalar values. *)
let rec shape (v : Bftdoctor.Jmini.v) =
  match v with
  | Bftdoctor.Jmini.Num _ -> "#"
  | Bftdoctor.Jmini.Str _ -> "$"
  | Bftdoctor.Jmini.Bool _ -> "?"
  | Bftdoctor.Jmini.Null -> "_"
  | Bftdoctor.Jmini.Arr vs ->
    "[" ^ String.concat "," (List.map shape vs) ^ "]"
  | Bftdoctor.Jmini.Obj kvs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ ":" ^ shape v) kvs)
    ^ "}"

let test_clients_report_structure_deterministic () =
  let parse s = Bftdoctor.Jmini.parse s in
  let a = parse (Bftharness.Perfreport.generate_clients ~quick:true) in
  let b = parse (Bftharness.Perfreport.generate_clients ~quick:true) in
  Alcotest.(check string) "identical JSON skeleton" (shape a) (shape b);
  (* The sim-deterministic leaves must agree exactly between runs. *)
  let sweep v =
    match v with
    | Bftdoctor.Jmini.Obj kvs -> (
      match List.assoc_opt "sweep" kvs with
      | Some (Bftdoctor.Jmini.Arr points) -> points
      | _ -> Alcotest.fail "no sweep array")
    | _ -> Alcotest.fail "not an object"
  in
  let deterministic_leaves points =
    List.concat_map
      (fun p ->
        match p with
        | Bftdoctor.Jmini.Obj kvs ->
          List.filter_map
            (fun (k, v) ->
              match (k, v) with
              | ("gc" | "footprint_peak"), _ -> None
              | k, Bftdoctor.Jmini.Num n -> Some (k, n)
              | _ -> None)
            kvs
        | _ -> [])
      points
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "sim-deterministic sweep values identical"
    (deterministic_leaves (sweep a))
    (deterministic_leaves (sweep b));
  (* And the footprint peak series is sim-deterministic too. *)
  let footprints points =
    List.concat_map
      (fun p ->
        match p with
        | Bftdoctor.Jmini.Obj kvs -> (
          match List.assoc_opt "footprint_peak" kvs with
          | Some (Bftdoctor.Jmini.Obj fps) ->
            List.filter_map
              (fun (k, v) ->
                match v with
                | Bftdoctor.Jmini.Num n -> Some (k, n)
                | _ -> None)
              fps
          | _ -> [])
        | _ -> [])
      points
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "footprint peaks identical" (footprints (sweep a))
    (footprints (sweep b))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "cap.footprint",
      qsuite [ test_probe_accuracy ]
      @ [
          Alcotest.test_case "nested probes do not double count" `Quick
            test_nested_no_double_count;
          Alcotest.test_case "disabled note is a no-op" `Quick
            test_disabled_note_is_noop;
          Alcotest.test_case "register rebinds and resets peak" `Quick
            test_register_rebinds_and_resets_peak;
        ] );
    ( "cap.gcstats",
      [
        Alcotest.test_case "growth slope and culprit" `Quick
          test_gcstats_growth_and_culprit;
      ] );
    ( "cap.doctor",
      [
        Alcotest.test_case "synthetic leak fires mem-growth" `Quick
          test_synthetic_leak_fires_mem_growth;
        Alcotest.test_case "steady heap stays quiet" `Quick
          test_steady_heap_stays_quiet;
      ] );
    ( "cap.replycache",
      [
        Alcotest.test_case "out-of-order marks coalesce" `Quick
          test_replycache_out_of_order_coalesces;
        Alcotest.test_case "gap ranges then merge" `Quick
          test_replycache_gap_ranges_then_merge;
        Alcotest.test_case "window eviction semantics" `Quick
          test_replycache_window_eviction;
        Alcotest.test_case "overflow client ids" `Quick
          test_replycache_overflow_client_ids;
      ] );
    ( "cap.population",
      [
        Alcotest.test_case "rates sum to aggregate" `Quick
          test_population_rates_sum_to_aggregate;
        Alcotest.test_case "offered totals by profile" `Quick
          test_population_offered_by_profile;
        Alcotest.test_case "apply is deterministic" `Quick
          test_population_apply_deterministic;
        Alcotest.test_case "flash triples the mid-run rate" `Quick
          test_population_flash_triples_midrun;
      ] );
    ( "cap.capacity",
      [
        Alcotest.test_case "churn-bounded tables with knobs on" `Slow
          test_churn_bounded_with_knobs;
        Alcotest.test_case "clients report structurally deterministic" `Slow
          test_clients_report_structure_deterministic;
      ] );
  ]
