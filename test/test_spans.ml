(* Tests for bftspan: causal per-request tracing.

   - smoke: a fault-free RBFT run yields well-formed span trees whose
     per-stage attribution sums to exactly the end-to-end latency
   - sampling: 1/N keeps only rids divisible by N
   - determinism: same seed, same span digest
   - chaos: crash/partition scenarios keep committed trees orphan-free;
     requests dropped by a partition surface as open roots
   - JSONL and combined Chrome-trace round trips
   - synthetic critical path with known attribution *)

open Dessim

let with_tracer ?(sample = 1) f =
  Bftspan.Tracer.reset ();
  Bftspan.Tracer.enable ~sample ();
  Fun.protect
    ~finally:(fun () -> Bftspan.Tracer.disable ())
    f

let run_rbft ?(attack = fun _ -> ()) ?(seed = 42) ?(seconds = 0.3) ?(clients = 3)
    ?(rate = 400.0) () =
  let cluster =
    Rbft.Cluster.create ~seed:(Int64.of_int seed) ~clients ~payload_size:8
      (Rbft.Params.default ~f:1)
  in
  attack cluster;
  Array.iter (fun c -> Rbft.Client.set_rate c rate) (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.of_sec_f seconds);
  cluster

(* ------------------------------------------------------------------ *)
(* Smoke: attribution sums, tree invariants                           *)
(* ------------------------------------------------------------------ *)

let test_smoke () =
  let spans =
    with_tracer (fun () ->
        ignore (run_rbft ());
        Bftspan.Tracer.to_array ())
  in
  let s = Bftspan.Analyze.summarize spans in
  Alcotest.(check bool) "spans recorded" true (Array.length spans > 100);
  Alcotest.(check bool) "requests committed" true (s.Bftspan.Analyze.committed > 10);
  Alcotest.(check (list string)) "trees well-formed" []
    (Bftspan.Analyze.check_trees spans);
  Alcotest.(check int) "no orphans" 0 s.Bftspan.Analyze.orphans;
  (* The acceptance bound: stages sum to total latency within 1%
     (by construction the walk telescopes, so it is exact). *)
  Alcotest.(check bool) "shares sum to 1"
    true
    (Float.abs (s.Bftspan.Analyze.share_sum -. 1.0) <= 0.01);
  Alcotest.(check bool) "positive p50" true (s.Bftspan.Analyze.total_p50_ms > 0.0);
  (match s.Bftspan.Analyze.traces with
   | [] -> Alcotest.fail "no committed traces"
   | slowest :: _ ->
     let _, d = Bftspan.Analyze.dominant_stage slowest in
     Alcotest.(check bool) "slowest request names a dominant stage" true
       (d > Time.zero));
  (* Ordering phases must actually appear in the attribution. *)
  let stage_tags =
    List.map (fun r -> r.Bftspan.Analyze.tag) s.Bftspan.Analyze.stages
  in
  List.iter
    (fun tag ->
      Alcotest.(check bool)
        (Bftspan.Tag.name tag ^ " attributed")
        true (List.mem tag stage_tags))
    [ Bftspan.Tag.Net_transit; Bftspan.Tag.Batch_wait; Bftspan.Tag.Prepare;
      Bftspan.Tag.Commit; Bftspan.Tag.Reply ]

let test_disabled_records_nothing () =
  Bftspan.Tracer.reset ();
  Bftspan.Tracer.disable ();
  ignore (run_rbft ~seconds:0.05 ());
  Alcotest.(check int) "no spans when disabled" 0 (Bftspan.Tracer.count ())

let test_sampling () =
  let spans =
    with_tracer ~sample:4 (fun () ->
        ignore (run_rbft ());
        Bftspan.Tracer.to_array ())
  in
  Alcotest.(check bool) "sampled run recorded spans" true (Array.length spans > 0);
  Array.iter
    (fun s ->
      if s.Bftspan.Span.rid mod 4 <> 0 then
        Alcotest.failf "span %d traces unsampled rid %d" s.Bftspan.Span.id
          s.Bftspan.Span.rid)
    spans

(* ------------------------------------------------------------------ *)
(* Determinism                                                        *)
(* ------------------------------------------------------------------ *)

let test_determinism () =
  let digest_of_run seed =
    with_tracer (fun () ->
        ignore (run_rbft ~seed ());
        (Bftspan.Tracer.digest (), Bftspan.Tracer.count ()))
  in
  let d1, c1 = digest_of_run 7 in
  let d2, c2 = digest_of_run 7 in
  Alcotest.(check int) "same span count" c1 c2;
  Alcotest.(check string) "same seed, same digest" d1 d2;
  let d3, _ = digest_of_run 8 in
  Alcotest.(check bool) "different seed, different digest" true (d1 <> d3)

(* ------------------------------------------------------------------ *)
(* Chaos                                                              *)
(* ------------------------------------------------------------------ *)

let chaos_scenario ~name ~faults ~drain =
  {
    Bftchaos.Scenario.name;
    protocol = Bftchaos.Scenario.Rbft;
    f = 1;
    seed = 42L;
    duration = Time.ms 500;
    drain;
    workload = { Bftchaos.Scenario.clients = 2; rate = 60.0; payload = 8 };
    faults;
    lambda = Time.zero;
    mutation = None;
  }

let test_chaos_crash_trees () =
  (* One crash within f, full drain: the run stays live, so every
     sampled request must close into a well-formed orphan-free tree. *)
  let spans =
    with_tracer (fun () ->
        let faults =
          [ { Bftchaos.Fault.at = Time.ms 100; until = Time.ms 300;
              kind = Bftchaos.Fault.Crash { node = 2 } } ]
        in
        let r =
          Bftchaos.Runner.run
            (chaos_scenario ~name:"span-crash" ~faults ~drain:(Time.sec 1))
        in
        Alcotest.(check bool) "run live through crash" true
          (Bftchaos.Runner.ok r);
        Bftspan.Tracer.to_array ())
  in
  let s = Bftspan.Analyze.summarize spans in
  Alcotest.(check (list string)) "trees well-formed under crash" []
    (Bftspan.Analyze.check_trees spans);
  Alcotest.(check bool) "requests committed" true (s.Bftspan.Analyze.committed > 0);
  Alcotest.(check int) "all sampled requests closed" 0
    s.Bftspan.Analyze.open_roots

let test_chaos_partition_open_roots () =
  (* Majority partition until the end of the chaos phase and a drain
     too short to recover: requests sent into the partition cannot
     complete, and the analyzer must flag them as open roots rather
     than mis-attribute them. *)
  let spans =
    with_tracer (fun () ->
        let faults =
          [ { Bftchaos.Fault.at = Time.ms 100; until = Time.ms 500;
              kind = Bftchaos.Fault.Partition { group = [ 0; 1 ] } } ]
        in
        ignore
          (Bftchaos.Runner.run
             (chaos_scenario ~name:"span-partition" ~faults ~drain:(Time.ms 1)));
        Bftspan.Tracer.to_array ())
  in
  let s = Bftspan.Analyze.summarize spans in
  Alcotest.(check bool) "dropped requests flagged as open roots" true
    (s.Bftspan.Analyze.open_roots > 0);
  Alcotest.(check (list string)) "trees still well-formed" []
    (Bftspan.Analyze.check_trees spans);
  (* Open roots carry no attribution: shares still telescope over the
     committed subset only. *)
  if s.Bftspan.Analyze.committed > 0 then
    Alcotest.(check bool) "committed shares still sum to 1" true
      (Float.abs (s.Bftspan.Analyze.share_sum -. 1.0) <= 0.01)

(* ------------------------------------------------------------------ *)
(* JSONL round trip                                                   *)
(* ------------------------------------------------------------------ *)

let test_jsonl_roundtrip () =
  let spans =
    with_tracer (fun () ->
        ignore (run_rbft ~seconds:0.1 ());
        Bftspan.Tracer.to_array ())
  in
  let path = Filename.temp_file "spans" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bftspan.Tracer.write_jsonl path;
      let back = Bftspan.Analyze.read_jsonl path in
      Alcotest.(check int) "span count survives" (Array.length spans)
        (Array.length back);
      Array.iteri
        (fun i s ->
          Alcotest.(check string)
            (Printf.sprintf "span %d survives" i)
            (Bftspan.Span.to_json s)
            (Bftspan.Span.to_json back.(i)))
        spans)

(* ------------------------------------------------------------------ *)
(* Combined Chrome export (satellite: bftaudit alignment)             *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let count_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let count = ref 0 in
  for i = 0 to h - n do
    if String.sub hay i n = needle then incr count
  done;
  !count

let test_chrome_combined () =
  let capture = Bftaudit.Capture.attach () in
  let spans =
    with_tracer (fun () ->
        ignore (run_rbft ~seconds:0.1 ());
        Bftspan.Tracer.to_array ())
  in
  let audit_events = Bftaudit.Capture.count capture in
  let closed =
    Array.fold_left
      (fun acc s -> if Bftspan.Span.is_open s then acc else acc + 1)
      0 spans
  in
  let path = Filename.temp_file "combined" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Bftaudit.Capture.detach capture)
    (fun () ->
      Bftspan.Analyze.write_chrome ~audit:capture spans path;
      let body = read_file path in
      Alcotest.(check bool) "has preamble" true
        (String.length body > 2 && body.[0] = '{');
      Alcotest.(check string) "closes the event array" "]}"
        (String.sub body (String.length body - 2) 2);
      (* Round trip by event counts: every closed span becomes one
         complete event, every audit event one instant event, in the
         same pid (node) / tid (instance) timeline. *)
      Alcotest.(check int) "all closed spans exported" closed
        (count_substring body {|"ph":"X"|});
      Alcotest.(check int) "all audit events exported" audit_events
        (count_substring body {|"ph":"i"|});
      Alcotest.(check bool) "audit events present" true (audit_events > 0);
      (* Both event kinds appear on node 1's timeline. *)
      Alcotest.(check bool) "span on node 1" true
        (count_substring body {|"ph":"X","ts"|} > 0);
      Alcotest.(check bool) "shared pid space" true
        (count_substring body {|"pid":1,|} > 1))

(* ------------------------------------------------------------------ *)
(* Synthetic critical path                                            *)
(* ------------------------------------------------------------------ *)

let test_critical_path_synthetic () =
  with_tracer (fun () ->
      let module T = Bftspan.Tracer in
      let root =
        T.root ~client:0 ~rid:0 ~node:(-1) ~instance:(-1)
          ~tag:Bftspan.Tag.Client ~t0:(Time.ns 0)
      in
      let a =
        T.span ~parent:root ~tag:Bftspan.Tag.Net_transit ~node:1 ~instance:0
          ~t0:(Time.ns 0) ~t1:(Time.ns 10)
      in
      let b =
        T.span ~parent:a ~tag:Bftspan.Tag.Prepare ~node:1 ~instance:0
          ~t0:(Time.ns 10) ~t1:(Time.ns 60)
      in
      ignore
        (T.span ~parent:b ~tag:Bftspan.Tag.Reply ~node:1 ~instance:0
           ~t0:(Time.ns 70) ~t1:(Time.ns 95));
      T.finish root ~t1:(Time.ns 100);
      let s = Bftspan.Analyze.summarize (T.to_array ()) in
      Alcotest.(check int) "one committed trace" 1 s.Bftspan.Analyze.committed;
      let t = List.hd s.Bftspan.Analyze.traces in
      Alcotest.(check bool) "total is 100ns" true
        (t.Bftspan.Analyze.total = Time.ns 100);
      let budget tag =
        match List.assoc_opt tag t.Bftspan.Analyze.budget with
        | Some d -> (d : Time.t :> int)
        | None -> 0
      in
      (* Last-finisher walk: [95,100] to the root tag; [70,95] to the
         reply, which also absorbs the (60,70] gap before it; [10,60]
         to prepare; [0,10] to the transit. *)
      Alcotest.(check int) "client tail" 5 (budget Bftspan.Tag.Client);
      Alcotest.(check int) "reply + gap" 35 (budget Bftspan.Tag.Reply);
      Alcotest.(check int) "prepare" 50 (budget Bftspan.Tag.Prepare);
      Alcotest.(check int) "net-transit" 10 (budget Bftspan.Tag.Net_transit);
      let sum =
        List.fold_left
          (fun acc (_, d) -> Time.add acc d)
          Time.zero t.Bftspan.Analyze.budget
      in
      Alcotest.(check bool) "budget telescopes exactly" true
        (sum = t.Bftspan.Analyze.total);
      Alcotest.(check bool) "share_sum exact" true
        (Float.abs (s.Bftspan.Analyze.share_sum -. 1.0) < 1e-9))

(* ------------------------------------------------------------------ *)
(* Tag codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_tag_roundtrip () =
  List.iter
    (fun tag ->
      match Bftspan.Tag.of_name (Bftspan.Tag.name tag) with
      | Some back ->
        Alcotest.(check string) "tag survives" (Bftspan.Tag.name tag)
          (Bftspan.Tag.name back)
      | None -> Alcotest.failf "tag %s does not parse" (Bftspan.Tag.name tag))
    Bftspan.Tag.all

(* Regression for the final-partial-chunk flush: a capture smaller
   than one 64 KiB chunk digests as exactly one chained fold,
   sha256(sha256(seed) ^ jsonl) — recomputable by hand with the raw
   hash. Before the flush fix, [hex] on a sub-chunk capture returned
   the bare seed digest: every line since the last chunk boundary
   silently dropped out, so a truncated run collided with its own
   (empty) prefix. *)
let test_truncated_digest () =
  with_tracer (fun () ->
      for rid = 1 to 12 do
        let id =
          Bftspan.Tracer.root ~client:0 ~rid ~node:(-1) ~instance:(-1)
            ~tag:Bftspan.Tag.Client ~t0:(Time.ms rid)
        in
        Bftspan.Tracer.finish id ~t1:(Time.ms (rid + 5))
      done;
      let n = Bftspan.Tracer.count () in
      Alcotest.(check int) "all roots captured" 12 n;
      (* manual recomputation over the whole (sub-chunk) capture *)
      let jsonl = Buffer.create 1024 in
      Array.iter
        (fun s ->
          Bftspan.Span.write_json jsonl s;
          Buffer.add_char jsonl '\n')
        (Bftspan.Tracer.to_array ());
      Alcotest.(check bool) "capture fits one chunk" true
        (Buffer.length jsonl < (64 * 1024) - 256);
      let manual =
        Bftcrypto.Sha256.to_hex
          (Bftcrypto.Sha256.digest_string
             (Bftcrypto.Sha256.digest_string Bftspan.Tracer.digest_seed
             ^ Buffer.contents jsonl))
      in
      Alcotest.(check string) "partial chunk folds into the chain" manual
        (Bftspan.Tracer.digest ());
      (* the same discipline through Chunkdig directly *)
      let d = Bftspan.Chunkdig.create ~seed:Bftspan.Tracer.digest_seed () in
      String.split_on_char '\n' (Buffer.contents jsonl)
      |> List.iter (fun line ->
             if line <> "" then Bftspan.Chunkdig.add_string_line d line);
      Alcotest.(check string) "chunkdig agrees" manual (Bftspan.Chunkdig.hex d);
      (* prefix sensitivity: a truncated capture digests its exact
         prefix and differs from the full digest *)
      let d7 = Bftspan.Tracer.digest_upto 7 in
      Alcotest.(check bool) "truncation changes the digest" true
        (d7 <> Bftspan.Tracer.digest ());
      Alcotest.(check string) "digest_upto count = digest"
        (Bftspan.Tracer.digest ())
        (Bftspan.Tracer.digest_upto n);
      (* the 7-span prefix recomputed by hand *)
      let prefix = Buffer.create 512 in
      Array.iteri
        (fun i s ->
          if i < 7 then begin
            Bftspan.Span.write_json prefix s;
            Buffer.add_char prefix '\n'
          end)
        (Bftspan.Tracer.to_array ());
      let manual7 =
        Bftcrypto.Sha256.to_hex
          (Bftcrypto.Sha256.digest_string
             (Bftcrypto.Sha256.digest_string Bftspan.Tracer.digest_seed
             ^ Buffer.contents prefix))
      in
      Alcotest.(check string) "truncated digest is the prefix digest" manual7
        d7)

let suites =
  [
    ( "spans.tracer",
      [
        Alcotest.test_case "fault-free smoke" `Quick test_smoke;
        Alcotest.test_case "disabled records nothing" `Quick
          test_disabled_records_nothing;
        Alcotest.test_case "1/N sampling" `Quick test_sampling;
        Alcotest.test_case "deterministic digest" `Quick test_determinism;
        Alcotest.test_case "truncated-capture digest" `Quick
          test_truncated_digest;
        Alcotest.test_case "tag codec" `Quick test_tag_roundtrip;
      ] );
    ( "spans.chaos",
      [
        Alcotest.test_case "crash keeps trees well-formed" `Quick
          test_chaos_crash_trees;
        Alcotest.test_case "partition flags open roots" `Quick
          test_chaos_partition_open_roots;
      ] );
    ( "spans.export",
      [
        Alcotest.test_case "jsonl round trip" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "combined chrome export" `Quick test_chrome_combined;
      ] );
    ( "spans.analyze",
      [
        Alcotest.test_case "synthetic critical path" `Quick
          test_critical_path_synthetic;
      ] );
  ]
