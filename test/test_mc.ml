(* Tests for bftmc, the explicit-state model checker: world replay
   determinism, the enabled-frontier FIFO rule, search soundness of the
   partial-order reduction, and the counterexample pipeline down to a
   shrunk .scn scenario. *)

open Dessim

(* Small worlds keep these tests fast; the full acceptance sweep (2
   requests, depth 6, fault placements) runs in CI's mc-smoke job. *)
let small_cfg =
  { Bftmc.World.default_config with Bftmc.World.requests = 1; depth = 4 }

let first_enabled w =
  match Bftmc.World.enabled w with
  | c :: _ -> c
  | [] -> Alcotest.fail "no enabled choice"

let test_world_replay_fingerprint () =
  (* Drive a world along a greedy schedule, then replay the recorded
     ids into a fresh world: fingerprints must match step for step.
     This is the checker's core determinism contract — and, since the
     mc world runs with zero jitter, almost every engine pop is a
     same-timestamp tie, so it doubles as the replay-under-heavy-ties
     regression at the audit level. *)
  let w = Bftmc.World.create small_cfg in
  let fps = ref [] in
  for _ = 1 to 4 do
    Bftmc.World.step w (first_enabled w);
    fps := Bftmc.World.fingerprint w :: !fps
  done;
  let ids = Bftmc.World.fired w in
  Bftmc.World.destroy w;
  let w2 = Bftmc.World.create small_cfg in
  let fps2 = ref [] in
  List.iter
    (fun id ->
      Bftmc.World.step_id w2 id;
      fps2 := Bftmc.World.fingerprint w2 :: !fps2)
    ids;
  Bftmc.World.destroy w2;
  Alcotest.(check (list string)) "replay reproduces every fingerprint"
    (List.rev !fps) (List.rev !fps2)

let test_world_enabled_channel_fifo () =
  (* Per (src, dst) channel only the oldest parked delivery is
     schedulable (TCP FIFO); enabled is id-sorted and duplicate-free. *)
  let w = Bftmc.World.create small_cfg in
  let check_frontier w =
    let en = Bftmc.World.enabled w in
    let ids = List.map (fun (c : Engine.choice) -> c.Engine.id) en in
    Alcotest.(check (list int)) "ascending ids" (List.sort compare ids) ids;
    let chans =
      List.map (fun (c : Engine.choice) -> (c.Engine.src, c.Engine.dst)) en
    in
    Alcotest.(check int) "one delivery per channel"
      (List.length (List.sort_uniq compare chans))
      (List.length chans);
    List.iter
      (fun (c : Engine.choice) ->
        List.iter
          (fun (p : Engine.choice) ->
            if p.Engine.src = c.Engine.src && p.Engine.dst = c.Engine.dst then
              Alcotest.(check bool) "channel head has the lowest id" true
                (c.Engine.id <= p.Engine.id))
          (Bftmc.World.pending w))
      en
  in
  check_frontier w;
  Bftmc.World.step w (first_enabled w);
  check_frontier w;
  Bftmc.World.destroy w

let test_search_clean_and_deterministic () =
  let o1 = Bftmc.Search.run small_cfg in
  Alcotest.(check bool) "clean sweep" true (o1.Bftmc.Search.counterexample = None);
  Alcotest.(check bool) "explored something" true
    (o1.Bftmc.Search.stats.Bftmc.Search.states > 10);
  Alcotest.(check bool) "judged leaves" true
    (o1.Bftmc.Search.stats.Bftmc.Search.leaves > 0);
  (* Bitwise-identical re-run: same states, same dedup, same leaves. *)
  let o2 = Bftmc.Search.run small_cfg in
  Alcotest.(check int) "states deterministic"
    o1.Bftmc.Search.stats.Bftmc.Search.states
    o2.Bftmc.Search.stats.Bftmc.Search.states;
  Alcotest.(check int) "dedup deterministic"
    o1.Bftmc.Search.stats.Bftmc.Search.dedup_hits
    o2.Bftmc.Search.stats.Bftmc.Search.dedup_hits;
  Alcotest.(check int) "leaves deterministic"
    o1.Bftmc.Search.stats.Bftmc.Search.leaves
    o2.Bftmc.Search.stats.Bftmc.Search.leaves

let test_search_por_sound_and_smaller () =
  (* POR must (a) shrink the state count and (b) stay sound: a clean
     full search implies a clean reduced search, and here neither finds
     a violation while both drain the same frontier grammar. *)
  let full = Bftmc.Search.run ~por:false small_cfg in
  let reduced = Bftmc.Search.run ~por:true small_cfg in
  Alcotest.(check bool) "full clean" true (full.Bftmc.Search.counterexample = None);
  Alcotest.(check bool) "reduced clean" true
    (reduced.Bftmc.Search.counterexample = None);
  Alcotest.(check bool) "reduction shrinks the space" true
    (reduced.Bftmc.Search.stats.Bftmc.Search.states
    < full.Bftmc.Search.stats.Bftmc.Search.states);
  Alcotest.(check bool) "skips accounted" true
    (reduced.Bftmc.Search.stats.Bftmc.Search.por_skipped > 0)

let test_placements () =
  Alcotest.(check (list (list int))) "fault-free only"
    [ [] ]
    (Bftmc.Search.placements ~n:4 ~max_faults:0 ~f:1);
  Alcotest.(check (list (list int))) "singletons, fault-free first"
    [ []; [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
    (Bftmc.Search.placements ~n:4 ~max_faults:1 ~f:1);
  (* Capped at f no matter what the flag says. *)
  Alcotest.(check int) "capped at f" 5
    (List.length (Bftmc.Search.placements ~n:4 ~max_faults:3 ~f:1))

let test_mutation_found_and_cex_reproduces () =
  (* The planted ic-quorum bug must surface, and the extracted .scn
     scenario must replay to the same invariant digest after
     shrinking — the full counterexample pipeline. *)
  let cfg =
    { Bftmc.World.default_config with Bftmc.World.requests = 2; mutate = true }
  in
  let o = Bftmc.Search.run cfg in
  match o.Bftmc.Search.counterexample with
  | None -> Alcotest.fail "mutation not detected"
  | Some cex ->
    Alcotest.(check bool) "safety violation" true
      (cex.Bftmc.Search.cex_safety <> []);
    Alcotest.(check bool) "the planted invariant" true
      (List.exists
         (fun v ->
           v.Bftaudit.Auditor.invariant = "instance-change-quorum")
         cex.Bftmc.Search.cex_safety);
    Alcotest.(check bool) "non-empty schedule" true
      (cex.Bftmc.Search.schedule <> []);
    let path = Filename.temp_file "mc-cex" ".scn" in
    let repro = Bftmc.Cex.extract ~budget:60 ~out:path cex in
    Alcotest.(check bool) "scenario reproduces the digest" true
      repro.Bftmc.Cex.reproduced;
    (* The saved artifact round-trips and still reproduces. *)
    (match Bftchaos.Scenario.load path with
     | Error e -> Alcotest.fail e
     | Ok s ->
       Alcotest.(check bool) "saved .scn still fails the same way" true
         (Bftmc.Cex.reproduces ~target:repro.Bftmc.Cex.target_digest s));
    Sys.remove path

let test_liveness_monitor_rules () =
  (* Unit-level checks of the two quiescence rules, driven through the
     audit bus without a cluster. *)
  let module L = Bftaudit.Liveness in
  let module E = Bftaudit.Event in
  let l = L.create () in
  let vote node cpi =
    L.on_event l
      {
        E.time = Time.zero;
        node;
        instance = 0;
        kind = E.Instance_change_vote { cpi };
      }
  in
  let change node cpi =
    L.on_event l
      {
        E.time = Time.zero;
        node;
        instance = 0;
        kind = E.Instance_changed { cpi; recovery = false };
      }
  in
  let correct = [ 0; 1; 2; 3 ] in
  (* No events: clean. *)
  Alcotest.(check int) "silent system clean" 0
    (List.length (L.check l ~quorum:3 ~correct));
  (* Quorum of votes with no completion: progress rule fires. *)
  vote 0 0;
  vote 1 0;
  vote 2 0;
  let problems = L.check l ~quorum:3 ~correct in
  Alcotest.(check bool) "progress rule fires" true
    (List.exists
       (fun (p : L.problem) -> p.L.invariant = "instance-change-progress")
       problems);
  (* Everyone completes: clean again. *)
  List.iter (fun n -> change n 0) correct;
  Alcotest.(check int) "all completed clean" 0
    (List.length (L.check l ~quorum:3 ~correct));
  (* One node completes a later change alone: completion rule fires. *)
  change 0 1;
  let problems = L.check l ~quorum:3 ~correct in
  Alcotest.(check bool) "completion rule fires" true
    (List.exists
       (fun (p : L.problem) -> p.L.invariant = "instance-change-completion")
       problems);
  (* A crashed node is exempt: only correct nodes are quantified. *)
  List.iter (fun n -> change n 1) [ 1; 2 ];
  let problems = L.check l ~quorum:3 ~correct:[ 0; 1; 2 ] in
  Alcotest.(check int) "laggard 3 excluded when crashed" 0
    (List.length problems)

let suites =
  [
    ( "mc.world",
      [
        Alcotest.test_case "replay reproduces fingerprints" `Slow
          test_world_replay_fingerprint;
        Alcotest.test_case "enabled frontier is channel-FIFO" `Quick
          test_world_enabled_channel_fifo;
      ] );
    ( "mc.search",
      [
        Alcotest.test_case "clean and deterministic" `Slow
          test_search_clean_and_deterministic;
        Alcotest.test_case "POR smaller and sound" `Slow
          test_search_por_sound_and_smaller;
        Alcotest.test_case "fault placements" `Quick test_placements;
      ] );
    ( "mc.cex",
      [
        Alcotest.test_case "mutation found, .scn reproduces" `Slow
          test_mutation_found_and_cex_reproduces;
        Alcotest.test_case "liveness monitor rules" `Quick
          test_liveness_monitor_rules;
      ] );
  ]
