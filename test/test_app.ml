(* Tests for replicated applications. *)

open Bftapp

let test_kv_basic () =
  let kv = Kvstore.create () in
  Alcotest.(check string) "miss" "" (Kvstore.apply kv (Kvstore.Get "a"));
  Alcotest.(check string) "put" "ok" (Kvstore.apply kv (Kvstore.Put ("a", "1")));
  Alcotest.(check string) "hit" "1" (Kvstore.apply kv (Kvstore.Get "a"));
  Alcotest.(check string) "delete" "ok" (Kvstore.apply kv (Kvstore.Delete "a"));
  Alcotest.(check string) "gone" "" (Kvstore.apply kv (Kvstore.Get "a"));
  Alcotest.(check int) "size" 0 (Kvstore.size kv)

let test_kv_cas () =
  let kv = Kvstore.create () in
  ignore (Kvstore.apply kv (Kvstore.Put ("k", "old")));
  Alcotest.(check string) "cas success" "ok"
    (Kvstore.apply kv (Kvstore.Cas ("k", "old", "new")));
  Alcotest.(check string) "cas failure reports current" "fail:new"
    (Kvstore.apply kv (Kvstore.Cas ("k", "old", "x")));
  Alcotest.(check string) "value" "new" (Kvstore.apply kv (Kvstore.Get "k"))

let test_kv_codec_roundtrip () =
  let ops =
    [
      Kvstore.Get "key";
      Kvstore.Put ("key", "value");
      Kvstore.Delete "";
      Kvstore.Cas ("k", "", "v");
    ]
  in
  List.iter
    (fun op ->
      match Kvstore.decode_op (Kvstore.encode_op op) with
      | Some decoded -> Alcotest.(check bool) "roundtrip" true (decoded = op)
      | None -> Alcotest.fail "decode failed")
    ops

let test_kv_decode_garbage () =
  Alcotest.(check bool) "garbage rejected" true (Kvstore.decode_op "\xFFgarbage" = None);
  Alcotest.(check bool) "empty rejected" true (Kvstore.decode_op "" = None);
  (* Trailing bytes after a valid op are rejected too. *)
  let valid = Kvstore.encode_op (Kvstore.Get "k") in
  Alcotest.(check bool) "trailing rejected" true (Kvstore.decode_op (valid ^ "x") = None)

let test_kv_service_determinism () =
  (* Two replicas fed the same operations have the same digest;
     diverging operations give different digests. *)
  let a = Kvstore.create () and b = Kvstore.create () in
  let sa = Kvstore.service a and sb = Kvstore.service b in
  let ops = List.init 50 (fun i -> Kvstore.encode_op (Kvstore.Put (Printf.sprintf "k%d" (i mod 7), string_of_int i))) in
  List.iter (fun op ->
      Alcotest.(check string) "same result" (sa.Service.execute op) (sb.Service.execute op))
    ops;
  Alcotest.(check string) "same digest" (sa.Service.state_digest ()) (sb.Service.state_digest ());
  ignore (sa.Service.execute (Kvstore.encode_op (Kvstore.Put ("k0", "divergent"))));
  Alcotest.(check bool) "diverged digest" true
    (sa.Service.state_digest () <> sb.Service.state_digest ())

let test_kv_service_decode_error () =
  let kv = Kvstore.create () in
  let s = Kvstore.service kv in
  Alcotest.(check string) "decode error" "error:decode" (s.Service.execute "junk\x00");
  Alcotest.(check int) "state unchanged" 0 (Kvstore.size kv)

let test_counter () =
  let c = Counter.create () in
  let s = Counter.service c in
  Alcotest.(check string) "inc" "1" (s.Service.execute "inc");
  Alcotest.(check string) "inc" "2" (s.Service.execute "inc");
  Alcotest.(check string) "get" "2" (s.Service.execute "get");
  Alcotest.(check string) "error" "error" (s.Service.execute "wat");
  Alcotest.(check int) "value" 2 (Counter.value c)

let test_null_service_costs () =
  let s = Null_service.create ~exec_cost:(Dessim.Time.us 100) () in
  Alcotest.(check int) "normal op costs 0.1ms"
    (Dessim.Time.us 100)
    (s.Service.exec_cost (Null_service.normal_op ~payload:"x"));
  Alcotest.(check int) "heavy op costs 1ms (paper's Prime attack)"
    (Dessim.Time.ms 1)
    (s.Service.exec_cost (Null_service.heavy_op ~payload:"x"));
  Alcotest.(check string) "executes" "ok" (s.Service.execute "x")

let prop_kv_roundtrip =
  QCheck.Test.make ~name:"kv op codec roundtrip"
    QCheck.(
      oneof
        [
          map (fun k -> Kvstore.Get k) string;
          map (fun (k, v) -> Kvstore.Put (k, v)) (pair string string);
          map (fun k -> Kvstore.Delete k) string;
          map (fun (k, e, v) -> Kvstore.Cas (k, e, v)) (triple string string string);
        ])
    (fun op -> Kvstore.decode_op (Kvstore.encode_op op) = Some op)

let prop_kv_put_get =
  QCheck.Test.make ~name:"kv put then get returns value"
    QCheck.(pair string string)
    (fun (k, v) ->
      let kv = Kvstore.create () in
      ignore (Kvstore.apply kv (Kvstore.Put (k, v)));
      Kvstore.apply kv (Kvstore.Get k) = v)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "app.kvstore",
      [
        Alcotest.test_case "basic operations" `Quick test_kv_basic;
        Alcotest.test_case "compare-and-swap" `Quick test_kv_cas;
        Alcotest.test_case "codec roundtrip" `Quick test_kv_codec_roundtrip;
        Alcotest.test_case "garbage rejected" `Quick test_kv_decode_garbage;
        Alcotest.test_case "deterministic replicas" `Quick test_kv_service_determinism;
        Alcotest.test_case "decode error safe" `Quick test_kv_service_decode_error;
      ]
      @ qsuite [ prop_kv_roundtrip; prop_kv_put_get ] );
    ( "app.misc",
      [
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "null service costs" `Quick test_null_service_costs;
      ] );
  ]
