(* Tests for the wire codec and the simulated cluster network. *)

open Dessim
open Bftcrypto
open Bftnet

(* ------------------------------------------------------------------ *)
(* Wire                                                               *)
(* ------------------------------------------------------------------ *)

let test_wire_ints () =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w 0xAB;
  Wire.Writer.u16 w 0xBEEF;
  Wire.Writer.u32 w 0xDEADBEEF;
  Wire.Writer.u64 w 0x1122334455667788;
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  Alcotest.(check int) "u8" 0xAB (Wire.Reader.u8 r);
  Alcotest.(check int) "u16" 0xBEEF (Wire.Reader.u16 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Wire.Reader.u32 r);
  Alcotest.(check int) "u64" 0x1122334455667788 (Wire.Reader.u64 r);
  Alcotest.(check bool) "at end" true (Wire.Reader.at_end r)

let test_wire_varint_sizes () =
  let encoded v =
    let w = Wire.Writer.create () in
    Wire.Writer.varint w v;
    Wire.Writer.size w
  in
  Alcotest.(check int) "small" 1 (encoded 0);
  Alcotest.(check int) "127" 1 (encoded 127);
  Alcotest.(check int) "128" 2 (encoded 128);
  Alcotest.(check int) "16383" 2 (encoded 16_383);
  Alcotest.(check int) "16384" 3 (encoded 16_384)

let test_wire_string_list () =
  let w = Wire.Writer.create () in
  Wire.Writer.string w "hello";
  Wire.Writer.list w (Wire.Writer.string w) [ "a"; "bc"; "" ];
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  Alcotest.(check string) "string" "hello" (Wire.Reader.string r);
  Alcotest.(check (list string)) "list" [ "a"; "bc"; "" ]
    (Wire.Reader.list r Wire.Reader.string);
  Alcotest.(check bool) "at end" true (Wire.Reader.at_end r)

let test_wire_truncated () =
  let r = Wire.Reader.of_string "\x05ab" in
  Alcotest.check_raises "truncated string" Wire.Reader.Truncated (fun () ->
      ignore (Wire.Reader.string r))

let prop_wire_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" QCheck.(int_bound 1_000_000_000)
    (fun v ->
      let w = Wire.Writer.create () in
      Wire.Writer.varint w v;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      Wire.Reader.varint r = v && Wire.Reader.at_end r)

let prop_wire_string_roundtrip =
  QCheck.Test.make ~name:"string list roundtrip" QCheck.(small_list string)
    (fun xs ->
      let w = Wire.Writer.create () in
      Wire.Writer.list w (Wire.Writer.string w) xs;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      Wire.Reader.list r Wire.Reader.string = xs && Wire.Reader.at_end r)

(* ------------------------------------------------------------------ *)
(* Network                                                            *)
(* ------------------------------------------------------------------ *)

let make_net ?(transport = Network.Tcp) ?(jitter = Time.zero) ?(nodes = 4) engine =
  let cfg = { (Network.default_config ~nodes) with transport; jitter } in
  Network.create engine cfg

let test_net_basic_delivery () =
  let e = Engine.create () in
  let net = make_net e in
  let received = ref [] in
  Network.register_node net 1 (fun d -> received := d :: !received);
  Network.send net ~src:(Principal.node 0) ~dst:(Principal.node 1) ~size:100 "hi";
  Engine.run e;
  match !received with
  | [ d ] ->
    Alcotest.(check string) "payload" "hi" d.Network.payload;
    Alcotest.(check bool) "delivered after sending" true
      (d.Network.delivered_at > d.Network.sent_at);
    Alcotest.(check int) "stats" 1 (Network.messages_delivered net)
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_net_latency_components () =
  (* TCP adds tcp_overhead; UDP doesn't. With zero jitter the gap is
     exactly the configured overhead. *)
  let one_way transport =
    let e = Engine.create () in
    let net = make_net ~transport e in
    let arrival = ref Time.zero in
    Network.register_node net 1 (fun _ -> arrival := Engine.now e);
    Network.send net ~src:(Principal.node 0) ~dst:(Principal.node 1) ~size:8 "m";
    Engine.run e;
    !arrival
  in
  let tcp = one_way Network.Tcp and udp = one_way Network.Udp in
  Alcotest.(check int) "tcp = udp + overhead" (Time.us 120) (Time.sub tcp udp)

let test_net_fifo_per_link () =
  (* TCP provides a FIFO channel per connection: even with jitter,
     messages of one (src, dst) pair are delivered in send order. *)
  let e = Engine.create () in
  let net = make_net ~transport:Network.Tcp ~jitter:(Time.us 200) e in
  let order = ref [] in
  Network.register_node net 1 (fun d -> order := d.Network.payload :: !order);
  for i = 1 to 50 do
    Network.send net ~src:(Principal.node 0) ~dst:(Principal.node 1) ~size:10 i
  done;
  Engine.run e;
  Alcotest.(check (list int)) "TCP preserves send order"
    (List.init 50 (fun i -> i + 1))
    (List.rev !order)

let test_net_udp_can_reorder () =
  (* UDP keeps the raw jittered delays: with jitter far above the
     serialization gap, some inversion must appear. *)
  let e = Engine.create () in
  let net = make_net ~transport:Network.Udp ~jitter:(Time.us 200) e in
  let order = ref [] in
  Network.register_node net 1 (fun d -> order := d.Network.payload :: !order);
  for i = 1 to 50 do
    Network.send net ~src:(Principal.node 0) ~dst:(Principal.node 1) ~size:10 i
  done;
  Engine.run e;
  let arrived = List.rev !order in
  Alcotest.(check int) "all delivered" 50 (List.length arrived);
  Alcotest.(check bool) "some reordering under heavy jitter" true
    (arrived <> List.init 50 (fun i -> i + 1))

let test_net_tcp_fifo_independent_pairs () =
  (* The FIFO clamp is per connection: a slow pair must not delay an
     unrelated pair. *)
  let e = Engine.create () in
  let net = make_net ~transport:Network.Tcp ~jitter:Time.zero e in
  let t02 = ref Time.zero in
  Network.register_node net 1 (fun _ -> ());
  Network.register_node net 2 (fun _ -> t02 := Engine.now e);
  (* A huge message 0 -> 1 keeps that connection busy... *)
  Network.send net ~src:(Principal.node 0) ~dst:(Principal.node 1) ~size:5_000_000 "big";
  (* ...but 0 -> 2 flows immediately (separate NIC, separate pair). *)
  Network.send net ~src:(Principal.node 0) ~dst:(Principal.node 2) ~size:8 "small";
  Engine.run e;
  Alcotest.(check bool) "unrelated pair unaffected" true (!t02 < Time.ms 1)

let test_net_bandwidth_serialization () =
  (* Two 1 MB messages over a 1 Gbps NIC serialize back-to-back: the
     second arrives ~8 ms after the first. *)
  let e = Engine.create () in
  let net = make_net ~jitter:Time.zero e in
  let arrivals = ref [] in
  Network.register_node net 1 (fun _ -> arrivals := Engine.now e :: !arrivals);
  let mb = 1_000_000 in
  Network.send net ~src:(Principal.node 0) ~dst:(Principal.node 1) ~size:mb "a";
  Network.send net ~src:(Principal.node 0) ~dst:(Principal.node 1) ~size:mb "b";
  Engine.run e;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
    let gap = Time.sub t2 t1 in
    Alcotest.(check bool)
      (Printf.sprintf "gap %s close to 8ms" (Time.to_string gap))
      true
      (gap > Time.ms 7 && gap < Time.ms 10)
  | _ -> Alcotest.fail "expected two deliveries"

let test_net_separate_nics_isolate_peers () =
  (* Flooding from node 2 must not delay traffic from node 0: they use
     different NICs at the receiver (the paper's NIC separation). *)
  let e = Engine.create () in
  let net = make_net ~jitter:Time.zero e in
  let arrival = ref Time.zero in
  Network.register_node net 1 (fun d ->
      if Principal.equal d.Network.src (Principal.node 0) then arrival := Engine.now e);
  (* 100 x 1MB flood messages from node 2. *)
  for _ = 1 to 100 do
    Network.send net ~src:(Principal.node 2) ~dst:(Principal.node 1) ~size:1_000_000 "flood"
  done;
  Network.send net ~src:(Principal.node 0) ~dst:(Principal.node 1) ~size:8 "legit";
  Engine.run e;
  Alcotest.(check bool) "legit traffic unaffected" true (!arrival < Time.ms 1)

let test_net_flood_delays_same_peer () =
  (* The same flood does delay messages that share the flooded NIC. *)
  let e = Engine.create () in
  let net = make_net ~jitter:Time.zero e in
  let arrival = ref Time.zero in
  let seen = ref 0 in
  Network.register_node net 1 (fun d ->
      if d.Network.payload = "legit" then arrival := Engine.now e else incr seen);
  for _ = 1 to 100 do
    Network.send net ~src:(Principal.node 2) ~dst:(Principal.node 1) ~size:1_000_000 "flood"
  done;
  Network.send net ~src:(Principal.node 2) ~dst:(Principal.node 1) ~size:8 "legit";
  Engine.run e;
  Alcotest.(check bool) "delayed behind flood" true (!arrival > Time.ms 100)

let test_net_close_nic_drops () =
  let e = Engine.create () in
  let net = make_net ~jitter:Time.zero e in
  let received = ref 0 in
  Network.register_node net 1 (fun _ -> incr received);
  Network.close_nic net ~node:1 ~peer:(Principal.node 2) ~for_:(Time.ms 10);
  Alcotest.(check bool) "closed" true
    (Network.nic_closed net ~node:1 ~peer:(Principal.node 2));
  Network.send net ~src:(Principal.node 2) ~dst:(Principal.node 1) ~size:8 "dropped";
  Network.send net ~src:(Principal.node 0) ~dst:(Principal.node 1) ~size:8 "kept";
  Engine.run e;
  Alcotest.(check int) "only open NIC delivers" 1 !received;
  Alcotest.(check int) "drop counted" 1 (Network.messages_dropped net);
  (* After the window the NIC reopens. *)
  Engine.run ~until:(Time.ms 20) e;
  Alcotest.(check bool) "reopened" false
    (Network.nic_closed net ~node:1 ~peer:(Principal.node 2));
  Network.send net ~src:(Principal.node 2) ~dst:(Principal.node 1) ~size:8 "late";
  Engine.run e;
  Alcotest.(check int) "delivers after reopen" 2 !received

(* close_nic re-open semantics: the NIC is closed strictly before the
   expiry instant and open exactly at it. *)
let prop_close_nic_reopens_at_expiry =
  QCheck.Test.make ~name:"close_nic reopens exactly at expiry"
    QCheck.(int_range 2 5_000_000)
    (fun d ->
      let e = Engine.create () in
      let net = make_net ~jitter:Time.zero e in
      let peer = Principal.node 2 in
      Network.close_nic net ~node:1 ~peer ~for_:(Time.ns d);
      let closed_before = ref false and open_at = ref false in
      ignore
        (Engine.at e (Time.ns (d - 1)) (fun () ->
             closed_before := Network.nic_closed net ~node:1 ~peer));
      ignore
        (Engine.at e (Time.ns d) (fun () ->
             open_at := not (Network.nic_closed net ~node:1 ~peer)));
      Engine.run e;
      !closed_before && !open_at)

(* Overlapping closures extend to the latest expiry; a shorter second
   closure never truncates the first. *)
let prop_close_nic_overlap_extends =
  QCheck.Test.make ~name:"overlapping close_nic extends, never truncates"
    QCheck.(triple (int_range 2 1_000_000) (int_range 1 1_000_000) (int_range 1 1_000_000))
    (fun (d1, a, d2) ->
      let a = Stdlib.min a (d1 - 1) in
      let e = Engine.create () in
      let net = make_net ~jitter:Time.zero e in
      let peer = Principal.node 2 in
      Network.close_nic net ~node:1 ~peer ~for_:(Time.ns d1);
      (* Second closure issued at [a], while the first is still live. *)
      ignore
        (Engine.at e (Time.ns a) (fun () ->
             Network.close_nic net ~node:1 ~peer ~for_:(Time.ns d2)));
      let expiry = Stdlib.max d1 (a + d2) in
      let closed_before = ref false and open_at = ref false in
      ignore
        (Engine.at e (Time.ns (expiry - 1)) (fun () ->
             closed_before := Network.nic_closed net ~node:1 ~peer));
      ignore
        (Engine.at e (Time.ns expiry) (fun () ->
             open_at := not (Network.nic_closed net ~node:1 ~peer)));
      Engine.run e;
      !closed_before && !open_at)

let test_net_clients () =
  let e = Engine.create () in
  let net = make_net e in
  let node_got = ref None and client_got = ref None in
  Network.register_node net 0 (fun d -> node_got := Some d.Network.payload);
  Network.register_client net 7 (fun d -> client_got := Some d.Network.payload);
  Network.send net ~src:(Principal.client 7) ~dst:(Principal.node 0) ~size:10 "request";
  Network.send net ~src:(Principal.node 0) ~dst:(Principal.client 7) ~size:10 "reply";
  Engine.run e;
  Alcotest.(check (option string)) "node received" (Some "request") !node_got;
  Alcotest.(check (option string)) "client received" (Some "reply") !client_got

let test_net_unregistered_dropped () =
  let e = Engine.create () in
  let net = make_net e in
  Network.send net ~src:(Principal.node 0) ~dst:(Principal.node 3) ~size:8 "void";
  Engine.run e;
  Alcotest.(check int) "dropped" 1 (Network.messages_dropped net);
  Alcotest.(check int) "none delivered" 0 (Network.messages_delivered net)

let test_net_client_nic_shared () =
  (* All clients share one ingress NIC at the node: heavy client
     traffic queues behind itself. *)
  let e = Engine.create () in
  let net = make_net ~jitter:Time.zero e in
  let last = ref Time.zero in
  Network.register_node net 0 (fun _ -> last := Engine.now e);
  for c = 0 to 9 do
    Network.send net ~src:(Principal.client c) ~dst:(Principal.node 0) ~size:1_000_000 "big"
  done;
  Engine.run e;
  (* 10 MB over a shared 1 Gbps ingress: at least 80 ms to drain. *)
  Alcotest.(check bool) "shared ingress is serialized" true (!last > Time.ms 80)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "net.wire",
      [
        Alcotest.test_case "fixed-width ints" `Quick test_wire_ints;
        Alcotest.test_case "varint sizes" `Quick test_wire_varint_sizes;
        Alcotest.test_case "strings and lists" `Quick test_wire_string_list;
        Alcotest.test_case "truncation" `Quick test_wire_truncated;
      ]
      @ qsuite [ prop_wire_varint_roundtrip; prop_wire_string_roundtrip ] );
    ( "net.network",
      [
        Alcotest.test_case "basic delivery" `Quick test_net_basic_delivery;
        Alcotest.test_case "tcp vs udp latency" `Quick test_net_latency_components;
        Alcotest.test_case "TCP FIFO per connection" `Quick test_net_fifo_per_link;
        Alcotest.test_case "UDP may reorder" `Quick test_net_udp_can_reorder;
        Alcotest.test_case "FIFO clamp is per pair" `Quick test_net_tcp_fifo_independent_pairs;
        Alcotest.test_case "bandwidth serialization" `Quick test_net_bandwidth_serialization;
        Alcotest.test_case "NIC separation isolates peers" `Quick
          test_net_separate_nics_isolate_peers;
        Alcotest.test_case "flood delays its own NIC" `Quick test_net_flood_delays_same_peer;
        Alcotest.test_case "close NIC drops flooder" `Quick test_net_close_nic_drops;
        Alcotest.test_case "client endpoints" `Quick test_net_clients;
        Alcotest.test_case "unregistered dropped" `Quick test_net_unregistered_dropped;
        Alcotest.test_case "client NIC is shared" `Quick test_net_client_nic_shared;
      ]
      @ qsuite [ prop_close_nic_reopens_at_expiry; prop_close_nic_overlap_extends ] );
  ]
