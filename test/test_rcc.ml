(* Tests for the concurrent (bftrcc) ordering mode: the client
   partitioner, the deterministic merge sequencer, and the
   rbft-concurrent cluster pipeline end to end. *)

open Dessim

(* ------------------------------------------------------------------ *)
(* Partitioner                                                        *)
(* ------------------------------------------------------------------ *)

let test_partitioner_range_and_stability () =
  for instances = 1 to 5 do
    let p = Bftrcc.Partitioner.create ~instances in
    for client = -3 to 500 do
      let o = Bftrcc.Partitioner.owner p ~client in
      Alcotest.(check bool)
        (Printf.sprintf "owner in range (i=%d c=%d)" instances client)
        true
        (o >= 0 && o < instances);
      Alcotest.(check int) "stable" o (Bftrcc.Partitioner.owner p ~client)
    done
  done

let test_partitioner_single_instance () =
  let p = Bftrcc.Partitioner.create ~instances:1 in
  for client = 0 to 50 do
    Alcotest.(check int) "all on 0" 0 (Bftrcc.Partitioner.owner p ~client)
  done

(* Balance under a Zipf-skewed load: client c (1-based rank) issues a
   volume proportional to 1/c. The partitioner only hashes ids, so the
   property is statistical — with a few hundred clients no partition
   may end up starved or hoarding the load. *)
let prop_partitioner_zipf_balance =
  QCheck.Test.make ~count:50 ~name:"partitioner balance under Zipf load"
    QCheck.(pair (int_range 2 4) (int_range 100 400))
    (fun (instances, nclients) ->
      let p = Bftrcc.Partitioner.create ~instances in
      let load = Array.make instances 0.0 in
      let total = ref 0.0 in
      for c = 1 to nclients do
        let v = 1.0 /. float_of_int c in
        load.(Bftrcc.Partitioner.owner p ~client:c) <-
          load.(Bftrcc.Partitioner.owner p ~client:c) +. v;
        total := !total +. v
      done;
      let fair = !total /. float_of_int instances in
      Array.for_all (fun l -> l > 0.2 *. fair && l < 2.5 *. fair) load)

(* ------------------------------------------------------------------ *)
(* Sequencer                                                          *)
(* ------------------------------------------------------------------ *)

let collect_sequencer instances =
  let order = ref [] in
  let s =
    Bftrcc.Sequencer.create ~instances ~emit:(fun ~instance ~seq payload ->
        order := (instance, seq, payload) :: !order)
  in
  (s, fun () -> List.rev !order)

let test_sequencer_round_robin () =
  let s, emitted = collect_sequencer 2 in
  (* Instance 1 runs ahead; nothing may be emitted past the round-robin
     frontier until instance 0 catches up. *)
  Bftrcc.Sequencer.push s ~instance:1 ~seq:1 ~now:Time.zero "b1";
  Alcotest.(check int) "held" 0 (List.length (emitted ()));
  Bftrcc.Sequencer.push s ~instance:0 ~seq:1 ~now:Time.zero "a1";
  Alcotest.(check (list (triple int int string)))
    "round 1 in instance order"
    [ (0, 1, "a1"); (1, 1, "b1") ]
    (emitted ());
  Bftrcc.Sequencer.push s ~instance:0 ~seq:2 ~now:Time.zero "a2";
  Bftrcc.Sequencer.push s ~instance:0 ~seq:3 ~now:Time.zero "a3";
  Bftrcc.Sequencer.push s ~instance:1 ~seq:2 ~now:Time.zero "b2";
  Alcotest.(check (list (triple int int string)))
    "lockstep"
    [ (0, 1, "a1"); (1, 1, "b1"); (0, 2, "a2"); (1, 2, "b2"); (0, 3, "a3") ]
    (emitted ());
  let st = Bftrcc.Sequencer.stats s in
  Alcotest.(check int) "merged" 5 st.Bftrcc.Sequencer.merged;
  Alcotest.(check int) "rounds" 2 st.Bftrcc.Sequencer.rounds

let test_sequencer_stall_accounting () =
  let s, _ = collect_sequencer 3 in
  Alcotest.(check bool) "no stall when empty" true
    (Bftrcc.Sequencer.stall s ~now:(Time.ms 5) = None);
  Bftrcc.Sequencer.push s ~instance:2 ~seq:1 ~now:(Time.ms 10) "c1";
  (match Bftrcc.Sequencer.stall s ~now:(Time.ms 250) with
  | Some (inst, age) ->
    Alcotest.(check int) "waiting on instance 0" 0 inst;
    Alcotest.(check int) "age" (Time.ms 240 : Time.t) (age : Time.t)
  | None -> Alcotest.fail "expected a stall");
  Bftrcc.Sequencer.push s ~instance:0 ~seq:1 ~now:(Time.ms 260) "a1";
  (match Bftrcc.Sequencer.stall s ~now:(Time.ms 300) with
  | Some (inst, _) -> Alcotest.(check int) "now waiting on 1" 1 inst
  | None -> Alcotest.fail "still stalled on instance 1");
  Bftrcc.Sequencer.push s ~instance:1 ~seq:1 ~now:(Time.ms 310) "b1";
  Alcotest.(check bool) "drained" true
    (Bftrcc.Sequencer.stall s ~now:(Time.ms 320) = None)

let test_sequencer_gap_accounting () =
  let s, emitted = collect_sequencer 1 in
  Bftrcc.Sequencer.push s ~instance:0 ~seq:1 ~now:Time.zero "a1";
  (* A checkpoint state transfer jumps the per-instance seqno; the
     merge keys on arrival order and just counts the gap. *)
  Bftrcc.Sequencer.push s ~instance:0 ~seq:5 ~now:Time.zero "a5";
  Alcotest.(check int) "both emitted" 2 (List.length (emitted ()));
  Alcotest.(check int) "gap counted" 1
    (Bftrcc.Sequencer.stats s).Bftrcc.Sequencer.gaps

(* Merge determinism: however the per-instance streams interleave on
   arrival (per-instance order is fixed — PBFT delivers in seqno
   order), the emitted global order is identical. *)
let prop_sequencer_merge_deterministic =
  QCheck.Test.make ~count:100
    ~name:"sequencer merge order independent of delivery interleaving"
    QCheck.(triple (int_range 2 4) (int_range 1 20) (int_range 0 10_000))
    (fun (instances, rounds, seed) ->
      (* Streams: instance i delivers batches (i, 1) .. (i, rounds). *)
      let digest_of order =
        String.concat ";"
          (List.map (fun (i, s, _) -> Printf.sprintf "%d.%d" i s) order)
      in
      let reference =
        let s, emitted = collect_sequencer instances in
        for seq = 1 to rounds do
          for i = 0 to instances - 1 do
            Bftrcc.Sequencer.push s ~instance:i ~seq ~now:Time.zero ()
          done
        done;
        digest_of (emitted ())
      in
      let rng = Random.State.make [| seed |] in
      let permuted_ok = ref true in
      for _trial = 1 to 5 do
        let s, emitted = collect_sequencer instances in
        (* Random interleaving that respects per-instance order. *)
        let next = Array.make instances 1 in
        let remaining = ref (instances * rounds) in
        while !remaining > 0 do
          let i = Random.State.int rng instances in
          if next.(i) <= rounds then begin
            Bftrcc.Sequencer.push s ~instance:i ~seq:next.(i) ~now:Time.zero ();
            next.(i) <- next.(i) + 1;
            decr remaining
          end
        done;
        if digest_of (emitted ()) <> reference then permuted_ok := false
      done;
      !permuted_ok)

(* ------------------------------------------------------------------ *)
(* Monitoring normalization                                           *)
(* ------------------------------------------------------------------ *)

let mk_params ?(f = 1) ?(delta = 0.9) () =
  { (Rbft.Params.default ~f) with Rbft.Params.delta }

let test_normalized_light_partition_not_suspicious () =
  (* The master owns a light partition: it orders 10% of the load
     because only 10% was offered to it. Raw rates would scream
     "slow master"; the normalized check must stay calm. *)
  let m = Rbft.Monitoring.create (mk_params ~delta:0.9 ()) in
  Rbft.Monitoring.note_ordered m ~instance:0 ~count:100;
  Rbft.Monitoring.note_ordered m ~instance:1 ~count:900;
  Rbft.Monitoring.note_offered m ~instance:0 ~count:100;
  Rbft.Monitoring.note_offered m ~instance:1 ~count:900;
  let v = Rbft.Monitoring.tick m ~now:(Time.sec 1) in
  Alcotest.(check bool) "not suspicious" false v.Rbft.Monitoring.suspicious;
  Alcotest.(check (float 1e-6)) "master weight" 0.1
    v.Rbft.Monitoring.weights.(0)

let test_normalized_throttling_master_suspicious () =
  (* The master owns half the load but orders a fraction of it while
     the backup keeps up with its own half: normalized ratio collapses
     and the Δ test fires. *)
  let m = Rbft.Monitoring.create (mk_params ~delta:0.9 ()) in
  Rbft.Monitoring.note_ordered m ~instance:0 ~count:100;
  Rbft.Monitoring.note_ordered m ~instance:1 ~count:500;
  Rbft.Monitoring.note_offered m ~instance:0 ~count:500;
  Rbft.Monitoring.note_offered m ~instance:1 ~count:500;
  let v = Rbft.Monitoring.tick m ~now:(Time.sec 1) in
  Alcotest.(check bool) "suspicious" true v.Rbft.Monitoring.suspicious

let test_normalization_identity_without_offered () =
  (* Redundant mode never calls note_offered: uniform weights, raw
     rates, the paper's verdict. *)
  let m = Rbft.Monitoring.create (mk_params ~delta:0.9 ()) in
  Rbft.Monitoring.note_ordered m ~instance:0 ~count:500;
  Rbft.Monitoring.note_ordered m ~instance:1 ~count:1000;
  let v = Rbft.Monitoring.tick m ~now:(Time.sec 1) in
  Alcotest.(check bool) "suspicious on raw rates" true
    v.Rbft.Monitoring.suspicious;
  Alcotest.(check (float 1e-6)) "uniform weight" 0.5
    v.Rbft.Monitoring.weights.(0)

(* ------------------------------------------------------------------ *)
(* Concurrent cluster end to end                                      *)
(* ------------------------------------------------------------------ *)

let conc_params ?(f = 1) ?(delta = 0.9) () =
  {
    (Rbft.Params.default ~f) with
    Rbft.Params.ordering = Rbft.Params.Concurrent;
    delta;
  }

let saturate ?(rate = 800.0) ?(nclients = 4) ?(params = conc_params ()) () =
  let cluster = Rbft.Cluster.create ~clients:nclients ~payload_size:8 params in
  Array.iter (fun c -> Rbft.Client.set_rate c rate) (Rbft.Cluster.clients cluster);
  cluster

let stop_clients cluster =
  Array.iter (fun c -> Rbft.Client.set_rate c 0.0) (Rbft.Cluster.clients cluster)

let test_concurrent_completion_and_agreement () =
  let cluster = saturate () in
  Rbft.Cluster.run_for cluster (Time.sec 1);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 1);
  let sent =
    Array.fold_left
      (fun acc c -> acc + Rbft.Client.sent c)
      0 (Rbft.Cluster.clients cluster)
  in
  Array.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "client %d all completed" (Rbft.Client.id c))
        (Rbft.Client.sent c) (Rbft.Client.completed c))
    (Rbft.Cluster.clients cluster);
  Alcotest.(check int) "all executed once" sent
    (Rbft.Cluster.total_executed cluster);
  Alcotest.(check bool) "agreement" true
    (Rbft.Cluster.agreement_ok cluster ~faulty:[]);
  Alcotest.(check int) "no instance change" 0
    (Rbft.Node.instance_changes (Rbft.Cluster.node cluster 0));
  Array.iter
    (fun node ->
      Alcotest.(check (list int)) "no degraded partitions" []
        (Rbft.Node.degraded_partitions node))
    (Rbft.Cluster.nodes cluster)

let test_concurrent_partitions_share_ordering () =
  (* Each instance orders only its own partition: the per-instance
     ordered counts must all be well below the total (in redundant
     mode every instance orders everything). *)
  let cluster = saturate ~nclients:6 () in
  Rbft.Cluster.run_for cluster (Time.sec 1);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 1);
  let node = Rbft.Cluster.node cluster 0 in
  let total = Rbft.Cluster.total_executed cluster in
  Alcotest.(check bool) "progress" true (total > 1000);
  let instances = Rbft.Params.instances (Rbft.Cluster.params cluster) in
  let sum = ref 0 in
  for i = 0 to instances - 1 do
    let ordered =
      Pbftcore.Replica.ordered_count (Rbft.Node.replica node ~instance:i)
    in
    sum := !sum + ordered;
    Alcotest.(check bool)
      (Printf.sprintf "instance %d orders a strict subset" i)
      true (ordered < total)
  done;
  (* Together (plus no-op heartbeats) they cover the whole load once. *)
  Alcotest.(check bool) "partitions cover the load" true (!sum >= total)

let test_concurrent_empty_partition_progress () =
  (* One busy client: the other partitions stay idle and only keep the
     merge flowing via no-op heartbeats. The busy partition's requests
     must still execute. *)
  let cluster = saturate ~nclients:1 ~rate:500.0 () in
  Rbft.Cluster.run_for cluster (Time.sec 1);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 1);
  let c = Rbft.Cluster.client cluster 0 in
  Alcotest.(check int) "single client fully served" (Rbft.Client.sent c)
    (Rbft.Client.completed c);
  Alcotest.(check bool) "agreement" true
    (Rbft.Cluster.agreement_ok cluster ~faulty:[])

let test_concurrent_f2_scales () =
  let cluster = saturate ~nclients:6 ~params:(conc_params ~f:2 ()) () in
  Rbft.Cluster.run_for cluster (Time.sec 1);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 1);
  Alcotest.(check bool) "progress" true
    (Rbft.Cluster.total_executed cluster > 1000);
  Alcotest.(check bool) "agreement" true
    (Rbft.Cluster.agreement_ok cluster ~faulty:[])

let auditor_invariants a =
  List.map
    (fun v -> v.Bftaudit.Auditor.invariant)
    (Bftaudit.Auditor.violations a)

let test_concurrent_worst1_resisted () =
  (* Worst-attack-1 against the concurrent mode, audited and at
     saturation: the clients break their authenticator entry for node
     0 (primary of instance 0), the faulty node floods it and its
     instance-0 replica goes silent. Eligibility for ordering always
     requires remote PROPAGATE corroboration, so even the fault-free
     primary dispatches at propagate speed and the starved one loses
     only the difference: degradation stays inside the Δ envelope.
     The normalized check must not demote a correct primary, and the
     safety auditor must stay clean. *)
  Bftaudit.Auditor.reset_declared ();
  let a = Bftaudit.Auditor.attach ~raise_on_violation:false ~n:4 ~f:1 () in
  let cluster =
    Rbft.Cluster.create ~clients:6 ~payload_size:8 (conc_params ~delta:0.9 ())
  in
  Array.iter
    (fun c -> Rbft.Client.set_closed_loop c ~outstanding:48)
    (Rbft.Cluster.clients cluster);
  Rbft.Attacks.worst_attack_1 cluster;
  Rbft.Cluster.run_for cluster (Time.sec 2);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 1);
  Bftaudit.Auditor.detach a;
  Bftaudit.Auditor.reset_declared ();
  Alcotest.(check (list string)) "no safety violations" []
    (auditor_invariants a);
  Alcotest.(check int) "attack resisted: no instance change" 0
    (Rbft.Node.instance_changes (Rbft.Cluster.node cluster 0));
  Alcotest.(check bool) "progress through the attack" true
    (Rbft.Cluster.total_executed cluster > 20_000);
  Alcotest.(check bool) "agreement among correct nodes" true
    (Rbft.Cluster.agreement_ok cluster ~faulty:[ 3 ])

let test_concurrent_worst2_normalized_delta_demotes () =
  (* Worst-attack-2: the faulty node IS the master primary and
     throttles its pre-prepares down to (Δ + margin) × the mean RAW
     backup rate — the envelope that keeps it in office in redundant
     mode, where every instance sees the same load. Under partitioned
     ordering with a skewed load that envelope is the wrong model: the
     master owns the heavy partition, so capping at the light
     partition's raw rate is a drastic throttle, and the
     weight-normalized Δ check sees straight through it. The demotion
     must fire, the degrade path must keep the backlog executing, and
     the auditor must stay clean. *)
  Bftaudit.Auditor.reset_declared ();
  let a = Bftaudit.Auditor.attach ~raise_on_violation:false ~n:4 ~f:1 () in
  let params = conc_params ~delta:0.9 () in
  let cluster = Rbft.Cluster.create ~clients:6 ~payload_size:8 params in
  let part =
    Bftrcc.Partitioner.create ~instances:(Rbft.Params.instances params)
  in
  (* Skew the offered load: the master's partition carries 4× the
     per-client rate of the backup's. *)
  Array.iter
    (fun c ->
      let owner = Bftrcc.Partitioner.owner part ~client:(Rbft.Client.id c) in
      Rbft.Client.set_rate c (if owner = 0 then 4000.0 else 1000.0))
    (Rbft.Cluster.clients cluster);
  Rbft.Attacks.worst_attack_2 cluster;
  Rbft.Cluster.run_for cluster (Time.sec 3);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 2);
  Bftaudit.Auditor.detach a;
  Bftaudit.Auditor.reset_declared ();
  Alcotest.(check (list string)) "no safety violations" []
    (auditor_invariants a);
  Alcotest.(check bool) "attacked partition's master demoted" true
    (Rbft.Node.instance_changes (Rbft.Cluster.node cluster 1) >= 1);
  let r0 = Rbft.Node.replica (Rbft.Cluster.node cluster 1) ~instance:0 in
  Alcotest.(check bool) "primary rotated off the throttling node" true
    (Pbftcore.Replica.current_primary r0 <> 0);
  Alcotest.(check bool) "degrade path kept requests executing" true
    (Rbft.Cluster.total_executed cluster > 20_000);
  Alcotest.(check bool) "agreement among correct nodes" true
    (Rbft.Cluster.agreement_ok cluster ~faulty:[ 0 ])

let test_concurrent_stall_change_on_crashed_owner () =
  (* The primary of instance 1 (node 1) dies silently: partition 1
     stops committing, which the Δ rate comparison cannot see (no
     rates to compare) — the merge stalls instead, the stall-triggered
     instance change fires, and the degrade path re-routes partition
     1's requests through the other primaries. *)
  let params = conc_params () in
  let cluster = saturate ~nclients:4 ~rate:400.0 ~params () in
  let dead = Rbft.Cluster.node cluster 1 in
  let faults = Rbft.Node.faults dead in
  faults.Rbft.Node.drop_client_requests <- true;
  faults.Rbft.Node.no_propagate <- true;
  for i = 0 to Rbft.Params.instances params - 1 do
    (Pbftcore.Replica.adversary (Rbft.Node.replica dead ~instance:i))
      .Pbftcore.Replica.silent <- true
  done;
  Rbft.Cluster.run_for cluster (Time.sec 3);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 2);
  Alcotest.(check bool) "stall-triggered instance change" true
    (Rbft.Node.instance_changes (Rbft.Cluster.node cluster 0) >= 1);
  Alcotest.(check bool) "requests keep executing" true
    (Rbft.Cluster.total_executed cluster > 500);
  Alcotest.(check bool) "agreement among live nodes" true
    (Rbft.Cluster.agreement_ok cluster ~faulty:[ 1 ])

let test_concurrent_matches_redundant_safety () =
  (* Same seed, same load, both modes: the concurrent mode must serve
     every request exactly once, like the redundant baseline. *)
  let run params =
    let cluster = Rbft.Cluster.create ~seed:7L ~clients:3 params in
    Array.iter
      (fun c -> Rbft.Client.set_rate c 300.0)
      (Rbft.Cluster.clients cluster);
    Rbft.Cluster.run_for cluster (Time.sec 1);
    stop_clients cluster;
    Rbft.Cluster.run_for cluster (Time.sec 1);
    let sent =
      Array.fold_left
        (fun acc c -> acc + Rbft.Client.sent c)
        0 (Rbft.Cluster.clients cluster)
    in
    (sent, Rbft.Cluster.total_executed cluster,
     Rbft.Cluster.agreement_ok cluster ~faulty:[])
  in
  let rs, rx, rok = run (mk_params ()) in
  let cs, cx, cok = run (conc_params ()) in
  Alcotest.(check int) "redundant executes all" rs rx;
  Alcotest.(check int) "concurrent executes all" cs cx;
  Alcotest.(check bool) "redundant agreement" true rok;
  Alcotest.(check bool) "concurrent agreement" true cok

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "rcc.partitioner",
      [
        Alcotest.test_case "range and stability" `Quick
          test_partitioner_range_and_stability;
        Alcotest.test_case "single instance" `Quick
          test_partitioner_single_instance;
      ]
      @ qsuite [ prop_partitioner_zipf_balance ] );
    ( "rcc.sequencer",
      [
        Alcotest.test_case "round robin" `Quick test_sequencer_round_robin;
        Alcotest.test_case "stall accounting" `Quick
          test_sequencer_stall_accounting;
        Alcotest.test_case "gap accounting" `Quick
          test_sequencer_gap_accounting;
      ]
      @ qsuite [ prop_sequencer_merge_deterministic ] );
    ( "rcc.monitoring",
      [
        Alcotest.test_case "light partition not suspicious" `Quick
          test_normalized_light_partition_not_suspicious;
        Alcotest.test_case "throttling master suspicious" `Quick
          test_normalized_throttling_master_suspicious;
        Alcotest.test_case "identity without offered" `Quick
          test_normalization_identity_without_offered;
      ] );
    ( "rcc.cluster",
      [
        Alcotest.test_case "completion and agreement" `Quick
          test_concurrent_completion_and_agreement;
        Alcotest.test_case "partitions share ordering" `Quick
          test_concurrent_partitions_share_ordering;
        Alcotest.test_case "empty partition progress" `Quick
          test_concurrent_empty_partition_progress;
        Alcotest.test_case "f=2 scales" `Quick test_concurrent_f2_scales;
        Alcotest.test_case "worst1 resisted" `Slow
          test_concurrent_worst1_resisted;
        Alcotest.test_case "worst2 demoted by normalized delta" `Slow
          test_concurrent_worst2_normalized_delta_demotes;
        Alcotest.test_case "stall change on crashed owner" `Slow
          test_concurrent_stall_change_on_crashed_owner;
        Alcotest.test_case "matches redundant safety" `Quick
          test_concurrent_matches_redundant_safety;
      ] );
  ]
