(* Tests for the three baseline protocols (Prime, Aardvark, Spinning)
   and the workload generator. *)

open Dessim

(* ------------------------------------------------------------------ *)
(* Aardvark policy                                                    *)
(* ------------------------------------------------------------------ *)

let policy_cfg =
  {
    (Aardvark.Policy.default_config ~n:4) with
    Aardvark.Policy.grace = Time.sec 1;
    view_warmup = Time.ms 200;
  }

let test_policy_bootstrap_and_ratchet () =
  let p = Aardvark.Policy.create policy_cfg in
  Aardvark.Policy.on_view_start p ~now:Time.zero;
  (* Healthy primary at 1000 req/s for a while. *)
  let now = ref Time.zero in
  let tick rate =
    now := Time.add !now (Time.ms 100);
    Aardvark.Policy.note_ordered p ~count:(rate / 10);
    Aardvark.Policy.tick p ~now:!now ~pending:5
  in
  for _ = 1 to 10 do
    Alcotest.(check bool) "healthy" true (tick 1000 = Aardvark.Policy.Ok)
  done;
  let required_after_grace = Aardvark.Policy.required_rate p in
  Alcotest.(check bool) "bootstrap anchored near 900" true
    (required_after_grace > 800.0 && required_after_grace < 1000.0);
  (* After the grace period the requirement ratchets up and eventually
     exceeds what the primary delivers. *)
  let demanded = ref false in
  for _ = 1 to 200 do
    if tick 1000 = Aardvark.Policy.Demand_view_change then demanded := true
  done;
  Alcotest.(check bool) "ratchet eventually demands a view change" true !demanded

let test_policy_heartbeat () =
  let p = Aardvark.Policy.create policy_cfg in
  Aardvark.Policy.on_view_start p ~now:Time.zero;
  (* Dead primary with pending requests: the heartbeat fires after the
     warmup and three consecutive silent windows. *)
  let v1 = Aardvark.Policy.tick p ~now:(Time.ms 100) ~pending:3 in
  Alcotest.(check bool) "warming up" true (v1 = Aardvark.Policy.Ok);
  let v2 = Aardvark.Policy.tick p ~now:(Time.ms 300) ~pending:3 in
  let v3 = Aardvark.Policy.tick p ~now:(Time.ms 400) ~pending:3 in
  Alcotest.(check bool) "needs several silent windows" true
    (v2 = Aardvark.Policy.Ok || v3 = Aardvark.Policy.Demand_view_change);
  Alcotest.(check bool) "heartbeat expired" true
    (v3 = Aardvark.Policy.Demand_view_change);
  (* Progress clears the counter. *)
  Aardvark.Policy.on_view_start p ~now:(Time.ms 500);
  Aardvark.Policy.note_ordered p ~count:50;
  let v4 = Aardvark.Policy.tick p ~now:(Time.ms 900) ~pending:3 in
  Alcotest.(check bool) "progress resets heartbeat" true (v4 = Aardvark.Policy.Ok)

let test_policy_history_sets_requirement () =
  let p = Aardvark.Policy.create policy_cfg in
  Aardvark.Policy.on_view_start p ~now:Time.zero;
  Aardvark.Policy.note_ordered p ~count:2000;
  (* View ran 1 s at 2000 req/s; the next view must sustain 90 %. *)
  Aardvark.Policy.on_view_start p ~now:(Time.sec 1);
  Alcotest.(check (float 1.0)) "required = 0.9 * best" 1800.0
    (Aardvark.Policy.required_rate p)

(* ------------------------------------------------------------------ *)
(* Aardvark end-to-end                                                *)
(* ------------------------------------------------------------------ *)

let quick_aardvark_cfg =
  let f = 1 in
  {
    (Aardvark.Node.default_config ~f) with
    Aardvark.Node.policy = policy_cfg;
    post_vc_quiet = Time.ms 100;
  }

let test_aardvark_orders_and_agrees () =
  let cluster = Aardvark.Cluster.create ~clients:3 quick_aardvark_cfg in
  Array.iter (fun c -> Aardvark.Client.set_rate c 500.0) (Aardvark.Cluster.clients cluster);
  Aardvark.Cluster.run_for cluster (Time.sec 1);
  Array.iter (fun c -> Aardvark.Client.set_rate c 0.0) (Aardvark.Cluster.clients cluster);
  Aardvark.Cluster.run_for cluster (Time.sec 1);
  Alcotest.(check bool) "progress" true (Aardvark.Cluster.total_executed cluster > 1000);
  Alcotest.(check bool) "agreement" true (Aardvark.Cluster.agreement_ok cluster ~faulty:[]);
  Array.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "client %d completed" (Aardvark.Client.id c))
        (Aardvark.Client.sent c) (Aardvark.Client.completed c))
    (Aardvark.Cluster.clients cluster)

let test_aardvark_regular_view_changes () =
  let cluster = Aardvark.Cluster.create ~clients:3 quick_aardvark_cfg in
  Array.iter (fun c -> Aardvark.Client.set_rate c 800.0) (Aardvark.Cluster.clients cluster);
  Aardvark.Cluster.run_for cluster (Time.sec 6);
  (* Grace 1 s + ~1.1 s of ratchet per view: several views in 6 s. *)
  let vcs = Aardvark.Node.view_changes (Aardvark.Cluster.node cluster 0) in
  Alcotest.(check bool) (Printf.sprintf "regular view changes (%d)" vcs) true (vcs >= 2);
  Alcotest.(check bool) "agreement" true (Aardvark.Cluster.agreement_ok cluster ~faulty:[])

let test_aardvark_tracking_attack_degrades () =
  let run ~attack =
    let cluster = Aardvark.Cluster.create ~seed:7L ~clients:4 quick_aardvark_cfg in
    Array.iter (fun c -> Aardvark.Client.set_rate c 1500.0) (Aardvark.Cluster.clients cluster);
    if attack then begin
      let faults = Aardvark.Node.faults (Aardvark.Cluster.node cluster 0) in
      faults.Aardvark.Node.track_required <- true;
      (* A tight margin makes the throttling visible at this small
         scale; the default (1.10) absorbs the smoothing lag against
         the ratchet in the full experiments. *)
      faults.Aardvark.Node.attack_margin <- 1.02
    end;
    Aardvark.Cluster.run_for cluster (Time.sec 3);
    (* Measure during the malicious primary's reign (view 0): below
       saturation an open-loop system catches the backlog up once the
       attacker is evicted, hiding the damage from a full-run average. *)
    Aardvark.Cluster.throughput_between cluster (Time.ms 300) (Time.ms 1100)
  in
  let ff = run ~attack:false and under_attack = run ~attack:true in
  Alcotest.(check bool)
    (Printf.sprintf "attack slower (%.0f vs %.0f)" under_attack ff)
    true
    (under_attack < 0.97 *. ff);
  Alcotest.(check bool) "but not catastrophic under static load" true
    (under_attack > 0.5 *. ff)

(* ------------------------------------------------------------------ *)
(* Spinning                                                           *)
(* ------------------------------------------------------------------ *)

let test_spinning_orders_and_agrees () =
  let cfg = Spinning.Node.default_config ~f:1 in
  let cluster = Spinning.Cluster.create ~clients:3 cfg in
  Array.iter (fun c -> Spinning.Client.set_rate c 500.0) (Spinning.Cluster.clients cluster);
  Spinning.Cluster.run_for cluster (Time.sec 1);
  Array.iter (fun c -> Spinning.Client.set_rate c 0.0) (Spinning.Cluster.clients cluster);
  Spinning.Cluster.run_for cluster (Time.sec 1);
  Alcotest.(check bool) "progress" true (Spinning.Cluster.total_executed cluster > 1000);
  Alcotest.(check bool) "agreement" true (Spinning.Cluster.agreement_ok cluster ~faulty:[]);
  Array.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "client %d completed" (Spinning.Client.id c))
        (Spinning.Client.sent c) (Spinning.Client.completed c))
    (Spinning.Cluster.clients cluster)

let test_spinning_rotation () =
  (* With pipelined rotation every replica proposes batches; check
     that many sequence slots were delivered (rotation advanced far
     beyond what a single fixed primary's batch count would need). *)
  let cfg = Spinning.Node.default_config ~f:1 in
  let cluster = Spinning.Cluster.create ~clients:3 cfg in
  Array.iter (fun c -> Spinning.Client.set_rate c 1000.0) (Spinning.Cluster.clients cluster);
  Spinning.Cluster.run_for cluster (Time.sec 1);
  let r = Spinning.Node.replica (Spinning.Cluster.node cluster 0) in
  Alcotest.(check bool) "many slots delivered" true (Spinning.Replica.delivered_seqs r > 50)

let test_spinning_sub_timeout_attack () =
  (* The Figure 3 attack: delaying just under Stimeout collapses
     throughput without triggering the blacklist. *)
  let cfg = Spinning.Node.default_config ~f:1 in
  let run ~attack =
    let cluster = Spinning.Cluster.create ~clients:4 cfg in
    Array.iter (fun c -> Spinning.Client.set_rate c 1500.0) (Spinning.Cluster.clients cluster);
    if attack then
      (Spinning.Node.faults (Spinning.Cluster.node cluster 3)).Spinning.Node.delay_fraction <-
        0.95;
    Spinning.Cluster.run_for cluster (Time.sec 2);
    ( Spinning.Cluster.throughput_between cluster (Time.ms 300) (Time.sec 2),
      Spinning.Replica.blacklist (Spinning.Node.replica (Spinning.Cluster.node cluster 0)) )
  in
  let ff, _ = run ~attack:false in
  let attacked, blacklist = run ~attack:true in
  Alcotest.(check bool)
    (Printf.sprintf "collapse (%.0f vs %.0f)" attacked ff)
    true
    (attacked < 0.4 *. ff);
  Alcotest.(check (list int)) "no blacklisting below the timeout" [] blacklist

let test_spinning_blacklists_over_timeout () =
  (* Delaying beyond Stimeout gets the faulty proposer blacklisted and
     throughput recovers. *)
  let cfg = { (Spinning.Node.default_config ~f:1) with Spinning.Node.s_timeout = Time.ms 10 } in
  let cluster = Spinning.Cluster.create ~clients:4 cfg in
  Array.iter (fun c -> Spinning.Client.set_rate c 1000.0) (Spinning.Cluster.clients cluster);
  (Spinning.Node.faults (Spinning.Cluster.node cluster 3)).Spinning.Node.delay_fraction <- 3.0;
  Spinning.Cluster.run_for cluster (Time.sec 2);
  let blacklist = Spinning.Replica.blacklist (Spinning.Node.replica (Spinning.Cluster.node cluster 0)) in
  Alcotest.(check (list int)) "faulty proposer blacklisted" [ 3 ] blacklist;
  Alcotest.(check bool) "agreement among correct" true
    (Spinning.Cluster.agreement_ok cluster ~faulty:[ 3 ])

(* ------------------------------------------------------------------ *)
(* Prime                                                              *)
(* ------------------------------------------------------------------ *)

let prime_cfg = { (Prime.Node.default_config ~f:1) with Prime.Node.exec_cost = Time.us 10 }

let test_prime_orders_and_agrees () =
  let cluster = Prime.Cluster.create ~clients:4 prime_cfg in
  Array.iter (fun c -> Prime.Client.set_rate c 300.0) (Prime.Cluster.clients cluster);
  Prime.Cluster.run_for cluster (Time.sec 1);
  Array.iter (fun c -> Prime.Client.set_rate c 0.0) (Prime.Cluster.clients cluster);
  Prime.Cluster.run_for cluster (Time.sec 1);
  Alcotest.(check bool) "progress" true (Prime.Cluster.total_executed cluster > 500);
  Alcotest.(check bool) "agreement" true (Prime.Cluster.agreement_ok cluster ~faulty:[]);
  Array.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "client %d completed" (Prime.Client.id c))
        (Prime.Client.sent c) (Prime.Client.completed c))
    (Prime.Cluster.clients cluster)

let test_prime_latency_dominated_by_period () =
  (* Prime's ordering is periodic: even an idle system shows latency
     around the aggregation period, an order of magnitude above the
     3-phase protocols (Figure 7 discussion). *)
  let cluster = Prime.Cluster.create ~clients:1 prime_cfg in
  let c = Prime.Cluster.client cluster 0 in
  Prime.Client.set_rate c 50.0;
  Prime.Cluster.run_for cluster (Time.sec 2);
  let mean = Bftmetrics.Hist.mean (Prime.Client.latencies c) in
  Alcotest.(check bool)
    (Printf.sprintf "latency %.1f ms >= 3 ms" (mean *. 1e3))
    true (mean > 3e-3)

let test_prime_monitor_allowed_gap () =
  let m = Prime.Monitor.create Prime.Monitor.default_config in
  Prime.Monitor.note_rtt m (Time.ms 1);
  Prime.Monitor.note_batch_exec m (Time.ms 4);
  let gap = Prime.Monitor.allowed_gap m in
  (* t_pp + k_lat * (rtt + exec) with EMA warmup: first samples count
     fully. *)
  Alcotest.(check bool)
    (Printf.sprintf "gap %s > t_pp" (Time.to_string gap))
    true
    (gap > Time.ms 10);
  Alcotest.(check bool) "suspicious after silence" true
    (Prime.Monitor.note_pre_prepare m ~now:Time.zero;
     Prime.Monitor.suspicious m ~now:(Time.sec 1))

let test_prime_attack_degrades () =
  let cfg = Prime.Node.default_config ~f:1 in
  let run ~attack =
    let cluster = Prime.Cluster.create ~clients:6 cfg in
    Array.iteri
      (fun i c ->
        Prime.Client.set_rate c 600.0;
        if attack && i = 0 then (Prime.Client.behaviour c).Prime.Client.heavy <- true)
      (Prime.Cluster.clients cluster);
    if attack then
      (Prime.Node.faults (Prime.Cluster.node cluster 0)).Prime.Node.delay_to_limit <- true;
    Prime.Cluster.run_for cluster (Time.sec 3);
    ( Prime.Cluster.throughput_between cluster (Time.ms 500) (Time.sec 3),
      Prime.Node.view (Prime.Cluster.node cluster 1) )
  in
  let ff, _ = run ~attack:false in
  let attacked, view = run ~attack:true in
  Alcotest.(check bool)
    (Printf.sprintf "degraded (%.0f vs %.0f)" attacked ff)
    true
    (attacked < 0.7 *. ff);
  Alcotest.(check int) "the smart primary is never suspected" 0 view

let test_prime_dead_primary_suspected () =
  (* A primary that stops sending PRE-PREPAREs entirely exceeds the
     allowed gap and is replaced. *)
  let cluster = Prime.Cluster.create ~clients:2 prime_cfg in
  Array.iter (fun c -> Prime.Client.set_rate c 200.0) (Prime.Cluster.clients cluster);
  let faulty = Prime.Cluster.node cluster 0 in
  (Prime.Node.faults faulty).Prime.Node.delay_to_limit <- true;
  (Prime.Node.faults faulty).Prime.Node.limit_fraction <- 50.0;
  Prime.Cluster.run_for cluster (Time.sec 4);
  Alcotest.(check bool) "view advanced" true (Prime.Node.view (Prime.Cluster.node cluster 1) >= 1)

(* ------------------------------------------------------------------ *)
(* Load shapes                                                        *)
(* ------------------------------------------------------------------ *)

let test_loadshape_static () =
  let shape = Bftworkload.Loadshape.static ~duration:(Time.sec 2) ~clients:5 ~rate:100.0 in
  Alcotest.(check int) "duration" (Time.sec 2) (Bftworkload.Loadshape.total_duration shape);
  Alcotest.(check int) "clients" 5 (Bftworkload.Loadshape.max_clients shape);
  Alcotest.(check (float 1e-6)) "offered" 1000.0 (Bftworkload.Loadshape.offered_total shape)

let test_loadshape_dynamic () =
  let shape = Bftworkload.Loadshape.paper_dynamic ~rate:100.0 () in
  Alcotest.(check int) "spike" 50 (Bftworkload.Loadshape.max_clients shape);
  Alcotest.(check int) "14 phases" 14 (List.length shape)

let test_loadshape_apply () =
  let engine = Engine.create () in
  let shape =
    [
      { Bftworkload.Loadshape.duration = Time.ms 100; active_clients = 2; per_client_rate = 10.0 };
      { Bftworkload.Loadshape.duration = Time.ms 100; active_clients = 1; per_client_rate = 5.0 };
    ]
  in
  let log = ref [] in
  Bftworkload.Loadshape.apply engine shape ~set_rate:(fun c r ->
      log := (Engine.now engine, c, r) :: !log);
  Engine.run engine;
  let log = List.rev !log in
  Alcotest.(check int) "3 boundaries x 2 clients" 6 (List.length log);
  Alcotest.(check bool) "phase 1" true
    (List.mem (Time.zero, 0, 10.0) log && List.mem (Time.zero, 1, 10.0) log);
  Alcotest.(check bool) "phase 2 deactivates client 1" true
    (List.mem (Time.ms 100, 1, 0.0) log);
  Alcotest.(check bool) "final stop" true (List.mem (Time.ms 200, 0, 0.0) log)

let prop_spinning_rotation_covers_all =
  QCheck.Test.make ~name:"spinning rotation visits every non-blacklisted replica"
    QCheck.(int_range 0 1000)
    (fun start ->
      let engine = Engine.create () in
      let cfg = Spinning.Replica.default_config ~n:4 ~f:1 ~replica_id:0 in
      let r =
        Spinning.Replica.create engine cfg
          { Spinning.Replica.broadcast = (fun _ -> ()); deliver = (fun _ _ -> ()) }
      in
      let seen =
        List.sort_uniq compare
          (List.init 8 (fun k -> Spinning.Replica.proposer_of r ~seq:(start + k)))
      in
      seen = [ 0; 1; 2; 3 ])

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "aardvark.policy",
      [
        Alcotest.test_case "bootstrap and ratchet" `Quick test_policy_bootstrap_and_ratchet;
        Alcotest.test_case "heartbeat" `Quick test_policy_heartbeat;
        Alcotest.test_case "history sets requirement" `Quick
          test_policy_history_sets_requirement;
      ] );
    ( "aardvark.cluster",
      [
        Alcotest.test_case "orders and agrees" `Quick test_aardvark_orders_and_agrees;
        Alcotest.test_case "regular view changes" `Quick test_aardvark_regular_view_changes;
        Alcotest.test_case "requirement-tracking attack" `Quick
          test_aardvark_tracking_attack_degrades;
      ] );
    ( "spinning",
      [
        Alcotest.test_case "orders and agrees" `Quick test_spinning_orders_and_agrees;
        Alcotest.test_case "rotation" `Quick test_spinning_rotation;
        Alcotest.test_case "sub-timeout attack (Fig 3)" `Quick
          test_spinning_sub_timeout_attack;
        Alcotest.test_case "blacklists over timeout" `Quick
          test_spinning_blacklists_over_timeout;
      ]
      @ qsuite [ prop_spinning_rotation_covers_all ] );
    ( "prime",
      [
        Alcotest.test_case "orders and agrees" `Quick test_prime_orders_and_agrees;
        Alcotest.test_case "periodic-ordering latency" `Quick
          test_prime_latency_dominated_by_period;
        Alcotest.test_case "monitor allowed gap" `Quick test_prime_monitor_allowed_gap;
        Alcotest.test_case "RTT-inflation attack (Fig 1)" `Quick test_prime_attack_degrades;
        Alcotest.test_case "dead primary suspected" `Quick test_prime_dead_primary_suspected;
      ] );
    ( "workload",
      [
        Alcotest.test_case "static shape" `Quick test_loadshape_static;
        Alcotest.test_case "paper dynamic shape" `Quick test_loadshape_dynamic;
        Alcotest.test_case "apply schedules rates" `Quick test_loadshape_apply;
      ] );
  ]
