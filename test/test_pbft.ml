(* Tests for the PBFT-style ordering instance: a rig wires n replicas
   together through the engine with a fixed message delay and records
   every delivery, so we can check agreement, liveness, batching,
   checkpointing and view changes. *)

open Dessim
open Pbftcore

type rig = {
  engine : Engine.t;
  replicas : Replica.t array;
  deliveries : (Types.seqno * Types.request_id list) list ref array;
  drop_to : int list ref;  (* replica ids whose inbound messages are dropped *)
}

let make_rig ?(n = 4) ?(f = 1) ?(tweak = fun _ c -> c) () =
  let engine = Engine.create () in
  let deliveries = Array.init n (fun _ -> ref []) in
  let replicas = Array.make n None in
  let rig_drop = ref [] in
  let delay = Time.us 100 in
  let get i = match replicas.(i) with Some r -> r | None -> assert false in
  let mk i =
    let cfg = tweak i (Replica.default_config ~n ~f ~replica_id:i) in
    let send dst msg =
      if not (List.mem dst !rig_drop) then
        ignore
          (Engine.after engine delay (fun () ->
               Replica.receive (get dst) ~from:i msg))
    in
    let broadcast msg =
      for dst = 0 to n - 1 do
        if dst <> i then send dst msg
      done
    in
    let deliver seq descs =
      deliveries.(i) :=
        (seq, List.map (fun d -> d.Types.id) descs) :: !(deliveries.(i))
    in
    Replica.create engine cfg
      { Replica.send; broadcast; deliver; on_view_change = (fun _ -> ()) }
  in
  for i = 0 to n - 1 do
    replicas.(i) <- Some (mk i)
  done;
  {
    engine;
    replicas = Array.map (function Some r -> r | None -> assert false) replicas;
    deliveries;
    drop_to = rig_drop;
  }

let req ?(client = 0) rid = Types.desc_of_op ~client ~rid (Printf.sprintf "op-%d-%d" client rid)

let submit_all rig desc = Array.iter (fun r -> Replica.submit r desc) rig.replicas

let delivered_ids rig i =
  List.rev !(rig.deliveries.(i))
  |> List.concat_map (fun (_, ids) -> ids)

let check_agreement rig =
  let reference = delivered_ids rig 0 in
  Array.iteri
    (fun i _ ->
      if not (Replica.adversary rig.replicas.(i)).Replica.silent then
        Alcotest.(check bool)
          (Printf.sprintf "replica %d agrees with replica 0" i)
          true
          (delivered_ids rig i = reference))
    rig.replicas

let test_basic_ordering () =
  let rig = make_rig () in
  submit_all rig (req 1);
  Engine.run rig.engine;
  Array.iteri
    (fun i r ->
      Alcotest.(check int) (Printf.sprintf "replica %d ordered" i) 1
        (Replica.ordered_count r))
    rig.replicas;
  check_agreement rig

let test_many_requests_agree () =
  let rig = make_rig () in
  for rid = 1 to 300 do
    submit_all rig (req ~client:(rid mod 5) rid)
  done;
  Engine.run rig.engine;
  Array.iter
    (fun r -> Alcotest.(check int) "all ordered" 300 (Replica.ordered_count r))
    rig.replicas;
  check_agreement rig

let test_batching_respects_size () =
  let rig = make_rig ~tweak:(fun _ c -> { c with Replica.batch_size = 10 }) () in
  for rid = 1 to 95 do
    submit_all rig (req rid)
  done;
  Engine.run rig.engine;
  List.iter
    (fun (_, ids) ->
      Alcotest.(check bool) "batch within limit" true (List.length ids <= 10))
    !(rig.deliveries.(1));
  Alcotest.(check int) "all ordered" 95 (Replica.ordered_count rig.replicas.(1))

let test_duplicate_submission () =
  let rig = make_rig () in
  let d = req 1 in
  submit_all rig d;
  submit_all rig d;
  Engine.run rig.engine;
  Alcotest.(check int) "ordered once" 1 (Replica.ordered_count rig.replicas.(0))

let test_partial_batch_timer () =
  (* A single request below batch size must still be ordered, after
     the batch delay. *)
  let rig = make_rig ~tweak:(fun _ c -> { c with Replica.batch_size = 50 }) () in
  submit_all rig (req 1);
  Engine.run rig.engine;
  Alcotest.(check int) "ordered despite partial batch" 1
    (Replica.ordered_count rig.replicas.(2))

let test_silent_faulty_replica () =
  let rig = make_rig () in
  (Replica.adversary rig.replicas.(3)).Replica.silent <- true;
  for rid = 1 to 50 do
    submit_all rig (req rid)
  done;
  Engine.run rig.engine;
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "correct replica %d ordered all" i)
      50
      (Replica.ordered_count rig.replicas.(i))
  done

let test_delaying_primary_still_orders () =
  let rig = make_rig () in
  (Replica.adversary rig.replicas.(0)).Replica.pp_extra_delay <-
    (fun () -> Time.ms 5);
  for rid = 1 to 20 do
    submit_all rig (req rid)
  done;
  Engine.run rig.engine;
  Alcotest.(check int) "all ordered" 20 (Replica.ordered_count rig.replicas.(1));
  Alcotest.(check bool) "delay stretched completion" true
    (Engine.now rig.engine > Time.ms 5);
  check_agreement rig

let test_requests_before_pp_guard () =
  (* A replica must not PREPARE a batch whose requests it has not
     received; here replica 2 gets the request late and the instance
     still completes. *)
  let rig = make_rig () in
  let d = req 1 in
  Array.iteri (fun i r -> if i <> 2 then ignore i; ignore r) rig.replicas;
  Replica.submit rig.replicas.(0) d;
  Replica.submit rig.replicas.(1) d;
  Replica.submit rig.replicas.(3) d;
  ignore
    (Engine.after rig.engine (Time.ms 50) (fun () ->
         Replica.submit rig.replicas.(2) d));
  Engine.run rig.engine;
  Alcotest.(check int) "ordered everywhere" 1
    (Replica.ordered_count rig.replicas.(2));
  check_agreement rig

let test_view_change_rotates_primary () =
  let rig = make_rig () in
  Alcotest.(check int) "initial primary" 0 (Replica.current_primary rig.replicas.(1));
  Array.iter Replica.force_view_change rig.replicas;
  Engine.run rig.engine;
  Array.iter
    (fun r ->
      Alcotest.(check int) "new view" 1 (Replica.view r);
      Alcotest.(check int) "new primary" 1 (Replica.current_primary r);
      Alcotest.(check bool) "out of view change" false (Replica.in_view_change r))
    rig.replicas

let test_view_change_preserves_pending () =
  (* Requests submitted but not yet ordered before a view change must
     be ordered by the new primary. *)
  let rig =
    make_rig
      ~tweak:(fun i c ->
        if i = 0 then { c with Replica.batch_delay = Time.sec 10 } else c)
      ()
  in
  (* Huge batch delay at the initial primary: requests sit pending. *)
  for rid = 1 to 5 do
    submit_all rig (req rid)
  done;
  ignore
    (Engine.after rig.engine (Time.ms 1) (fun () ->
         Array.iter Replica.force_view_change rig.replicas));
  Engine.run ~until:(Time.sec 5) rig.engine;
  Array.iter
    (fun r -> Alcotest.(check int) "reordered after view change" 5 (Replica.ordered_count r))
    rig.replicas;
  check_agreement rig

let test_view_change_no_duplicates () =
  let rig = make_rig () in
  for rid = 1 to 30 do
    submit_all rig (req rid)
  done;
  ignore
    (Engine.after rig.engine (Time.us 150) (fun () ->
         Array.iter Replica.force_view_change rig.replicas));
  Engine.run rig.engine;
  (* Every request ordered exactly once despite re-proposal. *)
  Array.iteri
    (fun i _ ->
      let ids = delivered_ids rig i in
      let distinct = List.sort_uniq Types.compare_request_id ids in
      Alcotest.(check int)
        (Printf.sprintf "replica %d no duplicates" i)
        (List.length distinct) (List.length ids);
      Alcotest.(check int) (Printf.sprintf "replica %d count" i) 30 (List.length ids))
    rig.replicas;
  check_agreement rig

let test_checkpoint_gc () =
  let rig =
    make_rig
      ~tweak:(fun _ c ->
        { c with Replica.checkpoint_interval = 4; batch_size = 1 })
      ()
  in
  for rid = 1 to 40 do
    submit_all rig (req rid)
  done;
  Engine.run rig.engine;
  Array.iter
    (fun r ->
      Alcotest.(check bool) "stable checkpoint advanced" true
        (Replica.last_stable r >= 36);
      Alcotest.(check int) "all ordered" 40 (Replica.ordered_count r))
    rig.replicas

let test_checkpoint_gc_exact_live_set () =
  (* The two-pass GC must keep exactly the post-watermark entries: the
     log keeps filling with new batches while checkpoints retire old
     ones, and at quiescence no sequence at or below the stable
     checkpoint may survive in any replica's entry table. *)
  let rig =
    make_rig
      ~tweak:(fun _ c ->
        { c with Replica.checkpoint_interval = 4; batch_size = 1 })
      ()
  in
  (* Feed requests in waves so checkpoints and fresh inserts overlap. *)
  let rid = ref 0 in
  let rec wave remaining =
    if remaining > 0 then begin
      for _ = 1 to 8 do
        incr rid;
        submit_all rig (req !rid)
      done;
      ignore (Engine.after rig.engine (Time.ms 5) (fun () -> wave (remaining - 1)))
    end
  in
  wave 5;
  Engine.run rig.engine;
  Array.iteri
    (fun i r ->
      let stable = Replica.last_stable r in
      Alcotest.(check bool)
        (Printf.sprintf "replica %d checkpointed" i)
        true (stable >= 36);
      let live = Replica.debug_live_seqs r in
      Alcotest.(check bool)
        (Printf.sprintf "replica %d kept only post-watermark entries" i)
        true
        (List.for_all (fun s -> s > stable) live))
    rig.replicas

(* ------------------------------------------------------------------ *)
(* Vote sets                                                           *)
(* ------------------------------------------------------------------ *)

let test_voteset_basics () =
  let v = Voteset.create ~n:10 in
  Alcotest.(check int) "empty count" 0 (Voteset.count v);
  Alcotest.(check bool) "first add fresh" true (Voteset.add v 3);
  Alcotest.(check bool) "duplicate rejected" false (Voteset.add v 3);
  Alcotest.(check bool) "member" true (Voteset.mem v 3);
  Alcotest.(check bool) "non-member" false (Voteset.mem v 4);
  Alcotest.(check bool) "out of range high" false (Voteset.add v 10);
  Alcotest.(check bool) "out of range low" false (Voteset.add v (-1));
  ignore (Voteset.add v 0);
  ignore (Voteset.add v 9);
  Alcotest.(check int) "count tracks adds" 3 (Voteset.count v);
  Alcotest.(check (list int)) "ascending ids" [ 0; 3; 9 ] (Voteset.to_list v);
  Voteset.clear v;
  Alcotest.(check int) "cleared" 0 (Voteset.count v);
  Alcotest.(check bool) "cleared member gone" false (Voteset.mem v 3)

let test_voteset_tagged () =
  let v = Voteset.Tagged.create ~n:7 in
  (* Before the digest is known every vote counts provisionally. *)
  Alcotest.(check bool) "vote a" true (Voteset.Tagged.add v ~replica:1 ~digest:"a");
  Alcotest.(check bool) "vote b" true (Voteset.Tagged.add v ~replica:2 ~digest:"b");
  Alcotest.(check int) "provisional matching" 2 (Voteset.Tagged.matching v);
  (* Fixing the reference rescans: only votes for "a" still match. *)
  Voteset.Tagged.set_reference v "a";
  Alcotest.(check int) "rescan keeps matches" 1 (Voteset.Tagged.matching v);
  Alcotest.(check bool) "duplicate replica rejected" false
    (Voteset.Tagged.add v ~replica:1 ~digest:"a");
  Alcotest.(check bool) "matching vote" true
    (Voteset.Tagged.add v ~replica:3 ~digest:"a");
  Alcotest.(check bool) "mismatching vote recorded" true
    (Voteset.Tagged.add v ~replica:4 ~digest:"z");
  Alcotest.(check int) "only matching counted" 2 (Voteset.Tagged.matching v);
  Alcotest.(check int) "all votes counted" 4 (Voteset.Tagged.count v);
  Voteset.Tagged.clear v;
  Alcotest.(check int) "cleared votes" 0 (Voteset.Tagged.count v);
  (* The reference digest survives a clear (view-change resets). *)
  Alcotest.(check bool) "post-clear vote" true
    (Voteset.Tagged.add v ~replica:5 ~digest:"a");
  Alcotest.(check int) "post-clear matching" 1 (Voteset.Tagged.matching v)

let test_equivocation_not_committed () =
  (* Inject two conflicting PRE-PREPAREs for the same (view, seq) at
     different replicas: at most one of the conflicting batches can be
     ordered, never both. *)
  let rig = make_rig () in
  let d1 = req 1 and d2 = req 2 in
  submit_all rig d1;
  submit_all rig d2;
  (* Stop the real primary from acting; drive PPs by hand. *)
  (Replica.adversary rig.replicas.(0)).Replica.silent <- true;
  let pp descs = { Messages.view = 0; seq = 1; descs } in
  Replica.receive rig.replicas.(1) ~from:0 (Messages.Pre_prepare (pp [ d1 ]));
  Replica.receive rig.replicas.(2) ~from:0 (Messages.Pre_prepare (pp [ d2 ]));
  Replica.receive rig.replicas.(3) ~from:0 (Messages.Pre_prepare (pp [ d1 ]));
  Engine.run ~until:(Time.sec 1) rig.engine;
  (* With conflicting PPs, seq 1 cannot gather both quorums: replicas
     1..3 may order [d1] (two matching PPs) but never [d2]. *)
  for i = 1 to 3 do
    let ids = delivered_ids rig i in
    Alcotest.(check bool)
      (Printf.sprintf "replica %d never orders the minority batch" i)
      false
      (List.mem d2.Types.id ids && not (List.mem d1.Types.id ids))
  done;
  (* Agreement among correct replicas on what was delivered at seq 1. *)
  let at_seq1 i = List.assoc_opt 1 (List.rev !(rig.deliveries.(i))) in
  let delivered = List.filter_map at_seq1 [ 1; 2; 3 ] in
  match delivered with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun other ->
        Alcotest.(check bool) "same batch at seq 1" true (other = first))
      rest

let test_unfair_client_hold () =
  let rig = make_rig () in
  (Replica.adversary rig.replicas.(0)).Replica.client_hold <-
    (fun id -> if id.Types.client = 1 then Time.ms 20 else Time.zero);
  let d_fast = req ~client:0 1 and d_slow = req ~client:1 1 in
  submit_all rig d_slow;
  submit_all rig d_fast;
  Engine.run rig.engine;
  (* Both ordered, but the held client's request comes later. *)
  let ids = delivered_ids rig 1 in
  Alcotest.(check int) "both ordered" 2 (List.length ids);
  Alcotest.(check bool) "held client ordered last" true
    (ids = [ d_fast.Types.id; d_slow.Types.id ])

let test_early_mismatching_votes_do_not_count () =
  (* A Byzantine replica sends PREPARE/COMMIT with a bogus digest
     before the PRE-PREPARE arrives; those votes must not count toward
     the quorums of the real batch. *)
  let rig = make_rig () in
  let d = req 1 in
  submit_all rig d;
  (* Bogus early votes from "replica 3" for seq 1. *)
  let bogus = String.make 32 'Z' in
  Replica.receive rig.replicas.(1) ~from:3
    (Messages.Prepare { view = 0; seq = 1; digest = bogus; replica = 3 });
  Replica.receive rig.replicas.(1) ~from:3
    (Messages.Commit { view = 0; seq = 1; digest = bogus; replica = 3 });
  (* Silence replicas 2 and 3 so the real quorum cannot form: if the
     bogus votes counted, replica 1 could commit/deliver with only the
     primary's and its own votes plus the fakes. *)
  (Replica.adversary rig.replicas.(2)).Replica.silent <- true;
  (Replica.adversary rig.replicas.(3)).Replica.silent <- true;
  Engine.run ~until:(Time.ms 100) rig.engine;
  (* Without the digest check the bogus votes would complete the 2f
     prepare and 2f+1 commit quorums at replica 1 (primary PP + own
     vote + fakes) and deliver; with it, nothing can be delivered
     while two replicas stay mute. *)
  Alcotest.(check int) "no delivery from poisoned quorums" 0
    (Replica.ordered_count rig.replicas.(1))

let test_rate_limit_throttles () =
  (* The adversarial rate cap holds ordering to the configured rate
     regardless of batch fill. *)
  let rig = make_rig () in
  (Replica.adversary rig.replicas.(0)).Replica.pp_rate_limit <- (fun () -> 100.0);
  for rid = 1 to 200 do
    submit_all rig (req rid)
  done;
  Engine.run ~until:(Time.sec 1) rig.engine;
  let ordered = Replica.ordered_count rig.replicas.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "throttled to ~100/s (got %d)" ordered)
    true
    (ordered > 60 && ordered < 140)

let test_state_transfer_catches_up_laggard () =
  (* Cut a replica off, let the others pass a checkpoint, reconnect:
     the stable checkpoint pulls the laggard forward without replay. *)
  let rig =
    make_rig ~tweak:(fun _ c -> { c with Replica.checkpoint_interval = 4; batch_size = 1 }) ()
  in
  rig.drop_to := [ 3 ];
  for rid = 1 to 20 do
    Replica.submit rig.replicas.(0) (req rid);
    Replica.submit rig.replicas.(1) (req rid);
    Replica.submit rig.replicas.(2) (req rid)
  done;
  Engine.run rig.engine;
  Alcotest.(check int) "laggard saw nothing" 0 (Replica.ordered_count rig.replicas.(3));
  rig.drop_to := [];
  (* New traffic (delivered to everyone) carries checkpoints forward. *)
  for rid = 21 to 60 do
    submit_all rig (req rid)
  done;
  Engine.run rig.engine;
  Alcotest.(check bool) "laggard state-transferred" true
    (Replica.state_transfers rig.replicas.(3) >= 1);
  Alcotest.(check bool) "laggard moved past the gap" true
    (Replica.last_delivered_seq rig.replicas.(3) >= 20);
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d ordered all" i)
      60
      (Replica.ordered_count rig.replicas.(i))
  done

let test_new_primary_reproposes_inflight () =
  (* Batches pre-prepared but not yet committed when the view changes
     are re-proposed by the new primary (no request is lost). *)
  let rig = make_rig () in
  (* Let the primary propose but suppress its commits by silencing it
     right after proposals went out. *)
  for rid = 1 to 10 do
    submit_all rig (req rid)
  done;
  ignore
    (Engine.after rig.engine (Time.us 120) (fun () ->
         (* PPs are in flight; force the change before commits complete. *)
         Array.iter Replica.force_view_change rig.replicas));
  Engine.run rig.engine;
  Array.iteri
    (fun i r ->
      Alcotest.(check int) (Printf.sprintf "replica %d ordered all" i) 10
        (Replica.ordered_count r))
    rig.replicas;
  check_agreement rig

(* Regression: a delay-attack primary schedules its PRE-PREPARE
   broadcasts in closures; a view change completing before a closure
   fires must kill it. Without the [pp.view = t.view && is_primary]
   guard the demoted replica would broadcast a stale-view PP and mark
   [sent_prepare] on the new view's entry for the slot — it then
   ignores the new primary's batch for that seq and can never commit
   or deliver it. *)
let test_stale_delayed_pp_dies_with_view () =
  let rig = make_rig () in
  (Replica.adversary rig.replicas.(0)).Replica.pp_extra_delay <-
    (fun () -> Time.ms 5);
  let stale_pps = ref 0 in
  let tok =
    Bftaudit.Bus.subscribe (fun (e : Bftaudit.Event.t) ->
        match e.kind with
        | Bftaudit.Event.Pre_prepare_sent { view = 0; _ } when e.node = 0 ->
          (* Any view-0 PP broadcast after the 1ms view change is the
             stale closure firing; none may exist past that point. *)
          if e.time > Time.ms 1 then incr stale_pps
        | _ -> ())
  in
  for rid = 1 to 8 do
    submit_all rig (req rid)
  done;
  ignore
    (Engine.after rig.engine (Time.ms 1) (fun () ->
         Array.iter Replica.force_view_change rig.replicas));
  Engine.run rig.engine;
  Bftaudit.Bus.unsubscribe tok;
  Alcotest.(check int) "no stale-view pre-prepare issued" 0 !stale_pps;
  Array.iteri
    (fun i r ->
      Alcotest.(check int) (Printf.sprintf "replica %d ordered all" i) 8
        (Replica.ordered_count r))
    rig.replicas;
  check_agreement rig

(* Regression: a partial batch armed a flush timer on the primary; a
   view change demoting the primary must cancel it (and the
   [is_primary] re-check in [flush_batch] must hold even if a timer
   survives), so the demoted replica never proposes after demotion. *)
let test_demoted_primary_batch_timer_cancelled () =
  let rig =
    make_rig
      ~tweak:(fun i c ->
        if i = 0 then { c with Replica.batch_delay = Time.ms 20 } else c)
      ()
  in
  let late_pps = ref 0 in
  let tok =
    Bftaudit.Bus.subscribe (fun (e : Bftaudit.Event.t) ->
        match e.kind with
        | Bftaudit.Event.Pre_prepare_sent _ when e.node = 0 && e.time > Time.ms 1
          ->
          incr late_pps
        | _ -> ())
  in
  (* Three requests sit in replica 0's pending batch behind the 20ms
     timer; the view change at 1ms demotes it before any flush. *)
  for rid = 1 to 3 do
    submit_all rig (req rid)
  done;
  ignore
    (Engine.after rig.engine (Time.ms 1) (fun () ->
         Array.iter Replica.force_view_change rig.replicas));
  Engine.run rig.engine;
  Bftaudit.Bus.unsubscribe tok;
  Alcotest.(check int) "demoted primary proposed nothing" 0 !late_pps;
  Array.iteri
    (fun i r ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d ordered all" i)
        3 (Replica.ordered_count r))
    rig.replicas;
  check_agreement rig

(* Regression for the delivered-slot re-vote: a replica that missed a
   slot's quorum round re-proposes the batch after becoming primary
   (or re-batches the request at the same seq). Replicas that already
   delivered the slot must answer the re-proposal with fresh
   prepare/commit votes in the new view — staying mute wedges the new
   primary's in-order delivery on that slot forever, which is exactly
   what a mid-commit instance change produced under worst1. *)
let test_delivered_slot_revote_unwedges_new_primary () =
  let rig = make_rig () in
  (* Replica 1 hears nothing while the others deliver seq 1. *)
  rig.drop_to := [ 1 ];
  submit_all rig (req 1);
  Engine.run rig.engine;
  Array.iteri
    (fun i r ->
      if i <> 1 then
        Alcotest.(check int)
          (Printf.sprintf "replica %d delivered without 1" i)
          1 (Replica.ordered_count r))
    rig.replicas;
  Alcotest.(check int) "replica 1 behind" 0 (Replica.ordered_count rig.replicas.(1));
  (* Heal the network and rotate: replica 1 becomes the view-1
     primary and re-proposes the request it still holds at seq 1. *)
  rig.drop_to := [];
  Array.iter Replica.force_view_change rig.replicas;
  Engine.run rig.engine;
  Array.iteri
    (fun i r ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d delivered after revote" i)
        1 (Replica.ordered_count r))
    rig.replicas;
  check_agreement rig

let prop_agreement_random_order =
  QCheck.Test.make ~name:"replicas agree under random submission orders"
    QCheck.(pair (int_bound 10_000) (int_range 1 60))
    (fun (seed, nreqs) ->
      let rig = make_rig () in
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      (* Submit each request to each replica at an independent random
         time; include occasional missing submissions to one replica
         (it learns descriptors from the PRE-PREPARE). *)
      for rid = 1 to nreqs do
        let d = req ~client:(rid mod 3) rid in
        Array.iteri
          (fun _ r ->
            let delay = Time.us (Rng.int rng 2_000) in
            ignore (Engine.after rig.engine delay (fun () -> Replica.submit r d)))
          rig.replicas
      done;
      Engine.run rig.engine;
      let reference = delivered_ids rig 0 in
      List.length reference = nreqs
      && Array.for_all
           (fun i -> delivered_ids rig i = reference)
           (Array.init 4 (fun i -> i)))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "pbft.ordering",
      [
        Alcotest.test_case "basic ordering" `Quick test_basic_ordering;
        Alcotest.test_case "many requests agree" `Quick test_many_requests_agree;
        Alcotest.test_case "batch size respected" `Quick test_batching_respects_size;
        Alcotest.test_case "duplicate submission" `Quick test_duplicate_submission;
        Alcotest.test_case "partial batch timer" `Quick test_partial_batch_timer;
        Alcotest.test_case "tolerates silent replica" `Quick test_silent_faulty_replica;
        Alcotest.test_case "delaying primary" `Quick test_delaying_primary_still_orders;
        Alcotest.test_case "f+1 request guard" `Quick test_requests_before_pp_guard;
        Alcotest.test_case "unfair client hold" `Quick test_unfair_client_hold;
        Alcotest.test_case "rate-limit adversary" `Quick test_rate_limit_throttles;
        Alcotest.test_case "early mismatching votes rejected" `Quick
          test_early_mismatching_votes_do_not_count;
      ]
      @ qsuite [ prop_agreement_random_order ] );
    ( "pbft.viewchange",
      [
        Alcotest.test_case "rotates primary" `Quick test_view_change_rotates_primary;
        Alcotest.test_case "preserves pending requests" `Quick
          test_view_change_preserves_pending;
        Alcotest.test_case "no duplicate deliveries" `Quick test_view_change_no_duplicates;
        Alcotest.test_case "re-proposes in-flight batches" `Quick
          test_new_primary_reproposes_inflight;
        Alcotest.test_case "stale delayed pp dies with view" `Quick
          test_stale_delayed_pp_dies_with_view;
        Alcotest.test_case "demoted primary batch timer cancelled" `Quick
          test_demoted_primary_batch_timer_cancelled;
        Alcotest.test_case "delivered-slot revote unwedges new primary" `Quick
          test_delivered_slot_revote_unwedges_new_primary;
      ] );
    ( "pbft.checkpoint",
      [
        Alcotest.test_case "garbage collection" `Quick test_checkpoint_gc;
        Alcotest.test_case "gc keeps only post-watermark entries" `Quick
          test_checkpoint_gc_exact_live_set;
        Alcotest.test_case "state transfer catches up laggard" `Quick
          test_state_transfer_catches_up_laggard;
      ] );
    ( "pbft.voteset",
      [
        Alcotest.test_case "bitset add/mem/count" `Quick test_voteset_basics;
        Alcotest.test_case "tagged digests and reference" `Quick
          test_voteset_tagged;
      ] );
    ( "pbft.byzantine",
      [
        Alcotest.test_case "equivocation cannot double-commit" `Quick
          test_equivocation_not_committed;
      ] );
  ]
