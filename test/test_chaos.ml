(* Tests for the bftchaos subsystem: the scenario codec, the fault
   injector, the chaos-aware simulation primitives, the runner with
   its safety/liveness oracles, the shrinker and the explorer. *)

open Dessim
open Bftchaos

(* ------------------------------------------------------------------ *)
(* S-expression reader/printer                                        *)
(* ------------------------------------------------------------------ *)

let test_sexp_basic () =
  match Sexp.of_string "(a b (c d) e)" with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check bool) "parsed shape" true
      (s
      = Sexp.List
          [ Sexp.Atom "a"; Sexp.Atom "b"; Sexp.List [ Sexp.Atom "c"; Sexp.Atom "d" ]; Sexp.Atom "e" ]);
    Alcotest.(check bool) "print/parse identity" true
      (Sexp.of_string (Sexp.to_string s) = Ok s)

let test_sexp_quoting () =
  let original =
    Sexp.List [ Sexp.Atom "name"; Sexp.Atom "two words"; Sexp.Atom "pa;ren)" ]
  in
  match Sexp.of_string (Sexp.to_string original) with
  | Error e -> Alcotest.fail e
  | Ok s -> Alcotest.(check bool) "quoted atoms survive" true (s = original)

let test_sexp_comments () =
  match Sexp.of_string "; header\n(a ; trailing\n b)" with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check bool) "comments stripped" true
      (s = Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ])

let test_sexp_errors () =
  let bad input =
    match Sexp.of_string input with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unbalanced open" true (bad "(a (b)");
  Alcotest.(check bool) "unbalanced close" true (bad "a)");
  Alcotest.(check bool) "trailing garbage" true (bad "(a) (b)");
  Alcotest.(check bool) "empty input" true (bad "   ; only a comment\n")

(* ------------------------------------------------------------------ *)
(* Scenario codec round trip                                          *)
(* ------------------------------------------------------------------ *)

let gen_scenario =
  let open QCheck.Gen in
  let gen_time lo hi = map Time.ns (int_range lo hi) in
  let gen_rates =
    let* drop = float_bound_inclusive 0.5 in
    let* duplicate = float_bound_inclusive 0.5 in
    let* corrupt = float_bound_inclusive 0.5 in
    let* delay = gen_time 0 2_000_000 in
    let* jitter = gen_time 0 1_000_000 in
    return { Fault.drop; duplicate; corrupt; delay; jitter }
  in
  let gen_endpoint = opt (int_range 0 3) in
  let gen_kind =
    oneof
      [
        map (fun node -> Fault.Crash { node }) (int_range 0 3);
        map (fun group -> Fault.Partition { group })
          (list_size (int_range 1 3) (int_range 0 3));
        (let* src = gen_endpoint in
         let* dst = gen_endpoint in
         let* rates = gen_rates in
         return (Fault.Link_chaos { src; dst; rates }));
        (let* node = int_range 0 3 in
         let* factor = float_range 0.5 2.0 in
         return (Fault.Clock_skew { node; factor }));
        (let* node = int_range 0 3 in
         let* factor = float_range 0.5 2.0 in
         return (Fault.Cpu_skew { node; factor }));
      ]
  in
  let gen_fault =
    let* at = gen_time 0 500_000_000 in
    let* len = gen_time 1 500_000_000 in
    let* kind = gen_kind in
    return { Fault.at; until = Time.add at len; kind }
  in
  let* name = oneofl [ "t"; "two words"; "semi;colon"; "q\"uote" ] in
  let* protocol = oneofl (Array.to_list Scenario.all_protocols) in
  let* seed = map Int64.of_int (int_range 0 1_000_000) in
  let* duration = gen_time 1_000_000 2_000_000_000 in
  let* drain = gen_time 1_000_000 2_000_000_000 in
  let* clients = int_range 1 8 in
  let* rate = float_range 0.0 500.0 in
  let* payload = int_range 1 4096 in
  let* faults = list_size (int_range 0 4) gen_fault in
  (* Optional fields: exercised both at their defaults (omitted from
     the sexp) and set (emitted), so the codec round-trips both forms. *)
  let* lambda = oneof [ return Time.zero; gen_time 1_000 10_000_000 ] in
  let* mutation = oneofl [ None; Some Scenario.Ic_quorum_low ] in
  return
    {
      Scenario.name;
      protocol;
      f = 1;
      seed;
      duration;
      drain;
      workload = { Scenario.clients; rate; payload };
      faults;
      lambda;
      mutation;
    }

let prop_scenario_roundtrip =
  QCheck.Test.make ~count:200 ~name:"scenario codec round trip"
    (QCheck.make ~print:Scenario.to_string gen_scenario) (fun s ->
      match Scenario.of_string (Scenario.to_string s) with
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" e
      | Ok s' -> s' = s)

let test_scenario_single_node_group () =
  (* Regression: a one-element (group 3) is a 2-element sexp that the
     field accessor used to unwrap to a bare atom. *)
  let s =
    {
      Scenario.name = "one-node-group";
      protocol = Scenario.Rbft;
      f = 1;
      seed = 5L;
      duration = Time.ms 100;
      drain = Time.ms 100;
      workload = { Scenario.clients = 1; rate = 10.0; payload = 8 };
      faults =
        [
          {
            Fault.at = Time.ms 10;
            until = Time.ms 20;
            kind = Fault.Partition { group = [ 3 ] };
          };
        ];
      lambda = Time.zero;
      mutation = None;
    }
  in
  match Scenario.of_string (Scenario.to_string s) with
  | Error e -> Alcotest.fail e
  | Ok s' -> Alcotest.(check bool) "round trips" true (s = s')

(* ------------------------------------------------------------------ *)
(* Chaos-aware simulation primitives                                  *)
(* ------------------------------------------------------------------ *)

let test_clock_factor () =
  let e = Engine.create () in
  let clock = Clock.create e in
  let fired = ref Time.zero in
  Clock.set_factor clock 2.0;
  ignore (Clock.after clock (Time.ms 1) (fun () -> fired := Engine.now e));
  Engine.run e;
  Alcotest.(check int) "delay scaled 2x" (Time.ms 2 :> int) (!fired :> int);
  Clock.set_factor clock 1.0;
  let fired' = ref Time.zero in
  ignore (Clock.after clock (Time.ms 1) (fun () -> fired' := Engine.now e));
  Engine.run e;
  Alcotest.(check int) "factor reset"
    ((Time.add (Time.ms 2) (Time.ms 1)) :> int)
    (!fired' :> int)

let test_resource_speed () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" in
  Resource.set_speed r 0.5;
  let done_at = ref Time.zero in
  Resource.submit r ~cost:(Time.ms 1) (fun () -> ());
  Resource.submit r ~cost:(Time.ms 1) (fun () -> done_at := Engine.now e);
  Engine.run e;
  (* Both jobs start after the previous finishes; at half speed each
     1 ms job costs 2 ms of virtual time. *)
  Alcotest.(check bool) "jobs slowed 2x" true (!done_at >= Time.ms 4)

(* ------------------------------------------------------------------ *)
(* Injector: network-level faults                                     *)
(* ------------------------------------------------------------------ *)

let make_test_net e =
  let cfg = { (Bftnet.Network.default_config ~nodes:4) with Bftnet.Network.jitter = Time.zero } in
  Bftnet.Network.create e cfg

let null_hooks e net =
  {
    Injector.engine = e;
    n = 4;
    set_fault_hook = Bftnet.Network.set_fault_hook net;
    set_cpu_factor = (fun ~node:_ _ -> ());
    set_clock_factor = (fun ~node:_ _ -> ());
  }

let principal = Bftcrypto.Principal.node

(* Count deliveries to node [dst] while a plan is active vs after. *)
let deliveries_during_and_after plan ~src ~dst =
  let e = Engine.create () in
  let net = make_test_net e in
  let during = ref 0 and after = ref 0 in
  Bftnet.Network.register_node net dst (fun _ ->
      if Engine.now e < Time.ms 100 then incr during else incr after);
  let inj = Injector.install (null_hooks e net) ~seed:9L plan in
  (* One message inside the fault window, one after it expires. *)
  ignore
    (Engine.at e (Time.ms 10) (fun () ->
         Bftnet.Network.send net ~src:(principal src) ~dst:(principal dst) ~size:8 "during"));
  ignore
    (Engine.at e (Time.ms 200) (fun () ->
         Bftnet.Network.send net ~src:(principal src) ~dst:(principal dst) ~size:8 "after"));
  Engine.run e;
  ignore (Injector.crashed inj 0);
  (!during, !after)

let crash_plan node =
  [ { Fault.at = Time.ms 1; until = Time.ms 100; kind = Fault.Crash { node } } ]

let test_injector_crash_blocks () =
  (* Traffic to and from the crashed node is dropped while the crash is
     active and flows again after it expires. *)
  let to_crashed = deliveries_during_and_after (crash_plan 1) ~src:0 ~dst:1 in
  Alcotest.(check (pair int int)) "to crashed node" (0, 1) to_crashed;
  let from_crashed = deliveries_during_and_after (crash_plan 1) ~src:1 ~dst:0 in
  Alcotest.(check (pair int int)) "from crashed node" (0, 1) from_crashed;
  let bystanders = deliveries_during_and_after (crash_plan 1) ~src:2 ~dst:3 in
  Alcotest.(check (pair int int)) "bystanders unaffected" (1, 1) bystanders

let test_injector_partition () =
  let plan =
    [ { Fault.at = Time.ms 1; until = Time.ms 100; kind = Fault.Partition { group = [ 2; 3 ] } } ]
  in
  let across = deliveries_during_and_after plan ~src:0 ~dst:2 in
  Alcotest.(check (pair int int)) "across the cut" (0, 1) across;
  let inside = deliveries_during_and_after plan ~src:2 ~dst:3 in
  Alcotest.(check (pair int int)) "inside the group" (1, 1) inside;
  let outside = deliveries_during_and_after plan ~src:0 ~dst:1 in
  Alcotest.(check (pair int int)) "outside the group" (1, 1) outside

let test_injector_partition_spares_clients () =
  let e = Engine.create () in
  let net = make_test_net e in
  let got = ref 0 in
  Bftnet.Network.register_node net 2 (fun _ -> incr got);
  let _inj =
    Injector.install (null_hooks e net) ~seed:9L
      [ { Fault.at = Time.zero; until = Time.ms 100; kind = Fault.Partition { group = [ 2 ] } } ]
  in
  ignore
    (Engine.at e (Time.ms 10) (fun () ->
         Bftnet.Network.send net ~src:(Bftcrypto.Principal.client 0)
           ~dst:(principal 2) ~size:8 "req"));
  Engine.run e;
  Alcotest.(check int) "client reaches partitioned node" 1 !got

let link_plan rates =
  [
    {
      Fault.at = Time.zero;
      until = Time.sec 10;
      kind = Fault.Link_chaos { src = None; dst = Some 1; rates };
    };
  ]

let count_link_deliveries rates =
  let e = Engine.create () in
  let net = make_test_net e in
  let total = ref 0 and corrupted = ref 0 in
  Bftnet.Network.register_node net 1 (fun d ->
      incr total;
      if d.Bftnet.Network.corrupted then incr corrupted);
  let _inj = Injector.install (null_hooks e net) ~seed:3L (link_plan rates) in
  (* Send after the engine has processed the activation event at t=0. *)
  ignore
    (Engine.at e (Time.ms 1) (fun () ->
         for _ = 1 to 50 do
           Bftnet.Network.send net ~src:(principal 0) ~dst:(principal 1) ~size:8 "m"
         done));
  Engine.run e;
  (!total, !corrupted)

let test_injector_link_rates () =
  let drop_all = { Fault.benign_rates with Fault.drop = 1.0 } in
  Alcotest.(check (pair int int)) "drop everything" (0, 0) (count_link_deliveries drop_all);
  let dup_all = { Fault.benign_rates with Fault.duplicate = 1.0 } in
  Alcotest.(check (pair int int)) "duplicate everything" (100, 0)
    (count_link_deliveries dup_all);
  let corrupt_all = { Fault.benign_rates with Fault.corrupt = 1.0 } in
  Alcotest.(check (pair int int)) "corrupt everything" (50, 50)
    (count_link_deliveries corrupt_all)

let test_injector_delay () =
  let e = Engine.create () in
  let net = make_test_net e in
  let arrival = ref Time.zero in
  Bftnet.Network.register_node net 1 (fun _ -> arrival := Engine.now e);
  let _inj =
    Injector.install (null_hooks e net) ~seed:3L
      (link_plan { Fault.benign_rates with Fault.delay = Time.ms 5 })
  in
  ignore
    (Engine.at e (Time.ms 1) (fun () ->
         Bftnet.Network.send net ~src:(principal 0) ~dst:(principal 1) ~size:8 "m"));
  Engine.run e;
  Alcotest.(check bool) "extra delay applied" true
    (!arrival >= Time.add (Time.ms 1) (Time.ms 5))

let test_injector_heal () =
  let e = Engine.create () in
  let net = make_test_net e in
  let got = ref 0 in
  Bftnet.Network.register_node net 1 (fun _ -> incr got);
  let inj =
    Injector.install (null_hooks e net) ~seed:3L
      (link_plan { Fault.benign_rates with Fault.drop = 1.0 })
  in
  Injector.heal inj;
  Bftnet.Network.send net ~src:(principal 0) ~dst:(principal 1) ~size:8 "m";
  Engine.run e;
  Alcotest.(check int) "heal clears the hook" 1 !got

(* ------------------------------------------------------------------ *)
(* Runner: oracles over whole scenario runs                           *)
(* ------------------------------------------------------------------ *)

let base_scenario ?(name = "test") ?(protocol = Scenario.Rbft) ?(faults = []) () =
  {
    Scenario.name;
    protocol;
    f = 1;
    seed = 42L;
    duration = Time.ms 500;
    drain = Time.sec 1;
    workload = { Scenario.clients = 2; rate = 60.0; payload = 8 };
    faults;
    lambda = Time.zero;
    mutation = None;
  }

let test_runner_fault_free () =
  Array.iter
    (fun protocol ->
      let r = Runner.run (base_scenario ~protocol ()) in
      Alcotest.(check bool)
        (Scenario.protocol_name protocol ^ " fault-free ok")
        true (Runner.ok r);
      Alcotest.(check bool)
        (Scenario.protocol_name protocol ^ " made progress")
        true (r.Runner.sent > 0))
    Scenario.all_protocols

let test_runner_crash_rejoin () =
  (* One crash within f: the cluster stays live through it and the
     rejoining node catches up via checkpoint state transfer, so every
     request completes by the end of the drain. *)
  let faults =
    [ { Fault.at = Time.ms 100; until = Time.ms 300; kind = Fault.Crash { node = 2 } } ]
  in
  let r = Runner.run (base_scenario ~name:"crash-rejoin" ~faults ()) in
  Alcotest.(check bool) "ok through crash+rejoin" true (Runner.ok r)

let test_runner_deterministic_digest () =
  let s = base_scenario ~name:"digest"
      ~faults:
        [ { Fault.at = Time.ms 100; until = Time.ms 300; kind = Fault.Crash { node = 2 } } ]
      ()
  in
  let d1 = (Runner.run ~capture:true s).Runner.digest in
  let d2 = (Runner.run ~capture:true s).Runner.digest in
  Alcotest.(check bool) "digest present" true (d1 <> None);
  Alcotest.(check bool) "same scenario, same digest" true (d1 = d2)

let test_runner_digest_stable_under_heavy_ties () =
  (* A saturating workload makes broadcast fan-outs pile onto identical
     timestamps, so nearly every event pop is a heap tie. Only the
     total (key, seq) order keeps two identical runs bit-identical —
     this pins that down at the audit-digest level. *)
  let s =
    {
      (base_scenario ~name:"ties" ()) with
      Scenario.duration = Time.ms 200;
      workload = { Scenario.clients = 4; rate = 400.0; payload = 8 };
    }
  in
  let d1 = (Runner.run ~capture:true s).Runner.digest in
  let d2 = (Runner.run ~capture:true s).Runner.digest in
  Alcotest.(check bool) "digest present" true (d1 <> None);
  Alcotest.(check bool) "tie-heavy runs replay identically" true (d1 = d2)

let test_runner_ic_quorum_mutation_violates () =
  (* The model checker's planted bug: with [ic-quorum-low] a single
     vote triggers an instance change, which the instance-change-quorum
     invariant flags. A tight Λ guarantees organic votes. *)
  let s =
    {
      (base_scenario ~name:"ic-quorum-low" ()) with
      Scenario.duration = Time.ms 300;
      workload = { Scenario.clients = 2; rate = 200.0; payload = 8 };
      lambda = Time.us 300;
      mutation = Some Scenario.Ic_quorum_low;
    }
  in
  let r = Runner.run s in
  Alcotest.(check bool) "safety violated" true (r.Runner.safety_violations <> []);
  Alcotest.(check bool) "the planted invariant fires" true
    (List.exists
       (fun v -> v.Bftaudit.Auditor.invariant = "instance-change-quorum")
       r.Runner.safety_violations);
  (* And deterministically: the replay contract behind .scn repros. *)
  let r2 = Runner.run s in
  Alcotest.(check string) "same invariant digest on replay"
    (Bftaudit.Auditor.invariant_digest r.Runner.safety_violations)
    (Bftaudit.Auditor.invariant_digest r2.Runner.safety_violations)

(* Satellite: monitoring verdicts under mild injected skew. A correct
   master that is merely a bit slow (clock 1.2x, one backup CPU 0.9x,
   extra network delay) must not trigger spurious instance changes. *)
let test_monitoring_no_spurious_ic_under_mild_skew () =
  let params = Rbft.Params.default ~f:1 in
  let cluster = Rbft.Cluster.create ~seed:7L ~clients:2 ~payload_size:8 params in
  let net = Rbft.Cluster.network cluster in
  let hooks =
    {
      Injector.engine = Rbft.Cluster.engine cluster;
      n = 4;
      set_fault_hook = Bftnet.Network.set_fault_hook net;
      set_cpu_factor =
        (fun ~node k -> Rbft.Node.set_cpu_factor (Rbft.Cluster.node cluster node) k);
      set_clock_factor =
        (fun ~node k -> Rbft.Node.set_clock_factor (Rbft.Cluster.node cluster node) k);
    }
  in
  let plan =
    [
      { Fault.at = Time.ms 50; until = Time.ms 900; kind = Fault.Clock_skew { node = 1; factor = 1.2 } };
      { Fault.at = Time.ms 50; until = Time.ms 900; kind = Fault.Cpu_skew { node = 2; factor = 0.9 } };
      {
        Fault.at = Time.ms 50;
        until = Time.ms 900;
        kind =
          Fault.Link_chaos
            {
              src = None;
              dst = None;
              rates = { Fault.benign_rates with Fault.delay = Time.us 200; jitter = Time.us 100 };
            };
      };
    ]
  in
  let inj = Injector.install hooks ~seed:7L plan in
  Array.iter (fun c -> Rbft.Client.set_rate c 30.0) (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.sec 1);
  Injector.heal inj;
  Array.iter (fun c -> Rbft.Client.set_rate c 0.0) (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.ms 500);
  Array.iter
    (fun node ->
      Alcotest.(check int)
        (Printf.sprintf "node %d: no instance change" (Rbft.Node.id node))
        0
        (Rbft.Node.instance_changes node))
    (Rbft.Cluster.nodes cluster);
  Alcotest.(check bool) "progress under mild skew" true
    (Rbft.Cluster.total_executed cluster > 0)

(* ------------------------------------------------------------------ *)
(* Oracle self-tests: injected bugs must be caught                    *)
(* ------------------------------------------------------------------ *)

let test_oracle_catches_double_execution () =
  Bftaudit.Auditor.reset_declared ();
  let auditor = Bftaudit.Auditor.attach ~raise_on_violation:false ~n:4 ~f:1 () in
  let ev rid =
    {
      Bftaudit.Event.time = Time.ms 1;
      node = 1;
      instance = 0;
      kind = Bftaudit.Event.Executed { client = 0; rid; digest = "d" };
    }
  in
  Bftaudit.Bus.emit (ev 1);
  Bftaudit.Bus.emit (ev 1);
  let violations = Bftaudit.Auditor.violations auditor in
  Bftaudit.Auditor.detach auditor;
  Alcotest.(check bool) "double execution flagged" true
    (List.exists
       (fun v -> v.Bftaudit.Auditor.invariant = "double-execution")
       violations)

let over_f_crash_scenario () =
  (* Two nodes crashed with f = 1: quorum is impossible while both are
     down, and requests sent meanwhile are never retransmitted, so the
     liveness oracle must flag the run. Extra benign faults ride along
     for the shrinker to strip. *)
  base_scenario ~name:"over-f"
    ~faults:
      [
        { Fault.at = Time.ms 50; until = Time.ms 450; kind = Fault.Crash { node = 1 } };
        { Fault.at = Time.ms 50; until = Time.ms 450; kind = Fault.Crash { node = 2 } };
        {
          Fault.at = Time.ms 100;
          until = Time.ms 200;
          kind = Fault.Cpu_skew { node = 3; factor = 0.9 };
        };
        {
          Fault.at = Time.ms 100;
          until = Time.ms 200;
          kind =
            Fault.Link_chaos
              { src = None; dst = None; rates = { Fault.benign_rates with Fault.duplicate = 0.1 } };
        };
      ]
    ()

let test_oracle_flags_over_f_crashes () =
  let r = Runner.run (over_f_crash_scenario ()) in
  Alcotest.(check bool) "safety holds" true (Runner.safety_ok r);
  Alcotest.(check bool) "liveness violated" false (Runner.liveness_ok r);
  Alcotest.(check bool) "run judged failing" false (Runner.ok r)

(* ------------------------------------------------------------------ *)
(* Shrinker                                                           *)
(* ------------------------------------------------------------------ *)

let test_shrink_minimizes () =
  let s = over_f_crash_scenario () in
  let still_fails c = not (Runner.ok (Runner.run c)) in
  Alcotest.(check bool) "seed scenario fails" true (still_fails s);
  let shrunk, spent = Shrink.minimize ~budget:120 still_fails s in
  Alcotest.(check bool) "budget respected" true (spent <= 120);
  Alcotest.(check bool) "still failing" true (still_fails shrunk);
  (* The benign riders are strippable; both crashes are needed (one
     crash is within f and survivable), so exactly two faults remain. *)
  Alcotest.(check int) "only the two crashes remain" 2
    (List.length shrunk.Scenario.faults);
  List.iter
    (fun (f : Fault.t) ->
      match f.Fault.kind with
      | Fault.Crash _ -> ()
      | k -> Alcotest.failf "unexpected surviving fault: %s" (Fault.describe { f with Fault.kind = k }))
    shrunk.Scenario.faults;
  (* The minimized repro replays deterministically. *)
  let d1 = (Runner.run ~capture:true shrunk).Runner.digest in
  let d2 = (Runner.run ~capture:true shrunk).Runner.digest in
  Alcotest.(check bool) "repro digest stable" true (d1 = d2 && d1 <> None)

(* ------------------------------------------------------------------ *)
(* Explorer                                                           *)
(* ------------------------------------------------------------------ *)

let test_explorer_sweep_clean () =
  let grammar =
    {
      Explorer.default_grammar with
      Explorer.duration = Time.ms 400;
      drain = Time.sec 1;
      rate = 60.0;
    }
  in
  let sweep = Explorer.sweep ~grammar ~seed:42L ~count:15 () in
  Alcotest.(check int) "all scenarios pass" 15 sweep.Explorer.passed;
  Alcotest.(check bool) "no failures" true (sweep.Explorer.failures = [])

let test_explorer_deterministic () =
  let sample seed =
    let sweep = Explorer.sweep ~seed ~count:0 () in
    ignore sweep;
    (* Sampling itself is exercised through a tiny sweep with a
       recorded scenario list via the progress callback. *)
    let seen = ref [] in
    let _ =
      Explorer.sweep
        ~grammar:{ Explorer.default_grammar with Explorer.duration = Time.ms 100; drain = Time.ms 300; rate = 20.0 }
        ~progress:(fun r -> seen := r.Runner.scenario :: !seen)
        ~seed ~count:3 ()
    in
    !seen
  in
  Alcotest.(check bool) "same seed, same scenarios" true (sample 5L = sample 5L)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "chaos.sexp",
      [
        Alcotest.test_case "basic round trip" `Quick test_sexp_basic;
        Alcotest.test_case "atom quoting" `Quick test_sexp_quoting;
        Alcotest.test_case "comments" `Quick test_sexp_comments;
        Alcotest.test_case "parse errors" `Quick test_sexp_errors;
      ] );
    ( "chaos.scenario",
      [
        Alcotest.test_case "single-node partition group" `Quick
          test_scenario_single_node_group;
      ]
      @ qsuite [ prop_scenario_roundtrip ] );
    ( "chaos.sim",
      [
        Alcotest.test_case "clock factor scales timers" `Quick test_clock_factor;
        Alcotest.test_case "resource speed scales cost" `Quick test_resource_speed;
      ] );
    ( "chaos.injector",
      [
        Alcotest.test_case "crash isolates a node" `Quick test_injector_crash_blocks;
        Alcotest.test_case "partition cuts the mesh" `Quick test_injector_partition;
        Alcotest.test_case "partition spares clients" `Quick
          test_injector_partition_spares_clients;
        Alcotest.test_case "drop/duplicate/corrupt rates" `Quick test_injector_link_rates;
        Alcotest.test_case "extra delay" `Quick test_injector_delay;
        Alcotest.test_case "heal clears faults" `Quick test_injector_heal;
      ] );
    ( "chaos.runner",
      [
        Alcotest.test_case "fault-free baselines" `Slow test_runner_fault_free;
        Alcotest.test_case "crash and rejoin" `Quick test_runner_crash_rejoin;
        Alcotest.test_case "deterministic digest" `Quick test_runner_deterministic_digest;
        Alcotest.test_case "digest stable under heavy ties" `Quick
          test_runner_digest_stable_under_heavy_ties;
        Alcotest.test_case "ic-quorum mutation caught" `Quick
          test_runner_ic_quorum_mutation_violates;
        Alcotest.test_case "no spurious instance change under mild skew" `Quick
          test_monitoring_no_spurious_ic_under_mild_skew;
      ] );
    ( "chaos.oracle",
      [
        Alcotest.test_case "double execution caught" `Quick
          test_oracle_catches_double_execution;
        Alcotest.test_case "over-f crashes flagged" `Quick test_oracle_flags_over_f_crashes;
      ] );
    ( "chaos.shrink",
      [ Alcotest.test_case "minimizes to the two crashes" `Slow test_shrink_minimizes ] );
    ( "chaos.explore",
      [
        Alcotest.test_case "mini sweep is clean" `Slow test_explorer_sweep_clean;
        Alcotest.test_case "sampling is deterministic" `Quick test_explorer_deterministic;
      ] );
  ]
