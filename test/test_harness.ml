(* Tests for the experiment harness utilities and the attack library. *)

open Dessim
open Bftharness

(* ------------------------------------------------------------------ *)
(* Calibration                                                        *)
(* ------------------------------------------------------------------ *)

let test_calibrate_anchors () =
  let p8 = Calibrate.peak_rate Calibrate.Rbft ~size:8 in
  let p4k = Calibrate.peak_rate Calibrate.Rbft ~size:4096 in
  Alcotest.(check bool) "8B above 4kB" true (p8 > p4k);
  (* Interpolation is monotone in size. *)
  let prev = ref p8 in
  List.iter
    (fun size ->
      let p = Calibrate.peak_rate Calibrate.Rbft ~size in
      Alcotest.(check bool) (Printf.sprintf "monotone at %d" size) true (p <= !prev);
      prev := p)
    [ 64; 512; 1024; 2048; 4096 ]

let test_calibrate_orderings () =
  (* The paper's fault-free ordering at 8B: Spinning > RBFT > Prime. *)
  let peak p = Calibrate.peak_rate p ~size:8 in
  Alcotest.(check bool) "spinning fastest" true
    (peak Calibrate.Spinning > peak Calibrate.Rbft);
  Alcotest.(check bool) "prime slowest" true (peak Calibrate.Prime < peak Calibrate.Rbft);
  (* And at 4kB: RBFT > Aardvark (identifier ordering wins). *)
  Alcotest.(check bool) "rbft beats aardvark at 4kB" true
    (Calibrate.peak_rate Calibrate.Rbft ~size:4096
     > Calibrate.peak_rate Calibrate.Aardvark ~size:4096)

let test_calibrate_f2_scales_down () =
  List.iter
    (fun proto ->
      Alcotest.(check bool)
        (Calibrate.name proto ^ " f=2 slower")
        true
        (Calibrate.peak_rate ~f:2 proto ~size:8 < Calibrate.peak_rate ~f:1 proto ~size:8))
    [ Calibrate.Rbft; Calibrate.Aardvark; Calibrate.Spinning; Calibrate.Prime ]

let test_saturating_vs_peak () =
  (* RBFT is driven slightly above peak, the collapse-prone baselines
     slightly below. *)
  Alcotest.(check bool) "rbft above" true
    (Calibrate.saturating_rate Calibrate.Rbft ~size:8
     > Calibrate.peak_rate Calibrate.Rbft ~size:8);
  List.iter
    (fun proto ->
      Alcotest.(check bool)
        (Calibrate.name proto ^ " below")
        true
        (Calibrate.saturating_rate proto ~size:8 < Calibrate.peak_rate proto ~size:8))
    [ Calibrate.Aardvark; Calibrate.Spinning; Calibrate.Prime ]

(* ------------------------------------------------------------------ *)
(* Report                                                             *)
(* ------------------------------------------------------------------ *)

let test_report_formatters () =
  Alcotest.(check string) "pct" "97.0%" (Report.pct 0.97);
  Alcotest.(check string) "kreq" "35.1" (Report.kreq 35_100.0);
  Alcotest.(check string) "f1" "1.5" (Report.f1 1.49);
  Alcotest.(check string) "f2" "1.49" (Report.f2 1.49)

let test_report_print_smoke () =
  (* Printing must not raise, including ragged rows. *)
  Report.print
    {
      Report.id = "test";
      title = "smoke";
      columns = [ "a"; "b" ];
      rows = [ [ "1" ]; [ "22"; "333"; "4444" ] ];
      notes = [ "note" ];
    }

(* ------------------------------------------------------------------ *)
(* Attacks                                                            *)
(* ------------------------------------------------------------------ *)

let test_worst_attack_1_configures () =
  let params = Rbft.Params.default ~f:1 in
  let cluster = Rbft.Cluster.create ~clients:2 params in
  Rbft.Attacks.worst_attack_1 cluster;
  (* Faulty node is node 3; master primary node is node 0. *)
  let faults = Rbft.Node.faults (Rbft.Cluster.node cluster 3) in
  Alcotest.(check (list int)) "floods the master primary node" [ 0 ]
    faults.Rbft.Node.flood_targets;
  Alcotest.(check bool) "does not propagate" true faults.Rbft.Node.no_propagate;
  Alcotest.(check bool) "master replica silent" true
    (Pbftcore.Replica.adversary (Rbft.Node.replica (Rbft.Cluster.node cluster 3) ~instance:0))
      .Pbftcore.Replica.silent;
  (* Clients' authenticators broken for node 0 only. *)
  Alcotest.(check (list int)) "client macs" [ 0 ]
    (Rbft.Client.behaviour (Rbft.Cluster.client cluster 0)).Rbft.Client.mac_invalid_for

let test_worst_attack_2_configures () =
  let params = Rbft.Params.default ~f:1 in
  let cluster = Rbft.Cluster.create ~clients:2 params in
  Rbft.Attacks.worst_attack_2 cluster;
  let faults = Rbft.Node.faults (Rbft.Cluster.node cluster 0) in
  Alcotest.(check (list int)) "floods correct nodes" [ 1; 2; 3 ]
    (List.sort compare faults.Rbft.Node.flood_targets);
  Alcotest.(check bool) "backup replica silent" true
    (Pbftcore.Replica.adversary (Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:1))
      .Pbftcore.Replica.silent;
  Alcotest.(check bool) "master replica NOT silent (it is the attacker's tool)" false
    (Pbftcore.Replica.adversary (Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:0))
      .Pbftcore.Replica.silent

let test_worst_attack_2_contained_end_to_end () =
  (* The containment claim of Figure 10 at small scale: under the full
     worst-attack-2, throughput within the Delta envelope and no
     instance change. *)
  let params = Rbft.Params.default ~f:1 in
  let run attack =
    let cluster = Rbft.Cluster.create ~clients:10 params in
    Array.iter (fun c -> Rbft.Client.set_rate c 3300.0) (Rbft.Cluster.clients cluster);
    if attack then Rbft.Attacks.worst_attack_2 cluster;
    Rbft.Cluster.run_for cluster (Time.sec 2);
    let counter = Rbft.Node.executed_counter (Rbft.Cluster.node cluster 1) in
    ( Bftmetrics.Throughput.rate_between counter (Time.ms 500) (Time.sec 2),
      Rbft.Node.instance_changes (Rbft.Cluster.node cluster 1) )
  in
  let ff, _ = run false in
  let att, changes = run true in
  Alcotest.(check int) "no instance change" 0 changes;
  let rel = att /. ff in
  Alcotest.(check bool)
    (Printf.sprintf "loss within the envelope (relative %.3f)" rel)
    true
    (rel > 0.90 && rel < 1.02)

let test_unfair_primary_configures () =
  let params = Rbft.Params.default ~f:1 in
  let cluster = Rbft.Cluster.create ~clients:2 params in
  Rbft.Attacks.unfair_primary cluster ~node:0 ~target_client:1 ~after_requests:0
    ~hold:(Time.ms 2);
  let adv =
    Pbftcore.Replica.adversary (Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:0)
  in
  Alcotest.(check int) "target held" (Time.ms 2)
    (adv.Pbftcore.Replica.client_hold { Pbftcore.Types.client = 1; rid = 5 });
  Alcotest.(check int) "others untouched" Time.zero
    (adv.Pbftcore.Replica.client_hold { Pbftcore.Types.client = 0; rid = 5 })

(* ------------------------------------------------------------------ *)
(* Load shape end-to-end through a cluster                            *)
(* ------------------------------------------------------------------ *)

let test_dynamic_shape_drives_cluster () =
  let params = Rbft.Params.default ~f:1 in
  let shape = Bftworkload.Loadshape.paper_dynamic ~step:(Time.ms 100) ~rate:200.0 () in
  let cluster =
    Rbft.Cluster.create ~clients:(Bftworkload.Loadshape.max_clients shape) params
  in
  Bftworkload.Loadshape.apply (Rbft.Cluster.engine cluster) shape
    ~set_rate:(fun c r -> Rbft.Client.set_rate (Rbft.Cluster.client cluster c) r);
  let total = Bftworkload.Loadshape.total_duration shape in
  Rbft.Cluster.run_for cluster (Time.add total (Time.ms 500));
  let executed = Rbft.Cluster.total_executed cluster in
  let offered = Bftworkload.Loadshape.offered_total shape in
  Alcotest.(check bool)
    (Printf.sprintf "executed %d of ~%.0f offered" executed offered)
    true
    (float_of_int executed > 0.85 *. offered);
  Alcotest.(check bool) "agreement" true (Rbft.Cluster.agreement_ok cluster ~faulty:[])

let suites =
  [
    ( "harness.calibrate",
      [
        Alcotest.test_case "anchors and interpolation" `Quick test_calibrate_anchors;
        Alcotest.test_case "paper orderings" `Quick test_calibrate_orderings;
        Alcotest.test_case "f=2 scaling" `Quick test_calibrate_f2_scales_down;
        Alcotest.test_case "saturating rates" `Quick test_saturating_vs_peak;
      ] );
    ( "harness.report",
      [
        Alcotest.test_case "formatters" `Quick test_report_formatters;
        Alcotest.test_case "print smoke" `Quick test_report_print_smoke;
      ] );
    ( "rbft.attack-library",
      [
        Alcotest.test_case "worst-attack-1 wiring" `Quick test_worst_attack_1_configures;
        Alcotest.test_case "worst-attack-2 wiring" `Quick test_worst_attack_2_configures;
        Alcotest.test_case "worst-attack-2 contained" `Quick
          test_worst_attack_2_contained_end_to_end;
        Alcotest.test_case "unfair primary wiring" `Quick test_unfair_primary_configures;
      ] );
    ( "harness.endtoend",
      [
        Alcotest.test_case "dynamic shape drives a cluster" `Quick
          test_dynamic_shape_drives_cluster;
      ] );
  ]
