(* Tests for the cryptographic substrate: standard vectors for SHA-256
   and HMAC-SHA-256, key-registry behaviour and cost-model sanity. *)

open Bftcrypto

let check_hex msg expected digest =
  Alcotest.(check string) msg expected (Sha256.to_hex digest)

(* FIPS 180-4 / NIST CAVP test vectors. *)
let test_sha256_vectors () =
  check_hex "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_string "");
  check_hex "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_string "abc");
  check_hex "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "896-bit"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.digest_string
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu");
  check_hex "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_string (String.make 1_000_000 'a'))

let test_sha256_block_boundaries () =
  (* Lengths around the 55/56/64-byte padding boundaries exercise the
     message-padding logic. *)
  let reference = [
    (55, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
    (56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
    (57, "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6");
    (63, "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34");
    (64, "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
    (65, "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0");
  ]
  in
  List.iter
    (fun (n, expected) ->
      check_hex (string_of_int n) expected (Sha256.digest_string (String.make n 'a')))
    reference

let test_sha256_substring () =
  let s = "xxabcyy" in
  Alcotest.(check string) "substring matches standalone"
    (Sha256.to_hex (Sha256.digest_string "abc"))
    (Sha256.to_hex (Sha256.digest_substring s ~pos:2 ~len:3))

let test_sha256_bytes_string_agree () =
  let payload = "the quick brown fox" in
  Alcotest.(check string) "bytes = string"
    (Sha256.to_hex (Sha256.digest_string payload))
    (Sha256.to_hex (Sha256.digest_bytes (Bytes.of_string payload)))

(* RFC 4231 test vectors for HMAC-SHA-256. *)
let test_hmac_vectors () =
  let hex s = Sha256.to_hex s in
  Alcotest.(check string) "rfc4231 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There"));
  Alcotest.(check string) "rfc4231 case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"));
  Alcotest.(check string) "rfc4231 case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (hex (Hmac.mac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')));
  (* Case 6: key longer than one block. *)
  Alcotest.(check string) "rfc4231 case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex
       (Hmac.mac
          ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_truncated_verify () =
  let key = "secret" and msg = "payload" in
  let tag = Hmac.mac_truncated ~key ~len:8 msg in
  Alcotest.(check int) "tag length" 8 (String.length tag);
  Alcotest.(check bool) "verifies" true (Hmac.verify ~key ~tag msg);
  Alcotest.(check bool) "rejects other message" false (Hmac.verify ~key ~tag "other");
  Alcotest.(check bool) "rejects other key" false (Hmac.verify ~key:"wrong" ~tag msg)

let test_principal_ordering () =
  let open Principal in
  Alcotest.(check bool) "node < client" true (compare (node 5) (client 0) < 0);
  Alcotest.(check bool) "node order" true (compare (node 1) (node 2) < 0);
  Alcotest.(check bool) "equal" true (equal (client 3) (client 3));
  Alcotest.(check string) "pp node" "node2" (to_string (node 2));
  Alcotest.(check string) "pp client" "client7" (to_string (client 7));
  Alcotest.(check bool) "encode distinct" true (encode (node 1) <> encode (client 1))

let test_keys_pair_symmetric () =
  let keys = Keys.create ~master:"m" in
  let a = Principal.node 0 and b = Principal.client 4 in
  Alcotest.(check string) "symmetric" (Keys.pair_key keys a b) (Keys.pair_key keys b a);
  Alcotest.(check bool) "distinct pairs" true
    (Keys.pair_key keys a b <> Keys.pair_key keys a (Principal.client 5))

let test_keys_deterministic () =
  let k1 = Keys.create ~master:"seed" and k2 = Keys.create ~master:"seed" in
  let a = Principal.node 1 and b = Principal.node 2 in
  Alcotest.(check string) "same master same keys" (Keys.pair_key k1 a b) (Keys.pair_key k2 a b);
  let k3 = Keys.create ~master:"other" in
  Alcotest.(check bool) "different master different keys" true
    (Keys.pair_key k1 a b <> Keys.pair_key k3 a b)

let test_signature_roundtrip () =
  let keys = Keys.create ~master:"m" in
  let signer = Principal.client 1 in
  let signature = Keys.sign keys ~signer "request body" in
  Alcotest.(check int) "size" Keys.signature_size (String.length signature);
  Alcotest.(check bool) "verifies" true
    (Keys.verify_signature keys ~signer ~signature "request body");
  Alcotest.(check bool) "wrong message" false
    (Keys.verify_signature keys ~signer ~signature "tampered");
  Alcotest.(check bool) "wrong signer" false
    (Keys.verify_signature keys ~signer:(Principal.client 2) ~signature "request body")

let test_mac_roundtrip () =
  let keys = Keys.create ~master:"m" in
  let src = Principal.client 0 and dst = Principal.node 3 in
  let tag = Keys.mac keys ~src ~dst "msg" in
  Alcotest.(check int) "tag size" Keys.mac_tag_size (String.length tag);
  Alcotest.(check bool) "verifies" true (Keys.verify_mac keys ~src ~dst ~tag "msg");
  Alcotest.(check bool) "direction-insensitive key" true
    (Keys.verify_mac keys ~src:dst ~dst:src ~tag "msg");
  Alcotest.(check bool) "wrong peer" false
    (Keys.verify_mac keys ~src ~dst:(Principal.node 1) ~tag "msg")

let test_authenticator () =
  let keys = Keys.create ~master:"m" in
  let src = Principal.client 0 in
  let all = List.init 4 Principal.node in
  let auth = Keys.authenticator keys ~src ~all "msg" in
  Alcotest.(check int) "one tag per node" 4 (List.length auth);
  List.iter
    (fun (dst, tag) ->
      Alcotest.(check bool)
        (Printf.sprintf "entry for %s verifies" (Principal.to_string dst))
        true
        (Keys.verify_mac keys ~src ~dst ~tag "msg"))
    auth

let test_costmodel_ratios () =
  let open Costmodel in
  let m = default in
  let mac = mac_verify m ~bytes:8 and sgn = sig_verify m ~bytes:8 in
  Alcotest.(check bool)
    "signature an order of magnitude above MAC (paper, Sec. VI-B)" true
    (sgn >= 10 * mac);
  Alcotest.(check bool) "bigger messages cost more" true
    (mac_verify m ~bytes:4096 > mac_verify m ~bytes:8);
  Alcotest.(check bool) "recv grows with size" true
    (recv m ~bytes:4096 > recv m ~bytes:8)

let test_costmodel_scale () =
  let open Costmodel in
  let doubled = scale default 2.0 in
  Alcotest.(check int) "mac doubles" (2 * mac_gen default ~bytes:0) (mac_gen doubled ~bytes:0);
  Alcotest.(check int) "sig doubles"
    (2 * default.sig_verify_base) doubled.sig_verify_base

let prop_hmac_key_sensitivity =
  QCheck.Test.make ~name:"hmac differs across keys"
    QCheck.(pair string string)
    (fun (k, msg) ->
      let k' = k ^ "x" in
      Hmac.mac ~key:k msg <> Hmac.mac ~key:k' msg)

let prop_sha256_injective_on_samples =
  QCheck.Test.make ~name:"sha256 distinguishes distinct strings"
    QCheck.(pair string string)
    (fun (a, b) ->
      a = b || Sha256.digest_string a <> Sha256.digest_string b)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "crypto.sha256",
      [
        Alcotest.test_case "standard vectors" `Quick test_sha256_vectors;
        Alcotest.test_case "padding boundaries" `Quick test_sha256_block_boundaries;
        Alcotest.test_case "substring" `Quick test_sha256_substring;
        Alcotest.test_case "bytes/string agree" `Quick test_sha256_bytes_string_agree;
      ]
      @ qsuite [ prop_sha256_injective_on_samples ] );
    ( "crypto.hmac",
      [
        Alcotest.test_case "rfc4231 vectors" `Quick test_hmac_vectors;
        Alcotest.test_case "truncation and verify" `Quick test_hmac_truncated_verify;
      ]
      @ qsuite [ prop_hmac_key_sensitivity ] );
    ( "crypto.keys",
      [
        Alcotest.test_case "principal ordering" `Quick test_principal_ordering;
        Alcotest.test_case "pair keys symmetric" `Quick test_keys_pair_symmetric;
        Alcotest.test_case "deterministic derivation" `Quick test_keys_deterministic;
        Alcotest.test_case "signature roundtrip" `Quick test_signature_roundtrip;
        Alcotest.test_case "mac roundtrip" `Quick test_mac_roundtrip;
        Alcotest.test_case "authenticator" `Quick test_authenticator;
      ] );
    ( "crypto.costmodel",
      [
        Alcotest.test_case "paper cost ratios" `Quick test_costmodel_ratios;
        Alcotest.test_case "scaling" `Quick test_costmodel_scale;
      ] );
  ]
