(* Tests for bftdoctor: flight recorder, anomaly triggers, incident
   bundles and forensics.

   - ring: capacity, ordering, wraparound
   - triggers: edge debounce/cooldown, level arming/disarming
   - recorder: rings fed from the bus and the tracer close hook,
     sim-time watermarks, detach restores global state
   - synthetic trigger scenarios on a bare engine: liveness stall,
     p99 SLO breach, Δ-ratio near miss
   - bundles: write/load round trip, chained-digest verification,
     tamper detection, determinism
   - forged incident (worst1): flooding a live RBFT cluster must
     produce a bundle whose analysis attributes the attacking node,
     with a same-seed-identical digest *)

open Dessim
module Ring = Bftdoctor.Ring
module Trigger = Bftdoctor.Trigger
module Recorder = Bftdoctor.Recorder
module Bundle = Bftdoctor.Bundle
module Analyze = Bftdoctor.Analyze
module Doctor = Bftdoctor.Doctor
module Jmini = Bftdoctor.Jmini

let tmp_dir =
  let counter = ref 0 in
  fun name ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "bftdoctor-test-%d-%s-%d" (Unix.getpid ()) name !counter)
    in
    dir

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Ring                                                               *)
(* ------------------------------------------------------------------ *)

let test_ring () =
  let r = Ring.create 3 in
  Alcotest.(check (list int)) "empty" [] (Ring.to_list r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check (list int)) "partial, oldest first" [ 1; 2 ] (Ring.to_list r);
  Ring.push r 3;
  Ring.push r 4;
  Alcotest.(check (list int)) "wraparound keeps newest" [ 2; 3; 4 ]
    (Ring.to_list r);
  Alcotest.(check int) "length is capacity" 3 (Ring.length r);
  Alcotest.(check int) "pushed counts everything" 4 (Ring.pushed r);
  Ring.clear r;
  Alcotest.(check (list int)) "cleared" [] (Ring.to_list r);
  Alcotest.(check int) "clear resets pushed" 0 (Ring.pushed r)

(* ------------------------------------------------------------------ *)
(* Triggers                                                           *)
(* ------------------------------------------------------------------ *)

let fire_names = function None -> "-" | Some (f : Trigger.fire) -> f.Trigger.name

let test_trigger_edge_cooldown () =
  let t = Trigger.make (Trigger.spec Trigger.Instance_change ~cooldown:(Time.ms 100)) in
  (* debounce 0: first occurrence fires at once *)
  Alcotest.(check string) "first edge fires" "instance-change"
    (fire_names (Trigger.edge t ~now:(Time.ms 10) ~reason:"a"));
  (* inside the cooldown window: discarded *)
  Alcotest.(check string) "cooldown discards" "-"
    (fire_names (Trigger.edge t ~now:(Time.ms 50) ~reason:"b"));
  Alcotest.(check string) "still in cooldown" "-"
    (fire_names (Trigger.edge t ~now:(Time.ms 109) ~reason:"c"));
  (* past the cooldown: fires again *)
  Alcotest.(check string) "fires after cooldown" "instance-change"
    (fire_names (Trigger.edge t ~now:(Time.ms 111) ~reason:"d"));
  Alcotest.(check int) "two fires total" 2 (Trigger.fires t)

let test_trigger_edge_debounce () =
  let t =
    Trigger.make
      (Trigger.spec Trigger.Auditor_violation ~debounce:(Time.ms 50)
         ~cooldown:(Time.ms 200))
  in
  (* occurrence arms but does not fire *)
  Alcotest.(check string) "arming edge silent" "-"
    (fire_names (Trigger.edge t ~now:(Time.ms 10) ~reason:"armed"));
  Alcotest.(check bool) "armed" true (Trigger.armed t);
  (* a ripen tick before the debounce elapses stays silent *)
  Alcotest.(check string) "early ripen silent" "-"
    (fire_names (Trigger.ripen t ~now:(Time.ms 40)));
  (* ripen past the debounce fires with the armed reason *)
  (match Trigger.ripen t ~now:(Time.ms 61) with
  | Some f ->
    Alcotest.(check string) "reason preserved" "armed" f.Trigger.reason;
    Alcotest.(check bool) "fire instant is the ripen tick" true
      (f.Trigger.at = Time.ms 61)
  | None -> Alcotest.fail "debounced edge did not fire");
  Alcotest.(check bool) "disarmed after fire" false (Trigger.armed t)

let test_trigger_level () =
  let t =
    Trigger.make
      (Trigger.spec
         (Trigger.Liveness_stall { idle = Time.ms 10 })
         ~debounce:(Time.ms 30) ~cooldown:(Time.ms 100))
  in
  let level now cond =
    fire_names (Trigger.level t ~now ~cond ~reason:"stall")
  in
  Alcotest.(check string) "false stays silent" "-" (level (Time.ms 10) false);
  Alcotest.(check string) "true arms" "-" (level (Time.ms 20) true);
  (* condition dropped: disarm, the clock restarts *)
  Alcotest.(check string) "false disarms" "-" (level (Time.ms 30) false);
  Alcotest.(check string) "re-arm" "-" (level (Time.ms 40) true);
  Alcotest.(check string) "held but debounce not elapsed" "-"
    (level (Time.ms 60) true);
  Alcotest.(check string) "held through debounce fires" "liveness-stall"
    (level (Time.ms 71) true);
  (* still true inside cooldown: no second fire *)
  Alcotest.(check string) "cooldown suppresses" "-" (level (Time.ms 120) true)

(* ------------------------------------------------------------------ *)
(* Recorder on a bare engine                                          *)
(* ------------------------------------------------------------------ *)

let with_recorder ?audit_cap ?span_cap ?roots_cap ?period f =
  let engine = Engine.create () in
  let registry = Bftmetrics.Registry.create () in
  let was_active = Bftmetrics.Registry.active () in
  let r =
    Recorder.attach ?audit_cap ?span_cap ?roots_cap ?period ~registry engine
  in
  Fun.protect
    ~finally:(fun () ->
      Recorder.detach r;
      if not was_active then Bftmetrics.Registry.disable ())
    (fun () -> f engine r)

let test_recorder_rings () =
  with_recorder ~audit_cap:4 (fun engine r ->
      Alcotest.(check bool) "recorder active" true (Recorder.active ());
      for i = 1 to 6 do
        ignore
          (Engine.at engine (Time.ms i) (fun () ->
               Bftaudit.Bus.emit_at (Time.ms i) ~node:i ~instance:0
                 (Bftaudit.Event.Executed
                    { client = 0; rid = i; digest = "d" })))
      done;
      Engine.run ~until:(Time.ms 10) engine;
      let nodes =
        List.map (fun (e : Bftaudit.Event.t) -> e.Bftaudit.Event.node)
          (Recorder.audit_events r)
      in
      Alcotest.(check (list int)) "ring keeps newest 4, oldest first"
        [ 3; 4; 5; 6 ] nodes;
      Alcotest.(check int) "events_seen counts all" 6 (Recorder.events_seen r);
      Alcotest.(check int) "executed watermark" 6 (Recorder.executed r);
      Alcotest.(check bool) "last_exec advanced" true
        (Recorder.last_exec r = Time.ms 6));
  Alcotest.(check bool) "recorder inactive after detach" false
    (Recorder.active ())

let test_recorder_span_ring () =
  Bftspan.Tracer.reset ();
  Bftspan.Tracer.enable ();
  Fun.protect
    ~finally:(fun () ->
      Bftspan.Tracer.disable ();
      Bftspan.Tracer.reset ())
    (fun () ->
      with_recorder (fun _engine r ->
          (* roots closed through the tracer hook land in both rings *)
          for rid = 1 to 3 do
            let id =
              Bftspan.Tracer.root ~client:0 ~rid ~node:(-1) ~instance:(-1)
                ~tag:Bftspan.Tag.Client ~t0:(Time.ms rid)
            in
            Bftspan.Tracer.finish id ~t1:(Time.ms (rid + 10))
          done;
          Alcotest.(check int) "spans recorded" 3
            (List.length (Recorder.spans r));
          let roots = Recorder.root_latencies r in
          Alcotest.(check int) "roots recorded" 3 (List.length roots);
          List.iter
            (fun (root : Recorder.root) ->
              Alcotest.(check bool) "latency 10ms" true
                (root.Recorder.r_latency = Time.ms 10))
            roots;
          let n, p99 = Recorder.p99_latency r in
          Alcotest.(check int) "window population" 3 n;
          Alcotest.(check bool) "p99 latency" true (p99 = Time.ms 10)));
  Alcotest.(check bool) "close hook restored" true
    (Bftspan.Tracer.close_hook () = None)

(* ------------------------------------------------------------------ *)
(* Synthetic trigger scenarios                                        *)
(* ------------------------------------------------------------------ *)

let with_doctor ?(triggers = Doctor.default_triggers) f =
  let engine = Engine.create () in
  let config = Doctor.default_config ~seed:7L ~triggers () in
  let d = Doctor.attach config engine in
  Fun.protect ~finally:(fun () -> Doctor.detach d) (fun () -> f engine d)

let trigger_names d =
  List.map (fun (i : Doctor.incident_ref) -> i.Doctor.i_trigger)
    (Doctor.incidents d)

let test_doctor_instance_change () =
  with_doctor (fun engine d ->
      ignore
        (Engine.at engine (Time.ms 42) (fun () ->
             Bftaudit.Bus.emit_at (Time.ms 42) ~node:1 ~instance:0
               (Bftaudit.Event.Instance_changed { cpi = 1; recovery = false })));
      Engine.run ~until:(Time.ms 50) engine;
      Alcotest.(check (list string)) "one instance-change incident"
        [ "instance-change" ] (trigger_names d);
      match Doctor.incidents d with
      | [ i ] ->
        Alcotest.(check bool) "fired at the event instant" true
          (i.Doctor.i_at = Time.ms 42);
        Alcotest.(check bool) "in-memory incident has a digest" true
          (String.length i.Doctor.i_digest = 64)
      | _ -> Alcotest.fail "expected exactly one incident")

let test_doctor_recovery_rotation_ignored () =
  with_doctor (fun engine d ->
      ignore
        (Engine.at engine (Time.ms 10) (fun () ->
             Bftaudit.Bus.emit_at (Time.ms 10) ~node:1 ~instance:0
               (Bftaudit.Event.Instance_changed { cpi = 1; recovery = true })));
      Engine.run ~until:(Time.ms 20) engine;
      Alcotest.(check (list string)) "recovery rotations do not fire" []
        (trigger_names d))

let test_doctor_liveness_stall () =
  let triggers =
    [
      Trigger.spec (Trigger.Liveness_stall { idle = Time.ms 300 })
        ~cooldown:(Time.sec 10);
    ]
  in
  with_doctor ~triggers (fun engine d ->
      (* a request arrives and is never executed *)
      ignore
        (Engine.at engine (Time.ms 50) (fun () ->
             Bftaudit.Bus.emit_at (Time.ms 50) ~node:0 ~instance:(-1)
               (Bftaudit.Event.Request_received
                  { client = 0; rid = 1; size = 8 })));
      Engine.run ~until:(Time.ms 250) engine;
      Alcotest.(check (list string)) "not yet idle long enough" []
        (trigger_names d);
      Engine.run ~until:(Time.sec 1) engine;
      Alcotest.(check (list string)) "stall fires once" [ "liveness-stall" ]
        (trigger_names d))

let test_doctor_no_stall_when_quiescent () =
  let triggers =
    [
      Trigger.spec (Trigger.Liveness_stall { idle = Time.ms 300 })
        ~cooldown:(Time.sec 10);
    ]
  in
  with_doctor ~triggers (fun engine d ->
      (* request arrives and IS executed: idle afterwards is fine *)
      ignore
        (Engine.at engine (Time.ms 50) (fun () ->
             Bftaudit.Bus.emit_at (Time.ms 50) ~node:0 ~instance:(-1)
               (Bftaudit.Event.Request_received
                  { client = 0; rid = 1; size = 8 });
             Bftaudit.Bus.emit_at (Time.ms 50) ~node:0 ~instance:0
               (Bftaudit.Event.Executed { client = 0; rid = 1; digest = "d" })));
      Engine.run ~until:(Time.sec 2) engine;
      Alcotest.(check (list string)) "quiescence is not a stall" []
        (trigger_names d))

let test_doctor_slo_p99 () =
  let triggers =
    [
      Trigger.spec
        (Trigger.Slo_p99 { threshold = Time.ms 50; min_count = 3 })
        ~cooldown:(Time.sec 10);
    ]
  in
  Bftspan.Tracer.reset ();
  Bftspan.Tracer.enable ();
  Fun.protect
    ~finally:(fun () ->
      Bftspan.Tracer.disable ();
      Bftspan.Tracer.reset ())
    (fun () ->
      with_doctor ~triggers (fun engine d ->
          let close_root rid latency =
            let id =
              Bftspan.Tracer.root ~client:0 ~rid ~node:(-1) ~instance:(-1)
                ~tag:Bftspan.Tag.Client ~t0:(Engine.now engine)
            in
            Bftspan.Tracer.finish id
              ~t1:(Time.add (Engine.now engine) latency)
          in
          ignore
            (Engine.at engine (Time.ms 10) (fun () ->
                 close_root 1 (Time.ms 80);
                 close_root 2 (Time.ms 90)));
          Engine.run ~until:(Time.ms 150) engine;
          Alcotest.(check (list string)) "below min_count stays silent" []
            (trigger_names d);
          ignore
            (Engine.at engine (Time.ms 160) (fun () ->
                 close_root 3 (Time.ms 100)));
          Engine.run ~until:(Time.ms 400) engine;
          Alcotest.(check (list string)) "p99 breach fires" [ "slo-p99" ]
            (trigger_names d)))

let test_doctor_delta_ratio_near () =
  let triggers =
    [
      Trigger.spec
        (Trigger.Delta_ratio_near { delta = 0.95; epsilon = 0.04 })
        ~debounce:(Time.ms 250) ~cooldown:(Time.sec 10);
    ]
  in
  let emit_verdict engine at master backup =
    ignore
      (Engine.at engine at (fun () ->
           Bftaudit.Bus.emit_at at ~node:0 ~instance:(-1)
             (Bftaudit.Event.Monitor_verdict
                {
                  master_rate = master;
                  backup_rate = backup;
                  suspicious = master < 0.95 *. backup;
                })))
  in
  (* healthy master (ratio 1.0): never fires *)
  with_doctor ~triggers (fun engine d ->
      for i = 1 to 8 do
        emit_verdict engine (Time.ms (100 * i)) 1000.0 1000.0
      done;
      Engine.run ~until:(Time.sec 1) engine;
      Alcotest.(check (list string)) "healthy ratio never arms" []
        (trigger_names d));
  (* skirting master (ratio 0.96, above delta, inside epsilon): fires *)
  with_doctor ~triggers (fun engine d ->
      for i = 1 to 8 do
        emit_verdict engine (Time.ms (100 * i)) 960.0 1000.0
      done;
      Engine.run ~until:(Time.sec 1) engine;
      Alcotest.(check (list string)) "Δ-envelope skirting fires"
        [ "delta-ratio-near" ] (trigger_names d));
  (* suspicious verdicts (ratio below delta) belong to instance change,
     not the near-miss trigger *)
  with_doctor ~triggers (fun engine d ->
      for i = 1 to 8 do
        emit_verdict engine (Time.ms (100 * i)) 500.0 1000.0
      done;
      Engine.run ~until:(Time.sec 1) engine;
      Alcotest.(check (list string)) "suspicious is not a near miss" []
        (trigger_names d))

let test_doctor_seq_stall () =
  let triggers =
    [
      Trigger.spec (Trigger.Seq_stall { age = Time.ms 125 })
        ~cooldown:(Time.sec 10);
    ]
  in
  let emit_sample engine at ~waiting_on ~age =
    ignore
      (Engine.at engine at (fun () ->
           Bftaudit.Bus.emit_at at ~node:2 ~instance:(-1)
             (Bftaudit.Event.Seq_stall { waiting_on; age; pending = 7 })))
  in
  (* an un-stalled merge (waiting_on = -1) never fires *)
  with_doctor ~triggers (fun engine d ->
      for i = 1 to 8 do
        emit_sample engine (Time.ms (100 * i)) ~waiting_on:(-1) ~age:Time.zero
      done;
      Engine.run ~until:(Time.sec 1) engine;
      Alcotest.(check (list string)) "flowing merge never arms" []
        (trigger_names d));
  (* a young stall stays below the bound *)
  with_doctor ~triggers (fun engine d ->
      for i = 1 to 8 do
        emit_sample engine (Time.ms (100 * i)) ~waiting_on:1 ~age:(Time.ms 50)
      done;
      Engine.run ~until:(Time.sec 1) engine;
      Alcotest.(check (list string)) "young stall stays silent" []
        (trigger_names d));
  (* a head-of-line stall past the bound fires once *)
  with_doctor ~triggers (fun engine d ->
      emit_sample engine (Time.ms 100) ~waiting_on:1 ~age:(Time.ms 40);
      emit_sample engine (Time.ms 200) ~waiting_on:1 ~age:(Time.ms 140);
      Engine.run ~until:(Time.sec 1) engine;
      Alcotest.(check (list string)) "head-of-line stall fires"
        [ "seq-stall" ] (trigger_names d))

let test_doctor_max_incidents () =
  let triggers =
    [ Trigger.spec Trigger.Instance_change ~cooldown:(Time.ms 1) ]
  in
  let engine = Engine.create () in
  let config =
    { (Doctor.default_config ~seed:7L ~triggers ()) with Doctor.max_incidents = 2 }
  in
  let d = Doctor.attach config engine in
  Fun.protect
    ~finally:(fun () -> Doctor.detach d)
    (fun () ->
      for i = 1 to 5 do
        ignore
          (Engine.at engine (Time.ms (10 * i)) (fun () ->
               Bftaudit.Bus.emit_at
                 (Time.ms (10 * i))
                 ~node:1 ~instance:0
                 (Bftaudit.Event.Instance_changed { cpi = i; recovery = false })))
      done;
      Engine.run ~until:(Time.ms 100) engine;
      Alcotest.(check int) "capped at max_incidents" 2
        (List.length (Doctor.incidents d));
      Alcotest.(check int) "suppressed fires counted" 3
        (Doctor.fires_suppressed d))

(* ------------------------------------------------------------------ *)
(* Bundles                                                            *)
(* ------------------------------------------------------------------ *)

let synthetic_incident () =
  {
    Bundle.trigger = "instance-change";
    fired_at = Time.ms 123;
    reason = "test incident";
    seed = 42L;
    config = [ ("protocol", "rbft"); ("f", "1"); ("master_primary", "0") ];
    scenario = Some "(scenario (name test))";
    events =
      [
        {
          Bftaudit.Event.time = Time.ms 100;
          node = 1;
          instance = 0;
          kind = Bftaudit.Event.Instance_changed { cpi = 1; recovery = false };
        };
      ];
    spans = [];
    snapshots =
      [
        {
          Recorder.m_time = Time.ms 90;
          m_samples =
            [
              {
                Bftmetrics.Registry.s_name = "bft_net_messages_total";
                s_labels = [ ("channel", "node-node") ];
                s_value = Bftmetrics.Registry.Counter_v 17;
              };
            ];
        };
      ];
    footprint =
      [
        {
          Bftcap.Footprint.r_name = "node.requests";
          r_owner = "node-1";
          r_entries = 12;
          r_peak = 15;
          r_bytes = 0;
        };
      ];
  }

let test_bundle_roundtrip () =
  let dir = tmp_dir "roundtrip" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let inc = synthetic_incident () in
      let digest = Bundle.write ~dir inc in
      Alcotest.(check string) "digest is deterministic" digest
        (Bundle.digest inc);
      (match Bundle.verify ~dir with
      | Ok d -> Alcotest.(check string) "on-disk digest matches" digest d
      | Error e -> Alcotest.fail ("verify failed: " ^ e));
      let l = Bundle.load ~dir in
      Alcotest.(check string) "trigger" "instance-change" l.Bundle.l_trigger;
      Alcotest.(check string) "seed survives as string" "42" l.Bundle.l_seed;
      Alcotest.(check string) "digest recorded in manifest" digest
        l.Bundle.l_digest;
      Alcotest.(check bool) "fired_at" true (l.Bundle.l_fired = Time.ms 123);
      Alcotest.(check (option string)) "scenario text preserved"
        (Some "(scenario (name test))") l.Bundle.l_scenario;
      Alcotest.(check int) "one event" 1 (List.length l.Bundle.l_events);
      (match l.Bundle.l_events with
      | [ e ] ->
        Alcotest.(check string) "event kind" "instance-changed"
          e.Bundle.e_kind;
        Alcotest.(check int) "event node" 1 e.Bundle.e_node
      | _ -> Alcotest.fail "events");
      Alcotest.(check int) "one snapshot" 1 (List.length l.Bundle.l_snapshots);
      match l.Bundle.l_snapshots with
      | [ (t, snap) ] ->
        Alcotest.(check bool) "snapshot time" true (t = Time.ms 90);
        (match Bundle.samples_of_snapshot snap with
        | [ ("bft_net_messages_total", [ ("channel", "node-node") ], v) ] ->
          Alcotest.(check (float 0.0)) "counter value" 17.0 v
        | other ->
          Alcotest.failf "unexpected samples (%d)" (List.length other))
      | _ -> Alcotest.fail "snapshots")

let test_bundle_tamper_detection () =
  let dir = tmp_dir "tamper" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      ignore (Bundle.write ~dir (synthetic_incident ()));
      (* doctoring the audit log must break the chained digest *)
      let path = Filename.concat dir "audit.jsonl" in
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc
        "{\"ts\":1,\"node\":9,\"instance\":0,\"kind\":\"executed\",\"client\":0,\"rid\":9,\"digest\":\"x\"}\n";
      close_out oc;
      match Bundle.verify ~dir with
      | Ok _ -> Alcotest.fail "tampered bundle verified"
      | Error e ->
        Alcotest.(check bool) "error names the digest" true
          (contains (String.lowercase_ascii e) "digest"))

(* ------------------------------------------------------------------ *)
(* Forged incident: worst1 flooding on a live cluster                 *)
(* ------------------------------------------------------------------ *)

let run_worst1 ~dir ~seed =
  Bftaudit.Auditor.reset_declared ();
  (* Same-seed determinism must hold within one process: zero the
     process-wide registry so the second run's metrics snapshots do not
     inherit the first run's counters. *)
  Bftmetrics.Registry.enable ();
  Bftmetrics.Registry.reset Bftmetrics.Registry.default;
  let cluster =
    Rbft.Cluster.create ~seed ~clients:4 ~payload_size:8
      (Rbft.Params.default ~f:1)
  in
  let d = Bftharness.Incident.attach ~dir cluster in
  Fun.protect
    ~finally:(fun () ->
      Doctor.detach d;
      Bftaudit.Auditor.reset_declared ())
    (fun () ->
      Rbft.Attacks.worst_attack_1 cluster;
      Array.iter
        (fun c -> Rbft.Client.set_rate c 400.0)
        (Rbft.Cluster.clients cluster);
      Rbft.Cluster.run_for cluster (Time.of_sec_f 0.6);
      Doctor.incidents d)

let test_forged_incident_worst1 () =
  let dir = tmp_dir "worst1" in
  let dir2 = tmp_dir "worst1-replay" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      rm_rf dir2)
    (fun () ->
      let incidents = run_worst1 ~dir ~seed:42L in
      Alcotest.(check bool) "at least one incident" true (incidents <> []);
      let first = List.hd incidents in
      Alcotest.(check string) "nic-closure trigger" "nic-closure"
        first.Doctor.i_trigger;
      let bundle_dir = Option.get first.Doctor.i_dir in
      (match Bundle.verify ~dir:bundle_dir with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("bundle failed verification: " ^ e));
      let l = Bundle.load ~dir:bundle_dir in
      let v = Analyze.attribute l in
      (* worst1 at f=1: the flooding node is node 3 (n-1). *)
      Alcotest.(check string) "cause" "flooding" v.Analyze.cause;
      Alcotest.(check (option int)) "culprit is the attacking node" (Some 3)
        v.Analyze.culprit_node;
      Alcotest.(check string) "high confidence" "high" v.Analyze.confidence;
      let report = Analyze.report l in
      Alcotest.(check bool) "report names the attacker" true
        (contains report "node 3");
      (* config fields make the bundle self-describing *)
      Alcotest.(check (option string)) "protocol recorded" (Some "rbft")
        (List.assoc_opt "protocol" l.Bundle.l_config);
      Alcotest.(check (option string)) "master primary recorded" (Some "0")
        (List.assoc_opt "master_primary" l.Bundle.l_config);
      (* same-seed replay: byte-identical bundle, identical digest *)
      let replay = run_worst1 ~dir:dir2 ~seed:42L in
      let second = List.hd replay in
      Alcotest.(check string) "same-seed digest identical"
        first.Doctor.i_digest second.Doctor.i_digest)

let test_doctor_force_dump () =
  let dir = tmp_dir "force" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let engine = Engine.create () in
      let config =
        Doctor.default_config ~dir:(Some dir) ~seed:9L
          ~config_fields:[ ("protocol", "test") ] ()
      in
      let d = Doctor.attach config engine in
      Fun.protect
        ~finally:(fun () -> Doctor.detach d)
        (fun () ->
          Engine.run ~until:(Time.ms 5) engine;
          Doctor.force d ~reason:"manual";
          match Doctor.incidents d with
          | [ i ] ->
            Alcotest.(check string) "forced trigger name" "forced"
              i.Doctor.i_trigger;
            let bdir = Option.get i.Doctor.i_dir in
            (match Bundle.verify ~dir:bdir with
            | Ok d' ->
              Alcotest.(check string) "digest matches disk" i.Doctor.i_digest d'
            | Error e -> Alcotest.fail e)
          | _ -> Alcotest.fail "expected one forced incident"))

(* ------------------------------------------------------------------ *)
(* Chaos runner integration                                           *)
(* ------------------------------------------------------------------ *)

let test_runner_doctor_bundle () =
  let dir = tmp_dir "chaos" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* a partition that outlives the runner's liveness-stall idle
         threshold (0.8s) must leave at least one bundle behind *)
      let s =
        {
          Bftchaos.Scenario.name = "doctor-partition";
          protocol = Bftchaos.Scenario.Rbft;
          f = 1;
          seed = 11L;
          duration = Time.of_sec_f 1.5;
          drain = Time.of_sec_f 0.5;
          workload = { Bftchaos.Scenario.clients = 2; rate = 200.0; payload = 8 };
          faults =
            [
              {
                Bftchaos.Fault.at = Time.ms 100;
                until = Time.sec 10;
                kind = Bftchaos.Fault.Partition { group = [ 1; 2 ] };
              };
            ];
          lambda = Time.zero;
          mutation = None;
        }
      in
      let r = Bftchaos.Runner.run ~doctor_dir:dir s in
      Alcotest.(check bool) "doctor dumped at least one bundle" true
        (r.Bftchaos.Runner.incidents <> []);
      let i = List.hd r.Bftchaos.Runner.incidents in
      Alcotest.(check string) "the stall trigger fired" "liveness-stall"
        i.Doctor.i_trigger;
      let bdir = Option.get i.Doctor.i_dir in
      let l = Bundle.load ~dir:bdir in
      (* the active scenario rides in the bundle and round-trips *)
      match l.Bundle.l_scenario with
      | None -> Alcotest.fail "scenario missing from bundle"
      | Some text ->
        (match Bftchaos.Scenario.of_string text with
        | Ok s' ->
          Alcotest.(check string) "scenario round-trips" s.Bftchaos.Scenario.name
            s'.Bftchaos.Scenario.name
        | Error e -> Alcotest.fail ("scenario does not parse: " ^ e)))

(* ------------------------------------------------------------------ *)
(* Jmini                                                              *)
(* ------------------------------------------------------------------ *)

let test_jmini () =
  let v =
    Jmini.parse
      {|{"a":1,"b":[true,null,"xA"],"c":{"d":-2.5e1},"e":"q\"w"}|}
  in
  Alcotest.(check (option int)) "int" (Some 1) (Jmini.get_int "a" v);
  (match Jmini.mem "b" v with
  | Some (Jmini.Arr [ Jmini.Bool true; Jmini.Null; Jmini.Str s ]) ->
    Alcotest.(check string) "string in array" "xA" s
  | _ -> Alcotest.fail "array shape");
  (match Jmini.mem "c" v with
  | Some c -> Alcotest.(check (option int)) "nested num" (Some (-25)) (Jmini.get_int "d" c)
  | None -> Alcotest.fail "nested object");
  Alcotest.(check (option string)) "escaped quote" (Some {|q"w|})
    (Jmini.get_str "e" v);
  Alcotest.(check bool) "garbage is None" true (Jmini.parse_opt "{" = None);
  (* every audit event serialisation must parse *)
  let ev =
    {
      Bftaudit.Event.time = Time.ms 3;
      node = 2;
      instance = 1;
      kind = Bftaudit.Event.Nic_closed { peer = 3; until = Time.ms 500 };
    }
  in
  match Jmini.parse_opt (Bftaudit.Event.to_json ev) with
  | Some j ->
    Alcotest.(check (option int)) "peer field" (Some 3) (Jmini.get_int "peer" j);
    Alcotest.(check (option string)) "kind field" (Some "nic-closed")
      (Jmini.get_str "kind" j)
  | None -> Alcotest.fail "event JSON does not parse"

let suites =
  [
    ( "doctor.ring",
      [ Alcotest.test_case "ordering and wraparound" `Quick test_ring ] );
    ( "doctor.trigger",
      [
        Alcotest.test_case "edge cooldown" `Quick test_trigger_edge_cooldown;
        Alcotest.test_case "edge debounce" `Quick test_trigger_edge_debounce;
        Alcotest.test_case "level arming" `Quick test_trigger_level;
      ] );
    ( "doctor.recorder",
      [
        Alcotest.test_case "audit ring and watermarks" `Quick
          test_recorder_rings;
        Alcotest.test_case "span ring via close hook" `Quick
          test_recorder_span_ring;
      ] );
    ( "doctor.triggers-live",
      [
        Alcotest.test_case "instance change" `Quick test_doctor_instance_change;
        Alcotest.test_case "recovery rotation ignored" `Quick
          test_doctor_recovery_rotation_ignored;
        Alcotest.test_case "liveness stall" `Quick test_doctor_liveness_stall;
        Alcotest.test_case "quiescence is not a stall" `Quick
          test_doctor_no_stall_when_quiescent;
        Alcotest.test_case "slo p99" `Quick test_doctor_slo_p99;
        Alcotest.test_case "sequencer head-of-line stall" `Quick
          test_doctor_seq_stall;
        Alcotest.test_case "delta ratio near miss" `Quick
          test_doctor_delta_ratio_near;
        Alcotest.test_case "max incidents cap" `Quick test_doctor_max_incidents;
      ] );
    ( "doctor.bundle",
      [
        Alcotest.test_case "write/load round trip" `Quick test_bundle_roundtrip;
        Alcotest.test_case "tamper detection" `Quick
          test_bundle_tamper_detection;
        Alcotest.test_case "force dump" `Quick test_doctor_force_dump;
      ] );
    ( "doctor.forensics",
      [
        Alcotest.test_case "worst1 forged incident" `Quick
          test_forged_incident_worst1;
        Alcotest.test_case "chaos runner bundles" `Quick
          test_runner_doctor_bundle;
      ] );
    ("doctor.jmini", [ Alcotest.test_case "parser" `Quick test_jmini ]);
  ]
