(* Tests for the RBFT core: monitoring, the full node pipeline,
   instance changes and the paper's attack scenarios at small scale. *)

open Dessim

(* ------------------------------------------------------------------ *)
(* Monitoring unit tests                                              *)
(* ------------------------------------------------------------------ *)

let mk_params ?(delta = 0.9) ?(lambda = Time.zero) ?(omega = Time.zero) ?(f = 1) () =
  { (Rbft.Params.default ~f) with Rbft.Params.delta; lambda; omega }

let test_monitoring_rates () =
  let m = Rbft.Monitoring.create (mk_params ()) in
  Rbft.Monitoring.note_ordered m ~instance:0 ~count:1000;
  Rbft.Monitoring.note_ordered m ~instance:1 ~count:1000;
  let v = Rbft.Monitoring.tick m ~now:(Time.sec 1) in
  Alcotest.(check (float 1e-6)) "master rate" 1000.0 v.Rbft.Monitoring.master_rate;
  Alcotest.(check (float 1e-6)) "backup rate" 1000.0 v.Rbft.Monitoring.backup_rate;
  Alcotest.(check bool) "not suspicious" false v.Rbft.Monitoring.suspicious

let test_monitoring_detects_slow_master () =
  let m = Rbft.Monitoring.create (mk_params ~delta:0.9 ()) in
  Rbft.Monitoring.note_ordered m ~instance:0 ~count:500;
  Rbft.Monitoring.note_ordered m ~instance:1 ~count:1000;
  let v = Rbft.Monitoring.tick m ~now:(Time.sec 1) in
  Alcotest.(check bool) "suspicious" true v.Rbft.Monitoring.suspicious

let test_monitoring_tolerates_within_delta () =
  let m = Rbft.Monitoring.create (mk_params ~delta:0.9 ()) in
  Rbft.Monitoring.note_ordered m ~instance:0 ~count:950;
  Rbft.Monitoring.note_ordered m ~instance:1 ~count:1000;
  let v = Rbft.Monitoring.tick m ~now:(Time.sec 1) in
  Alcotest.(check bool) "within delta" false v.Rbft.Monitoring.suspicious

let test_monitoring_idle_not_suspicious () =
  (* With (almost) no traffic the ratio test must not fire. *)
  let m = Rbft.Monitoring.create (mk_params ~delta:0.9 ()) in
  Rbft.Monitoring.note_ordered m ~instance:1 ~count:3;
  let v = Rbft.Monitoring.tick m ~now:(Time.sec 1) in
  Alcotest.(check bool) "idle" false v.Rbft.Monitoring.suspicious

let test_monitoring_window_reset () =
  let m = Rbft.Monitoring.create (mk_params ()) in
  Rbft.Monitoring.note_ordered m ~instance:0 ~count:100;
  Rbft.Monitoring.note_ordered m ~instance:1 ~count:100;
  ignore (Rbft.Monitoring.tick m ~now:(Time.sec 1));
  (* New window: counters were reset (the verdict's [master_rate] is a
     moving average, so check the raw window rates). *)
  let v = Rbft.Monitoring.tick m ~now:(Time.sec 2) in
  Alcotest.(check (float 1e-6)) "reset" 0.0 v.Rbft.Monitoring.rates.(0);
  Alcotest.(check int) "history kept" 2 (List.length (Rbft.Monitoring.history m))

let test_monitoring_lambda () =
  let m = Rbft.Monitoring.create (mk_params ~lambda:(Time.of_us_f 1500.0) ()) in
  Alcotest.(check bool) "below lambda" false
    (Rbft.Monitoring.lambda_violation m ~latency:(Time.ms 1));
  Alcotest.(check bool) "above lambda" true
    (Rbft.Monitoring.lambda_violation m ~latency:(Time.ms 2));
  let off = Rbft.Monitoring.create (mk_params ()) in
  Alcotest.(check bool) "disabled" false
    (Rbft.Monitoring.lambda_violation off ~latency:(Time.sec 10))

let test_monitoring_zero_window () =
  (* A tick with no time elapsed since the window opened must not
     divide by zero: rates collapse to 0 and the verdict stays calm. *)
  let m = Rbft.Monitoring.create (mk_params ()) in
  Rbft.Monitoring.note_ordered m ~instance:0 ~count:500;
  Rbft.Monitoring.note_ordered m ~instance:1 ~count:500;
  let v = Rbft.Monitoring.tick m ~now:Time.zero in
  Alcotest.(check (float 1e-6)) "zero-window master" 0.0 v.Rbft.Monitoring.master_rate;
  Alcotest.(check (float 1e-6)) "zero-window backup" 0.0 v.Rbft.Monitoring.backup_rate;
  Alcotest.(check bool) "zero-window not suspicious" false v.Rbft.Monitoring.suspicious;
  Alcotest.(check bool) "zero-window ratio is NaN" true
    (Float.is_nan v.Rbft.Monitoring.ratio)

let test_monitoring_three_window_average () =
  (* The Δ verdict averages over the last three windows only: three
     slow master windows after a fast start must still fire. *)
  let m = Rbft.Monitoring.create (mk_params ~delta:0.9 ()) in
  (* Window 1: fast master. *)
  Rbft.Monitoring.note_ordered m ~instance:0 ~count:1000;
  Rbft.Monitoring.note_ordered m ~instance:1 ~count:1000;
  ignore (Rbft.Monitoring.tick m ~now:(Time.sec 1));
  (* Windows 2-4: master collapses while the backup stays fast. After
     window 4 the fast first window has left the 3-window average. *)
  let last = ref None in
  for w = 2 to 4 do
    Rbft.Monitoring.note_ordered m ~instance:0 ~count:100;
    Rbft.Monitoring.note_ordered m ~instance:1 ~count:1000;
    last := Some (Rbft.Monitoring.tick m ~now:(Time.sec w))
  done;
  match !last with
  | None -> Alcotest.fail "no verdict"
  | Some v ->
    Alcotest.(check (float 1e-6)) "averaged master over 3 windows" 100.0
      v.Rbft.Monitoring.master_rate;
    Alcotest.(check bool) "slow master caught" true v.Rbft.Monitoring.suspicious

let test_monitoring_idle_backup_ratio_nan () =
  (* Backups below [min_meaningful_rate] gate the Δ test; with zero
     backup traffic the ratio itself is NaN, not infinity. *)
  let m = Rbft.Monitoring.create (mk_params ~delta:0.9 ()) in
  Rbft.Monitoring.note_ordered m ~instance:0 ~count:1000;
  let v = Rbft.Monitoring.tick m ~now:(Time.sec 1) in
  Alcotest.(check bool) "idle-backup ratio NaN" true
    (Float.is_nan v.Rbft.Monitoring.ratio);
  Alcotest.(check bool) "idle-backup not suspicious" false v.Rbft.Monitoring.suspicious;
  (* Just under the gate (50 req/s): still not applied even though the
     master is far below delta times the backup rate. *)
  let m2 = Rbft.Monitoring.create (mk_params ~delta:0.9 ()) in
  Rbft.Monitoring.note_ordered m2 ~instance:1 ~count:49;
  let v2 = Rbft.Monitoring.tick m2 ~now:(Time.sec 1) in
  Alcotest.(check bool) "sub-threshold backups gated" false v2.Rbft.Monitoring.suspicious;
  Alcotest.(check bool) "sub-threshold ratio finite" true (v2.Rbft.Monitoring.ratio = 0.0);
  (* At the gate the test applies. *)
  let m3 = Rbft.Monitoring.create (mk_params ~delta:0.9 ()) in
  Rbft.Monitoring.note_ordered m3 ~instance:1 ~count:50;
  let v3 = Rbft.Monitoring.tick m3 ~now:(Time.sec 1) in
  Alcotest.(check bool) "at-threshold backups fire" true v3.Rbft.Monitoring.suspicious

let test_monitoring_bounded_history () =
  (* The measurement log is a ring: with a cap of 4, ticking 10 times
     keeps only the last 4 windows, oldest first, and [latest] still
     tracks the newest one. *)
  let m = Rbft.Monitoring.create ~history_cap:4 (mk_params ()) in
  Alcotest.(check int) "cap recorded" 4 (Rbft.Monitoring.history_cap m);
  for w = 1 to 10 do
    Rbft.Monitoring.note_ordered m ~instance:0 ~count:(w * 10);
    ignore (Rbft.Monitoring.tick m ~now:(Time.sec w))
  done;
  let hist = Rbft.Monitoring.history m in
  Alcotest.(check int) "history bounded" 4 (List.length hist);
  let times = List.map (fun (t, _) -> Time.to_sec_f t) hist in
  Alcotest.(check (list (float 1e-6))) "oldest first, newest kept"
    [ 7.0; 8.0; 9.0; 10.0 ] times;
  (match Rbft.Monitoring.latest m with
  | Some (t, rates) ->
    Alcotest.(check (float 1e-6)) "latest time" 10.0 (Time.to_sec_f t);
    Alcotest.(check (float 1e-6)) "latest master rate" 100.0 rates.(0)
  | None -> Alcotest.fail "no latest measurement");
  (* Default cap stays generous enough for existing callers. *)
  let d = Rbft.Monitoring.create (mk_params ()) in
  Alcotest.(check int) "default cap" 4096 (Rbft.Monitoring.history_cap d)

let test_monitoring_omega () =
  let m = Rbft.Monitoring.create (mk_params ~omega:(Time.us 500) ()) in
  (* Client 7: 2 ms on master, 0.8 ms on backup. *)
  for _ = 1 to 20 do
    Rbft.Monitoring.note_latency m ~instance:0 ~client:7 (Time.ms 2);
    Rbft.Monitoring.note_latency m ~instance:1 ~client:7 (Time.of_us_f 800.0)
  done;
  Alcotest.(check bool) "gap above omega" true (Rbft.Monitoring.omega_violation m ~client:7);
  (* Client 8 is treated fairly. *)
  for _ = 1 to 20 do
    Rbft.Monitoring.note_latency m ~instance:0 ~client:8 (Time.ms 1);
    Rbft.Monitoring.note_latency m ~instance:1 ~client:8 (Time.ms 1)
  done;
  Alcotest.(check bool) "fair client fine" false (Rbft.Monitoring.omega_violation m ~client:8)

(* ------------------------------------------------------------------ *)
(* Cluster-level tests                                                *)
(* ------------------------------------------------------------------ *)

let saturate ?(rate = 800.0) ?(nclients = 3) ?(payload = 8) ?(params = mk_params ()) () =
  let cluster = Rbft.Cluster.create ~clients:nclients ~payload_size:payload params in
  Array.iter (fun c -> Rbft.Client.set_rate c rate) (Rbft.Cluster.clients cluster);
  cluster

let stop_clients cluster =
  Array.iter (fun c -> Rbft.Client.set_rate c 0.0) (Rbft.Cluster.clients cluster)

let test_fault_free_completion () =
  let cluster = saturate () in
  Rbft.Cluster.run_for cluster (Time.sec 1);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 1);
  let sent =
    Array.fold_left (fun acc c -> acc + Rbft.Client.sent c) 0 (Rbft.Cluster.clients cluster)
  in
  Array.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "client %d all completed" (Rbft.Client.id c))
        (Rbft.Client.sent c) (Rbft.Client.completed c))
    (Rbft.Cluster.clients cluster);
  Alcotest.(check int) "all executed once" sent (Rbft.Cluster.total_executed cluster);
  Alcotest.(check bool) "agreement" true (Rbft.Cluster.agreement_ok cluster ~faulty:[]);
  Alcotest.(check int) "no instance change" 0
    (Rbft.Node.instance_changes (Rbft.Cluster.node cluster 0))

let test_backup_orders_but_does_not_execute () =
  let cluster = saturate () in
  Rbft.Cluster.run_for cluster (Time.sec 1);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 1);
  let node = Rbft.Cluster.node cluster 0 in
  let master = Pbftcore.Replica.ordered_count (Rbft.Node.replica node ~instance:0) in
  let backup = Pbftcore.Replica.ordered_count (Rbft.Node.replica node ~instance:1) in
  Alcotest.(check bool) "backup ordered as much as master" true (backup >= master * 9 / 10);
  Alcotest.(check int) "executions = master orders" master (Rbft.Node.executed_count node)

let test_instance_change_on_slow_master_primary () =
  let params = mk_params ~delta:0.9 () in
  let cluster = saturate ~params () in
  (* The master primary (instance 0, view 0) runs on node 0. Make it
     hugely slow: ordering rate collapses while backups stay fast. *)
  let master_replica = Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:0 in
  (Pbftcore.Replica.adversary master_replica).Pbftcore.Replica.pp_extra_delay <-
    (fun () -> Time.ms 50);
  Rbft.Cluster.run_for cluster (Time.sec 2);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 2);
  Array.iter
    (fun node ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d performed an instance change" (Rbft.Node.id node))
        true
        (Rbft.Node.instance_changes node >= 1))
    (Rbft.Cluster.nodes cluster);
  (* After the change the master instance's primary is node 1 and the
     system keeps making progress. *)
  let r0 = Rbft.Node.replica (Rbft.Cluster.node cluster 1) ~instance:0 in
  Alcotest.(check bool) "primary rotated off node 0" true
    (Pbftcore.Replica.current_primary r0 <> 0);
  Alcotest.(check bool) "progress" true (Rbft.Cluster.total_executed cluster > 100);
  Alcotest.(check bool) "agreement" true (Rbft.Cluster.agreement_ok cluster ~faulty:[])

let test_no_instance_change_when_master_within_delta () =
  let params = mk_params ~delta:0.9 () in
  let cluster = saturate ~params () in
  (* A very mild delay keeps the ratio above delta: no change. *)
  let master_replica = Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:0 in
  (Pbftcore.Replica.adversary master_replica).Pbftcore.Replica.pp_extra_delay <-
    (fun () -> Time.us 30);
  Rbft.Cluster.run_for cluster (Time.sec 2);
  Alcotest.(check int) "no instance change" 0
    (Rbft.Node.instance_changes (Rbft.Cluster.node cluster 1))

let test_worst_attack_1_no_instance_change () =
  (* Worst-attack-1: correct master primary; the faulty node (3) floods
     the master-primary node and its master-instance replica goes
     silent. RBFT must not trigger an instance change and degradation
     must stay small. *)
  let params = mk_params ~delta:0.9 () in
  let cluster = saturate ~params () in
  let faulty = Rbft.Cluster.node cluster 3 in
  let faults = Rbft.Node.faults faulty in
  faults.Rbft.Node.flood_targets <- [ 0 ];
  faults.Rbft.Node.flood_rate <- 2000.0;
  faults.Rbft.Node.no_propagate <- true;
  (Pbftcore.Replica.adversary (Rbft.Node.replica faulty ~instance:0)).Pbftcore.Replica.silent <-
    true;
  Rbft.Cluster.run_for cluster (Time.sec 2);
  Alcotest.(check int) "no instance change" 0
    (Rbft.Node.instance_changes (Rbft.Cluster.node cluster 0));
  Alcotest.(check bool) "progress" true (Rbft.Cluster.total_executed cluster > 500);
  Alcotest.(check bool) "agreement among correct nodes" true
    (Rbft.Cluster.agreement_ok cluster ~faulty:[ 3 ])

let test_flood_closes_nic () =
  let params = mk_params () in
  let cluster = saturate ~nclients:1 ~rate:100.0 ~params () in
  let faulty = Rbft.Cluster.node cluster 3 in
  let faults = Rbft.Node.faults faulty in
  faults.Rbft.Node.flood_targets <- [ 0 ];
  faults.Rbft.Node.flood_rate <- 5000.0;
  Rbft.Cluster.run_for cluster (Time.ms 300);
  Alcotest.(check bool) "node 0 closed the flooder's NIC" true
    (Bftnet.Network.nic_closed (Rbft.Cluster.network cluster) ~node:0
       ~peer:(Bftcrypto.Principal.node 3))

let test_unfair_primary_lambda_triggers_change () =
  (* Figure 12's mechanism: the master primary delays one client's
     requests beyond Λ; nodes vote a protocol instance change. *)
  let params =
    { (mk_params ~delta:0.5 ()) with Rbft.Params.lambda = Time.ms 15 }
  in
  let cluster = saturate ~nclients:2 ~rate:200.0 ~params () in
  let master_replica = Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:0 in
  (Pbftcore.Replica.adversary master_replica).Pbftcore.Replica.client_hold <-
    (fun id -> if id.Pbftcore.Types.client = 0 then Time.ms 25 else Time.zero);
  Rbft.Cluster.run_for cluster (Time.sec 2);
  Alcotest.(check bool) "instance change happened" true
    (Rbft.Node.instance_changes (Rbft.Cluster.node cluster 1) >= 1);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 1);
  Alcotest.(check bool) "agreement" true (Rbft.Cluster.agreement_ok cluster ~faulty:[])

let test_invalid_signature_blacklists () =
  let params = mk_params () in
  let cluster = Rbft.Cluster.create ~clients:2 params in
  let bad = Rbft.Cluster.client cluster 0 in
  (Rbft.Client.behaviour bad).Rbft.Client.sig_valid <- false;
  Rbft.Client.send_one bad;
  Rbft.Cluster.run_for cluster (Time.ms 100);
  Alcotest.(check bool) "blacklisted at node 1" true
    (Rbft.Node.is_blacklisted (Rbft.Cluster.node cluster 1) ~client:0);
  Alcotest.(check int) "nothing executed" 0 (Rbft.Cluster.total_executed cluster);
  (* A correct client is unaffected. *)
  let good = Rbft.Cluster.client cluster 1 in
  Rbft.Client.send_one good;
  Rbft.Cluster.run_for cluster (Time.ms 200);
  Alcotest.(check int) "good client served" 1 (Rbft.Client.completed good)

let test_selective_mac_still_served () =
  (* Worst-attack-1 action (i): the client's authenticator is invalid
     for node 0 only; the request still reaches node 0 via PROPAGATE
     and completes. *)
  let params = mk_params () in
  let cluster = Rbft.Cluster.create ~clients:1 params in
  let c = Rbft.Cluster.client cluster 0 in
  (Rbft.Client.behaviour c).Rbft.Client.mac_invalid_for <- [ 0 ];
  Rbft.Client.send_one c;
  Rbft.Cluster.run_for cluster (Time.ms 300);
  Alcotest.(check int) "completed" 1 (Rbft.Client.completed c);
  Alcotest.(check int) "executed everywhere incl. node 0" 1
    (Rbft.Node.executed_count (Rbft.Cluster.node cluster 0))

let test_duplicate_request_rereplied () =
  let params = mk_params () in
  let cluster = Rbft.Cluster.create ~clients:1 params in
  let c = Rbft.Cluster.client cluster 0 in
  Rbft.Client.send_one c;
  Rbft.Cluster.run_for cluster (Time.ms 300);
  Alcotest.(check int) "completed" 1 (Rbft.Client.completed c);
  Alcotest.(check int) "executed once" 1 (Rbft.Cluster.total_executed cluster)

let test_f2_cluster_works () =
  let params = mk_params ~f:2 () in
  let cluster =
    Rbft.Cluster.create ~clients:3 params
  in
  Array.iter (fun c -> Rbft.Client.set_rate c 300.0) (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.sec 1);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 1);
  Alcotest.(check int) "7 nodes" 7 (Array.length (Rbft.Cluster.nodes cluster));
  Alcotest.(check bool) "progress" true (Rbft.Cluster.total_executed cluster > 500);
  Alcotest.(check bool) "agreement" true (Rbft.Cluster.agreement_ok cluster ~faulty:[]);
  Alcotest.(check int) "3 instances" 3 (Rbft.Params.instances params)

let test_switch_master_recovery () =
  let params =
    { (mk_params ~delta:0.9 ()) with Rbft.Params.recovery = Rbft.Params.Switch_master }
  in
  let cluster = saturate ~params () in
  let master_replica = Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:0 in
  (Pbftcore.Replica.adversary master_replica).Pbftcore.Replica.pp_extra_delay <-
    (fun () -> Time.ms 50);
  Rbft.Cluster.run_for cluster (Time.sec 2);
  (* Check the switch while the load is still running: stopping the
     clients lets the throttled old master drain its backlog faster
     than the (idle) new master, which legitimately re-triggers the
     ratio test. *)
  Array.iter
    (fun node ->
      Alcotest.(check int)
        (Printf.sprintf "node %d switched master" (Rbft.Node.id node))
        1 (Rbft.Node.master_instance node))
    (Rbft.Cluster.nodes cluster);
  stop_clients cluster;
  Rbft.Cluster.run_for cluster (Time.sec 2);
  Alcotest.(check bool) "agreement" true (Rbft.Cluster.agreement_ok cluster ~faulty:[])

let test_closed_loop_client () =
  let params = mk_params () in
  let cluster = Rbft.Cluster.create ~clients:1 params in
  let c = Rbft.Cluster.client cluster 0 in
  Rbft.Client.set_closed_loop c ~outstanding:4;
  Rbft.Cluster.run_for cluster (Time.ms 500);
  (* The window stays constant: sent = completed + outstanding. *)
  Alcotest.(check int) "window respected" (Rbft.Client.completed c + 4) (Rbft.Client.sent c);
  Alcotest.(check bool) "progress" true (Rbft.Client.completed c > 50);
  (* Switching back to open loop stops the feedback sending. *)
  Rbft.Client.set_rate c 0.0;
  let sent_before = Rbft.Client.sent c in
  Rbft.Cluster.run_for cluster (Time.ms 300);
  Alcotest.(check int) "no new requests" sent_before (Rbft.Client.sent c)

let test_primary_placement () =
  let params = mk_params ~f:2 () in
  (* At any view, the f+1 primaries sit on distinct nodes. *)
  for view = 0 to 20 do
    let primaries =
      List.init (Rbft.Params.instances params) (fun i ->
          Rbft.Params.primary_of params ~instance:i ~view)
    in
    Alcotest.(check int)
      (Printf.sprintf "distinct primaries at view %d" view)
      (List.length primaries)
      (List.length (List.sort_uniq compare primaries))
  done

(* ------------------------------------------------------------------ *)
(* Instance-change vote set edge cases                                *)
(*                                                                    *)
(* Votes are tracked as per-node maxima plus a bitset of voters whose
   maximum covers the *current* cpi; the bitset is rebuilt from the
   maxima whenever the cpi advances. These tests inject raw
   Instance_change messages into an otherwise idle cluster (no
   workload, so no organic suspicion) and watch node 0's vote state. *)
(* ------------------------------------------------------------------ *)

let ic_idle_cluster () =
  let cluster = Rbft.Cluster.create ~clients:1 (mk_params ()) in
  Rbft.Cluster.run_for cluster (Time.ms 1);
  cluster

(* [voter] is the replica id claimed inside the payload — a Byzantine
   sender can put anything there, including out-of-range ids. *)
let ic_vote cluster ~src ~voter ~cpi =
  Bftnet.Network.send
    (Rbft.Cluster.network cluster)
    ~src:(Bftcrypto.Principal.node src) ~dst:(Bftcrypto.Principal.node 0)
    ~size:16
    (Rbft.Messages.Instance_change { cpi; node = voter });
  Rbft.Cluster.run_for cluster (Time.ms 5)

let test_ic_duplicate_votes_counted_once () =
  let cluster = ic_idle_cluster () in
  let n0 = Rbft.Cluster.node cluster 0 in
  ic_vote cluster ~src:1 ~voter:1 ~cpi:0;
  ic_vote cluster ~src:1 ~voter:1 ~cpi:0;
  ic_vote cluster ~src:1 ~voter:1 ~cpi:0;
  Alcotest.(check int) "replayed vote counts once" 1 (Rbft.Node.ic_vote_count n0);
  Alcotest.(check int) "no change below quorum" 0 (Rbft.Node.instance_changes n0);
  ic_vote cluster ~src:2 ~voter:2 ~cpi:0;
  Alcotest.(check int) "distinct voter counts" 2 (Rbft.Node.ic_vote_count n0);
  Alcotest.(check int) "2 < 2f+1: still no change" 0
    (Rbft.Node.instance_changes n0)

let test_ic_out_of_range_voter_ignored () =
  let cluster = ic_idle_cluster () in
  let n0 = Rbft.Cluster.node cluster 0 in
  ic_vote cluster ~src:1 ~voter:7 ~cpi:0;
  ic_vote cluster ~src:1 ~voter:(-3) ~cpi:0;
  Alcotest.(check int) "forged ids never enter the vote set" 0
    (Rbft.Node.ic_vote_count n0);
  Alcotest.(check int) "out-of-range lookup is -1" (-1)
    (Rbft.Node.ic_vote_cpi_of n0 ~node:7);
  (* The node remains fully functional for legitimate votes. *)
  ic_vote cluster ~src:1 ~voter:1 ~cpi:0;
  Alcotest.(check int) "legitimate vote still lands" 1
    (Rbft.Node.ic_vote_count n0)

let test_ic_bitset_rebuild_after_advance () =
  let cluster = ic_idle_cluster () in
  let n0 = Rbft.Cluster.node cluster 0 in
  (* Node 1 votes far ahead; 2 and 3 vote for the current cpi. *)
  ic_vote cluster ~src:1 ~voter:1 ~cpi:5;
  ic_vote cluster ~src:2 ~voter:2 ~cpi:0;
  Alcotest.(check int) "forward vote covers cpi 0 too" 2
    (Rbft.Node.ic_vote_count n0);
  ic_vote cluster ~src:3 ~voter:3 ~cpi:0;
  (* Quorum of 3: node 0 changes, advances to cpi 1 and rebuilds the
     bitset from the maxima — only node 1's forward vote survives. *)
  Alcotest.(check int) "change performed" 1 (Rbft.Node.instance_changes n0);
  Alcotest.(check int) "cpi advanced" 1 (Rbft.Node.cpi n0);
  Alcotest.(check int) "rebuilt set keeps the forward vote" 1
    (Rbft.Node.ic_vote_count n0);
  Alcotest.(check int) "node 1 maximum retained" 5
    (Rbft.Node.ic_vote_cpi_of n0 ~node:1);
  Alcotest.(check int) "node 2 maximum retained" 0
    (Rbft.Node.ic_vote_cpi_of n0 ~node:2);
  (* A stale re-send for the old cpi must not re-enter the set... *)
  ic_vote cluster ~src:2 ~voter:2 ~cpi:0;
  Alcotest.(check int) "stale vote ignored after advance" 1
    (Rbft.Node.ic_vote_count n0);
  (* ...while catch-up votes for the new cpi complete a second quorum. *)
  ic_vote cluster ~src:2 ~voter:2 ~cpi:1;
  ic_vote cluster ~src:3 ~voter:3 ~cpi:1;
  Alcotest.(check int) "second change" 2 (Rbft.Node.instance_changes n0);
  Alcotest.(check int) "cpi 2" 2 (Rbft.Node.cpi n0)

let prop_monitoring_delta_boundary =
  QCheck.Test.make ~name:"delta verdict matches the ratio arithmetic"
    QCheck.(pair (int_range 100 100_000) (int_range 100 100_000))
    (fun (master, backup) ->
      let m = Rbft.Monitoring.create (mk_params ~delta:0.9 ()) in
      Rbft.Monitoring.note_ordered m ~instance:0 ~count:master;
      Rbft.Monitoring.note_ordered m ~instance:1 ~count:backup;
      let v = Rbft.Monitoring.tick m ~now:(Time.sec 1) in
      let expected =
        float_of_int backup >= 50.0
        && float_of_int master < 0.9 *. float_of_int backup
      in
      v.Rbft.Monitoring.suspicious = expected)

let prop_primary_placement_distinct =
  QCheck.Test.make ~name:"at most one primary per node at any view"
    QCheck.(pair (int_range 1 4) (int_bound 1000))
    (fun (f, view) ->
      let params = Rbft.Params.default ~f in
      let primaries =
        List.init (Rbft.Params.instances params) (fun i ->
            Rbft.Params.primary_of params ~instance:i ~view)
      in
      List.length (List.sort_uniq compare primaries) = List.length primaries)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "rbft.monitoring",
      [
        Alcotest.test_case "rates" `Quick test_monitoring_rates;
        Alcotest.test_case "detects slow master" `Quick test_monitoring_detects_slow_master;
        Alcotest.test_case "tolerates within delta" `Quick
          test_monitoring_tolerates_within_delta;
        Alcotest.test_case "idle not suspicious" `Quick test_monitoring_idle_not_suspicious;
        Alcotest.test_case "window reset" `Quick test_monitoring_window_reset;
        Alcotest.test_case "zero-length window" `Quick test_monitoring_zero_window;
        Alcotest.test_case "3-window moving average" `Quick
          test_monitoring_three_window_average;
        Alcotest.test_case "idle backups gate the ratio" `Quick
          test_monitoring_idle_backup_ratio_nan;
        Alcotest.test_case "bounded history ring" `Quick
          test_monitoring_bounded_history;
        Alcotest.test_case "lambda check" `Quick test_monitoring_lambda;
        Alcotest.test_case "omega check" `Quick test_monitoring_omega;
      ]
      @ qsuite [ prop_monitoring_delta_boundary; prop_primary_placement_distinct ] );
    ( "rbft.cluster",
      [
        Alcotest.test_case "fault-free completion" `Quick test_fault_free_completion;
        Alcotest.test_case "backups order, master executes" `Quick
          test_backup_orders_but_does_not_execute;
        Alcotest.test_case "f=2 cluster" `Quick test_f2_cluster_works;
        Alcotest.test_case "primary placement" `Quick test_primary_placement;
        Alcotest.test_case "duplicate request" `Quick test_duplicate_request_rereplied;
        Alcotest.test_case "closed-loop client" `Quick test_closed_loop_client;
      ] );
    ( "rbft.ic-votes",
      [
        Alcotest.test_case "duplicate votes counted once" `Quick
          test_ic_duplicate_votes_counted_once;
        Alcotest.test_case "out-of-range voter ignored" `Quick
          test_ic_out_of_range_voter_ignored;
        Alcotest.test_case "bitset rebuilt on cpi advance" `Quick
          test_ic_bitset_rebuild_after_advance;
      ] );
    ( "rbft.attacks",
      [
        Alcotest.test_case "instance change on slow master" `Quick
          test_instance_change_on_slow_master_primary;
        Alcotest.test_case "no change within delta" `Quick
          test_no_instance_change_when_master_within_delta;
        Alcotest.test_case "worst-attack-1 resisted" `Quick
          test_worst_attack_1_no_instance_change;
        Alcotest.test_case "flood closes NIC" `Quick test_flood_closes_nic;
        Alcotest.test_case "unfair primary evicted (Fig 12)" `Quick
          test_unfair_primary_lambda_triggers_change;
        Alcotest.test_case "invalid signature blacklists" `Quick
          test_invalid_signature_blacklists;
        Alcotest.test_case "selective MAC (attack-1 action i)" `Quick
          test_selective_mac_still_served;
        Alcotest.test_case "switch-master extension" `Quick test_switch_master_recovery;
      ] );
  ]
