(* Tests for the flow-control layer ({!Bftflow}): the adaptive batch
   planner, the bounded-admission gate, deterministic client backoff,
   shard placement, and the cluster behaviours they combine into —
   flash-crowd shedding under an admission budget and sharded kvstore
   execution. *)

open Dessim

(* ------------------------------------------------------------------ *)
(* Batcher                                                            *)
(* ------------------------------------------------------------------ *)

let test_batcher_idle_keeps_config () =
  let b = Bftflow.Batcher.make ~batch_size:64 ~batch_delay:(Time.ms 1) () in
  let size, delay = Bftflow.Batcher.plan b ~backlog:Time.zero ~depth:0 in
  Alcotest.(check int) "idle size" 64 size;
  Alcotest.(check int) "idle delay" (Time.ms 1) delay

let test_batcher_monotone_and_bounded () =
  let growth = 4 and batch_size = 64 in
  let b =
    Bftflow.Batcher.make ~growth ~min_delay:(Time.us 100) ~batch_size
      ~batch_delay:(Time.ms 1) ()
  in
  let prev_size = ref 0 and prev_delay = ref max_int in
  for step = 0 to 40 do
    let backlog = Time.mul_f (Time.ms 1) (float_of_int step /. 2.0) in
    let size, delay = Bftflow.Batcher.plan b ~backlog ~depth:(step * 8) in
    Alcotest.(check bool)
      (Printf.sprintf "size within bounds at step %d" step)
      true
      (size >= batch_size && size <= growth * batch_size);
    Alcotest.(check bool)
      (Printf.sprintf "delay floored at step %d" step)
      true
      (delay >= Time.us 100);
    Alcotest.(check bool)
      (Printf.sprintf "size monotone at step %d" step)
      true (size >= !prev_size);
    Alcotest.(check bool)
      (Printf.sprintf "delay monotone at step %d" step)
      true (delay <= !prev_delay);
    prev_size := size;
    prev_delay := delay
  done;
  (* Deep pressure saturates at the growth cap. *)
  let size, delay = Bftflow.Batcher.plan b ~backlog:(Time.sec 1) ~depth:100000 in
  Alcotest.(check int) "saturated size" (growth * batch_size) size;
  Alcotest.(check int) "saturated delay" (Time.us 100) delay

(* ------------------------------------------------------------------ *)
(* Admission gate                                                     *)
(* ------------------------------------------------------------------ *)

let test_admission_budget_and_release () =
  let a = Bftflow.Admission.create ~budget:2 ~retry_base:(Time.ms 10) in
  Alcotest.(check bool) "enabled" true (Bftflow.Admission.enabled a);
  let ok r = match r with Ok () -> true | Error _ -> false in
  Alcotest.(check bool) "first" true (ok (Bftflow.Admission.admit a ~backlog:Time.zero));
  Alcotest.(check bool) "second" true (ok (Bftflow.Admission.admit a ~backlog:Time.zero));
  Alcotest.(check int) "inflight" 2 (Bftflow.Admission.inflight a);
  (match Bftflow.Admission.admit a ~backlog:(Time.ms 25) with
   | Ok () -> Alcotest.fail "third admit should shed"
   | Error hint ->
     (* The hint is the larger of retry_base and the probed backlog. *)
     Alcotest.(check int) "hint follows backlog" (Time.ms 25) hint);
  (match Bftflow.Admission.admit a ~backlog:Time.zero with
   | Ok () -> Alcotest.fail "fourth admit should shed"
   | Error hint -> Alcotest.(check int) "hint floored at base" (Time.ms 10) hint);
  Alcotest.(check int) "shed counted" 2 (Bftflow.Admission.shed_total a);
  Bftflow.Admission.release a;
  Alcotest.(check int) "slot returned" 1 (Bftflow.Admission.inflight a);
  Alcotest.(check bool) "admits again" true
    (ok (Bftflow.Admission.admit a ~backlog:Time.zero));
  Alcotest.(check int) "admitted total" 3 (Bftflow.Admission.admitted_total a)

let test_admission_disabled () =
  let a = Bftflow.Admission.create ~budget:0 ~retry_base:(Time.ms 10) in
  Alcotest.(check bool) "disabled" false (Bftflow.Admission.enabled a);
  for _ = 1 to 100 do
    match Bftflow.Admission.admit a ~backlog:(Time.sec 1) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "disabled gate must admit everything"
  done

(* ------------------------------------------------------------------ *)
(* Backoff                                                            *)
(* ------------------------------------------------------------------ *)

(* Same seed -> byte-identical retry schedule. The backoff stream is
   what keeps admission-gated runs replayable. *)
let test_backoff_determinism () =
  let schedule () =
    let rng = Rng.create 42L in
    let b = Bftflow.Backoff.create ~base:(Time.ms 2) (Rng.split rng) in
    List.init 12 (fun attempt ->
        Bftflow.Backoff.delay b ~attempt ~hint:Time.zero)
  in
  let a = schedule () and b = schedule () in
  Alcotest.(check (list int)) "same seed, same schedule" a b

let test_backoff_growth_cap_and_hint () =
  let rng = Rng.create 7L in
  let cap = Time.ms 50 in
  let b = Bftflow.Backoff.create ~cap ~base:(Time.ms 2) (Rng.split rng) in
  for attempt = 0 to 14 do
    let d = Bftflow.Backoff.delay b ~attempt ~hint:Time.zero in
    let base_d = min cap (Time.mul_f (Time.ms 2) (Float.pow 2.0 (float_of_int attempt))) in
    Alcotest.(check bool)
      (Printf.sprintf "delay >= deterministic part at attempt %d" attempt)
      true (d >= base_d);
    Alcotest.(check bool)
      (Printf.sprintf "delay < 2x cap-limited part at attempt %d" attempt)
      true (d < 2 * base_d)
  done;
  let d = Bftflow.Backoff.delay b ~attempt:0 ~hint:(Time.sec 3) in
  Alcotest.(check bool) "server hint is a floor" true (d >= Time.sec 3)

(* ------------------------------------------------------------------ *)
(* Shard placement                                                    *)
(* ------------------------------------------------------------------ *)

let test_shard_index () =
  for shards = 1 to 8 do
    for k = 0 to 200 do
      let key = Printf.sprintf "key-%d" k in
      let i = Bftflow.Shard.index ~shards key in
      Alcotest.(check bool) "in range" true (i >= 0 && i < max 1 shards);
      Alcotest.(check int) "stable" i (Bftflow.Shard.index ~shards key)
    done
  done;
  Alcotest.(check int) "single shard" 0 (Bftflow.Shard.index ~shards:1 "anything");
  (* djb2 must actually spread: 200 keys over 4 shards, none empty. *)
  let counts = Array.make 4 0 in
  for k = 0 to 199 do
    let i = Bftflow.Shard.index ~shards:4 (Printf.sprintf "key-%d" k) in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "shard %d used" i) true (c > 10))
    counts

(* ------------------------------------------------------------------ *)
(* Cluster: flash crowd against the admission gate                    *)
(* ------------------------------------------------------------------ *)

let mk_params ?(f = 1) () = Rbft.Params.default ~f

(* A burst far past the admission budget: the gate must shed (BUSY
   replies, client retries), nothing may be lost (every request
   completes once the crowd drains), and the auditor must see zero
   safety violations. *)
let test_flash_crowd_sheds_and_recovers () =
  Bftaudit.Auditor.reset_declared ();
  let auditor = Bftaudit.Auditor.attach ~raise_on_violation:false ~n:4 ~f:1 () in
  let params =
    { (mk_params ()) with
      Rbft.Params.admission_budget = 8;
      busy_retry_base = Time.ms 2;
      adaptive_batching = true }
  in
  let cluster = Rbft.Cluster.create ~clients:6 params in
  Array.iter
    (fun c -> Rbft.Client.send_burst c ~count:40)
    (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.sec 4);
  let busy, retries =
    Array.fold_left
      (fun (b, r) c -> (b + Rbft.Client.busy_replies c, r + Rbft.Client.retries c))
      (0, 0) (Rbft.Cluster.clients cluster)
  in
  let shed =
    Array.fold_left
      (fun acc node -> acc + Rbft.Node.admission_shed node)
      0 (Rbft.Cluster.nodes cluster)
  in
  Alcotest.(check bool) "gate shed some of the crowd" true (shed > 0);
  Alcotest.(check bool) "clients saw BUSY" true (busy > 0);
  Alcotest.(check bool) "clients retried" true (retries > 0);
  Array.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "client %d completed everything" (Rbft.Client.id c))
        (Rbft.Client.sent c) (Rbft.Client.completed c))
    (Rbft.Cluster.clients cluster);
  Array.iter
    (fun node ->
      Alcotest.(check int)
        (Printf.sprintf "node %d released every slot" (Rbft.Node.id node))
        0
        (Rbft.Node.admission_inflight node))
    (Rbft.Cluster.nodes cluster);
  Alcotest.(check bool) "agreement" true (Rbft.Cluster.agreement_ok cluster ~faulty:[]);
  Alcotest.(check int) "no auditor violations" 0
    (List.length (Bftaudit.Auditor.violations auditor));
  Bftaudit.Auditor.detach auditor

(* Gate off (budget 0): no BUSY traffic, no retries, no watchdog — the
   flow-control layer must be invisible until enabled. *)
let test_gate_off_is_silent () =
  let cluster = Rbft.Cluster.create ~clients:4 (mk_params ()) in
  Array.iter
    (fun c -> Rbft.Client.send_burst c ~count:30)
    (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.sec 3);
  Array.iter
    (fun c ->
      Alcotest.(check int) "no busy" 0 (Rbft.Client.busy_replies c);
      Alcotest.(check int) "no retries" 0 (Rbft.Client.retries c);
      Alcotest.(check int) "all completed" (Rbft.Client.sent c)
        (Rbft.Client.completed c))
    (Rbft.Cluster.clients cluster)

(* ------------------------------------------------------------------ *)
(* Cluster: sharded kvstore execution                                 *)
(* ------------------------------------------------------------------ *)

(* Four execution lanes over a kvstore. Each client writes its own key
   space (distinct keys commute), replicas route by the deterministic
   key hash, and the submission-time digest chain must keep all nodes
   in agreement. *)
let test_sharded_kvstore_agreement () =
  let params = { (mk_params ()) with Rbft.Params.exec_shards = 4 } in
  let cluster =
    Rbft.Cluster.create
      ~service:(fun () -> Bftapp.Kvstore.service (Bftapp.Kvstore.create ()))
      ~clients:4 params
  in
  Array.iter
    (fun c ->
      let id = Rbft.Client.id c in
      (Rbft.Client.behaviour c).Rbft.Client.make_op <-
        Some
          (fun rid ->
            Bftapp.Kvstore.encode_op
              (Bftapp.Kvstore.Put
                 (Printf.sprintf "c%d-k%d" id (rid mod 7), string_of_int rid))))
    (Rbft.Cluster.clients cluster);
  Array.iter (fun c -> Rbft.Client.set_rate c 400.0) (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.sec 1);
  Array.iter (fun c -> Rbft.Client.set_rate c 0.0) (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.sec 1);
  Array.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "client %d completed" (Rbft.Client.id c))
        (Rbft.Client.sent c) (Rbft.Client.completed c))
    (Rbft.Cluster.clients cluster);
  Alcotest.(check bool) "sent something" true
    (Rbft.Client.sent (Rbft.Cluster.client cluster 0) > 0);
  Alcotest.(check bool) "sharded agreement" true
    (Rbft.Cluster.agreement_ok cluster ~faulty:[])

(* Sharding plus the admission gate together, under a burst. *)
let test_sharded_kvstore_with_admission () =
  let params =
    { (mk_params ()) with
      Rbft.Params.exec_shards = 4;
      admission_budget = 16;
      busy_retry_base = Time.ms 2 }
  in
  let cluster =
    Rbft.Cluster.create
      ~service:(fun () -> Bftapp.Kvstore.service (Bftapp.Kvstore.create ()))
      ~clients:4 params
  in
  Array.iter
    (fun c ->
      let id = Rbft.Client.id c in
      (Rbft.Client.behaviour c).Rbft.Client.make_op <-
        Some
          (fun rid ->
            Bftapp.Kvstore.encode_op
              (Bftapp.Kvstore.Put (Printf.sprintf "c%d-k%d" id rid, "v")));
      Rbft.Client.send_burst c ~count:30)
    (Rbft.Cluster.clients cluster);
  Rbft.Cluster.run_for cluster (Time.sec 4);
  Array.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "client %d completed" (Rbft.Client.id c))
        (Rbft.Client.sent c) (Rbft.Client.completed c))
    (Rbft.Cluster.clients cluster);
  Alcotest.(check bool) "agreement" true (Rbft.Cluster.agreement_ok cluster ~faulty:[])

let suites =
  [
    ( "flow.batcher",
      [
        Alcotest.test_case "idle keeps config" `Quick test_batcher_idle_keeps_config;
        Alcotest.test_case "monotone and bounded" `Quick
          test_batcher_monotone_and_bounded;
      ] );
    ( "flow.admission",
      [
        Alcotest.test_case "budget and release" `Quick
          test_admission_budget_and_release;
        Alcotest.test_case "disabled gate" `Quick test_admission_disabled;
      ] );
    ( "flow.backoff",
      [
        Alcotest.test_case "determinism" `Quick test_backoff_determinism;
        Alcotest.test_case "growth, cap, hint" `Quick
          test_backoff_growth_cap_and_hint;
      ] );
    ( "flow.shard",
      [ Alcotest.test_case "index placement" `Quick test_shard_index ] );
    ( "flow.cluster",
      [
        Alcotest.test_case "flash crowd sheds and recovers" `Quick
          test_flash_crowd_sheds_and_recovers;
        Alcotest.test_case "gate off is silent" `Quick test_gate_off_is_silent;
        Alcotest.test_case "sharded kvstore agreement" `Quick
          test_sharded_kvstore_agreement;
        Alcotest.test_case "sharded kvstore with admission" `Quick
          test_sharded_kvstore_with_admission;
      ] );
  ]
