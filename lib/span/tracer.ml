(** The global span tracer.

    Follows the {!Bftaudit.Bus} discipline: a single [enabled] ref read
    plus an integer compare on every hot-path hook, so instrumentation
    costs a few nanoseconds when tracing is off. Spans live in one
    growable array indexed by id (ids are allocation order, which makes
    captures deterministic for a deterministic simulation).

    Context propagates as a bare span id ([int], [-1] = none): message
    sends carry it in the {!Dessim.Resource} job record and the network
    delivery record, and children inherit [client]/[rid] from their
    parent here, so call sites never thread trace metadata explicitly.

    Sampling is by request id: [sampled ~rid] decides at the root
    (client submit); every downstream hook is keyed on [parent >= 0],
    so a sampling decision propagates through the whole lifecycle for
    free. *)

open Dessim

let enabled = ref false
let sample_every = ref 1
let spans : Span.t array ref = ref [||]
let len = ref 0

let active () = !enabled

let sampled ~rid =
  !enabled && (!sample_every <= 1 || rid mod !sample_every = 0)

let sample_rate () = !sample_every

let ensure () =
  if !len >= Array.length !spans then begin
    let cap = max 1024 (2 * Array.length !spans) in
    let a = Array.make cap Span.dummy in
    Array.blit !spans 0 a 0 !len;
    spans := a
  end

let alloc ~parent ~client ~rid ~node ~instance ~tag ~t0 ~t1 =
  ensure ();
  let id = !len in
  !spans.(id) <-
    { Span.id; parent; client; rid; node; instance; tag; t0; t1 };
  incr len;
  id

let get id = !spans.(id)

(* Close hook: the doctor's flight recorder rings subscribe to the
   span stream here. One ref read + match per close while tracing is
   enabled; nothing at all when tracing is off (the [id >= 0] guards
   short-circuit first). *)
let close_hook_ref : (Span.t -> unit) option ref = ref None
let close_hook () = !close_hook_ref
let set_close_hook h = close_hook_ref := h

let notify_close s =
  match !close_hook_ref with Some f -> f s | None -> ()

let root ~client ~rid ~node ~instance ~tag ~t0 =
  if not !enabled then -1
  else
    alloc ~parent:(-1) ~client ~rid ~node ~instance ~tag ~t0 ~t1:Span.none

let span ~parent ~tag ~node ~instance ~t0 ~t1 =
  if parent < 0 || not !enabled then -1
  else
    let p = get parent in
    alloc ~parent ~client:p.Span.client ~rid:p.Span.rid ~node ~instance ~tag
      ~t0 ~t1

let start ~parent ~tag ~node ~instance ~t0 =
  span ~parent ~tag ~node ~instance ~t0 ~t1:Span.none

let finish id ~t1 =
  if id >= 0 && id < !len then begin
    let s = get id in
    s.Span.t1 <- t1;
    notify_close s
  end

(* A traced CPU job is a pair of consecutive spans: a queue-wait span
   opened at submission time and the work span proper. Both are closed
   by the resource hook when the job is dequeued, with the real
   (speed-scaled, charge-displaced) instants — no back-computation. The
   work span id (= queue id + 1) is what call sites carry around. *)
let job ~parent ~tag ~node ~instance ~now =
  if parent < 0 || not !enabled then -1
  else begin
    let p = get parent in
    let client = p.Span.client and rid = p.Span.rid in
    let _q : int =
      alloc ~parent ~client ~rid ~node ~instance ~tag:Tag.Queue_wait ~t0:now
        ~t1:Span.none
    in
    alloc ~parent ~client ~rid ~node ~instance ~tag ~t0:now ~t1:Span.none
  end

let on_job_start id ~start ~finish =
  if id >= 1 && id < !len then begin
    let w = get id in
    w.Span.t0 <- start;
    w.Span.t1 <- finish;
    let q = get (id - 1) in
    if q.Span.tag = Tag.Queue_wait && q.Span.parent = w.Span.parent
       && Span.is_open q
    then begin
      q.Span.t1 <- start;
      notify_close q
    end;
    notify_close w
  end

let enable ?(sample = 1) () =
  sample_every := max 1 sample;
  Resource.set_span_hook (Some on_job_start);
  ignore
    (Bftcap.Footprint.register ~owner:"tracer" ~name:"span.buffer"
       ~entries:(fun () -> !len)
       ~root:(fun () -> Some (Obj.repr !spans))
       ());
  enabled := true

let disable () = enabled := false

let reset () =
  spans := [||];
  len := 0;
  enabled := false

let count () = !len
let iter f = for i = 0 to !len - 1 do f !spans.(i) done

let to_array () = Array.sub !spans 0 !len

(* Chained over 64 KiB chunks of the JSONL rendering rather than span
   by span: the digest stays order- and prefix-sensitive, but a full
   1/1 capture (millions of spans) pays SHA-256 padding and finalisation
   once per chunk instead of once per span. Chunking and the
   final-partial-chunk flush live in {!Chunkdig}, so a truncated run
   (crash scenario, incident dump) digests its captured prefix exactly
   — [hex] folds the tail chunk in before reading the chain. *)
let digest_seed = "bftspan-trace-v1"

let digest_upto n =
  let d = Chunkdig.create ~seed:digest_seed () in
  let n = max 0 (min n !len) in
  for i = 0 to n - 1 do
    Chunkdig.add_line d (fun buf -> Span.write_json buf !spans.(i))
  done;
  Chunkdig.hex d

let digest () = digest_upto !len

let write_jsonl path =
  let oc = open_out path in
  let buf = Buffer.create 256 in
  iter (fun s ->
      Buffer.clear buf;
      Span.write_json buf s;
      Buffer.add_char buf '\n';
      Buffer.output_buffer oc buf);
  close_out oc
