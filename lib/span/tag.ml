(** Attribution tags: what a span's interval was spent on.

    Every span carries exactly one tag; the critical-path analyzer
    charges each nanosecond of a request's end-to-end latency to one
    tag, so the set below is the row space of the latency-budget
    tables. *)

type t =
  | Client  (** root span: client submit until f+1 matching replies *)
  | Net_transit  (** wire time: serialization + propagation + ingress *)
  | Queue_wait  (** waiting behind other jobs on a CPU thread *)
  | Crypto_verify  (** MAC / signature verification work *)
  | Crypto_sign  (** MAC / signature generation work *)
  | Propagate  (** RBFT PROPAGATE handling (f+1 agreement on requests) *)
  | Dispatch  (** handing a verified request to the ordering instances *)
  | Batch_wait  (** ordered instance: submit until PRE-PREPARE accepted *)
  | Prepare  (** PRE-PREPARE accepted until prepared (2f PREPAREs) *)
  | Commit  (** prepared until ordered (2f+1 COMMITs) *)
  | Sequence  (** concurrent ordering: committed until merged into the
                  global execution order (Bftrcc.Sequencer) *)
  | Execution  (** state-machine execution of the operation *)
  | Reply  (** reply transit back to the client *)
  | Backoff
      (** client-side wait after BUSY backpressure replies, before the
          retry of the same request (admission gate, Bftflow) *)
  | Other

let name = function
  | Client -> "client"
  | Net_transit -> "net-transit"
  | Queue_wait -> "queue-wait"
  | Crypto_verify -> "crypto-verify"
  | Crypto_sign -> "crypto-sign"
  | Propagate -> "propagate"
  | Dispatch -> "dispatch"
  | Batch_wait -> "batch-wait"
  | Prepare -> "prepare"
  | Commit -> "commit"
  | Sequence -> "sequence"
  | Execution -> "execution"
  | Reply -> "reply"
  | Backoff -> "backoff"
  | Other -> "other"

let all =
  [
    Client;
    Net_transit;
    Queue_wait;
    Crypto_verify;
    Crypto_sign;
    Propagate;
    Dispatch;
    Batch_wait;
    Prepare;
    Commit;
    Sequence;
    Execution;
    Reply;
    Backoff;
    Other;
  ]

let of_name s = List.find_opt (fun t -> name t = s) all
