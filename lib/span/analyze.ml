(** Span-tree analysis: critical path, latency budget, fairness.

    A captured run yields one span tree per sampled request. For every
    request whose root closed (the client saw f+1 matching replies) we
    compute a {e critical path}: walking backwards from the reply
    instant, repeatedly pick the latest-finishing closed span at or
    before the cursor ("last finisher"), charge its interval to its
    tag, charge any gap to the tag of the span that follows it, and
    continue from its start. The segments partition the root interval
    exactly, so per-stage shares sum to exactly 1.0 — the acceptance
    bound of "within 1%" holds by construction. *)

open Dessim

type seg = { seg_tag : Tag.t; seg_node : int; seg_from : Time.t; seg_to : Time.t }

type trace = {
  root : Span.t;
  spans : Span.t list;  (** every span of the trace, root included *)
  total : Time.t;  (** root duration; zero for open roots *)
  budget : (Tag.t * Time.t) list;  (** critical-path time per tag *)
  path : seg list;  (** chronological critical-path segments *)
}

type stage_row = {
  tag : Tag.t;
  total_ns : float;  (** summed over committed traces *)
  share : float;  (** of summed end-to-end latency *)
  p50_ms : float;  (** per-request attributed time percentiles *)
  p99_ms : float;
}

type summary = {
  span_count : int;
  sampled : int;  (** root spans seen *)
  committed : int;  (** roots that closed *)
  open_roots : int;  (** dropped or still-in-flight requests *)
  open_spans : int;  (** non-root spans left open *)
  orphans : int;  (** spans whose parent id is absent *)
  stages : stage_row list;  (** non-zero stages, canonical tag order *)
  share_sum : float;
  total_p50_ms : float;
  total_p99_ms : float;
  traces : trace list;  (** committed traces, slowest first *)
}

let percentile xs p =
  match xs with
  | [||] -> 0.0
  | _ ->
    let xs = Array.copy xs in
    Array.sort compare xs;
    let n = Array.length xs in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    xs.(max 0 (min (n - 1) (rank - 1)))

(* Last-finisher backward walk over one trace. *)
let attribute root spans =
  let cands =
    List.filter (fun s -> s.Span.id <> root.Span.id && not (Span.is_open s)) spans
    |> Array.of_list
  in
  Array.sort
    (fun a b ->
      compare (a.Span.t1, a.Span.t0, a.Span.id) (b.Span.t1, b.Span.t0, b.Span.id))
    cands;
  let segs = ref [] in
  let add tag node a b =
    if b > a then
      segs := { seg_tag = tag; seg_node = node; seg_from = a; seg_to = b } :: !segs
  in
  let t = ref root.Span.t1 in
  let next_tag = ref root.Span.tag and next_node = ref root.Span.node in
  let i = ref (Array.length cands - 1) in
  while !t > root.Span.t0 && !i >= 0 do
    let c = cands.(!i) in
    decr i;
    if c.Span.t1 <= !t && c.Span.t1 > root.Span.t0 then begin
      add !next_tag !next_node c.Span.t1 !t;
      let s0 = Time.max c.Span.t0 root.Span.t0 in
      add c.Span.tag c.Span.node s0 (Time.min c.Span.t1 !t);
      t := s0;
      next_tag := c.Span.tag;
      next_node := c.Span.node
    end
  done;
  add !next_tag !next_node root.Span.t0 !t;
  let path = !segs in
  let budget = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let d = Time.sub s.seg_to s.seg_from in
      let prev = try Hashtbl.find budget s.seg_tag with Not_found -> Time.zero in
      Hashtbl.replace budget s.seg_tag (Time.add prev d))
    path;
  let budget =
    List.filter_map
      (fun tag ->
        match Hashtbl.find_opt budget tag with
        | Some d when d > Time.zero -> Some (tag, d)
        | _ -> None)
      Tag.all
  in
  (budget, path)

let traces_of_spans spans =
  (* Group by (client, rid); roots have parent = -1. *)
  let by_req = Hashtbl.create 256 in
  Array.iter
    (fun s ->
      let key = (s.Span.client, s.Span.rid) in
      Hashtbl.replace by_req key
        (s :: (try Hashtbl.find by_req key with Not_found -> [])))
    spans;
  let traces = ref [] and rootless = ref 0 in
  Hashtbl.iter
    (fun _ group ->
      let group = List.rev group in
      match List.find_opt (fun s -> s.Span.parent = -1) group with
      | None -> rootless := !rootless + List.length group
      | Some root ->
        let total = Span.duration root in
        let budget, path =
          if Span.is_open root then ([], []) else attribute root group
        in
        traces := { root; spans = group; total; budget; path } :: !traces)
    by_req;
  (!traces, !rootless)

(* Tree well-formedness: every parent exists, belongs to the same
   request, and does not start after its child. Returns human-readable
   violations; [] means every trace is a well-formed tree. *)
let check_trees spans =
  let by_id = Hashtbl.create (Array.length spans) in
  Array.iter (fun s -> Hashtbl.replace by_id s.Span.id s) spans;
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  Array.iter
    (fun s ->
      if s.Span.parent >= 0 then
        match Hashtbl.find_opt by_id s.Span.parent with
        | None -> err "span %d: orphan (parent %d absent)" s.Span.id s.Span.parent
        | Some p ->
          if p.Span.client <> s.Span.client || p.Span.rid <> s.Span.rid then
            err "span %d: parent %d belongs to another request" s.Span.id
              p.Span.id;
          if s.Span.t0 < p.Span.t0 then
            err "span %d: starts before its parent %d" s.Span.id p.Span.id)
    spans;
  List.rev !errs

let summarize spans =
  let traces, rootless = traces_of_spans spans in
  let committed, open_t = List.partition (fun t -> not (Span.is_open t.root)) traces in
  let committed = List.sort (fun a b -> compare b.total a.total) committed in
  let open_spans =
    Array.fold_left
      (fun acc s -> if s.Span.parent >= 0 && Span.is_open s then acc + 1 else acc)
      0 spans
  in
  let totals =
    Array.of_list (List.map (fun t -> Time.to_ms_f t.total) committed)
  in
  let grand_total =
    List.fold_left (fun acc t -> Time.add acc t.total) Time.zero committed
  in
  let stages =
    List.filter_map
      (fun tag ->
        let per_req =
          List.map
            (fun t ->
              match List.assoc_opt tag t.budget with
              | Some d -> Time.to_ms_f d
              | None -> 0.0)
            committed
        in
        let total_ns =
          List.fold_left
            (fun acc t ->
              match List.assoc_opt tag t.budget with
              | Some d -> acc +. float_of_int (d : Time.t)
              | None -> acc)
            0.0 committed
        in
        if total_ns <= 0.0 then None
        else
          let arr = Array.of_list per_req in
          Some
            {
              tag;
              total_ns;
              share =
                (if grand_total > Time.zero then
                   total_ns /. float_of_int (grand_total : Time.t)
                 else 0.0);
              p50_ms = percentile arr 50.0;
              p99_ms = percentile arr 99.0;
            })
      Tag.all
  in
  {
    span_count = Array.length spans;
    sampled = List.length traces;
    committed = List.length committed;
    open_roots = List.length open_t;
    open_spans;
    orphans = rootless;
    stages;
    share_sum = List.fold_left (fun acc r -> acc +. r.share) 0.0 stages;
    total_p50_ms = percentile totals 50.0;
    total_p99_ms = percentile totals 99.0;
    traces = committed;
  }

let dominant_stage t =
  match
    List.sort (fun (_, a) (_, b) -> compare (b : Time.t) (a : Time.t)) t.budget
  with
  | [] -> (Tag.Other, Time.zero)
  | hd :: _ -> hd

let per_client committed =
  let by_client = Hashtbl.create 32 in
  List.iter
    (fun t ->
      let c = t.root.Span.client in
      Hashtbl.replace by_client c
        (Time.to_ms_f t.total
        :: (try Hashtbl.find by_client c with Not_found -> [])))
    committed;
  Hashtbl.fold
    (fun c xs acc ->
      let arr = Array.of_list xs in
      (c, Array.length arr, percentile arr 50.0, percentile arr 99.0) :: acc)
    by_client []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Reports                                                            *)
(* ------------------------------------------------------------------ *)

let report ?(slowest = 5) summary =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "spans: %d   requests: %d sampled, %d committed, %d open%s\n"
    summary.span_count summary.sampled summary.committed summary.open_roots
    (if summary.orphans > 0 then
       Printf.sprintf ", %d orphan spans" summary.orphans
     else "");
  if summary.open_roots > 0 then
    p "  (open requests were dropped or still in flight at cutoff)\n";
  p "end-to-end latency: p50 %.3f ms   p99 %.3f ms\n" summary.total_p50_ms
    summary.total_p99_ms;
  p "\nper-stage critical-path attribution:\n";
  p "  %-14s %8s %12s %12s\n" "stage" "share" "p50(ms)" "p99(ms)";
  List.iter
    (fun r ->
      p "  %-14s %7.2f%% %12.4f %12.4f\n" (Tag.name r.tag) (100.0 *. r.share)
        r.p50_ms r.p99_ms)
    summary.stages;
  p "  %-14s %7.2f%%\n" "TOTAL" (100.0 *. summary.share_sum);
  (match summary.traces with
  | [] -> ()
  | traces ->
    p "\nslowest %d requests (critical path):\n"
      (min slowest (List.length traces));
    List.iteri
      (fun i t ->
        if i < slowest then begin
          let dtag, dns = dominant_stage t in
          p "  #%d client %d rid %d: %.3f ms, dominant stage %s (%.1f%%)\n"
            (i + 1) t.root.Span.client t.root.Span.rid (Time.to_ms_f t.total)
            (Tag.name dtag)
            (if t.total > Time.zero then
               100.0 *. float_of_int (dns : Time.t)
               /. float_of_int (t.total : Time.t)
             else 0.0);
          List.iter
            (fun s ->
              p "      %-14s %9.4f ms%s\n" (Tag.name s.seg_tag)
                (Time.to_ms_f (Time.sub s.seg_to s.seg_from))
                (if s.seg_node >= 0 then Printf.sprintf "  (node %d)" s.seg_node
                 else ""))
            t.path
        end)
      traces);
  Buffer.contents buf

(* [summary.traces] already holds exactly the committed traces, so the
   client table reuses them instead of regrouping millions of spans. *)
let client_report summary =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "per-client latency spread:\n";
  p "  %-8s %6s %12s %12s\n" "client" "n" "p50(ms)" "p99(ms)";
  List.iter
    (fun (c, n, p50, p99) -> p "  %-8d %6d %12.4f %12.4f\n" c n p50 p99)
    (per_client summary.traces);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSONL input and Chrome trace_event output                          *)
(* ------------------------------------------------------------------ *)

let read_jsonl path =
  let ic = open_in path in
  let acc = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then
            match Span.of_json_opt line with
            | Some s -> acc := s :: !acc
            | None -> failwith (Printf.sprintf "unparsable span line: %s" line)
        done
      with End_of_file -> ());
  Array.of_list (List.rev !acc)

(* Chrome about:tracing / Perfetto export. Spans become complete ("X")
   events; audit-bus events, when a capture is supplied, join the same
   timeline as instant ("i") events with the identical pid = node /
   tid = instance mapping, so nested spans and flat audit marks align.
   Client-side spans (node = -1) keep pid = -1 and use tid = client so
   each client gets its own lane. [counters] adds named counter ("C")
   series — GC/heap telemetry from {!Bftcap.Gcstats.counter_series} —
   on pid 0 so heap growth lines up with the span timeline. *)
let write_chrome ?audit ?(counters = []) spans path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc {|{"displayTimeUnit":"ms","traceEvents":[|};
      let first = ref true in
      let sep () = if !first then first := false else output_char oc ',' in
      Array.iter
        (fun s ->
          if not (Span.is_open s) then begin
            sep ();
            let tid = if s.Span.node < 0 then s.Span.client else s.Span.instance in
            Printf.fprintf oc
              {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"id":%d,"parent":%d,"client":%d,"rid":%d}}|}
              (Tag.name s.Span.tag)
              (Time.to_us_f s.Span.t0)
              (Time.to_us_f (Span.duration s))
              s.Span.node tid s.Span.id s.Span.parent s.Span.client s.Span.rid
          end)
        spans;
      (match audit with
      | None -> ()
      | Some capture ->
        Bftaudit.Capture.iter_events capture (fun ev ->
            sep ();
            Printf.fprintf oc
              {|{"name":"%s","ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d,"args":{%s}}|}
              (Bftaudit.Event.kind_name ev.Bftaudit.Event.kind)
              (Time.to_us_f ev.Bftaudit.Event.time)
              ev.Bftaudit.Event.node ev.Bftaudit.Event.instance
              (Bftaudit.Event.args_json ev.Bftaudit.Event.kind)));
      List.iter
        (fun (name, points) ->
          List.iter
            (fun (at, v) ->
              sep ();
              Printf.fprintf oc
                {|{"name":"%s","ph":"C","ts":%.3f,"pid":0,"tid":0,"args":{"value":%.0f}}|}
                name (Time.to_us_f at) v)
            points)
        counters;
      output_string oc "]}")
