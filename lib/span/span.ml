(** One span: a tagged interval of virtual time belonging to one
    request's trace.

    Spans form a tree per request: the root is the client span (submit
    to f+1 matching replies) and children link to their parent by span
    id. Ids are allocated in emission order by {!Tracer}, which makes
    the JSONL serialisation of a run deterministic. A span with
    [t1 < 0] is still open — for a request that was dropped, or work
    still in flight when the simulation stopped. *)

open Dessim

type t = {
  id : int;
  parent : int;  (** parent span id, [-1] for a trace root *)
  client : int;
  rid : int;  (** request id within the client, copied from the root *)
  node : int;  (** executing node, [-1] for client-side spans *)
  instance : int;  (** protocol instance, [-1] if not instance-scoped *)
  tag : Tag.t;
  mutable t0 : Time.t;
  mutable t1 : Time.t;  (** [< 0] while the span is open *)
}

let none = Time.ns (-1)
let is_open s = s.t1 < Time.zero

let dummy =
  {
    id = -1;
    parent = -1;
    client = -1;
    rid = -1;
    node = -1;
    instance = -1;
    tag = Tag.Other;
    t0 = Time.zero;
    t1 = none;
  }

let duration s = if is_open s then Time.zero else Time.sub s.t1 s.t0

(* Buffer-based rendering: a full 1/1 capture serialises millions of
   spans (digest, JSONL export), where [Printf.sprintf] alone costs more
   than the hashing. *)
let write_json buf s =
  let int k v =
    Buffer.add_string buf k;
    Buffer.add_string buf (string_of_int v)
  in
  int {|{"id":|} s.id;
  int {|,"parent":|} s.parent;
  int {|,"client":|} s.client;
  int {|,"rid":|} s.rid;
  int {|,"node":|} s.node;
  int {|,"instance":|} s.instance;
  Buffer.add_string buf {|,"tag":"|};
  Buffer.add_string buf (Tag.name s.tag);
  int {|","t0":|} (s.t0 : Time.t);
  int {|,"t1":|} (s.t1 : Time.t);
  Buffer.add_char buf '}'

let to_json s =
  let buf = Buffer.create 128 in
  write_json buf s;
  Buffer.contents buf

(* Hand-rolled flat-object JSONL parsing (the repository deliberately
   carries no JSON dependency). Robust to field reordering and extra
   whitespace, not to nesting — span lines are always flat. *)

let index_of s pat =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then -1 else if String.sub s i m = pat then i else go (i + 1)
  in
  go 0

let int_field s key =
  let pat = Printf.sprintf "\"%s\":" key in
  let i = index_of s pat in
  if i < 0 then None
  else begin
    let n = String.length s in
    let j = ref (i + String.length pat) in
    while !j < n && s.[!j] = ' ' do incr j done;
    let start = !j in
    if !j < n && s.[!j] = '-' then incr j;
    while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
    if !j = start then None
    else int_of_string_opt (String.sub s start (!j - start))
  end

let str_field s key =
  let pat = Printf.sprintf "\"%s\":" key in
  let i = index_of s pat in
  if i < 0 then None
  else begin
    let n = String.length s in
    let j = ref (i + String.length pat) in
    while !j < n && s.[!j] = ' ' do incr j done;
    if !j >= n || s.[!j] <> '"' then None
    else begin
      incr j;
      let start = !j in
      while !j < n && s.[!j] <> '"' do incr j done;
      if !j >= n then None else Some (String.sub s start (!j - start))
    end
  end

let of_json_opt line =
  match
    ( int_field line "id",
      int_field line "parent",
      int_field line "client",
      int_field line "rid",
      int_field line "node",
      int_field line "instance",
      str_field line "tag",
      int_field line "t0",
      int_field line "t1" )
  with
  | ( Some id,
      Some parent,
      Some client,
      Some rid,
      Some node,
      Some instance,
      Some tag,
      Some t0,
      Some t1 ) ->
    let tag = match Tag.of_name tag with Some t -> t | None -> Tag.Other in
    Some
      { id; parent; client; rid; node; instance; tag; t0 = Time.ns t0; t1 = Time.ns t1 }
  | _ -> None
