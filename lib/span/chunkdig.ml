(** Chunk-chained SHA-256 over a line stream.

    The capture digest discipline shared by span captures (and reused
    by the doctor's bundles): lines are accumulated into ~64 KiB
    chunks and each full chunk folds into a running chain,

    {[ chain := SHA-256 (chain ^ chunk) ]}

    seeded with a version string. The digest is order- and
    prefix-sensitive but pays SHA-256 finalisation once per chunk
    rather than once per line.

    The subtle part is the {e final partial} chunk: a run that
    terminates early (a crash scenario, an incident dump mid-run)
    leaves the buffer partly full, and that tail must fold into the
    chain exactly like a full chunk — otherwise every line since the
    last 64 KiB boundary silently drops out of the digest and a
    truncated capture can collide with its own prefix. {!hex} flushes
    before reading the chain, so callers cannot observe an unflushed
    digest; {!flush} is exposed for streaming writers that sync the
    chain at checkpoints. *)

(* Chunk boundary policy: a chunk closes when, after appending a line,
   the buffer has reached [chunk - slack] bytes. [slack] keeps the
   boundary decision identical to the historical per-line check, so
   digests of existing captures are unchanged. *)
let default_chunk = 64 * 1024
let slack = 256

type t = {
  chunk : int;
  mutable chain : string;  (* raw 32-byte digest *)
  buf : Buffer.t;
}

let create ?(chunk = default_chunk) ~seed () =
  {
    chunk;
    chain = Bftcrypto.Sha256.digest_string seed;
    buf = Buffer.create (min chunk default_chunk);
  }

let flush t =
  if Buffer.length t.buf > 0 then begin
    t.chain <- Bftcrypto.Sha256.digest_string (t.chain ^ Buffer.contents t.buf);
    Buffer.clear t.buf
  end

(** Append one line ([writer] emits the line body; the trailing
    newline is added here). *)
let add_line t writer =
  writer t.buf;
  Buffer.add_char t.buf '\n';
  if Buffer.length t.buf >= t.chunk - slack then flush t

let add_string_line t s = add_line t (fun buf -> Buffer.add_string buf s)

(** Flush the final partial chunk and return the chain in hex. *)
let hex t =
  flush t;
  Bftcrypto.Sha256.to_hex t.chain
