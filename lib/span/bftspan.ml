(** Causal per-request tracing with critical-path latency attribution.

    {!Tracer} is a global, zero-cost-when-disabled span recorder (the
    {!Bftaudit.Bus} discipline): instrumentation in the client, network
    and every protocol stack opens {!Span}s tagged with a {!Tag}
    describing what the interval was spent on, linked into one tree per
    request by span ids carried inside simulated messages and CPU jobs.
    {!Analyze} turns a capture into per-stage latency budgets (critical
    path via a last-finisher backward walk), slowest-request
    breakdowns, per-client fairness tables, and Chrome trace_event
    exports aligned with {!Bftaudit.Capture}. *)

module Tag = Tag
module Span = Span
module Chunkdig = Chunkdig
module Tracer = Tracer
module Analyze = Analyze
