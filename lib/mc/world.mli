(** One schedulable RBFT universe for the model checker.

    A world is a full simulated cluster (engine, network, 3f+1 nodes,
    one client) put under checker control: message deliveries to nodes
    park as {e choice events} instead of firing in timestamp order
    ({!Dessim.Engine.set_choice_capture}), and virtual time advances
    only in fixed per-step slices, so a state is a pure function of the
    schedule prefix — replaying the same choice ids reconstructs the
    same world bit-for-bit.

    Determinism ingredients: the heap's total event order, a fixed
    seed, zero network jitter (no per-send randomness), and
    depth-indexed slice horizons (the clock never depends on {e which}
    choice fired, only on {e how many}). *)

open Dessim

type config = {
  f : int;  (** cluster size is 3f+1 *)
  requests : int;  (** client burst size — the whole workload *)
  crashes : int list;  (** nodes crashed from t=0 for the whole run *)
  mutate : bool;  (** install the broken ic-quorum=1 mutation *)
  depth : int;  (** schedule length bound (used by {!Search}) *)
  slice : Time.t;  (** virtual time advanced after each delivery *)
  drain : Time.t;  (** settle horizon for {!evaluate} *)
  lambda : Time.t;  (** Λ handed to the protocol (IC trigger path) *)
  seed : int64;
}

val default_config : config
(** n=4 (f=1), 2 requests, no crashes, unmutated, depth 6, 100 us
    slices, 300 ms drain, Λ = 300 us. *)

val correct_nodes : config -> int list
(** Node ids not crashed under this config. *)

type t

val create : config -> t
(** Build the cluster, attach a (non-raising) safety auditor and the
    instance-change liveness monitor, install the crash plan, send the
    client burst and run slice 0 so the initial deliveries park. *)

val destroy : t -> unit
(** Detach the bus sinks. Must be called on every world — the search
    creates thousands, and leaked subscriptions would slow the bus and
    corrupt later auditors. *)

val replay : config -> int list -> t
(** [replay cfg ids] = [create cfg] then fire the given choice ids in
    order: the checkpoint/replay primitive of the stateless search.
    Raises [Invalid_argument] if an id fails to reappear (a determinism
    regression). *)

val pending : t -> Engine.choice list
(** All parked deliveries, in creation order. *)

val enabled : t -> Engine.choice list
(** The schedulable frontier: the oldest parked delivery of each
    (src, dst) channel — TCP FIFO means later ones on the same channel
    cannot overtake. Ascending id order. *)

val step : t -> Engine.choice -> unit
(** Fire one enabled delivery, then advance exactly one slice. *)

val step_id : t -> int -> unit
(** {!step} by choice id (replay path). *)

val depth : t -> int
(** Choices fired so far. *)

val fired : t -> int list
(** The schedule prefix (choice ids, firing order). *)

val violations : t -> Bftaudit.Auditor.violation list
(** Safety violations recorded so far — checked after every step, so a
    safety bug is caught at the step that commits it, not at the leaf. *)

val fingerprint : t -> string
(** Canonical digest of (depth, per-node protocol state, parked
    deliveries); equal fingerprints ⇒ identical remaining behaviour,
    the visited-set key. *)

type verdict = {
  safety : Bftaudit.Auditor.violation list;
  liveness : Bftaudit.Liveness.problem list;
  agreement : bool;  (** execution digests agree across correct nodes *)
}

val verdict_clean : verdict -> bool

val evaluate : t -> verdict
(** Terminate the schedule: release parked deliveries to timestamp
    order, drain, then check safety, instance-change liveness and
    execution agreement. The world is spent afterwards (one-shot). *)

val describe : Rbft.Messages.t -> string
(** The delivery-label function installed on the network. *)
