open Dessim
open Pbftcore.Types

type config = {
  f : int;
  requests : int;
  crashes : int list;
  mutate : bool;
  depth : int;
  slice : Time.t;
  drain : Time.t;
  lambda : Time.t;
  seed : int64;
}

let default_config =
  {
    f = 1;
    requests = 2;
    crashes = [];
    mutate = false;
    depth = 6;
    slice = Time.us 100;
    drain = Time.ms 300;
    lambda = Time.us 300;
    seed = 1L;
  }

type t = {
  cfg : config;
  cluster : Rbft.Cluster.t;
  engine : Engine.t;
  auditor : Bftaudit.Auditor.t;
  liveness : Bftaudit.Liveness.t;
  injector : Bftchaos.Injector.t;
  mutable horizon : Time.t;  (* clock after the last completed slice *)
  mutable fired : int list;  (* choice ids fired so far, newest first *)
  mutable drained : bool;
}

let hex8 s =
  if s = "" then "-"
  else
    let h = Bftcrypto.Sha256.to_hex s in
    if String.length h > 8 then String.sub h 0 8 else h

(* Content-based delivery labels: enough to identify the message in a
   counterexample listing and to distinguish deliveries in state
   fingerprints, with no timestamps or other schedule-dependent data. *)
let describe (m : Rbft.Messages.t) =
  match m with
  | Rbft.Messages.Request r ->
    Printf.sprintf "req:c%d.%d" r.Rbft.Messages.desc.id.client
      r.Rbft.Messages.desc.id.rid
  | Rbft.Messages.Propagate { req; from; junk } ->
    Printf.sprintf "prop:c%d.%d@%d%s" req.Rbft.Messages.desc.id.client
      req.Rbft.Messages.desc.id.rid from
      (if junk then "!" else "")
  | Rbft.Messages.Propagate_batch { reqs; owner; from } ->
    (* Not reachable in checked configurations (the checker runs the
       redundant ordering only), but labelled for completeness. *)
    Printf.sprintf "propb:i%d.%d@%d" owner (List.length reqs) from
  | Rbft.Messages.Instance { instance; msg } ->
    let detail =
      match msg with
      | Pbftcore.Messages.Pre_prepare { view; seq; descs } ->
        Printf.sprintf "pp.v%d.s%d.%d" view seq (List.length descs)
      | Pbftcore.Messages.Prepare { view; seq; digest; replica } ->
        Printf.sprintf "p.v%d.s%d.r%d.%s" view seq replica (hex8 digest)
      | Pbftcore.Messages.Commit { view; seq; digest; replica } ->
        Printf.sprintf "c.v%d.s%d.r%d.%s" view seq replica (hex8 digest)
      | Pbftcore.Messages.Checkpoint { seq; state_digest; replica } ->
        Printf.sprintf "ck.s%d.r%d.%s" seq replica (hex8 state_digest)
      | Pbftcore.Messages.View_change { new_view; replica; _ } ->
        Printf.sprintf "vc.v%d.r%d" new_view replica
      | Pbftcore.Messages.New_view { view; replica; _ } ->
        Printf.sprintf "nv.v%d.r%d" view replica
    in
    Printf.sprintf "i%d.%s" instance detail
  | Rbft.Messages.Instance_change { cpi; node } ->
    Printf.sprintf "ic:%d.n%d" cpi node
  | Rbft.Messages.Reply { id; node; _ } ->
    Printf.sprintf "rep:c%d.%d.n%d" id.client id.rid node
  | Rbft.Messages.Busy { id; node; _ } ->
    (* Not reachable in checked configurations (admission is off by
       default), but labelled for completeness. *)
    Printf.sprintf "busy:c%d.%d.n%d" id.client id.rid node

let correct_nodes cfg =
  let n = (3 * cfg.f) + 1 in
  List.filter
    (fun i -> not (List.mem i cfg.crashes))
    (List.init n (fun i -> i))

let create cfg =
  Bftaudit.Auditor.reset_declared ();
  let n = (3 * cfg.f) + 1 in
  let auditor =
    Bftaudit.Auditor.attach ~raise_on_violation:false ~n ~f:cfg.f ()
  in
  let liveness = Bftaudit.Liveness.attach () in
  let params =
    {
      (Rbft.Params.default ~f:cfg.f) with
      Rbft.Params.lambda = cfg.lambda;
      (* Tiny batch delay so a whole ordering round fits in a few
         slices; λ above is measured against slice-quantised time. *)
      batch_delay = Time.us 10;
      ic_quorum = (if cfg.mutate then Some 1 else None);
    }
  in
  (* Zero jitter: the only per-send randomness in the network. With it
     gone, a replayed schedule prefix reconstructs the exact engine
     state, and commuted independent deliveries meet in bit-identical
     states — both load-bearing for dedup and POR soundness. *)
  let net_config =
    {
      (Bftnet.Network.default_config ~nodes:n) with
      Bftnet.Network.jitter = Time.zero;
    }
  in
  let cluster =
    Rbft.Cluster.create ~seed:cfg.seed ~net_config ~clients:1 params
  in
  let engine = Rbft.Cluster.engine cluster in
  let net = Rbft.Cluster.network cluster in
  Bftnet.Network.set_describe net (Some describe);
  Engine.set_choice_capture engine true;
  let hooks =
    {
      Bftchaos.Injector.engine;
      n;
      set_fault_hook = Bftnet.Network.set_fault_hook net;
      set_cpu_factor =
        (fun ~node k ->
          Rbft.Node.set_cpu_factor (Rbft.Cluster.node cluster node) k);
      set_clock_factor =
        (fun ~node k ->
          Rbft.Node.set_clock_factor (Rbft.Cluster.node cluster node) k);
    }
  in
  (* Whole-run crashes only: the liveness rules assume a crashed node
     stays down (no retransmission exists to recover from a partial
     outage without timestamp freedom). *)
  let plan =
    List.map
      (fun node ->
        {
          Bftchaos.Fault.at = Time.zero;
          until = Time.sec 3600;
          kind = Bftchaos.Fault.Crash { node };
        })
      cfg.crashes
  in
  let injector = Bftchaos.Injector.install hooks ~seed:cfg.seed plan in
  (* The crash activations are plain t=0 engine events while the client
     burst below sends synchronously: run a hair of virtual time first
     so no request slips past a from-the-start crash. *)
  Engine.run ~until:(Time.add (Engine.now engine) (Time.ns 1)) engine;
  if cfg.requests > 0 then
    Rbft.Client.send_burst (Rbft.Cluster.client cluster 0) ~count:cfg.requests;
  let t =
    {
      cfg;
      cluster;
      engine;
      auditor;
      liveness;
      injector;
      horizon = Time.add (Engine.now engine) cfg.slice;
      fired = [];
      drained = false;
    }
  in
  (* Slice 0: sender-side NIC serialization of the burst runs and the
     initial deliveries park as choices. *)
  Engine.run ~until:t.horizon engine;
  t

let destroy t =
  Bftaudit.Auditor.detach t.auditor;
  Bftaudit.Liveness.detach t.liveness;
  Engine.set_choice_capture t.engine false

let fired t = List.rev t.fired

let pending t = Engine.pending_choices t.engine

(* TCP delivers in FIFO order per connection, so of all parked
   deliveries on one (src, dst) channel only the oldest is actually
   schedulable; the rest become enabled as the head is consumed. The
   egress NIC is itself FIFO, so creation-id order on a channel is send
   order. *)
let enabled t =
  let best : (int * int, Engine.choice) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (c : Engine.choice) ->
      let key = (c.Engine.src, c.Engine.dst) in
      match Hashtbl.find_opt best key with
      | Some (b : Engine.choice) when b.Engine.id <= c.Engine.id -> ()
      | Some _ | None -> Hashtbl.replace best key c)
    (pending t);
  Hashtbl.fold (fun _ c acc -> c :: acc) best []
  |> List.sort (fun (a : Engine.choice) b -> compare a.Engine.id b.Engine.id)

(* Fire one delivery, then advance exactly one slice. The slice horizon
   is a function of the step count alone — never of which choice fired
   — so two schedules that commute independent deliveries land on
   bit-identical states (clock included). *)
let step t (c : Engine.choice) =
  assert (not t.drained);
  let ok = Engine.fire_choice t.engine c.Engine.id in
  if not ok then
    invalid_arg
      (Printf.sprintf "World.step: choice %d not pending" c.Engine.id);
  t.fired <- c.Engine.id :: t.fired;
  t.horizon <- Time.add t.horizon t.cfg.slice;
  Engine.run ~until:t.horizon t.engine

let step_id t id =
  match
    List.find_opt (fun (c : Engine.choice) -> c.Engine.id = id) (pending t)
  with
  | Some c -> step t c
  | None -> invalid_arg (Printf.sprintf "World.step_id: choice %d not pending" id)

let depth t = List.length t.fired

let violations t = Bftaudit.Auditor.violations t.auditor

(* Chained digest over canonical per-node state plus the parked
   deliveries (channel-grouped, FIFO order within a channel, no ids or
   timestamps) and the depth. Depth matters because the search is
   bounded: the same protocol state reached nearer the root has more
   remaining exploration below it and must not be pruned by a deeper
   first visit. *)
let fingerprint t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "d%d;" (depth t));
  Array.iter
    (fun node ->
      let d = Bftcrypto.Sha256.digest_string (Rbft.Node.mc_fingerprint node) in
      Buffer.add_string buf d)
    (Rbft.Cluster.nodes t.cluster);
  pending t
  |> List.sort (fun (a : Engine.choice) (b : Engine.choice) ->
         compare
           (a.Engine.src, a.Engine.dst, a.Engine.id)
           (b.Engine.src, b.Engine.dst, b.Engine.id))
  |> List.iter (fun (c : Engine.choice) ->
         Buffer.add_string buf
           (Printf.sprintf "%d>%d:%s|" c.Engine.src c.Engine.dst c.Engine.label));
  Bftcrypto.Sha256.digest_string (Buffer.contents buf)

type verdict = {
  safety : Bftaudit.Auditor.violation list;
  liveness : Bftaudit.Liveness.problem list;
  agreement : bool;
}

let verdict_clean v = v.safety = [] && v.liveness = [] && v.agreement

(* End of a schedule: hand the parked deliveries back to timestamp
   order and drain, then judge. Liveness is only meaningful here — at
   quiescence every triggered instance change had its chance to
   complete. The world is spent afterwards. *)
let evaluate t =
  assert (not t.drained);
  t.drained <- true;
  Engine.set_choice_capture t.engine false;
  Engine.release_choices t.engine;
  Engine.run ~until:(Time.add (Engine.now t.engine) t.cfg.drain) t.engine;
  let safety = Bftaudit.Auditor.violations t.auditor in
  let liveness =
    Bftaudit.Liveness.check t.liveness
      ~quorum:((2 * t.cfg.f) + 1)
      ~correct:(correct_nodes t.cfg)
  in
  let agreement = Rbft.Cluster.agreement_ok t.cluster ~faulty:t.cfg.crashes in
  { safety; liveness; agreement }

(* Rebuild a world and re-fire a schedule prefix. Determinism of the
   engine (total heap order, fixed seed, zero jitter) guarantees the
   same choice ids reappear; a missing id means the substrate broke
   that promise, which is worth failing loudly over. *)
let replay cfg ids =
  let t = create cfg in
  List.iter (fun id -> step_id t id) ids;
  t
