open Dessim

type repro = {
  scenario : Bftchaos.Scenario.t;  (** final (possibly shrunk) scenario *)
  path : string option;  (** where the [.scn] file was written *)
  reproduced : bool;
  shrink_tests : int;
  target_digest : string;
}

(* One digest scheme for both property families: SHA-256 over the
   sorted distinct invariant names, via the auditor's helper. Liveness
   problems are folded in as pseudo-violations. *)
let target_digest (cex : Search.cex) =
  let of_liveness (p : Bftaudit.Liveness.problem) =
    {
      Bftaudit.Auditor.time = Time.zero;
      invariant = p.Bftaudit.Liveness.invariant;
      detail = p.Bftaudit.Liveness.detail;
    }
  in
  let agreement =
    if cex.Search.cex_agreement then []
    else
      [
        {
          Bftaudit.Auditor.time = Time.zero;
          invariant = "execution-divergence";
          detail = "execution digests diverged across correct nodes";
        };
      ]
  in
  Bftaudit.Auditor.invariant_digest
    (cex.Search.cex_safety
    @ List.map of_liveness cex.Search.cex_liveness
    @ agreement)

(* A schedule cannot be serialized into a fault plan — [.scn] has no
   delivery-order vocabulary — so the counterexample is re-expressed in
   the coordinates a scenario does have: same crash placement, same
   mutation, and the same tight Λ, under a rate-driven workload whose
   realistic ordering latency re-triggers the instance-change path on
   every run. For the mutation family this reproduces the identical
   invariant deterministically, which is what the shrinker needs. *)
let to_scenario ?(name = "mc-cex") (cex : Search.cex) =
  let cfg = cex.Search.cex_config in
  let duration = Time.ms 500 in
  {
    Bftchaos.Scenario.name;
    protocol = Bftchaos.Scenario.Rbft;
    f = cfg.World.f;
    seed = cfg.World.seed;
    duration;
    drain = Time.sec 1;
    workload = { Bftchaos.Scenario.clients = 2; rate = 200.0; payload = 8 };
    faults =
      List.map
        (fun node ->
          {
            Bftchaos.Fault.at = Time.zero;
            until = duration;
            kind = Bftchaos.Fault.Crash { node };
          })
        cfg.World.crashes;
    lambda = cfg.World.lambda;
    mutation =
      (if cfg.World.mutate then Some Bftchaos.Scenario.Ic_quorum_low else None);
  }

let reproduces ~target scenario =
  let r = Bftchaos.Runner.run scenario in
  r.Bftchaos.Runner.safety_violations <> []
  && String.equal
       (Bftaudit.Auditor.invariant_digest r.Bftchaos.Runner.safety_violations)
       target

let extract ?(budget = 200) ?out (cex : Search.cex) =
  let target = target_digest cex in
  let scenario = to_scenario cex in
  let finish scenario ~reproduced ~shrink_tests =
    Option.iter (Bftchaos.Scenario.save scenario) out;
    { scenario; path = out; reproduced; shrink_tests; target_digest = target }
  in
  if cex.Search.cex_safety = [] then
    (* Liveness/agreement findings depend on the exact schedule; the
       scenario documents the placement but a rate-driven replay is not
       expected to re-trigger them. Saved unshrunk. *)
    finish scenario ~reproduced:false ~shrink_tests:0
  else if not (reproduces ~target scenario) then
    finish scenario ~reproduced:false ~shrink_tests:0
  else
    let shrunk, shrink_tests =
      Bftchaos.Shrink.minimize ~budget (reproduces ~target) scenario
    in
    finish shrunk ~reproduced:true ~shrink_tests

let pp_principal ppf src =
  if src >= 0 then Format.fprintf ppf "n%d" src
  else Format.fprintf ppf "c%d" (-src - 1)

let pp_schedule ppf (cex : Search.cex) =
  List.iteri
    (fun i (c : Engine.choice) ->
      Format.fprintf ppf "  %2d. %a -> n%d  %s@." (i + 1) pp_principal
        c.Engine.src c.Engine.dst c.Engine.label)
    cex.Search.schedule

let pp ppf (cex : Search.cex) =
  Format.fprintf ppf "crashes: [%s]@."
    (String.concat "," (List.map string_of_int cex.Search.cex_config.World.crashes));
  Format.fprintf ppf "schedule (%d deliveries):@."
    (List.length cex.Search.schedule);
  pp_schedule ppf cex;
  List.iter
    (fun v ->
      Format.fprintf ppf "safety: %a@." Bftaudit.Auditor.pp_violation v)
    cex.Search.cex_safety;
  List.iter
    (fun p ->
      Format.fprintf ppf "liveness: %a@." Bftaudit.Liveness.pp_problem p)
    cex.Search.cex_liveness;
  if not cex.Search.cex_agreement then
    Format.fprintf ppf "agreement: execution digests diverged@."
