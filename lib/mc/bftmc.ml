(** bftmc — small-scope explicit-state model checker for RBFT's
    instance-change protocol.

    Exhaustively explores message-delivery orders and bounded crash
    placements of a tiny cluster (n = 3f+1, a handful of requests),
    checking the bftaudit safety invariants after every delivery and —
    at every schedule leaf — execution agreement plus the liveness
    property {e every triggered instance change eventually completes}.

    - {!World}: one schedulable universe — delivery choices, fixed
      time slices, canonical state fingerprints, drain-and-judge.
    - {!Search}: DFS with visited-state dedup and partial-order
      reduction over commuting deliveries to distinct receivers.
    - {!Cex}: violating schedules re-expressed as [.scn] fault plans,
      verified against the original invariant digest and shrunk with
      the bftchaos minimizer. *)

module World = World
module Search = Search
module Cex = Cex
