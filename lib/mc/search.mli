(** Bounded exhaustive search over delivery schedules and crash
    placements.

    A depth-first walk over schedule prefixes of a {!World}: at each
    state the frontier is the set of enabled deliveries
    ({!World.enabled}); firing one and advancing a slice yields a child
    state. The search is {e stateless} — backtracking replays the
    prefix into a fresh world — with visited-state dedup keyed on
    {!World.fingerprint} and an optional partial-order reduction that
    keeps only the id-sorted representative of schedules commuting
    independent deliveries (distinct receivers).

    Checked properties: the {!Bftaudit.Auditor} safety invariants after
    every step; at every leaf (depth bound or quiescence) the drained
    world's instance-change liveness ({!Bftaudit.Liveness}) and
    execution agreement. *)

open Dessim

type stats = {
  mutable states : int;  (** distinct states stepped into (incl. root) *)
  mutable dedup_hits : int;  (** transitions into already-visited states *)
  mutable leaves : int;  (** schedules drained and judged *)
  mutable por_skipped : int;  (** children skipped by the reduction *)
  mutable por_pruned_subtrees : int;
      (** nodes whose entire frontier was reduction-redundant *)
  mutable replays : int;  (** worlds built (root + backtrack replays) *)
  mutable max_depth : int;
  mutable choices_seen : int;  (** enabled-frontier sizes, summed *)
}

val fresh_stats : unit -> stats
val add_stats : stats -> stats -> unit

type cex = {
  cex_config : World.config;  (** includes the crash placement *)
  schedule : Engine.choice list;  (** fired deliveries, in order *)
  cex_safety : Bftaudit.Auditor.violation list;
  cex_liveness : Bftaudit.Liveness.problem list;
  cex_agreement : bool;
}

type outcome = {
  stats : stats;
  per_placement : (int list * stats) list;
  counterexample : cex option;
}

val por_filter :
  last:Engine.choice -> Engine.choice list -> Engine.choice list
(** Drop children that commute with the last-fired choice into an
    already-covered schedule ([id < last.id] and different receiver). *)

val explore :
  ?por:bool -> ?on_progress:(stats -> unit) -> World.config -> outcome
(** Search one crash placement ([cfg.crashes]). Stops at the first
    violation. [on_progress] is called every 500 states. *)

val placements : n:int -> max_faults:int -> f:int -> int list list
(** Crash subsets of [{0..n-1}] with at most [min max_faults f]
    elements, smallest first (the fault-free placement leads). *)

val run :
  ?por:bool ->
  ?max_faults:int ->
  ?on_progress:(stats -> unit) ->
  World.config ->
  outcome
(** Sweep every placement, aggregating stats; stops at the first
    counterexample. [max_faults] defaults to 0 (fault-free only). *)
