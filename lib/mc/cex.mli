(** Counterexample extraction: turn a {!Search.cex} into a replayable
    [.scn] fault plan and hand it to the {!Bftchaos.Shrink} minimizer.

    A schedule has no direct [.scn] encoding (scenarios speak in fault
    plans, not delivery orders), so the counterexample is re-expressed
    in scenario coordinates — same crash placement, same protocol
    mutation, same Λ — under a rate-driven workload. For
    mutation-induced safety violations this reproduces the identical
    invariant set deterministically, which the shrinker then minimizes;
    schedule-sensitive findings (liveness, agreement) are saved
    unshrunk as documentation of the placement. *)

type repro = {
  scenario : Bftchaos.Scenario.t;  (** final (possibly shrunk) scenario *)
  path : string option;  (** where the [.scn] file was written *)
  reproduced : bool;
      (** the scenario replays to the same invariant digest *)
  shrink_tests : int;  (** runs spent by the shrinker (0 if skipped) *)
  target_digest : string;  (** {!target_digest} of the original cex *)
}

val target_digest : Search.cex -> string
(** SHA-256 over the sorted distinct invariant names of every problem
    in the counterexample (safety, liveness, agreement), via
    {!Bftaudit.Auditor.invariant_digest}. The reproduction criterion:
    a replay that yields the same digest found the same bug. *)

val to_scenario : ?name:string -> Search.cex -> Bftchaos.Scenario.t
(** The scenario-coordinates rendering of the counterexample. *)

val reproduces : target:string -> Bftchaos.Scenario.t -> bool
(** Run the scenario under {!Bftchaos.Runner} and compare the safety
    invariant digest against [target]. The shrinker's predicate. *)

val extract : ?budget:int -> ?out:string -> Search.cex -> repro
(** Reproduce-then-shrink. [budget] caps shrinker runs (default 200);
    [out] saves the resulting scenario as a [.scn] file. Safety
    counterexamples that reproduce are shrunk; everything else is
    saved as-is with [reproduced = false]. *)

val pp_schedule : Format.formatter -> Search.cex -> unit
(** The violating schedule, one delivery per line. *)

val pp : Format.formatter -> Search.cex -> unit
(** Full human-readable report: placement, schedule, problems. *)
