open Dessim

type stats = {
  mutable states : int;
  mutable dedup_hits : int;
  mutable leaves : int;
  mutable por_skipped : int;
  mutable por_pruned_subtrees : int;
  mutable replays : int;
  mutable max_depth : int;
  mutable choices_seen : int;
}

let fresh_stats () =
  {
    states = 0;
    dedup_hits = 0;
    leaves = 0;
    por_skipped = 0;
    por_pruned_subtrees = 0;
    replays = 0;
    max_depth = 0;
    choices_seen = 0;
  }

let add_stats a b =
  a.states <- a.states + b.states;
  a.dedup_hits <- a.dedup_hits + b.dedup_hits;
  a.leaves <- a.leaves + b.leaves;
  a.por_skipped <- a.por_skipped + b.por_skipped;
  a.por_pruned_subtrees <- a.por_pruned_subtrees + b.por_pruned_subtrees;
  a.replays <- a.replays + b.replays;
  a.max_depth <- Stdlib.max a.max_depth b.max_depth;
  a.choices_seen <- a.choices_seen + b.choices_seen

type cex = {
  cex_config : World.config;  (** includes the crash placement *)
  schedule : Engine.choice list;  (** fired deliveries, in order *)
  cex_safety : Bftaudit.Auditor.violation list;
  cex_liveness : Bftaudit.Liveness.problem list;
  cex_agreement : bool;
}

type outcome = {
  stats : stats;
  per_placement : (int list * stats) list;
  counterexample : cex option;
}

(* Partial-order reduction, left-normal-form flavour: choice ids grow
   monotonically, so a child choice [c] with [c.id < last.id] was
   already schedulable when [last] fired. If it also targets a
   different node, firing it now commutes with [last] (deliveries to
   distinct receivers touch disjoint node state, and the clock advance
   per step is fixed), so the schedule [... c; last; ...] reaches the
   same state and is explored from this node's parent. Only the
   id-sorted representative of each commutation class survives. *)
let por_filter ~(last : Engine.choice) children =
  List.filter
    (fun (c : Engine.choice) ->
      not (c.Engine.id < last.Engine.id && c.Engine.dst <> last.Engine.dst))
    children

type frame = {
  path : int list;  (* choice ids to reach this node, newest first *)
  mutable todo : Engine.choice list;  (* children not yet explored *)
}

exception Found of cex

(* DFS over schedule prefixes for one crash placement.

   World management: descending into the just-fired child reuses the
   live world in place; anything else (sibling after a backtrack,
   pruned or drained world) replays the prefix into a fresh world —
   stateless search, affordable because prefixes are bounded by
   [cfg.depth]. *)
let explore ?(por = true) ?(on_progress = fun (_ : stats) -> ())
    (cfg : World.config) =
  let stats = fresh_stats () in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let world = ref None in
  let get_world path =
    match !world with
    | Some w when World.fired w = List.rev path -> w
    | _ ->
      Option.iter World.destroy !world;
      stats.replays <- stats.replays + 1;
      let w = World.replay cfg (List.rev path) in
      world := Some w;
      w
  in
  let drop_world () =
    Option.iter World.destroy !world;
    world := None
  in
  (* Choices fired anywhere so far, by id, to rebuild cex listings. *)
  let seen_choices : (int, Engine.choice) Hashtbl.t = Hashtbl.create 256 in
  let choices_of path =
    List.rev_map (fun id -> Hashtbl.find seen_choices id) path
  in
  let fail cex =
    drop_world ();
    raise (Found cex)
  in
  (* Leaf: drain the world and judge safety + liveness + agreement. *)
  let check_verdict w path =
    stats.leaves <- stats.leaves + 1;
    let v = World.evaluate w in
    if not (World.verdict_clean v) then
      fail
        {
          cex_config = cfg;
          schedule = choices_of path;
          cex_safety = v.World.safety;
          cex_liveness = v.World.liveness;
          cex_agreement = v.World.agreement;
        };
    drop_world ()
  in
  try
    let root = get_world [] in
    stats.states <- 1;
    Hashtbl.replace visited (World.fingerprint root) ();
    let root_children = World.enabled root in
    stats.choices_seen <- stats.choices_seen + List.length root_children;
    if root_children = [] then check_verdict root []
    else begin
      let stack = ref [ { path = []; todo = root_children } ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | frame :: rest -> (
          match frame.todo with
          | [] -> stack := rest
          | c :: siblings ->
            frame.todo <- siblings;
            let w = get_world frame.path in
            World.step w c;
            Hashtbl.replace seen_choices c.Engine.id c;
            let path = c.Engine.id :: frame.path in
            let d = List.length path in
            stats.states <- stats.states + 1;
            if d > stats.max_depth then stats.max_depth <- d;
            if stats.states mod 500 = 0 then on_progress stats;
            (* Safety is monotone: checking right after the step keeps
               the violating schedule as short as possible. *)
            (match World.violations w with
             | [] -> ()
             | vs ->
               fail
                 {
                   cex_config = cfg;
                   schedule = choices_of path;
                   cex_safety = vs;
                   cex_liveness = [];
                   cex_agreement = true;
                 });
            let fp = World.fingerprint w in
            if Hashtbl.mem visited fp then
              (* Known state: prune. The world now sits off the stack
                 path; the next iteration replays as needed. *)
              stats.dedup_hits <- stats.dedup_hits + 1
            else begin
              Hashtbl.replace visited fp ();
              if d >= cfg.World.depth then check_verdict w path
              else begin
                let all = World.enabled w in
                stats.choices_seen <- stats.choices_seen + List.length all;
                match all with
                | [] -> check_verdict w path (* genuine quiescence *)
                | _ ->
                  let kids = if por then por_filter ~last:c all else all in
                  stats.por_skipped <-
                    stats.por_skipped + (List.length all - List.length kids);
                  if kids = [] then
                    (* Every child commutes into an already-covered
                       schedule: prune the subtree. This is NOT
                       quiescence — deliveries are still pending — so
                       no verdict here. *)
                    stats.por_pruned_subtrees <- stats.por_pruned_subtrees + 1
                  else stack := { path; todo = kids } :: !stack
              end
            end)
      done;
      drop_world ()
    end;
    {
      stats;
      per_placement = [ (cfg.World.crashes, stats) ];
      counterexample = None;
    }
  with Found cex ->
    {
      stats;
      per_placement = [ (cfg.World.crashes, stats) ];
      counterexample = Some cex;
    }

(* All crash subsets of {0..n-1} with at most [max_faults] elements
   (and at most f — more would exceed the fault model). Ascending size,
   then lexicographic: the fault-free run explores first. *)
let placements ~n ~max_faults ~f =
  let k = Stdlib.min max_faults f in
  let rec combos lst size =
    if size = 0 then [ [] ]
    else
      match lst with
      | [] -> []
      | x :: rest ->
        List.map (fun c -> x :: c) (combos rest (size - 1)) @ combos rest size
  in
  let nodes = List.init n (fun i -> i) in
  List.concat_map (fun size -> combos nodes size) (List.init (k + 1) (fun s -> s))

(* Sweep every fault placement; stop at the first counterexample. *)
let run ?(por = true) ?(max_faults = 0) ?on_progress (cfg : World.config) =
  let n = (3 * cfg.World.f) + 1 in
  let total = fresh_stats () in
  let rec go acc = function
    | [] -> { stats = total; per_placement = List.rev acc; counterexample = None }
    | crashes :: more -> (
      let o = explore ~por ?on_progress { cfg with World.crashes } in
      add_stats total o.stats;
      let acc = (crashes, o.stats) :: acc in
      match o.counterexample with
      | Some _ ->
        { stats = total; per_placement = List.rev acc; counterexample = o.counterexample }
      | None -> go acc more)
  in
  go [] (placements ~n ~max_faults ~f:cfg.World.f)
