(** Online summary statistics (Welford's algorithm). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Sample variance; 0 with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** [nan] when empty. *)

val max : t -> float
val sum : t -> float
val merge : t -> t -> t
(** Combine two summaries as if all observations were added to one. *)

val pp : Format.formatter -> t -> unit
