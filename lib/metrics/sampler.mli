(** Sim-time periodic sampler: snapshots a {!Registry} into a time
    series that the CSV/JSON exporters can dump after the run.

    Sampling is anchored to {e engine} sim-time: ticks fire at the
    absolute instants [epoch + k*period] (epoch = the attach instant),
    not relative to the previous callback and never through a per-node
    [Dessim.Clock]. Chaos clock-skew faults therefore cannot drift the
    series — a skewed and an unskewed same-seed run sample at
    identical timestamps.

    Attaching enables global collection ({!Registry.enable}). The
    rearming tick keeps the engine's queue non-empty, so drive the
    simulation with [Engine.run ~until] (as the clusters' [run_for]
    does) and {!detach} before draining a queue to empty. *)

open Dessim

type t

type point = { p_time : Time.t; p_samples : Registry.sample list }

val attach : ?period:Time.t -> Engine.t -> Registry.t -> t
(** Snapshot every [period] (default 100 ms of virtual time). *)

val detach : t -> unit
(** Stop sampling (the pending tick becomes a no-op). *)

val sample_now : t -> unit
(** Take an extra snapshot at the current virtual time, e.g. one last
    point at the end of a run. *)

val period : t -> Time.t

val epoch : t -> Time.t
(** The attach instant; every periodic sample lands at
    [epoch + k*period] exactly. *)

val points : t -> point list
(** Oldest first. *)

val count : t -> int
