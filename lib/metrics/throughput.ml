(* Timestamps are stored as a sorted array of (time, cumulative count)
   breakpoints, appended in order and binary-searched on query.

   Windows are half-open [start, stop): adjacent windows tile exactly
   (count [a,b) + count [b,c) = count [a,c)) and a partition of
   [zero, horizon) with horizon past the last event sums to [total]. *)

type t = {
  mutable times : Dessim.Time.t array;
  mutable cumulative : int array;
  mutable len : int;
  mutable total : int;
}

let create () = { times = Array.make 1024 0; cumulative = Array.make 1024 0; len = 0; total = 0 }

let grow t =
  let cap = Array.length t.times in
  let times = Array.make (2 * cap) 0 in
  let cumulative = Array.make (2 * cap) 0 in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.cumulative 0 cumulative 0 t.len;
  t.times <- times;
  t.cumulative <- cumulative

let record_many t ~now n =
  assert (n >= 0);
  if n > 0 then begin
    (* The binary search requires sorted breakpoints. A caller whose
       clock stepped backwards (merged streams, replays) is clamped to
       the last breakpoint instead of silently corrupting queries. *)
    let now =
      if t.len > 0 && now < t.times.(t.len - 1) then t.times.(t.len - 1) else now
    in
    t.total <- t.total + n;
    if t.len > 0 && t.times.(t.len - 1) = now then
      t.cumulative.(t.len - 1) <- t.total
    else begin
      if t.len = Array.length t.times then grow t;
      t.times.(t.len) <- now;
      t.cumulative.(t.len) <- t.total;
      t.len <- t.len + 1
    end
  end

let record t ~now = record_many t ~now 1

let total t = t.total

(* Number of events with time < bound. *)
let cumulative_before t bound =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.times.(mid) < bound then lo := mid + 1 else hi := mid
  done;
  if !lo = 0 then 0 else t.cumulative.(!lo - 1)

let count_between t start stop =
  if stop <= start then 0
  else cumulative_before t stop - cumulative_before t start

let rate_between t start stop =
  let window = Dessim.Time.to_sec_f (Dessim.Time.sub stop start) in
  if window <= 0.0 || not (Float.is_finite window) then 0.0
  else float_of_int (count_between t start stop) /. window
