(* Exporters: Prometheus text exposition, CSV time series, JSON. *)

let escape_label v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) kvs)
    ^ "}"

(* Floats in exposition format: integral values print without
   exponent; non-finite values use the spellings the Prometheus text
   format defines; everything else is shortest round-trip notation. *)
let render_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* Fixed log-scale bucket boundaries shared by every histogram family:
   1 / 2.5 / 5 per decade from 1 us to 10 s (values are seconds). *)
let histogram_bounds =
  List.concat_map
    (fun d ->
      let b = 10.0 ** float_of_int d in
      [ b; 2.5 *. b; 5.0 *. b ])
    [ -6; -5; -4; -3; -2; -1; 0 ]
  @ [ 10.0 ]

let prometheus reg =
  let buf = Buffer.create 4096 in
  List.iter
    (fun fam ->
      let name = Registry.family_name fam in
      let help = Registry.family_help fam in
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" name
           (Registry.kind_name (Registry.family_kind fam)));
      List.iter
        (fun (labels, instrument) ->
          match (instrument : Registry.instrument) with
          | Registry.Counter_i c ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" name (render_labels labels)
                 (Registry.Counter.value c))
          | Registry.Gauge_i g ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name (render_labels labels)
                 (render_float (Registry.Gauge.value g)))
          | Registry.Gauge_fn_i fn ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name (render_labels labels)
                 (render_float (!fn ())))
          | Registry.Histogram_i h ->
            List.iter
              (fun le ->
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" name
                     (render_labels ~extra:("le", render_float le) labels)
                     (Hist.cumulative_le h le)))
              histogram_bounds;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (render_labels ~extra:("le", "+Inf") labels)
                 (Hist.count h));
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
                 (render_float (Hist.sum h)));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" name (render_labels labels)
                 (Hist.count h)))
        (Registry.children_of fam))
    (Registry.families reg);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* CSV time series                                                    *)
(* ------------------------------------------------------------------ *)

let csv_labels labels =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let csv_fields (v : Registry.value) =
  match v with
  | Registry.Counter_v n -> [ ("value", float_of_int n) ]
  | Registry.Gauge_v x -> [ ("value", x) ]
  | Registry.Histogram_v s ->
    [
      ("count", float_of_int s.Registry.h_count);
      ("sum", s.Registry.h_sum);
      ("mean", s.Registry.h_mean);
      ("p50", s.Registry.h_p50);
      ("p90", s.Registry.h_p90);
      ("p99", s.Registry.h_p99);
      ("max", s.Registry.h_max);
    ]

(* One row per (time, metric, labels, field): long format, trivially
   pivotable into the paper's figures. *)
let csv_of_series sampler =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time_s,metric,labels,field,value\n";
  List.iter
    (fun (p : Sampler.point) ->
      let time = Dessim.Time.to_sec_f p.Sampler.p_time in
      List.iter
        (fun (s : Registry.sample) ->
          List.iter
            (fun (field, v) ->
              Buffer.add_string buf
                (Printf.sprintf "%.6f,%s,%s,%s,%s\n" time s.Registry.s_name
                   (csv_labels s.Registry.s_labels)
                   field (render_float v)))
            (csv_fields s.Registry.s_value))
        p.Sampler.p_samples)
    (Sampler.points sampler);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v
  else "null"

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v))
         labels)
  ^ "}"

let json_value (v : Registry.value) =
  match v with
  | Registry.Counter_v n -> string_of_int n
  | Registry.Gauge_v x -> json_float x
  | Registry.Histogram_v s ->
    Printf.sprintf
      {|{"count":%d,"sum":%s,"mean":%s,"p50":%s,"p90":%s,"p99":%s,"max":%s}|}
      s.Registry.h_count (json_float s.Registry.h_sum)
      (json_float s.Registry.h_mean) (json_float s.Registry.h_p50)
      (json_float s.Registry.h_p90) (json_float s.Registry.h_p99)
      (json_float s.Registry.h_max)

let json_of_samples samples =
  "["
  ^ String.concat ","
      (List.map
         (fun (s : Registry.sample) ->
           Printf.sprintf {|{"name":"%s","labels":%s,"value":%s}|}
             (json_escape s.Registry.s_name)
             (json_labels s.Registry.s_labels)
             (json_value s.Registry.s_value))
         samples)
  ^ "]"

let json_of_snapshot reg = json_of_samples (Registry.snapshot reg)

let json_of_series sampler =
  "["
  ^ String.concat ","
      (List.map
         (fun (p : Sampler.point) ->
           Printf.sprintf {|{"time_s":%s,"samples":%s}|}
             (json_float (Dessim.Time.to_sec_f p.Sampler.p_time))
             (json_of_samples p.Sampler.p_samples))
         (Sampler.points sampler))
  ^ "]"

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let to_channel_or_file ~path contents =
  if path = "-" then print_string contents else write_file path contents
