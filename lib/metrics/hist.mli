(** Log-bucketed histogram for latency distributions.

    Buckets grow geometrically from [min_value] with ratio [gamma];
    percentile queries are accurate to the bucket width (a few
    percent), which is ample for the paper's latency plots. *)

type t

val create : ?min_value:float -> ?gamma:float -> unit -> t
(** Defaults: [min_value = 1e-6] (1 us when values are seconds),
    [gamma = 1.05]. *)

val add : t -> float -> unit
val count : t -> int
val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100]. 0 when empty. *)

val mean : t -> float
val max_observed : t -> float
