(** Log-bucketed histogram for latency distributions.

    Buckets grow geometrically from [min_value] with ratio [gamma];
    percentile queries are accurate to the bucket width (a few
    percent), which is ample for the paper's latency plots. *)

type t

val create : ?min_value:float -> ?gamma:float -> unit -> t
(** Defaults: [min_value = 1e-6] (1 us when values are seconds),
    [gamma = 1.05]. *)

val add : t -> float -> unit
val count : t -> int
val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100]. 0 when empty. *)

val mean : t -> float
val max_observed : t -> float

val sum : t -> float
(** Sum of all recorded values (0 when empty). *)

val reset : t -> unit
(** Drop every sample; the bucket layout is kept. *)

val merge : t -> t -> t
(** Combine two histograms sample-wise into a fresh one. The inputs
    must share [min_value] and [gamma] ([Invalid_argument]
    otherwise); neither input is modified. *)

val copy : t -> t
(** Independent snapshot of the current samples. *)

val cumulative_le : t -> float -> int
(** [cumulative_le t bound] is the number of samples with value
    [<= bound], accurate to one bucket width, monotone in [bound],
    and exact at the extremes (0 below [min_value] on an empty
    histogram; [count t] at or above [max_observed t]). *)
