(* Wall-clock self-profiler: coarse per-subsystem time attribution for
   the bench harness (where did the real seconds go, and how much does
   enabling the registry cost). Spans are meant to wrap subsystem-
   sized work — experiment groups, export passes — not hot paths. *)

type slot = { mutable seconds : float; mutable calls : int }

let slots : (string, slot) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []  (* first-use order, reversed *)

let slot label =
  match Hashtbl.find_opt slots label with
  | Some s -> s
  | None ->
    let s = { seconds = 0.0; calls = 0 } in
    Hashtbl.add slots label s;
    order := label :: !order;
    s

let add label seconds =
  let s = slot label in
  s.seconds <- s.seconds +. seconds;
  s.calls <- s.calls + 1

let time label f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> add label (Unix.gettimeofday () -. t0))
    f

let report () =
  List.rev_map
    (fun label ->
      let s = Hashtbl.find slots label in
      (label, s.seconds, s.calls))
    !order
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

let reset () =
  Hashtbl.reset slots;
  order := []

let total () = Hashtbl.fold (fun _ s acc -> acc +. s.seconds) slots 0.0

let print oc =
  let rows = report () in
  if rows <> [] then begin
    let total = total () in
    Printf.fprintf oc "\n== Self-profile (wall clock) ==\n";
    List.iter
      (fun (label, seconds, calls) ->
        Printf.fprintf oc "  %-32s %8.2fs %5.1f%%  (%d call%s)\n" label seconds
          (if total > 0.0 then 100.0 *. seconds /. total else 0.0)
          calls
          (if calls = 1 then "" else "s"))
      rows;
    Printf.fprintf oc "  %-32s %8.2fs\n" "total" total
  end

let json () =
  "["
  ^ String.concat ","
      (List.map
         (fun (label, seconds, calls) ->
           Printf.sprintf {|{"label":"%s","seconds":%.6f,"calls":%d}|}
             (Export.json_escape label) seconds calls)
         (report ()))
  ^ "]"
