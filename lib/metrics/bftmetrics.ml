(** Measurement utilities: online statistics, latency histograms and
    windowed throughput counters. *)

module Stats = Stats
module Hist = Hist
module Throughput = Throughput
