(** Measurement and observability utilities.

    Low-level accumulators ({!Stats}, {!Hist}, {!Throughput}) plus the
    metrics pipeline: a labeled-family {!Registry} sampled cheaply on
    hot paths, a sim-time {!Sampler} that turns it into time series,
    {!Export}ers (Prometheus text, CSV, JSON) and a wall-clock
    {!Profile}r for per-subsystem time attribution in the harness. *)

module Stats = Stats
module Hist = Hist
module Throughput = Throughput
module Registry = Registry
module Sampler = Sampler
module Export = Export
module Profile = Profile
