type t = {
  min_value : float;
  log_gamma : float;
  mutable buckets : int array;
  mutable underflow : int;
  mutable count : int;
  mutable sum : float;
  mutable max_observed : float;
}

let create ?(min_value = 1e-6) ?(gamma = 1.05) () =
  {
    min_value;
    log_gamma = log gamma;
    buckets = Array.make 64 0;
    underflow = 0;
    count = 0;
    sum = 0.0;
    max_observed = 0.0;
  }

let bucket_of t v = int_of_float (log (v /. t.min_value) /. t.log_gamma)

let value_of t i = t.min_value *. exp (t.log_gamma *. (float_of_int i +. 0.5))

let ensure t i =
  if i >= Array.length t.buckets then begin
    let bigger = Array.make (Stdlib.max (i + 1) (2 * Array.length t.buckets)) 0 in
    Array.blit t.buckets 0 bigger 0 (Array.length t.buckets);
    t.buckets <- bigger
  end

let add t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v > t.max_observed then t.max_observed <- v;
  if v < t.min_value then t.underflow <- t.underflow + 1
  else begin
    let i = bucket_of t v in
    ensure t i;
    t.buckets.(i) <- t.buckets.(i) + 1
  end

let count t = t.count

let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let rank = Stdlib.max 1 (Stdlib.min t.count rank) in
    if rank <= t.underflow then t.min_value
    else begin
      let remaining = ref (rank - t.underflow) in
      let result = ref t.max_observed in
      (try
         Array.iteri
           (fun i n ->
             if n > 0 then begin
               remaining := !remaining - n;
               if !remaining <= 0 then begin
                 result := value_of t i;
                 raise Exit
               end
             end)
           t.buckets
       with Exit -> ());
      !result
    end
  end

let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let max_observed t = t.max_observed
let sum t = t.sum

let reset t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.underflow <- 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.max_observed <- 0.0

let compatible a b =
  a.min_value = b.min_value && a.log_gamma = b.log_gamma

let merge a b =
  if not (compatible a b) then
    invalid_arg "Hist.merge: different bucket layouts";
  let n = Stdlib.max (Array.length a.buckets) (Array.length b.buckets) in
  let buckets = Array.make n 0 in
  Array.iteri (fun i c -> buckets.(i) <- c) a.buckets;
  Array.iteri (fun i c -> buckets.(i) <- buckets.(i) + c) b.buckets;
  {
    min_value = a.min_value;
    log_gamma = a.log_gamma;
    buckets;
    underflow = a.underflow + b.underflow;
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    max_observed = Stdlib.max a.max_observed b.max_observed;
  }

let copy t = { t with buckets = Array.copy t.buckets }

(* Cumulative count of samples whose value is <= [bound], accurate to
   one bucket width. Drives the fixed-boundary Prometheus exposition:
   monotone in [bound], and exact at the extremes. *)
let cumulative_le t bound =
  if t.count = 0 || bound < t.min_value then 0
  else if bound >= t.max_observed then t.count
  else begin
    let acc = ref t.underflow in
    Array.iteri
      (fun i n -> if n > 0 && value_of t i <= bound then acc := !acc + n)
      t.buckets;
    Stdlib.min !acc t.count
  end
