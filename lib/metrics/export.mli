(** Exporters for the metric registry and sampled time series.

    Three formats: Prometheus text exposition (scrape-compatible
    point-in-time dump), long-format CSV of a {!Sampler} series
    (one row per time/metric/labels/field), and JSON (snapshot and
    series), used by the bench's [BENCH_rbft.json] report. *)

val histogram_bounds : float list
(** The fixed log-scale bucket boundaries (seconds) every histogram
    family is exposed with: 1 / 2.5 / 5 per decade, 1 us to 10 s. *)

val prometheus : Registry.t -> string
(** Text exposition format: [# HELP] / [# TYPE] headers, one line per
    child; histograms as cumulative [_bucket{le=...}] plus [_sum] and
    [_count]. *)

val csv_of_series : Sampler.t -> string
(** Header [time_s,metric,labels,field,value]; histogram samples
    expand into count/sum/mean/p50/p90/p99/max rows. *)

val json_of_snapshot : Registry.t -> string
(** JSON array of [{name, labels, value}] for the current values. *)

val json_of_samples : Registry.sample list -> string

val json_of_series : Sampler.t -> string
(** JSON array of [{time_s, samples}] points. *)

val json_escape : string -> string

val json_float : float -> string
(** Shortest round-trip rendering; non-finite values become [null]. *)

val write_file : string -> string -> unit

val to_channel_or_file : path:string -> string -> unit
(** Write to [path], or to stdout when [path] is ["-"]. *)
