(** Windowed event counting for throughput measurement.

    Mirrors the paper's monitoring mechanism: a counter is bumped per
    ordered/executed request and sampled periodically; it also serves
    the harness' measurement windows (count events inside
    [\[start, stop)] and divide by the window length). *)

type t

val create : unit -> t

val record : t -> now:Dessim.Time.t -> unit
(** Count one event at virtual time [now]. Events must be recorded in
    non-decreasing time order (the simulator guarantees this). *)

val record_many : t -> now:Dessim.Time.t -> int -> unit

val total : t -> int

val count_between : t -> Dessim.Time.t -> Dessim.Time.t -> int
(** Events with [start <= time < stop]. *)

val rate_between : t -> Dessim.Time.t -> Dessim.Time.t -> float
(** Events per second over the window. *)
