(** Windowed event counting for throughput measurement.

    Mirrors the paper's monitoring mechanism: a counter is bumped per
    ordered/executed request and sampled periodically; it also serves
    the harness' measurement windows (count events inside
    [\[start, stop)] and divide by the window length). *)

type t

val create : unit -> t

val record : t -> now:Dessim.Time.t -> unit
(** Count one event at virtual time [now]. Events should be recorded
    in non-decreasing time order (the simulator guarantees this); a
    record whose [now] is earlier than the latest one is clamped to
    that latest time rather than corrupting later queries. *)

val record_many : t -> now:Dessim.Time.t -> int -> unit

val total : t -> int

val count_between : t -> Dessim.Time.t -> Dessim.Time.t -> int
(** Events in the half-open window [start <= time < stop]. Windows
    tile exactly: [count_between t a b + count_between t b c =
    count_between t a c] for [a <= b <= c], and a partition of
    [\[zero, horizon)] with [horizon] strictly past the last event
    sums to {!total}. Empty and reversed windows return 0. *)

val rate_between : t -> Dessim.Time.t -> Dessim.Time.t -> float
(** Events per second over the window; 0.0 (never NaN, never raises)
    for zero-length or reversed windows. *)
