(* Periodic sim-time snapshots of a registry into a time series. *)

open Dessim

type point = { p_time : Time.t; p_samples : Registry.sample list }

type t = {
  engine : Engine.t;
  registry : Registry.t;
  period : Time.t;
  mutable points : point list;  (* newest first *)
  mutable stopped : bool;
}

let sample_now t =
  t.points <-
    { p_time = Engine.now t.engine; p_samples = Registry.snapshot t.registry }
    :: t.points

let rec arm t =
  ignore
    (Engine.after t.engine t.period (fun () ->
         if not t.stopped then begin
           sample_now t;
           arm t
         end))

let attach ?(period = Time.ms 100) engine registry =
  Registry.enable ();
  let t = { engine; registry; period; points = []; stopped = false } in
  arm t;
  t

let detach t = t.stopped <- true

let period t = t.period
let points t = List.rev t.points
let count t = List.length t.points
