(* Periodic sim-time snapshots of a registry into a time series. *)

open Dessim

type point = { p_time : Time.t; p_samples : Registry.sample list }

type t = {
  engine : Engine.t;
  registry : Registry.t;
  period : Time.t;
  epoch : Time.t;  (* attach instant; ticks land at epoch + k*period *)
  mutable k : int;  (* index of the last armed tick *)
  mutable points : point list;  (* newest first *)
  mutable stopped : bool;
}

let sample_now t =
  t.points <-
    { p_time = Engine.now t.engine; p_samples = Registry.snapshot t.registry }
    :: t.points

(* Ticks are armed at absolute engine-time boundaries [epoch +
   k*period], never relative to the previous callback: the series is
   anchored to engine sim-time by construction, so per-node
   Dessim.Clock factors (bftchaos clock-skew faults stretch node-local
   timers through those) cannot drift the sampling grid, and a clamped
   or delayed callback never shifts the subsequent sample instants. *)
let rec arm t =
  t.k <- t.k + 1;
  let next = Time.add t.epoch (Time.ns (t.k * (t.period : Time.t))) in
  ignore
    (Engine.at t.engine next (fun () ->
         if not t.stopped then begin
           sample_now t;
           arm t
         end))

let attach ?(period = Time.ms 100) engine registry =
  Registry.enable ();
  let t =
    {
      engine;
      registry;
      period;
      epoch = Engine.now engine;
      k = 0;
      points = [];
      stopped = false;
    }
  in
  arm t;
  t

let detach t = t.stopped <- true

let period t = t.period
let epoch t = t.epoch
let points t = List.rev t.points
let count t = List.length t.points
