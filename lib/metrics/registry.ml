(* Labeled metric families. A family (name, kind, help) is registered
   once and owns one child instrument per distinct label set; the
   child handle is what instrumented code keeps, so a hot-path update
   is a single field mutation with no lookup and no allocation.

   Like the audit bus, collection is globally gated: call sites guard
   updates with [active ()] so a run without any exporter or sampler
   attached pays one load and one branch per site. *)

module Counter = struct
  type t = { mutable value : int }

  let make () = { value = 0 }
  let inc c = c.value <- c.value + 1
  let add c n = c.value <- c.value + n
  let value c = c.value
  let reset c = c.value <- 0
end

module Gauge = struct
  (* A single mutable float field keeps the record in flat float
     representation: [set] does not allocate. *)
  type t = { mutable value : float }

  let make () = { value = 0.0 }
  let set g v = g.value <- v
  let add g v = g.value <- g.value +. v
  let value g = g.value
  let reset g = g.value <- 0.0
end

type labels = (string * string) list

type kind = Counter_kind | Gauge_kind | Histogram_kind

let kind_name = function
  | Counter_kind -> "counter"
  | Gauge_kind -> "gauge"
  | Histogram_kind -> "histogram"

type instrument =
  | Counter_i of Counter.t
  | Gauge_i of Gauge.t
  (* The closure is read at sample/export time only — zero hot-path
     cost; re-registration replaces it (fresh cluster, same name). *)
  | Gauge_fn_i of (unit -> float) ref
  | Histogram_i of Hist.t

type family = {
  name : string;
  help : string;
  kind : kind;
  mutable label_names : string list;  (* sorted; fixed by first child *)
  children : (string, labels * instrument) Hashtbl.t;  (* key: label values *)
}

type t = {
  families : (string, family) Hashtbl.t;
  mutable order : string list;  (* registration order, reversed *)
}

let create () = { families = Hashtbl.create 64; order = [] }

let default = create ()

(* Global collection gate, mirroring Bftaudit.Bus.active. *)
let enabled = ref false
let active () = !enabled
let enable () = enabled := true
let disable () = enabled := false

let canonical labels = List.sort (fun (a, _) (b, _) -> compare a b) labels
let child_key labels = String.concat "\x00" (List.map snd labels)

let family_of t ~name ~help ~kind ~labels =
  let labels = canonical labels in
  let names = List.map fst labels in
  let fam =
    match Hashtbl.find_opt t.families name with
    | Some fam ->
      if fam.kind <> kind then
        invalid_arg
          (Printf.sprintf "Registry: %s already registered as a %s" name
             (kind_name fam.kind));
      if fam.label_names <> names && Hashtbl.length fam.children > 0 then
        invalid_arg
          (Printf.sprintf "Registry: %s registered with label set {%s}, got {%s}"
             name
             (String.concat "," fam.label_names)
             (String.concat "," names));
      fam
    | None ->
      let fam =
        { name; help; kind; label_names = names; children = Hashtbl.create 8 }
      in
      Hashtbl.add t.families name fam;
      t.order <- name :: t.order;
      fam
  in
  fam.label_names <- names;
  (fam, labels)

(* Registration returns the existing child for a (name, labels) pair
   already seen, so per-run components re-created against the global
   registry keep accumulating into the same series. *)
let child t ~name ~help ~kind ~labels make =
  let fam, labels = family_of t ~name ~help ~kind ~labels in
  let key = child_key labels in
  match Hashtbl.find_opt fam.children key with
  | Some (_, i) -> i
  | None ->
    let i = make () in
    Hashtbl.add fam.children key (labels, i);
    i

let counter ?(help = "") t name ~labels =
  match
    child t ~name ~help ~kind:Counter_kind ~labels (fun () ->
        Counter_i (Counter.make ()))
  with
  | Counter_i c -> c
  | _ -> assert false

let gauge ?(help = "") t name ~labels =
  match
    child t ~name ~help ~kind:Gauge_kind ~labels (fun () -> Gauge_i (Gauge.make ()))
  with
  | Gauge_i g -> g
  | _ -> assert false

let gauge_fn ?(help = "") t name ~labels f =
  match
    child t ~name ~help ~kind:Gauge_kind ~labels (fun () -> Gauge_fn_i (ref f))
  with
  | Gauge_fn_i cell -> cell := f
  | Gauge_i _ ->
    invalid_arg
      (Printf.sprintf "Registry: %s{%s} already registered as a plain gauge" name
         (child_key (canonical labels)))
  | _ -> assert false

let histogram ?(help = "") ?min_value ?gamma t name ~labels =
  match
    child t ~name ~help ~kind:Histogram_kind ~labels (fun () ->
        Histogram_i (Hist.create ?min_value ?gamma ()))
  with
  | Histogram_i h -> h
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Introspection (exporters, sampler, tests)                          *)
(* ------------------------------------------------------------------ *)

let families t =
  List.rev_map (fun name -> Hashtbl.find t.families name) t.order

let family_name f = f.name
let family_help f = f.help
let family_kind f = f.kind

let children_of f =
  Hashtbl.fold (fun _ c acc -> c :: acc) f.children []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type hist_summary = {
  h_count : int;
  h_sum : float;
  h_mean : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
  h_max : float;
}

let summarize h =
  {
    h_count = Hist.count h;
    h_sum = Hist.sum h;
    h_mean = Hist.mean h;
    h_p50 = Hist.percentile h 50.0;
    h_p90 = Hist.percentile h 90.0;
    h_p99 = Hist.percentile h 99.0;
    h_max = Hist.max_observed h;
  }

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_summary

type sample = { s_name : string; s_labels : labels; s_value : value }

let snapshot t =
  List.concat_map
    (fun f ->
      List.map
        (fun (labels, i) ->
          let value =
            match i with
            | Counter_i c -> Counter_v (Counter.value c)
            | Gauge_i g -> Gauge_v (Gauge.value g)
            | Gauge_fn_i fn -> Gauge_v (!fn ())
            | Histogram_i h -> Histogram_v (summarize h)
          in
          { s_name = f.name; s_labels = labels; s_value = value })
        (children_of f))
    (families t)

(* ------------------------------------------------------------------ *)
(* Reset and merge                                                    *)
(* ------------------------------------------------------------------ *)

(* Zero the values but keep families and children: handles held by
   live components stay valid across a reset. Callback gauges are
   left alone — they re-read their source on the next sample. *)
let reset t =
  Hashtbl.iter
    (fun _ f ->
      Hashtbl.iter
        (fun _ (_, i) ->
          match i with
          | Counter_i c -> Counter.reset c
          | Gauge_i g -> Gauge.reset g
          | Gauge_fn_i _ -> ()
          | Histogram_i h -> Hist.reset h)
        f.children)
    t.families

(* Cross-registry aggregation (e.g. folding per-shard registries into
   one export): counters and gauges add, histograms merge sample-wise,
   callback gauges are skipped (their closure belongs to the source).
   Kind mismatches on a shared family name raise. *)
let merge ~into src =
  Hashtbl.iter
    (fun _ (sf : family) ->
      List.iter
        (fun (labels, si) ->
          match si with
          | Counter_i c ->
            Counter.add (counter into sf.name ~help:sf.help ~labels)
              (Counter.value c)
          | Gauge_i g ->
            Gauge.add (gauge into sf.name ~help:sf.help ~labels) (Gauge.value g)
          | Gauge_fn_i _ -> ()
          | Histogram_i h ->
            let dfam, labels =
              family_of into ~name:sf.name ~help:sf.help ~kind:Histogram_kind
                ~labels
            in
            let key = child_key labels in
            (match Hashtbl.find_opt dfam.children key with
             | Some (_, Histogram_i dh) ->
               Hashtbl.replace dfam.children key (labels, Histogram_i (Hist.merge dh h))
             | Some _ -> assert false
             | None -> Hashtbl.add dfam.children key (labels, Histogram_i (Hist.copy h))))
        (children_of sf))
    src.families
