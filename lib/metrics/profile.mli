(** Wall-clock self-profiler: coarse per-subsystem time attribution
    (a global label -> accumulated seconds table). Wrap subsystem-
    sized work — experiment groups, export passes — not hot paths. *)

val time : string -> (unit -> 'a) -> 'a
(** [time label f] runs [f] and charges its wall-clock duration to
    [label] (exception-safe). *)

val add : string -> float -> unit
(** Charge [seconds] to [label] directly (one call). *)

val report : unit -> (string * float * int) list
(** [(label, seconds, calls)], sorted by descending seconds. *)

val total : unit -> float

val reset : unit -> unit

val print : out_channel -> unit
(** Aligned table with percentages; silent when nothing was timed. *)

val json : unit -> string
(** JSON array of [{label, seconds, calls}]. *)
