(** Labeled metric families: counters, gauges and histograms.

    A family is registered once (name, kind, help, label names) and
    owns one child instrument per distinct label set. Instrumented
    code registers its children at component-creation time and keeps
    the handles, so a hot-path update is a single field mutation —
    no lookup, no allocation.

    Collection is globally gated like the audit bus: guard update
    sites with {!active} so a run with no exporter or sampler
    attached pays one load and one branch per site:

    {[
      if Bftmetrics.Registry.active () then
        Bftmetrics.Registry.Counter.inc m.requests
    ]} *)

module Counter : sig
  type t

  val inc : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

type labels = (string * string) list
(** Label pairs; order does not matter (canonicalised by name). *)

type kind = Counter_kind | Gauge_kind | Histogram_kind

val kind_name : kind -> string

type t
(** A registry. Most code uses {!default}. *)

val create : unit -> t

val default : t
(** The process-wide registry all built-in instrumentation targets. *)

val active : unit -> bool
(** The global collection gate (one ref read). *)

val enable : unit -> unit
(** Turn collection on — done by the sampler, the CLI metric flags and
    the bench harness when an export was requested. *)

val disable : unit -> unit

val counter : ?help:string -> t -> string -> labels:labels -> Counter.t
(** [counter t name ~labels] registers (or finds) the child of the
    counter family [name] with the given labels. Raises
    [Invalid_argument] if [name] is already a different kind or uses
    different label names. *)

val gauge : ?help:string -> t -> string -> labels:labels -> Gauge.t

val gauge_fn : ?help:string -> t -> string -> labels:labels -> (unit -> float) -> unit
(** A gauge backed by a callback, read only at sample/export time —
    zero hot-path cost (queue depths, engine event counts).
    Re-registering replaces the callback, so per-run components can
    rebind a fresh closure over the same series. *)

val histogram :
  ?help:string -> ?min_value:float -> ?gamma:float -> t -> string ->
  labels:labels -> Hist.t
(** A log-bucketed {!Hist} child ([min_value], [gamma] as in
    {!Hist.create}); observe with [Hist.add]. *)

(** {2 Introspection} — exporters, the sampler and tests. *)

type family

val families : t -> family list
(** In registration order. *)

val family_name : family -> string
val family_help : family -> string
val family_kind : family -> kind

type instrument =
  | Counter_i of Counter.t
  | Gauge_i of Gauge.t
  | Gauge_fn_i of (unit -> float) ref
  | Histogram_i of Hist.t

val children_of : family -> (labels * instrument) list
(** Sorted by label values, for deterministic export order. *)

type hist_summary = {
  h_count : int;
  h_sum : float;
  h_mean : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
  h_max : float;
}

val summarize : Hist.t -> hist_summary

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_summary

type sample = { s_name : string; s_labels : labels; s_value : value }

val snapshot : t -> sample list
(** Point-in-time values of every child (callback gauges are read). *)

val reset : t -> unit
(** Zero every value but keep families and children, so instrument
    handles held by live components stay valid. Callback gauges are
    untouched. *)

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters and gauges add, histograms merge
    sample-wise, callback gauges are skipped. Raises
    [Invalid_argument] on kind or label-name mismatches. *)
