(** Bounded client admission with backpressure.

    A per-node gate over fresh client requests: up to [budget] admitted
    requests may be in flight (admitted but not yet executed); past
    that the node answers the client with a BUSY reply carrying a retry
    hint instead of letting the request queue unboundedly at the
    verification stage. Aardvark-lineage reasoning: an overloaded
    correct node should shed load explicitly rather than let its queues
    — and thus every request's latency — grow without bound. *)

open Dessim

type t

val create : budget:int -> retry_base:Time.t -> t
(** [budget <= 0] disables the gate: every [admit] succeeds. *)

val enabled : t -> bool

val admit : t -> backlog:Time.t -> (unit, Time.t) result
(** [admit t ~backlog] claims an in-flight slot, or returns
    [Error retry_after] when the budget is exhausted. [backlog] is the
    caller's live probe of the stage being protected; the returned
    retry hint is [max retry_base backlog] — roughly when the stage
    will have drained the work it has already accepted. *)

val release : t -> unit
(** Return a slot claimed by a successful {!admit}; call exactly once
    per admitted request when it finishes executing (or is dropped). *)

val inflight : t -> int

val peak_inflight : t -> int
(** High-water mark of concurrently admitted requests — how much of
    the budget (and of the node's admission-held table) the workload
    actually used; capacity probes report it. *)

val admitted_total : t -> int
val shed_total : t -> int
