open Dessim

type t = {
  budget : int;
  retry_base : Time.t;
  mutable inflight : int;
  mutable peak_inflight : int;
  mutable admitted_total : int;
  mutable shed_total : int;
}

let create ~budget ~retry_base =
  {
    budget;
    retry_base;
    inflight = 0;
    peak_inflight = 0;
    admitted_total = 0;
    shed_total = 0;
  }

let enabled t = t.budget > 0
let inflight t = t.inflight
let peak_inflight t = t.peak_inflight
let admitted_total t = t.admitted_total
let shed_total t = t.shed_total

let admit t ~backlog =
  if t.budget <= 0 || t.inflight < t.budget then begin
    t.inflight <- t.inflight + 1;
    if t.inflight > t.peak_inflight then t.peak_inflight <- t.inflight;
    t.admitted_total <- t.admitted_total + 1;
    Ok ()
  end
  else begin
    t.shed_total <- t.shed_total + 1;
    (* The retry hint is how long the shedding stage needs to drain
       what it has already accepted — an honest estimate of when a
       retry can be admitted — floored at [retry_base] so clients
       never spin on a hint of zero. *)
    Error (Time.max t.retry_base backlog)
  end

let release t = if t.inflight > 0 then t.inflight <- t.inflight - 1
