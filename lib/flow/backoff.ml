open Dessim

type t = { base : Time.t; cap : Time.t; rng : Rng.t }

let create ?(cap = Time.ms 100) ~base rng =
  { base = Time.max (Time.ns 1) base; cap; rng }

let delay t ~attempt ~hint =
  let shift = Stdlib.min (Stdlib.max 0 attempt) 16 in
  let d = Time.min t.cap (Time.mul_f t.base (float_of_int (1 lsl shift))) in
  (* Full jitter in [d, 2d): spreads retries from clients shed by the
     same burst so they do not re-collide, while staying deterministic
     for a given rng stream. *)
  let jittered = Time.add d (Time.mul_f d (Rng.float t.rng 1.0)) in
  Time.max hint jittered
