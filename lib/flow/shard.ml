(* djb2 over the key bytes, masked to stay non-negative on 63-bit
   ints. Written out rather than using [Hashtbl.hash] so the key→shard
   map is pinned by this file alone: execution order within a shard is
   part of observable replica state (state digests), so the hash must
   never drift with the compiler's runtime. *)
let hash key =
  let h = ref 5381 in
  String.iter
    (fun c -> h := ((!h lsl 5) + !h + Char.code c) land max_int)
    key;
  !h

let index ~shards key = if shards <= 1 then 0 else hash key mod shards
