open Dessim

type t = {
  min_size : int;
  max_size : int;
  base_delay : Time.t;
  min_delay : Time.t;
  target_backlog : Time.t;
}

let make ?(growth = 4) ?(min_delay = Time.us 100)
    ?(target_backlog = Time.ms 2) ~batch_size ~batch_delay () =
  let growth = Stdlib.max 1 growth in
  {
    min_size = Stdlib.max 1 batch_size;
    max_size = Stdlib.max 1 (batch_size * growth);
    base_delay = batch_delay;
    min_delay = Time.min min_delay batch_delay;
    target_backlog = Time.max (Time.ns 1) target_backlog;
  }

let clamp lo hi v = Stdlib.max lo (Stdlib.min hi v)

(* Pressure is how full the probed stage is relative to the backlog we
   are willing to tolerate. Below 1.0 the plan stays at the configured
   batch size and delay (low-latency regime); above it the batch grows
   linearly with pressure — amortising the per-batch protocol cost
   (pre-prepare, MAC vectors, quorum bookkeeping) exactly when the
   pipeline is the bottleneck — and the flush delay shrinks towards
   [min_delay] so a saturated primary never sits on a full batch. *)
let plan t ~backlog ~depth =
  let pressure =
    if backlog <= Time.zero then 0.0
    else Time.to_sec_f backlog /. Time.to_sec_f t.target_backlog
  in
  let scaled =
    int_of_float (ceil (float_of_int t.min_size *. Float.max 1.0 pressure))
  in
  (* Never plan a batch smaller than what is already waiting: draining
     [depth] queued requests in one flush beats doing it in several. *)
  let size = clamp t.min_size t.max_size (Stdlib.max scaled depth) in
  let delay =
    if pressure >= 1.0 then t.min_delay
    else Time.max t.min_delay (Time.mul_f t.base_delay (1.0 -. pressure))
  in
  (size, delay)
