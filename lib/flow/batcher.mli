(** Adaptive batch-size planner.

    Pure, deterministic policy mapping a live load probe — the
    {!Dessim.Resource} backlog of the stage the primary feeds plus its
    own pending-queue depth — to a (batch size, flush delay) plan. At
    low load it keeps the configured batch size and delay (batching
    adds no latency when there is no queue to amortise); as the probed
    backlog passes [target_backlog] the batch grows linearly with
    pressure up to [growth] times the configured size and the flush
    delay shrinks towards [min_delay], trading per-request latency it
    was going to lose in the queue anyway for per-batch amortisation. *)

open Dessim

type t

val make :
  ?growth:int ->
  ?min_delay:Time.t ->
  ?target_backlog:Time.t ->
  batch_size:int ->
  batch_delay:Time.t ->
  unit ->
  t
(** [make ~batch_size ~batch_delay ()] plans around the configured
    static point. [growth] (default 4) bounds the adaptive batch at
    [growth * batch_size]; [min_delay] (default 100us, clamped to at
    most [batch_delay]) floors the flush delay; [target_backlog]
    (default 2ms) is the probed backlog at which adaptation starts. *)

val plan : t -> backlog:Time.t -> depth:int -> int * Time.t
(** [plan t ~backlog ~depth] is the (batch size, flush delay) to use
    for the next flush. Monotone: size never decreases and delay never
    increases as [backlog] or [depth] grow; size is always within
    [batch_size .. growth * batch_size]. *)
