(** Deterministic exponential backoff with jitter.

    Client-side policy for retrying after a BUSY reply: exponential in
    the attempt number, capped, jittered by a dedicated {!Dessim.Rng}
    stream so two runs with the same seed produce exactly the same
    retry schedule (pinned by a determinism test), and never earlier
    than the server's retry hint. *)

open Dessim

type t

val create : ?cap:Time.t -> base:Time.t -> Rng.t -> t
(** [cap] defaults to 100ms; [base] is floored at 1ns. *)

val delay : t -> attempt:int -> hint:Time.t -> Time.t
(** [delay t ~attempt ~hint] draws the wait before retry number
    [attempt] (0-based): [max hint (d + jitter)] where
    [d = min cap (base * 2^attempt)] and jitter is uniform in [0, d).
    Each call advances the rng stream. *)
