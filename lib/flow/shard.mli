(** Deterministic key → shard placement for sharded execution.

    Every replica must route a given key to the same shard in every
    run (per-shard execution order feeds the state digest), so the
    hash is a fixed djb2 over the key bytes — independent of the OCaml
    runtime's [Hashtbl.hash]. *)

val hash : string -> int
(** Non-negative djb2 hash of the key bytes. *)

val index : shards:int -> string -> int
(** [index ~shards key] is the shard in [0, shards) owning [key];
    always 0 when [shards <= 1]. *)
