(** Executes a {!Scenario} and judges it against the oracles.

    A run has two phases. During [duration], the workload is applied
    and the fault plan is live. Then the injector {e heals} every
    fault, the clients stop sending, and the engine runs for [drain]
    more virtual time. The oracles:

    - {b Safety}: a {!Bftaudit.Auditor} (agreement, double execution,
      prepare quorum, checkpoint consistency, instance-change quorum)
      observes the whole run in recording mode.
    - {b Liveness}: after the drain, every request a correct client
      sent must have completed (f+1 matching replies). The drain is
      the liveness bound: a scenario whose faults push completion
      beyond it is a liveness violation.

    With [~capture:true] the run also computes the chained audit
    digest, which is how replay determinism is asserted: running the
    same scenario twice must produce byte-identical digests. *)

type result = {
  scenario : Scenario.t;
  executed : int;  (** requests executed at the most advanced node *)
  sent : int;  (** total client requests sent *)
  completed : int;  (** requests with f+1 matching replies *)
  safety_violations : Bftaudit.Auditor.violation list;
  events_checked : int;
  digest : string option;  (** chained audit digest when captured *)
  incidents : Bftdoctor.Doctor.incident_ref list;
      (** bundles dumped by the doctor when [doctor_dir] was given *)
}

val run : ?capture:bool -> ?doctor_dir:string -> Scenario.t -> result
(** [capture] defaults to [false]. With [doctor_dir], a
    {!Bftdoctor.Doctor} rides along (instance-change,
    auditor-violation and liveness-stall triggers) and writes incident
    bundles under that directory; a run that fails the oracles without
    tripping any trigger force-dumps one bundle of the post-drain
    state. *)

val liveness_ok : result -> bool
(** [completed = sent] (and something was actually sent when the
    workload has a positive rate). *)

val safety_ok : result -> bool

val ok : result -> bool
(** Both oracles pass. *)

val summary : result -> string
(** One line: verdicts plus counts, for sweep output. *)
