(** Applies a {!Fault.plan} to a running cluster.

    The injector is protocol-agnostic: it talks to the system under
    test through a {!hooks} record (network fault hook, per-node CPU
    and clock knobs) that each cluster flavour provides — see
    {!Runner}. Installation schedules every fault's activation and
    expiry on the engine and installs a single network hook that rules
    on each message against the currently-active faults.

    Randomized decisions (drop/duplicate/corrupt draws, jitter) come
    from the injector's own stream seeded from the scenario seed, so a
    scenario replays bit-identically. *)

open Dessim

type hooks = {
  engine : Engine.t;
  n : int;  (** number of nodes *)
  set_fault_hook : Bftnet.Network.fault_hook option -> unit;
  set_cpu_factor : node:int -> float -> unit;
  set_clock_factor : node:int -> float -> unit;
}

type t

val install : hooks -> seed:int64 -> Fault.plan -> t
(** Schedules the plan. Fault times are absolute virtual times; call
    before running the engine (at time 0). *)

val heal : t -> unit
(** Immediately deactivate every fault: clears the network hook,
    cancels pending activations and resets all skews to 1.0. Used by
    the runner at the start of the drain phase. *)

val crashed : t -> int -> bool
(** Is the node currently crashed (for excluding it from checks)? *)
