(** Declarative fault descriptions.

    A fault is a [kind] active over a virtual-time window [\[at,
    until)]. A {!plan} is an unordered list of faults; the
    {!Injector} schedules their activation and expiry on the
    simulation engine.

    Semantics of the kinds:

    - [Crash]: fail-stop at the network boundary. While active, the
      node is bidirectionally isolated — nothing it sends is delivered
      and nothing sent to it (by nodes or clients) arrives. Its timers
      and in-memory state keep running, which models a process that is
      alive but unreachable; on expiry it rejoins and catches up
      through the protocol's own checkpoint state transfer.
    - [Partition]: messages between a node inside [group] and a node
      outside it are dropped, in both directions. Client traffic is
      unaffected (clients reach every replica); only the replica mesh
      is cut.
    - [Link_chaos]: per-message randomized misbehaviour on matching
      links. [src]/[dst] filter on node ids ([None] matches any
      endpoint, including clients). Probabilities are evaluated
      independently per message from the injector's own seeded stream.
    - [Clock_skew]: the node's local timers run [factor] times slower
      ([factor > 1]) or faster ([factor < 1]).
    - [Cpu_skew]: the node's module threads run at [factor] times
      nominal speed ([factor < 1] is a slow machine). *)

open Dessim

type link_rates = {
  drop : float;  (** per-message loss probability *)
  duplicate : float;  (** probability of one extra copy *)
  corrupt : float;  (** probability of authenticator corruption *)
  delay : Time.t;  (** fixed extra latency *)
  jitter : Time.t;  (** extra uniform latency in [\[0, jitter)] *)
}

val benign_rates : link_rates

type kind =
  | Crash of { node : int }
  | Partition of { group : int list }
  | Link_chaos of { src : int option; dst : int option; rates : link_rates }
  | Clock_skew of { node : int; factor : float }
  | Cpu_skew of { node : int; factor : float }

type t = { at : Time.t; until : Time.t; kind : kind }

type plan = t list

val describe : t -> string
(** One-line human-readable rendering, for logs and reports. *)
