open Dessim

type result = {
  scenario : Scenario.t;
  executed : int;
  sent : int;
  completed : int;
  safety_violations : Bftaudit.Auditor.violation list;
  events_checked : int;
  digest : string option;
  incidents : Bftdoctor.Doctor.incident_ref list;
}

(* A protocol-agnostic view of a freshly built cluster. *)
type sys = {
  hooks : Injector.hooks;
  run_for : Time.t -> unit;
  set_rates : float -> unit;
  totals : unit -> int * int;  (* sent, completed *)
  executed : unit -> int;
  describe : (string * string) list;  (* incident-bundle config fields *)
  context : (unit -> (string * string) list) option;  (* dump-time fields *)
}

let sum_totals sent completed clients =
  Array.fold_left (fun (s, c) cl -> (s + sent cl, c + completed cl)) (0, 0) clients

let build_rbft ~transport ?(ordering = Rbft.Params.Redundant) (s : Scenario.t) =
  let params =
    {
      (Rbft.Params.default ~f:s.Scenario.f) with
      Rbft.Params.lambda = s.Scenario.lambda;
      ordering;
      ic_quorum =
        (match s.Scenario.mutation with
         | Some Scenario.Ic_quorum_low -> Some 1
         | None -> None);
    }
  in
  let cluster =
    Rbft.Cluster.create ~seed:s.Scenario.seed ~transport
      ~clients:s.Scenario.workload.Scenario.clients
      ~payload_size:s.Scenario.workload.Scenario.payload params
  in
  let net = Rbft.Cluster.network cluster in
  {
    hooks =
      {
        Injector.engine = Rbft.Cluster.engine cluster;
        n = (3 * s.Scenario.f) + 1;
        set_fault_hook = Bftnet.Network.set_fault_hook net;
        set_cpu_factor =
          (fun ~node k -> Rbft.Node.set_cpu_factor (Rbft.Cluster.node cluster node) k);
        set_clock_factor =
          (fun ~node k ->
            Rbft.Node.set_clock_factor (Rbft.Cluster.node cluster node) k);
      };
    run_for = Rbft.Cluster.run_for cluster;
    set_rates =
      (fun r -> Array.iter (fun c -> Rbft.Client.set_rate c r) (Rbft.Cluster.clients cluster));
    totals =
      (fun () ->
        sum_totals Rbft.Client.sent Rbft.Client.completed (Rbft.Cluster.clients cluster));
    executed = (fun () -> Rbft.Cluster.total_executed cluster);
    describe = Rbft.Cluster.describe cluster;
    context =
      Some
        (fun () ->
          [
            ( "master_primary",
              string_of_int (Rbft.Cluster.master_primary cluster) );
          ]);
  }

(* Aardvark's paper policy times (5 s grace) dwarf a chaos scenario;
   compress them the same way the harness experiments do so that the
   protocol can actually react within the run. *)
let aardvark_config ~f =
  {
    (Aardvark.Node.default_config ~f) with
    Aardvark.Node.policy =
      {
        (Aardvark.Policy.default_config ~n:((3 * f) + 1)) with
        Aardvark.Policy.grace = Time.of_sec_f 1.2;
        view_warmup = Time.ms 500;
      };
    post_vc_quiet = Time.ms 120;
  }

let build_aardvark (s : Scenario.t) =
  let cluster =
    Aardvark.Cluster.create ~seed:s.Scenario.seed
      ~clients:s.Scenario.workload.Scenario.clients
      ~payload_size:s.Scenario.workload.Scenario.payload
      (aardvark_config ~f:s.Scenario.f)
  in
  let net = Aardvark.Cluster.network cluster in
  {
    hooks =
      {
        Injector.engine = Aardvark.Cluster.engine cluster;
        n = (3 * s.Scenario.f) + 1;
        set_fault_hook = Bftnet.Network.set_fault_hook net;
        set_cpu_factor =
          (fun ~node k ->
            Aardvark.Node.set_cpu_factor (Aardvark.Cluster.node cluster node) k);
        set_clock_factor =
          (fun ~node k ->
            Aardvark.Node.set_clock_factor (Aardvark.Cluster.node cluster node) k);
      };
    run_for = Aardvark.Cluster.run_for cluster;
    set_rates =
      (fun r ->
        Array.iter
          (fun c -> Aardvark.Client.set_rate c r)
          (Aardvark.Cluster.clients cluster));
    totals =
      (fun () ->
        sum_totals Aardvark.Client.sent Aardvark.Client.completed
          (Aardvark.Cluster.clients cluster));
    executed = (fun () -> Aardvark.Cluster.total_executed cluster);
    describe =
      [ ("protocol", "aardvark"); ("f", string_of_int s.Scenario.f) ];
    context = None;
  }

let build_spinning (s : Scenario.t) =
  let cluster =
    Spinning.Cluster.create ~seed:s.Scenario.seed
      ~clients:s.Scenario.workload.Scenario.clients
      ~payload_size:s.Scenario.workload.Scenario.payload
      (Spinning.Node.default_config ~f:s.Scenario.f)
  in
  let net = Spinning.Cluster.network cluster in
  {
    hooks =
      {
        Injector.engine = Spinning.Cluster.engine cluster;
        n = (3 * s.Scenario.f) + 1;
        set_fault_hook = Bftnet.Network.set_fault_hook net;
        set_cpu_factor =
          (fun ~node k ->
            Spinning.Node.set_cpu_factor (Spinning.Cluster.node cluster node) k);
        set_clock_factor =
          (fun ~node k ->
            Spinning.Node.set_clock_factor (Spinning.Cluster.node cluster node) k);
      };
    run_for = Spinning.Cluster.run_for cluster;
    set_rates =
      (fun r ->
        Array.iter
          (fun c -> Spinning.Client.set_rate c r)
          (Spinning.Cluster.clients cluster));
    totals =
      (fun () ->
        sum_totals Spinning.Client.sent Spinning.Client.completed
          (Spinning.Cluster.clients cluster));
    executed = (fun () -> Spinning.Cluster.total_executed cluster);
    describe =
      [ ("protocol", "spinning"); ("f", string_of_int s.Scenario.f) ];
    context = None;
  }

let build_prime (s : Scenario.t) =
  let cluster =
    Prime.Cluster.create ~seed:s.Scenario.seed
      ~clients:s.Scenario.workload.Scenario.clients
      ~payload_size:s.Scenario.workload.Scenario.payload
      (Prime.Node.default_config ~f:s.Scenario.f)
  in
  let net = Prime.Cluster.network cluster in
  {
    hooks =
      {
        Injector.engine = Prime.Cluster.engine cluster;
        n = (3 * s.Scenario.f) + 1;
        set_fault_hook = Bftnet.Network.set_fault_hook net;
        set_cpu_factor =
          (fun ~node k -> Prime.Node.set_cpu_factor (Prime.Cluster.node cluster node) k);
        set_clock_factor =
          (fun ~node k ->
            Prime.Node.set_clock_factor (Prime.Cluster.node cluster node) k);
      };
    run_for = Prime.Cluster.run_for cluster;
    set_rates =
      (fun r ->
        Array.iter (fun c -> Prime.Client.set_rate c r) (Prime.Cluster.clients cluster));
    totals =
      (fun () ->
        sum_totals Prime.Client.sent Prime.Client.completed
          (Prime.Cluster.clients cluster));
    executed = (fun () -> Prime.Cluster.total_executed cluster);
    describe = [ ("protocol", "prime"); ("f", string_of_int s.Scenario.f) ];
    context = None;
  }

let build (s : Scenario.t) =
  match s.Scenario.protocol with
  | Scenario.Rbft -> build_rbft ~transport:Bftnet.Network.Tcp s
  | Scenario.Rbft_udp -> build_rbft ~transport:Bftnet.Network.Udp s
  | Scenario.Rbft_concurrent ->
    build_rbft ~transport:Bftnet.Network.Tcp
      ~ordering:Rbft.Params.Concurrent s
  | Scenario.Aardvark -> build_aardvark s
  | Scenario.Spinning -> build_spinning s
  | Scenario.Prime -> build_prime s

(* Triggers for chaos runs: dump on any safety-relevant edge, and on a
   liveness stall well inside the drain bound so the bundle still holds
   the stalled state. *)
let doctor_triggers =
  let open Bftdoctor in
  [
    Trigger.spec Trigger.Instance_change ~cooldown:(Time.sec 1);
    Trigger.spec Trigger.Auditor_violation ~cooldown:(Time.sec 1);
    Trigger.spec
      (Trigger.Liveness_stall { idle = Time.of_sec_f 0.8 })
      ~cooldown:(Time.sec 5);
    (* Only ever samples under rbft-concurrent; inert elsewhere. *)
    Trigger.spec
      (Trigger.Seq_stall { age = Time.ms 125 })
      ~cooldown:(Time.sec 2);
  ]

let run ?(capture = false) ?doctor_dir (s : Scenario.t) =
  (* Chaos faults are benign (crash, partition, message-level chaos):
     no node is Byzantine, so the auditor checks all of them. *)
  Bftaudit.Auditor.reset_declared ();
  let auditor =
    Bftaudit.Auditor.attach ~raise_on_violation:false ~n:((3 * s.Scenario.f) + 1)
      ~f:s.Scenario.f ()
  in
  let cap = if capture then Some (Bftaudit.Capture.attach ()) else None in
  let sys = build s in
  let doctor =
    match doctor_dir with
    | None -> None
    | Some dir ->
      let config =
        Bftdoctor.Doctor.default_config ~dir:(Some dir) ~seed:s.Scenario.seed
          ~config_fields:(("scenario_name", s.Scenario.name) :: sys.describe)
          ~context:sys.context
          ~scenario:(Some (Scenario.to_string s))
          ~triggers:doctor_triggers ()
      in
      Some (Bftdoctor.Doctor.attach config sys.hooks.Injector.engine)
  in
  let injector = Injector.install sys.hooks ~seed:s.Scenario.seed s.Scenario.faults in
  sys.set_rates s.Scenario.workload.Scenario.rate;
  sys.run_for s.Scenario.duration;
  Injector.heal injector;
  sys.set_rates 0.0;
  sys.run_for s.Scenario.drain;
  let sent, completed = sys.totals () in
  let safety_violations = Bftaudit.Auditor.violations auditor in
  (* A run that failed the oracles without tripping any trigger still
     deserves forensics: force one bundle of the post-drain state. *)
  (match doctor with
  | Some d
    when Bftdoctor.Doctor.incidents d = []
         && (safety_violations <> [] || completed <> sent) ->
    Bftdoctor.Doctor.force d
      ~reason:
        (Printf.sprintf
           "oracle failure after drain: %d/%d completed, %d violation(s)"
           completed sent
           (List.length safety_violations))
  | _ -> ());
  let result =
    {
      scenario = s;
      executed = sys.executed ();
      sent;
      completed;
      safety_violations;
      events_checked = Bftaudit.Auditor.events_checked auditor;
      digest = Option.map Bftaudit.Capture.digest cap;
      incidents =
        (match doctor with
        | Some d -> Bftdoctor.Doctor.incidents d
        | None -> []);
    }
  in
  Bftaudit.Auditor.detach auditor;
  Option.iter Bftaudit.Capture.detach cap;
  Option.iter Bftdoctor.Doctor.detach doctor;
  result

let liveness_ok r =
  r.completed = r.sent
  && (r.scenario.Scenario.workload.Scenario.rate <= 0.0
      || r.scenario.Scenario.workload.Scenario.clients = 0
      || r.sent > 0)

let safety_ok r = r.safety_violations = []
let ok r = safety_ok r && liveness_ok r

let summary r =
  Printf.sprintf "%s [%s]: %s, %d/%d completed, %d executed, %d violations, %d events"
    r.scenario.Scenario.name
    (Scenario.protocol_name r.scenario.Scenario.protocol)
    (if ok r then "OK" else "FAIL")
    r.completed r.sent r.executed
    (List.length r.safety_violations)
    r.events_checked
