open Dessim

(* Candidate generators, from most to least aggressive. Each returns a
   list of scenarios strictly "smaller" than the input, so acceptance
   always makes progress and the greedy loop terminates. *)

let without_fault (s : Scenario.t) =
  List.mapi
    (fun i _ ->
      {
        s with
        Scenario.faults = List.filteri (fun j _ -> j <> i) s.Scenario.faults;
      })
    s.Scenario.faults

let halve_window (s : Scenario.t) =
  List.mapi
    (fun i _ ->
      {
        s with
        Scenario.faults =
          List.mapi
            (fun j (f : Fault.t) ->
              if j <> i then f
              else
                let len = Time.sub f.Fault.until f.Fault.at in
                if len <= Time.us 1 then f
                else { f with Fault.until = Time.add f.Fault.at (Time.mul_f len 0.5) })
            s.Scenario.faults;
      })
    s.Scenario.faults

(* Move a value halfway toward its benign point. *)
let soften_float v benign = benign +. ((v -. benign) *. 0.5)
let soften_time v = Time.mul_f v 0.5

let soften_kind (k : Fault.kind) =
  match k with
  | Fault.Crash _ | Fault.Partition _ -> None
  | Fault.Link_chaos { src; dst; rates } ->
    let softened =
      {
        Fault.drop = soften_float rates.Fault.drop 0.0;
        duplicate = soften_float rates.Fault.duplicate 0.0;
        corrupt = soften_float rates.Fault.corrupt 0.0;
        delay = soften_time rates.Fault.delay;
        jitter = soften_time rates.Fault.jitter;
      }
    in
    if softened = rates then None
    else Some (Fault.Link_chaos { src; dst; rates = softened })
  | Fault.Clock_skew { node; factor } ->
    let f' = soften_float factor 1.0 in
    if abs_float (f' -. factor) < 1e-9 then None
    else Some (Fault.Clock_skew { node; factor = f' })
  | Fault.Cpu_skew { node; factor } ->
    let f' = soften_float factor 1.0 in
    if abs_float (f' -. factor) < 1e-9 then None
    else Some (Fault.Cpu_skew { node; factor = f' })

let soften_fault (s : Scenario.t) =
  List.concat
    (List.mapi
       (fun i (f : Fault.t) ->
         match soften_kind f.Fault.kind with
         | None -> []
         | Some kind ->
           [
             {
               s with
               Scenario.faults =
                 List.mapi
                   (fun j g -> if j = i then { f with Fault.kind = kind } else g)
                   s.Scenario.faults;
             };
           ])
       s.Scenario.faults)

let smaller_workload (s : Scenario.t) =
  let w = s.Scenario.workload in
  let candidates = ref [] in
  if w.Scenario.rate > 10.0 then
    candidates :=
      { s with Scenario.workload = { w with Scenario.rate = w.Scenario.rate /. 2.0 } }
      :: !candidates;
  if w.Scenario.clients > 1 then
    candidates :=
      {
        s with
        Scenario.workload = { w with Scenario.clients = w.Scenario.clients / 2 };
      }
      :: !candidates;
  if s.Scenario.duration > Time.ms 100 then begin
    (* Shorten the chaos phase; clamp fault windows into it. *)
    let duration = Time.mul_f s.Scenario.duration 0.5 in
    let faults =
      List.map
        (fun (f : Fault.t) ->
          {
            f with
            Fault.at = Time.min f.Fault.at duration;
            until = Time.min f.Fault.until duration;
          })
        s.Scenario.faults
    in
    candidates := { s with Scenario.duration = duration; faults } :: !candidates
  end;
  List.rev !candidates

let canonical_seed (s : Scenario.t) =
  List.filter_map
    (fun seed -> if s.Scenario.seed = seed then None else Some { s with Scenario.seed = seed })
    [ 0L; 1L; 2L ]

let moves = [ without_fault; halve_window; soften_fault; smaller_workload; canonical_seed ]

let minimize ?(budget = 200) still_fails scenario =
  let spent = ref 0 in
  let current = ref scenario in
  let progress = ref true in
  while !progress && !spent < budget do
    progress := false;
    List.iter
      (fun move ->
        (* Retry a move class as long as it keeps succeeding (e.g.
           removing several faults one by one). *)
        let again = ref true in
        while !again && !spent < budget do
          again := false;
          let candidates = move !current in
          match
            List.find_opt
              (fun c ->
                if !spent >= budget then false
                else begin
                  incr spent;
                  still_fails c
                end)
              candidates
          with
          | Some c ->
            current := c;
            progress := true;
            again := true
          | None -> ()
        done)
      moves
  done;
  ({ !current with Scenario.name = !current.Scenario.name ^ "-min" }, !spent)
