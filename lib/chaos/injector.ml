open Dessim
open Bftcrypto

type hooks = {
  engine : Engine.t;
  n : int;
  set_fault_hook : Bftnet.Network.fault_hook option -> unit;
  set_cpu_factor : node:int -> float -> unit;
  set_clock_factor : node:int -> float -> unit;
}

type active = {
  crashed : bool array;
  mutable partitions : int list list;  (* active isolation groups *)
  mutable links : (int option * int option * Fault.link_rates) list;
}

type t = {
  hooks : hooks;
  rng : Rng.t;
  state : active;
  mutable timers : Engine.timer list;
  mutable healed : bool;
}

let log t message =
  if Bftaudit.Bus.active () then
    Bftaudit.Bus.emit
      {
        Bftaudit.Event.time = Engine.now t.hooks.engine;
        node = -1;
        instance = -1;
        kind = Bftaudit.Event.Log { level = "info"; component = "chaos"; message };
      }

(* A node id for fault matching: clients map to -1, which no node
   filter matches but the [None] wildcard does. *)
let node_id = function Principal.Node i -> i | Principal.Client _ -> -1

let separated groups a b =
  (* a or b being -1 (a client) never crosses a partition: only the
     replica mesh is cut. *)
  a >= 0 && b >= 0
  && List.exists
       (fun group ->
         let ina = List.mem a group and inb = List.mem b group in
         ina <> inb)
       groups

let matches filter id = match filter with None -> true | Some i -> i = id

(* The single network hook: consult the active fault state for every
   message. Draw order from the rng stream is fixed (drop, duplicate,
   corrupt, jitter per matching link rule) to keep replays exact. *)
let verdict t ~src ~dst ~size:_ =
  let s = node_id src and d = node_id dst in
  let crashed i = i >= 0 && i < Array.length t.state.crashed && t.state.crashed.(i) in
  if crashed s || crashed d then
    { Bftnet.Network.pass_verdict with Bftnet.Network.fv_drop = true }
  else if separated t.state.partitions s d then
    { Bftnet.Network.pass_verdict with Bftnet.Network.fv_drop = true }
  else begin
    let drop = ref false in
    let dups = ref 0 in
    let corrupt = ref false in
    let extra = ref Time.zero in
    List.iter
      (fun (fsrc, fdst, (r : Fault.link_rates)) ->
        if matches fsrc s && matches fdst d then begin
          if r.Fault.drop > 0.0 && Rng.float t.rng 1.0 < r.Fault.drop then
            drop := true;
          if r.Fault.duplicate > 0.0 && Rng.float t.rng 1.0 < r.Fault.duplicate then
            incr dups;
          if r.Fault.corrupt > 0.0 && Rng.float t.rng 1.0 < r.Fault.corrupt then
            corrupt := true;
          extra := Time.add !extra r.Fault.delay;
          if r.Fault.jitter > Time.zero then
            extra := Time.add !extra (Time.ns (Rng.int t.rng (Stdlib.max 1 r.Fault.jitter)))
        end)
      t.state.links;
    if !drop then { Bftnet.Network.pass_verdict with Bftnet.Network.fv_drop = true }
    else
      {
        Bftnet.Network.fv_drop = false;
        fv_duplicates = !dups;
        fv_extra_delay = !extra;
        fv_corrupt = !corrupt;
      }
  end

let activate t (f : Fault.t) =
  log t (Printf.sprintf "activate %s" (Fault.describe f));
  match f.Fault.kind with
  | Fault.Crash { node } ->
    if node >= 0 && node < t.hooks.n then t.state.crashed.(node) <- true
  | Fault.Partition { group } -> t.state.partitions <- group :: t.state.partitions
  | Fault.Link_chaos { src; dst; rates } ->
    t.state.links <- t.state.links @ [ (src, dst, rates) ]
  | Fault.Clock_skew { node; factor } ->
    if node >= 0 && node < t.hooks.n then t.hooks.set_clock_factor ~node factor
  | Fault.Cpu_skew { node; factor } ->
    if node >= 0 && node < t.hooks.n then t.hooks.set_cpu_factor ~node factor

let deactivate t (f : Fault.t) =
  log t (Printf.sprintf "expire %s" (Fault.describe f));
  match f.Fault.kind with
  | Fault.Crash { node } ->
    if node >= 0 && node < t.hooks.n then t.state.crashed.(node) <- false
  | Fault.Partition { group } ->
    (* Remove one occurrence (identical overlapping groups stack). *)
    let rec remove = function
      | [] -> []
      | g :: rest -> if g = group then rest else g :: remove rest
    in
    t.state.partitions <- remove t.state.partitions
  | Fault.Link_chaos { src; dst; rates } ->
    let rec remove = function
      | [] -> []
      | entry :: rest ->
        if entry = (src, dst, rates) then rest else entry :: remove rest
    in
    t.state.links <- remove t.state.links
  | Fault.Clock_skew { node; factor = _ } ->
    if node >= 0 && node < t.hooks.n then t.hooks.set_clock_factor ~node 1.0
  | Fault.Cpu_skew { node; factor = _ } ->
    if node >= 0 && node < t.hooks.n then t.hooks.set_cpu_factor ~node 1.0

let install hooks ~seed plan =
  let t =
    {
      hooks;
      rng = Rng.create (Int64.logxor seed 0x6368616f73L (* "chaos" *));
      state = { crashed = Array.make hooks.n false; partitions = []; links = [] };
      timers = [];
      healed = false;
    }
  in
  hooks.set_fault_hook (Some (fun ~src ~dst ~size -> verdict t ~src ~dst ~size));
  List.iter
    (fun (f : Fault.t) ->
      t.timers <- Engine.at hooks.engine f.Fault.at (fun () -> activate t f) :: t.timers;
      t.timers <-
        Engine.at hooks.engine f.Fault.until (fun () -> deactivate t f) :: t.timers)
    plan;
  t

let heal t =
  if not t.healed then begin
    t.healed <- true;
    List.iter Engine.cancel t.timers;
    t.timers <- [];
    Array.fill t.state.crashed 0 (Array.length t.state.crashed) false;
    t.state.partitions <- [];
    t.state.links <- [];
    for node = 0 to t.hooks.n - 1 do
      t.hooks.set_clock_factor ~node 1.0;
      t.hooks.set_cpu_factor ~node 1.0
    done;
    t.hooks.set_fault_hook None;
    log t "healed: all faults cleared"
  end

let crashed t i = i >= 0 && i < Array.length t.state.crashed && t.state.crashed.(i)
