(** Greedy scenario minimization.

    Given a failing scenario and a predicate [still_fails] (typically
    [fun s -> not (Runner.ok (Runner.run s))]), repeatedly applies
    simplification moves and keeps any result that still fails:

    - drop one fault entirely;
    - halve a fault's window;
    - move a fault's rates/factors halfway toward benign;
    - halve the workload (rate, then clients) and shorten the chaos
      phase;
    - replace the seed with a small canonical one.

    Moves run to a fixpoint or until the run [budget] is exhausted.
    The result is a locally-minimal scenario: no single remaining move
    preserves the failure. Minimized repro files are what the CI job
    uploads when a sweep fails. *)

val minimize :
  ?budget:int -> (Scenario.t -> bool) -> Scenario.t -> Scenario.t * int
(** [minimize still_fails s] returns the shrunk scenario and the
    number of candidate runs spent. [budget] (default 200) bounds how
    many candidates are tried. [s] itself is assumed to fail. *)
