type t = Atom of string | List of t list

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\' -> true
         | _ -> false)
       s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let atom_to_string s = if needs_quoting s then quote s else s

(* Lists of atoms print on one line; anything containing a sublist
   breaks across lines, indented. *)
let rec pp buf indent s =
  match s with
  | Atom a -> Buffer.add_string buf (atom_to_string a)
  | List items ->
    if List.for_all (function Atom _ -> true | List _ -> false) items then begin
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          pp buf indent item)
        items;
      Buffer.add_char buf ')'
    end
    else begin
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          match item with
          | Atom _ when i = 0 -> pp buf indent item
          | _ ->
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (indent + 2) ' ');
            pp buf (indent + 2) item)
        items;
      Buffer.add_char buf ')'
    end

let to_string s =
  let buf = Buffer.create 256 in
  pp buf 0 s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    c.pos <- c.pos + 1;
    skip_ws c
  | Some ';' ->
    while peek c <> None && peek c <> Some '\n' do
      c.pos <- c.pos + 1
    done;
    skip_ws c
  | _ -> ()

let parse_quoted c =
  (* cursor on the opening quote *)
  c.pos <- c.pos + 1;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> Error (Printf.sprintf "unterminated string at %d" c.pos)
    | Some '"' ->
      c.pos <- c.pos + 1;
      Ok (Atom (Buffer.contents buf))
    | Some '\\' -> (
      c.pos <- c.pos + 1;
      match peek c with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        c.pos <- c.pos + 1;
        loop ()
      | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        loop ()
      | None -> Error (Printf.sprintf "dangling escape at %d" c.pos))
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      loop ()
  in
  loop ()

let parse_bare c =
  let start = c.pos in
  let rec loop () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> ()
    | Some _ ->
      c.pos <- c.pos + 1;
      loop ()
  in
  loop ();
  Ok (Atom (String.sub c.src start (c.pos - start)))

let rec parse_one c =
  skip_ws c;
  match peek c with
  | None -> Error "unexpected end of input"
  | Some ')' -> Error (Printf.sprintf "unexpected ')' at %d" c.pos)
  | Some '(' ->
    c.pos <- c.pos + 1;
    let rec items acc =
      skip_ws c;
      match peek c with
      | Some ')' ->
        c.pos <- c.pos + 1;
        Ok (List (List.rev acc))
      | None -> Error (Printf.sprintf "unterminated list at %d" c.pos)
      | Some _ -> (
        match parse_one c with Ok item -> items (item :: acc) | Error e -> Error e)
    in
    items []
  | Some '"' -> parse_quoted c
  | Some _ -> parse_bare c

let of_string src =
  let c = { src; pos = 0 } in
  match parse_one c with
  | Error e -> Error e
  | Ok s ->
    skip_ws c;
    if c.pos < String.length src then
      Error (Printf.sprintf "trailing input at %d" c.pos)
    else Ok s

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let atom = function
  | Atom a -> Ok a
  | List _ -> Error "expected atom, found list"

let children = function List items -> items | Atom _ -> []

let field s name =
  let matches = function
    | List (Atom head :: _) when String.equal head name -> true
    | _ -> false
  in
  match List.find_opt matches (children s) with
  | Some (List [ _; v ]) -> Some v
  | Some child -> Some child
  | None -> None

let field_all s name =
  List.filter
    (function
      | List (Atom head :: _) when String.equal head name -> true | _ -> false)
    (children s)
