open Dessim

type protocol = Rbft | Rbft_udp | Rbft_concurrent | Aardvark | Spinning | Prime

let protocol_name = function
  | Rbft -> "rbft"
  | Rbft_udp -> "rbft-udp"
  | Rbft_concurrent -> "rbft-concurrent"
  | Aardvark -> "aardvark"
  | Spinning -> "spinning"
  | Prime -> "prime"

let protocol_of_name = function
  | "rbft" -> Some Rbft
  | "rbft-udp" -> Some Rbft_udp
  | "rbft-concurrent" -> Some Rbft_concurrent
  | "aardvark" -> Some Aardvark
  | "spinning" -> Some Spinning
  | "prime" -> Some Prime
  | _ -> None

let all_protocols =
  [| Rbft; Rbft_udp; Rbft_concurrent; Aardvark; Spinning; Prime |]

type workload = { clients : int; rate : float; payload : int }

type mutation = Ic_quorum_low

let mutation_name = function Ic_quorum_low -> "ic-quorum-low"

let mutation_of_name = function
  | "ic-quorum-low" -> Some Ic_quorum_low
  | _ -> None

type t = {
  name : string;
  protocol : protocol;
  f : int;
  seed : int64;
  duration : Time.t;
  drain : Time.t;
  workload : workload;
  faults : Fault.plan;
  lambda : Time.t;
  mutation : mutation option;
}

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

(* Times are written as integer nanoseconds and floats with 17
   significant digits so that values survive the round trip exactly. *)
let float_atom f = Sexp.Atom (Printf.sprintf "%.17g" f)
let time_atom t = Sexp.Atom (string_of_int (t : Time.t :> int))
let int_atom i = Sexp.Atom (string_of_int i)

let pair name v = Sexp.List [ Sexp.Atom name; v ]

let kind_to_sexp (k : Fault.kind) =
  match k with
  | Fault.Crash { node } -> Sexp.List [ Sexp.Atom "crash"; pair "node" (int_atom node) ]
  | Fault.Partition { group } ->
    Sexp.List
      [ Sexp.Atom "partition"; Sexp.List (Sexp.Atom "group" :: List.map int_atom group) ]
  | Fault.Link_chaos { src; dst; rates } ->
    let endpoint = function None -> Sexp.Atom "*" | Some i -> int_atom i in
    Sexp.List
      [
        Sexp.Atom "link-chaos";
        pair "src" (endpoint src);
        pair "dst" (endpoint dst);
        pair "drop" (float_atom rates.Fault.drop);
        pair "duplicate" (float_atom rates.Fault.duplicate);
        pair "corrupt" (float_atom rates.Fault.corrupt);
        pair "delay-ns" (time_atom rates.Fault.delay);
        pair "jitter-ns" (time_atom rates.Fault.jitter);
      ]
  | Fault.Clock_skew { node; factor } ->
    Sexp.List
      [ Sexp.Atom "clock-skew"; pair "node" (int_atom node); pair "factor" (float_atom factor) ]
  | Fault.Cpu_skew { node; factor } ->
    Sexp.List
      [ Sexp.Atom "cpu-skew"; pair "node" (int_atom node); pair "factor" (float_atom factor) ]

let fault_to_sexp (f : Fault.t) =
  Sexp.List
    [
      Sexp.Atom "fault";
      pair "at-ns" (time_atom f.Fault.at);
      pair "until-ns" (time_atom f.Fault.until);
      kind_to_sexp f.Fault.kind;
    ]

let to_sexp t =
  (* Optional fields are emitted only when non-default, so scenarios
     that do not use them serialize exactly as they did before the
     fields existed (and old files parse: missing means default). *)
  let optional =
    (if t.lambda = Time.zero then []
     else [ pair "lambda-ns" (time_atom t.lambda) ])
    @
    match t.mutation with
    | None -> []
    | Some m -> [ pair "mutation" (Sexp.Atom (mutation_name m)) ]
  in
  Sexp.List
    ([
       Sexp.Atom "scenario";
       pair "name" (Sexp.Atom t.name);
       pair "protocol" (Sexp.Atom (protocol_name t.protocol));
       pair "f" (int_atom t.f);
       pair "seed" (Sexp.Atom (Int64.to_string t.seed));
       pair "duration-ns" (time_atom t.duration);
       pair "drain-ns" (time_atom t.drain);
       Sexp.List
         [
           Sexp.Atom "workload";
           pair "clients" (int_atom t.workload.clients);
           pair "rate" (float_atom t.workload.rate);
           pair "payload" (int_atom t.workload.payload);
         ];
       Sexp.List (Sexp.Atom "faults" :: List.map fault_to_sexp t.faults);
     ]
    @ optional)

let to_string t = Sexp.to_string (to_sexp t) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let get s name ~what =
  match Sexp.field s name with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing (%s ...) in %s" name what)

(* Like [get] but always yields the whole [(name ...)] child — needed
   for containers such as [(faults ...)], where [Sexp.field] would
   unwrap a single payload. *)
let get_node s name ~what =
  match Sexp.field_all s name with
  | [ v ] -> Ok v
  | [] -> Error (Printf.sprintf "missing (%s ...) in %s" name what)
  | _ -> Error (Printf.sprintf "duplicate (%s ...) in %s" name what)

let get_atom s name ~what =
  let* v = get s name ~what in
  Sexp.atom v

let get_int s name ~what =
  let* a = get_atom s name ~what in
  match int_of_string_opt a with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad integer %S for %s" a name)

let get_float s name ~what =
  let* a = get_atom s name ~what in
  match float_of_string_opt a with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "bad float %S for %s" a name)

let get_time s name ~what =
  let* i = get_int s name ~what in
  Ok (Time.ns i)

let endpoint_of_sexp s name =
  let* a = get_atom s name ~what:"link-chaos" in
  if String.equal a "*" then Ok None
  else
    match int_of_string_opt a with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "bad endpoint %S" a)

let kind_of_sexp s =
  match s with
  | Sexp.List (Sexp.Atom "crash" :: _) ->
    let* node = get_int s "node" ~what:"crash" in
    Ok (Fault.Crash { node })
  | Sexp.List (Sexp.Atom "partition" :: _) -> (
    (* [field_all], not [field]: a one-node group [(group 3)] is a
       2-element list that [field] would unwrap to the bare atom. *)
    match Sexp.field_all s "group" with
    | [ Sexp.List (Sexp.Atom "group" :: members) ] ->
      let* group =
        List.fold_left
          (fun acc m ->
            let* acc = acc in
            let* a = Sexp.atom m in
            match int_of_string_opt a with
            | Some i -> Ok (i :: acc)
            | None -> Error (Printf.sprintf "bad group member %S" a))
          (Ok []) members
      in
      Ok (Fault.Partition { group = List.rev group })
    | _ -> Error "partition: missing (group ...)")
  | Sexp.List (Sexp.Atom "link-chaos" :: _) ->
    let* src = endpoint_of_sexp s "src" in
    let* dst = endpoint_of_sexp s "dst" in
    let* drop = get_float s "drop" ~what:"link-chaos" in
    let* duplicate = get_float s "duplicate" ~what:"link-chaos" in
    let* corrupt = get_float s "corrupt" ~what:"link-chaos" in
    let* delay = get_time s "delay-ns" ~what:"link-chaos" in
    let* jitter = get_time s "jitter-ns" ~what:"link-chaos" in
    Ok (Fault.Link_chaos { src; dst; rates = { drop; duplicate; corrupt; delay; jitter } })
  | Sexp.List (Sexp.Atom "clock-skew" :: _) ->
    let* node = get_int s "node" ~what:"clock-skew" in
    let* factor = get_float s "factor" ~what:"clock-skew" in
    Ok (Fault.Clock_skew { node; factor })
  | Sexp.List (Sexp.Atom "cpu-skew" :: _) ->
    let* node = get_int s "node" ~what:"cpu-skew" in
    let* factor = get_float s "factor" ~what:"cpu-skew" in
    Ok (Fault.Cpu_skew { node; factor })
  | _ -> Error "unknown fault kind"

let fault_of_sexp s =
  let* at = get_time s "at-ns" ~what:"fault" in
  let* until = get_time s "until-ns" ~what:"fault" in
  let kind_sexp =
    match s with
    | Sexp.List items ->
      List.find_opt
        (function
          | Sexp.List (Sexp.Atom ("crash" | "partition" | "link-chaos" | "clock-skew" | "cpu-skew") :: _)
            -> true
          | _ -> false)
        items
    | Sexp.Atom _ -> None
  in
  match kind_sexp with
  | None -> Error "fault: missing kind"
  | Some ks ->
    let* kind = kind_of_sexp ks in
    Ok { Fault.at; until; kind }

let of_sexp s =
  match s with
  | Sexp.List (Sexp.Atom "scenario" :: _) ->
    let what = "scenario" in
    let* name = get_atom s "name" ~what in
    let* proto = get_atom s "protocol" ~what in
    let* protocol =
      match protocol_of_name proto with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "unknown protocol %S" proto)
    in
    let* f = get_int s "f" ~what in
    let* seed_a = get_atom s "seed" ~what in
    let* seed =
      match Int64.of_string_opt seed_a with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "bad seed %S" seed_a)
    in
    let* duration = get_time s "duration-ns" ~what in
    let* drain = get_time s "drain-ns" ~what in
    let* w = get_node s "workload" ~what in
    let* clients = get_int w "clients" ~what:"workload" in
    let* rate = get_float w "rate" ~what:"workload" in
    let* payload = get_int w "payload" ~what:"workload" in
    let* faults_sexp = get_node s "faults" ~what in
    let* faults =
      List.fold_left
        (fun acc fs ->
          let* acc = acc in
          let* fault = fault_of_sexp fs in
          Ok (fault :: acc))
        (Ok [])
        (Sexp.field_all faults_sexp "fault")
    in
    (* Optional fields, absent in older scenario files. *)
    let* lambda =
      match Sexp.field s "lambda-ns" with
      | None -> Ok Time.zero
      | Some _ -> get_time s "lambda-ns" ~what
    in
    let* mutation =
      match Sexp.field s "mutation" with
      | None -> Ok None
      | Some _ ->
        let* a = get_atom s "mutation" ~what in
        (match mutation_of_name a with
         | Some m -> Ok (Some m)
         | None -> Error (Printf.sprintf "unknown mutation %S" a))
    in
    Ok
      {
        name;
        protocol;
        f;
        seed;
        duration;
        drain;
        workload = { clients; rate; payload };
        faults = List.rev faults;
        lambda;
        mutation;
      }
  | _ -> Error "expected (scenario ...)"

let of_string src =
  let* s = Sexp.of_string src in
  of_sexp s

let save t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  of_string src
