(** A chaos scenario: everything needed to reproduce one run.

    [(seed, workload, fault plan)] plus the protocol and cluster size
    fully determine a simulation, so a failing exploration can be
    saved to a file and replayed bit-identically (same audit digest)
    later — see {!Runner}.

    The on-disk format is an s-expression; all times are integer
    nanoseconds and floats print with 17 significant digits, so
    [load (save s) = s] exactly (the codec round-trip property tested
    in [test_chaos.ml]). *)

open Dessim

type protocol = Rbft | Rbft_udp | Rbft_concurrent | Aardvark | Spinning | Prime
(** [Rbft_concurrent] is the same RBFT stack in disjoint-partition
    (bftrcc) ordering: each instance orders only its own clients and
    the per-instance streams merge deterministically, so crashing a
    partition owner or cutting a sequencer input exercises the
    stall-driven instance change and the degrade path. *)

val protocol_name : protocol -> string
val protocol_of_name : string -> protocol option
val all_protocols : protocol array

type workload = {
  clients : int;
  rate : float;  (** requests per second per client *)
  payload : int;  (** request payload bytes *)
}

type mutation = Ic_quorum_low
      (** run with a deliberately broken instance-change quorum of 1
          instead of 2f+1 — the model checker's mutation self-test;
          the auditor's [instance-change-quorum] invariant must fire *)

val mutation_name : mutation -> string
val mutation_of_name : string -> mutation option

type t = {
  name : string;
  protocol : protocol;
  f : int;  (** cluster size is 3f+1 *)
  seed : int64;  (** engine seed; also seeds the injector stream *)
  duration : Time.t;  (** chaos phase: workload + faults *)
  drain : Time.t;  (** post-heal settle phase used as the liveness bound *)
  workload : workload;
  faults : Fault.plan;
  lambda : Time.t;
      (** Λ parameter handed to RBFT protocols ([Time.zero] = disabled,
          the default); counterexamples emitted by the model checker
          carry a tight Λ so the instance-change path re-triggers under
          rate-driven replay. Serialized only when non-zero, so
          pre-existing [.scn] files are unaffected. *)
  mutation : mutation option;
      (** protocol mutation to install ([None] = faithful protocol);
          serialized only when set *)
}

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> (t, string) result

val to_string : t -> string
val of_string : string -> (t, string) result

val save : t -> string -> unit
(** Write to a file (the conventional extension is [.scn]). *)

val load : string -> (t, string) result
