(** Randomized scenario exploration.

    Samples scenarios from a {!grammar} — a bounded space of fault
    plans a correct configuration must survive — runs each through the
    {!Runner}, and reports every failure. The grammar is deliberately
    conservative about {e loss} faults: the simulator has no message
    retransmission (the network is a switched LAN, as in the paper),
    so unbounded drop rates or majority partitions would deadlock any
    of the protocols without that being a bug. Sampled plans keep loss
    windows short and rates low, never isolate more than [f] nodes at
    once, never target the initial primary (node 0) with loss, and
    restrict Prime — whose clients send each request to a single
    replica with no retry — to loss-free faults (delay, duplication,
    skew).

    Everything is driven by one seed: sweeping with the same seed and
    count reproduces the same scenarios, and each sampled scenario
    embeds its own derived engine seed, so any failure replays exactly
    from its saved file. *)

open Dessim

type grammar = {
  protocols : Scenario.protocol array;
  f : int;
  duration : Time.t;
  drain : Time.t;
  clients : int;
  rate : float;  (** requests per second per client *)
  payload : int;
  max_faults : int;  (** faults per scenario, >= 1 *)
}

val default_grammar : grammar
(** 4-node clusters across all five protocol flavours, 1 s chaos
    phase, 1.5 s drain, 2 clients at 100 req/s each. *)

val sample : grammar -> Rng.t -> index:int -> Scenario.t
(** Draw one scenario; [index] only names it. *)

type sweep = {
  total : int;
  passed : int;
  failures : Runner.result list;  (** failing runs, in order *)
}

val sweep :
  ?grammar:grammar ->
  ?progress:(Runner.result -> unit) ->
  ?bundle_dir:string ->
  seed:int64 ->
  count:int ->
  unit ->
  sweep
(** Run [count] sampled scenarios; [progress] fires after each. With
    [bundle_dir], every run rides a {!Bftdoctor.Doctor} (see
    {!Runner.run}) and incident bundles land under
    [bundle_dir/<scenario-name>/]. *)
