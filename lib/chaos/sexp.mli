(** Minimal s-expression reader/printer for the scenario file format.

    Self-contained (no external dependency): atoms and lists, with
    double-quoted atoms when they contain whitespace, parentheses,
    quotes or are empty. [;] starts a comment running to end of line.
    The printer and parser round-trip: [of_string (to_string s) = Ok s]
    for every [s]. *)

type t = Atom of string | List of t list

val to_string : t -> string
(** Pretty-printed with two-space indentation; nested lists after the
    head atom go on their own lines. *)

val of_string : string -> (t, string) result
(** Parses exactly one s-expression (surrounding whitespace and
    comments allowed); [Error msg] names the offending position. *)

val atom : t -> (string, string) result
(** [atom s] is the atom's content, or [Error] on a list. *)

val field : t -> string -> t option
(** [field (List [Atom head; ...]) name] finds the first child of the
    form [(name ...)] and returns its payload: the single value for
    [(name v)], or the whole child for longer forms. *)

val field_all : t -> string -> t list
(** All [(name ...)] children's payloads, in order, as whole children. *)
