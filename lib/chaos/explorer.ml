open Dessim

type grammar = {
  protocols : Scenario.protocol array;
  f : int;
  duration : Time.t;
  drain : Time.t;
  clients : int;
  rate : float;
  payload : int;
  max_faults : int;
}

let default_grammar =
  {
    protocols = Scenario.all_protocols;
    f = 1;
    duration = Time.sec 1;
    drain = Time.of_sec_f 1.5;
    clients = 2;
    rate = 100.0;
    payload = 8;
    max_faults = 3;
  }

(* What each protocol flavour can survive within the sweep's liveness
   bound; see the .mli header for the reasoning. *)
type caps = { loss : bool; isolation : bool }

let caps_of = function
  | Scenario.Prime -> { loss = false; isolation = false }
  (* Concurrent ordering survives isolation of a partition owner: the
     stall-driven instance change re-homes its clients and the degrade
     path keeps the merge advancing, all well inside the drain bound. *)
  | Scenario.Rbft | Scenario.Rbft_udp | Scenario.Rbft_concurrent
  | Scenario.Aardvark | Scenario.Spinning ->
    { loss = true; isolation = true }

(* A fault window inside the chaos phase: starts within the first half
   and always expires before the phase ends, leaving the tail of the
   phase plus the drain for recovery. *)
let window g rng =
  let dur = (g.duration : Time.t :> int) in
  let at = Time.ns (dur / 20 + Rng.int rng (dur / 2)) in
  let len = Time.ns (dur / 10 + Rng.int rng (3 * dur / 10)) in
  let until = Time.min (Time.add at len) (Time.mul_f g.duration 0.9) in
  (at, until)

(* Every impairing fault in a scenario targets the same victim node,
   chosen once per scenario. Two different impaired nodes can exceed f
   simultaneous failures (e.g. a partition of one node overlapping
   message loss at another) and stall quorum forever, because the sim
   has no retransmission. The victim is never node 0: it is the
   initial primary of every protocol instance, and a request the
   primary permanently misses would stall without any node being at
   fault. *)
let pick_victim g rng = 1 + Rng.int rng ((3 * g.f) + 1 - 1)

let sample_kind g caps used_isolation ~victim rng =
  let lossy = caps.loss in
  let isolation = caps.isolation && not !used_isolation in
  let choices = ref [] in
  let add c = choices := c :: !choices in
  if isolation then begin
    add `Crash;
    add `Partition
  end;
  if lossy then add `Lossy_link;
  add `Benign_link;
  add `Clock_skew;
  add `Cpu_skew;
  match Rng.pick rng (Array.of_list !choices) with
  | `Crash ->
    used_isolation := true;
    Fault.Crash { node = victim }
  | `Partition ->
    used_isolation := true;
    (* A minority group of f nodes containing the victim, never node 0. *)
    let others =
      Array.init ((3 * g.f) + 1 - 1) (fun i -> i + 1)
      |> Array.to_list
      |> List.filter (fun i -> i <> victim)
      |> Array.of_list
    in
    Rng.shuffle rng others;
    Fault.Partition
      { group = victim :: Array.to_list (Array.sub others 0 (g.f - 1)) }
  | `Lossy_link ->
    (* Confine loss to deliveries at the victim; low rates keep
       quorum-loss probability negligible within the window. *)
    let dst = Some victim in
    Fault.Link_chaos
      {
        src = None;
        dst;
        rates =
          {
            Fault.drop = Rng.float rng 0.02;
            duplicate = Rng.float rng 0.05;
            corrupt = Rng.float rng 0.02;
            delay = Time.us (Rng.int rng 500);
            jitter = Time.us (Rng.int rng 300);
          };
      }
  | `Benign_link ->
    (* Delay and duplication anywhere, including client links. *)
    let endpoint () = if Rng.bool rng then None else Some (Rng.int rng ((3 * g.f) + 1)) in
    Fault.Link_chaos
      {
        src = endpoint ();
        dst = endpoint ();
        rates =
          {
            Fault.drop = 0.0;
            duplicate = Rng.float rng 0.10;
            corrupt = 0.0;
            delay = Time.us (Rng.int rng 1_000);
            jitter = Time.us (Rng.int rng 500);
          };
      }
  | `Clock_skew ->
    Fault.Clock_skew
      { node = Rng.int rng ((3 * g.f) + 1); factor = Rng.uniform_range rng 0.8 1.3 }
  | `Cpu_skew ->
    Fault.Cpu_skew
      { node = Rng.int rng ((3 * g.f) + 1); factor = Rng.uniform_range rng 0.7 1.2 }

let sample g rng ~index =
  let protocol = Rng.pick rng g.protocols in
  let caps = caps_of protocol in
  let nfaults = 1 + Rng.int rng g.max_faults in
  let used_isolation = ref false in
  let victim = pick_victim g rng in
  let faults =
    List.init nfaults (fun _ ->
        let at, until = window g rng in
        { Fault.at; until; kind = sample_kind g caps used_isolation ~victim rng })
  in
  {
    Scenario.name = Printf.sprintf "explore-%04d" index;
    protocol;
    f = g.f;
    seed = Rng.int64 rng;
    duration = g.duration;
    drain = g.drain;
    workload = { Scenario.clients = g.clients; rate = g.rate; payload = g.payload };
    faults;
    lambda = Time.zero;
    mutation = None;
  }

type sweep = { total : int; passed : int; failures : Runner.result list }

let sweep ?(grammar = default_grammar) ?(progress = fun _ -> ()) ?bundle_dir
    ~seed ~count () =
  let rng = Rng.create seed in
  let failures = ref [] in
  let passed = ref 0 in
  for index = 0 to count - 1 do
    let scenario = sample grammar rng ~index in
    (* Each scenario dumps under its own subdirectory so a sweep's
       bundles never collide. *)
    let doctor_dir =
      Option.map
        (fun d -> Filename.concat d scenario.Scenario.name)
        bundle_dir
    in
    let result = Runner.run ?doctor_dir scenario in
    if Runner.ok result then incr passed else failures := result :: !failures;
    progress result
  done;
  { total = count; passed = !passed; failures = List.rev !failures }
