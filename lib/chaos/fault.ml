open Dessim

type link_rates = {
  drop : float;
  duplicate : float;
  corrupt : float;
  delay : Time.t;
  jitter : Time.t;
}

let benign_rates =
  { drop = 0.0; duplicate = 0.0; corrupt = 0.0; delay = Time.zero; jitter = Time.zero }

type kind =
  | Crash of { node : int }
  | Partition of { group : int list }
  | Link_chaos of { src : int option; dst : int option; rates : link_rates }
  | Clock_skew of { node : int; factor : float }
  | Cpu_skew of { node : int; factor : float }

type t = { at : Time.t; until : Time.t; kind : kind }

type plan = t list

let describe f =
  let kind =
    match f.kind with
    | Crash { node } -> Printf.sprintf "crash node %d" node
    | Partition { group } ->
      Printf.sprintf "partition {%s}"
        (String.concat "," (List.map string_of_int group))
    | Link_chaos { src; dst; rates } ->
      let endpoint = function None -> "*" | Some i -> string_of_int i in
      Printf.sprintf
        "link-chaos %s->%s drop=%.3f dup=%.3f corrupt=%.3f delay=%s jitter=%s"
        (endpoint src) (endpoint dst) rates.drop rates.duplicate rates.corrupt
        (Time.to_string rates.delay) (Time.to_string rates.jitter)
    | Clock_skew { node; factor } ->
      Printf.sprintf "clock-skew node %d x%.3f" node factor
    | Cpu_skew { node; factor } ->
      Printf.sprintf "cpu-skew node %d x%.3f" node factor
  in
  Printf.sprintf "[%s, %s) %s" (Time.to_string f.at) (Time.to_string f.until) kind
