(** Client-population model for capacity experiments.

    Where {!Loadshape} replays the paper's small static/dynamic load
    shapes, this module models a {e population}: up to 10^5 simulated
    clients with Zipf-skewed per-client rates, connect/disconnect
    churn that rotates which subset of the population is live, and a
    time profile (steady, diurnal ramp, flash crowd). It is the
    driver behind the [bench --clients] sweep — what O(clients)
    structures cost is only visible when clients is the variable.

    Everything is deterministic: churn decisions come from a
    {!Dessim.Rng} seeded at creation, and time comes from the
    simulation engine, so same-seed runs produce identical schedules. *)

open Dessim

type profile =
  | Steady  (** constant multiplier 1 for the whole run *)
  | Diurnal
      (** half-sine ramp: 0.3× at the edges, 1× at the midpoint —
          a day compressed to the run's duration *)
  | Flash
      (** steady baseline with a flash crowd in the middle tenth:
          every client connects at once and the aggregate rate
          triples *)

val profile_name : profile -> string

type t

val create :
  ?zipf_s:float ->
  ?active:int ->
  ?churn_interval:Time.t ->
  ?churn_fraction:float ->
  ?profile:profile ->
  ?seed:int64 ->
  clients:int ->
  aggregate_rate:float ->
  duration:Time.t ->
  unit ->
  t
(** [clients] is the total population; [active] (default [clients])
    how many are connected at once. Per-client rates are Zipf over
    the active slots with exponent [zipf_s] (default 1.0), scaled so
    they sum to [aggregate_rate]. Every [churn_interval] (default
    [duration / 16]; {!Time.zero} disables churn) the
    [churn_fraction] (default 0.1) longest-connected clients at
    randomly drawn slots disconnect and unseen population members
    take their slots — so the set of clients the cluster has {e ever}
    seen keeps growing even though the live count is flat, which is
    exactly the pressure that exposes unbounded per-client tables. *)

val clients : t -> int
(** Population size — the number of client endpoints to provision. *)

val active : t -> int
val duration : t -> Time.t
val profile : t -> profile

val rates : t -> float array
(** The Zipf rate of each active slot (req/s at multiplier 1),
    heaviest first; sums to the aggregate rate. *)

val offered_total : t -> float
(** Expected requests offered over the whole run (the profile
    multiplier integrated over the duration). *)

val describe : t -> (string * string) list
(** Key/value description for reports and bundle scenarios. *)

val apply : Engine.t -> t -> set_rate:(int -> float -> unit) -> unit
(** Schedule the population against per-client rate knobs: slot
    assignments, churn rotations and profile multipliers are applied
    at each model tick from the engine's virtual clock; after
    [duration] every client is stopped. *)
