open Dessim

type phase = { duration : Time.t; active_clients : int; per_client_rate : float }

type t = phase list

let static ~duration ~clients ~rate =
  [ { duration; active_clients = clients; per_client_rate = rate } ]

let paper_dynamic ?(step = Time.ms 300) ?(spike_clients = 50) ~rate () =
  let level clients = { duration = step; active_clients = clients; per_client_rate = rate } in
  let ramp_up = [ 1; 2; 4; 6; 8; 10 ] in
  let spike = [ spike_clients; spike_clients ] in
  let ramp_down = [ 10; 8; 6; 4; 2; 1 ] in
  List.map level (ramp_up @ spike @ ramp_down)

let total_duration t =
  List.fold_left (fun acc p -> Time.add acc p.duration) Time.zero t

let max_clients t = List.fold_left (fun acc p -> Stdlib.max acc p.active_clients) 0 t

let apply engine t ~set_rate =
  let nclients = max_clients t in
  let start_phase p =
    for c = 0 to nclients - 1 do
      set_rate c (if c < p.active_clients then p.per_client_rate else 0.0)
    done
  in
  let stop_all () =
    for c = 0 to nclients - 1 do
      set_rate c 0.0
    done
  in
  let rec schedule at = function
    | [] -> ignore (Engine.at engine at stop_all)
    | p :: rest ->
      ignore (Engine.at engine at (fun () -> start_phase p));
      schedule (Time.add at p.duration) rest
  in
  schedule (Engine.now engine) t

let offered_total t =
  List.fold_left
    (fun acc p ->
      acc
      +. (float_of_int p.active_clients *. p.per_client_rate
          *. Time.to_sec_f p.duration))
    0.0 t
