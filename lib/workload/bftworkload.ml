(** Workload generation: the paper's static and dynamic open-loop load
    shapes ({!Loadshape}), and the client-population model for
    capacity experiments ({!Population}). *)

module Loadshape = Loadshape
module Population = Population
