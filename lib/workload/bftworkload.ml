(** Workload generation: the paper's static and dynamic open-loop load
    shapes. *)

module Loadshape = Loadshape
