(** Open-loop load shapes (Section VI-A of the paper).

    A shape is a sequence of phases; each phase activates a number of
    clients at a per-client request rate for a duration. The paper
    uses two: a {e static} load saturating the system with a constant
    client population, and a {e dynamic} load that ramps from 1 to 10
    clients, spikes to 50, and ramps back down. *)

open Dessim

type phase = { duration : Time.t; active_clients : int; per_client_rate : float }

type t = phase list

val static : duration:Time.t -> clients:int -> rate:float -> t

val paper_dynamic : ?step:Time.t -> ?spike_clients:int -> rate:float -> unit -> t
(** The Section VI-A dynamic workload: 1 client, ramp up to 10, spike
    to [spike_clients] (default 50), ramp down to 1. [step] is the
    duration of each level (default 300 ms — the paper's experiment
    compressed to simulation scale; ratios are unaffected). *)

val total_duration : t -> Time.t

val max_clients : t -> int
(** Client endpoints a system must provision to play this shape. *)

val apply : Engine.t -> t -> set_rate:(int -> float -> unit) -> unit
(** Schedule the shape: at each phase boundary, clients
    [0 .. active-1] are set to the phase rate and the rest to 0.
    After the last phase all clients are stopped. *)

val offered_total : t -> float
(** Total requests the shape offers over its lifetime (expectation). *)
