open Dessim

type profile = Steady | Diurnal | Flash

let profile_name = function
  | Steady -> "steady"
  | Diurnal -> "diurnal"
  | Flash -> "flash"

type t = {
  clients : int;
  active : int;
  aggregate_rate : float;
  zipf_s : float;
  churn_interval : Time.t;
  churn_fraction : float;
  profile : profile;
  duration : Time.t;
  seed : int64;
  zipf : float array;  (* per-slot rates at multiplier 1, heaviest first *)
}

let create ?(zipf_s = 1.0) ?active ?churn_interval ?(churn_fraction = 0.1)
    ?(profile = Steady) ?(seed = 7L) ~clients ~aggregate_rate ~duration () =
  let clients = Stdlib.max 1 clients in
  let active =
    match active with
    | Some a -> Stdlib.max 1 (Stdlib.min a clients)
    | None -> clients
  in
  let churn_interval =
    match churn_interval with
    | Some i -> i
    | None -> Time.mul_f duration (1.0 /. 16.0)
  in
  (* Zipf weights over the active slots, normalized to the aggregate:
     slot j carries weight (j+1)^-s. *)
  let zipf = Array.init active (fun j -> (float_of_int (j + 1)) ** -.zipf_s) in
  let total = Array.fold_left ( +. ) 0.0 zipf in
  Array.iteri (fun j w -> zipf.(j) <- aggregate_rate *. w /. total) zipf;
  {
    clients;
    active;
    aggregate_rate;
    zipf_s;
    churn_interval;
    churn_fraction;
    profile;
    duration;
    seed;
    zipf;
  }

let clients t = t.clients
let active t = t.active
let duration t = t.duration
let profile t = t.profile
let rates t = Array.copy t.zipf

(* Rate multiplier at fraction [x] in [0, 1] of the run. *)
let multiplier t x =
  match t.profile with
  | Steady -> 1.0
  | Diurnal -> 0.3 +. (0.7 *. sin (Float.pi *. x))
  | Flash -> if x >= 0.45 && x < 0.55 then 3.0 else 1.0

(* During the flash the whole population connects, not just [active]. *)
let flash_on t x = t.profile = Flash && x >= 0.45 && x < 0.55

let avg_multiplier t =
  (* Exact integrals of [multiplier] over [0, 1]. *)
  match t.profile with
  | Steady -> 1.0
  | Diurnal -> 0.3 +. (0.7 *. 2.0 /. Float.pi)
  | Flash -> 1.2

let offered_total t =
  t.aggregate_rate *. Time.to_sec_f t.duration *. avg_multiplier t

let describe t =
  [
    ("population", string_of_int t.clients);
    ("active", string_of_int t.active);
    ("aggregate_rate", Printf.sprintf "%.0f" t.aggregate_rate);
    ("zipf_s", Printf.sprintf "%.2f" t.zipf_s);
    ("churn_interval", Printf.sprintf "%.3fs" (Time.to_sec_f t.churn_interval));
    ("churn_fraction", Printf.sprintf "%.2f" t.churn_fraction);
    ("profile", profile_name t.profile);
    ("duration", Printf.sprintf "%.3fs" (Time.to_sec_f t.duration));
  ]

let apply engine t ~set_rate =
  let rng = Rng.create t.seed in
  let start = Engine.now engine in
  (* slot j -> client id currently connected there *)
  let slot_client = Array.init t.active (fun j -> j) in
  (* Next population member that has never been connected; wraps when
     the whole population has been seen. *)
  let next_fresh = ref (Stdlib.min t.active t.clients) in
  let rates_dirty = ref true in
  let last_mult = ref nan in
  let prev_flash = ref false in
  let apply_rates () =
    let x =
      let d = Time.to_sec_f t.duration in
      if d <= 0.0 then 1.0
      else Time.to_sec_f (Time.sub (Engine.now engine) start) /. d
    in
    let m = multiplier t x in
    let flash = flash_on t x in
    if !rates_dirty || m <> !last_mult || flash <> !prev_flash then begin
      last_mult := m;
      rates_dirty := false;
      Array.iteri (fun j c -> set_rate c (t.zipf.(j) *. m)) slot_client;
      if flash <> !prev_flash then begin
        prev_flash := flash;
        (* Flash edge: connect (or drop) everyone outside the slots at
           the mean active rate. *)
        let extra_rate =
          if flash then m *. t.aggregate_rate /. float_of_int t.active else 0.0
        in
        let in_slots = Array.make t.clients false in
        Array.iter (fun c -> in_slots.(c) <- true) slot_client;
        for c = 0 to t.clients - 1 do
          if not in_slots.(c) then set_rate c extra_rate
        done
      end
    end
  in
  let churn () =
    if t.churn_interval > Time.zero && t.churn_fraction > 0.0
       && t.clients > t.active
    then begin
      let k =
        Stdlib.max 1
          (int_of_float (t.churn_fraction *. float_of_int t.active))
      in
      for _ = 1 to k do
        let j = Rng.int rng t.active in
        set_rate slot_client.(j) 0.0;
        slot_client.(j) <- !next_fresh;
        next_fresh := (!next_fresh + 1) mod t.clients
      done;
      rates_dirty := true
    end
  in
  (* Model tick: fine enough to trace the diurnal curve and catch the
     flash edges; churn runs on its own (usually coarser) period. *)
  let tick_period =
    let candidate = Time.mul_f t.duration (1.0 /. 64.0) in
    if candidate > Time.zero then candidate else Time.ms 1
  in
  let stop_at = Time.add start t.duration in
  let rec tick () =
    if Engine.now engine >= stop_at then
      for c = 0 to t.clients - 1 do
        set_rate c 0.0
      done
    else begin
      apply_rates ();
      ignore (Engine.at engine (Time.add (Engine.now engine) tick_period) tick)
    end
  in
  let rec churn_tick () =
    if t.churn_interval > Time.zero && Engine.now engine < stop_at then begin
      churn ();
      ignore
        (Engine.at engine (Time.add (Engine.now engine) t.churn_interval)
           churn_tick)
    end
  in
  ignore (Engine.at engine start tick);
  if t.churn_interval > Time.zero then
    ignore
      (Engine.at engine (Time.add start t.churn_interval) churn_tick)
