(** Discrete-event simulation substrate.

    Re-exports the engine building blocks so that downstream code can
    refer to [Dessim.Engine], [Dessim.Time], etc. *)

module Time = Time
module Rng = Rng
module Heap = Heap
module Engine = Engine
module Resource = Resource
module Clock = Clock
module Trace = Trace
