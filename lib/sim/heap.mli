(** Binary min-heap keyed by [(time, sequence)].

    The sequence number breaks ties between events scheduled for the
    same instant, guaranteeing FIFO order among simultaneous events and
    therefore a fully deterministic simulation. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** [push h ~key ~seq v] inserts [v] with priority [(key, seq)]. *)

val pop : 'a t -> (int * int * 'a) option
(** [pop h] removes and returns the minimum element, or [None] when the
    heap is empty. The vacated slot in the backing array is overwritten
    so the heap keeps no reference to the popped value. *)

val peek_key : 'a t -> int option
(** [peek_key h] is the smallest key without removing it. *)

val clear : 'a t -> unit
(** [clear h] empties the heap and drops every value reference held by
    the backing array. *)
