(** Binary min-heap keyed by [(time, sequence)].

    The sequence number breaks ties between events scheduled for the
    same instant, guaranteeing FIFO order among simultaneous events and
    therefore a fully deterministic simulation.

    Precisely: entries are ordered by the strict total order
    [(key, seq) <lex (key', seq')], and the engine assigns [seq] from a
    monotonic counter, so equal-instant events pop in exactly the order
    they were pushed. This totality is load-bearing for the model
    checker ({!Bftmc}): replaying a prefix of scheduling decisions must
    reconstruct the very same simulator state, which it only does if
    the heap never has freedom in which of two simultaneous events to
    surface first. The order is property-tested (random same-key
    pushes pop in push order) and pinned by a replay-digest regression
    test in [test_sim.ml]. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val capacity : 'a t -> int
(** Allocated slots in the backing array ([>= size]); what the event
    queue actually costs in memory, for capacity probes. *)

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** [push h ~key ~seq v] inserts [v] with priority [(key, seq)]. *)

val pop : 'a t -> (int * int * 'a) option
(** [pop h] removes and returns the minimum element, or [None] when the
    heap is empty. The vacated slot in the backing array is overwritten
    so the heap keeps no reference to the popped value. *)

val peek_key : 'a t -> int option
(** [peek_key h] is the smallest key without removing it. *)

val clear : 'a t -> unit
(** [clear h] empties the heap and drops every value reference held by
    the backing array. *)
