type job = { cost : Time.t; span : int; k : unit -> unit }

(* Observability hook: called when a job tagged with a span id (>= 0)
   is dequeued, with the virtual instants it occupies the server. At
   most one hook; the span tracer installs it. Kept global so hot
   submit paths pay only an integer compare when tracing is off. *)
let span_hook : (int -> start:Time.t -> finish:Time.t -> unit) option ref =
  ref None

let set_span_hook h = span_hook := h

type t = {
  engine : Engine.t;
  name : string;
  queue : job Queue.t;
  mutable running : bool;
  mutable busy_until : Time.t;
  mutable busy_total : Time.t;
  mutable jobs : int;
  mutable speed : float;
  mutable queued_cost : Time.t;
      (* running sum of [job.cost] over [queue], so [backlog] is O(1)
         on the adaptive batcher's per-flush polling path *)
}

let create engine ~name =
  {
    engine;
    name;
    queue = Queue.create ();
    running = false;
    busy_until = Time.zero;
    busy_total = Time.zero;
    jobs = 0;
    speed = 1.0;
    queued_cost = Time.zero;
  }

let name t = t.name

let speed t = t.speed
let set_speed t s = t.speed <- (if s <= 0.0 then 1e-6 else s)

(* Scale a nominal cost by the current speed factor; jobs already
   started keep the scaling in force when they were dequeued. *)
let scaled t cost = if t.speed = 1.0 then cost else Time.mul_f cost (1.0 /. t.speed)

(* Only the job at the head of the queue has a scheduled completion
   event. This lets a running handler [charge] extra time and push back
   everything queued behind it. *)
let rec start_next t =
  match Queue.take_opt t.queue with
  | None -> t.running <- false
  | Some job ->
    t.queued_cost <- Time.max Time.zero (Time.sub t.queued_cost job.cost);
    t.running <- true;
    let cost = scaled t job.cost in
    let start = Time.max (Engine.now t.engine) t.busy_until in
    let finish = Time.add start cost in
    t.busy_until <- finish;
    t.busy_total <- Time.add t.busy_total cost;
    t.jobs <- t.jobs + 1;
    (if job.span >= 0 then
       match !span_hook with
       | Some h -> h job.span ~start ~finish
       | None -> ());
    ignore
      (Engine.at t.engine finish (fun () ->
           job.k ();
           start_next t))

let submit ?(span = -1) t ~cost k =
  Queue.add { cost; span; k } t.queue;
  t.queued_cost <- Time.add t.queued_cost cost;
  if not t.running then start_next t

let charge t extra =
  let extra = scaled t (Time.max Time.zero extra) in
  let base = Time.max (Engine.now t.engine) t.busy_until in
  t.busy_until <- Time.add base extra;
  t.busy_total <- Time.add t.busy_total extra

let busy_until t = t.busy_until

let backlog t =
  let now = Engine.now t.engine in
  Time.add (Time.max Time.zero (Time.sub t.busy_until now)) t.queued_cost

(* O(n) reference implementation of [backlog]; the property test pins
   the incremental [queued_cost] sum to this fold. *)
let backlog_fold t =
  let queued = Queue.fold (fun acc job -> Time.add acc job.cost) Time.zero t.queue in
  let now = Engine.now t.engine in
  Time.add (Time.max Time.zero (Time.sub t.busy_until now)) queued

let depth t = Queue.length t.queue

let busy_total t = t.busy_total
let jobs_served t = t.jobs
