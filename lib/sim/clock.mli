(** A skewable per-component virtual clock.

    Wraps an {!Engine} so that relative delays scheduled through the
    clock are stretched (factor > 1, the component's oscillator runs
    slow and its timers fire late) or compressed (factor < 1, fast
    clock) by a mutable factor. Absolute engine time is unaffected —
    only the durations a component *asks* for are rescaled, which is
    how clock drift manifests to timer-driven code.

    Each protocol node owns one clock and routes its periodic loops
    (monitoring, pings, batch timers) through it; the chaos engine
    perturbs the factor at scheduled fault times. *)

type t

val create : Engine.t -> t
(** A fresh clock with factor 1.0 (no skew). *)

val engine : t -> Engine.t

val factor : t -> float

val set_factor : t -> float -> unit
(** [set_factor t k] rescales all subsequent delays by [k]. Values
    [<= 0] are clamped to a small positive epsilon. Timers already
    armed keep their original deadline. *)

val after : t -> Time.t -> (unit -> unit) -> Engine.timer
(** [after t d f] is [Engine.after engine (d * factor) f]. *)
