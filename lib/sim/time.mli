(** Virtual time for the discrete-event simulator.

    Time is an integer number of nanoseconds since the start of the
    simulation. Using integers keeps the simulation deterministic: two
    runs with the same seed produce exactly the same event order. *)

type t = int
(** Nanoseconds. The OCaml native [int] gives 62 bits, i.e. ~146 years
    of simulated time, far beyond any experiment in this repository. *)

val zero : t

val ns : int -> t
(** [ns x] is [x] nanoseconds. *)

val us : int -> t
(** [us x] is [x] microseconds. *)

val ms : int -> t
(** [ms x] is [x] milliseconds. *)

val sec : int -> t
(** [sec x] is [x] seconds. *)

val of_sec_f : float -> t
(** [of_sec_f s] converts [s] seconds (possibly fractional) to virtual
    time, rounding to the nearest nanosecond. *)

val of_us_f : float -> t
(** [of_us_f u] converts [u] microseconds to virtual time. *)

val to_sec_f : t -> float
(** [to_sec_f t] is [t] expressed in seconds. *)

val to_ms_f : t -> float
(** [to_ms_f t] is [t] expressed in milliseconds. *)

val to_us_f : t -> float
(** [to_us_f t] is [t] expressed in microseconds. *)

val add : t -> t -> t
val sub : t -> t -> t
val max : t -> t -> t
val min : t -> t -> t

val mul_f : t -> float -> t
(** [mul_f t k] scales a duration by a float factor, rounding. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)

val to_string : t -> string
