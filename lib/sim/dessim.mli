(** Discrete-event simulation substrate.

    Re-exports the engine building blocks so that downstream code can
    refer to [Dessim.Engine], [Dessim.Time], etc. — the single import
    surface every other library in the repo builds on. *)

module Time = Time
(** Virtual time as integer nanoseconds, with unit constructors and
    float conversions. *)

module Rng = Rng
(** Deterministic splittable random streams; all simulation randomness
    derives from the engine seed. *)

module Heap = Heap
(** The binary min-heap behind the event queue, keyed by
    [(time, sequence)] — a strict total order, so simultaneous events
    pop in push order and replays are bit-identical. *)

module Engine = Engine
(** The event loop: a virtual clock, the event queue, and the
    choice-event seam the model checker schedules through. *)

module Resource = Resource
(** Serially-executing job queues modelling CPU cores and NICs; jobs
    carry virtual costs and complete through engine events. *)

module Clock = Clock
(** Skewable wrapper over {!Engine.after} for local periodic timers;
    the chaos engine stretches it to model clock drift. *)

module Trace = Trace
(** Legacy free-form string tracing, bridged onto the structured
    {!Bftaudit.Bus} while any sink is live. *)
