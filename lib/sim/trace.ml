type level = Debug | Info | Warn

let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

type event = { time : Time.t; level : level; component : string; message : string }

let sink : (event -> unit) option ref = ref None

let set_sink s = sink := s

(* Secondary tap for the structured event bus (lib/audit installs it
   while subscribers exist), so legacy string traces surface there
   without this bottom-layer library depending on bftaudit. *)
let forward : (event -> unit) option ref = ref None

let set_forward f = forward := f

let dispatch e =
  (match !sink with None -> () | Some s -> s e);
  match !forward with None -> () | Some f -> f e

let emit engine level ~component message =
  if !sink != None || !forward != None then
    dispatch { time = Engine.now engine; level; component; message }

let emitf engine level ~component fmt =
  Printf.ksprintf (emit engine level ~component) fmt

let pp_event fmt e =
  Format.fprintf fmt "[%a] %-5s %-16s %s" Time.pp e.time (level_name e.level)
    e.component e.message

module Ring = struct
  type t = { capacity : int; buffer : event option array; mutable next : int; mutable count : int }

  let create ?(capacity = 4096) () =
    { capacity; buffer = Array.make capacity None; next = 0; count = 0 }

  let sink t event =
    t.buffer.(t.next) <- Some event;
    t.next <- (t.next + 1) mod t.capacity;
    t.count <- Stdlib.min (t.count + 1) t.capacity

  let events t =
    let start = if t.count < t.capacity then 0 else t.next in
    List.init t.count (fun i ->
        match t.buffer.((start + i) mod t.capacity) with
        | Some e -> e
        | None -> assert false)

  let pp_event = pp_event
end

let console_sink e = Format.printf "%a@." pp_event e
