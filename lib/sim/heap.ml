type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let size h = h.size
let capacity h = Array.length h.data

let is_empty h = h.size = 0

(* Strict total order on entries: primary key first, then the
   insertion sequence number. Callers (the engine) assign [seq] from a
   monotonic counter, so no two live entries ever compare equal — two
   events scheduled for the same instant always pop in insertion
   order, which is what makes replays bit-identical even under heavy
   timestamp ties (property-tested in test_sim.ml). *)
let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

(* A single shared placeholder written into vacated slots so popped
   values do not stay reachable from the backing array. Its [value]
   field is an immediate integer, so the unsafe cast is invisible to the
   GC, and [size] guards every read, so the placeholder is never
   observed as an ['a entry]. *)
let dummy_obj : Obj.t entry = { key = min_int; seq = min_int; value = Obj.repr 0 }
let dummy () : 'a entry = Obj.magic dummy_obj

let grow h =
  let cap = Array.length h.data in
  let new_cap = if cap = 0 then 64 else cap * 2 in
  let data = Array.make new_cap (dummy ()) in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let push h ~key ~seq value =
  let entry = { key; seq; value } in
  if h.size = 0 && Array.length h.data = 0 then
    h.data <- Array.make 64 (dummy ());
  if h.size = Array.length h.data then grow h;
  let i = ref h.size in
  h.size <- h.size + 1;
  h.data.(!i) <- entry;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less h.data.(!i) h.data.(parent) then begin
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let root = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- dummy ();
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
        let smallest = ref !i in
        if left < h.size && less h.data.(left) h.data.(!smallest) then
          smallest := left;
        if right < h.size && less h.data.(right) h.data.(!smallest) then
          smallest := right;
        if !smallest <> !i then begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end
    else h.data.(0) <- dummy ();
    Some (root.key, root.seq, root.value)
  end

let peek_key h = if h.size = 0 then None else Some h.data.(0).key

let clear h =
  Array.fill h.data 0 h.size (dummy ());
  h.size <- 0
