(** The discrete-event simulation engine.

    An engine owns a virtual clock and an event queue. Components
    schedule closures to run at future virtual instants; [run] drains
    the queue in deterministic time order. This substrate plays the
    role of the physical cluster in the paper's evaluation. *)

type t

type timer
(** A handle on a scheduled event, used for cancellation. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes an engine whose clock starts at
    {!Time.zero}. All randomness in a simulation derives from [seed]
    (default [1L]). *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root random stream; components should {!Rng.split} it
    rather than drawing from it directly. *)

val fresh_rng : t -> Rng.t
(** [fresh_rng t] is a convenience for [Rng.split (rng t)]. *)

val after : t -> Time.t -> (unit -> unit) -> timer
(** [after t delay f] schedules [f] to run [delay] after [now]. A
    negative delay is clamped to zero. *)

val at : t -> Time.t -> (unit -> unit) -> timer
(** [at t instant f] schedules [f] at absolute virtual time [instant];
    instants in the past run "now" (still in deterministic order). *)

val cancel : timer -> unit
(** [cancel timer] prevents a pending event from running. Cancelling an
    already-fired or already-cancelled timer is a no-op. *)

val pending : timer -> bool
(** [pending timer] is [true] when the event has not yet fired nor been
    cancelled. *)

val run : ?until:Time.t -> t -> unit
(** [run ?until t] processes events in time order. With [until], stops
    once the clock would pass that instant (the clock is left at
    [until]); otherwise runs until the queue is empty or {!stop} is
    called. *)

val stop : t -> unit
(** Request [run] to return after the current event. *)

(** {1 Choice events — the model-checker scheduler seam}

    A {e choice} event is one whose firing order is a genuine
    scheduling decision (in practice: a message delivery to a node).
    By default choice events behave exactly like {!at} events and cost
    one extra branch. With capture enabled ({!set_choice_capture}),
    they are {e parked} instead of entering the heap: an external
    scheduler — the {!Bftmc} explorer — inspects {!pending_choices}
    and decides which to fire next with {!fire_choice}, exploring
    delivery orders the timestamp order would never produce. *)

type choice = {
  id : int;
      (** creation order; unique and monotonically increasing, so a
          choice with a smaller id was already pending when a larger
          one was created — the fact the partial-order reduction
          relies on *)
  key : Time.t;  (** nominal arrival instant under timestamp order *)
  src : int;  (** sending principal (node id, or [-(c+1)] for client c) *)
  dst : int;  (** receiving node id *)
  label : string;  (** content-based description, for state fingerprints *)
}

val set_choice_capture : t -> bool -> unit
(** Toggle capture mode. Off (the default), {!at_choice} degrades to
    {!at} and the engine behaves exactly as before this seam existed. *)

val choice_capture : t -> bool

val at_choice :
  t -> Time.t -> src:int -> dst:int -> label:string -> (unit -> unit) -> timer
(** Like {!at}, but marks the event as a scheduling choice. With
    capture off this {e is} {!at}. With capture on the event is parked
    until {!fire_choice} or {!release_choices}; [cancel] still works. *)

val pending_choices : t -> choice list
(** Parked, uncancelled choices in creation (id) order. *)

val pending_choice_count : t -> int

val choices_created : t -> int
(** Total choices ever created on this engine (the id high-water mark). *)

val fire_choice : t -> int -> bool
(** [fire_choice t id] runs the parked choice with that id now, at the
    {e current} clock — deliberately not advancing to [key]: under
    checker control virtual time advances only through [run ~until]
    slices, which keeps states reached by commuted independent
    deliveries bit-identical. Returns [false] if no such choice is
    parked. *)

val release_choices : t -> unit
(** Push every parked choice back into the heap (at [max key now], in
    id order) so a subsequent [run] drains them under normal timestamp
    order — how the checker ends a schedule prefix deterministically. *)

val events_processed : t -> int
(** Total number of events executed so far; a cheap progress and
    cost metric for the simulation itself. *)

val queue_size : t -> int

val queue_capacity : t -> int
(** Allocated slots in the event-queue backing array ([>= queue_size]);
    the heap's real memory footprint for capacity probes. *)
