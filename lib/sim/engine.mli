(** The discrete-event simulation engine.

    An engine owns a virtual clock and an event queue. Components
    schedule closures to run at future virtual instants; [run] drains
    the queue in deterministic time order. This substrate plays the
    role of the physical cluster in the paper's evaluation. *)

type t

type timer
(** A handle on a scheduled event, used for cancellation. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes an engine whose clock starts at
    {!Time.zero}. All randomness in a simulation derives from [seed]
    (default [1L]). *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root random stream; components should {!Rng.split} it
    rather than drawing from it directly. *)

val fresh_rng : t -> Rng.t
(** [fresh_rng t] is a convenience for [Rng.split (rng t)]. *)

val after : t -> Time.t -> (unit -> unit) -> timer
(** [after t delay f] schedules [f] to run [delay] after [now]. A
    negative delay is clamped to zero. *)

val at : t -> Time.t -> (unit -> unit) -> timer
(** [at t instant f] schedules [f] at absolute virtual time [instant];
    instants in the past run "now" (still in deterministic order). *)

val cancel : timer -> unit
(** [cancel timer] prevents a pending event from running. Cancelling an
    already-fired or already-cancelled timer is a no-op. *)

val pending : timer -> bool
(** [pending timer] is [true] when the event has not yet fired nor been
    cancelled. *)

val run : ?until:Time.t -> t -> unit
(** [run ?until t] processes events in time order. With [until], stops
    once the clock would pass that instant (the clock is left at
    [until]); otherwise runs until the queue is empty or {!stop} is
    called. *)

val stop : t -> unit
(** Request [run] to return after the current event. *)

val events_processed : t -> int
(** Total number of events executed so far; a cheap progress and
    cost metric for the simulation itself. *)

val queue_size : t -> int
