(* SplitMix64: fast, high-quality 64-bit generator with cheap stream
   splitting. Reference: Steele, Lea, Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = mix64 seed }

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  (* 53 random bits mapped to [0, 1), then scaled. *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let uniform_range t lo hi = lo +. float t (hi -. lo)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = ref (int64 t) in
    let k = Stdlib.min 8 (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set b (!i + j) (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
      v := Int64.shift_right_logical !v 8
    done;
    i := !i + k
  done;
  b
