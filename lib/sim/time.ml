type t = int

let zero = 0
let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000
let of_sec_f s = int_of_float (Float.round (s *. 1e9))
let of_us_f u = int_of_float (Float.round (u *. 1e3))
let to_sec_f t = float_of_int t /. 1e9
let to_ms_f t = float_of_int t /. 1e6
let to_us_f t = float_of_int t /. 1e3
let add = ( + )
let sub = ( - )
let max = Stdlib.max
let min = Stdlib.min
let mul_f t k = int_of_float (Float.round (float_of_int t *. k))

let pp fmt t =
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2fus" (to_us_f t)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.2fms" (to_ms_f t)
  else Format.fprintf fmt "%.3fs" (to_sec_f t)

let to_string t = Format.asprintf "%a" pp t
