type event = { action : unit -> unit; mutable cancelled : bool }

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  queue : event Heap.t;
  root_rng : Rng.t;
  mutable stopped : bool;
  mutable processed : int;
}

type timer = event

let create ?(seed = 1L) () =
  {
    clock = Time.zero;
    seq = 0;
    queue = Heap.create ();
    root_rng = Rng.create seed;
    stopped = false;
    processed = 0;
  }

let now t = t.clock
let rng t = t.root_rng
let fresh_rng t = Rng.split t.root_rng

let at t instant action =
  let instant = Time.max instant t.clock in
  let event = { action; cancelled = false } in
  t.seq <- t.seq + 1;
  Heap.push t.queue ~key:instant ~seq:t.seq event;
  event

let after t delay action = at t (Time.add t.clock (Time.max Time.zero delay)) action

let cancel event = event.cancelled <- true

let pending event = not event.cancelled

let run ?until t =
  t.stopped <- false;
  let continue = ref true in
  while !continue && not t.stopped do
    match Heap.peek_key t.queue with
    | None -> continue := false
    | Some key ->
      let past_horizon =
        match until with None -> false | Some horizon -> key > horizon
      in
      if past_horizon then continue := false
      else begin
        match Heap.pop t.queue with
        | None -> continue := false
        | Some (key, _, event) ->
          t.clock <- key;
          if not event.cancelled then begin
            t.processed <- t.processed + 1;
            event.cancelled <- true;
            event.action ()
          end
      end
  done;
  match until with
  | Some horizon when not t.stopped -> t.clock <- Time.max t.clock horizon
  | Some _ | None -> ()

let stop t = t.stopped <- true
let events_processed t = t.processed
let queue_size t = Heap.size t.queue
