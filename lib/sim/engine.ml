type event = { action : unit -> unit; mutable cancelled : bool }

type choice = {
  id : int;  (* creation order; unique, monotonically increasing *)
  key : Time.t;  (* nominal arrival instant under timestamp order *)
  src : int;
  dst : int;
  label : string;
}

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  queue : event Heap.t;
  root_rng : Rng.t;
  mutable stopped : bool;
  mutable processed : int;
  (* Model-checker seam: while [capture] is set, events scheduled
     through [at_choice] are parked here instead of entering the heap,
     and an external scheduler decides their firing order. *)
  mutable capture : bool;
  mutable choice_seq : int;
  parked : (int, choice * event) Hashtbl.t;
}

type timer = event

let create ?(seed = 1L) () =
  {
    clock = Time.zero;
    seq = 0;
    queue = Heap.create ();
    root_rng = Rng.create seed;
    stopped = false;
    processed = 0;
    capture = false;
    choice_seq = 0;
    parked = Hashtbl.create 64;
  }

let now t = t.clock
let rng t = t.root_rng
let fresh_rng t = Rng.split t.root_rng

let at t instant action =
  let instant = Time.max instant t.clock in
  let event = { action; cancelled = false } in
  t.seq <- t.seq + 1;
  Heap.push t.queue ~key:instant ~seq:t.seq event;
  event

let after t delay action = at t (Time.add t.clock (Time.max Time.zero delay)) action

let cancel event = event.cancelled <- true

let pending event = not event.cancelled

(* ------------------------------------------------------------------ *)
(* Choice events (the model-checker scheduler seam)                    *)
(* ------------------------------------------------------------------ *)

let set_choice_capture t on = t.capture <- on
let choice_capture t = t.capture

let at_choice t instant ~src ~dst ~label action =
  if not t.capture then at t instant action
  else begin
    let instant = Time.max instant t.clock in
    let event = { action; cancelled = false } in
    t.choice_seq <- t.choice_seq + 1;
    let c = { id = t.choice_seq; key = instant; src; dst; label } in
    Hashtbl.replace t.parked c.id (c, event);
    event
  end

let pending_choices t =
  Hashtbl.fold
    (fun _ (c, (event : event)) acc ->
      if event.cancelled then acc else c :: acc)
    t.parked []
  |> List.sort (fun a b -> compare a.id b.id)

let pending_choice_count t =
  Hashtbl.fold
    (fun _ ((_ : choice), (event : event)) n ->
      if event.cancelled then n else n + 1)
    t.parked 0
let choices_created t = t.choice_seq

(* Deliberately leaves the clock alone: the checker's schedule replaces
   timestamp order, and keeping the clock purely slice-driven makes
   states reached by commuted independent deliveries bit-identical. *)
let fire_choice t id =
  match Hashtbl.find_opt t.parked id with
  | None -> false
  | Some (_, event) ->
    Hashtbl.remove t.parked id;
    if not event.cancelled then begin
      t.processed <- t.processed + 1;
      event.cancelled <- true;
      event.action ()
    end;
    true

let release_choices t =
  let parked = Hashtbl.fold (fun _ ce acc -> ce :: acc) t.parked [] in
  Hashtbl.reset t.parked;
  List.sort (fun ((a : choice), _) (b, _) -> compare a.id b.id) parked
  |> List.iter (fun (c, event) ->
         t.seq <- t.seq + 1;
         Heap.push t.queue ~key:(Time.max c.key t.clock) ~seq:t.seq event)

let run ?until t =
  t.stopped <- false;
  let continue = ref true in
  while !continue && not t.stopped do
    match Heap.peek_key t.queue with
    | None -> continue := false
    | Some key ->
      let past_horizon =
        match until with None -> false | Some horizon -> key > horizon
      in
      if past_horizon then continue := false
      else begin
        match Heap.pop t.queue with
        | None -> continue := false
        | Some (key, _, event) ->
          t.clock <- key;
          if not event.cancelled then begin
            t.processed <- t.processed + 1;
            event.cancelled <- true;
            event.action ()
          end
      end
  done;
  match until with
  | Some horizon when not t.stopped -> t.clock <- Time.max t.clock horizon
  | Some _ | None -> ()

let stop t = t.stopped <- true
let events_processed t = t.processed
let queue_size t = Heap.size t.queue
let queue_capacity t = Heap.capacity t.queue
