(** A single-server FIFO resource.

    Models anything that serves work sequentially at a known cost: a
    CPU thread pinned to a core (the paper's Verification, Propagation,
    Dispatch & Monitoring and Execution modules), a replica process, or
    the serialization stage of a NIC.

    Jobs submitted to a resource complete in submission order; each job
    occupies the server for its [cost] of virtual time. A job may
    {!charge} extra time while it runs (e.g. a handler that generates
    MACs for the messages it sends), pushing back every job queued
    behind it. *)

type t

val create : Engine.t -> name:string -> t

val name : t -> string

val speed : t -> float

val set_speed : t -> float -> unit
(** [set_speed t s] makes the server run at [s] times its nominal
    speed: every cost accepted afterwards (including {!charge}) is
    scaled by [1/s]. Defaults to 1.0; values [<= 0] are clamped to a
    small positive epsilon. The chaos engine uses this to model CPU
    skew on a faulty or overloaded machine. Jobs already started keep
    the scaling in force when they were dequeued. *)

val submit : ?span:int -> t -> cost:Time.t -> (unit -> unit) -> unit
(** [submit t ~cost f] enqueues a job. [f] runs when the job
    completes, i.e. at [max now (end of previous job) + cost].

    [?span] (default [-1], meaning "untraced") tags the job with a span
    id for the tracer hook below; the resource itself only stores and
    forwards the integer. *)

val set_span_hook : (int -> start:Time.t -> finish:Time.t -> unit) option -> unit
(** Installs (or clears) the global job-start observability hook. When
    a job submitted with [~span:id] ([id >= 0]) is dequeued, the hook
    receives [id] plus the virtual interval the job occupies the
    server, after speed scaling. Untagged jobs never touch the hook, so
    the traced-off overhead is one integer compare per job. *)

val charge : t -> Time.t -> unit
(** [charge t extra] extends the busy period of the job currently at
    the head of the resource. Intended to be called from within a job's
    completion handler to account for work performed by the handler
    itself. *)

val busy_until : t -> Time.t
(** The virtual instant at which the resource becomes idle given the
    work accepted so far. *)

val backlog : t -> Time.t
(** [backlog t] is [max 0 (busy_until - now)] plus the total cost of
    jobs still queued: how far behind the resource currently is. Used
    by adversaries, load probes and the adaptive batcher — O(1) via a
    running sum maintained on enqueue/dequeue. *)

val backlog_fold : t -> Time.t
(** O(n) reference implementation of {!backlog} that folds over the
    queue; exists so a property test can pin the incremental sum to
    the fold. Not for hot paths. *)

val depth : t -> int
(** Number of jobs waiting in the queue (excluding the one in
    service). The queue-depth gauge and the adaptive batcher's probes
    read this. *)

val busy_total : t -> Time.t
(** Cumulative virtual time spent serving jobs; divide by elapsed time
    for utilization. *)

val jobs_served : t -> int
