(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the simulation draws from its own
    [Rng.t] stream obtained by {!split}, so adding a component never
    perturbs the random choices of the others. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val split : t -> t
(** [split t] derives an independent stream from [t], advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution; used
    for Poisson inter-arrival times in open-loop clients. *)

val uniform_range : t -> float -> float -> float
(** [uniform_range t lo hi] is uniform in [\[lo, hi)]. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly random element. Requires a non-empty
    array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] pseudo-random bytes. *)
