(** Lightweight event tracing for simulations.

    Components emit timestamped, categorised events; a sink (installed
    per run) receives them. The default sink drops everything with
    negligible cost, so instrumentation can stay in protocol code.
    The CLI's [--trace] flag and some tests install sinks; the ring
    buffer sink is convenient for post-mortem inspection. *)

type level = Debug | Info | Warn

val level_name : level -> string

type event = { time : Time.t; level : level; component : string; message : string }

val set_sink : (event -> unit) option -> unit
(** Install (or clear) the global sink. *)

val set_forward : (event -> unit) option -> unit
(** Install (or clear) a secondary tap that observes every event in
    addition to the sink. The structured event bus ([Bftaudit.Bus])
    installs this while it has subscribers, turning legacy string
    traces into structured [Log] events. *)

val emit : Engine.t -> level -> component:string -> string -> unit
(** [emit engine level ~component msg] sends an event to the sink, if
    any, stamped with the engine's current virtual time. *)

val emitf :
  Engine.t -> level -> component:string -> ('a, unit, string, unit) format4 -> 'a
(** Printf-style {!emit}. *)

val pp_event : Format.formatter -> event -> unit
(** One-line human-readable rendering. *)

module Ring : sig
  (** A bounded in-memory sink keeping the most recent events. *)

  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 4096 events. *)

  val sink : t -> event -> unit
  val events : t -> event list
  (** Oldest first. *)

  val pp_event : Format.formatter -> event -> unit
end

val console_sink : event -> unit
(** Print each event to stdout (the CLI's [--trace] output). *)
