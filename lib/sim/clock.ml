type t = { engine : Engine.t; mutable factor : float }

let create engine = { engine; factor = 1.0 }
let engine t = t.engine
let factor t = t.factor

let set_factor t k = t.factor <- (if k <= 0.0 then 1e-6 else k)

let after t d f =
  let d = if t.factor = 1.0 then d else Time.mul_f d t.factor in
  Engine.after t.engine d f
