(** Incident forensics: reconstruct the timeline of a bundle,
    attribute the cause, and export human / JSON / Chrome views.

    Attribution is evidence-scored, protocol-aware but bundle-local —
    everything below reads only what the bundle contains:

    - {e flooding}: [nic-closed] events name the peer whose junk
      crossed the flood threshold, and [net-dropped]/[blacklisted]
      corroborate; the peer with the most closures is the culprit
      (this is the worst1 signature);
    - {e master under-performance}: [monitor-verdict] events with
      [suspicious] plus an [instance-changed] event identify the
      demoted master instance; the culprit node is that instance's
      primary (recorded in the bundle config at attach time);
    - {e stall / SLO}: the span rings' critical-path breakdown names
      the dominant stage; per-channel message/byte/drop deltas between
      the first and last metrics snapshots localise network-side
      causes. *)

open Dessim

type verdict = {
  cause : string;  (** one-line classification *)
  culprit_node : int option;
  culprit_instance : int option;
  confidence : string;  (** "high" | "medium" | "low" *)
  evidence : string list;
}

(* --- evidence extraction ------------------------------------------- *)

let count_by f events =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match f ev with
      | Some key ->
        Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | None -> ())
    events;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) -> if a <> b then compare b a else compare ka kb)

let nic_closures (l : Bundle.loaded) =
  count_by
    (fun (e : Bundle.ev) ->
      if e.Bundle.e_kind = "nic-closed" then Jmini.get_int "peer" e.Bundle.e_args
      else None)
    l.Bundle.l_events

let suspicious_verdicts (l : Bundle.loaded) =
  List.filter
    (fun (e : Bundle.ev) ->
      e.Bundle.e_kind = "monitor-verdict"
      && Jmini.mem "suspicious" e.Bundle.e_args = Some (Jmini.Bool true))
    l.Bundle.l_events

let instance_changes (l : Bundle.loaded) =
  List.filter (fun (e : Bundle.ev) -> e.Bundle.e_kind = "instance-changed")
    l.Bundle.l_events

(* Per-channel (messages, bytes, drops) delta between the first and
   last metrics snapshots in the bundle. *)
let channel_deltas (l : Bundle.loaded) =
  match (l.Bundle.l_snapshots, List.rev l.Bundle.l_snapshots) with
  | (t0, first) :: _, (t1, last) :: _ when t0 < t1 ->
    let table snap =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (name, labels, v) ->
          match List.assoc_opt "channel" labels with
          | Some chan -> Hashtbl.replace tbl (name, chan) v
          | None -> ())
        (Bundle.samples_of_snapshot snap);
      tbl
    in
    let t_first = table first and t_last = table last in
    let delta name chan =
      Option.value ~default:0.0 (Hashtbl.find_opt t_last (name, chan))
      -. Option.value ~default:0.0 (Hashtbl.find_opt t_first (name, chan))
    in
    let channels =
      Hashtbl.fold (fun (_, chan) _ acc ->
          if List.mem chan acc then acc else chan :: acc)
        t_last []
      |> List.sort compare
    in
    Some
      ( Time.sub t1 t0,
        List.map
          (fun chan ->
            ( chan,
              delta "bft_net_messages_total" chan,
              delta "bft_net_bytes_total" chan,
              delta "bft_net_dropped_total" chan ))
          channels )
  | _ -> None

let critical_path (l : Bundle.loaded) =
  if Array.length l.Bundle.l_spans = 0 then None
  else
    let s = Bftspan.Analyze.summarize l.Bundle.l_spans in
    if s.Bftspan.Analyze.committed = 0 then None else Some s

(* --- attribution --------------------------------------------------- *)

let attribute (l : Bundle.loaded) =
  let evidence = ref [] in
  let note fmt = Printf.ksprintf (fun s -> evidence := s :: !evidence) fmt in
  let closures = nic_closures l in
  let suspicious = suspicious_verdicts l in
  let ics = instance_changes l in
  List.iter
    (fun (peer, n) -> note "nic-closed x%d against peer node %d" n peer)
    closures;
  (match suspicious with
  | [] -> ()
  | vs ->
    let nodes = count_by (fun (e : Bundle.ev) -> Some e.Bundle.e_node) vs in
    note "%d suspicious monitor verdicts (nodes: %s)" (List.length vs)
      (String.concat "," (List.map (fun (n, _) -> string_of_int n) nodes)));
  List.iter
    (fun (e : Bundle.ev) ->
      note "instance-changed on instance %d at %s (cpi=%d)" e.Bundle.e_instance
        (Time.to_string e.Bundle.e_time)
        (Option.value ~default:(-1) (Jmini.get_int "cpi" e.Bundle.e_args)))
    ics;
  (match critical_path l with
  | Some s ->
    (match s.Bftspan.Analyze.stages with
    | top :: _ ->
      note "dominant critical-path stage: %s (%.1f%% of end-to-end latency)"
        (Bftspan.Tag.name top.Bftspan.Analyze.tag)
        (100.0 *. top.Bftspan.Analyze.share)
    | [] -> ())
  | None -> ());
  let finish cause culprit_node culprit_instance confidence =
    { cause; culprit_node; culprit_instance; confidence;
      evidence = List.rev !evidence }
  in
  match closures with
  | (peer, _) :: _ ->
    (* Flooding: NICs only close against peers that exceeded the
       invalid-traffic threshold — direct evidence of the attacker. *)
    note "verdict: node %d flooded its peers until their NICs closed" peer;
    finish "flooding" (Some peer) None "high"
  | [] -> (
    match ics with
    | ic :: _ ->
      (* The demoted instance is in the event; its primary at the time
         of the incident is recorded by the attach-time config. *)
      let primary =
        Option.bind
          (List.assoc_opt "master_primary" l.Bundle.l_config)
          int_of_string_opt
      in
      (match primary with
      | Some p -> note "verdict: master instance %d (primary node %d) under-performed" ic.Bundle.e_instance p
      | None -> note "verdict: master instance %d under-performed" ic.Bundle.e_instance);
      finish "master-underperformance" primary (Some ic.Bundle.e_instance)
        (if suspicious <> [] then "high" else "medium")
    | [] ->
      if suspicious <> [] then begin
        let inst =
          match suspicious with
          | (e : Bundle.ev) :: _ ->
            Jmini.get_int "instance" e.Bundle.e_args
          | [] -> None
        in
        note "verdict: master skirting the Δ envelope (no instance change yet)";
        finish "delta-envelope" None inst "medium"
      end
      else
        let cause, conf =
          match critical_path l with
          | Some s -> (
            match s.Bftspan.Analyze.stages with
            | top :: _ ->
              ( Printf.sprintf "latency-dominated-by-%s"
                  (Bftspan.Tag.name top.Bftspan.Analyze.tag),
                "medium" )
            | [] -> ("unattributed", "low"))
          | None -> ("unattributed", "low")
        in
        finish cause None None conf)

(* --- reports ------------------------------------------------------- *)

let timeline_tail ?(limit = 30) (l : Bundle.loaded) =
  let n = List.length l.Bundle.l_events in
  let skipped = max 0 (n - limit) in
  let tail = if skipped = 0 then l.Bundle.l_events
    else List.filteri (fun i _ -> i >= skipped) l.Bundle.l_events
  in
  (skipped, tail)

let format_event (e : Bundle.ev) =
  let args =
    match e.Bundle.e_args with
    | Jmini.Obj kvs ->
      kvs
      |> List.filter (fun (k, _) ->
             not (List.mem k [ "ts"; "node"; "instance"; "kind" ]))
      |> List.map (fun (k, v) ->
             let value =
               match v with
               | Jmini.Str s ->
                 if String.length s > 8 then String.sub s 0 8 else s
               | Jmini.Num f ->
                 if Float.is_integer f then Printf.sprintf "%.0f" f
                 else Printf.sprintf "%.3f" f
               | Jmini.Bool b -> string_of_bool b
               | _ -> "?"
             in
             k ^ "=" ^ value)
      |> String.concat " "
    | _ -> ""
  in
  Printf.sprintf "[%s] n%d/i%d %-22s %s"
    (Time.to_string e.Bundle.e_time)
    e.Bundle.e_node e.Bundle.e_instance e.Bundle.e_kind args

let report (l : Bundle.loaded) =
  let v = attribute l in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "incident bundle: %s" l.Bundle.l_dir;
  line "  trigger : %s" l.Bundle.l_trigger;
  line "  fired   : %s" (Time.to_string l.Bundle.l_fired);
  line "  reason  : %s" l.Bundle.l_reason;
  line "  seed    : %s" l.Bundle.l_seed;
  line "  digest  : %s" l.Bundle.l_digest;
  if l.Bundle.l_config <> [] then
    line "  config  : %s"
      (String.concat " "
         (List.map (fun (k, x) -> k ^ "=" ^ x) l.Bundle.l_config));
  if l.Bundle.l_scenario <> None then line "  scenario: scenario.scn (chaos run)";
  line "";
  line "verdict: %s (confidence %s)" v.cause v.confidence;
  (match v.culprit_node with
  | Some n -> line "  culprit node     : %d" n
  | None -> line "  culprit node     : unattributed");
  (match v.culprit_instance with
  | Some i -> line "  culprit instance : %d" i
  | None -> ());
  List.iter (fun e -> line "  - %s" e) v.evidence;
  line "";
  (match channel_deltas l with
  | Some (window, rows) ->
    line "per-channel deltas over the %s snapshot window:" (Time.to_string window);
    line "  %-14s %12s %14s %8s" "channel" "messages" "bytes" "drops";
    List.iter
      (fun (chan, msgs, bytes, drops) ->
        line "  %-14s %12.0f %14.0f %8.0f" chan msgs bytes drops)
      rows;
    line ""
  | None -> ());
  (match critical_path l with
  | Some s ->
    line "critical-path breakdown at incident time (%d committed traces):"
      s.Bftspan.Analyze.committed;
    line "  %-14s %8s %10s %10s" "stage" "share" "p50_ms" "p99_ms";
    List.iter
      (fun (r : Bftspan.Analyze.stage_row) ->
        line "  %-14s %7.2f%% %10.4f %10.4f" (Bftspan.Tag.name r.Bftspan.Analyze.tag)
          (100.0 *. r.Bftspan.Analyze.share)
          r.Bftspan.Analyze.p50_ms r.Bftspan.Analyze.p99_ms)
      s.Bftspan.Analyze.stages;
    line ""
  | None -> ());
  let skipped, tail = timeline_tail l in
  line "timeline (last %d audit events%s):" (List.length tail)
    (if skipped > 0 then Printf.sprintf ", %d older omitted" skipped else "");
  List.iter (fun e -> line "  %s" (format_event e)) tail;
  Buffer.contents buf

let verdict_json (l : Bundle.loaded) =
  let v = attribute l in
  let esc = Bftaudit.Event.json_escape in
  let opt_int = function Some i -> string_of_int i | None -> "null" in
  Printf.sprintf
    {|{"bundle":"%s","trigger":"%s","fired_ns":%d,"cause":"%s","culprit_node":%s,"culprit_instance":%s,"confidence":"%s","digest":"%s","evidence":[%s]}|}
    (esc l.Bundle.l_dir) (esc l.Bundle.l_trigger)
    (l.Bundle.l_fired : Time.t)
    (esc v.cause) (opt_int v.culprit_node) (opt_int v.culprit_instance)
    v.confidence l.Bundle.l_digest
    (String.concat ","
       (List.map (fun e -> Printf.sprintf "\"%s\"" (esc e)) v.evidence))

(* Chrome trace of the incident window: the bundle's spans as complete
   ("X") events and its audit events as instants, same pid = node /
   tid = instance mapping as Bftspan.Analyze.write_chrome. *)
let write_chrome (l : Bundle.loaded) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc {|{"displayTimeUnit":"ms","traceEvents":[|};
      let first = ref true in
      let sep () = if !first then first := false else output_char oc ',' in
      Array.iter
        (fun (s : Bftspan.Span.t) ->
          if not (Bftspan.Span.is_open s) then begin
            sep ();
            let tid =
              if s.Bftspan.Span.node < 0 then s.Bftspan.Span.client
              else s.Bftspan.Span.instance
            in
            Printf.fprintf oc
              {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"id":%d,"client":%d,"rid":%d}}|}
              (Bftspan.Tag.name s.Bftspan.Span.tag)
              (Time.to_us_f s.Bftspan.Span.t0)
              (Time.to_us_f (Bftspan.Span.duration s))
              s.Bftspan.Span.node tid s.Bftspan.Span.id s.Bftspan.Span.client
              s.Bftspan.Span.rid
          end)
        l.Bundle.l_spans;
      List.iter
        (fun (e : Bundle.ev) ->
          sep ();
          Printf.fprintf oc
            {|{"name":"%s","ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d}|}
            e.Bundle.e_kind
            (Time.to_us_f e.Bundle.e_time)
            e.Bundle.e_node e.Bundle.e_instance)
        l.Bundle.l_events;
      output_string oc "]}")
