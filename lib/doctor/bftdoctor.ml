(** Always-on incident forensics for the BFT simulations.

    {!Recorder} keeps bounded, sim-time-watermarked rings over the
    three observability streams (audit bus, span stream, periodic
    metrics snapshots); {!Trigger} is the declarative anomaly engine
    (instance change, auditor violation, liveness stall, p99 SLO
    breach, Δ-ratio near threshold — each with debounce and cooldown);
    {!Bundle} freezes the rings into deterministic, chain-digested
    incident bundles; {!Analyze} reconstructs an incident's timeline
    and attributes its cause; {!Doctor} is the one-call attach point
    tying them together. {!Ring} and {!Jmini} are the support
    structures (bounded buffer, dependency-free JSON reader). *)

module Ring = Ring
module Jmini = Jmini
module Trigger = Trigger
module Recorder = Recorder
module Bundle = Bundle
module Analyze = Analyze
module Doctor = Doctor
