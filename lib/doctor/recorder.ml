(** The always-on flight recorder.

    Bounded rings over the three observability streams, watermarked
    with engine sim-time:

    - {e audit events}: a {!Bftaudit.Bus} subscription pushes every
      structured event into a ring (and maintains the execution /
      request watermarks the liveness-stall trigger reads);
    - {e spans}: a {!Bftspan.Tracer} close hook pushes every span as
      it closes; root (client) spans additionally feed a sliding
      window of end-to-end latencies for the p99 SLO trigger;
    - {e metrics}: a periodic tick snapshots the registry into a small
      ring of timestamped sample sets.

    The tick is armed at absolute engine-time boundaries
    [epoch + k * period] (same discipline as {!Bftmetrics.Sampler}),
    so the series is anchored to engine sim-time by construction and
    per-node clock skew cannot drift it.

    Zero-cost when disabled, like every hook layer in this codebase:
    while no recorder is attached, {!active} is one ref read, the bus
    stays silent, and the tracer close hook is [None] — each guarded
    site costs a few nanoseconds (pinned by the Bechamel rows
    [doctor-hook-disabled] / [doctor-span-close-disabled]). *)

open Dessim
module Registry = Bftmetrics.Registry
module Event = Bftaudit.Event
module Span = Bftspan.Span

type snapshot = { m_time : Time.t; m_samples : Registry.sample list }

type root = {
  r_time : Time.t;  (** close instant (t1 of the root span) *)
  r_latency : Time.t;
  r_client : int;
  r_rid : int;
}

type verdict = {
  v_time : Time.t;
  v_node : int;
  v_master : float;
  v_backup : float;
  v_suspicious : bool;
}

(* Latest merge-sequencer head-of-line sample (concurrent ordering
   only; the nodes publish one per monitoring period). [s_waiting_on]
   is -1 when the merge was not stalled at sampling time. *)
type seq_stall = {
  s_time : Time.t;
  s_node : int;
  s_waiting_on : int;
  s_age : Time.t;
  s_pending : int;
}

(* Global gate, same discipline as Bus/Registry/Tracer. *)
let enabled = ref false
let active () = !enabled

type t = {
  engine : Engine.t;
  registry : Registry.t;
  period : Time.t;
  epoch : Time.t;
  mutable k : int;  (* index of the last armed tick *)
  audit : Event.t Ring.t;
  spans : Span.t Ring.t;
  metrics : snapshot Ring.t;
  roots : root Ring.t;
  mutable last_exec : Time.t;
  mutable last_req : Time.t;
  mutable executed : int;
  mutable last_verdict : verdict option;
  mutable last_seq_stall : seq_stall option;
  mutable token : Bftaudit.Bus.token option;
  mutable saved_close_hook : (Span.t -> unit) option;
  mutable on_event : (t -> Event.t -> unit) option;
  mutable on_tick : (t -> Time.t -> unit) option;
  mutable detached : bool;
}

(* Snapshots are sorted by (name, labels) so their serialisation does
   not depend on registration order — bundles must be byte-identical
   across same-seed replays even if lazily-registered families (the
   metrics bridge) appear in a different order. *)
let compare_sample (a : Registry.sample) (b : Registry.sample) =
  match compare a.Registry.s_name b.Registry.s_name with
  | 0 -> compare a.Registry.s_labels b.Registry.s_labels
  | c -> c

let sample_now t =
  Ring.push t.metrics
    {
      m_time = Engine.now t.engine;
      m_samples = List.sort compare_sample (Registry.snapshot t.registry);
    }

let handle_event t (ev : Event.t) =
  Ring.push t.audit ev;
  (match ev.Event.kind with
  | Event.Executed _ ->
    t.last_exec <- ev.Event.time;
    t.executed <- t.executed + 1
  | Event.Request_received _ | Event.Request_dispatched _ ->
    t.last_req <- ev.Event.time
  | Event.Monitor_verdict { master_rate; backup_rate; suspicious } ->
    t.last_verdict <-
      Some
        {
          v_time = ev.Event.time;
          v_node = ev.Event.node;
          v_master = master_rate;
          v_backup = backup_rate;
          v_suspicious = suspicious;
        }
  | Event.Seq_stall { waiting_on; age; pending } ->
    t.last_seq_stall <-
      Some
        {
          s_time = ev.Event.time;
          s_node = ev.Event.node;
          s_waiting_on = waiting_on;
          s_age = age;
          s_pending = pending;
        }
  | _ -> ());
  match t.on_event with Some f -> f t ev | None -> ()

let handle_close t (s : Span.t) =
  if not (Span.is_open s) then begin
    Ring.push t.spans s;
    if s.Span.parent < 0 then
      Ring.push t.roots
        {
          r_time = s.Span.t1;
          r_latency = Time.sub s.Span.t1 s.Span.t0;
          r_client = s.Span.client;
          r_rid = s.Span.rid;
        }
  end

let rec arm t =
  t.k <- t.k + 1;
  let next = Time.add t.epoch (Time.ns (t.k * (t.period : Time.t))) in
  ignore
    (Engine.at t.engine next (fun () ->
         if not t.detached then begin
           sample_now t;
           (match t.on_tick with
           | Some f -> f t (Engine.now t.engine)
           | None -> ());
           arm t
         end))

let attach ?(audit_cap = 4096) ?(span_cap = 4096) ?(metrics_cap = 16)
    ?(roots_cap = 512) ?(period = Time.ms 100) ?(registry = Registry.default)
    engine =
  Registry.enable ();
  let now = Engine.now engine in
  let t =
    {
      engine;
      registry;
      period;
      epoch = now;
      k = 0;
      audit = Ring.create audit_cap;
      spans = Ring.create span_cap;
      metrics = Ring.create metrics_cap;
      roots = Ring.create roots_cap;
      last_exec = now;
      last_req = now;
      executed = 0;
      last_verdict = None;
      last_seq_stall = None;
      token = None;
      saved_close_hook = None;
      on_event = None;
      on_tick = None;
      detached = false;
    }
  in
  ignore
    (Bftcap.Footprint.register ~owner:"recorder" ~name:"doctor.audit_ring"
       ~entries:(fun () -> Ring.length t.audit)
       ~root:(fun () -> Some (Obj.repr t.audit))
       ());
  ignore
    (Bftcap.Footprint.register ~owner:"recorder" ~name:"doctor.span_ring"
       ~entries:(fun () -> Ring.length t.spans)
       ~root:(fun () -> Some (Obj.repr t.spans))
       ());
  ignore
    (Bftcap.Footprint.register ~owner:"recorder" ~name:"doctor.metrics_ring"
       ~entries:(fun () -> Ring.length t.metrics)
       ~root:(fun () -> Some (Obj.repr t.metrics))
       ());
  ignore
    (Bftcap.Footprint.register ~owner:"recorder" ~name:"doctor.roots_ring"
       ~entries:(fun () -> Ring.length t.roots)
       ~root:(fun () -> Some (Obj.repr t.roots))
       ());
  t.token <- Some (Bftaudit.Bus.subscribe (handle_event t));
  t.saved_close_hook <- Bftspan.Tracer.close_hook ();
  Bftspan.Tracer.set_close_hook
    (Some
       (fun s ->
         (match t.saved_close_hook with Some f -> f s | None -> ());
         handle_close t s));
  sample_now t;
  arm t;
  enabled := true;
  t

let detach t =
  if not t.detached then begin
    t.detached <- true;
    (match t.token with
    | Some tok ->
      Bftaudit.Bus.unsubscribe tok;
      t.token <- None
    | None -> ());
    Bftspan.Tracer.set_close_hook t.saved_close_hook;
    enabled := false
  end

let set_on_event t f = t.on_event <- f
let set_on_tick t f = t.on_tick <- f

(* --- evidence accessors (oldest first) ----------------------------- *)

let audit_events t = Ring.to_list t.audit
let spans t = Ring.to_list t.spans
let snapshots t = Ring.to_list t.metrics
let root_latencies t = Ring.to_list t.roots
let last_verdict t = t.last_verdict
let last_seq_stall t = t.last_seq_stall
let last_exec t = t.last_exec
let last_req t = t.last_req
let executed t = t.executed
let engine t = t.engine
let period t = t.period
let events_seen t = Ring.pushed t.audit
let spans_seen t = Ring.pushed t.spans

(** p99 over the sliding window of committed root latencies, with the
    window's population. *)
let p99_latency t =
  let xs = List.map (fun r -> (r.r_latency : Time.t)) (Ring.to_list t.roots) in
  match xs with
  | [] -> (0, Time.zero)
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (0.99 *. float_of_int n)) in
    (n, Time.ns a.(max 0 (min (n - 1) (rank - 1))))
