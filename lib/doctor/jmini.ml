(** Minimal recursive-descent JSON reader.

    The repository deliberately carries no JSON dependency; flat
    objects are parsed ad hoc where they occur (e.g. span JSONL). The
    doctor needs to read *nested* documents back — bundle manifests,
    metrics snapshots, BENCH baselines — so this module implements the
    small general parser those consumers share. It reads everything
    this codebase writes; it is not a strict validator. *)

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

exception Parse_error of string

type state = { s : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  if peek st = Some c then st.pos <- st.pos + 1
  else error st (Printf.sprintf "expected '%c'" c)

let parse_literal st lit value =
  let n = String.length lit in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = lit then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" lit)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then error st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if st.pos >= String.length st.s then error st "unterminated escape";
       let e = st.s.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | 'r' -> Buffer.add_char buf '\r'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.s then error st "short \\u escape";
         let hex = String.sub st.s st.pos 4 in
         st.pos <- st.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> error st "bad \\u escape"
         in
         (* Code points above the BMP never occur in our own output;
            encode the scalar as UTF-8. *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> error st "bad escape");
      go ()
    | c ->
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && is_num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> error st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ((key, value) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          Obj (List.rev ((key, value) :: acc))
        | _ -> error st "expected ',' or '}'"
      in
      members []
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let rec elems acc =
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elems (value :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          Arr (List.rev (value :: acc))
        | _ -> error st "expected ',' or ']'"
      in
      elems []
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('N' | 'I') ->
    (* Our own exporters can emit NaN / Infinity spellings. *)
    (try parse_literal st "NaN" (Num Float.nan)
     with Parse_error _ -> parse_literal st "Infinity" (Num Float.infinity))
  | Some _ -> Num (parse_number st)

let parse text =
  let st = { s = text; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length text then error st "trailing garbage";
  v

let parse_opt text = try Some (parse text) with Parse_error _ -> None

(* --- accessors ----------------------------------------------------- *)

let mem key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let bool = function Bool b -> Some b | _ -> None
let arr = function Arr xs -> Some xs | _ -> None
let obj = function Obj kvs -> Some kvs | _ -> None

let to_int v =
  match num v with
  | Some f when Float.is_integer f && Float.abs f < 1e15 -> Some (int_of_float f)
  | _ -> None

let get_str key v = Option.bind (mem key v) str
let get_num key v = Option.bind (mem key v) num
let get_int key v = Option.bind (mem key v) to_int
