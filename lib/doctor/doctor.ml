(** The doctor: one attach point tying the flight {!Recorder} to the
    {!Trigger} engine and the {!Bundle} writer.

    Wiring:
    - bus events flow through the recorder; [instance-changed] events
      become edges on the instance-change trigger;
    - {!Bftaudit.Auditor} violations arrive through the auditor's
      global violation hook and become edges on the auditor-violation
      trigger;
    - every recorder tick snapshots metrics, ripens armed edge
      triggers, and evaluates the level triggers (liveness stall, p99
      SLO, Δ-ratio near threshold);
    - a fire freezes the rings into a {!Bundle.incident}; when the
      config carries a directory the bundle is written to
      [dir/incident-NNN-<trigger>/], and either way the incident (and
      its digest) is kept on the doctor for the caller.

    Incident dumping is capped by [max_incidents]; once reached,
    further fires are counted but not dumped. *)

open Dessim
module Event = Bftaudit.Event

type config = {
  dir : string option;  (** bundle output directory; [None] = in memory *)
  seed : int64;
  config_fields : (string * string) list;  (** static, digest-protected *)
  context : (unit -> (string * string) list) option;
      (** sampled at dump time (e.g. current master primary) *)
  scenario : string option;  (** active [.scn] text under chaos *)
  read_gc : (unit -> Gc.stat) option;
      (** GC stat source for the mem-growth trigger; [None] =
          [Gc.quick_stat]. Injectable so the synthetic-leak self-test
          can fabricate a deterministic heap trajectory. *)
  triggers : Trigger.spec list;
  audit_cap : int;
  span_cap : int;
  metrics_cap : int;
  roots_cap : int;
  period : Time.t;
  max_incidents : int;
}

let default_triggers =
  [
    Trigger.spec Trigger.Instance_change ~cooldown:(Time.sec 1);
    Trigger.spec Trigger.Auditor_violation ~cooldown:(Time.sec 1);
  ]

let default_config ?(dir = None) ?(seed = 1L) ?(config_fields = [])
    ?(context = None) ?(scenario = None) ?(read_gc = None)
    ?(triggers = default_triggers) () =
  {
    dir;
    seed;
    config_fields;
    context;
    scenario;
    read_gc;
    triggers;
    audit_cap = 4096;
    span_cap = 4096;
    metrics_cap = 16;
    roots_cap = 512;
    period = Time.ms 100;
    max_incidents = 8;
  }

type incident_ref = {
  i_seq : int;
  i_trigger : string;
  i_at : Time.t;
  i_reason : string;
  i_digest : string;
  i_dir : string option;  (** where the bundle was written, if it was *)
}

type t = {
  config : config;
  recorder : Recorder.t;
  gcstats : Bftcap.Gcstats.t;
  triggers : Trigger.t list;
  mutable incidents : incident_ref list;  (* newest first *)
  mutable fires_suppressed : int;
  mutable saved_violation_hook : (Bftaudit.Auditor.violation -> unit) option;
  mutable detached : bool;
}

let bundle_name seq trigger = Printf.sprintf "incident-%03d-%s" seq trigger

let dump t (fire : Trigger.fire) =
  if List.length t.incidents >= t.config.max_incidents then
    t.fires_suppressed <- t.fires_suppressed + 1
  else begin
    (* Freeze the metrics at the incident instant so the last snapshot
       in the bundle is the state at fire time, not one period old. *)
    Recorder.sample_now t.recorder;
    let config =
      t.config.config_fields
      @ (match t.config.context with Some f -> f () | None -> [])
    in
    let seq = List.length t.incidents + 1 in
    let incident =
      {
        Bundle.trigger = fire.Trigger.name;
        fired_at = fire.Trigger.at;
        reason = fire.Trigger.reason;
        seed = t.config.seed;
        config;
        scenario = t.config.scenario;
        events = Recorder.audit_events t.recorder;
        spans = Recorder.spans t.recorder;
        snapshots = Recorder.snapshots t.recorder;
        footprint = Bftcap.Footprint.snapshot ();
      }
    in
    let dir, digest =
      match t.config.dir with
      | Some base ->
        let dir = Filename.concat base (bundle_name seq fire.Trigger.name) in
        (Some dir, Bundle.write ~dir incident)
      | None -> (None, Bundle.digest incident)
    in
    t.incidents <-
      {
        i_seq = seq;
        i_trigger = fire.Trigger.name;
        i_at = fire.Trigger.at;
        i_reason = fire.Trigger.reason;
        i_digest = digest;
        i_dir = dir;
      }
      :: t.incidents
  end

let fire_opt t = function Some f -> dump t f | None -> ()

let on_event t (_rec : Recorder.t) (ev : Event.t) =
  match ev.Event.kind with
  | Event.Instance_changed { cpi; recovery } when not recovery ->
    List.iter
      (fun trig ->
        match Trigger.kind trig with
        | Trigger.Instance_change ->
          fire_opt t
            (Trigger.edge trig ~now:ev.Event.time
               ~reason:
                 (Printf.sprintf
                    "instance change on node %d: master instance %d demoted (cpi=%d)"
                    ev.Event.node ev.Event.instance cpi))
        | _ -> ())
      t.triggers
  | Event.Nic_closed { peer; _ } ->
    List.iter
      (fun trig ->
        match Trigger.kind trig with
        | Trigger.Nic_closure ->
          fire_opt t
            (Trigger.edge trig ~now:ev.Event.time
               ~reason:
                 (Printf.sprintf
                    "node %d closed its NIC against flooding peer node %d"
                    ev.Event.node peer))
        | _ -> ())
      t.triggers
  | _ -> ()

let on_violation t (v : Bftaudit.Auditor.violation) =
  List.iter
    (fun trig ->
      match Trigger.kind trig with
      | Trigger.Auditor_violation ->
        fire_opt t
          (Trigger.edge trig ~now:v.Bftaudit.Auditor.time
             ~reason:
               (Printf.sprintf "auditor violation [%s]: %s"
                  v.Bftaudit.Auditor.invariant v.Bftaudit.Auditor.detail))
      | _ -> ())
    t.triggers

let on_tick t (r : Recorder.t) now =
  Bftcap.Gcstats.sample t.gcstats ~now;
  List.iter
    (fun trig ->
      match Trigger.kind trig with
      | Trigger.Instance_change | Trigger.Auditor_violation
      | Trigger.Nic_closure ->
        fire_opt t (Trigger.ripen trig ~now)
      | Trigger.Liveness_stall { idle } ->
        let last_exec = Recorder.last_exec r in
        let pending = Recorder.last_req r > last_exec in
        let idle_for = Time.sub now last_exec in
        fire_opt t
          (Trigger.level trig ~now
             ~cond:(pending && idle_for >= idle)
             ~reason:
               (Printf.sprintf
                  "no execution for %s with requests pending (%d executed so far)"
                  (Time.to_string idle_for) (Recorder.executed r)))
      | Trigger.Slo_p99 { threshold; min_count } ->
        let count, p99 = Recorder.p99_latency r in
        fire_opt t
          (Trigger.level trig ~now
             ~cond:(count >= min_count && p99 >= threshold)
             ~reason:
               (Printf.sprintf
                  "sliding-window p99 latency %s over SLO %s (%d requests in window)"
                  (Time.to_string p99) (Time.to_string threshold) count))
      | Trigger.Seq_stall { age = bound } -> (
        match Recorder.last_seq_stall r with
        | Some s ->
          let cond = s.Recorder.s_waiting_on >= 0 && s.Recorder.s_age >= bound in
          fire_opt t
            (Trigger.level trig ~now ~cond
               ~reason:
                 (Printf.sprintf
                    "merge sequencer on node %d stalled %s at the head of \
                     instance %d's stream (%d batches pending behind it)"
                    s.Recorder.s_node
                    (Time.to_string s.Recorder.s_age)
                    s.Recorder.s_waiting_on s.Recorder.s_pending))
        | None -> fire_opt t (Trigger.level trig ~now ~cond:false ~reason:""))
      | Trigger.Mem_growth { slope; min_span } -> (
        match Bftcap.Gcstats.growth t.gcstats with
        | Some g ->
          let cond =
            g.Bftcap.Gcstats.g_span >= min_span
            && g.Bftcap.Gcstats.g_live_slope >= slope
          in
          let culprit =
            match g.Bftcap.Gcstats.g_culprit with
            | Some (key, rate) ->
              Printf.sprintf "; fastest-growing structure %s (+%.0f entries/s)"
                key rate
            | None -> ""
          in
          fire_opt t
            (Trigger.level trig ~now ~cond
               ~reason:
                 (Printf.sprintf
                    "live heap growing %.0f words/s over %s (threshold %.0f words/s)%s"
                    g.Bftcap.Gcstats.g_live_slope
                    (Time.to_string g.Bftcap.Gcstats.g_span)
                    slope culprit))
        | None -> fire_opt t (Trigger.level trig ~now ~cond:false ~reason:""))
      | Trigger.Delta_ratio_near { delta; epsilon } -> (
        match Recorder.last_verdict r with
        | Some v ->
          let ratio =
            if v.Recorder.v_backup > 0.0 then
              v.Recorder.v_master /. v.Recorder.v_backup
            else Float.nan
          in
          let cond =
            v.Recorder.v_backup >= Trigger.min_meaningful_rate
            && (not v.Recorder.v_suspicious)
            && (not (Float.is_nan ratio))
            && ratio >= delta
            && ratio < delta +. epsilon
          in
          fire_opt t
            (Trigger.level trig ~now ~cond
               ~reason:
                 (Printf.sprintf
                    "monitoring ratio %.4f within %.4f of Δ threshold %.4f (master %.1f/s, backup %.1f/s)"
                    ratio epsilon delta v.Recorder.v_master
                    v.Recorder.v_backup))
        | None ->
          fire_opt t (Trigger.level trig ~now ~cond:false ~reason:"")))
    t.triggers

let attach config engine =
  let recorder =
    Recorder.attach ~audit_cap:config.audit_cap ~span_cap:config.span_cap
      ~metrics_cap:config.metrics_cap ~roots_cap:config.roots_cap
      ~period:config.period engine
  in
  let t =
    {
      config;
      recorder;
      gcstats =
        (match config.read_gc with
        | Some f -> Bftcap.Gcstats.create ~read_stat:f ()
        | None -> Bftcap.Gcstats.create ());
      triggers = List.map Trigger.make config.triggers;
      incidents = [];
      fires_suppressed = 0;
      saved_violation_hook = Bftaudit.Auditor.violation_hook ();
      detached = false;
    }
  in
  Recorder.set_on_event recorder (Some (on_event t));
  Recorder.set_on_tick recorder (Some (on_tick t));
  Bftaudit.Auditor.set_violation_hook
    (Some
       (fun v ->
         (match t.saved_violation_hook with Some f -> f v | None -> ());
         on_violation t v));
  t

let detach t =
  if not t.detached then begin
    t.detached <- true;
    Recorder.detach t.recorder;
    Bftaudit.Auditor.set_violation_hook t.saved_violation_hook
  end

let recorder t = t.recorder
let gcstats t = t.gcstats

(** Oldest first. *)
let incidents t = List.rev t.incidents

let fires_suppressed t = t.fires_suppressed

(** Manual dump — the chaos runner's post-run failure path and the CI
    incident-smoke job use this to force a bundle. *)
let force t ~reason =
  let now = Engine.now (Recorder.engine t.recorder) in
  dump t { Trigger.at = now; name = "forced"; reason }
