(** Fixed-capacity ring buffer: O(1) push keeping the most recent
    [capacity] items.

    This is the flight recorder's bounded memory: every always-on
    stream (audit events, closed spans, metrics snapshots, root
    latencies) lands in one of these, so a week-long run holds exactly
    as much evidence as a ten-second one. *)

type 'a t = {
  data : 'a option array;
  mutable next : int;  (* slot the next push writes *)
  mutable pushed : int;  (* total pushes over the ring's lifetime *)
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity None; next = 0; pushed = 0 }

let capacity t = Array.length t.data
let pushed t = t.pushed
let length t = min t.pushed (Array.length t.data)

let push t x =
  t.data.(t.next) <- Some x;
  t.next <- (t.next + 1) mod Array.length t.data;
  t.pushed <- t.pushed + 1

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.next <- 0;
  t.pushed <- 0

(** Oldest first. *)
let to_list t =
  let cap = Array.length t.data in
  let n = length t in
  let start = ((t.next - n) mod cap + cap) mod cap in
  List.init n (fun i -> Option.get t.data.((start + i) mod cap))

let iter f t = List.iter f (to_list t)

let fold f acc t = List.fold_left f acc (to_list t)
