(** Declarative anomaly triggers with per-trigger debounce and
    cooldown.

    Two condition families share one arming state machine:

    - {e edge} conditions are point occurrences reported as they
      happen: an instance change fired, the auditor recorded a
      violation ({!edge});
    - {e level} conditions are predicates re-evaluated at every
      recorder tick: liveness stall, sliding-window p99 SLO breach,
      monitoring Δ-ratio within ε of the instance-change threshold
      ({!level}).

    [debounce] is how long a condition must persist before the trigger
    fires. An edge occurrence arms the trigger and the fire happens
    once [debounce] has elapsed (repeat occurrences in between coalesce
    into the armed one; [debounce = 0] fires at the occurrence itself).
    A level condition must hold at every evaluation for [debounce]
    before firing, and disarms the moment it evaluates false.

    [cooldown] is the minimum sim-time between two fires of the same
    trigger; occurrences and satisfied conditions inside the cooldown
    window are discarded, so one incident cannot dump a bundle storm. *)

open Dessim

type kind =
  | Instance_change
  | Auditor_violation
  | Nic_closure
      (** A node closed a NIC against a flooding peer — the worst1
          signature. The attack is tolerated (that is the point of the
          defense), so nothing downstream fires; the closure itself is
          the forensic moment worth a bundle. *)
  | Liveness_stall of { idle : Time.t }
      (** No execution for [idle] sim-time while requests are pending. *)
  | Slo_p99 of { threshold : Time.t; min_count : int }
      (** p99 over the recorder's sliding window of committed
          end-to-end latencies exceeds [threshold]; needs at least
          [min_count] samples in the window before it can fire. *)
  | Delta_ratio_near of { delta : float; epsilon : float }
      (** The monitoring ratio master/backup is above the
          instance-change threshold [delta] but within [epsilon] of
          it — the master is skirting the Δ envelope without (yet)
          triggering an instance change, which is exactly the worst2
          attack profile. *)
  | Seq_stall of { age : Time.t }
      (** Concurrent (bftrcc) ordering only: the deterministic merge
          sequencer has been waiting at the head of one instance's
          stream for at least [age] — a head-of-line stall. Set [age]
          below [Params.stall_change] to freeze a bundle while the
          stall is still live, before the stall-driven instance change
          re-homes the partition and clears it. *)
  | Mem_growth of { slope : float; min_span : Time.t }
      (** The live-heap watermark is growing at [slope] words per
          sim-second or faster, sustained over a {!Bftcap.Gcstats}
          sampling window spanning at least [min_span] — the leak
          signature. The fire reason names the fastest-growing
          footprint probe as the culprit structure. *)

(* Mirrors Rbft.Monitoring.min_meaningful_rate: below this backup
   rate the ratio is noise, not evidence. *)
let min_meaningful_rate = 50.0

let kind_name = function
  | Instance_change -> "instance-change"
  | Auditor_violation -> "auditor-violation"
  | Nic_closure -> "nic-closure"
  | Liveness_stall _ -> "liveness-stall"
  | Slo_p99 _ -> "slo-p99"
  | Delta_ratio_near _ -> "delta-ratio-near"
  | Seq_stall _ -> "seq-stall"
  | Mem_growth _ -> "mem-growth"

type spec = { kind : kind; debounce : Time.t; cooldown : Time.t }

let spec ?(debounce = Time.zero) ?(cooldown = Time.sec 1) kind =
  { kind; debounce; cooldown }

type t = {
  spec : spec;
  mutable armed_since : Time.t option;
  mutable armed_reason : string;
  mutable last_fired : Time.t option;
  mutable fires : int;
}

type fire = { at : Time.t; name : string; reason : string }

let make spec =
  { spec; armed_since = None; armed_reason = ""; last_fired = None; fires = 0 }

let name t = kind_name t.spec.kind
let kind t = t.spec.kind
let fires t = t.fires
let armed t = t.armed_since <> None

let in_cooldown t ~now =
  match t.last_fired with
  | Some last -> Time.sub now last < t.spec.cooldown
  | None -> false

let do_fire t ~now =
  t.armed_since <- None;
  t.last_fired <- Some now;
  t.fires <- t.fires + 1;
  Some { at = now; name = name t; reason = t.armed_reason }

(** Report an edge occurrence. Returns the fire, if this occurrence
    (or an earlier armed one whose debounce has now elapsed) fires. *)
let edge t ~now ~reason =
  if in_cooldown t ~now then None
  else
    match t.armed_since with
    | None ->
      t.armed_since <- Some now;
      t.armed_reason <- reason;
      if t.spec.debounce <= Time.zero then do_fire t ~now else None
    | Some since ->
      if Time.sub now since >= t.spec.debounce then do_fire t ~now else None

(** Tick evaluation for an armed edge trigger whose debounce may have
    elapsed without a further occurrence. *)
let ripen t ~now =
  match t.armed_since with
  | Some since
    when Time.sub now since >= t.spec.debounce && not (in_cooldown t ~now) ->
    do_fire t ~now
  | _ -> None

(** Tick evaluation of a level condition. *)
let level t ~now ~cond ~reason =
  if not cond then begin
    t.armed_since <- None;
    None
  end
  else begin
    (match t.armed_since with
    | None ->
      t.armed_since <- Some now;
      t.armed_reason <- reason
    | Some _ ->
      (* keep the arming instant, refresh the evidence *)
      t.armed_reason <- reason);
    match t.armed_since with
    | Some since
      when Time.sub now since >= t.spec.debounce && not (in_cooldown t ~now)
      ->
      do_fire t ~now
    | _ -> None
  end
