(** Self-contained incident bundles.

    A bundle is a directory written at trigger time:

    {v
    incident-003-instance-change/
      manifest.json    trigger, fire instant, reason, seed, config,
                       counts, and the chained bundle digest
      audit.jsonl      recent audit events (canonical Event.to_json)
      spans.jsonl      recent closed spans (canonical Span.write_json)
      metrics.json     ring of timestamped registry snapshots
      footprint.json   sorted per-structure memory footprint table
      scenario.scn     the active chaos scenario, when there is one
    v}

    The digest chains SHA-256 over a canonical header line followed by
    each section's exact bytes (audit, spans, metrics, footprint,
    scenario), seeded with ["bftdoctor-bundle-v2"]. Every byte of every section
    is derived from sim state only — no wall clock, no environment —
    so a same-seed replay that fires the same trigger produces a
    byte-identical bundle with an identical digest. The manifest
    itself carries the digest and is therefore outside the chain. *)

open Dessim
module Event = Bftaudit.Event
module Span = Bftspan.Span

type incident = {
  trigger : string;
  fired_at : Time.t;
  reason : string;
  seed : int64;
  config : (string * string) list;
  scenario : string option;
  events : Event.t list;  (** oldest first *)
  spans : Span.t list;  (** oldest first *)
  snapshots : Recorder.snapshot list;  (** oldest first *)
  footprint : Bftcap.Footprint.row list;  (** sorted worst-first *)
}

(* --- section rendering --------------------------------------------- *)

let audit_jsonl inc =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (Event.to_json ev);
      Buffer.add_char buf '\n')
    inc.events;
  Buffer.contents buf

let spans_jsonl inc =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Span.write_json buf s;
      Buffer.add_char buf '\n')
    inc.spans;
  Buffer.contents buf

let metrics_json inc =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i (snap : Recorder.snapshot) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"t_ns":%d,"samples":%s}|}
           (snap.Recorder.m_time : Time.t)
           (Bftmetrics.Export.json_of_samples snap.Recorder.m_samples)))
    inc.snapshots;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

(* Canonical header: the non-file manifest fields that must also be
   digest-protected. One line, fixed field order. *)
let header inc =
  Printf.sprintf "bftdoctor-bundle-v2|%s|%d|%s|%Ld|%s|%s\n" inc.trigger
    (inc.fired_at : Time.t)
    inc.reason inc.seed
    (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) inc.config))
    (match inc.scenario with Some _ -> "scn" | None -> "-")

let chain_digest ~header:hdr ~audit ~spans ~metrics ~footprint ~scenario =
  let chain = ref (Bftcrypto.Sha256.digest_string "bftdoctor-bundle-v2") in
  let feed s = chain := Bftcrypto.Sha256.digest_string (!chain ^ s) in
  feed hdr;
  feed audit;
  feed spans;
  feed metrics;
  feed footprint;
  feed (Option.value ~default:"" scenario);
  Bftcrypto.Sha256.to_hex !chain

let json_escape = Event.json_escape

let footprint_json inc =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i (r : Bftcap.Footprint.row) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           {|{"structure":"%s","owner":"%s","entries":%d,"peak":%d,"bytes":%d}|}
           (json_escape r.Bftcap.Footprint.r_name)
           (json_escape r.Bftcap.Footprint.r_owner)
           r.Bftcap.Footprint.r_entries r.Bftcap.Footprint.r_peak
           r.Bftcap.Footprint.r_bytes))
    inc.footprint;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let digest inc =
  chain_digest ~header:(header inc) ~audit:(audit_jsonl inc)
    ~spans:(spans_jsonl inc) ~metrics:(metrics_json inc)
    ~footprint:(footprint_json inc) ~scenario:inc.scenario

let manifest_json inc ~digest:dg =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf {|  "bundle": "bftdoctor-v2",|};
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"trigger\": \"%s\",\n" (json_escape inc.trigger));
  Buffer.add_string buf
    (Printf.sprintf "  \"fired_ns\": %d,\n" (inc.fired_at : Time.t));
  Buffer.add_string buf
    (Printf.sprintf "  \"reason\": \"%s\",\n" (json_escape inc.reason));
  Buffer.add_string buf (Printf.sprintf "  \"seed\": \"%Ld\",\n" inc.seed);
  Buffer.add_string buf
    (Printf.sprintf "  \"scenario\": %b,\n" (inc.scenario <> None));
  Buffer.add_string buf "  \"config\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    inc.config;
  Buffer.add_string buf "},\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"counts\": \
        {\"events\":%d,\"spans\":%d,\"snapshots\":%d,\"footprint\":%d},\n"
       (List.length inc.events) (List.length inc.spans)
       (List.length inc.snapshots)
       (List.length inc.footprint));
  Buffer.add_string buf (Printf.sprintf "  \"digest\": \"%s\"\n" dg);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** All bundle files as (name, content), manifest first. *)
let render inc =
  let dg = digest inc in
  let files =
    [
      ("manifest.json", manifest_json inc ~digest:dg);
      ("audit.jsonl", audit_jsonl inc);
      ("spans.jsonl", spans_jsonl inc);
      ("metrics.json", metrics_json inc);
      ("footprint.json", footprint_json inc);
    ]
  in
  ( dg,
    match inc.scenario with
    | Some scn -> files @ [ ("scenario.scn", scn) ]
    | None -> files )

let rec mkdirs path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdirs (Filename.dirname path);
    (try Sys.mkdir path 0o755 with Sys_error _ -> ())
  end

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(** Write the bundle under [dir] (created if needed); returns the
    bundle digest. *)
let write ~dir inc =
  mkdirs dir;
  let dg, files = render inc in
  List.iter (fun (name, content) -> write_file (Filename.concat dir name) content) files;
  dg

(* --- reading bundles back ------------------------------------------ *)

type ev = {
  e_time : Time.t;
  e_node : int;
  e_instance : int;
  e_kind : string;
  e_args : Jmini.v;
}

type loaded = {
  l_dir : string;
  l_trigger : string;
  l_fired : Time.t;
  l_reason : string;
  l_seed : string;
  l_config : (string * string) list;
  l_digest : string;
  l_scenario : string option;
  l_events : ev list;
  l_spans : Span.t array;
  l_snapshots : (Time.t * Jmini.v) list;
      (** raw snapshot objects; see {!samples_of_snapshot} *)
  l_footprint : (string * string * int * int * int) list;
      (** (structure, owner, entries, peak, bytes), table order *)
}

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_file_opt path = if Sys.file_exists path then Some (read_file path) else None

let parse_event line =
  match Jmini.parse_opt line with
  | None -> None
  | Some v -> (
    match
      (Jmini.get_int "ts" v, Jmini.get_int "node" v, Jmini.get_int "instance" v,
       Jmini.get_str "kind" v)
    with
    | Some ts, Some node, Some instance, Some kind ->
      Some { e_time = Time.ns ts; e_node = node; e_instance = instance;
             e_kind = kind; e_args = v }
    | _ -> None)

let parse_lines content parse =
  String.split_on_char '\n' content
  |> List.filter_map (fun line ->
         if String.trim line = "" then None else parse line)

let load ~dir =
  let manifest = Jmini.parse (read_file (Filename.concat dir "manifest.json")) in
  let field name =
    match Jmini.get_str name manifest with
    | Some s -> s
    | None -> failwith (Printf.sprintf "bundle manifest: missing %S" name)
  in
  let config =
    match Jmini.mem "config" manifest with
    | Some (Jmini.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun s -> (k, s)) (Jmini.str v))
        kvs
    | _ -> []
  in
  let events = parse_lines (read_file (Filename.concat dir "audit.jsonl")) parse_event in
  let spans =
    parse_lines (read_file (Filename.concat dir "spans.jsonl")) Span.of_json_opt
    |> Array.of_list
  in
  let snapshots =
    match Jmini.parse_opt (read_file (Filename.concat dir "metrics.json")) with
    | Some (Jmini.Arr snaps) ->
      List.filter_map
        (fun s ->
          Option.map (fun t -> (Time.ns t, s)) (Jmini.get_int "t_ns" s))
        snaps
    | _ -> []
  in
  let footprint =
    match
      Option.bind
        (read_file_opt (Filename.concat dir "footprint.json"))
        Jmini.parse_opt
    with
    | Some (Jmini.Arr rows) ->
      List.filter_map
        (fun r ->
          match
            ( Jmini.get_str "structure" r,
              Jmini.get_str "owner" r,
              Jmini.get_int "entries" r,
              Jmini.get_int "peak" r,
              Jmini.get_int "bytes" r )
          with
          | Some s, Some o, Some e, Some p, Some b -> Some (s, o, e, p, b)
          | _ -> None)
        rows
    | _ -> []
  in
  {
    l_dir = dir;
    l_trigger = field "trigger";
    l_fired =
      Time.ns (Option.value ~default:0 (Jmini.get_int "fired_ns" manifest));
    l_reason = field "reason";
    l_seed = field "seed";
    l_config = config;
    l_digest = field "digest";
    l_scenario = read_file_opt (Filename.concat dir "scenario.scn");
    l_events = events;
    l_spans = spans;
    l_snapshots = snapshots;
    l_footprint = footprint;
  }

(** Flatten one raw snapshot object into (name, labels, numeric value)
    samples; histogram summaries contribute their p99 under
    ["<name>:p99"] alongside the count under ["<name>:count"]. *)
let samples_of_snapshot (snap : Jmini.v) =
  match Jmini.mem "samples" snap with
  | Some (Jmini.Arr samples) ->
    List.filter_map
      (fun s ->
        match (Jmini.get_str "name" s, Jmini.mem "labels" s, Jmini.mem "value" s) with
        | Some name, labels, Some value ->
          let labels =
            match labels with
            | Some (Jmini.Obj kvs) ->
              List.filter_map
                (fun (k, v) -> Option.map (fun x -> (k, x)) (Jmini.str v))
                kvs
            | _ -> []
          in
          (match value with
          | Jmini.Num f -> Some [ (name, labels, f) ]
          | Jmini.Obj _ ->
            let get k = Option.value ~default:0.0 (Jmini.get_num k value) in
            Some
              [
                (name ^ ":count", labels, get "count");
                (name ^ ":p99", labels, get "p99");
              ]
          | _ -> None)
        | _ -> None)
      samples
    |> List.concat
  | _ -> []

(** Recompute the chained digest from the files on disk and compare to
    the manifest. *)
let verify ~dir =
  try
    let l = load ~dir in
    let inc_header =
      Printf.sprintf "bftdoctor-bundle-v2|%s|%d|%s|%s|%s|%s\n" l.l_trigger
        (l.l_fired : Time.t)
        l.l_reason l.l_seed
        (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) l.l_config))
        (match l.l_scenario with Some _ -> "scn" | None -> "-")
    in
    let recomputed =
      chain_digest ~header:inc_header
        ~audit:(read_file (Filename.concat dir "audit.jsonl"))
        ~spans:(read_file (Filename.concat dir "spans.jsonl"))
        ~metrics:(read_file (Filename.concat dir "metrics.json"))
        ~footprint:
          (Option.value ~default:""
             (read_file_opt (Filename.concat dir "footprint.json")))
        ~scenario:l.l_scenario
    in
    if recomputed = l.l_digest then Ok l.l_digest
    else
      Error
        (Printf.sprintf "digest mismatch: manifest %s, recomputed %s"
           l.l_digest recomputed)
  with
  | Sys_error e -> Error e
  | Failure e -> Error e
  | Jmini.Parse_error e -> Error ("manifest parse error: " ^ e)
