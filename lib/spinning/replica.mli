(** The Spinning ordering protocol (Veronese et al., SRDS 2009), as
    analysed in Section III-C of the RBFT paper.

    The primary rotates automatically after every ordered batch: batch
    [s] is proposed by replica [s mod n] (skipping blacklisted
    replicas), with no message exchange for the hand-over. Clients
    broadcast their requests to all replicas; a non-primary replica
    that waits longer than [s_timeout] for a pending request to be
    ordered accuses the current proposer; 2f+1 accusations blacklist
    it (at most f replicas blacklisted, oldest released) and reassign
    the batch, doubling [s_timeout]. Ordering uses MACs only — no
    signatures — which is why Spinning posts the highest fault-free
    throughput in the paper's Figure 7.

    This module is the protocol engine of one replica; the hosting
    {!Node} provides transport, CPU accounting and execution. *)

open Dessim
open Pbftcore.Types

type config = {
  n : int;
  f : int;
  replica_id : int;
  batch_size : int;
  s_timeout : Time.t;  (** 40 ms in the paper's experiments *)
  pipeline : int;  (** batches that may be in flight concurrently *)
}

val default_config : n:int -> f:int -> replica_id:int -> config

type msg =
  | Pre_prepare of { seq : int; descs : request_desc list; attempt : int }
  | Prepare of { seq : int; digest : string; replica : int; attempt : int }
  | Commit of { seq : int; digest : string; replica : int; attempt : int }
  | Accuse of { seq : int; replica : int }

type callbacks = {
  broadcast : msg -> unit;
  deliver : int -> request_desc list -> unit;
}

type adversary = {
  mutable pp_delay : unit -> Time.t;
      (** delay added before each proposal when this replica is the
          proposer — set to just under [s_timeout] for the Figure 3
          attack *)
  mutable silent : bool;
}

type t

(** [create ?clock engine cfg cb]: [?clock] routes the replica's
    accusation timer through a skewable {!Dessim.Clock}; defaults to an
    unskewed clock on [engine]. *)
val create : ?clock:Clock.t -> Engine.t -> config -> callbacks -> t
val adversary : t -> adversary

val submit : ?span:int -> t -> request_desc -> unit
(** [?span] (default [-1]) is the parent span id of a traced request:
    on delivery the replica emits batch-wait / prepare / commit phase
    spans chained under it, and keeps the commit span id for
    {!take_span}. *)

val take_span : t -> id:request_id -> int
(** Collects (and clears) the commit span id recorded for a delivered
    traced request; [-1] if the request was untraced or not delivered
    here. *)

val receive : t -> from:int -> msg -> unit

val proposer_of : t -> seq:int -> int
(** Current proposer for a batch, accounting for blacklisting and
    reassignments. *)

val blacklist : t -> int list
val ordered_count : t -> int
val delivered_seqs : t -> int
val pending_count : t -> int
val current_timeout : t -> Time.t
