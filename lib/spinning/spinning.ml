(** The Spinning baseline (Veronese et al., SRDS 2009), as analysed in
    Section III-C of the RBFT paper: the primary rotates automatically
    after every batch, a static Stimeout guards progress, and accused
    primaries are blacklisted. *)

module Replica = Replica
module Node = Node
module Client = Client
module Cluster = Cluster
