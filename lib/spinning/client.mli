(** Open-loop Spinning client: MAC-authenticated requests broadcast to
    all replicas (the paper notes Spinning clients use UDP multicast);
    accepts a result on f+1 matching replies. *)

open Dessim

type t

val create :
  Engine.t -> Node.msg Bftnet.Network.t -> f:int -> id:int -> ?payload_size:int -> unit -> t

val id : t -> int
val set_rate : t -> float -> unit
val send_one : t -> unit
val sent : t -> int
val completed : t -> int
val latencies : t -> Bftmetrics.Hist.t
