(** Assemble a Spinning deployment. *)

open Dessim

type t

val create :
  ?seed:int64 ->
  ?clients:int ->
  ?payload_size:int ->
  ?service:(unit -> Bftapp.Service.t) ->
  Node.config ->
  t

val engine : t -> Engine.t
val network : t -> Node.msg Bftnet.Network.t
val node : t -> int -> Node.t
val nodes : t -> Node.t array
val client : t -> int -> Client.t
val clients : t -> Client.t array
val run_for : t -> Time.t -> unit
val total_executed : t -> int
val throughput_between : t -> Time.t -> Time.t -> float
val agreement_ok : t -> faulty:int list -> bool
