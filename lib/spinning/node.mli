(** A Spinning replica node: transport, CPU accounting and execution
    around the {!Replica} protocol engine.

    Spinning uses MACs only (no client signatures) and clients
    broadcast requests to all replicas, which is why its fault-free
    throughput tops Figure 7; the per-request bookkeeping constant
    below calibrates the prototype overheads (timer management, UDP
    handling) the paper's numbers embed. *)

open Dessim
open Bftapp

type msg =
  | Request of { desc : Pbftcore.Types.request_desc }
  | Order of Replica.msg
  | Reply of { id : Pbftcore.Types.request_id; result : string; node : int }

type config = {
  f : int;
  batch_size : int;
  s_timeout : Time.t;
  pipeline : int;
  bookkeeping : Time.t;
      (** per-request replica-side overhead (timers, logs); calibrated
          so Spinning lands ~20-30 % above RBFT as in Section VI-B *)
  body_copy_factor : float;
      (** body-copy overhead of ordering messages (cf. Aardvark) *)
  exec_cost : Time.t;
  costs : Bftcrypto.Costmodel.t;
}

val default_config : f:int -> config

type faults = {
  mutable delay_fraction : float;
      (** when > 0, this replica delays each of its proposals by this
          fraction of the current [s_timeout] (0.95 reproduces the
          Figure 3 attack: "a little less than Stimeout") *)
}

type t

val create :
  Engine.t -> msg Bftnet.Network.t -> config -> id:int -> service:Service.t -> t

val start : t -> unit
val id : t -> int
val faults : t -> faults
val replica : t -> Replica.t
val executed_count : t -> int
val executed_counter : t -> Bftmetrics.Throughput.t
val execution_digest : t -> string

val set_clock_factor : t -> float -> unit
(** Skew the node's local clock (the replica's accusation timer). *)

val set_cpu_factor : t -> float -> unit
(** Run the node's module threads at the given speed multiple. *)
