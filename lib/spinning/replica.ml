open Dessim
open Pbftcore.Types

type config = {
  n : int;
  f : int;
  replica_id : int;
  batch_size : int;
  s_timeout : Time.t;
  pipeline : int;
}

let default_config ~n ~f ~replica_id =
  { n; f; replica_id; batch_size = 16; s_timeout = Time.ms 40; pipeline = 4 }

type msg =
  | Pre_prepare of { seq : int; descs : request_desc list; attempt : int }
  | Prepare of { seq : int; digest : string; replica : int; attempt : int }
  | Commit of { seq : int; digest : string; replica : int; attempt : int }
  | Accuse of { seq : int; replica : int }

type callbacks = { broadcast : msg -> unit; deliver : int -> request_desc list -> unit }

type adversary = { mutable pp_delay : unit -> Time.t; mutable silent : bool }

type entry = {
  mutable pp : request_desc list option;
  mutable digest : string;
  mutable attempt : int;  (* reassignment count after accusations *)
  prepares : Pbftcore.Voteset.t;
  commits : Pbftcore.Voteset.t;
  mutable sent_prepare : bool;
  mutable sent_commit : bool;
  accuses : Pbftcore.Voteset.t;
  mutable accused : bool;  (* this replica accused for this seq *)
  mutable proposing : bool;  (* a local proposal is pending issue *)
  mutable delivered : bool;
  mutable t_pp : Time.t;  (* when the PP was adopted, for phase spans *)
  mutable t_prepared : Time.t;  (* when the prepare quorum formed *)
}

type t = {
  engine : Engine.t;
  clock : Clock.t;  (* accusation timers; scalable by the chaos engine *)
  cfg : config;
  cb : callbacks;
  adv : adversary;
  entries : (int, entry) Hashtbl.t;
  known : request_desc Request_id_table.t;
  claimed : unit Request_id_table.t;  (* in some in-flight proposal *)
  delivered_ids : unit Request_id_table.t;
  mutable next_deliver : int;
  mutable blacklist : int list;  (* most recently blacklisted first *)
  mutable timeout : Time.t;
  mutable timer : (int * Engine.timer) option;  (* armed for a seq *)
  mutable ordered : int;
  mutable pp_release : Time.t;
  (* PPs waiting for their requests to arrive from the clients *)
  mutable waiting_pps : (int * int * request_desc list) list;
  (* Traced requests: request id -> (parent span, submit time). On
     delivery the batch-wait/prepare/commit phase spans are emitted
     under the parent and the commit span kept for [take_span]. *)
  span_in : (int * Time.t) Request_id_table.t;
}

let create ?clock engine cfg cb =
  {
    engine;
    clock = (match clock with Some c -> c | None -> Clock.create engine);
    cfg;
    cb;
    adv = { pp_delay = (fun () -> Time.zero); silent = false };
    entries = Hashtbl.create 256;
    known = Request_id_table.create 1024;
    claimed = Request_id_table.create 1024;
    delivered_ids = Request_id_table.create 4096;
    next_deliver = 1;
    blacklist = [];
    timeout = cfg.s_timeout;
    timer = None;
    ordered = 0;
    pp_release = Time.zero;
    waiting_pps = [];
    span_in = Request_id_table.create 64;
  }

let adversary t = t.adv
let blacklist t = t.blacklist
let ordered_count t = t.ordered
let delivered_seqs t = t.next_deliver - 1
let current_timeout t = t.timeout

let pending_count t = Request_id_table.length t.known

let entry_for t seq =
  match Hashtbl.find_opt t.entries seq with
  | Some e -> e
  | None ->
    let e =
      {
        pp = None;
        digest = "";
        attempt = 0;
        prepares = Pbftcore.Voteset.create ~n:t.cfg.n;
        commits = Pbftcore.Voteset.create ~n:t.cfg.n;
        sent_prepare = false;
        sent_commit = false;
        accuses = Pbftcore.Voteset.create ~n:t.cfg.n;
        accused = false;
        proposing = false;
        delivered = false;
        t_pp = Time.zero;
        t_prepared = Time.zero;
      }
    in
    Hashtbl.add t.entries seq e;
    e

(* Proposer rotation: batch [seq] belongs to replica [(seq + attempt)
   mod n], skipping currently blacklisted replicas. [attempt] counts
   accusation-driven reassignments of this particular batch. *)
let proposer_of_attempt t ~seq ~attempt =
  (* Walk candidates (seq + k) mod n, skipping blacklisted replicas,
     and take the (attempt+1)-th eligible one. The k bound guards
     against a fully blacklisted rotation (cannot happen: at most f
     replicas are blacklisted). *)
  let rec go k remaining =
    let candidate = (seq + k) mod t.cfg.n in
    if k > 2 * t.cfg.n then candidate
    else if List.mem candidate t.blacklist then go (k + 1) remaining
    else if remaining = 0 then candidate
    else go (k + 1) (remaining - 1)
  in
  go 0 attempt

let proposer_of t ~seq =
  let e = entry_for t seq in
  proposer_of_attempt t ~seq ~attempt:e.attempt

let batch_digest descs = Pbftcore.Messages.batch_digest descs

(* ------------------------------------------------------------------ *)
(* Delivery                                                           *)
(* ------------------------------------------------------------------ *)

let audit t kind =
  Bftaudit.Bus.emit
    {
      Bftaudit.Event.time = Engine.now t.engine;
      node = t.cfg.replica_id;
      instance = 0;
      kind;
    }

(* Spinning rotates the proposer per sequence; the [attempt] counter
   plays the role of a per-sequence view in the audit events. Emitted
   inside the silence gate so a muted replica's votes never appear. *)
let audit_msg t msg =
  match msg with
  | Pre_prepare { seq; descs; attempt } ->
    audit t
      (Bftaudit.Event.Pre_prepare_sent
         {
           view = attempt;
           seq;
           count = List.length descs;
           digest = Pbftcore.Messages.batch_digest descs;
         })
  | Prepare { seq; digest; attempt; _ } ->
    audit t (Bftaudit.Event.Prepare_sent { view = attempt; seq; digest })
  | Commit { seq; digest; attempt; _ } ->
    audit t (Bftaudit.Event.Commit_sent { view = attempt; seq; digest })
  | Accuse { seq; _ } -> audit t (Bftaudit.Event.Accusation { seq })

let broadcast t msg =
  if not t.adv.silent then begin
    if Bftaudit.Bus.active () then audit_msg t msg;
    t.cb.broadcast msg
  end

(* On delivery, emit the per-request ordering phase spans from the
   entry's timing stamps. Stamps are clamped to stay monotonic even
   when a request joined after the PP was adopted. The commit span id
   replaces the parent in [span_in] for [take_span]. *)
let record_phase_spans t (e : entry) fresh =
  let now = Engine.now t.engine in
  let node = t.cfg.replica_id and instance = 0 in
  List.iter
    (fun (d : request_desc) ->
      match Request_id_table.find_opt t.span_in d.id with
      | None -> ()
      | Some (parent, t_sub) ->
        let t_pp = Time.max e.t_pp t_sub in
        let t_prep = Time.min now (Time.max e.t_prepared t_pp) in
        let b =
          Bftspan.Tracer.span ~parent ~tag:Bftspan.Tag.Batch_wait ~node
            ~instance ~t0:t_sub ~t1:t_pp
        in
        let pr =
          Bftspan.Tracer.span ~parent:b ~tag:Bftspan.Tag.Prepare ~node
            ~instance ~t0:t_pp ~t1:t_prep
        in
        let cm =
          Bftspan.Tracer.span ~parent:pr ~tag:Bftspan.Tag.Commit ~node
            ~instance ~t0:t_prep ~t1:now
        in
        Request_id_table.replace t.span_in d.id (cm, now))
    fresh

let take_span t ~id =
  match Request_id_table.find_opt t.span_in id with
  | None -> -1
  | Some (span, _) ->
    Request_id_table.remove t.span_in id;
    span

let rec rearm_timer t =
  (* Watch the oldest undelivered batch whenever requests are pending. *)
  (match t.timer with
   | Some (seq, _) when seq = t.next_deliver -> ()
   | Some (_, timer) ->
     Engine.cancel timer;
     t.timer <- None
   | None -> ());
  if t.timer = None && pending_count t > 0 then begin
    let seq = t.next_deliver in
    let timer =
      Clock.after t.clock t.timeout (fun () ->
          t.timer <- None;
          on_timeout t seq)
    in
    t.timer <- Some (seq, timer)
  end

and on_timeout t seq =
  if seq = t.next_deliver && pending_count t > 0 then begin
    let e = entry_for t seq in
    if (not e.delivered) && not e.accused then begin
      e.accused <- true;
      ignore (Pbftcore.Voteset.add e.accuses t.cfg.replica_id);
      broadcast t (Accuse { seq; replica = t.cfg.replica_id });
      check_accusations t seq
    end
  end

and check_accusations t seq =
  let e = entry_for t seq in
  if (not e.delivered) && Pbftcore.Voteset.count e.accuses >= (2 * t.cfg.f) + 1
  then begin
    (* Quorum: blacklist the proposer of this attempt and reassign. *)
    let culprit = proposer_of_attempt t ~seq ~attempt:e.attempt in
    if not (List.mem culprit t.blacklist) then begin
      t.blacklist <- culprit :: t.blacklist;
      (* At most f blacklisted: release the oldest (Sec. III-C, fn 1). *)
      if List.length t.blacklist > t.cfg.f then begin
        match List.rev t.blacklist with
        | oldest :: _ ->
          t.blacklist <- List.filter (fun r -> r <> oldest) t.blacklist
        | [] -> ()
      end
    end;
    e.attempt <- e.attempt + 1;
    (* Requests of the abandoned batch become claimable again. *)
    (match e.pp with
     | Some descs -> List.iter (fun d -> Request_id_table.remove t.claimed d.id) descs
     | None -> ());
    e.proposing <- false;
    e.pp <- None;
    e.digest <- "";
    e.t_pp <- Time.zero;
    e.t_prepared <- Time.zero;
    Pbftcore.Voteset.clear e.prepares;
    Pbftcore.Voteset.clear e.commits;
    e.sent_prepare <- false;
    e.sent_commit <- false;
    Pbftcore.Voteset.clear e.accuses;
    e.accused <- false;
    t.timeout <- Time.mul_f t.timeout 2.0;
    (match t.timer with
     | Some (_, timer) ->
       Engine.cancel timer;
       t.timer <- None
     | None -> ());
    rearm_timer t;
    maybe_propose t
  end

and try_deliver t =
  let rec go () =
    let e = entry_for t t.next_deliver in
    if
      e.sent_commit
      && Pbftcore.Voteset.count e.commits >= (2 * t.cfg.f) + 1
      && not e.delivered
    then begin
      match e.pp with
      | None -> ()
      | Some descs ->
        e.delivered <- true;
        let seq = t.next_deliver in
        t.next_deliver <- seq + 1;
        let fresh =
          List.filter (fun d -> not (Request_id_table.mem t.delivered_ids d.id)) descs
        in
        List.iter (fun d -> Request_id_table.replace t.delivered_ids d.id ()) fresh;
        (* Delivered requests leave the pending pool for good. *)
        List.iter
          (fun (d : request_desc) ->
            Request_id_table.remove t.known d.id;
            Request_id_table.remove t.claimed d.id)
          descs;
        t.ordered <- t.ordered + List.length fresh;
        if Bftspan.Tracer.active () then record_phase_spans t e fresh;
        if Bftaudit.Bus.active () then
          audit t
            (Bftaudit.Event.Ordered
               { seq; count = List.length fresh; digest = e.digest });
        (* A successful batch resets the timeout (Section III-C). *)
        t.timeout <- t.cfg.s_timeout;
        t.cb.deliver seq fresh;
        (match t.timer with
         | Some (_, timer) ->
           Engine.cancel timer;
           t.timer <- None
         | None -> ());
        rearm_timer t;
        maybe_propose t;
        go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Proposing                                                          *)
(* ------------------------------------------------------------------ *)

and unclaimed_batch t =
  (* Concurrent proposers (the pipeline keeps several rotation slots
     in flight) each pick a different slice of the shared pending pool
     so that their batches rarely overlap; overlaps that do occur are
     deduplicated at delivery. *)
  let want = t.cfg.batch_size * t.cfg.n in
  let acc = ref [] and count = ref 0 in
  (try
     Request_id_table.iter
       (fun id d ->
         if
           (not (Request_id_table.mem t.delivered_ids id))
           && not (Request_id_table.mem t.claimed id)
         then begin
           acc := d :: !acc;
           incr count;
           if !count >= want then raise Exit
         end)
       t.known
   with Exit -> ());
  let all = List.rev !acc in
  let rec drop n = function
    | l when n = 0 -> l
    | [] -> []
    | _ :: tl -> drop (n - 1) tl
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let slice = take t.cfg.batch_size (drop (t.cfg.replica_id * t.cfg.batch_size) all) in
  if slice = [] then take t.cfg.batch_size all else slice

and maybe_propose t =
  if not t.adv.silent then begin
    let horizon = t.next_deliver + t.cfg.pipeline - 1 in
    let rec scan seq =
      if seq <= horizon then begin
        let e = entry_for t seq in
        if
          e.pp = None && (not e.proposing)
          && proposer_of_attempt t ~seq ~attempt:e.attempt = t.cfg.replica_id
        then begin
          let batch = unclaimed_batch t in
          if batch <> [] then begin
            e.proposing <- true;
            List.iter (fun d -> Request_id_table.replace t.claimed d.id ()) batch;
            let attempt = e.attempt in
            let issue () =
              broadcast t (Pre_prepare { seq; descs = batch; attempt });
              accept_pp t ~from:t.cfg.replica_id ~seq ~descs:batch ~attempt
            in
            let delay = t.adv.pp_delay () in
            if delay = Time.zero && t.pp_release <= Engine.now t.engine then issue ()
            else begin
              let release =
                Time.max (Time.add (Engine.now t.engine) delay) t.pp_release
              in
              t.pp_release <- release;
              ignore (Engine.at t.engine release (fun () -> issue ()))
            end
          end
        end;
        scan (seq + 1)
      end
    in
    scan t.next_deliver
  end

and accept_pp t ~from ~seq ~descs ~attempt =
  let e = entry_for t seq in
  if
    (not e.delivered) && e.pp = None && attempt = e.attempt
    && from = proposer_of_attempt t ~seq ~attempt
  then begin
    (* All requests must already be known (clients broadcast to every
       replica); otherwise hold the PP until they arrive. *)
    let all_known =
      List.for_all
        (fun d ->
          Request_id_table.mem t.known d.id
          || Request_id_table.mem t.delivered_ids d.id)
        descs
    in
    if not all_known then
      t.waiting_pps <- (from, seq, descs) :: t.waiting_pps
    else begin
      e.pp <- Some descs;
      e.t_pp <- Engine.now t.engine;
      e.digest <- batch_digest descs;
      List.iter (fun d -> Request_id_table.replace t.claimed d.id ()) descs;
      if from <> t.cfg.replica_id then begin
        e.sent_prepare <- true;
        ignore (Pbftcore.Voteset.add e.prepares t.cfg.replica_id);
        broadcast t
          (Prepare { seq; digest = e.digest; replica = t.cfg.replica_id; attempt })
      end
      else e.sent_prepare <- true;
      maybe_commit t seq e
    end
  end

and maybe_commit t seq (e : entry) =
  if
    (not e.sent_commit) && e.sent_prepare
    && Pbftcore.Voteset.count e.prepares >= 2 * t.cfg.f
  then begin
    e.sent_commit <- true;
    e.t_prepared <- Engine.now t.engine;
    ignore (Pbftcore.Voteset.add e.commits t.cfg.replica_id);
    broadcast t
      (Commit { seq; digest = e.digest; replica = t.cfg.replica_id; attempt = e.attempt });
    try_deliver t
  end

let recheck_waiting t =
  let ready, still =
    List.partition
      (fun (_, _, descs) ->
        List.for_all (fun d -> Request_id_table.mem t.known d.id) descs)
      t.waiting_pps
  in
  t.waiting_pps <- still;
  List.iter
    (fun (from, seq, descs) ->
      let e = entry_for t seq in
      accept_pp t ~from ~seq ~descs ~attempt:e.attempt)
    ready

let submit ?(span = -1) t desc =
  if
    span >= 0
    && (not (Request_id_table.mem t.delivered_ids desc.id))
    && not (Request_id_table.mem t.span_in desc.id)
  then Request_id_table.replace t.span_in desc.id (span, Engine.now t.engine);
  if not (Request_id_table.mem t.known desc.id) then begin
    Request_id_table.replace t.known desc.id desc;
    recheck_waiting t;
    rearm_timer t;
    maybe_propose t
  end

let receive t ~from msg =
  if t.adv.silent then ()
  else
    match msg with
    | Pre_prepare { seq; descs; attempt } -> accept_pp t ~from ~seq ~descs ~attempt
    | Prepare { seq; digest; replica; attempt } ->
      let e = entry_for t seq in
      if
        (not e.delivered) && attempt = e.attempt
        && (e.pp = None || String.equal e.digest digest)
        && Pbftcore.Voteset.add e.prepares replica
      then maybe_commit t seq e
    | Commit { seq; digest; replica; attempt } ->
      let e = entry_for t seq in
      if
        (not e.delivered) && attempt = e.attempt
        && (e.pp = None || String.equal e.digest digest)
        && Pbftcore.Voteset.add e.commits replica
      then try_deliver t
    | Accuse { seq; replica } ->
      let e = entry_for t seq in
      if (not e.delivered) && Pbftcore.Voteset.add e.accuses replica then begin
        (* Join the accusation once f+1 others complain and we also
           have the batch pending. *)
        if
          Pbftcore.Voteset.count e.accuses >= t.cfg.f + 1
          && (not e.accused) && seq = t.next_deliver
        then begin
          e.accused <- true;
          ignore (Pbftcore.Voteset.add e.accuses t.cfg.replica_id);
          broadcast t (Accuse { seq; replica = t.cfg.replica_id })
        end;
        check_accusations t seq
      end
