open Dessim
open Bftcrypto
open Bftnet
open Bftapp
open Pbftcore.Types
module Spans = Bftspan.Tracer

type msg =
  | Request of { desc : request_desc }
  | Order of Replica.msg
  | Reply of { id : request_id; result : string; node : int }

type config = {
  f : int;
  batch_size : int;
  s_timeout : Time.t;
  pipeline : int;
  bookkeeping : Time.t;
  body_copy_factor : float;
  exec_cost : Time.t;
  costs : Costmodel.t;
}

let default_config ~f =
  {
    f;
    batch_size = 16;
    s_timeout = Time.ms 40;
    pipeline = 4;
    bookkeeping = Time.us 12;
    body_copy_factor = 2.0;
    exec_cost = Time.us 1;
    costs = Costmodel.default;
  }

type faults = { mutable delay_fraction : float }

type t = {
  engine : Engine.t;
  clock : Clock.t;  (* accusation timers; skewable by the chaos engine *)
  net : msg Network.t;
  cfg : config;
  id : int;
  service : Service.t;
  ordering : Resource.t;
  execution : Resource.t;
  mutable replica : Replica.t option;
  faults : faults;
  executed : string Request_id_table.t;
  exec_counter : Bftmetrics.Throughput.t;
  mutable exec_count : int;
  mutable exec_digest : string;
}

let id t = t.id
let faults t = t.faults
let replica t = match t.replica with Some r -> r | None -> assert false
let executed_count t = t.exec_count
let executed_counter t = t.exec_counter
let execution_digest t = t.exec_digest

let set_clock_factor t k = Clock.set_factor t.clock k

let set_cpu_factor t s =
  List.iter (fun r -> Resource.set_speed r s) [ t.ordering; t.execution ]

let n_nodes t = (3 * t.cfg.f) + 1

let msg_size t m =
  let mac_auth = n_nodes t * Keys.mac_tag_size in
  match m with
  | Request { desc } -> 16 + desc.op_size + mac_auth
  | Order (Replica.Pre_prepare { descs; _ }) ->
    (* Spinning's ordering messages carry the full requests. *)
    16 + List.fold_left (fun acc d -> acc + id_wire_size + d.op_size) 0 descs + mac_auth
  | Order (Replica.Prepare _ | Replica.Commit _) -> 16 + Sha256.size + mac_auth
  | Order (Replica.Accuse _) -> 16 + 8 + mac_auth
  | Reply { result; _ } -> 16 + String.length result + Keys.mac_tag_size

(* Ordering messages carry full request bodies; the prototype copies
   them through its buffers, which [cost_bytes] accounts for. *)
let cost_bytes t m =
  let size = msg_size t m in
  match m with
  | Order (Replica.Pre_prepare _) ->
    int_of_float (float_of_int size *. t.cfg.body_copy_factor)
  | Order _ | Request _ | Reply _ -> size

let send_from ?(span = -1) ?span_tag t thread ~dst m =
  let size = msg_size t m in
  Resource.charge thread (Costmodel.send t.cfg.costs ~bytes:(cost_bytes t m));
  Network.send ~span ?span_tag t.net ~src:(Principal.node t.id) ~dst ~size m

let broadcast_nodes t thread m =
  let size = msg_size t m in
  Resource.charge thread
    (Costmodel.authenticator_gen t.cfg.costs ~bytes:size ~count:(n_nodes t));
  for dst = 0 to n_nodes t - 1 do
    if dst <> t.id then begin
      Resource.charge thread (Costmodel.send t.cfg.costs ~bytes:(cost_bytes t m));
      Network.send t.net ~src:(Principal.node t.id) ~dst:(Principal.node dst) ~size m
    end
  done

let audit t kind =
  Bftaudit.Bus.emit
    { Bftaudit.Event.time = Engine.now t.engine; node = t.id; instance = 0; kind }

let execute_batch t descs =
  List.iter
    (fun (desc : request_desc) ->
      if not (Request_id_table.mem t.executed desc.id) then begin
        let cost = Time.max t.cfg.exec_cost (t.service.Service.exec_cost desc.op) in
        let ospan =
          if Spans.active () then Replica.take_span (replica t) ~id:desc.id
          else -1
        in
        let espan =
          Spans.job ~parent:ospan ~tag:Bftspan.Tag.Execution ~node:t.id
            ~instance:0 ~now:(Engine.now t.engine)
        in
        Resource.submit ~span:espan t.execution ~cost (fun () ->
            if not (Request_id_table.mem t.executed desc.id) then begin
              let result = t.service.Service.execute desc.op in
              Request_id_table.replace t.executed desc.id result;
              t.exec_count <- t.exec_count + 1;
              if Bftaudit.Bus.active () then
                audit t
                  (Bftaudit.Event.Executed
                     {
                       client = desc.id.client;
                       rid = desc.id.rid;
                       digest = desc.digest;
                     });
              Bftmetrics.Throughput.record t.exec_counter ~now:(Engine.now t.engine);
              t.exec_digest <- Sha256.digest_string (t.exec_digest ^ desc.digest);
              Resource.charge t.execution
                (Costmodel.mac_gen t.cfg.costs ~bytes:(String.length result + 16));
              send_from ~span:espan ~span_tag:Bftspan.Tag.Reply t t.execution
                ~dst:(Principal.client desc.id.client)
                (Reply { id = desc.id; result; node = t.id })
            end)
      end)
    descs

let make_replica t =
  let cfg =
    {
      (Replica.default_config ~n:(n_nodes t) ~f:t.cfg.f ~replica_id:t.id) with
      Replica.batch_size = t.cfg.batch_size;
      s_timeout = t.cfg.s_timeout;
      pipeline = t.cfg.pipeline;
    }
  in
  let broadcast m = broadcast_nodes t t.ordering (Order m) in
  let deliver _seq descs = execute_batch t descs in
  Replica.create ~clock:t.clock t.engine cfg { Replica.broadcast; deliver }

let on_delivery t (d : msg Network.delivery) =
  let base =
    Time.add
      (Costmodel.recv t.cfg.costs ~bytes:(cost_bytes t d.Network.payload))
      (Costmodel.mac_verify t.cfg.costs ~bytes:d.Network.size)
  in
  if d.Network.corrupted then
    (* Failed authenticator: pay the verification cost, then drop. *)
    Resource.submit t.ordering ~cost:base (fun () -> ())
  else
  match d.Network.payload with
  | Request { desc } ->
    (* Per-request bookkeeping: request log entry plus ordering timer
       management. *)
    let vspan =
      Spans.job ~parent:d.Network.span ~tag:Bftspan.Tag.Crypto_verify ~node:t.id
        ~instance:0 ~now:(Engine.now t.engine)
    in
    Resource.submit ~span:vspan t.ordering ~cost:(Time.add base t.cfg.bookkeeping)
      (fun () ->
        if Request_id_table.mem t.executed desc.id then begin
          match Request_id_table.find_opt t.executed desc.id with
          | Some result ->
            send_from t t.ordering ~dst:(Principal.client desc.id.client)
              (Reply { id = desc.id; result; node = t.id })
          | None -> ()
        end
        else begin
          if Bftaudit.Bus.active () then
            audit t
              (Bftaudit.Event.Request_received
                 {
                   client = desc.id.client;
                   rid = desc.id.rid;
                   size = desc.op_size;
                 });
          Replica.submit ~span:vspan (replica t) desc
        end)
  | Order m ->
    let from =
      match d.Network.src with Principal.Node i -> i | Principal.Client _ -> -1
    in
    if from >= 0 then
      Resource.submit t.ordering ~cost:base (fun () ->
          Replica.receive (replica t) ~from m)
  | Reply _ -> ()

let create engine net cfg ~id ~service =
  let mk name = Resource.create engine ~name:(Printf.sprintf "sp%d.%s" id name) in
  let t =
    {
      engine;
      clock = Clock.create engine;
      net;
      cfg;
      id;
      service;
      ordering = mk "ordering";
      execution = mk "execution";
      replica = None;
      faults = { delay_fraction = 0.0 };
      executed = Request_id_table.create 4096;
      exec_counter = Bftmetrics.Throughput.create ();
      exec_count = 0;
      exec_digest = "genesis";
    }
  in
  let r = make_replica t in
  t.replica <- Some r;
  (Replica.adversary r).Replica.pp_delay <-
    (fun () ->
      if t.faults.delay_fraction > 0.0 then
        (* Stay under the accusation timeout even counting the commit
           phase that follows the delayed proposal. *)
        Time.max Time.zero
          (Time.sub
             (Time.mul_f (Replica.current_timeout r) t.faults.delay_fraction)
             (Time.ms 3))
      else Time.zero);
  Network.register_node net id (fun d -> on_delivery t d);
  t

let start _t = ()
