(* Client-id -> owning-instance map for concurrent disjoint-partition
   ordering.

   Every correct node must agree on the owner of a request without
   communication, so the map is a pure function of the client id and
   the instance count. A multiplicative bit-mix (splitmix64's
   finalizer) spreads consecutive client ids across instances; plain
   [client mod instances] would alias with striped client-id
   assignment schemes and leave some instance starved. *)

type t = { instances : int }

let create ~instances =
  if instances <= 0 then
    invalid_arg "Partitioner.create: instances must be positive";
  { instances }

let instances t = t.instances

let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let owner t ~client =
  if t.instances = 1 then 0
  else
    let h = mix64 (Int64.add (Int64.of_int client) 0x9e3779b97f4a7c15L) in
    Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int t.instances))
