(** Deterministic round-robin merge of per-instance committed batch
    streams into one global execution order.

    The merge is a pure function of the per-instance streams (which
    PBFT safety makes identical at every correct node): round r emits
    the r-th committed batch of instance 0, then of instance 1, and so
    on. Idle instances are kept flowing by consensus-ordered no-op
    heartbeat batches, so the merge never has to make a node-local
    skip decision. A stream that genuinely stops (primary crashed, or
    mid view-change) shows up as a head-of-line stall whose age feeds
    monitoring, the doctor's seq-stall trigger, and the
    stall-triggered instance change. *)

type 'a t

type stats = {
  merged : int;  (** batches emitted so far *)
  rounds : int;  (** completed full round-robin rounds *)
  pending : int;  (** batches queued behind the head-of-line instance *)
  gaps : int;  (** per-instance seqno jumps seen (state transfers) *)
  stalled_instance : int option;
      (** the instance the merge is waiting on, if any batch is stuck *)
}

val create : instances:int -> emit:(instance:int -> seq:int -> 'a -> unit) -> 'a t
(** [create ~instances ~emit] builds a sequencer over [instances]
    streams. [emit] is called synchronously from {!push}, in global
    execution order, once per merged batch. *)

val push : 'a t -> instance:int -> seq:int -> now:Dessim.Time.t -> 'a -> unit
(** [push t ~instance ~seq ~now payload] appends a committed batch to
    [instance]'s stream and drains everything the round-robin order
    now permits. Batches of one instance must be pushed in seqno
    order (gaps from state transfers are allowed and counted). *)

val stall : 'a t -> now:Dessim.Time.t -> (int * Dessim.Time.t) option
(** [stall t ~now] is [Some (instance, age)] when a merged-order
    predecessor is missing: some batch is queued but the round-robin
    cursor's instance has not committed its next batch for [age]. *)

val backlog : 'a t -> instance:int -> int
(** [backlog t ~instance] is the number of [instance] batches queued
    behind the round-robin cursor — how far that stream has run ahead
    of the merge. An idle primary uses this to pace its no-op
    heartbeats: emitting one while already ahead only lengthens the
    queue every later real batch of the stream must sit behind. *)

val stats : 'a t -> stats
val instances : 'a t -> int
