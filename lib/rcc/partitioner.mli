(** Deterministic client-id -> owning-instance map.

    In [rbft-concurrent] mode each of the f+1 protocol instances
    orders only the requests of the clients it owns; the owner must be
    computable identically at every node with no coordination, so it
    is a pure hash of the client id. *)

type t

val create : instances:int -> t
(** [create ~instances] builds a partitioner over [instances] (>= 1)
    instances. Raises [Invalid_argument] on a non-positive count. *)

val instances : t -> int

val owner : t -> client:int -> int
(** [owner t ~client] is the instance that orders requests from
    [client], in [0 .. instances-1]. Stable across nodes and runs. *)
