(* Deterministic merge of per-instance committed batch streams into
   one global execution order.

   Each protocol instance delivers its committed batches in seqno
   order (PBFT safety makes that stream identical at every correct
   node). The sequencer interleaves the streams round-robin: global
   round r executes per-instance batch r of instance 0, then of
   instance 1, ... The merge is a pure function of the per-instance
   streams — it never consults local time or queue depth — so every
   correct node computes the same global order.

   An instance with nothing to order would stall the round-robin
   forever; the bounded-wait skip of an idle instance is therefore
   materialised *inside* consensus: an idle primary orders an empty
   no-op heartbeat batch (see Pbftcore.Replica.set_noop_interval), so
   the skip itself is agreed upon and the merge stays deterministic.
   The only remaining stall is a partition whose instance genuinely
   stops committing (primary crashed or in a view change); the
   sequencer surfaces that as a head-of-line stall age for monitoring,
   the doctor's seq-stall trigger, and the stall-triggered instance
   change.

   Per-instance seqnos are carried for observability and gap
   accounting (a checkpoint state transfer skips seqnos); arrival
   order per instance *is* seqno order, so the merge itself keys only
   on arrival order and survives gaps without special cases. *)

open Dessim

type 'a t = {
  instances : int;
  emit : instance:int -> seq:int -> 'a -> unit;
  queues : (int * 'a) Queue.t array;  (* (seq, payload), arrival order *)
  expected : int array;  (* next seqno per instance, for gap accounting *)
  mutable cursor : int;  (* instance whose batch the merge needs next *)
  mutable rounds : int;  (* completed full round-robin rounds *)
  mutable merged : int;  (* batches emitted *)
  mutable pending : int;  (* batches queued behind the cursor *)
  mutable gaps : int;  (* seqno jumps observed (state transfers) *)
  mutable stalled : bool;
  mutable stall_since : Time.t;  (* valid when [stalled] *)
}

type stats = {
  merged : int;
  rounds : int;
  pending : int;
  gaps : int;
  stalled_instance : int option;
}

let create ~instances ~emit =
  if instances <= 0 then
    invalid_arg "Sequencer.create: instances must be positive";
  {
    instances;
    emit;
    queues = Array.init instances (fun _ -> Queue.create ());
    expected = Array.make instances 1;
    cursor = 0;
    rounds = 0;
    merged = 0;
    pending = 0;
    gaps = 0;
    stalled = false;
    stall_since = Time.zero;
  }

let drain t ~now =
  let progressed = ref true in
  let progressed_any = ref false in
  while !progressed do
    progressed := false;
    let inst = t.cursor in
    let q = t.queues.(inst) in
    if not (Queue.is_empty q) then begin
      let seq, payload = Queue.pop q in
      t.pending <- t.pending - 1;
      t.merged <- t.merged + 1;
      t.cursor <- inst + 1;
      if t.cursor = t.instances then begin
        t.cursor <- 0;
        t.rounds <- t.rounds + 1
      end;
      t.emit ~instance:inst ~seq payload;
      progressed := true;
      progressed_any := true
    end
  done;
  (* A stall measures time since the merge last *progressed*, not
     since batches first queued: one stream running a few batches
     ahead of the cursor's under load is normal and must not age into
     a stall while the merge keeps moving. *)
  if t.pending > 0 then begin
    if !progressed_any || not t.stalled then begin
      t.stalled <- true;
      t.stall_since <- now
    end
  end
  else t.stalled <- false

let push t ~instance ~seq ~now payload =
  if instance < 0 || instance >= t.instances then
    invalid_arg "Sequencer.push: instance out of range";
  if seq > t.expected.(instance) then t.gaps <- t.gaps + 1;
  t.expected.(instance) <- seq + 1;
  Queue.push (seq, payload) t.queues.(instance);
  t.pending <- t.pending + 1;
  drain t ~now

let stall t ~now =
  if t.stalled && t.pending > 0 then
    Some (t.cursor, Time.sub now t.stall_since)
  else None

let backlog t ~instance =
  if instance < 0 || instance >= t.instances then
    invalid_arg "Sequencer.backlog: instance out of range";
  Queue.length t.queues.(instance)

let stats (t : 'a t) =
  {
    merged = t.merged;
    rounds = t.rounds;
    pending = t.pending;
    gaps = t.gaps;
    stalled_instance = (if t.stalled && t.pending > 0 then Some t.cursor else None);
  }

let instances t = t.instances
