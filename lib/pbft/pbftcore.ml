(** The PBFT-style ordering instance used by RBFT (one per protocol
    instance) and by the Aardvark baseline. *)

module Types = Types
module Messages = Messages
module Replica = Replica
module Codec = Codec
