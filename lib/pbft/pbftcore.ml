(** The PBFT-style ordering instance used by RBFT (one per protocol
    instance) and by the Aardvark baseline. *)

module Types = Types
module Voteset = Voteset
module Messages = Messages
module Replica = Replica
module Codec = Codec
