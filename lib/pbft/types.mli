(** Shared vocabulary of the ordering protocol. *)

type request_id = { client : int; rid : int }
(** A request is identified by its issuing client and a per-client
    sequence number, as in the paper's REQUEST message. *)

val compare_request_id : request_id -> request_id -> int
val pp_request_id : Format.formatter -> request_id -> unit

type request_desc = {
  id : request_id;
  digest : string;  (** SHA-256 of the operation payload *)
  op : string;  (** the operation itself (kept for execution) *)
  op_size : int;
      (** wire size of the full operation; identifiers-only ordering
          puts only [digest] on the wire, full-request ordering puts
          [op_size] bytes *)
  flagged_heavy : bool;  (** true for the Prime attack's 1 ms requests *)
}
(** What the ordering instances manipulate. The paper's RBFT instances
    "do not order the whole request but only its identifiers (client
    id, request id and digest)" — [op] never crosses the simulated wire
    unless [order_full_requests] is set. *)

val desc_of_op : client:int -> rid:int -> string -> request_desc
(** Build a descriptor, hashing the operation. *)

val id_wire_size : int
(** Bytes an identifier triple (client, rid, digest) occupies. *)

type view = int
type seqno = int

module Request_id_map : Map.S with type key = request_id
module Request_id_set : Set.S with type elt = request_id
module Request_id_table : Hashtbl.S with type key = request_id
