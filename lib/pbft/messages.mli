(** Messages of one ordering instance (the 3-phase commit protocol of
    PBFT, steps 3–5 in the paper's Figure 5, plus view change and
    checkpoint traffic).

    Every constructor stores only what the real message carries; the
    [wire_size] function computes the on-the-wire footprint (including
    the MAC authenticator) that the network substrate charges for. *)

open Types

type pre_prepare = {
  view : view;
  seq : seqno;
  descs : request_desc list;  (** the ordered batch *)
}

type prepared_proof = {
  pseq : seqno;
  pview : view;
  pdigest : string;
  pdescs : request_desc list;
      (** the batch behind [pdigest] (identifiers only), so the new
          primary can re-propose a certificate whose PRE-PREPARE it
          never received *)
}
(** Prepared certificate carried by VIEW-CHANGE messages: the sender
    collected 2f matching PREPAREs for [pdigest] at [pseq] in [pview].
    The new primary re-proposes, per sequence number, the certificate
    with the highest [pview] across 2f+1 VIEW-CHANGEs (the new-view
    computation of PBFT), which is what keeps a batch committed at one
    replica from being displaced in a later view. *)

type t =
  | Pre_prepare of pre_prepare
  | Prepare of { view : view; seq : seqno; digest : string; replica : int }
  | Commit of { view : view; seq : seqno; digest : string; replica : int }
  | Checkpoint of { seq : seqno; state_digest : string; replica : int }
  | View_change of {
      new_view : view;
      last_stable : seqno;
      prepared : prepared_proof list;
      replica : int;
    }
  | New_view of { view : view; pre_prepares : pre_prepare list; replica : int }

val batch_digest : request_desc list -> string
(** Digest binding a batch's identifiers; what PREPARE/COMMIT refer
    to. *)

val wire_size : n:int -> order_full_requests:bool -> t -> int
(** [wire_size ~n ~order_full_requests m] in bytes. [n] sizes the MAC
    authenticator; with [order_full_requests] PRE-PREPAREs carry whole
    operations (Aardvark's behaviour), otherwise identifiers only
    (RBFT's instances, Section IV-B step 2). *)

val type_tag : t -> string
(** Short label, for traces and tests. *)

val pp : Format.formatter -> t -> unit
