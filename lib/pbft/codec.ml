open Types
open Bftnet

let tag_pre_prepare = 1
let tag_prepare = 2
let tag_commit = 3
let tag_checkpoint = 4
let tag_view_change = 5
let tag_new_view = 6

let encode_desc ~order_full_requests w (d : request_desc) =
  Wire.Writer.u32 w d.id.client;
  Wire.Writer.u64 w d.id.rid;
  Wire.Writer.bytes w d.digest;
  Wire.Writer.u8 w (if d.flagged_heavy then 1 else 0);
  if order_full_requests then Wire.Writer.string w d.op
  else Wire.Writer.varint w d.op_size

let decode_desc ~order_full_requests r =
  let client = Wire.Reader.u32 r in
  let rid = Wire.Reader.u64 r in
  let digest = Wire.Reader.bytes r Bftcrypto.Sha256.size in
  let flagged_heavy = Wire.Reader.u8 r = 1 in
  if order_full_requests then begin
    let op = Wire.Reader.string r in
    { id = { client; rid }; digest; op; op_size = String.length op; flagged_heavy }
  end
  else begin
    let op_size = Wire.Reader.varint r in
    { id = { client; rid }; digest; op = ""; op_size; flagged_heavy }
  end

let encode_pp ~order_full_requests w (pp : Messages.pre_prepare) =
  Wire.Writer.u32 w pp.view;
  Wire.Writer.u64 w pp.seq;
  Wire.Writer.list w (encode_desc ~order_full_requests w) pp.descs

let decode_pp ~order_full_requests r : Messages.pre_prepare =
  let view = Wire.Reader.u32 r in
  let seq = Wire.Reader.u64 r in
  let descs = Wire.Reader.list r (decode_desc ~order_full_requests) in
  { view; seq; descs }

let encode ~order_full_requests msg =
  let w = Wire.Writer.create () in
  (match msg with
   | Messages.Pre_prepare pp ->
     Wire.Writer.u8 w tag_pre_prepare;
     encode_pp ~order_full_requests w pp
   | Messages.Prepare { view; seq; digest; replica } ->
     Wire.Writer.u8 w tag_prepare;
     Wire.Writer.u32 w view;
     Wire.Writer.u64 w seq;
     Wire.Writer.bytes w digest;
     Wire.Writer.u32 w replica
   | Messages.Commit { view; seq; digest; replica } ->
     Wire.Writer.u8 w tag_commit;
     Wire.Writer.u32 w view;
     Wire.Writer.u64 w seq;
     Wire.Writer.bytes w digest;
     Wire.Writer.u32 w replica
   | Messages.Checkpoint { seq; state_digest; replica } ->
     Wire.Writer.u8 w tag_checkpoint;
     Wire.Writer.u64 w seq;
     Wire.Writer.string w state_digest;
     Wire.Writer.u32 w replica
   | Messages.View_change { new_view; last_stable; prepared; replica } ->
     Wire.Writer.u8 w tag_view_change;
     Wire.Writer.u32 w new_view;
     Wire.Writer.u64 w last_stable;
     Wire.Writer.list w
       (fun (p : Messages.prepared_proof) ->
         Wire.Writer.u64 w p.pseq;
         Wire.Writer.u32 w p.pview;
         Wire.Writer.bytes w p.pdigest;
         (* Certificate batches always travel as identifiers. *)
         Wire.Writer.list w
           (encode_desc ~order_full_requests:false w)
           p.pdescs)
       prepared;
     Wire.Writer.u32 w replica
   | Messages.New_view { view; pre_prepares; replica } ->
     Wire.Writer.u8 w tag_new_view;
     Wire.Writer.u32 w view;
     (* Re-proposed batches always travel as identifiers. *)
     Wire.Writer.list w (encode_pp ~order_full_requests:false w) pre_prepares;
     Wire.Writer.u32 w replica);
  Wire.Writer.contents w

let decode ~order_full_requests s =
  match
    let r = Wire.Reader.of_string s in
    let tag = Wire.Reader.u8 r in
    let msg =
      if tag = tag_pre_prepare then
        Some (Messages.Pre_prepare (decode_pp ~order_full_requests r))
      else if tag = tag_prepare then begin
        let view = Wire.Reader.u32 r in
        let seq = Wire.Reader.u64 r in
        let digest = Wire.Reader.bytes r Bftcrypto.Sha256.size in
        let replica = Wire.Reader.u32 r in
        Some (Messages.Prepare { view; seq; digest; replica })
      end
      else if tag = tag_commit then begin
        let view = Wire.Reader.u32 r in
        let seq = Wire.Reader.u64 r in
        let digest = Wire.Reader.bytes r Bftcrypto.Sha256.size in
        let replica = Wire.Reader.u32 r in
        Some (Messages.Commit { view; seq; digest; replica })
      end
      else if tag = tag_checkpoint then begin
        let seq = Wire.Reader.u64 r in
        let state_digest = Wire.Reader.string r in
        let replica = Wire.Reader.u32 r in
        Some (Messages.Checkpoint { seq; state_digest; replica })
      end
      else if tag = tag_view_change then begin
        let new_view = Wire.Reader.u32 r in
        let last_stable = Wire.Reader.u64 r in
        let prepared =
          Wire.Reader.list r (fun r ->
              let pseq = Wire.Reader.u64 r in
              let pview = Wire.Reader.u32 r in
              let pdigest = Wire.Reader.bytes r Bftcrypto.Sha256.size in
              let pdescs =
                Wire.Reader.list r (decode_desc ~order_full_requests:false)
              in
              { Messages.pseq; pview; pdigest; pdescs })
        in
        let replica = Wire.Reader.u32 r in
        Some (Messages.View_change { new_view; last_stable; prepared; replica })
      end
      else if tag = tag_new_view then begin
        let view = Wire.Reader.u32 r in
        let pre_prepares = Wire.Reader.list r (decode_pp ~order_full_requests:false) in
        let replica = Wire.Reader.u32 r in
        Some (Messages.New_view { view; pre_prepares; replica })
      end
      else None
    in
    match msg with
    | Some _ when Wire.Reader.at_end r -> msg
    | Some _ | None -> None
  with
  | v -> v
  | exception Wire.Reader.Truncated -> None
