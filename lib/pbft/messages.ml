open Types

type pre_prepare = { view : view; seq : seqno; descs : request_desc list }

(* A prepared certificate carried in a VIEW-CHANGE: this replica
   collected 2f matching PREPAREs for [pdigest] at [pseq] in [pview].
   [pdescs] is the batch behind the digest (identifiers only), so the
   new primary can re-propose a certificate it never saw the
   PRE-PREPARE of — the role of the new-view computation in PBFT. *)
type prepared_proof = {
  pseq : seqno;
  pview : view;
  pdigest : string;
  pdescs : request_desc list;
}

type t =
  | Pre_prepare of pre_prepare
  | Prepare of { view : view; seq : seqno; digest : string; replica : int }
  | Commit of { view : view; seq : seqno; digest : string; replica : int }
  | Checkpoint of { seq : seqno; state_digest : string; replica : int }
  | View_change of {
      new_view : view;
      last_stable : seqno;
      prepared : prepared_proof list;
      replica : int;
    }
  | New_view of { view : view; pre_prepares : pre_prepare list; replica : int }

let batch_digest descs =
  let buf = Buffer.create (List.length descs * 48) in
  List.iter
    (fun d ->
      Buffer.add_string buf (string_of_int d.id.client);
      Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int d.id.rid);
      Buffer.add_string buf d.digest)
    descs;
  Bftcrypto.Sha256.digest_string (Buffer.contents buf)

let header_size = 16 (* type tag, view, seq, replica id *)

let mac_auth_size ~n = n * Bftcrypto.Keys.mac_tag_size

let pre_prepare_size ~n ~order_full_requests pp =
  let per_desc d =
    if order_full_requests then id_wire_size + d.op_size else id_wire_size
  in
  header_size
  + List.fold_left (fun acc d -> acc + per_desc d) 0 pp.descs
  + mac_auth_size ~n

let wire_size ~n ~order_full_requests = function
  | Pre_prepare pp -> pre_prepare_size ~n ~order_full_requests pp
  | Prepare _ | Commit _ ->
    header_size + Bftcrypto.Sha256.size + mac_auth_size ~n
  | Checkpoint _ -> header_size + Bftcrypto.Sha256.size + mac_auth_size ~n
  | View_change { prepared; _ } ->
    header_size + 8
    + List.fold_left
        (fun acc (p : prepared_proof) ->
          acc + 12 + Bftcrypto.Sha256.size
          + (List.length p.pdescs * id_wire_size))
        0 prepared
    + mac_auth_size ~n
  | New_view { pre_prepares; _ } ->
    header_size
    + List.fold_left
        (fun acc pp -> acc + pre_prepare_size ~n ~order_full_requests:false pp)
        0 pre_prepares
    + mac_auth_size ~n

let type_tag = function
  | Pre_prepare _ -> "pre-prepare"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Checkpoint _ -> "checkpoint"
  | View_change _ -> "view-change"
  | New_view _ -> "new-view"

let pp fmt = function
  | Pre_prepare { view; seq; descs } ->
    Format.fprintf fmt "PRE-PREPARE(v=%d,s=%d,|b|=%d)" view seq (List.length descs)
  | Prepare { view; seq; replica; _ } ->
    Format.fprintf fmt "PREPARE(v=%d,s=%d,r=%d)" view seq replica
  | Commit { view; seq; replica; _ } ->
    Format.fprintf fmt "COMMIT(v=%d,s=%d,r=%d)" view seq replica
  | Checkpoint { seq; replica; _ } ->
    Format.fprintf fmt "CHECKPOINT(s=%d,r=%d)" seq replica
  | View_change { new_view; replica; _ } ->
    Format.fprintf fmt "VIEW-CHANGE(v=%d,r=%d)" new_view replica
  | New_view { view; pre_prepares; _ } ->
    Format.fprintf fmt "NEW-VIEW(v=%d,|pp|=%d)" view (List.length pre_prepares)
