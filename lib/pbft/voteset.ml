(* Fixed-size bitset vote sets keyed by replica id.

   Replaces the assoc-list vote tracking that used to sit on the
   ordering hot path: every PREPARE/COMMIT used to cons onto a
   [(replica, digest) list] and every quorum check walked it with
   [List.filter] + [List.length]. A vote set is one heap block per
   entry, votes are bits, and the quorum check is a field read.

   The module lives in [Pbftcore] (not the RBFT core library) because
   every protocol stack — pbft/aardvark, the RBFT node, spinning,
   prime — already depends on [pbftcore], while the reverse dependency
   would be circular. *)

type t = { n : int; mutable mask : int; mutable count : int }

(* Replica ids index bits of one immediate int: [n] is 3f+1 (a few
   tens at most in any configuration the harness runs), far below the
   62-bit ceiling. *)
let max_n = Sys.int_size - 1

let create ~n =
  if n < 0 || n > max_n then
    invalid_arg (Printf.sprintf "Voteset.create: n = %d (max %d)" n max_n);
  { n; mask = 0; count = 0 }

let n t = t.n
let count t = t.count
let is_empty t = t.count = 0

let mem t r = r >= 0 && r < t.n && t.mask land (1 lsl r) <> 0

(* Out-of-range ids (a malformed or hostile message) are rejected, not
   an error: the assoc lists silently accepted them, the bitset
   silently drops them — either way they never reach a quorum. *)
let add t r =
  if r < 0 || r >= t.n then false
  else begin
    let bit = 1 lsl r in
    if t.mask land bit <> 0 then false
    else begin
      t.mask <- t.mask lor bit;
      t.count <- t.count + 1;
      true
    end
  end

let clear t =
  t.mask <- 0;
  t.count <- 0

let iter f t =
  let m = ref t.mask in
  while !m <> 0 do
    let low = !m land -(!m) in
    (* log2 of a single set bit *)
    let r = ref 0 and b = ref low in
    while !b > 1 do
      b := !b lsr 1;
      incr r
    done;
    f !r;
    m := !m land lnot low
  done

let to_list t =
  let acc = ref [] in
  iter (fun r -> acc := r :: !acc) t;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Digest-tagged votes                                                *)
(* ------------------------------------------------------------------ *)

(* PBFT prepares/commits endorse a batch digest, and votes may arrive
   before the PRE-PREPARE fixes it. [Tagged] keeps, next to the voter
   bitset, each replica's endorsed digest and a running count of the
   votes matching the current reference digest, so the hot-path quorum
   check ([matching]) stays O(1). While the reference is unset every
   vote counts provisionally — the semantics the assoc-list code
   implemented with a per-message [List.filter]. *)
module Tagged = struct
  type nonrec t = {
    votes : t;  (* who voted, regardless of digest *)
    digests : string array;  (* digests.(r) valid iff [mem votes r] *)
    mutable reference : string;  (* "" = not fixed yet *)
    mutable matching : int;  (* votes with digest = reference *)
  }

  let create ~n =
    { votes = create ~n; digests = Array.make n ""; reference = ""; matching = 0 }

  let count t = t.votes.count
  let mem t r = mem t.votes r
  let reference t = t.reference

  let matching t =
    if String.length t.reference = 0 then t.votes.count else t.matching

  let add t ~replica ~digest =
    if add t.votes replica then begin
      (* [add] proved [replica] in range. *)
      Array.unsafe_set t.digests replica digest;
      if String.length t.reference > 0 && String.equal digest t.reference then
        t.matching <- t.matching + 1;
      true
    end
    else false

  let set_reference t digest =
    if not (String.equal t.reference digest) then begin
      t.reference <- digest;
      if String.length digest = 0 then t.matching <- 0
      else begin
        let m = ref 0 in
        iter
          (fun r -> if String.equal t.digests.(r) digest then incr m)
          t.votes;
        t.matching <- !m
      end
    end

  let clear t =
    clear t.votes;
    t.matching <- 0
end
