(** Binary wire codec for instance messages.

    The simulator passes messages as values and only charges for their
    {!Messages.wire_size}; this codec makes the format concrete — it
    is what the bytes on the simulated wire look like, and the tests
    check that [wire_size] agrees with the encoded length.

    With identifier ordering (RBFT), PRE-PREPAREs carry request
    identifiers only: the operation body is {e not} on the wire, so
    decoding restores every field except [op] (left empty, with
    [op_size] preserved). With [order_full_requests] the body travels
    too and the roundtrip is exact. *)

open Types

val encode : order_full_requests:bool -> Messages.t -> string

val decode : order_full_requests:bool -> string -> Messages.t option
(** [None] on malformed input (truncated, bad tag, trailing bytes). *)

val encode_desc : order_full_requests:bool -> Bftnet.Wire.Writer.t -> request_desc -> unit
val decode_desc : order_full_requests:bool -> Bftnet.Wire.Reader.t -> request_desc
