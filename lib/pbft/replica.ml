open Dessim
open Types

type config = {
  n : int;
  f : int;
  replica_id : int;
  instance : int;  (* protocol instance id for audit events (RBFT runs f+1) *)
  primary_of_view : view -> int;
  batch_size : int;
  batch_delay : Time.t;
  checkpoint_interval : int;
  watermark_window : int;
  order_full_requests : bool;
  post_vc_quiet : Time.t;
}

let default_config ~n ~f ~replica_id =
  {
    n;
    f;
    replica_id;
    instance = 0;
    primary_of_view = (fun v -> v mod n);
    batch_size = 64;
    batch_delay = Time.ms 2;
    checkpoint_interval = 128;
    watermark_window = 256;
    order_full_requests = false;
    post_vc_quiet = Time.zero;
  }

type callbacks = {
  send : int -> Messages.t -> unit;
  broadcast : Messages.t -> unit;
  deliver : seqno -> request_desc list -> unit;
  on_view_change : view -> unit;
}

type adversary = {
  mutable silent : bool;
  mutable pp_extra_delay : unit -> Time.t;
  mutable pp_rate_limit : unit -> float;
  mutable client_hold : request_id -> Time.t;
}

type entry = {
  mutable pp : Messages.pre_prepare option;
  mutable pp_view : view;
  mutable digest : string;
  (* Votes are stored with the digest they endorse: votes may arrive
     before the PRE-PREPARE fixes the batch digest, and only matching
     ones count towards the quorums (tracked incrementally by the
     tagged vote sets). *)
  prepares : Voteset.Tagged.t;
  commits : Voteset.Tagged.t;
  mutable sent_prepare : bool;
  mutable sent_commit : bool;
  mutable delivered : bool;
  (* Phase timestamps for latency metrics: when the PRE-PREPARE fixed
     the batch digest locally, and when this replica sent its COMMIT
     (the prepared point). Always set before delivery. *)
  mutable t_pp : Time.t;
  mutable t_prepared : Time.t;
}

(* Metric handles, registered once per replica; hot paths only mutate
   them behind the [Registry.active] gate. *)
type metrics = {
  prepare_latency : Bftmetrics.Hist.t;  (* pre-prepare -> prepared *)
  commit_latency : Bftmetrics.Hist.t;   (* prepared -> delivered *)
  batch_occupancy : Bftmetrics.Hist.t;
  requests_ordered : Bftmetrics.Registry.Counter.t;
  batches_ordered : Bftmetrics.Registry.Counter.t;
  view_changes : Bftmetrics.Registry.Counter.t;
}

let register_metrics (cfg : config) =
  let module Registry = Bftmetrics.Registry in
  let reg = Registry.default in
  let node = string_of_int cfg.replica_id in
  let instance = string_of_int cfg.instance in
  let phase p =
    Registry.histogram reg "bft_phase_latency_seconds"
      ~help:"Ordering pipeline phase latency per replica"
      ~labels:[ ("node", node); ("instance", instance); ("phase", p) ]
  in
  {
    prepare_latency = phase "prepare";
    commit_latency = phase "commit";
    batch_occupancy =
      Registry.histogram reg "bft_batch_occupancy" ~min_value:1.0 ~gamma:1.2
        ~help:"Requests per flushed batch (primary side)"
        ~labels:[ ("node", node); ("instance", instance) ];
    requests_ordered =
      Registry.counter reg "bft_requests_ordered_total"
        ~help:"Requests delivered in total order"
        ~labels:[ ("node", node); ("instance", instance) ];
    batches_ordered =
      Registry.counter reg "bft_batches_ordered_total"
        ~help:"Batches delivered in total order"
        ~labels:[ ("node", node); ("instance", instance) ];
    view_changes =
      Registry.counter reg "bft_view_changes_total"
        ~help:"Views entered (view-change completions)"
        ~labels:[ ("node", node); ("instance", instance) ];
  }

type t = {
  engine : Engine.t;
  clock : Clock.t;  (* local timers; scalable by the chaos engine *)
  cfg : config;
  cb : callbacks;
  adv : adversary;
  mutable view : view;
  mutable in_vc : bool;
  (* Highest view this replica has voted a view change for. A view
     change can wedge when the target view's primary is faulty (it
     never sends NEW-VIEW); a later [force_view_change] must then
     escalate PAST the wedged target rather than re-vote it, or the
     instance never leaves [in_vc]. *)
  mutable vc_target : view;
  mutable vc_completed : int;
  entries : (seqno, entry) Hashtbl.t;
  known : request_desc Request_id_table.t;  (* submitted, available for ordering *)
  delivered_ids : unit Request_id_table.t;
  mutable pending_batch : request_desc list;  (* primary: reversed accumulation *)
  mutable pending_len : int;  (* length of [pending_batch], kept in step *)
  mutable batch_timer : Engine.timer option;
  (* Concurrent (bftrcc) mode: a primary only proposes requests the
     filter admits (its own partition, plus degraded partitions). The
     filter is a node-owned closure so degrade-path changes apply
     without reconfiguring the replica. *)
  mutable batch_filter : (request_desc -> bool) option;
  (* Concurrent mode: an idle primary orders an empty no-op heartbeat
     batch after this long without a pre-prepare, keeping the global
     round-robin merge flowing. [Time.zero] (the default) disables the
     heartbeat entirely — no timer is ever armed. *)
  mutable noop_interval : Time.t;
  (* Pacing brake for the heartbeat: when the gate returns false the
     idle primary holds its no-op. The hosting node points this at its
     merge sequencer so a stream already ahead of the round-robin
     cursor stops inflating the queue every later real batch of the
     stream would have to sit behind. *)
  mutable noop_gate : (unit -> bool) option;
  (* Adaptive batching ({!Bftflow.Batcher}): when set, each flush asks
     the tuner for the (batch size, flush delay) to use instead of the
     static config values. Node-owned closure, like [batch_filter], so
     the policy can probe node-level resources the replica never sees.
     Timing-only: deliberately absent from [fingerprint]. *)
  mutable batch_tuner : (unit -> int * Time.t) option;
  mutable last_pp_at : Time.t;
  mutable next_seq : seqno;  (* primary: next seq to assign *)
  mutable next_deliver : seqno;
  mutable last_stable : seqno;
  mutable chain_digest : string;
  (* checkpoint votes per seq: digest -> voters (few digests per seq) *)
  checkpoints : (seqno, (string * Voteset.t) list ref) Hashtbl.t;
  (* view-change votes: target view -> voters (messages are re-derived
     from local state, never read back from the votes) *)
  vc_votes : (view, Voteset.t) Hashtbl.t;
  (* prepared certificates carried by received VIEW-CHANGE messages,
     keyed (target view, sender). A primary taking over reads these
     back: per sequence number it must re-propose the certificate with
     the highest view across the 2f+1 VIEW-CHANGEs, not whatever its
     local log happens to hold — a batch committed at some replica is
     prepared at 2f+1, so every vote quorum contains a copy of its
     certificate and the new view cannot displace it. *)
  vc_proofs : (view * int, Messages.prepared_proof list) Hashtbl.t;
  mutable ordered_count : int;
  mutable state_transfers : int;
  mutable pp_release : Time.t;  (* pacing floor for adversarial PP delays *)
  (* PPs held because some requests are not yet known locally *)
  mutable waiting_pps : Messages.pre_prepare list;
  (* Traced requests: parent span id + submission instant, keyed by
     request id; consumed at delivery to emit the batch-wait / prepare /
     commit phase spans, then replaced by the commit span id until the
     hosting node collects it with [take_span]. Only sampled requests
     ever enter the table. *)
  span_in : (int * Time.t) Request_id_table.t;
  m : metrics;
}

let create ?clock engine cfg cb =
  {
    engine;
    clock = (match clock with Some c -> c | None -> Clock.create engine);
    cfg;
    cb;
    adv =
      {
        silent = false;
        pp_extra_delay = (fun () -> Time.zero);
        pp_rate_limit = (fun () -> 0.0);
        client_hold = (fun _ -> Time.zero);
      };
    view = 0;
    in_vc = false;
    vc_target = 0;
    vc_completed = 0;
    entries = Hashtbl.create 512;
    known = Request_id_table.create 1024;
    delivered_ids = Request_id_table.create 4096;
    pending_batch = [];
    pending_len = 0;
    batch_timer = None;
    batch_filter = None;
    batch_tuner = None;
    noop_interval = Time.zero;
    noop_gate = None;
    last_pp_at = Time.zero;
    next_seq = 1;
    next_deliver = 1;
    last_stable = 0;
    chain_digest = "genesis";
    checkpoints = Hashtbl.create 16;
    vc_votes = Hashtbl.create 8;
    vc_proofs = Hashtbl.create 8;
    ordered_count = 0;
    state_transfers = 0;
    pp_release = Time.zero;
    waiting_pps = [];
    span_in = Request_id_table.create 64;
    m = register_metrics cfg;
  }

let config t = t.cfg
let adversary t = t.adv
let last_pp_at t = t.last_pp_at
let view t = t.view
let current_primary t = t.cfg.primary_of_view t.view
let is_primary t = current_primary t = t.cfg.replica_id
let in_view_change t = t.in_vc
let ordered_count t = t.ordered_count
let last_delivered_seq t = t.next_deliver - 1
let view_changes_completed t = t.vc_completed

let pending_count t =
  Request_id_table.fold
    (fun id _ acc ->
      if Request_id_table.mem t.delivered_ids id then acc else acc + 1)
    t.known 0

let entry_for t seq =
  match Hashtbl.find_opt t.entries seq with
  | Some e -> e
  | None ->
    let e =
      {
        pp = None;
        pp_view = -1;
        digest = "";
        prepares = Voteset.Tagged.create ~n:t.cfg.n;
        commits = Voteset.Tagged.create ~n:t.cfg.n;
        sent_prepare = false;
        sent_commit = false;
        delivered = false;
        t_pp = Time.zero;
        t_prepared = Time.zero;
      }
    in
    Hashtbl.add t.entries seq e;
    e

let in_window t seq =
  seq > t.last_stable && seq <= t.last_stable + t.cfg.watermark_window

(* Quorum counting: once the PRE-PREPARE has fixed the batch digest,
   only votes endorsing it count; before that, count provisionally.
   Both cases are O(1) field reads on the tagged vote sets; fixing the
   digest re-anchors them. *)
let set_entry_digest (e : entry) digest =
  e.digest <- digest;
  Voteset.Tagged.set_reference e.prepares digest;
  Voteset.Tagged.set_reference e.commits digest

(* ------------------------------------------------------------------ *)
(* Delivery and checkpoints                                           *)
(* ------------------------------------------------------------------ *)

let audit t kind =
  Bftaudit.Bus.emit
    {
      Bftaudit.Event.time = Engine.now t.engine;
      node = t.cfg.replica_id;
      instance = t.cfg.instance;
      kind;
    }

let audit_pp t ~view (pp : Messages.pre_prepare) =
  audit t
    (Bftaudit.Event.Pre_prepare_sent
       {
         view;
         seq = pp.seq;
         count = List.length pp.descs;
         digest = Messages.batch_digest pp.descs;
       })

(* Audit events for outgoing protocol messages are emitted here, inside
   the silence gate, so a muted Byzantine replica's suppressed votes
   never enter the audit record. *)
let audit_msg t (msg : Messages.t) =
  match msg with
  | Messages.Pre_prepare pp -> audit_pp t ~view:pp.view pp
  | Messages.Prepare { view; seq; digest; _ } ->
    audit t (Bftaudit.Event.Prepare_sent { view; seq; digest })
  | Messages.Commit { view; seq; digest; _ } ->
    audit t (Bftaudit.Event.Commit_sent { view; seq; digest })
  | Messages.Checkpoint { seq; state_digest; _ } ->
    audit t (Bftaudit.Event.Checkpoint_sent { seq; digest = state_digest })
  | Messages.View_change { new_view; _ } ->
    audit t (Bftaudit.Event.View_change_sent { view = new_view })
  | Messages.New_view { view; pre_prepares; _ } ->
    (* The new primary's re-proposals stand for its pre-prepares. *)
    List.iter (audit_pp t ~view) pre_prepares

let broadcast t msg =
  if not t.adv.silent then begin
    if Bftaudit.Bus.active () then audit_msg t msg;
    t.cb.broadcast msg
  end

(* Collect the doomed keys first, then remove: [Hashtbl.remove] during
   [Hashtbl.iter] is undefined, and the previous [Hashtbl.copy] of both
   whole tables allocated a full copy on every stable checkpoint. *)
let remove_keys_below table seq =
  let doomed =
    Hashtbl.fold (fun s _ acc -> if s <= seq then s :: acc else acc) table []
  in
  List.iter (Hashtbl.remove table) doomed

let gc_below t seq =
  remove_keys_below t.entries seq;
  remove_keys_below t.checkpoints seq

let accept_checkpoint t ~seq ~state_digest ~replica =
  if seq > t.last_stable then begin
    let votes =
      match Hashtbl.find_opt t.checkpoints seq with
      | Some v -> v
      | None ->
        let v = ref [] in
        Hashtbl.add t.checkpoints seq v;
        v
    in
    let voters =
      match List.assoc_opt state_digest !votes with
      | Some voters -> voters
      | None ->
        let voters = Voteset.create ~n:t.cfg.n in
        votes := (state_digest, voters) :: !votes;
        voters
    in
    ignore (Voteset.add voters replica);
    if Voteset.count voters >= (2 * t.cfg.f) + 1 then begin
      t.last_stable <- seq;
      if Bftaudit.Bus.active () then
        audit t (Bftaudit.Event.Checkpoint_stable { seq; digest = state_digest });
      (* State transfer: a replica that lags behind a stable checkpoint
         (e.g. a view change purged its in-flight quorum state) adopts
         the checkpointed state instead of waiting for batches nobody
         will re-send. Skipped batches are not delivered locally — the
         state arrives wholesale, as in PBFT's state transfer. *)
      if t.next_deliver <= seq then begin
        t.next_deliver <- seq + 1;
        t.chain_digest <- state_digest;
        t.state_transfers <- t.state_transfers + 1
      end;
      (* A primary whose sequence counter fell behind the watermark
         floor could never issue a batch again. *)
      if t.next_seq <= seq then t.next_seq <- seq + 1;
      gc_below t seq
    end
  end

(* A replica's own checkpoint counts towards the 2f+1 quorum. *)
let take_checkpoint t seq =
  broadcast t
    (Messages.Checkpoint
       { seq; state_digest = t.chain_digest; replica = t.cfg.replica_id });
  accept_checkpoint t ~seq ~state_digest:t.chain_digest ~replica:t.cfg.replica_id

(* Per-sampled-request ordering phases, derived from the entry's phase
   stamps at the moment the batch is delivered. Timestamps are clamped
   monotonic: a backup can learn a request *from* the PRE-PREPARE, in
   which case submission follows t_pp. The chain batch-wait -> prepare
   -> commit keeps the tree linear; the commit span id is left in
   [span_in] for the hosting node ([take_span]) to parent execution. *)
let record_phase_spans t (e : entry) fresh =
  let now = Engine.now t.engine in
  let node = t.cfg.replica_id and instance = t.cfg.instance in
  List.iter
    (fun d ->
      match Request_id_table.find_opt t.span_in d.id with
      | None -> ()
      | Some (parent, t_sub) ->
        let t_pp = Time.max e.t_pp t_sub in
        let t_prep = Time.min now (Time.max e.t_prepared t_pp) in
        let b =
          Bftspan.Tracer.span ~parent ~tag:Bftspan.Tag.Batch_wait ~node
            ~instance ~t0:t_sub ~t1:t_pp
        in
        let pr =
          Bftspan.Tracer.span ~parent:b ~tag:Bftspan.Tag.Prepare ~node
            ~instance ~t0:t_pp ~t1:t_prep
        in
        let cm =
          Bftspan.Tracer.span ~parent:pr ~tag:Bftspan.Tag.Commit ~node
            ~instance ~t0:t_prep ~t1:now
        in
        Request_id_table.replace t.span_in d.id (cm, now))
    fresh

let take_span t ~id =
  match Request_id_table.find_opt t.span_in id with
  | None -> -1
  | Some (span, _) ->
    Request_id_table.remove t.span_in id;
    span

let rec try_deliver t =
  match Hashtbl.find_opt t.entries t.next_deliver with
  | Some e when e.delivered ->
    t.next_deliver <- t.next_deliver + 1;
    try_deliver t
  | Some ({ pp = Some pp; _ } as e)
    when Voteset.Tagged.matching e.commits >= (2 * t.cfg.f) + 1 && e.sent_commit ->
    e.delivered <- true;
    let seq = t.next_deliver in
    t.next_deliver <- t.next_deliver + 1;
    (* Filter requests already delivered under an earlier sequence
       number (can happen when a view change re-proposes a batch). *)
    let fresh =
      List.filter
        (fun d -> not (Request_id_table.mem t.delivered_ids d.id))
        pp.descs
    in
    List.iter (fun d -> Request_id_table.replace t.delivered_ids d.id ()) fresh;
    t.ordered_count <- t.ordered_count + List.length fresh;
    if Bftspan.Tracer.active () then record_phase_spans t e fresh;
    if Bftaudit.Bus.active () then
      audit t
        (Bftaudit.Event.Ordered
           { seq; count = List.length fresh; digest = e.digest });
    if Bftmetrics.Registry.active () then begin
      let now = Engine.now t.engine in
      Bftmetrics.Hist.add t.m.prepare_latency
        (Time.to_sec_f (Time.sub e.t_prepared e.t_pp));
      Bftmetrics.Hist.add t.m.commit_latency
        (Time.to_sec_f (Time.sub now e.t_prepared));
      Bftmetrics.Registry.Counter.add t.m.requests_ordered (List.length fresh);
      Bftmetrics.Registry.Counter.inc t.m.batches_ordered
    end;
    t.chain_digest <-
      Bftcrypto.Sha256.digest_string (t.chain_digest ^ Messages.batch_digest pp.descs);
    t.cb.deliver seq fresh;
    if seq mod t.cfg.checkpoint_interval = 0 then take_checkpoint t seq;
    try_deliver t
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Primary batching                                                   *)
(* ------------------------------------------------------------------ *)

let cancel_batch_timer t =
  match t.batch_timer with
  | Some timer ->
    Engine.cancel timer;
    t.batch_timer <- None
  | None -> ()

let maybe_send_commit t seq (e : entry) =
  if
    (not e.sent_commit) && e.sent_prepare
    && Voteset.Tagged.matching e.prepares >= 2 * t.cfg.f
  then begin
    e.sent_commit <- true;
    e.t_prepared <- Engine.now t.engine;
    ignore (Voteset.Tagged.add e.commits ~replica:t.cfg.replica_id ~digest:e.digest);
    broadcast t
      (Messages.Commit
         { view = t.view; seq; digest = e.digest; replica = t.cfg.replica_id });
    try_deliver t
  end

let record_pp t (pp : Messages.pre_prepare) =
  let e = entry_for t pp.seq in
  e.pp <- Some pp;
  e.pp_view <- pp.view;
  set_entry_digest e (Messages.batch_digest pp.descs);
  e.t_pp <- Engine.now t.engine

(* Effective (batch size, flush delay) for the next flush: the static
   config values, or the tuner's live plan when one is installed. *)
let batch_plan t =
  match t.batch_tuner with
  | None -> (t.cfg.batch_size, t.cfg.batch_delay)
  | Some tune ->
    let size, delay = tune () in
    (Stdlib.max 1 size, delay)

let rec flush_batch t =
  cancel_batch_timer t;
  (* [is_primary]: a lingering batch timer on a replica demoted by a
     completed view change must not flush and broadcast a stale batch. *)
  if t.pending_len > 0 && (not t.in_vc) && is_primary t && in_window t t.next_seq
  then begin
    let batch_size, _ = batch_plan t in
    let descs = List.rev t.pending_batch in
    (* The running [pending_len] replaces the [List.length] walks the
       old accounting performed per flush (and per enqueued request in
       [maybe_batch]). *)
    let batch_len = Stdlib.min t.pending_len batch_size in
    let batch, rest =
      if t.pending_len <= batch_size then (descs, [])
      else
        let rec split i acc = function
          | [] -> (List.rev acc, [])
          | l when i = 0 -> (List.rev acc, l)
          | x :: tl -> split (i - 1) (x :: acc) tl
        in
        split batch_size [] descs
    in
    t.pending_batch <- List.rev rest;
    t.pending_len <- t.pending_len - batch_len;
    if Bftmetrics.Registry.active () then
      Bftmetrics.Hist.add t.m.batch_occupancy (float_of_int batch_len);
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let pp = { Messages.view = t.view; seq; descs = batch } in
    record_pp t pp;
    t.last_pp_at <- Engine.now t.engine;
    (* A malicious primary delays the ordering message; the release
       floor keeps successive PRE-PREPAREs FIFO. *)
    let issue () =
      broadcast t (Messages.Pre_prepare pp);
      (* The primary's PRE-PREPARE stands for its PREPARE. *)
      let e = entry_for t pp.seq in
      e.sent_prepare <- true;
      maybe_send_commit t pp.seq e
    in
    let delay = t.adv.pp_extra_delay () in
    let rate_limit = t.adv.pp_rate_limit () in
    if
      delay = Time.zero && rate_limit = 0.0
      && t.pp_release <= Engine.now t.engine
    then issue ()
    else begin
      (* A delaying primary postpones this batch and/or caps the rate
         at which it releases ordered requests (the throughput
         reduction attacks of Sections III and VI-C2). The spacing
         accounts for the actual batch fill. *)
      let interval =
        if rate_limit > 0.0 then
          Time.of_sec_f (float_of_int batch_len /. rate_limit)
        else Time.zero
      in
      let release =
        Time.max
          (Time.add (Engine.now t.engine) delay)
          (Time.add t.pp_release interval)
      in
      t.pp_release <- release;
      (* The delayed closure may fire after a completed view change:
         by then [in_vc] is false again, but issuing would broadcast a
         stale-view PRE-PREPARE and wrongly mark [sent_prepare] on the
         new view's entry for the slot. Only issue while the batch's
         view is still current and this replica is still its primary. *)
      ignore
        (Engine.at t.engine release (fun () ->
             if (not t.in_vc) && pp.Messages.view = t.view && is_primary t then
               issue ()))
    end;
    if t.pending_len > 0 then flush_batch t
  end

let maybe_batch t =
  if is_primary t && not t.in_vc then begin
    let batch_size, batch_delay = batch_plan t in
    if t.pending_len >= batch_size then flush_batch t
    else if t.batch_timer = None && t.pending_len > 0 then
      t.batch_timer <-
        Some (Clock.after t.clock batch_delay (fun () ->
                  t.batch_timer <- None;
                  flush_batch t))
  end

let admits t desc =
  match t.batch_filter with None -> true | Some f -> f desc

let enqueue_for_batching t desc =
  if (not (Request_id_table.mem t.delivered_ids desc.id)) && admits t desc
  then begin
    t.pending_batch <- desc :: t.pending_batch;
    t.pending_len <- t.pending_len + 1;
    maybe_batch t
  end

(* ------------------------------------------------------------------ *)
(* No-op heartbeats (concurrent ordering)                             *)
(* ------------------------------------------------------------------ *)

(* An empty batch ordered through the normal three-phase pipeline. The
   round-robin merge of Bftrcc.Sequencer cannot skip an idle instance
   on local evidence (nodes would diverge), so the skip is itself
   agreed on: the idle primary orders "nothing" and every correct node
   merges the same nothing. Empty batches skip the batch-occupancy
   histogram so they do not dilute the real batching statistics. *)
let flush_noop t =
  if (not t.in_vc) && t.pending_len = 0 && in_window t t.next_seq then begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let pp = { Messages.view = t.view; seq; descs = [] } in
    record_pp t pp;
    t.last_pp_at <- Engine.now t.engine;
    broadcast t (Messages.Pre_prepare pp);
    let e = entry_for t seq in
    e.sent_prepare <- true;
    maybe_send_commit t seq e
  end

let rec arm_noop t =
  ignore
    (Clock.after t.clock t.noop_interval (fun () ->
         if t.noop_interval > Time.zero then begin
           if
             is_primary t && (not t.in_vc) && t.pending_len = 0
             && Time.sub (Engine.now t.engine) t.last_pp_at >= t.noop_interval
             && (match t.noop_gate with None -> true | Some ok -> ok ())
           then flush_noop t;
           arm_noop t
         end))

let set_noop_interval t interval =
  let was = t.noop_interval in
  t.noop_interval <- interval;
  if was = Time.zero && interval > Time.zero then arm_noop t

let set_noop_gate t g = t.noop_gate <- g
let set_batch_filter t f = t.batch_filter <- f
let set_batch_tuner t f = t.batch_tuner <- f

(* ------------------------------------------------------------------ *)
(* Prepares and commits                                               *)
(* ------------------------------------------------------------------ *)

let have_all_requests t (pp : Messages.pre_prepare) =
  List.for_all
    (fun d ->
      Request_id_table.mem t.known d.id
      || Request_id_table.mem t.delivered_ids d.id)
    pp.descs

let maybe_send_prepare t (pp : Messages.pre_prepare) =
  let e = entry_for t pp.seq in
  if not e.sent_prepare then begin
    if is_primary t then begin
      (* The primary's PRE-PREPARE stands for its PREPARE. *)
      e.sent_prepare <- true;
      maybe_send_commit t pp.seq e
    end
    else if have_all_requests t pp then begin
      e.sent_prepare <- true;
      ignore (Voteset.Tagged.add e.prepares ~replica:t.cfg.replica_id ~digest:e.digest);
      broadcast t
        (Messages.Prepare
           { view = t.view; seq = pp.seq; digest = e.digest; replica = t.cfg.replica_id });
      maybe_send_commit t pp.seq e
    end
    else t.waiting_pps <- pp :: t.waiting_pps
  end

let recheck_waiting t =
  let ready, still =
    List.partition (fun pp -> have_all_requests t pp) t.waiting_pps
  in
  t.waiting_pps <- still;
  List.iter (fun pp -> maybe_send_prepare t pp) ready

let accept_pp t ~from (pp : Messages.pre_prepare) =
  if
    pp.view = t.view && (not t.in_vc)
    && from = current_primary t
    && in_window t pp.seq
  then begin
    let e = entry_for t pp.seq in
    let digest = Messages.batch_digest pp.descs in
    let adopt () =
      e.pp <- Some pp;
      e.pp_view <- pp.view;
      set_entry_digest e digest;
      e.t_pp <- Engine.now t.engine;
      (* Track requests for cross-view re-proposal. *)
      List.iter
        (fun d ->
          if not (Request_id_table.mem t.known d.id) then
            Request_id_table.replace t.known d.id d)
        pp.descs;
      maybe_send_prepare t pp;
      maybe_send_commit t pp.seq e
    in
    match e.pp with
    | Some _ when e.digest <> digest ->
      (* A conflicting batch for a slot we already hold one for. From
         the same view this is primary equivocation: ignore. From a
         LATER view it is the new view's decision for the slot (the
         max-view certificate of the new-view computation, or a fresh
         assignment when no certificate survived): adopt it and
         restart the quorum — unless the local batch is committed.
         Committed entries keep their certificates across view changes,
         and a committed batch is prepared at 2f+1 replicas, so the
         new-view computation necessarily re-proposes that same batch:
         ignoring the (impossible) conflict is what makes adoption
         safe. *)
      if
        pp.view > e.pp_view && (not e.delivered)
        && not
             (e.sent_commit
             && Voteset.Tagged.matching e.commits >= (2 * t.cfg.f) + 1)
      then begin
        Voteset.Tagged.clear e.prepares;
        Voteset.Tagged.clear e.commits;
        e.sent_prepare <- false;
        e.sent_commit <- false;
        adopt ()
      end
    | Some _ when e.delivered ->
      (* Delivered: the batch is final here. But the PP may be a later
         view's re-proposal from a replica that could not complete the
         slot before the view change ([enter_view] clears uncommitted
         certificates, so a replica that had sent its commit without
         yet holding 2f+1 of them restarts the slot from scratch).
         Staying mute would wedge that replica's in-order delivery on
         this slot forever: everyone who already delivered never votes
         in the new view, so no fresh certificate can form. Re-announce
         prepare and commit for the delivered digest in the current
         view — re-affirming a final batch is always safe, and those
         votes are exactly what the re-proposer is missing. *)
      if pp.view > e.pp_view && digest = e.digest then begin
        e.pp_view <- pp.view;
        broadcast t
          (Messages.Prepare
             {
               view = t.view;
               seq = pp.seq;
               digest = e.digest;
               replica = t.cfg.replica_id;
             });
        broadcast t
          (Messages.Commit
             {
               view = t.view;
               seq = pp.seq;
               digest = e.digest;
               replica = t.cfg.replica_id;
             })
      end
    | Some _ when e.sent_prepare ->
      () (* duplicate of an already-acknowledged batch *)
    | Some _ | None ->
      (* Fresh in this view — possibly a batch retained from an
         earlier view and re-proposed by the new primary. *)
      adopt ()
  end

let accept_prepare t ~view ~seq ~digest ~replica =
  if view = t.view && (not t.in_vc) && in_window t seq then begin
    let e = entry_for t seq in
    (* Prepares may arrive before the PRE-PREPARE: store them with the
       digest they endorse; only matching ones are counted. *)
    if Voteset.Tagged.add e.prepares ~replica ~digest then
      maybe_send_commit t seq e
  end

let accept_commit t ~view ~seq ~digest ~replica =
  if view = t.view && (not t.in_vc) && in_window t seq then begin
    let e = entry_for t seq in
    if Voteset.Tagged.add e.commits ~replica ~digest then
      if Voteset.Tagged.matching e.commits >= (2 * t.cfg.f) + 1 then
        try_deliver t
  end

(* ------------------------------------------------------------------ *)
(* View changes                                                       *)
(* ------------------------------------------------------------------ *)

let prepared_proofs t =
  Hashtbl.fold
    (fun seq (e : entry) acc ->
      match e.pp with
      | Some pp when e.sent_commit && not e.delivered ->
        {
          Messages.pseq = seq;
          pview = e.pp_view;
          pdigest = e.digest;
          pdescs = pp.descs;
        }
        :: acc
      | Some _ | None -> acc)
    t.entries []

let vc_votes_for t target =
  match Hashtbl.find_opt t.vc_votes target with
  | Some v -> v
  | None ->
    let v = Voteset.create ~n:t.cfg.n in
    Hashtbl.add t.vc_votes target v;
    v

let rec start_view_change t target =
  if target > t.view && not (Voteset.mem (vc_votes_for t target) t.cfg.replica_id)
  then begin
    t.in_vc <- true;
    t.vc_target <- Stdlib.max t.vc_target target;
    cancel_batch_timer t;
    let msg =
      Messages.View_change
        {
          new_view = target;
          last_stable = t.last_stable;
          prepared = prepared_proofs t;
          replica = t.cfg.replica_id;
        }
    in
    ignore (Voteset.add (vc_votes_for t target) t.cfg.replica_id);
    broadcast t msg;
    (* If enough votes already arrived (we were late), finish now. *)
    check_new_view t target
  end

and enter_view t v =
  if Bftaudit.Bus.active () then
    audit t
      (Bftaudit.Event.View_entered { view = v; primary = t.cfg.primary_of_view v });
  t.view <- v;
  t.in_vc <- false;
  (* A batch timer armed while this replica was primary of the old
     view must die with the view: if it survived, its eventual flush
     on the (now demoted) replica would broadcast a batch the new
     primary also re-proposes. *)
  cancel_batch_timer t;
  t.vc_completed <- t.vc_completed + 1;
  if Bftmetrics.Registry.active () then
    Bftmetrics.Registry.Counter.inc t.m.view_changes;
  t.pp_release <- Time.zero;
  (* Reset per-view quorum state for undelivered entries — except:
     - locally committed entries are final (quorum intersection) and
       keep their certificates so they can still be delivered;
     - PRE-PREPAREs are retained so the next primary can re-propose
       the in-flight batches (the role of the new-view computation in
       PBFT); prepares/commits must be re-collected in the new view. *)
  Hashtbl.iter
    (fun _ (e : entry) ->
      if not e.delivered then begin
        let committed =
          e.sent_commit && Voteset.Tagged.matching e.commits >= (2 * t.cfg.f) + 1
        in
        if not committed then begin
          Voteset.Tagged.clear e.prepares;
          Voteset.Tagged.clear e.commits;
          e.sent_prepare <- false;
          e.sent_commit <- false
        end
      end)
    t.entries;
  t.waiting_pps <- [];
  (* Certificates for this and earlier targets are spent. *)
  let dead =
    Hashtbl.fold
      (fun ((target, _) as key) _ acc -> if target <= v then key :: acc else acc)
      t.vc_proofs []
  in
  List.iter (Hashtbl.remove t.vc_proofs) dead;
  t.cb.on_view_change v

and new_primary_repropose t v =
  (* The new-view computation: per sequence number, re-propose the
     batch with the highest view among (a) the prepared certificates
     carried by the VIEW-CHANGE messages that elected this primary and
     (b) this replica's own log. The certificates are what carries a
     batch committed at some replica into the new view — this
     replica's log alone may hold a different (or no) batch for the
     slot, e.g. when the PRE-PREPARE raced the previous view change.
     Every known undelivered request not covered is then re-batched. *)
  let best : (seqno, view * request_desc list) Hashtbl.t =
    Hashtbl.create 64
  in
  let offer seq pview descs =
    match Hashtbl.find_opt best seq with
    | Some (bv, _) when bv >= pview -> ()
    | Some _ | None -> Hashtbl.replace best seq (pview, descs)
  in
  Hashtbl.iter
    (fun seq (e : entry) ->
      match e.pp with
      | Some pp when not e.delivered -> offer seq e.pp_view pp.descs
      | Some _ | None -> ())
    t.entries;
  Hashtbl.iter
    (fun (target, _) proofs ->
      if target = v then
        List.iter
          (fun (p : Messages.prepared_proof) ->
            (* Slots this primary already delivered are re-proposed
               too when a VIEW-CHANGE proof references them: the proof
               means some replica prepared the slot but could not
               finish it, and it needs a fresh certificate in the new
               view (replicas that delivered re-vote on the
               re-proposal; see [accept_pp]). Quorum intersection
               makes the proof's batch the delivered one. Slots at or
               below the stable checkpoint are GC'd here; the wedged
               replica recovers those by state transfer instead. *)
            if p.pseq > t.last_stable then offer p.pseq p.pview p.pdescs)
          proofs)
    t.vc_proofs;
  let reproposed = ref Request_id_set.empty in
  let pps =
    Hashtbl.fold
      (fun seq (pview, descs) acc ->
        ignore pview;
        List.iter
          (fun d -> reproposed := Request_id_set.add d.id !reproposed)
          descs;
        { Messages.view = v; seq; descs } :: acc)
      best []
  in
  let pps = List.sort (fun a b -> compare a.Messages.seq b.Messages.seq) pps in
  let max_seq =
    List.fold_left (fun acc pp -> Stdlib.max acc pp.Messages.seq) t.last_stable pps
  in
  (* Fresh batches must go to sequence numbers nobody has delivered:
     a primary that was out of office while the log advanced would
     otherwise propose into already-delivered slots, which every
     replica ignores. *)
  t.next_seq <- Stdlib.max (Stdlib.max t.next_seq (max_seq + 1)) t.next_deliver;
  enter_view t v;
  (* Model the cost of taking over as primary (history hashing, state
     synchronisation): fresh batches wait for the quiet period. *)
  t.pp_release <- Time.add (Engine.now t.engine) t.cfg.post_vc_quiet;
  List.iter (fun pp -> record_pp t pp) pps;
  broadcast t (Messages.New_view { view = v; pre_prepares = pps; replica = t.cfg.replica_id });
  (* Treat own re-issued PPs as accepted. *)
  List.iter
    (fun pp ->
      let e = entry_for t pp.Messages.seq in
      e.sent_prepare <- true;
      maybe_send_commit t pp.Messages.seq e)
    pps;
  (* Re-batch the rest. *)
  t.pending_batch <- [];
  t.pending_len <- 0;
  Request_id_table.iter
    (fun id d ->
      if
        (not (Request_id_table.mem t.delivered_ids id))
        && (not (Request_id_set.mem id !reproposed))
        && admits t d
      then begin
        t.pending_batch <- d :: t.pending_batch;
        t.pending_len <- t.pending_len + 1
      end)
    t.known;
  maybe_batch t

and check_new_view t target =
  let votes = vc_votes_for t target in
  if
    Voteset.count votes >= (2 * t.cfg.f) + 1
    && t.cfg.primary_of_view target = t.cfg.replica_id
    && t.view < target
  then new_primary_repropose t target

let accept_view_change t ~from ~new_view ~prepared =
  if new_view > t.view then begin
    let votes = vc_votes_for t new_view in
    Hashtbl.replace t.vc_proofs (new_view, from) prepared;
    ignore (Voteset.add votes from);
    (* Join the view change once f+1 votes are seen: at least one
       correct replica wants it. A replica wedged in an earlier view
       change (its target's primary is faulty and never sends
       NEW-VIEW) still joins a strictly later one — higher view
       changes subsume lower. *)
    if
      Voteset.count votes >= t.cfg.f + 1
      && ((not t.in_vc) || new_view > t.vc_target)
    then start_view_change t new_view;
    check_new_view t new_view
  end

let accept_new_view t ~from (v : view) pps =
  if v > t.view && from = t.cfg.primary_of_view v then begin
    enter_view t v;
    let max_seq =
      List.fold_left (fun acc pp -> Stdlib.max acc pp.Messages.seq) t.last_stable pps
    in
    t.next_seq <- Stdlib.max t.next_seq (max_seq + 1);
    List.iter (fun pp -> accept_pp t ~from (( { pp with Messages.view = v } : Messages.pre_prepare))) pps;
    try_deliver t
  end

(* ------------------------------------------------------------------ *)
(* Public entry points                                                *)
(* ------------------------------------------------------------------ *)

let submit ?(span = -1) t desc =
  if
    span >= 0
    && (not (Request_id_table.mem t.delivered_ids desc.id))
    && not (Request_id_table.mem t.span_in desc.id)
  then Request_id_table.replace t.span_in desc.id (span, Engine.now t.engine);
  if not (Request_id_table.mem t.known desc.id) then begin
    Request_id_table.replace t.known desc.id desc;
    if is_primary t && not t.in_vc then begin
      let hold = t.adv.client_hold desc.id in
      if hold = Time.zero then enqueue_for_batching t desc
      else
        ignore (Engine.after t.engine hold (fun () -> enqueue_for_batching t desc))
    end;
    recheck_waiting t
  end

(* A "silent" replica sends nothing ([broadcast] is suppressed) but
   still observes the instance passively: the node it runs on keeps
   seeing what the instance orders — which is how a faulty node's
   monitoring stays informed (Section VI-C2). *)
let receive t ~from msg =
  match msg with
    | Messages.Pre_prepare pp -> accept_pp t ~from pp
    | Messages.Prepare { view; seq; digest; replica } ->
      accept_prepare t ~view ~seq ~digest ~replica
    | Messages.Commit { view; seq; digest; replica } ->
      accept_commit t ~view ~seq ~digest ~replica
    | Messages.Checkpoint { seq; state_digest; replica } ->
      accept_checkpoint t ~seq ~state_digest ~replica
    | Messages.View_change { new_view; prepared; _ } ->
      accept_view_change t ~from ~new_view ~prepared
    | Messages.New_view { view; pre_prepares; _ } ->
      accept_new_view t ~from view pre_prepares

(* Normally the next view; once wedged mid view-change, the view after
   the wedged target — its primary proved unresponsive, re-voting it
   would deadlock the instance. *)
let force_view_change t =
  start_view_change t
    ((if t.in_vc then Stdlib.max t.view t.vc_target else t.view) + 1)

let last_stable t = t.last_stable
let state_transfers t = t.state_transfers

let debug_dump t =
  let head =
    match Hashtbl.find_opt t.entries t.next_deliver with
    | None -> "head:none"
    | Some e ->
      Printf.sprintf "head:{pp=%b view=%d prep=%d com=%d sp=%b sc=%b}"
        (e.pp <> None) e.pp_view
        (Voteset.Tagged.count e.prepares)
        (Voteset.Tagged.count e.commits)
        e.sent_prepare e.sent_commit
  in
  Printf.sprintf
    "view=%d in_vc=%b next_seq=%d next_deliver=%d stable=%d pendbatch=%d waiting=%d release=%s %s"
    t.view t.in_vc t.next_seq t.next_deliver t.last_stable t.pending_len
    (List.length t.waiting_pps)
    (Time.to_string (Time.sub t.pp_release (Engine.now t.engine)))
    head

(* Test hook: the live keys of the entry log, ascending. Pins the
   checkpoint GC behaviour (exactly the post-watermark entries
   survive) without exposing the table itself. *)
let debug_live_seqs t =
  List.sort compare (Hashtbl.fold (fun s _ acc -> s :: acc) t.entries [])

(* Canonical protocol-state digest input for the model checker. Every
   ingredient is sorted or enumerated in a fixed order, so two replicas
   reached by different-but-equivalent schedules stringify identically.
   Deliberately excluded: wall-clock-relative values ([pp_release],
   span/timing bookkeeping, metric handles) — they do not influence
   which protocol actions are possible next. *)
(* Capacity probes ({!Bftcap.Footprint}) over the replica's ordering
   state: the per-seqno log (checkpoint-pruned), the submitted-request
   pool and the delivered-id set (both still append-only — the probes
   exist to make that growth visible per structure). *)
let register_probes t ~owner =
  ignore
    (Bftcap.Footprint.register ~owner ~name:"replica.log"
       ~entries:(fun () -> Hashtbl.length t.entries)
       ~root:(fun () -> Some (Obj.repr t.entries))
       ());
  ignore
    (Bftcap.Footprint.register ~owner ~name:"replica.known"
       ~entries:(fun () -> Request_id_table.length t.known)
       ~root:(fun () -> Some (Obj.repr t.known))
       ());
  ignore
    (Bftcap.Footprint.register ~owner ~name:"replica.delivered_ids"
       ~entries:(fun () -> Request_id_table.length t.delivered_ids)
       ~root:(fun () -> Some (Obj.repr t.delivered_ids))
       ())

let fingerprint t =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* Digests are 32 raw bytes (or sentinels like "genesis"); render a
     12-hex-char prefix so the fingerprint stays printable. *)
  let hex_short s =
    if s = "" then "-"
    else
      let h = Bftcrypto.Sha256.to_hex s in
      if String.length h > 12 then String.sub h 0 12 else h
  in
  add "v=%d vc=%b vcc=%d ns=%d nd=%d ls=%d pend=%d oc=%d st=%d chain=%s;"
    t.view t.in_vc t.vc_completed t.next_seq t.next_deliver t.last_stable
    t.pending_len t.ordered_count t.state_transfers t.chain_digest;
  let members (vs : Voteset.Tagged.t) =
    let b = Buffer.create 8 in
    for r = 0 to t.cfg.n - 1 do
      if Voteset.Tagged.mem vs r then Buffer.add_string b (string_of_int r)
    done;
    Buffer.contents b
  in
  Hashtbl.fold (fun seq e acc -> (seq, e) :: acc) t.entries []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (seq, e) ->
         let pp_desc =
           match e.pp with
           | None -> "-"
           | Some pp ->
             Printf.sprintf "%d/%d:%s" pp.Messages.view pp.Messages.seq
               (String.concat ","
                  (List.map
                     (fun (d : request_desc) -> hex_short d.digest)
                     pp.Messages.descs))
         in
         add "e%d{pp=%s pv=%d dg=%s P=%s/%s C=%s/%s sp=%b sc=%b dl=%b};" seq
           pp_desc e.pp_view
           (hex_short e.digest)
           (members e.prepares)
           (hex_short (Voteset.Tagged.reference e.prepares))
           (members e.commits)
           (hex_short (Voteset.Tagged.reference e.commits))
           e.sent_prepare e.sent_commit e.delivered);
  (* Primary-side batch accumulator, in accumulation order (it is a
     deterministic function of submission order, which the schedule
     fixes). *)
  List.iter
    (fun (d : request_desc) -> add "b%s;" (hex_short d.digest))
    (List.rev t.pending_batch);
  Hashtbl.fold (fun v vs acc -> (v, vs) :: acc) t.vc_votes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (v, vs) ->
         add "vc%d=%s;" v
           (String.concat "," (List.map string_of_int (Voteset.to_list vs))));
  Hashtbl.fold (fun seq cps acc -> (seq, cps) :: acc) t.checkpoints []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (seq, cps) ->
         List.sort compare
           (List.map
              (fun (dg, vs) ->
                Printf.sprintf "%s=%s" (hex_short dg)
                  (String.concat ","
                     (List.map string_of_int (Voteset.to_list vs))))
              !cps)
         |> List.iter (fun s -> add "cp%d{%s};" seq s));
  List.sort compare
    (List.map (fun (pp : Messages.pre_prepare) -> (pp.view, pp.seq)) t.waiting_pps)
  |> List.iter (fun (v, s) -> add "w%d/%d;" v s);
  Buffer.contents buf
