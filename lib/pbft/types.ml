type request_id = { client : int; rid : int }

let compare_request_id a b =
  match Int.compare a.client b.client with
  | 0 -> Int.compare a.rid b.rid
  | c -> c

let pp_request_id fmt { client; rid } = Format.fprintf fmt "c%d/%d" client rid

type request_desc = {
  id : request_id;
  digest : string;
  op : string;
  op_size : int;
  flagged_heavy : bool;
}

let desc_of_op ~client ~rid op =
  {
    id = { client; rid };
    digest = Bftcrypto.Sha256.digest_string op;
    op;
    op_size = String.length op;
    flagged_heavy = false;
  }

(* client (4) + rid (8) + digest (32) *)
let id_wire_size = 44

type view = int
type seqno = int

module Ord = struct
  type t = request_id

  let compare = compare_request_id
end

module Request_id_map = Map.Make (Ord)
module Request_id_set = Set.Make (Ord)

module Hashed = struct
  type t = request_id

  let equal a b = compare_request_id a b = 0
  let hash { client; rid } = (client * 1_000_003) lxor rid
end

module Request_id_table = Hashtbl.Make (Hashed)
