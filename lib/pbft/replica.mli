(** One replica of one ordering instance.

    Implements the 3-phase commit of PBFT as used inside RBFT
    (Section IV-B, steps 3–5): the primary batches request identifiers
    into PRE-PREPAREs; replicas answer with PREPAREs once the node they
    run on has received f+1 copies of each request; 2f matching
    PREPAREs trigger COMMITs; 2f+1 matching COMMITs make the batch
    ordered. Batches are delivered in sequence order, checkpoints
    garbage-collect the log, and view changes are triggered
    {e externally} ({!force_view_change}) — in RBFT a protocol instance
    never changes view by itself, the node's instance-change mechanism
    does it (Section IV-A); Aardvark drives the same entry point from
    its own monitoring policy.

    The replica is transport-agnostic: it emits messages through
    {!callbacks} and receives them through {!receive}. CPU costs are
    charged by the hosting node, not here. *)

open Dessim
open Types

type config = {
  n : int;
  f : int;
  replica_id : int;  (** this replica's id (= node id in RBFT) *)
  instance : int;
      (** protocol instance this replica belongs to, used to tag audit
          events (RBFT runs f+1 instances per node; single-instance
          protocols keep the default 0) *)
  primary_of_view : view -> int;
  batch_size : int;  (** max requests per PRE-PREPARE *)
  batch_delay : Time.t;  (** max wait before sending a partial batch *)
  checkpoint_interval : int;  (** batches between checkpoints *)
  watermark_window : int;  (** max batches in flight past the last stable checkpoint *)
  order_full_requests : bool;
      (** carry whole operations in PRE-PREPAREs (Aardvark) instead of
          identifiers only (RBFT) *)
  post_vc_quiet : Dessim.Time.t;
      (** time a freshly elected primary waits before issuing new
          batches, modelling the recovery cost of a view change (state
          synchronisation, history hashing); zero for RBFT *)
}

val default_config : n:int -> f:int -> replica_id:int -> config
(** Batch 64, 2 ms batch delay, checkpoint every 128 batches, window
    256, identifier ordering, primary = view mod n. *)

type callbacks = {
  send : int -> Messages.t -> unit;  (** unicast to a peer replica *)
  broadcast : Messages.t -> unit;  (** to all other replicas of the instance *)
  deliver : seqno -> request_desc list -> unit;
      (** a batch is ordered; called in strictly increasing [seqno]
          order with duplicates (re-ordered requests) filtered out *)
  on_view_change : view -> unit;
      (** the replica moved to a new view (after NEW-VIEW processing) *)
}

(** Byzantine behaviours a faulty replica can exhibit; all default to
    benign. Mutated directly by attack scenarios. *)
type adversary = {
  mutable silent : bool;
      (** "do not take part in the protocol" (worst-attack-1, action iv) *)
  mutable pp_extra_delay : unit -> Time.t;
      (** extra delay a malicious primary adds before each
          PRE-PREPARE (the delaying attacks of Section III) *)
  mutable pp_rate_limit : unit -> float;
      (** cap, in requests per second, a malicious primary puts on the
          rate it orders — the throughput-throttling form of the same
          attacks; [0.0] (default) means unconstrained *)
  mutable client_hold : request_id -> Time.t;
      (** unfair primary: extra hold applied to a request before it
          becomes eligible for batching (Section VI-C3) *)
}

type t

val create : ?clock:Clock.t -> Engine.t -> config -> callbacks -> t
(** [?clock] routes the replica's local timers (the batch timer) through
    a skewable {!Dessim.Clock}; defaults to an unskewed clock on
    [engine]. *)

val config : t -> config
val adversary : t -> adversary

val submit : ?span:int -> t -> request_desc -> unit
(** The hosting node hands over a request that is ready for ordering
    (after the f+1 PROPAGATE guard in RBFT; after verification in
    Aardvark). Idempotent per request id.

    [?span] (default [-1]) is the parent span id of a traced request:
    on delivery the replica emits batch-wait / prepare / commit phase
    spans chained under it, and keeps the commit span id for
    {!take_span}. *)

val set_batch_filter : t -> (request_desc -> bool) option -> unit
(** Concurrent (bftrcc) ordering: restrict which requests this replica
    proposes when primary. A request the filter rejects is still
    tracked in the known table (so the replica can prepare batches
    proposed by others, and a later filter change can re-admit it) but
    is never enqueued for batching here. [None] (the default) admits
    everything — classic redundant ordering. The node owning the
    replica supplies a closure over its degrade state, so fallback to
    redundant ordering for a degraded partition needs no
    reconfiguration. *)

val set_batch_tuner : t -> (unit -> int * Time.t) option -> unit
(** Adaptive batching: when set, each flush decision asks the tuner
    for the (batch size, flush delay) to use instead of the static
    [batch_size]/[batch_delay] of the config. The hosting node
    supplies a closure over its live load probes (stage backlogs,
    queue depths — see {!Bftflow.Batcher}); sizes below 1 are clamped
    to 1. [None] (the default) keeps the static configuration. The
    tuner affects timing and batch boundaries only, never which
    requests are ordered. *)

val set_noop_interval : t -> Time.t -> unit
(** Concurrent ordering: when primary and idle for this long, order an
    empty no-op heartbeat batch through the normal three-phase
    pipeline, so the deterministic round-robin merge
    ({!Bftrcc.Sequencer}) never waits on a legitimately idle
    partition. [Time.zero] (the default) disables the heartbeat; the
    timer is armed on the first transition to a positive interval. *)

val set_noop_gate : t -> (unit -> bool) option -> unit
(** Concurrent ordering: pace the no-op heartbeat. When set, an idle
    primary consults the gate before ordering a heartbeat and holds it
    while the gate returns [false]. The hosting node points this at
    its merge sequencer ({!Bftrcc.Sequencer.backlog}) so a stream
    already running ahead of the round-robin cursor stops emitting
    heartbeats: each one would queue behind the cursor and add a full
    merge round of latency to every later real batch of the stream.
    [None] (the default) never holds. *)

val last_pp_at : t -> Time.t
(** Instant of the last pre-prepare this replica issued as primary
    (real batch or no-op heartbeat); [Time.zero] if none yet. *)

val take_span : t -> id:request_id -> int
(** Collects (and clears) the commit span id recorded for a delivered
    traced request, so the hosting node can parent execution on the
    ordering chain; [-1] if the request was untraced or not delivered
    here. *)

val receive : t -> from:int -> Messages.t -> unit
(** An instance message arrived from peer replica [from] (already
    authenticated by the node). *)

val force_view_change : t -> unit
(** Start moving to the next view. Safe to call repeatedly; subsequent
    calls while a change is in progress are ignored. *)

val view : t -> view
val is_primary : t -> bool
val current_primary : t -> int
val in_view_change : t -> bool

val ordered_count : t -> int
(** Requests delivered so far (the monitoring counter [nbreqs] of
    Section IV-C). *)

val last_delivered_seq : t -> seqno
val pending_count : t -> int
(** Requests submitted but not yet delivered. *)

val view_changes_completed : t -> int

val last_stable : t -> seqno
(** Sequence number of the last stable checkpoint (garbage-collection
    floor). *)

val state_transfers : t -> int
(** How many times this replica adopted a stable checkpoint wholesale
    because it had fallen behind (PBFT state transfer). A replica that
    state-transferred did not locally deliver the skipped batches. *)

val debug_dump : t -> string
(** One-line internal state summary (sequence counters, watermarks,
    the entry blocking delivery), for development probes and failure
    reports in tests. *)

val debug_live_seqs : t -> seqno list
(** Ascending sequence numbers currently held in the entry log, for
    tests pinning the checkpoint garbage collection. *)

val fingerprint : t -> string
(** Canonical, printable rendering of the protocol-relevant state:
    view/sequence counters, every live entry with its votes and phase
    flags, the pending batch, view-change and checkpoint votes, and
    parked PRE-PREPAREs — all in a fixed order, with no wall-clock or
    metric state. Two replicas with equal fingerprints behave
    identically under any future schedule; the model checker
    ({!Bftmc}) hashes this into its visited-state set. *)

val register_probes : t -> owner:string -> unit
(** Register {!Bftcap.Footprint} probes over the replica's per-seqno
    ordering log, its submitted-request pool and its delivered-id set,
    labelled with [owner] (e.g. ["node-1/i0"]). *)
