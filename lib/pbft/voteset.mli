(** Fixed-size bitset vote sets keyed by replica id.

    The ordering hot path counts prepare/commit/view-change/checkpoint
    quorums once per protocol message; these sets make the three
    operations that dominate it — add a vote, test membership, compare
    the vote count against a quorum — O(1) with no allocation, where
    the previous assoc-list representation consed per vote and walked
    the list per check.

    Replica ids must be in [0, n); anything else is silently rejected
    (hostile messages can carry arbitrary ids). [n] is limited to
    [Sys.int_size - 1] (62 on 64-bit): votes are bits of one
    immediate int. *)

type t

val create : n:int -> t
(** Empty set over replica ids [0 .. n-1]. Raises [Invalid_argument]
    when [n] exceeds [Sys.int_size - 1]. *)

val n : t -> int
val count : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val add : t -> int -> bool
(** [add t r] records replica [r]'s vote; [true] iff it was fresh
    (in range and not yet present). *)

val clear : t -> unit
val iter : (int -> unit) -> t -> unit

val to_list : t -> int list
(** Ascending replica ids, for debug output and tests. *)

(** Votes that endorse a batch digest (PBFT prepares/commits).

    Votes may arrive before the PRE-PREPARE fixes the digest of the
    slot: each vote is stored with the digest it endorses, and
    {!Tagged.matching} counts only votes matching the current
    reference digest — or every vote while the reference is unset
    (provisional counting, the pre-PRE-PREPARE state). The matching
    count is maintained incrementally so the quorum check stays
    O(1); re-fixing the reference ({!Tagged.set_reference}) rescans
    the at-most-[n] recorded votes. *)
module Tagged : sig
  type t

  val create : n:int -> t
  val count : t -> int
  val mem : t -> int -> bool

  val add : t -> replica:int -> digest:string -> bool
  (** [true] iff the vote was fresh; the first vote of a replica wins
      (a replica cannot re-endorse a different digest). *)

  val matching : t -> int
  (** Votes endorsing the reference digest; total votes while the
      reference is unset. *)

  val reference : t -> string
  val set_reference : t -> string -> unit

  val clear : t -> unit
  (** Drop all votes; the reference digest is kept. *)
end
