open Dessim

type config = { t_pp : Time.t; k_lat : float; ping_period : Time.t }

let default_config = { t_pp = Time.ms 10; k_lat = 3.0; ping_period = Time.ms 100 }

(* Estimates use exponential moving averages in seconds. *)
let alpha = 0.25

type t = {
  cfg : config;
  mutable rtt : float;
  mutable exec : float;
  mutable last_pp : Time.t;
  mutable have_pp : bool;
}

let create cfg = { cfg; rtt = 0.0; exec = 0.0; last_pp = Time.zero; have_pp = false }

let config t = t.cfg

let ema current sample =
  if current = 0.0 then sample else ((1.0 -. alpha) *. current) +. (alpha *. sample)

let note_rtt t rtt = t.rtt <- ema t.rtt (Time.to_sec_f rtt)
let note_batch_exec t d = t.exec <- ema t.exec (Time.to_sec_f d)

let note_pre_prepare t ~now =
  t.last_pp <- now;
  t.have_pp <- true

let allowed_gap t =
  Time.add t.cfg.t_pp (Time.of_sec_f (t.cfg.k_lat *. (t.rtt +. t.exec)))

let rtt_estimate t = Time.of_sec_f t.rtt
let exec_estimate t = Time.of_sec_f t.exec

let suspicious t ~now =
  t.have_pp && Time.sub now t.last_pp > allowed_gap t
