(** A Prime replica node (Amir et al., DSN 2008), as analysed in
    Section III-A of the RBFT paper.

    Clients send their (signed) request to one replica; replicas
    broadcast signed PO-REQUESTs so everyone learns every request;
    the primary periodically emits a PRE-PREPARE carrying a cumulative
    summary vector (how many pre-ordered requests of each origin are
    ordered), bounded by a per-origin aggregation window; replicas
    agree on the vector with PREPARE/COMMIT and execute the covered
    requests deterministically. All protocol messages are signed —
    Prime's latency handicap in Figure 7.

    The whole replica runs on a single CPU thread (verification,
    ordering, pings and execution), which is what lets the colluding
    client's heavy requests inflate the measured round-trip times in
    the Figure 1 attack. *)

open Dessim
open Bftapp

type msg =
  | Request of { desc : Pbftcore.Types.request_desc; sig_valid : bool }
  | Po_request of { desc : Pbftcore.Types.request_desc; origin : int; po_seq : int }
  | Pre_prepare of { view : int; seq : int; vector : int array }
  | Prepare of { view : int; seq : int; digest : string; replica : int }
  | Commit of { view : int; seq : int; digest : string; replica : int }
  | Ping of { from : int; nonce : int }
  | Pong of { to_ : int; nonce : int; sent_at : Time.t }
  | Suspect of { view : int; replica : int }
  | Reply of { id : Pbftcore.Types.request_id; result : string; node : int }

type config = {
  f : int;
  monitor : Monitor.config;
  origin_window : int;
      (** max requests per origin covered by one PRE-PREPARE — Prime's
          aggregation/flow-control bound; with the ordering period it
          caps throughput *)
  exec_cost : Time.t;
  heavy_exec_cost : Time.t;  (** 1 ms in the paper's attack *)
  costs : Bftcrypto.Costmodel.t;
  body_copy_factor : float;
      (** body-copy overhead of the PO dissemination path *)
}

val default_config : f:int -> config

type faults = {
  mutable delay_to_limit : bool;
      (** malicious primary: stretch the PRE-PREPARE period to a
          fraction of the monitored allowance (Figure 1 attack) *)
  mutable limit_fraction : float;  (** default 0.9 *)
}

type t

val create :
  Engine.t -> msg Bftnet.Network.t -> config -> id:int -> service:Service.t -> t

val start : t -> unit
val id : t -> int
val faults : t -> faults
val monitor : t -> Monitor.t
val view : t -> int
val executed_count : t -> int
val executed_counter : t -> Bftmetrics.Throughput.t
val execution_digest : t -> string
val suspects_seen : t -> int

val set_clock_factor : t -> float -> unit
(** Skew the node's local clock (pre-prepare and ping loops). *)

val set_cpu_factor : t -> float -> unit
(** Run the node's protocol thread at the given speed multiple. *)
