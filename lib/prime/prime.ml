(** The Prime baseline (Amir et al., DSN 2008), as analysed in
    Section III-A of the RBFT paper: pre-ordering dissemination,
    periodic aggregated ordering by the primary, and RTT-based
    monitoring of the primary's pace. *)

module Monitor = Monitor
module Node = Node
module Client = Client
module Cluster = Cluster
