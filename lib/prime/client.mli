(** Open-loop Prime client: signs each request and sends it to one
    replica (round-robin); the pre-ordering phase disseminates it.
    A faulty client can mark its requests heavy (1 ms execution) — the
    colluding half of the Figure 1 attack. *)

open Dessim

type t

type behaviour = { mutable heavy : bool }

val create :
  Engine.t -> Node.msg Bftnet.Network.t -> f:int -> id:int -> ?payload_size:int -> unit -> t

val id : t -> int
val behaviour : t -> behaviour
val set_rate : t -> float -> unit
val send_one : t -> unit
val sent : t -> int
val completed : t -> int
val latencies : t -> Bftmetrics.Hist.t
