open Dessim
open Bftcrypto
open Bftnet
open Bftapp
open Pbftcore.Types
module Spans = Bftspan.Tracer

type msg =
  | Request of { desc : request_desc; sig_valid : bool }
  | Po_request of { desc : request_desc; origin : int; po_seq : int }
  | Pre_prepare of { view : int; seq : int; vector : int array }
  | Prepare of { view : int; seq : int; digest : string; replica : int }
  | Commit of { view : int; seq : int; digest : string; replica : int }
  | Ping of { from : int; nonce : int }
  | Pong of { to_ : int; nonce : int; sent_at : Time.t }
  | Suspect of { view : int; replica : int }
  | Reply of { id : request_id; result : string; node : int }

type config = {
  f : int;
  monitor : Monitor.config;
  origin_window : int;
  exec_cost : Time.t;
  heavy_exec_cost : Time.t;
  costs : Costmodel.t;
  body_copy_factor : float;
}

let default_config ~f =
  {
    f;
    monitor = Monitor.default_config;
    origin_window = 30;
    exec_cost = Time.us 100;
    heavy_exec_cost = Time.ms 1;
    costs = Costmodel.default;
    body_copy_factor = 6.0;
  }

type faults = { mutable delay_to_limit : bool; mutable limit_fraction : float }

type seq_entry = {
  mutable vector : int array option;
  mutable digest : string;
  prepares : Pbftcore.Voteset.t;
  commits : Pbftcore.Voteset.t;
  mutable sent_prepare : bool;
  mutable sent_commit : bool;
  mutable delivered : bool;
}

type t = {
  engine : Engine.t;
  clock : Clock.t;  (* pp/ping loops; skewable by the chaos engine *)
  net : msg Network.t;
  cfg : config;
  id : int;
  service : Service.t;
  main : Resource.t;  (* single protocol + execution thread *)
  monitor : Monitor.t;
  faults : faults;
  (* Pre-ordering state: per-origin buffers of descs, indexed by po_seq
     (1-based, dense). *)
  po_buffers : request_desc option array array ref;
  po_received : int array;  (* contiguous prefix length per origin *)
  mutable my_po_seq : int;
  ordered_vector : int array;  (* delivered watermark per origin *)
  entries : (int, seq_entry) Hashtbl.t;
  mutable view : int;
  mutable next_seq : int;  (* primary: next PP seq *)
  mutable next_deliver : int;
  suspects : Pbftcore.Voteset.t;  (* replicas voting against current view *)
  mutable suspects_seen : int;
  executed : string Request_id_table.t;
  exec_counter : Bftmetrics.Throughput.t;
  mutable exec_count : int;
  mutable exec_digest : string;
  mutable ping_nonce : int;
  pings_inflight : (int, Time.t) Hashtbl.t;
  (* Traced requests: request id -> (parent span, arrival time). The
     pre-ordering wait (po -> delivery) and execution spans are emitted
     under the parent when the request finally executes. *)
  span_in : (int * Time.t) Request_id_table.t;
  mutable started : bool;
}

let id t = t.id
let faults t = t.faults
let monitor t = t.monitor
let view t = t.view
let executed_count t = t.exec_count
let executed_counter t = t.exec_counter
let execution_digest t = t.exec_digest
let suspects_seen t = t.suspects_seen

let set_clock_factor t k = Clock.set_factor t.clock k
let set_cpu_factor t s = Resource.set_speed t.main s

let n_nodes t = (3 * t.cfg.f) + 1
let primary t = t.view mod n_nodes t
let is_primary t = primary t = t.id

let sig_size = Keys.signature_size

let msg_size t m =
  match m with
  | Request { desc; _ } -> 16 + desc.op_size + sig_size
  | Po_request { desc; _ } -> 24 + desc.op_size + sig_size
  | Pre_prepare { vector; _ } -> 24 + (8 * Array.length vector) + sig_size
  | Prepare _ | Commit _ -> 24 + Sha256.size + sig_size
  | Ping _ | Pong _ -> 24 + sig_size
  | Suspect _ -> 24 + sig_size
  | Reply { result; _ } -> 16 + String.length result + (n_nodes t * 0) + sig_size

(* The PO-REQUEST dissemination copies full request bodies through
   the replica's buffers several times. *)
let cost_bytes t m =
  let size = msg_size t m in
  match m with
  | Po_request _ -> int_of_float (float_of_int size *. t.cfg.body_copy_factor)
  | Request _ | Pre_prepare _ | Prepare _ | Commit _ | Ping _ | Pong _
  | Suspect _ | Reply _ ->
    size

let send_from ?(span = -1) ?span_tag t ~dst m =
  let size = msg_size t m in
  Resource.charge t.main (Costmodel.send t.cfg.costs ~bytes:(cost_bytes t m));
  Network.send ~span ?span_tag t.net ~src:(Principal.node t.id) ~dst ~size m

(* Prime signs every message. *)
let broadcast_signed ?(span = -1) t m =
  let size = msg_size t m in
  Resource.charge t.main (Costmodel.sig_sign t.cfg.costs ~bytes:size);
  for dst = 0 to n_nodes t - 1 do
    if dst <> t.id then begin
      Resource.charge t.main (Costmodel.send t.cfg.costs ~bytes:(cost_bytes t m));
      Network.send ~span t.net ~src:(Principal.node t.id) ~dst:(Principal.node dst)
        ~size m
    end
  done

let vector_digest view seq vector =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int view);
  Buffer.add_char buf ':';
  Buffer.add_string buf (string_of_int seq);
  Array.iter
    (fun v ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v))
    vector;
  Sha256.digest_string (Buffer.contents buf)

let entry_for t seq =
  match Hashtbl.find_opt t.entries seq with
  | Some e -> e
  | None ->
    let e =
      {
        vector = None;
        digest = "";
        prepares = Pbftcore.Voteset.create ~n:(n_nodes t);
        commits = Pbftcore.Voteset.create ~n:(n_nodes t);
        sent_prepare = false;
        sent_commit = false;
        delivered = false;
      }
    in
    Hashtbl.add t.entries seq e;
    e

(* ------------------------------------------------------------------ *)
(* Pre-ordering buffers                                                *)
(* ------------------------------------------------------------------ *)

let buffer_slot t origin po_seq =
  let buffers = !(t.po_buffers) in
  let buf = buffers.(origin) in
  if po_seq >= Array.length buf then begin
    let bigger = Array.make (Stdlib.max (po_seq + 1) (2 * Array.length buf)) None in
    Array.blit buf 0 bigger 0 (Array.length buf);
    buffers.(origin) <- bigger
  end;
  buffers.(origin)

let store_po t ~origin ~po_seq desc =
  let buf = buffer_slot t origin po_seq in
  if buf.(po_seq) = None then begin
    buf.(po_seq) <- Some desc;
    (* Advance the contiguous prefix. *)
    let i = ref t.po_received.(origin) in
    while !i + 1 < Array.length buf && buf.(!i + 1) <> None do
      incr i
    done;
    t.po_received.(origin) <- !i
  end

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

let exec_cost_of t (desc : request_desc) =
  if desc.flagged_heavy then Time.max t.cfg.heavy_exec_cost (t.service.Service.exec_cost desc.op)
  else Time.max t.cfg.exec_cost (t.service.Service.exec_cost desc.op)

let audit t kind =
  Bftaudit.Bus.emit
    { Bftaudit.Event.time = Engine.now t.engine; node = t.id; instance = 0; kind }

let execute_one t (desc : request_desc) =
  if not (Request_id_table.mem t.executed desc.id) then begin
    let cost = exec_cost_of t desc in
    (* Execution runs inline on the main thread ([charge], not
       [submit]), so the execution span is [now, now + cost]. *)
    let espan =
      if not (Spans.active ()) then -1
      else
        match Request_id_table.find_opt t.span_in desc.id with
        | None -> -1
        | Some (parent, t_in) ->
          Request_id_table.remove t.span_in desc.id;
          let now = Engine.now t.engine in
          let b =
            Spans.span ~parent ~tag:Bftspan.Tag.Batch_wait ~node:t.id
              ~instance:0 ~t0:t_in ~t1:now
          in
          Spans.span ~parent:b ~tag:Bftspan.Tag.Execution ~node:t.id ~instance:0
            ~t0:now ~t1:(Time.add now cost)
    in
    (* Execution happens on the main thread: heavy requests delay
       everything behind them, including pong responses. *)
    Resource.charge t.main cost;
    let result = t.service.Service.execute desc.op in
    Request_id_table.replace t.executed desc.id result;
    t.exec_count <- t.exec_count + 1;
    if Bftaudit.Bus.active () then
      audit t
        (Bftaudit.Event.Executed
           { client = desc.id.client; rid = desc.id.rid; digest = desc.digest });
    Bftmetrics.Throughput.record t.exec_counter ~now:(Engine.now t.engine);
    t.exec_digest <- Sha256.digest_string (t.exec_digest ^ desc.digest);
    send_from ~span:espan ~span_tag:Bftspan.Tag.Reply t
      ~dst:(Principal.client desc.id.client)
      (Reply { id = desc.id; result; node = t.id })
  end

let rec try_deliver t =
  let e = entry_for t t.next_deliver in
  match e.vector with
  | Some vector
    when e.sent_commit
         && Pbftcore.Voteset.count e.commits >= (2 * t.cfg.f) + 1
         && not e.delivered ->
    (* Check every covered PO-REQUEST is locally available. *)
    let ready =
      Array.for_all2 (fun have want -> have >= want) t.po_received vector
    in
    if ready then begin
      e.delivered <- true;
      if Bftaudit.Bus.active () then begin
        (* Digest over the summary vector alone (the agreed content):
           Prime's own [vector_digest] also covers the view, which
           would make the same seq hash differently across views and
           defeat the auditor's cross-node agreement check. *)
        let buf = Buffer.create 64 in
        Array.iter
          (fun upto ->
            Buffer.add_string buf (string_of_int upto);
            Buffer.add_char buf ',')
          vector;
        let count =
          let c = ref 0 in
          Array.iteri
            (fun origin upto ->
              c := !c + Stdlib.max 0 (upto - t.ordered_vector.(origin)))
            vector;
          !c
        in
        audit t
          (Bftaudit.Event.Ordered
             {
               seq = t.next_deliver;
               count;
               digest = Sha256.digest_string (Buffer.contents buf);
             })
      end;
      t.next_deliver <- t.next_deliver + 1;
      let exec_start = Engine.now t.engine in
      let buffers = !(t.po_buffers) in
      let total_exec = ref Time.zero in
      Array.iteri
        (fun origin upto ->
          for k = t.ordered_vector.(origin) + 1 to upto do
            match buffers.(origin).(k) with
            | Some desc ->
              total_exec := Time.add !total_exec (exec_cost_of t desc);
              execute_one t desc
            | None -> ()
          done;
          t.ordered_vector.(origin) <- Stdlib.max t.ordered_vector.(origin) upto)
        vector;
      ignore exec_start;
      Monitor.note_batch_exec t.monitor !total_exec;
      try_deliver t
    end
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Agreement on summary vectors                                        *)
(* ------------------------------------------------------------------ *)

let maybe_commit t seq (e : seq_entry) =
  if
    (not e.sent_commit) && e.sent_prepare
    && Pbftcore.Voteset.count e.prepares >= 2 * t.cfg.f
  then begin
    e.sent_commit <- true;
    ignore (Pbftcore.Voteset.add e.commits t.id);
    broadcast_signed t (Commit { view = t.view; seq; digest = e.digest; replica = t.id });
    try_deliver t
  end

let accept_pp t ~from ~view ~seq vector =
  if view = t.view && from = primary t then begin
    Monitor.note_pre_prepare t.monitor ~now:(Engine.now t.engine);
    let e = entry_for t seq in
    if e.vector = None then begin
      e.vector <- Some vector;
      e.digest <- vector_digest view seq vector;
      if from <> t.id then begin
        e.sent_prepare <- true;
        ignore (Pbftcore.Voteset.add e.prepares t.id);
        broadcast_signed t
          (Prepare { view; seq; digest = e.digest; replica = t.id })
      end
      else e.sent_prepare <- true;
      maybe_commit t seq e
    end
  end

(* The primary's periodic aggregation: cover everything pre-ordered,
   bounded by the per-origin window. *)
let build_vector t =
  Array.mapi
    (fun origin delivered ->
      let available = t.po_received.(origin) in
      Stdlib.min available (delivered + t.cfg.origin_window))
    t.ordered_vector

let issue_pre_prepare t =
  if is_primary t then begin
    let vector = build_vector t in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    broadcast_signed t (Pre_prepare { view = t.view; seq; vector });
    accept_pp t ~from:t.id ~view:t.view ~seq vector
  end

let pp_period t =
  if t.faults.delay_to_limit && is_primary t then
    Time.max (Monitor.config t.monitor).Monitor.t_pp
      (Time.mul_f (Monitor.allowed_gap t.monitor) t.faults.limit_fraction)
  else (Monitor.config t.monitor).Monitor.t_pp

let rec arm_pp_loop t =
  ignore
    (Clock.after t.clock (pp_period t) (fun () ->
         Resource.submit t.main ~cost:(Time.us 5) (fun () ->
             issue_pre_prepare t;
             arm_pp_loop t)))

(* ------------------------------------------------------------------ *)
(* Suspicion and view change                                          *)
(* ------------------------------------------------------------------ *)

let enter_view t v =
  if v > t.view then begin
    t.view <- v;
    Pbftcore.Voteset.clear t.suspects;
    (* Re-anchor monitoring in the new view. *)
    Monitor.note_pre_prepare t.monitor ~now:(Engine.now t.engine);
    if is_primary t then t.next_seq <- Stdlib.max t.next_seq t.next_deliver
  end

let note_suspect t ~replica ~view =
  if view = t.view then begin
    if Pbftcore.Voteset.add t.suspects replica then
      t.suspects_seen <- t.suspects_seen + 1;
    if Pbftcore.Voteset.count t.suspects >= (2 * t.cfg.f) + 1 then
      enter_view t (t.view + 1)
  end

let check_suspicion t =
  if (not (is_primary t)) && Monitor.suspicious t.monitor ~now:(Engine.now t.engine)
  then
    if Pbftcore.Voteset.add t.suspects t.id then begin
      broadcast_signed t (Suspect { view = t.view; replica = t.id });
      if Pbftcore.Voteset.count t.suspects >= (2 * t.cfg.f) + 1 then
        enter_view t (t.view + 1)
    end

(* ------------------------------------------------------------------ *)
(* Pings                                                              *)
(* ------------------------------------------------------------------ *)

let rec arm_ping_loop t =
  ignore
    (Clock.after t.clock (Monitor.config t.monitor).Monitor.ping_period (fun () ->
         Resource.submit t.main ~cost:(Time.us 2) (fun () ->
             t.ping_nonce <- t.ping_nonce + 1;
             Hashtbl.replace t.pings_inflight t.ping_nonce (Engine.now t.engine);
             broadcast_signed t (Ping { from = t.id; nonce = t.ping_nonce });
             check_suspicion t;
             arm_ping_loop t)))

(* ------------------------------------------------------------------ *)
(* Inbound                                                            *)
(* ------------------------------------------------------------------ *)

let handle_request t ~span (desc : request_desc) ~sig_valid =
  if Request_id_table.mem t.executed desc.id then begin
    match Request_id_table.find_opt t.executed desc.id with
    | Some result ->
      send_from t ~dst:(Principal.client desc.id.client)
        (Reply { id = desc.id; result; node = t.id })
    | None -> ()
  end
  else begin
    Resource.charge t.main (Costmodel.sig_verify t.cfg.costs ~bytes:desc.op_size);
    if sig_valid then begin
      if span >= 0 && not (Request_id_table.mem t.span_in desc.id) then
        Request_id_table.replace t.span_in desc.id (span, Engine.now t.engine);
      t.my_po_seq <- t.my_po_seq + 1;
      store_po t ~origin:t.id ~po_seq:t.my_po_seq desc;
      broadcast_signed ~span t
        (Po_request { desc; origin = t.id; po_seq = t.my_po_seq })
    end
  end

let on_delivery t (d : msg Network.delivery) =
  let base = Costmodel.recv t.cfg.costs ~bytes:(cost_bytes t d.Network.payload) in
  let verify = Costmodel.sig_verify t.cfg.costs ~bytes:d.Network.size in
  let with_sig = Time.add base verify in
  if d.Network.corrupted then
    (* Failed signature check: pay the verification cost, then drop. *)
    Resource.submit t.main ~cost:with_sig (fun () -> ())
  else
  match d.Network.payload with
  | Request { desc; sig_valid } ->
    let vspan =
      Spans.job ~parent:d.Network.span ~tag:Bftspan.Tag.Crypto_verify ~node:t.id
        ~instance:0 ~now:(Engine.now t.engine)
    in
    Resource.submit ~span:vspan t.main ~cost:base (fun () ->
        handle_request t ~span:vspan desc ~sig_valid)
  | Po_request { desc; origin; po_seq } ->
    let pspan =
      Spans.job ~parent:d.Network.span ~tag:Bftspan.Tag.Propagate ~node:t.id
        ~instance:0 ~now:(Engine.now t.engine)
    in
    Resource.submit ~span:pspan t.main ~cost:with_sig (fun () ->
        if
          pspan >= 0
          && (not (Request_id_table.mem t.executed desc.id))
          && not (Request_id_table.mem t.span_in desc.id)
        then
          Request_id_table.replace t.span_in desc.id (pspan, Engine.now t.engine);
        store_po t ~origin ~po_seq desc;
        try_deliver t)
  | Pre_prepare { view; seq; vector } ->
    let from =
      match d.Network.src with Principal.Node i -> i | Principal.Client _ -> -1
    in
    Resource.submit t.main ~cost:with_sig (fun () ->
        if from >= 0 then accept_pp t ~from ~view ~seq vector)
  | Prepare { view; seq; digest; replica } ->
    Resource.submit t.main ~cost:with_sig (fun () ->
        if view = t.view then begin
          let e = entry_for t seq in
          if
            (e.vector = None || String.equal e.digest digest)
            && Pbftcore.Voteset.add e.prepares replica
          then maybe_commit t seq e
        end)
  | Commit { view; seq; digest; replica } ->
    Resource.submit t.main ~cost:with_sig (fun () ->
        if view = t.view then begin
          let e = entry_for t seq in
          if
            (e.vector = None || String.equal e.digest digest)
            && Pbftcore.Voteset.add e.commits replica
          then try_deliver t
        end)
  | Ping { from; nonce } ->
    Resource.submit t.main ~cost:with_sig (fun () ->
        send_from t ~dst:(Principal.node from)
          (Pong { to_ = from; nonce; sent_at = Time.zero }))
  | Pong { to_; nonce; _ } ->
    Resource.submit t.main ~cost:with_sig (fun () ->
        if to_ = t.id then
          match Hashtbl.find_opt t.pings_inflight nonce with
          | Some sent ->
            Hashtbl.remove t.pings_inflight nonce;
            Monitor.note_rtt t.monitor (Time.sub (Engine.now t.engine) sent)
          | None -> ())
  | Suspect { view; replica } ->
    Resource.submit t.main ~cost:with_sig (fun () -> note_suspect t ~replica ~view)
  | Reply _ -> ()

let create engine net cfg ~id ~service =
  let n = (3 * cfg.f) + 1 in
  let t =
    {
      engine;
      clock = Clock.create engine;
      net;
      cfg;
      id;
      service;
      main = Resource.create engine ~name:(Printf.sprintf "pr%d.main" id);
      monitor = Monitor.create cfg.monitor;
      faults = { delay_to_limit = false; limit_fraction = 0.95 };
      po_buffers = ref (Array.init n (fun _ -> Array.make 1024 None));
      po_received = Array.make n 0;
      my_po_seq = 0;
      ordered_vector = Array.make n 0;
      entries = Hashtbl.create 256;
      view = 0;
      next_seq = 1;
      next_deliver = 1;
      suspects = Pbftcore.Voteset.create ~n;
      suspects_seen = 0;
      executed = Request_id_table.create 4096;
      exec_counter = Bftmetrics.Throughput.create ();
      exec_count = 0;
      exec_digest = "genesis";
      ping_nonce = 0;
      pings_inflight = Hashtbl.create 16;
      span_in = Request_id_table.create 64;
      started = false;
    }
  in
  Network.register_node net id (fun d -> on_delivery t d);
  t

let start t =
  if not t.started then begin
    t.started <- true;
    Monitor.note_pre_prepare t.monitor ~now:(Engine.now t.engine);
    arm_pp_loop t;
    arm_ping_loop t
  end
