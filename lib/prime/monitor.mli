(** Prime's network/execution monitoring (Section III-A of the RBFT
    paper).

    Replicas periodically measure pairwise round-trip times and track
    how long batches take to execute; from these they derive the
    maximum delay a correct primary may let pass between two ordering
    messages:

    [allowed_gap = t_pp + k_lat * (rtt_estimate + exec_estimate)]

    A primary whose PRE-PREPARE gap exceeds the allowance is
    suspected. The RBFT paper's attack (Figure 1) inflates
    [rtt_estimate] and [exec_estimate] with expensive requests from a
    colluding client, widening the allowance that a malicious primary
    may then exploit in full. *)

open Dessim

type t

type config = {
  t_pp : Time.t;  (** nominal ordering period of the primary *)
  k_lat : float;  (** the paper's network-variability constant *)
  ping_period : Time.t;
}

val default_config : config
(** 10 ms ordering period, k_lat = 2, 100 ms pings. *)

val create : config -> t
val config : t -> config

val note_rtt : t -> Time.t -> unit
val note_batch_exec : t -> Time.t -> unit
(** Total execution time of one ordered aggregation round. *)

val note_pre_prepare : t -> now:Time.t -> unit

val allowed_gap : t -> Time.t
(** Current allowance between consecutive PRE-PREPAREs. *)

val rtt_estimate : t -> Time.t
val exec_estimate : t -> Time.t

val suspicious : t -> now:Time.t -> bool
(** The primary's last PRE-PREPARE is older than the allowance. *)
