(** The replicated service interface.

    A BFT protocol orders opaque operation strings; the service
    executes them deterministically and reports the virtual CPU time
    each execution costs (the paper's requests take 0.1 ms, or 1 ms for
    the heavy requests used in the Prime attack). Identical services
    fed the same operation sequence produce identical results and
    state digests — the property the replication protocol preserves. *)

type t = {
  execute : string -> string;
      (** [execute op] applies the operation and returns its result. *)
  exec_cost : string -> Dessim.Time.t;
      (** Virtual CPU time charged to the execution thread. *)
  state_digest : unit -> string;
      (** Digest of the current state, for checkpoints. *)
}

val noop : t
(** A service that ignores operations; zero-cost, constant digest. *)
