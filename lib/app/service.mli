(** The replicated service interface.

    A BFT protocol orders opaque operation strings; the service
    executes them deterministically and reports the virtual CPU time
    each execution costs (the paper's requests take 0.1 ms, or 1 ms for
    the heavy requests used in the Prime attack). Identical services
    fed the same operation sequence produce identical results and
    state digests — the property the replication protocol preserves. *)

type t = {
  execute : string -> string;
      (** [execute op] applies the operation and returns its result. *)
  exec_cost : string -> Dessim.Time.t;
      (** Virtual CPU time charged to the execution thread. *)
  state_digest : unit -> string;
      (** Digest of the current state, for checkpoints. *)
  shard_key : string -> string option;
      (** [shard_key op] names the piece of state [op] touches, when
          operations on distinct keys commute — the declaration that
          lets a node execute independent-key operations on parallel
          execution lanes ({!Params.exec_shards}) without changing any
          observable result. [None] means the operation must execute on
          the serial lane (the safe default for services whose
          operations do not commute, and for undecodable operations). *)
}

val no_shard : string -> string option
(** Constant [None]: the shard-key function of unsharded services. *)

val noop : t
(** A service that ignores operations; zero-cost, constant digest. *)
