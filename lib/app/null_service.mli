(** The benchmark service: requests carry an opaque payload of the
    configured size and execution costs a fixed virtual time. This is
    the workload of the paper's evaluation (request sizes 8 B – 4 kB;
    execution costs 0.1 ms for normal and 1 ms for "heavy" requests in
    the Prime attack of Section III-A). *)

val create : ?exec_cost:Dessim.Time.t -> unit -> Service.t
(** [create ~exec_cost ()] makes a service whose operations all cost
    [exec_cost] (default 1 us) and return a constant reply. Operations
    prefixed with ["heavy:"] cost ten times more, letting faulty
    clients submit expensive requests. *)

val heavy_op : payload:string -> string
(** Build a heavy operation with the given payload. *)

val normal_op : payload:string -> string
