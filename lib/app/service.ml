type t = {
  execute : string -> string;
  exec_cost : string -> Dessim.Time.t;
  state_digest : unit -> string;
}

let noop =
  {
    execute = (fun _ -> "");
    exec_cost = (fun _ -> Dessim.Time.zero);
    state_digest = (fun () -> "noop");
  }
