type t = {
  execute : string -> string;
  exec_cost : string -> Dessim.Time.t;
  state_digest : unit -> string;
  shard_key : string -> string option;
}

let no_shard _ = None

let noop =
  {
    execute = (fun _ -> "");
    exec_cost = (fun _ -> Dessim.Time.zero);
    state_digest = (fun () -> "noop");
    shard_key = no_shard;
  }
