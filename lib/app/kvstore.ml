open Bftnet

type op =
  | Get of string
  | Put of string * string
  | Delete of string
  | Cas of string * string * string

let encode_op op =
  let w = Wire.Writer.create () in
  (match op with
   | Get k ->
     Wire.Writer.u8 w 0;
     Wire.Writer.string w k
   | Put (k, v) ->
     Wire.Writer.u8 w 1;
     Wire.Writer.string w k;
     Wire.Writer.string w v
   | Delete k ->
     Wire.Writer.u8 w 2;
     Wire.Writer.string w k
   | Cas (k, expected, v) ->
     Wire.Writer.u8 w 3;
     Wire.Writer.string w k;
     Wire.Writer.string w expected;
     Wire.Writer.string w v);
  Wire.Writer.contents w

let decode_op s =
  match
    let r = Wire.Reader.of_string s in
    let tag = Wire.Reader.u8 r in
    let op =
      match tag with
      | 0 -> Some (Get (Wire.Reader.string r))
      | 1 ->
        let k = Wire.Reader.string r in
        Some (Put (k, Wire.Reader.string r))
      | 2 -> Some (Delete (Wire.Reader.string r))
      | 3 ->
        let k = Wire.Reader.string r in
        let expected = Wire.Reader.string r in
        Some (Cas (k, expected, Wire.Reader.string r))
      | _ -> None
    in
    match op with Some _ when Wire.Reader.at_end r -> op | Some _ | None -> None
  with
  | v -> v
  | exception Wire.Reader.Truncated -> None

let op_key = function
  | Get k | Delete k -> k
  | Put (k, _) -> k
  | Cas (k, _, _) -> k

type t = {
  mutable store : string Map.Make(String).t;
  exec_cost : Dessim.Time.t;
  mutable version : int;
}

module Smap = Map.Make (String)

let create ?(exec_cost = Dessim.Time.us 1) () =
  { store = Smap.empty; exec_cost; version = 0 }

let apply t op =
  t.version <- t.version + 1;
  match op with
  | Get k -> (match Smap.find_opt k t.store with Some v -> v | None -> "")
  | Put (k, v) ->
    t.store <- Smap.add k v t.store;
    "ok"
  | Delete k ->
    t.store <- Smap.remove k t.store;
    "ok"
  | Cas (k, expected, v) ->
    let current = match Smap.find_opt k t.store with Some x -> x | None -> "" in
    if String.equal current expected then begin
      t.store <- Smap.add k v t.store;
      "ok"
    end
    else "fail:" ^ current

let size t = Smap.cardinal t.store

let digest t =
  let buf = Buffer.create 256 in
  Smap.iter
    (fun k v ->
      Buffer.add_string buf k;
      Buffer.add_char buf '\000';
      Buffer.add_string buf v;
      Buffer.add_char buf '\001')
    t.store;
  Bftcrypto.Sha256.digest_string (Buffer.contents buf)

let service t =
  {
    Service.execute =
      (fun encoded ->
        match decode_op encoded with
        | None -> "error:decode"
        | Some op -> apply t op);
    exec_cost = (fun _ -> t.exec_cost);
    state_digest = (fun () -> digest t);
    shard_key =
      (fun encoded ->
        match decode_op encoded with
        | Some op -> Some (op_key op)
        | None -> None);
  }
