(** A replicated key-value store, the kind of service the paper's
    open-loop motivation cites (ZooKeeper, Boxwood). Operations are
    serialized with the wire codec; execution is deterministic, so all
    correct replicas stay in sync. *)

type op =
  | Get of string
  | Put of string * string
  | Delete of string
  | Cas of string * string * string
      (** [Cas (k, expected, v)] writes [v] only if [k] currently holds
          [expected]. *)

val encode_op : op -> string
val decode_op : string -> op option

val op_key : op -> string
(** The key an operation touches. Operations on distinct keys commute,
    which is what makes the store safe to execute on sharded execution
    lanes ({!Service.t.shard_key}). *)

type t

val create : ?exec_cost:Dessim.Time.t -> unit -> t

val service : t -> Service.t
(** The {!Service.t} view consumed by replication protocols; operations
    that fail to decode return ["error:decode"] and leave the state
    unchanged. *)

val apply : t -> op -> string
(** Direct (non-serialized) application, for tests. *)

val size : t -> int
(** Number of live keys. *)

val digest : t -> string
(** Order-insensitive digest over the live bindings. *)
