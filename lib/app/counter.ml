type t = { mutable value : int }

let create () = { value = 0 }

let value t = t.value

let service t =
  {
    Service.execute =
      (fun op ->
        match op with
        | "inc" ->
          t.value <- t.value + 1;
          string_of_int t.value
        | "get" -> string_of_int t.value
        | _ -> "error");
    exec_cost = (fun _ -> Dessim.Time.us 1);
    state_digest = (fun () -> "counter:" ^ string_of_int t.value);
    shard_key = Service.no_shard;
  }
