open Dessim

let heavy_prefix = "heavy:"

let heavy_op ~payload = heavy_prefix ^ payload
let normal_op ~payload = payload

let is_heavy op =
  String.length op >= String.length heavy_prefix
  && String.sub op 0 (String.length heavy_prefix) = heavy_prefix

let create ?(exec_cost = Time.us 1) () =
  let executed = ref 0 in
  {
    Service.execute =
      (fun _ ->
        incr executed;
        "ok");
    exec_cost =
      (fun op -> if is_heavy op then Time.mul_f exec_cost 10.0 else exec_cost);
    state_digest = (fun () -> Printf.sprintf "null:%d" !executed);
    shard_key = Service.no_shard;
  }
