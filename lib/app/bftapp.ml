(** Replicated applications: the service interface plus the concrete
    services used by examples and benchmarks. *)

module Service = Service
module Kvstore = Kvstore
module Counter = Counter
module Null_service = Null_service
