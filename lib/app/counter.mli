(** A minimal replicated counter used by the quickstart example. *)

type t

val create : unit -> t

val service : t -> Service.t
(** Operations: ["inc"] increments and returns the new value; ["get"]
    returns the current value; anything else returns ["error"]. *)

val value : t -> int
