(** Rendering of experiment results as paper-style tables. *)

type table = {
  id : string;  (** "table1", "fig7a", ... *)
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
      (** comparison notes: what the paper reports vs what we measure *)
}

val print : table -> unit
(** Pretty-print with aligned columns and the notes underneath. *)

val f1 : float -> string
(** One decimal. *)

val f2 : float -> string

val pct : float -> string
(** A ratio as a percentage with one decimal. *)

val kreq : float -> string
(** A req/s value in kreq/s with one decimal. *)
