(** Calibrated saturation points for the experiment harness.

    Peak throughputs were measured once with the capacity probe
    (bin/rbft_sim.exe in its probing configuration) and are anchored
    here at the two request sizes the paper reports (8 B and 4 kB);
    intermediate sizes interpolate the per-request cost (1/rate)
    linearly in the request size, which matches how every per-byte
    cost in the model scales. *)

type protocol = Rbft | Rbft_udp | Rbft_concurrent | Aardvark | Spinning | Prime

val peak_rate : ?f:int -> protocol -> size:int -> float
(** Estimated peak throughput (req/s) at the given request size.
    [?f] (default 1) scales for larger clusters: the f = 2 point is
    measured, higher [f] extrapolate the same per-fault ratio
    geometrically. [Rbft_concurrent] (disjoint-partition ordering,
    {!Bftrcc}) scales its two anchors independently — small requests
    gain capacity with every added instance, large requests stay
    propagation-bound and decline. *)

val saturating_rate : ?f:int -> protocol -> size:int -> float
(** Offered load used for "static, saturated" experiments: slightly
    above the peak so queues stay full, but below the overload
    collapse of the single-threaded baselines. *)

val name : protocol -> string
