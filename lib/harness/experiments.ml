open Dessim
open Bftworkload

let request_sizes ~quick =
  if quick then [ 8; 1024; 4096 ] else [ 8; 512; 1024; 2048; 4096 ]

let scale ~quick t = if quick then Time.mul_f t 0.5 else t

(* Aardvark's policy times, compressed for simulation (the paper's 5 s
   grace period would make every figure run tens of simulated seconds;
   ratios are unaffected because both the fault-free and the attacked
   runs use the same compression). *)
let aardvark_config ~f =
  {
    (Aardvark.Node.default_config ~f) with
    Aardvark.Node.policy =
      {
        (Aardvark.Policy.default_config ~n:((3 * f) + 1)) with
        Aardvark.Policy.grace = Time.of_sec_f 1.2;
        view_warmup = Time.ms 500;
      };
    post_vc_quiet = Time.ms 120;
  }

(* ------------------------------------------------------------------ *)
(* Generic static/dynamic runners per protocol                        *)
(* ------------------------------------------------------------------ *)

(* Average executed throughput at a correct node over [from_, until]. *)
let window_rate counter ~from_ ~until =
  Bftmetrics.Throughput.rate_between counter from_ until

let static_shape ~quick ~duration ~rate =
  let clients = 20 in
  Loadshape.static ~duration:(scale ~quick duration) ~clients
    ~rate:(rate /. float_of_int clients)

let dynamic_shape ~quick ~rate =
  (* Per-client rate such that the 10-client plateau offers ~22 % of
     the saturation rate and the 50-client spike slightly overloads
     (1.1x): enough to expose a lazy primary without driving the
     single-threaded baselines into ingest collapse, which would
     corrupt the fault-free reference. *)
  Loadshape.paper_dynamic
    ~step:(scale ~quick (Time.ms 300))
    ~rate:(0.022 *. rate) ()

let run_shape_rbft ?seed ?(transport = Bftnet.Network.Tcp) ?(tweak = fun p -> p)
    ~f ~payload ~shape ~attack () =
  Audit.begin_run ~n:((3 * f) + 1) ~f;
  let params = tweak (Rbft.Params.default ~f) in
  let cluster =
    Rbft.Cluster.create ?seed ~transport ~clients:(Loadshape.max_clients shape)
      ~payload_size:payload params
  in
  attack cluster;
  let engine = Rbft.Cluster.engine cluster in
  Loadshape.apply engine shape ~set_rate:(fun c r ->
      Rbft.Client.set_rate (Rbft.Cluster.client cluster c) r);
  let total = Loadshape.total_duration shape in
  Rbft.Cluster.run_for cluster (Time.add total (Time.ms 200));
  (* Measure at a correct node: under worst-attack-2, node 0 is
     faulty. The highest-indexed node is correct in attack-2 (faulty =
     node 0 ..) and faulty in attack-1 (faulty = last f nodes); node 1
     is correct in both for f = 1; use node 1 and node 2 for f = 2
     safety. *)
  let correct_node = Rbft.Cluster.node cluster 1 in
  let counter = Rbft.Node.executed_counter correct_node in
  (window_rate counter ~from_:(Time.ms 200) ~until:total, cluster)

let run_shape_aardvark ?seed ?(tweak = fun c -> c) ~f ~payload ~shape ~attack () =
  Audit.begin_run ~n:((3 * f) + 1) ~f;
  let cfg = tweak (aardvark_config ~f) in
  let cluster =
    Aardvark.Cluster.create ?seed ~clients:(Loadshape.max_clients shape)
      ~payload_size:payload cfg
  in
  attack cluster;
  let engine = Aardvark.Cluster.engine cluster in
  Loadshape.apply engine shape ~set_rate:(fun c r ->
      Aardvark.Client.set_rate (Aardvark.Cluster.client cluster c) r);
  let total = Loadshape.total_duration shape in
  Aardvark.Cluster.run_for cluster (Time.add total (Time.ms 200));
  let counter = Aardvark.Node.executed_counter (Aardvark.Cluster.node cluster 1) in
  (window_rate counter ~from_:(Time.ms 200) ~until:total, cluster)

let run_shape_spinning ?seed ~f ~payload ~shape ~attack () =
  Audit.begin_run ~n:((3 * f) + 1) ~f;
  let cfg = Spinning.Node.default_config ~f in
  let cluster =
    Spinning.Cluster.create ?seed ~clients:(Loadshape.max_clients shape)
      ~payload_size:payload cfg
  in
  attack cluster;
  let engine = Spinning.Cluster.engine cluster in
  Loadshape.apply engine shape ~set_rate:(fun c r ->
      Spinning.Client.set_rate (Spinning.Cluster.client cluster c) r);
  let total = Loadshape.total_duration shape in
  Spinning.Cluster.run_for cluster (Time.add total (Time.ms 200));
  let counter = Spinning.Node.executed_counter (Spinning.Cluster.node cluster 1) in
  (window_rate counter ~from_:(Time.ms 200) ~until:total, cluster)

let run_shape_prime ?seed ?(exec_cost = Time.us 100) ~f ~payload ~shape ~attack () =
  Audit.begin_run ~n:((3 * f) + 1) ~f;
  let cfg = { (Prime.Node.default_config ~f) with Prime.Node.exec_cost = exec_cost } in
  let cluster =
    Prime.Cluster.create ?seed ~clients:(Loadshape.max_clients shape)
      ~payload_size:payload cfg
  in
  attack cluster;
  let engine = Prime.Cluster.engine cluster in
  Loadshape.apply engine shape ~set_rate:(fun c r ->
      Prime.Client.set_rate (Prime.Cluster.client cluster c) r);
  let total = Loadshape.total_duration shape in
  Prime.Cluster.run_for cluster (Time.add total (Time.ms 200));
  let counter = Prime.Node.executed_counter (Prime.Cluster.node cluster 1) in
  (window_rate counter ~from_:(Time.ms 200) ~until:total, cluster)

(* ------------------------------------------------------------------ *)
(* Figures 1-3 and Table I                                            *)
(* ------------------------------------------------------------------ *)

(* Prime's Figure 1 experiment uses the paper's 0.1 ms requests (1 ms
   when heavy), which moves its saturation point well below the
   crypto-bound peak. *)
let prime_fig1_rate ~size =
  let r8 = 4_200.0 and r4k = 1_800.0 in
  let cost8 = 1.0 /. r8 and cost4k = 1.0 /. r4k in
  let frac = float_of_int (Stdlib.max 0 (size - 8)) /. float_of_int (4096 - 8) in
  1.0 /. (cost8 +. (frac *. (cost4k -. cost8)))

let fig1 ~quick =
  let sizes = request_sizes ~quick in
  let attack_prime cluster =
    (* The colluding client sends heavy (1 ms) requests — and, being
       faulty, ignores the load shape and floods at its own rate; the
       malicious primary stretches its ordering period to the
       monitored limit. *)
    Audit.declare_faulty [ 0 ];
    let heavy = Prime.Cluster.client cluster 0 in
    (Prime.Client.behaviour heavy).Prime.Client.heavy <- true;
    Prime.Client.set_rate heavy 300.0;
    (Prime.Node.faults (Prime.Cluster.node cluster 0)).Prime.Node.delay_to_limit <- true
  in
  let row size =
    let rate = prime_fig1_rate ~size in
    let static = static_shape ~quick ~duration:(Time.of_sec_f 4.0) ~rate in
    (* Prime's dynamic load runs closer to saturation than the generic
       shape: the attack caps capacity near the fault-free peak, so a
       light plateau would hide it entirely. *)
    let dynamic =
      Loadshape.paper_dynamic ~step:(scale ~quick (Time.ms 300)) ~rate:(0.05 *. rate) ()
    in
    let measure shape attack =
      fst (run_shape_prime ~f:1 ~payload:size ~shape ~attack ())
    in
    let rel shape =
      let ff = measure shape (fun _ -> ()) in
      let att = measure shape attack_prime in
      if ff <= 0.0 then 0.0 else att /. ff
    in
    let rs = rel static and rd = rel dynamic in
    ( [ string_of_int size; Report.pct rs; Report.pct rd ], Stdlib.min rs rd )
  in
  let rows = List.map row sizes in
  ( {
      Report.id = "fig1";
      title = "Prime throughput under attack relative to fault-free (paper: 22-40%)";
      columns = [ "size(B)"; "static"; "dynamic" ];
      rows = List.map fst rows;
      notes =
        [
          "paper: degradation up to 78% (relative throughput down to 22%)";
          "attack: colluding heavy-request client inflates monitored RTT/exec; \
           primary delays to the allowance";
        ];
    },
    List.fold_left (fun acc (_, m) -> Stdlib.min acc m) 1.0 rows )

let fig2 ~quick =
  let sizes = request_sizes ~quick in
  let attack cluster =
    Audit.declare_faulty [ 0 ];
    (Aardvark.Node.faults (Aardvark.Cluster.node cluster 0)).Aardvark.Node.track_required <-
      true
  in
  let row size =
    let rate = Calibrate.saturating_rate Calibrate.Aardvark ~size in
    (* Static: measure during the malicious primary's reign (view 0:
       grace plus the ratchet, ~2.2 s with the compressed policy
       times). Below saturation an open-loop system catches the backlog
       up after the eviction, which would hide the damage from a
       whole-run average; the paper's saturated testbed had no such
       slack. *)
    let static = static_shape ~quick:false ~duration:(Time.of_sec_f 3.0) ~rate in
    (* The spike must land inside the primary's grace period, as in the
       paper, where the 5 s grace dwarfed the load spike; with the
       compressed 1.2 s grace the 150 ms steps put the 50-client spike
       at 0.9-1.2 s. *)
    let dynamic =
      Loadshape.paper_dynamic ~step:(Time.ms 150) ~rate:(0.022 *. rate) ()
    in
    (* The grace period must dwarf the experiment, as in the paper
       (5 s grace): the malicious primary then reigns for the whole
       dynamic run and its spike is throttled at the stale, pre-spike
       requirement. *)
    let long_grace c =
      {
        c with
        Aardvark.Node.policy =
          { c.Aardvark.Node.policy with Aardvark.Policy.grace = Time.of_sec_f 2.5 };
      }
    in
    let measure_windowed shape a ~from_ ~until =
      let _, cluster =
        run_shape_aardvark ~tweak:long_grace ~f:1 ~payload:size ~shape ~attack:a ()
      in
      let counter = Aardvark.Node.executed_counter (Aardvark.Cluster.node cluster 1) in
      window_rate counter ~from_ ~until
    in
    let rel_static =
      let window a =
        measure_windowed static a ~from_:(Time.ms 300) ~until:(Time.of_sec_f 2.0)
      in
      let ff = window (fun _ -> ()) in
      let att = window attack in
      if ff <= 0.0 then 0.0 else att /. ff
    in
    let rel_dynamic =
      let measure a =
        fst
          (run_shape_aardvark ~tweak:long_grace ~f:1 ~payload:size ~shape:dynamic
             ~attack:a ())
      in
      let ff = measure (fun _ -> ()) in
      let att = measure attack in
      if ff <= 0.0 then 0.0 else att /. ff
    in
    let rs = rel_static and rd = rel_dynamic in
    ( [ string_of_int size; Report.pct rs; Report.pct rd ], Stdlib.min rs rd )
  in
  let rows = List.map row sizes in
  ( {
      Report.id = "fig2";
      title = "Aardvark throughput under attack relative to fault-free (paper: static >= 76%, dynamic down to 13%)";
      columns = [ "size(B)"; "static"; "dynamic" ];
      rows = List.map fst rows;
      notes =
        [
          "attack: the faulty primary shadows the ratcheting throughput \
           requirement and orders just above it";
        ];
    },
    List.fold_left (fun acc (_, m) -> Stdlib.min acc m) 1.0 rows )

let fig3 ~quick =
  let sizes = request_sizes ~quick in
  let attack cluster =
    (* All f faulty nodes delay their proposals by a little less than
       Stimeout whenever the rotation hands them the primary slot. *)
    Audit.declare_faulty [ 3 ];
    (Spinning.Node.faults (Spinning.Cluster.node cluster 3)).Spinning.Node.delay_fraction <-
      0.95
  in
  let row size =
    let rate = Calibrate.saturating_rate Calibrate.Spinning ~size in
    let static = static_shape ~quick ~duration:(Time.of_sec_f 3.0) ~rate in
    let dynamic = dynamic_shape ~quick ~rate in
    let measure shape a = fst (run_shape_spinning ~f:1 ~payload:size ~shape ~attack:a ()) in
    let rel shape =
      let ff = measure shape (fun _ -> ()) in
      let att = measure shape attack in
      if ff <= 0.0 then 0.0 else att /. ff
    in
    let rs = rel static and rd = rel dynamic in
    ( [ string_of_int size; Report.pct rs; Report.pct rd ], Stdlib.min rs rd )
  in
  let rows = List.map row sizes in
  ( {
      Report.id = "fig3";
      title = "Spinning throughput under attack relative to fault-free (paper: static ~1%, dynamic ~4.5%)";
      columns = [ "size(B)"; "static"; "dynamic" ];
      rows = List.map fst rows;
      notes = [ "attack: delay each faulty-led batch by 0.95 * Stimeout (40 ms)" ];
    },
    List.fold_left (fun acc (_, m) -> Stdlib.min acc m) 1.0 rows )

let robustness_of_baselines ~quick =
  let t1, worst_prime = fig1 ~quick in
  let t2, worst_aardvark = fig2 ~quick in
  let t3, worst_spinning = fig3 ~quick in
  let table1 =
    {
      Report.id = "table1";
      title = "Maximum throughput degradation of 'robust' BFT protocols under attack";
      columns = [ ""; "Prime"; "Aardvark"; "Spinning" ];
      rows =
        [
          [
            "max degradation";
            Report.pct (1.0 -. worst_prime);
            Report.pct (1.0 -. worst_aardvark);
            Report.pct (1.0 -. worst_spinning);
          ];
        ];
      notes = [ "paper: Prime 78%, Aardvark 87%, Spinning 99%" ];
    }
  in
  [ t1; t2; t3; table1 ]

(* ------------------------------------------------------------------ *)
(* Figure 7: latency vs throughput                                    *)
(* ------------------------------------------------------------------ *)

type sweep_point = { offered : float; achieved : float; latency_ms : float }

let sweep_fractions ~quick =
  if quick then [ 0.3; 0.7; 0.95 ] else [ 0.2; 0.4; 0.6; 0.8; 0.95; 1.05 ]

let fig7_point ~proto ~payload ~fraction ~quick =
  let peak = Calibrate.peak_rate proto ~size:payload in
  let offered = fraction *. peak in
  let clients = 20 in
  let duration =
    scale ~quick
      (match proto with Calibrate.Aardvark -> Time.of_sec_f 3.0 | _ -> Time.of_sec_f 1.6)
  in
  let shape = Loadshape.static ~duration ~clients ~rate:(offered /. float_of_int clients) in
  let warm = Time.ms 400 in
  match proto with
  | Calibrate.Rbft | Calibrate.Rbft_udp | Calibrate.Rbft_concurrent ->
    let transport =
      match proto with Calibrate.Rbft_udp -> Bftnet.Network.Udp | _ -> Bftnet.Network.Tcp
    in
    let rate, cluster =
      run_shape_rbft ~transport ~f:1 ~payload ~shape ~attack:(fun _ -> ()) ()
    in
    ignore rate;
    let counter = Rbft.Node.executed_counter (Rbft.Cluster.node cluster 1) in
    let achieved = window_rate counter ~from_:warm ~until:(Loadshape.total_duration shape) in
    let lat = Bftmetrics.Stats.create () in
    Array.iter
      (fun c ->
        let h = Rbft.Client.latencies c in
        if Bftmetrics.Hist.count h > 0 then Bftmetrics.Stats.add lat (Bftmetrics.Hist.mean h))
      (Rbft.Cluster.clients cluster);
    { offered; achieved; latency_ms = 1e3 *. Bftmetrics.Stats.mean lat }
  | Calibrate.Aardvark ->
    let _, cluster = run_shape_aardvark ~f:1 ~payload ~shape ~attack:(fun _ -> ()) () in
    let counter = Aardvark.Node.executed_counter (Aardvark.Cluster.node cluster 1) in
    let achieved = window_rate counter ~from_:warm ~until:(Loadshape.total_duration shape) in
    let lat = Bftmetrics.Stats.create () in
    Array.iter
      (fun c ->
        let h = Aardvark.Client.latencies c in
        if Bftmetrics.Hist.count h > 0 then Bftmetrics.Stats.add lat (Bftmetrics.Hist.mean h))
      (Aardvark.Cluster.clients cluster);
    { offered; achieved; latency_ms = 1e3 *. Bftmetrics.Stats.mean lat }
  | Calibrate.Spinning ->
    let _, cluster = run_shape_spinning ~f:1 ~payload ~shape ~attack:(fun _ -> ()) () in
    let counter = Spinning.Node.executed_counter (Spinning.Cluster.node cluster 1) in
    let achieved = window_rate counter ~from_:warm ~until:(Loadshape.total_duration shape) in
    let lat = Bftmetrics.Stats.create () in
    Array.iter
      (fun c ->
        let h = Spinning.Client.latencies c in
        if Bftmetrics.Hist.count h > 0 then Bftmetrics.Stats.add lat (Bftmetrics.Hist.mean h))
      (Spinning.Cluster.clients cluster);
    { offered; achieved; latency_ms = 1e3 *. Bftmetrics.Stats.mean lat }
  | Calibrate.Prime ->
    let _, cluster =
      run_shape_prime ~exec_cost:(Time.us 1) ~f:1 ~payload ~shape ~attack:(fun _ -> ()) ()
    in
    let counter = Prime.Node.executed_counter (Prime.Cluster.node cluster 1) in
    let achieved = window_rate counter ~from_:warm ~until:(Loadshape.total_duration shape) in
    let lat = Bftmetrics.Stats.create () in
    Array.iter
      (fun c ->
        let h = Prime.Client.latencies c in
        if Bftmetrics.Hist.count h > 0 then Bftmetrics.Stats.add lat (Bftmetrics.Hist.mean h))
      (Prime.Cluster.clients cluster);
    { offered; achieved; latency_ms = 1e3 *. Bftmetrics.Stats.mean lat }

let fig7_table ~quick ~payload ~id ~paper_note =
  let protos =
    [ Calibrate.Rbft; Calibrate.Rbft_udp; Calibrate.Aardvark; Calibrate.Spinning; Calibrate.Prime ]
  in
  let rows =
    List.concat_map
      (fun proto ->
        List.map
          (fun fraction ->
            let p = fig7_point ~proto ~payload ~fraction ~quick in
            [
              Calibrate.name proto;
              Report.kreq p.offered;
              Report.kreq p.achieved;
              Report.f2 p.latency_ms;
            ])
          (sweep_fractions ~quick))
      protos
  in
  {
    Report.id;
    title =
      Printf.sprintf "Latency vs throughput, %dB requests (f = 1)" payload;
    columns = [ "protocol"; "offered(kreq/s)"; "achieved(kreq/s)"; "latency(ms)" ];
    rows;
    notes = [ paper_note ];
  }

let fig7 ~quick =
  [
    fig7_table ~quick ~payload:8 ~id:"fig7a"
      ~paper_note:
        "paper peaks (kreq/s): Spinning ~42, RBFT 35, Aardvark 31.6, Prime ~15; \
         Prime latency an order of magnitude higher; UDP latency ~22% below TCP";
    fig7_table ~quick ~payload:4096 ~id:"fig7b"
      ~paper_note:
        "paper peaks (kreq/s): Spinning ~6.5, RBFT 5, Aardvark 1.7; \
         RBFT ordering identifiers beats full-request ordering";
  ]

(* ------------------------------------------------------------------ *)
(* Figures 8-11: RBFT under the worst attacks                         *)
(* ------------------------------------------------------------------ *)

let rbft_relative ~quick ~f ~attack_fn ~size ~dynamic =
  let rate = Calibrate.saturating_rate ~f Calibrate.Rbft ~size in
  let shape =
    if dynamic then dynamic_shape ~quick ~rate
    else static_shape ~quick ~duration:(Time.of_sec_f 2.5) ~rate
  in
  let measure attack = run_shape_rbft ~f ~payload:size ~shape ~attack () in
  let ff, _ = measure (fun _ -> ()) in
  let att, cluster = measure attack_fn in
  ((if ff <= 0.0 then 0.0 else att /. ff), cluster)

let fig_rbft_attack ~quick ~attack_fn ~id ~title ~paper_note =
  let sizes = request_sizes ~quick in
  let fs = if quick then [ 1 ] else [ 1; 2 ] in
  let rows =
    List.concat_map
      (fun f ->
        List.map
          (fun size ->
            let rs, _ = rbft_relative ~quick ~f ~attack_fn ~size ~dynamic:false in
            let rd, _ = rbft_relative ~quick ~f ~attack_fn ~size ~dynamic:true in
            [ string_of_int f; string_of_int size; Report.pct rs; Report.pct rd ])
          sizes)
      fs
  in
  {
    Report.id;
    title;
    columns = [ "f"; "size(B)"; "static"; "dynamic" ];
    rows;
    notes = [ paper_note ];
  }

(* Per-node monitored throughput of the master and backup instances
   (Figures 9 and 11), read from the monitoring history of the correct
   nodes during a 4 kB static attack run. *)
let fig_monitoring ~quick ~attack_fn ~correct_nodes ~id ~title ~paper_note =
  let size = 4096 in
  let f = 1 in
  let rate = Calibrate.saturating_rate ~f Calibrate.Rbft ~size in
  let shape = static_shape ~quick ~duration:(Time.of_sec_f 2.5) ~rate in
  let _, cluster = run_shape_rbft ~f ~payload:size ~shape ~attack:attack_fn () in
  let rows =
    List.map
      (fun node_id ->
        let m = Rbft.Node.monitoring (Rbft.Cluster.node cluster node_id) in
        let history = Rbft.Monitoring.history m in
        (* Drop the first and last windows (warmup / drain). *)
        let mid =
          match history with
          | [] | [ _ ] | [ _; _ ] -> history
          | _ :: rest -> List.filteri (fun i _ -> i < List.length rest - 1) rest
        in
        let master = Bftmetrics.Stats.create () and backup = Bftmetrics.Stats.create () in
        List.iter
          (fun (_, rates) ->
            Bftmetrics.Stats.add master rates.(0);
            let backups = Array.length rates - 1 in
            let sum = ref 0.0 in
            Array.iteri (fun i r -> if i > 0 then sum := !sum +. r) rates;
            Bftmetrics.Stats.add backup (!sum /. float_of_int backups))
          mid;
        [
          Printf.sprintf "node %d" node_id;
          Report.kreq (Bftmetrics.Stats.mean master);
          Report.kreq (Bftmetrics.Stats.mean backup);
        ])
      correct_nodes
  in
  {
    Report.id;
    title;
    columns = [ "node"; "master(kreq/s)"; "backup(kreq/s)" ];
    rows;
    notes = [ paper_note ];
  }

let fig8_9 ~quick =
  [
    fig_rbft_attack ~quick ~attack_fn:Rbft.Attacks.worst_attack_1 ~id:"fig8"
      ~title:"RBFT throughput under worst-attack-1 relative to fault-free"
      ~paper_note:"paper: loss <= 2.2% static, ~0% dynamic (f=1); <= 0.4% (f=2)";
    fig_monitoring ~quick ~attack_fn:Rbft.Attacks.worst_attack_1 ~correct_nodes:[ 0; 1; 2 ]
      ~id:"fig9"
      ~title:"Per-node monitored throughput under worst-attack-1 (static, 4kB, f=1)"
      ~paper_note:"paper: all nodes measure ~the same; master within 2% of backup";
  ]

let fig10_11 ~quick =
  [
    fig_rbft_attack ~quick ~attack_fn:Rbft.Attacks.worst_attack_2 ~id:"fig10"
      ~title:"RBFT throughput under worst-attack-2 relative to fault-free"
      ~paper_note:"paper: loss < 3% (f=1), < 1% (f=2)";
    fig_monitoring ~quick ~attack_fn:Rbft.Attacks.worst_attack_2 ~correct_nodes:[ 1; 2; 3 ]
      ~id:"fig11"
      ~title:"Per-node monitored throughput under worst-attack-2 (static, 4kB, f=1)"
      ~paper_note:"paper: master almost equal to backup at every correct node";
  ]

(* ------------------------------------------------------------------ *)
(* Figure 12: the unfair primary                                      *)
(* ------------------------------------------------------------------ *)

let fig12 ~quick =
  ignore quick;
  let params =
    {
      (Rbft.Params.default ~f:1) with
      Rbft.Params.lambda = Time.of_us_f 1500.0;
      batch_delay = Time.of_us_f 200.0;
      delta = 0.5 (* keep the throughput check out of the way, as the paper does *);
    }
  in
  Audit.begin_run ~n:4 ~f:1;
  let cluster = Rbft.Cluster.create ~clients:2 ~payload_size:4096 params in
  (* Per-request ordering latencies observed at correct node 1. *)
  let samples = ref [] in
  let count = ref 0 in
  Rbft.Node.set_latency_probe (Rbft.Cluster.node cluster 1)
    (fun ~instance ~client latency ->
      if instance = 0 then begin
        incr count;
        samples := (!count, client, latency) :: !samples
      end);
  Array.iter
    (fun c -> Rbft.Client.set_rate c 350.0)
    (Rbft.Cluster.clients cluster);
  (* The faulty master primary (node 0): fair for the first 500
     requests, then holds client 0's requests by 0.5 ms, then by 1 ms
     (the paper's escalation at request ~1000). *)
  Audit.declare_faulty [ 0 ];
  let replica = Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:0 in
  (Pbftcore.Replica.adversary replica).Pbftcore.Replica.client_hold <-
    (fun id ->
      if id.Pbftcore.Types.client <> 0 then Time.zero
      else begin
        let ordered = Pbftcore.Replica.ordered_count replica in
        if ordered < 500 then Time.zero
        else if ordered < 1000 then Time.of_us_f 500.0
        else Time.of_us_f 1000.0
      end);
  Rbft.Cluster.run_for cluster (Time.of_sec_f 3.0);
  let samples = List.rev !samples in
  let bucket lo hi client =
    let s = Bftmetrics.Stats.create () in
    List.iter
      (fun (i, c, lat) ->
        if i >= lo && i < hi && c = client then
          Bftmetrics.Stats.add s (Time.to_ms_f lat))
      samples;
    Bftmetrics.Stats.mean s
  in
  let phases = [ (0, 500, "fair"); (500, 1000, "hold 0.5ms"); (1000, 1400, "hold 1ms") ] in
  let rows =
    List.map
      (fun (lo, hi, label) ->
        [
          Printf.sprintf "req %d-%d (%s)" lo hi label;
          Report.f2 (bucket lo hi 0);
          Report.f2 (bucket lo hi 1);
        ])
      phases
  in
  let changes = Rbft.Node.instance_changes (Rbft.Cluster.node cluster 1) in
  {
    Report.id = "fig12";
    title = "Unfair primary: mean ordering latency (ms) per phase, two clients (4kB, f=1)";
    columns = [ "phase"; "client 0 (attacked)"; "client 1" ];
    rows =
      rows
      @ [ [ "protocol instance changes"; string_of_int changes; "" ] ];
    notes =
      [
        "paper: 0.8 ms fair, 1.3 ms during the 0.5 ms hold; a request above \
         Lambda = 1.5 ms triggers a protocol instance change and fairness returns";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

let peak_of ~quick ~tweak ~transport ~payload =
  let rate = Calibrate.saturating_rate Calibrate.Rbft ~size:payload in
  let shape = static_shape ~quick ~duration:(Time.of_sec_f 2.0) ~rate in
  let _, cluster = run_shape_rbft ~transport ~tweak ~f:1 ~payload ~shape ~attack:(fun _ -> ()) () in
  let counter = Rbft.Node.executed_counter (Rbft.Cluster.node cluster 1) in
  window_rate counter ~from_:(Time.ms 400) ~until:(Loadshape.total_duration shape)

let ablation_ordering ~quick =
  let full = peak_of ~quick ~transport:Bftnet.Network.Tcp ~payload:4096
      ~tweak:(fun p -> { p with Rbft.Params.order_full_requests = true })
  in
  let ids = peak_of ~quick ~transport:Bftnet.Network.Tcp ~payload:4096 ~tweak:(fun p -> p) in
  {
    Report.id = "ablation-ordering";
    title = "RBFT at 4kB: ordering identifiers vs full requests";
    columns = [ "variant"; "throughput(kreq/s)" ];
    rows =
      [
        [ "identifiers (RBFT)"; Report.kreq ids ];
        [ "full requests"; Report.kreq full ];
      ];
    notes = [ "paper: 5 kreq/s vs 1.8 kreq/s (Section VI-B)" ];
  }

let ablation_view_changes ~quick =
  (* Force RBFT through Aardvark-style regular primary changes and
     measure the cost RBFT avoids by only changing on faults. *)
  let forced_period = Time.of_sec_f 0.5 in
  let with_forced cluster =
    let engine = Rbft.Cluster.engine cluster in
    let rec loop () =
      ignore
        (Engine.after engine forced_period (fun () ->
             Array.iter
               (fun node ->
                 for i = 0 to Rbft.Params.instances (Rbft.Cluster.params cluster) - 1 do
                   Pbftcore.Replica.force_view_change (Rbft.Node.replica node ~instance:i)
                 done)
               (Rbft.Cluster.nodes cluster);
             loop ()))
    in
    loop ()
  in
  let rate = Calibrate.saturating_rate Calibrate.Rbft ~size:8 in
  let shape = static_shape ~quick ~duration:(Time.of_sec_f 3.0) ~rate in
  let measure attack =
    let _, cluster = run_shape_rbft ~f:1 ~payload:8 ~shape ~attack () in
    let counter = Rbft.Node.executed_counter (Rbft.Cluster.node cluster 1) in
    window_rate counter ~from_:(Time.ms 400) ~until:(Loadshape.total_duration shape)
  in
  let normal = measure (fun _ -> ()) in
  let forced = measure with_forced in
  (* Aardvark-style changes also pay a recovery pause. *)
  let forced_with_recovery =
    let _, cluster =
      run_shape_rbft
        ~tweak:(fun p -> { p with Rbft.Params.post_vc_quiet = Time.ms 120 })
        ~f:1 ~payload:8 ~shape ~attack:with_forced ()
    in
    let counter = Rbft.Node.executed_counter (Rbft.Cluster.node cluster 1) in
    window_rate counter ~from_:(Time.ms 400) ~until:(Loadshape.total_duration shape)
  in
  {
    Report.id = "ablation-viewchange";
    title = "RBFT 8B: no regular view changes vs forced primary changes every 0.5s";
    columns = [ "variant"; "throughput(kreq/s)" ];
    rows =
      [
        [ "RBFT (changes only on faults)"; Report.kreq normal ];
        [ "forced regular changes (cheap)"; Report.kreq forced ];
        [ "forced changes + recovery pause"; Report.kreq forced_with_recovery ];
      ];
    notes =
      [
        "the paper credits RBFT's edge over Aardvark to the absence of regular \
         view changes (Section VI-B); the instance-change protocol itself is \
         cheap, the recovery pause of an Aardvark-style change is not";
      ];
  }

let ablation_delta ~quick =
  let deltas = [ 0.80; 0.90; 0.95; 0.98 ] in
  let rows =
    List.map
      (fun delta ->
        let tweak p = { p with Rbft.Params.delta } in
        let rate = Calibrate.saturating_rate Calibrate.Rbft ~size:8 in
        let shape = static_shape ~quick ~duration:(Time.of_sec_f 2.0) ~rate in
        let measure attack =
          let _, cluster = run_shape_rbft ~tweak ~f:1 ~payload:8 ~shape ~attack () in
          let counter = Rbft.Node.executed_counter (Rbft.Cluster.node cluster 1) in
          ( window_rate counter ~from_:(Time.ms 400)
              ~until:(Loadshape.total_duration shape),
            Rbft.Node.instance_changes (Rbft.Cluster.node cluster 1) )
        in
        let ff, _ = measure (fun _ -> ()) in
        let att, changes = measure Rbft.Attacks.worst_attack_2 in
        [
          Report.f2 delta;
          Report.pct (if ff > 0.0 then att /. ff else 0.0);
          string_of_int changes;
        ])
      deltas
  in
  {
    Report.id = "ablation-delta";
    title = "Delta threshold vs worst-attack-2 damage (8B, f=1, static)";
    columns = [ "Delta"; "relative throughput"; "instance changes" ];
    rows;
    notes =
      [
        "a lower Delta leaves the malicious primary more slack; the attacker \
         always sits just above the threshold";
      ];
  }

let ablation_switch_master ~quick =
  let tweak p = { p with Rbft.Params.recovery = Rbft.Params.Switch_master; delta = 0.9 } in
  let rate = Calibrate.saturating_rate Calibrate.Rbft ~size:8 in
  let shape = static_shape ~quick ~duration:(Time.of_sec_f 2.5) ~rate in
  let slow_master cluster =
    Audit.declare_faulty [ 0 ];
    (Pbftcore.Replica.adversary
       (Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:0))
      .Pbftcore.Replica.pp_rate_limit <- (fun () -> 0.3 *. rate)
  in
  let measure tweak =
    let _, cluster = run_shape_rbft ~tweak ~f:1 ~payload:8 ~shape ~attack:slow_master () in
    let counter = Rbft.Node.executed_counter (Rbft.Cluster.node cluster 1) in
    ( window_rate counter ~from_:(Time.ms 400) ~until:(Loadshape.total_duration shape),
      Rbft.Node.master_instance (Rbft.Cluster.node cluster 1) )
  in
  let tput_change, _ = measure (fun p -> { p with Rbft.Params.delta = 0.9 }) in
  let tput_switch, master = measure tweak in
  {
    Report.id = "ablation-recovery";
    title = "Recovery from a throttled master primary: change primaries vs switch master";
    columns = [ "recovery"; "throughput(kreq/s)"; "final master instance" ];
    rows =
      [
        [ "change primaries (paper)"; Report.kreq tput_change; "0" ];
        [ "switch master (extension)"; Report.kreq tput_switch; string_of_int master ];
      ];
    notes =
      [
        "the paper sketches master switching as an alternative design \
         (Section IV-A, future work)";
      ];
  }

(* The paper scopes RBFT to open-loop systems (Section II): with
   closed-loop clients the offered load itself is throttled by a slow
   master, so the backup instances can never order faster and the
   ratio test has nothing to compare. This ablation demonstrates that
   limitation with the implemented closed-loop client mode. *)
let ablation_closed_loop ~quick =
  let params = { (Rbft.Params.default ~f:1) with Rbft.Params.delta = 0.9 } in
  let duration = scale ~quick (Time.of_sec_f 2.5) in
  let run ~closed =
    Audit.begin_run ~n:4 ~f:1;
    let cluster = Rbft.Cluster.create ~clients:20 params in
    Array.iter
      (fun c ->
        if closed then Rbft.Client.set_closed_loop c ~outstanding:20
        else
          Rbft.Client.set_rate c (Calibrate.saturating_rate Calibrate.Rbft ~size:8 /. 20.))
      (Rbft.Cluster.clients cluster);
    (* Reach steady state first, then have the master primary throttle
       itself to ~40 % of capacity. *)
    Rbft.Cluster.run_for cluster (Time.ms 500);
    let attack_start = Engine.now (Rbft.Cluster.engine cluster) in
    Audit.declare_faulty [ 0 ];
    let replica = Rbft.Node.replica (Rbft.Cluster.node cluster 0) ~instance:0 in
    (Pbftcore.Replica.adversary replica).Pbftcore.Replica.pp_rate_limit <-
      (fun () -> 0.4 *. Calibrate.peak_rate Calibrate.Rbft ~size:8);
    Rbft.Cluster.run_for cluster duration;
    let counter = Rbft.Node.executed_counter (Rbft.Cluster.node cluster 1) in
    ( window_rate counter
        ~from_:(Time.add attack_start (Time.ms 300))
        ~until:(Time.add attack_start duration),
      Rbft.Node.instance_changes (Rbft.Cluster.node cluster 1) )
  in
  let open_tput, open_ics = run ~closed:false in
  let closed_tput, closed_ics = run ~closed:true in
  {
    Report.id = "ablation-closedloop";
    title = "Why RBFT targets open-loop systems: a 40%-throttled master primary";
    columns = [ "clients"; "throughput(kreq/s)"; "instance changes" ];
    rows =
      [
        [ "open-loop (paper's model)"; Report.kreq open_tput; string_of_int open_ics ];
        [ "closed-loop"; Report.kreq closed_tput; string_of_int closed_ics ];
      ];
    notes =
      [
        "open loop: the backups keep ordering the full offered load, the ratio \
         test fires and the slow primary is replaced; closed loop: clients are \
         throttled by the master, backups cannot outpace it, and the attack is \
         invisible (Section II / future work)";
      ];
  }

let ablations ~quick =
  [
    ablation_ordering ~quick;
    ablation_view_changes ~quick;
    ablation_delta ~quick;
    ablation_switch_master ~quick;
    ablation_closed_loop ~quick;
  ]

let all ~quick =
  robustness_of_baselines ~quick
  @ fig7 ~quick
  @ fig8_9 ~quick
  @ fig10_11 ~quick
  @ [ fig12 ~quick ]
  @ ablations ~quick

(* ------------------------------------------------------------------ *)
(* Fault-free baselines across seeds                                  *)
(* ------------------------------------------------------------------ *)

let mean_spread samples =
  let n = float_of_int (List.length samples) in
  let mean = List.fold_left ( +. ) 0.0 samples /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples /. n
  in
  (mean, sqrt var)

let seed_sweep ~quick ~seeds =
  let size = 8 in
  let no_attack _ = () in
  let run proto seed =
    let seed = Int64.of_int seed in
    let rate = Calibrate.saturating_rate proto ~size in
    let shape = static_shape ~quick ~duration:(Time.of_sec_f 2.0) ~rate in
    match proto with
    | Calibrate.Rbft | Calibrate.Rbft_concurrent ->
      fst (run_shape_rbft ~seed ~f:1 ~payload:size ~shape ~attack:no_attack ())
    | Calibrate.Rbft_udp ->
      fst
        (run_shape_rbft ~seed ~transport:Bftnet.Network.Udp ~f:1 ~payload:size
           ~shape ~attack:no_attack ())
    | Calibrate.Aardvark ->
      fst (run_shape_aardvark ~seed ~f:1 ~payload:size ~shape ~attack:no_attack ())
    | Calibrate.Spinning ->
      fst (run_shape_spinning ~seed ~f:1 ~payload:size ~shape ~attack:no_attack ())
    | Calibrate.Prime ->
      fst (run_shape_prime ~seed ~f:1 ~payload:size ~shape ~attack:no_attack ())
  in
  let row proto =
    let samples = List.init seeds (fun s -> run proto (s + 1)) in
    let mean, sd = mean_spread samples in
    let rel_spread = if mean > 0.0 then 100.0 *. sd /. mean else 0.0 in
    [
      Calibrate.name proto;
      Report.kreq mean;
      Report.kreq sd;
      Printf.sprintf "%.2f%%" rel_spread;
    ]
  in
  {
    Report.id = "seed-sweep";
    title =
      Printf.sprintf
        "Fault-free saturated throughput across %d seeds (8 B requests, f = 1)"
        seeds;
    columns = [ "protocol"; "mean(kreq/s)"; "sd(kreq/s)"; "spread" ];
    rows =
      List.map row
        [
          Calibrate.Rbft;
          Calibrate.Rbft_udp;
          Calibrate.Aardvark;
          Calibrate.Spinning;
          Calibrate.Prime;
        ];
    notes =
      [
        "the simulation is deterministic per seed; the spread quantifies \
         sensitivity of the fault-free baselines to scheduling randomness \
         (client phases, network jitter draws)";
      ];
  }
