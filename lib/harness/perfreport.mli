(** Machine-readable performance report ([BENCH_rbft.json]).

    Runs a short evaluation pass — fault-free RBFT at 8 B and 4 kB,
    the two worst attacks, and an instrumentation-off rerun to price
    the registry's hot-path overhead — and reduces it to a JSON
    document with the headline numbers (throughput, client p50/p99,
    master-instance ordering p50/p99, relative under-attack
    throughput, self-profile). *)

val generate : quick:bool -> string
(** Run the pass and return the JSON document. *)

val write : quick:bool -> path:string -> unit
(** {!generate} and write to [path] ('-' for stdout). *)
