(** Machine-readable performance report ([BENCH_rbft.json]).

    Runs a short evaluation pass — fault-free RBFT at 8 B and 4 kB,
    the two worst attacks, and an instrumentation-off rerun to price
    the registry's hot-path overhead — and reduces it to a JSON
    document with the headline numbers (throughput, client p50/p99,
    master-instance ordering p50/p99, relative under-attack
    throughput, self-profile). *)

val generate : quick:bool -> string
(** Run the pass and return the JSON document. *)

val write : quick:bool -> path:string -> unit
(** {!generate} and write to [path] ('-' for stdout). *)

val generate_scale : quick:bool -> string
(** Scaling sweep ([BENCH_scale.json]): fault-free 8 B RBFT at
    f = 1, 2, 3 (4, 7 and 10 nodes; f+1 protocol instances), each at
    its calibrated saturation point, reduced to throughput and
    latency percentiles per cluster size. Each row also carries a
    [concurrent] column — the same cluster in disjoint-partition
    (bftrcc) ordering, where added instances add capacity instead of
    redundancy. *)

val write_scale : quick:bool -> path:string -> unit
(** {!generate_scale} and write to [path] ('-' for stdout). *)

val generate_clients : quick:bool -> string
(** Client-population capacity sweep (BENCH_clients.json): run the
    {!Bftworkload.Population} model at growing population sizes under
    a fixed aggregate load and record, per point, throughput, client
    latency percentiles, cumulative GC activity, peak live/heap words
    and the per-structure footprint-probe peaks. Quick mode sweeps
    100/1k/10k clients; full mode 1k/10k/50k. *)

val write_clients : quick:bool -> path:string -> unit
(** {!generate_clients} and write to [path] ('-' for stdout). *)
