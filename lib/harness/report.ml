type table = {
  id : string;
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let kreq v = Printf.sprintf "%.1f" (v /. 1e3)

let print t =
  let all_rows = t.columns :: t.rows in
  let ncols = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all_rows in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> Stdlib.max acc (String.length cell)
        | None -> acc)
      0 all_rows
  in
  let widths = List.init ncols width in
  let render row =
    let cells =
      List.mapi
        (fun i w ->
          let cell = match List.nth_opt row i with Some c -> c | None -> "" in
          cell ^ String.make (w - String.length cell) ' ')
        widths
    in
    "  " ^ String.concat "  " cells
  in
  Printf.printf "\n== [%s] %s ==\n" t.id t.title;
  print_endline (render t.columns);
  print_endline
    ("  " ^ String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (render row)) t.rows;
  List.iter (fun note -> Printf.printf "  note: %s\n" note) t.notes;
  print_newline ()
