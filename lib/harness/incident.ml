(** RBFT-aware doctor attachment.

    {!Bftdoctor} is protocol-agnostic; this module closes the loop for
    RBFT clusters: the bundle's config fields come from
    {!Rbft.Cluster.describe}, the dump-time context records the node
    currently acting as master primary (so the analyzer can name the
    culprit of a master-underperformance incident), and the default
    trigger set adds the Δ-ratio near-miss watch using the cluster's
    own [delta] parameter. *)

open Dessim
module Trigger = Bftdoctor.Trigger
module Doctor = Bftdoctor.Doctor

(** Default triggers for a harness run: dump on instance change or
    auditor violation, and watch the monitoring ratio skirting the Δ
    envelope (the worst2 signature: a malicious master throttling just
    above the demotion threshold). [epsilon] defaults to 0.04 — wide
    enough to catch a throttle tuned to 1-2% above Δ, narrow enough
    that an honest master at full speed (ratio ≈ 1) never arms it. *)
let default_triggers ?(epsilon = 0.04) (cluster : Rbft.Cluster.t) =
  let params = Rbft.Cluster.params cluster in
  let delta = params.Rbft.Params.delta in
  [
    Trigger.spec Trigger.Instance_change ~cooldown:(Time.sec 1);
    Trigger.spec Trigger.Auditor_violation ~cooldown:(Time.sec 1);
    (* worst1 is tolerated without an instance change; the NIC closure
       is its trigger. No debounce: at full load the event ring turns
       over in well under 100 ms, so the bundle must freeze at the
       closure instant for the nic-closed event to still be in it. *)
    Trigger.spec Trigger.Nic_closure ~cooldown:(Time.sec 2);
    Trigger.spec
      (Trigger.Delta_ratio_near { delta; epsilon })
      ~debounce:(Time.ms 300) ~cooldown:(Time.sec 2);
  ]
  @
  (* Concurrent (bftrcc) ordering: watch the merge sequencer for a
     head-of-line stall, with the bound at ~half the stall-driven
     instance-change timeout so the bundle freezes while the stall is
     still live (the instance change then re-homes the partition and
     clears it). *)
  match params.Rbft.Params.ordering with
  | Rbft.Params.Redundant -> []
  | Rbft.Params.Concurrent ->
    let stall_change = params.Rbft.Params.stall_change in
    let bound =
      if stall_change > Time.zero then Time.mul_f stall_change 0.5
      else Time.ms 150
    in
    [ Trigger.spec (Trigger.Seq_stall { age = bound }) ~cooldown:(Time.sec 2) ]

let config ?dir ?triggers ?epsilon ?scenario ?(extra_fields = [])
    (cluster : Rbft.Cluster.t) =
  let triggers =
    match triggers with
    | Some ts -> ts
    | None -> default_triggers ?epsilon cluster
  in
  let seed =
    match List.assoc_opt "seed" (Rbft.Cluster.describe cluster) with
    | Some s -> Int64.of_string s
    | None -> 1L
  in
  Doctor.default_config ~dir ~seed
    ~config_fields:(Rbft.Cluster.describe cluster @ extra_fields)
    ~context:
      (Some
         (fun () ->
           [
             ( "master_primary",
               string_of_int (Rbft.Cluster.master_primary cluster) );
           ]))
    ~scenario ~triggers ()

(** Attach a doctor to an RBFT cluster with the harness defaults. *)
let attach ?dir ?triggers ?epsilon ?scenario ?extra_fields cluster =
  Doctor.attach
    (config ?dir ?triggers ?epsilon ?scenario ?extra_fields cluster)
    (Rbft.Cluster.engine cluster)
