(** Experiment harness: per-figure runners and table rendering. *)

module Report = Report
module Calibrate = Calibrate
module Experiments = Experiments
module Audit = Audit
module Perfreport = Perfreport
module Incident = Incident
