(* Machine-readable performance report (BENCH_rbft.json).

   One quick evaluation pass over fault-free RBFT at the two request
   sizes the paper reports (8 B and 4 kB) plus the two worst attacks,
   with the metric registry enabled, reduced to the headline numbers a
   CI job can diff: achieved throughput, client end-to-end latency
   percentiles, master-instance ordering percentiles, the under-attack
   throughput ratios, the registry's own hot-path overhead (the same
   fault-free run with collection off vs on) and the wall-clock
   self-profile. *)

open Dessim
open Bftworkload

type run_result = {
  throughput : float;  (* req/s at a correct node *)
  p50_ms : float;  (* client end-to-end latency *)
  p99_ms : float;
  order_p50_ms : float;  (* master-instance ordering latency at node 1 *)
  order_p99_ms : float;
}

let duration ~quick = Time.of_sec_f (if quick then 1.0 else 2.0)

(* Mirrors the harness' static saturated runner, with the registry
   optionally live (reset per run so counters describe one run).
   [span_sample] > 0 additionally runs the span tracer at 1/N sampling;
   the caller reads the spans back via [Bftspan.Tracer.to_array]. *)
let static_run ?(attack = fun _ -> ()) ?(f = 1) ?(span_sample = 0)
    ?(ordering = Rbft.Params.Redundant) ?(flow = true) ~with_metrics ~quick
    ~payload () =
  let module Registry = Bftmetrics.Registry in
  (* Calibrate before touching the registry so the probe runs don't
     pollute this run's counters. *)
  Registry.disable ();
  let proto =
    match ordering with
    | Rbft.Params.Redundant -> Calibrate.Rbft
    | Rbft.Params.Concurrent -> Calibrate.Rbft_concurrent
  in
  let rate = Calibrate.saturating_rate ~f proto ~size:payload in
  Registry.reset Registry.default;
  if with_metrics then Registry.enable () else Registry.disable ();
  if span_sample > 0 then begin
    Bftspan.Tracer.reset ();
    Bftspan.Tracer.enable ~sample:span_sample ()
  end;
  let clients = 20 in
  let shape =
    Loadshape.static ~duration:(duration ~quick) ~clients
      ~rate:(rate /. float_of_int clients)
  in
  (* The bench measures the flow-controlled configuration: bounded
     admission keeps the saturating open-loop rate from growing an
     unbounded verification queue (the queue-wait wall), and adaptive
     batching lets the primary trade batch size against delay from the
     live backlog. The budget bounds in-flight requests per node at
     roughly 1.3x the pipe's natural occupancy at peak throughput:
     large enough that bursty slot turnover (batches free dozens of
     slots at once) never idles the verification stage, small enough
     that the queue-wait share of end-to-end latency stays bounded.
     The scaling sweep passes [~flow:false]: it measures the ordering
     modes' scaling laws in isolation, and a budget sized for the f=1
     redundant pipe would throttle concurrent mode's higher capacity
     at f=3 (inflight cap / latency < peak throughput). *)
  let params =
    if flow then
      { (Rbft.Params.default ~f) with
        Rbft.Params.ordering;
        admission_budget = 128;
        adaptive_batching = true }
    else { (Rbft.Params.default ~f) with Rbft.Params.ordering }
  in
  let cluster =
    Rbft.Cluster.create ~clients:(Loadshape.max_clients shape)
      ~payload_size:payload params
  in
  attack cluster;
  let engine = Rbft.Cluster.engine cluster in
  Loadshape.apply engine shape ~set_rate:(fun c r ->
      Rbft.Client.set_rate (Rbft.Cluster.client cluster c) r);
  let total = Loadshape.total_duration shape in
  Rbft.Cluster.run_for cluster (Time.add total (Time.ms 200));
  if span_sample > 0 then Bftspan.Tracer.disable ();
  let counter = Rbft.Node.executed_counter (Rbft.Cluster.node cluster 1) in
  let throughput =
    Bftmetrics.Throughput.rate_between counter (Time.ms 200) total
  in
  (* Client end-to-end latency, merged over every client that got a
     reply (values are seconds). *)
  let merged =
    Array.fold_left
      (fun acc c ->
        let h = Rbft.Client.latencies c in
        if Bftmetrics.Hist.count h = 0 then acc
        else
          match acc with
          | None -> Some (Bftmetrics.Hist.copy h)
          | Some m -> Some (Bftmetrics.Hist.merge m h))
      None (Rbft.Cluster.clients cluster)
  in
  let pctl h p =
    match h with
    | None -> 0.0
    | Some h -> 1e3 *. Bftmetrics.Hist.percentile h p
  in
  (* Master-instance ordering latency at correct node 1, read back
     from the registry (re-registration returns the live child). *)
  let order =
    Bftmetrics.Registry.histogram Bftmetrics.Registry.default
      "bft_ordering_latency_seconds"
      ~labels:[ ("node", "1"); ("instance", "0") ]
  in
  let opctl p =
    if Bftmetrics.Hist.count order = 0 then 0.0
    else 1e3 *. Bftmetrics.Hist.percentile order p
  in
  {
    throughput;
    p50_ms = pctl merged 50.0;
    p99_ms = pctl merged 99.0;
    order_p50_ms = opctl 50.0;
    order_p99_ms = opctl 99.0;
  }

let size_key = function 8 -> "8B" | 4096 -> "4kB" | n -> string_of_int n ^ "B"

let json_of_result r =
  Printf.sprintf
    {|{"throughput_req_s":%s,"latency_p50_ms":%s,"latency_p99_ms":%s,"ordering_p50_ms":%s,"ordering_p99_ms":%s}|}
    (Bftmetrics.Export.json_float r.throughput)
    (Bftmetrics.Export.json_float r.p50_ms)
    (Bftmetrics.Export.json_float r.p99_ms)
    (Bftmetrics.Export.json_float r.order_p50_ms)
    (Bftmetrics.Export.json_float r.order_p99_ms)

let generate ~quick =
  let module Profile = Bftmetrics.Profile in
  let sizes = [ 8; 4096 ] in
  (* Fault-free baselines, and the wall-clock cost of the very same
     8 B run with the registry off — the hot-path overhead measure. *)
  let t_off = ref 0.0 in
  Profile.time "perfreport:baseline-nometrics" (fun () ->
      let t0 = Unix.gettimeofday () in
      ignore (static_run ~with_metrics:false ~quick ~payload:8 ());
      t_off := Unix.gettimeofday () -. t0);
  let t_on = ref 0.0 in
  let fault_free =
    List.map
      (fun payload ->
        Profile.time
          (Printf.sprintf "perfreport:fault-free-%s" (size_key payload))
          (fun () ->
            let t0 = Unix.gettimeofday () in
            let r = static_run ~with_metrics:true ~quick ~payload () in
            if payload = 8 then t_on := Unix.gettimeofday () -. t0;
            (payload, r)))
      sizes
  in
  (* Fault-free per-stage latency attribution from dedicated traced
     runs (separate from the metric runs so the wall-clock overhead
     numbers above stay clean). *)
  let breakdown =
    List.map
      (fun payload ->
        Profile.time
          (Printf.sprintf "perfreport:breakdown-%s" (size_key payload))
          (fun () ->
            ignore
              (static_run ~with_metrics:false ~span_sample:8 ~quick ~payload ());
            let summary =
              Bftspan.Analyze.summarize (Bftspan.Tracer.to_array ())
            in
            Bftspan.Tracer.reset ();
            (payload, summary)))
      sizes
  in
  let attacks =
    [ ("worst1", Rbft.Attacks.worst_attack_1);
      ("worst2", Rbft.Attacks.worst_attack_2) ]
  in
  let under_attack =
    List.map
      (fun (name, attack) ->
        ( name,
          List.map
            (fun payload ->
              Profile.time
                (Printf.sprintf "perfreport:%s-%s" name (size_key payload))
                (fun () ->
                  let att =
                    static_run ~attack ~with_metrics:true ~quick ~payload ()
                  in
                  let ff = List.assoc payload fault_free in
                  let rel =
                    if ff.throughput > 0.0 then att.throughput /. ff.throughput
                    else 0.0
                  in
                  (payload, att, rel)))
            sizes ))
      attacks
  in
  Bftmetrics.Registry.disable ();
  let overhead_pct =
    if !t_off > 0.0 then 100.0 *. ((!t_on /. !t_off) -. 1.0) else 0.0
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf {|  "bench": "rbft",%s  "mode": "%s",%s|} "\n"
       (if quick then "quick" else "full")
       "\n");
  Buffer.add_string buf "  \"fault_free\": {\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (payload, r) ->
            Printf.sprintf {|    "%s": %s|} (size_key payload)
              (json_of_result r))
          fault_free));
  Buffer.add_string buf "\n  },\n";
  Buffer.add_string buf "  \"under_attack\": {\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (name, rows) ->
            Printf.sprintf {|    "%s": {%s}|} name
              (String.concat ","
                 (List.map
                    (fun (payload, att, rel) ->
                      Printf.sprintf
                        {|"%s":{"throughput_req_s":%s,"relative_throughput":%s}|}
                        (size_key payload)
                        (Bftmetrics.Export.json_float att.throughput)
                        (Bftmetrics.Export.json_float rel))
                    rows)))
          under_attack));
  Buffer.add_string buf "\n  },\n";
  Buffer.add_string buf "  \"latency_breakdown\": {\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (payload, (s : Bftspan.Analyze.summary)) ->
            Printf.sprintf
              {|    "%s": {"sample":"1/8","committed":%d,"p50_ms":%s,"share_sum":%s,"stages":{%s}}|}
              (size_key payload) s.Bftspan.Analyze.committed
              (Bftmetrics.Export.json_float s.Bftspan.Analyze.total_p50_ms)
              (Bftmetrics.Export.json_float s.Bftspan.Analyze.share_sum)
              (String.concat ","
                 (List.map
                    (fun (r : Bftspan.Analyze.stage_row) ->
                      Printf.sprintf {|"%s":{"share":%s,"p50_ms":%s}|}
                        (Bftspan.Tag.name r.Bftspan.Analyze.tag)
                        (Bftmetrics.Export.json_float r.Bftspan.Analyze.share)
                        (Bftmetrics.Export.json_float r.Bftspan.Analyze.p50_ms))
                    s.Bftspan.Analyze.stages)))
          breakdown));
  Buffer.add_string buf "\n  },\n";
  Buffer.add_string buf
    (Printf.sprintf
       {|  "metrics_overhead": {"run_no_metrics_s":%s,"run_with_metrics_s":%s,"overhead_pct":%s},%s|}
       (Bftmetrics.Export.json_float !t_off)
       (Bftmetrics.Export.json_float !t_on)
       (Bftmetrics.Export.json_float overhead_pct)
       "\n");
  Buffer.add_string buf
    (Printf.sprintf {|  "profile": %s%s|} (Bftmetrics.Profile.json ()) "\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write ~quick ~path =
  let json = generate ~quick in
  Bftmetrics.Export.to_channel_or_file ~path json;
  if path <> "-" then Printf.printf "performance report -> %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Scaling sweep (BENCH_scale.json)                                   *)
(* ------------------------------------------------------------------ *)

let generate_scale ~quick =
  let module Profile = Bftmetrics.Profile in
  let payload = 8 in
  let rows =
    List.map
      (fun f ->
        let n = (3 * f) + 1 and instances = f + 1 in
        let r =
          Profile.time (Printf.sprintf "perfreport:scale-f%d" f) (fun () ->
              static_run ~f ~flow:false ~with_metrics:true ~quick ~payload ())
        in
        (* Same cluster size in concurrent (bftrcc) ordering, where the
           f+1 instances order disjoint client partitions instead of
           redundantly ordering everything — the column that shows the
           added instances turning into added capacity. *)
        let c =
          Profile.time (Printf.sprintf "perfreport:scale-f%d-concurrent" f)
            (fun () ->
              static_run ~f ~ordering:Rbft.Params.Concurrent ~flow:false
                ~with_metrics:true ~quick ~payload ())
        in
        (f, n, instances, r, c))
      [ 1; 2; 3 ]
  in
  Bftmetrics.Registry.disable ();
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf {|  "bench": "rbft-scale",%s  "mode": "%s",%s  "payload": "%s",%s|}
       "\n"
       (if quick then "quick" else "full")
       "\n" (size_key payload) "\n");
  Buffer.add_string buf "  \"sweep\": {\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (f, n, instances, r, c) ->
            let splice s = String.sub s 1 (String.length s - 2) in
            Printf.sprintf {|    "f%d": {"n":%d,"instances":%d,%s,"concurrent":%s}|}
              f n instances
              (* splice the result fields into the same object *)
              (splice (json_of_result r))
              (json_of_result c))
          rows));
  Buffer.add_string buf "\n  },\n";
  Buffer.add_string buf
    (Printf.sprintf {|  "profile": %s%s|} (Bftmetrics.Profile.json ()) "\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_scale ~quick ~path =
  let json = generate_scale ~quick in
  Bftmetrics.Export.to_channel_or_file ~path json;
  if path <> "-" then Printf.printf "scaling report -> %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Client-population sweep (BENCH_clients.json)                       *)
(* ------------------------------------------------------------------ *)

(* Aggregate footprint peaks per structure name: the per-owner detail
   (4 nodes x ~12 probes) is incident-bundle material; the bench
   records the worst owner of each structure. *)
let footprint_peaks_by_name () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (key, peak) ->
      let name =
        match String.index_opt key '/' with
        | Some i -> String.sub key 0 i
        | None -> key
      in
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
      if peak > prev then Hashtbl.replace tbl name peak)
    (Bftcap.Footprint.peak_entries ());
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type clients_point = {
  cp_clients : int;
  cp_active : int;
  cp_offered : float;
  cp_throughput : float;
  cp_p50_ms : float;
  cp_p99_ms : float;
  cp_gc : (string * float) list;
  cp_peak_live : int;
  cp_peak_heap : int;
  cp_footprint : (string * int) list;
}

let clients_run ~quick ~population =
  let module Registry = Bftmetrics.Registry in
  Registry.disable ();
  Bftcap.Footprint.clear ();
  Bftcap.Footprint.enable ();
  let duration = Time.of_sec_f (if quick then 0.6 else 1.5) in
  (* Fixed aggregate load well under saturation: the sweep variable is
     the population, and what it measures is what O(clients) state
     costs — not another throughput ceiling. The capacity knobs are
     on: bounded reply cache (default), executed-request sweeping and
     idle-client pruning, so the curve reports the bounded design. *)
  let params =
    { (Rbft.Params.default ~f:1) with
      Rbft.Params.request_gc_age = Time.ms 300;
      monitoring_idle_prune = Time.ms 500 }
  in
  let pop =
    Population.create ~active:(Stdlib.min population 200)
      ~churn_fraction:0.1 ~clients:population ~aggregate_rate:4000.0
      ~duration ()
  in
  let cluster =
    Rbft.Cluster.create ~clients:(Population.clients pop) ~payload_size:8
      params
  in
  let engine = Rbft.Cluster.engine cluster in
  let gcs = Bftcap.Gcstats.create ~window:128 () in
  (* Periodic GC/footprint sampling on virtual time. *)
  let tick = Time.mul_f duration (1.0 /. 24.0) in
  let rec sampler_until stop =
    ignore
      (Engine.at engine
         (Time.add (Engine.now engine) tick)
         (fun () ->
           Bftcap.Gcstats.sample gcs ~now:(Engine.now engine);
           if Engine.now engine < stop then sampler_until stop))
  in
  sampler_until (Time.add (Engine.now engine) duration);
  Population.apply engine pop ~set_rate:(fun c r ->
      Rbft.Client.set_rate (Rbft.Cluster.client cluster c) r);
  Rbft.Cluster.run_for cluster (Time.add duration (Time.ms 200));
  Bftcap.Gcstats.sample gcs ~now:(Engine.now engine);
  let counter = Rbft.Node.executed_counter (Rbft.Cluster.node cluster 1) in
  let throughput =
    Bftmetrics.Throughput.rate_between counter (Time.ms 100) duration
  in
  let merged =
    Array.fold_left
      (fun acc c ->
        let h = Rbft.Client.latencies c in
        if Bftmetrics.Hist.count h = 0 then acc
        else
          match acc with
          | None -> Some (Bftmetrics.Hist.copy h)
          | Some m -> Some (Bftmetrics.Hist.merge m h))
      None (Rbft.Cluster.clients cluster)
  in
  let pctl p =
    match merged with
    | None -> 0.0
    | Some h -> 1e3 *. Bftmetrics.Hist.percentile h p
  in
  let point =
    {
      cp_clients = population;
      cp_active = Population.active pop;
      cp_offered = Population.offered_total pop;
      cp_throughput = throughput;
      cp_p50_ms = pctl 50.0;
      cp_p99_ms = pctl 99.0;
      cp_gc = Bftcap.Gcstats.deltas gcs;
      cp_peak_live = Bftcap.Gcstats.peak_live_words gcs;
      cp_peak_heap = Bftcap.Gcstats.peak_heap_words gcs;
      cp_footprint = footprint_peaks_by_name ();
    }
  in
  Bftcap.Footprint.disable ();
  Bftcap.Footprint.clear ();
  point

let json_of_clients_point p =
  Printf.sprintf
    {|    {"clients":%d,"active":%d,"offered_req":%s,"throughput_req_s":%s,"latency_p50_ms":%s,"latency_p99_ms":%s,
     "gc":{%s,"peak_live_words":%d,"peak_heap_words":%d},
     "footprint_peak":{%s}}|}
    p.cp_clients p.cp_active
    (Bftmetrics.Export.json_float p.cp_offered)
    (Bftmetrics.Export.json_float p.cp_throughput)
    (Bftmetrics.Export.json_float p.cp_p50_ms)
    (Bftmetrics.Export.json_float p.cp_p99_ms)
    (String.concat ","
       (List.map
          (fun (k, v) ->
            Printf.sprintf {|"%s":%s|} k (Bftmetrics.Export.json_float v))
          p.cp_gc))
    p.cp_peak_live p.cp_peak_heap
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf {|"%s":%d|} k v)
          p.cp_footprint))

let generate_clients ~quick =
  let module Profile = Bftmetrics.Profile in
  let points = if quick then [ 100; 1_000; 10_000 ] else [ 1_000; 10_000; 50_000 ] in
  let rows =
    List.map
      (fun population ->
        Profile.time (Printf.sprintf "perfreport:clients-%d" population)
          (fun () -> clients_run ~quick ~population))
      points
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       {|  "bench": "rbft-clients",%s  "schema": "bftcap-clients-v1",%s  "mode": "%s",%s|}
       "\n" "\n"
       (if quick then "quick" else "full")
       "\n");
  Buffer.add_string buf "  \"sweep\": [\n";
  Buffer.add_string buf
    (String.concat ",\n" (List.map json_of_clients_point rows));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf {|  "profile": %s%s|} (Bftmetrics.Profile.json ()) "\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_clients ~quick ~path =
  let json = generate_clients ~quick in
  Bftmetrics.Export.to_channel_or_file ~path json;
  if path <> "-" then Printf.printf "client-population report -> %s\n%!" path
