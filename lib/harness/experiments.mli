(** One entry per table and figure of the paper's evaluation. Each
    function runs the simulation(s) and returns printable tables; the
    benchmark executable prints them all (see bench/main.ml).

    [quick] shortens windows and thins the request-size sweeps. *)

val request_sizes : quick:bool -> int list
(** The x-axis of Figures 1–3, 8 and 10 (8 B – 4 kB). *)

val robustness_of_baselines : quick:bool -> Report.table list
(** Figures 1, 2, 3 and Table I: relative throughput of Prime,
    Aardvark and Spinning under their worst primary attacks, for
    static and dynamic loads, and the resulting maximum degradation
    table. *)

val fig7 : quick:bool -> Report.table list
(** Figures 7a and 7b: latency vs throughput for RBFT (TCP and UDP),
    Aardvark, Spinning and Prime at 8 B and 4 kB. *)

val fig8_9 : quick:bool -> Report.table list
(** Figures 8a/8b (RBFT under worst-attack-1, f = 1 and f = 2, static
    and dynamic loads) and Figure 9 (per-node monitored throughput of
    master vs backup instances during that attack). *)

val fig10_11 : quick:bool -> Report.table list
(** Figures 10a/10b (worst-attack-2) and Figure 11. *)

val fig12 : quick:bool -> Report.table
(** The unfair-primary experiment: per-request ordering latencies of
    the attacked and the untouched client, and the protocol instance
    change triggered by the Λ check. *)

val ablations : quick:bool -> Report.table list
(** Design-choice ablations called out in DESIGN.md: identifier vs
    full-request ordering, regular view changes forced on RBFT, the Δ
    threshold sweep, the Switch_master recovery extension, and the
    closed-loop demonstration of Section II's scoping argument. *)

val all : quick:bool -> Report.table list

val seed_sweep : quick:bool -> seeds:int -> Report.table
(** Fault-free saturated baselines of every protocol at 8 B requests,
    re-run under [seeds] different simulation seeds; reports mean,
    standard deviation and relative spread of the measured throughput
    (the [--seeds N] flag of bench/main.exe). *)
