(** Harness-level audit orchestration.

    When {!enabled} is set (the bench's [--audit] flag), every
    experiment run gets a fresh online {!Bftaudit.Auditor} attached
    before its cluster is built, so all harness experiments are
    safety-checked as they execute.  Auditors raise on the first
    violation, so a bench that completes printed-report ends with zero
    violations by construction; {!summary} reports how much was
    checked. *)

let enabled = ref false

type stats = { mutable runs : int; mutable events : int }

let stats = { runs = 0; events = 0 }
let current : Bftaudit.Auditor.t option ref = ref None

let finish_current () =
  match !current with
  | Some a ->
    stats.events <- stats.events + Bftaudit.Auditor.events_checked a;
    Bftaudit.Auditor.detach a;
    current := None
  | None -> ()

(** Start auditing one experiment run. Must be called before the
    cluster is created and the attack installed: it clears the
    Byzantine-node registry that attack installers repopulate. *)
let begin_run ~n ~f =
  if !enabled then begin
    finish_current ();
    Bftaudit.Auditor.reset_declared ();
    current := Some (Bftaudit.Auditor.attach ~n ~f ());
    stats.runs <- stats.runs + 1
  end

(** Exclude [nodes] from the current run's safety conclusions (inline
    harness attacks that do not go through [Rbft.Attacks]). *)
let declare_faulty nodes = Bftaudit.Auditor.declare_faulty nodes

let summary () =
  finish_current ();
  if !enabled then
    Some
      (Printf.sprintf "%d run(s) audited, %d events checked, 0 violations"
         stats.runs stats.events)
  else None
