type protocol = Rbft | Rbft_udp | Rbft_concurrent | Aardvark | Spinning | Prime

let name = function
  | Rbft -> "RBFT"
  | Rbft_udp -> "RBFT/UDP"
  | Rbft_concurrent -> "RBFT/concurrent"
  | Aardvark -> "Aardvark"
  | Spinning -> "Spinning"
  | Prime -> "Prime"

(* Measured peak throughputs (req/s) at the calibration anchors, f = 1
   (see EXPERIMENTS.md, "Calibration"). *)
let anchors = function
  | Rbft | Rbft_udp -> (34_000.0, 6_000.0)
  | Rbft_concurrent -> (39_000.0, 5_600.0)
  | Aardvark ->
    (* sustained rate including the regular view-change cycles *)
    (31_500.0, 1_400.0)
  | Spinning -> (48_000.0, 6_300.0)
  | Prime -> (11_000.0, 2_400.0)

(* f = 2 runs 7 nodes: the propagation fan-out grows and peak
   throughput drops (measured for RBFT; baselines are only evaluated
   at f = 1 in the paper's attack figures). *)
let f2_scale = function
  | Rbft | Rbft_udp -> 23_000.0 /. 34_000.0
  | Rbft_concurrent -> 1.0 (* unused: per-anchor scaling, see below *)
  | Aardvark | Spinning | Prime -> 0.55

(* Beyond f = 2 the per-step fan-out keeps growing by the same factor
   per extra fault tolerated, so the measured f = 2 ratio is
   extrapolated geometrically: scale(f) = f2_scale^(f-1). Only the
   scaling sweep (f = 3 -> 10 nodes) relies on the extrapolated
   point. *)
let f_scale proto ~f =
  if f <= 1 then 1.0 else f2_scale proto ** float_of_int (f - 1)

let interpolate (rate8, rate4k) ~size =
  (* Per-request cost grows linearly with size between the anchors. *)
  let cost8 = 1.0 /. rate8 and cost4k = 1.0 /. rate4k in
  let frac = float_of_int (Stdlib.max 0 (size - 8)) /. float_of_int (4096 - 8) in
  1.0 /. (cost8 +. (frac *. (cost4k -. cost8)))

let peak_rate ?(f = 1) proto ~size =
  match proto with
  | Rbft_concurrent ->
    (* Disjoint partitions turn the f+1 instances into added ordering
       capacity: at small requests peak throughput GROWS with the
       cluster (measured ×1.24 per extra fault tolerated), while large
       requests stay propagation-bandwidth-bound and follow the usual
       fan-out decline (measured ×0.81). The two anchors scale
       independently before interpolation. *)
    let pow k = k ** float_of_int (f - 1) in
    let rate8, rate4k = anchors proto in
    interpolate (rate8 *. pow 1.24, rate4k *. pow 0.81) ~size
  | Rbft | Rbft_udp | Aardvark | Spinning | Prime ->
    interpolate (anchors proto) ~size *. f_scale proto ~f

(* Slightly above peak for the pipelined RBFT (queues stay full and
   throughput holds); slightly below for the single-threaded baselines
   whose ingest path collapses under overload. *)
let saturating_rate ?(f = 1) proto ~size =
  let peak = peak_rate ~f proto ~size in
  match proto with
  | Rbft | Rbft_udp | Rbft_concurrent -> 1.05 *. peak
  | Aardvark ->
    (* Aardvark must keep enough headroom to absorb its regular view
       changes: recovery backlogs drain at (capacity - offered). *)
    0.70 *. peak
  | Spinning | Prime -> 0.90 *. peak
