(** Assemble a full RBFT deployment: engine, network, 3f+1 nodes and a
    set of clients. The entry point used by examples, tests and the
    benchmark harness. *)

open Dessim
open Bftapp

type t

val create :
  ?seed:int64 ->
  ?transport:Bftnet.Network.transport ->
  ?net_config:Bftnet.Network.config ->
  ?service:(unit -> Service.t) ->
  ?clients:int ->
  ?payload_size:int ->
  Params.t ->
  t
(** [create params] builds the system. [service] is instantiated once
    per node (defaults to {!Bftapp.Null_service}); [clients] endpoints
    are created (default 0 — add load later via {!client}). Nodes are
    started (monitoring armed). [net_config] overrides the whole
    network configuration (it wins over [transport]); the model checker
    passes a zero-jitter config so no per-send randomness survives. *)

val engine : t -> Engine.t
val network : t -> Messages.t Bftnet.Network.t
val params : t -> Params.t

val node : t -> int -> Node.t
val nodes : t -> Node.t array
val client : t -> int -> Client.t
val clients : t -> Client.t array

val describe : t -> (string * string) list
(** Stable textual identity of the deployment — protocol, n, f,
    instance count, client count, seed, transport — recorded into
    incident-bundle configs so a bundle is self-describing. *)

val master_primary : t -> int
(** The node currently acting as primary of node 0's master instance
    (re-read at incident-dump time, after any instance change). *)

val run_for : t -> Time.t -> unit
(** Advance virtual time by the given duration. *)

val total_executed : t -> int
(** Sum of requests executed by node 0 (all correct nodes execute the
    same sequence). *)

val throughput_between : t -> Time.t -> Time.t -> float
(** Executed requests per second at node 0 over a window. *)

val agreement_ok : t -> faulty:int list -> bool
(** All non-faulty nodes have identical execution digests. *)
