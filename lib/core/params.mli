(** All RBFT configuration in one place.

    Defaults follow the paper: n = 3f+1 nodes, f+1 protocol instances
    (proved necessary and sufficient in the companion report), the
    master instance is instance 0, and primaries are placed so that at
    most one primary runs per node. *)

open Dessim

type recovery =
  | Change_primaries
      (** the paper's mechanism: a coordinated view change on every
          instance (Section IV-D) *)
  | Switch_master
      (** the alternative design sketched in Section IV-A (future
          work): promote the fastest backup instance to master instead
          of changing primaries; implemented as an extension and
          compared in the ablation bench *)

type ordering =
  | Redundant
      (** the paper's design: every instance orders the full request
          stream, only the master's order executes *)
  | Concurrent
      (** bftrcc ({!Bftrcc}): each instance orders a disjoint
          client-id partition and a deterministic sequencer merges the
          per-instance streams into one global execution order, so the
          f+1 instances multiply throughput instead of replicating it *)

val ordering_name : ordering -> string

type t = {
  f : int;  (** faults tolerated; n = 3f+1, instances = f+1 *)
  monitoring_period : Time.t;
      (** how often nodes compute per-instance throughput (Sec. IV-C) *)
  delta : float;
      (** Δ: minimum acceptable ratio between master throughput and the
          best backup throughput *)
  lambda : Time.t;
      (** Λ: maximal acceptable per-request ordering latency on the
          master instance; [Time.zero] disables the check *)
  omega : Time.t;
      (** Ω: maximal acceptable difference between a client's average
          latency on the master and on the backups; [Time.zero]
          disables the check *)
  batch_size : int;
  batch_delay : Time.t;
  checkpoint_interval : int;
  watermark_window : int;
  order_full_requests : bool;
      (** ablation: make instances order whole requests as Aardvark
          does, instead of identifiers only *)
  flood_threshold : int;
      (** invalid messages from one peer within a monitoring period
          that trigger closing its NIC *)
  flood_close_time : Time.t;  (** how long a flooding peer's NIC stays closed *)
  recovery : recovery;
  post_vc_quiet : Time.t;
      (** recovery pause a freshly elected primary takes before fresh
          batches; zero for RBFT (its instance changes are rare and
          cheap) — used by the view-change ablation to model
          Aardvark-style recovery costs *)
  exec_cost : Time.t;  (** virtual execution cost of one request *)
  costs : Bftcrypto.Costmodel.t;
  ic_quorum : int option;
      (** override of the instance-change vote quorum; [None] means the
          correct 2f+1. Anything else is a deliberately {e broken}
          protocol used by the model checker's mutation self-test
          ({!Bftmc}) to prove the checker can detect quorum bugs —
          never set it in a real configuration *)
  ordering : ordering;  (** redundant (paper) or concurrent (bftrcc) *)
  noop_interval : Time.t;
      (** concurrent mode: an idle primary orders an empty no-op
          heartbeat batch after this long without a pre-prepare, so
          the round-robin merge never waits on a legitimately idle
          partition. Ignored in redundant mode *)
  propagate_batch : int;
      (** concurrent mode: max requests coalesced into one
          PROPAGATE-BATCH message (amortises per-message handling and
          the per-request MAC vector) *)
  propagate_batch_delay : Time.t;  (** flush timer for a partial propagate batch *)
  stall_change : Time.t;
      (** concurrent mode: head-of-line merge stall age after which a
          node votes an instance change (covers a crashed or isolated
          partition owner, which the Δ-ratio check cannot see) *)
  admission_budget : int;
      (** flow control ({!Bftflow.Admission}): max fresh client
          requests a node admits into its pipeline at once; past the
          budget it answers BUSY with a retry hint instead of letting
          the verification queue grow without bound. [0] (the default)
          disables the gate *)
  busy_retry_base : Time.t;
      (** floor of the retry hint carried by a BUSY reply, and the base
          of the client's exponential backoff. Must sit well above the
          admitted pipeline's turnover time (budget / throughput): a
          base far below it makes shed clients retry before any slot
          could have freed, and the re-shed traffic snowballs into a
          retry storm that starves the very stage the gate protects *)
  adaptive_batching : bool;
      (** flow control ({!Bftflow.Batcher}): primaries scale batch
          size/delay from live verification-stage backlog probes
          instead of the static [batch_size]/[batch_delay] *)
  exec_shards : int;
      (** sharded execution: number of parallel execution lanes for
          services that declare a shard key ({!Bftapp.Service});
          [<= 1] (the default) keeps the single serial execution
          stage *)
  reply_cache_window : int;
      (** replies remembered per client ({!Replycache}): the last
          [window] (rid, result) pairs. Per-connection FIFO delivery
          makes per-client execution in-order, so a small window
          (default 4) gives exact duplicate suppression at O(clients)
          memory instead of O(total requests ever executed) *)
  request_gc_age : Time.t;
      (** age after which an executed request's tracking state
          (PROPAGATE dedup votes, span ids) is swept from the request
          table on the monitoring tick. [0] (the default) disables the
          sweep, keeping the table append-only as before; population-
          scale runs enable it to bound the table at O(in-flight) *)
  monitoring_idle_prune : Time.t;
      (** drop a client's per-instance latency EMAs after this much
          inactivity, bounding the monitoring table under client churn.
          [0] (the default) disables pruning *)
}

val default : f:int -> t
(** f+1 instances, 100 ms monitoring period, Δ = 0.95, Λ and Ω
    disabled, batches of 64 with 1 ms delay, identifier ordering. *)

val n : t -> int
(** 3f+1. *)

val instances : t -> int
(** f+1. *)

val master_instance : int
(** Index of the master instance (0). *)

val primary_of : t -> instance:int -> view:int -> int
(** The node acting as primary of [instance] in [view]; the placement
    guarantees at most one primary per node
    ([node = (view + instance) mod n]). *)
