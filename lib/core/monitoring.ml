open Dessim

(* Per-client latency averages use an exponential moving average so
   that a long-lived client reflects recent primary behaviour. *)
let ema_alpha = 0.2

type t = {
  params : Params.t;
  mutable master : int;  (* current master instance *)
  counters : int array;  (* nbreqs, one per instance *)
  offered : int array;  (* requests offered per owning instance (bftrcc) *)
  mutable window_start : Time.t;
  (* client -> per-instance EMA latency in seconds *)
  client_lat : (int, float array) Hashtbl.t;
  (* Idle pruning ({!Params.monitoring_idle_prune} > 0): tick number of
     each client's last latency sample, so churned-away clients do not
     hold their EMA rows forever. Unused (empty) when pruning is off. *)
  client_seen : (int, int) Hashtbl.t;
  mutable tick_no : int;
  (* Bounded ring of past measurements: long-lived nodes tick every
     100 ms, so an unbounded list grows without limit. *)
  hist : (Time.t * float array) array;
  mutable hist_start : int;  (* index of the oldest measurement *)
  mutable hist_len : int;
  mutable recent : float array list;  (* last few windows, for the Δ verdict *)
  mutable offered_recent : float array list;  (* offered rates, same windows *)
}

let default_history_cap = 4096

let create ?(history_cap = default_history_cap) params =
  {
    params;
    master = Params.master_instance;
    counters = Array.make (Params.instances params) 0;
    offered = Array.make (Params.instances params) 0;
    window_start = Time.zero;
    client_lat = Hashtbl.create 64;
    client_seen = Hashtbl.create 64;
    tick_no = 0;
    hist = Array.make (Stdlib.max 1 history_cap) (Time.zero, [||]);
    hist_start = 0;
    hist_len = 0;
    recent = [];
    offered_recent = [];
  }

let history_cap t = Array.length t.hist

let record_measurement t m =
  let cap = Array.length t.hist in
  if t.hist_len = cap then begin
    (* Full: overwrite the oldest slot and advance the start. *)
    t.hist.(t.hist_start) <- m;
    t.hist_start <- (t.hist_start + 1) mod cap
  end
  else begin
    t.hist.((t.hist_start + t.hist_len) mod cap) <- m;
    t.hist_len <- t.hist_len + 1
  end

let note_ordered t ~instance ~count =
  t.counters.(instance) <- t.counters.(instance) + count

(* Concurrent (bftrcc) ordering: record that [count] requests whose
   partition [instance] owns were offered for ordering. The Δ verdict
   then compares each instance's *normalized* rate — observed rate
   divided by its share of the offered load — so a master that owns a
   light partition is not demoted for ordering legitimately little,
   and one that throttles its partition still is. Never calling this
   (redundant mode) leaves the verdict exactly as in the paper. *)
let note_offered t ~instance ~count =
  t.offered.(instance) <- t.offered.(instance) + count

let client_slot t client =
  match Hashtbl.find_opt t.client_lat client with
  | Some arr -> arr
  | None ->
    let arr = Array.make (Params.instances t.params) nan in
    Hashtbl.add t.client_lat client arr;
    arr

let note_latency t ~instance ~client lat =
  if t.params.Params.monitoring_idle_prune > Time.zero then
    Hashtbl.replace t.client_seen client t.tick_no;
  let arr = client_slot t client in
  let l = Time.to_sec_f lat in
  arr.(instance) <-
    (if Float.is_nan arr.(instance) then l
     else ((1.0 -. ema_alpha) *. arr.(instance)) +. (ema_alpha *. l))

type verdict = {
  rates : float array;
  master_rate : float;
  backup_rate : float;
  ratio : float;
  suspicious : bool;
  weights : float array;
      (* per-instance share of the offered load used to normalize the
         rates; uniform (1/instances) when no offered traffic was
         recorded, i.e. in redundant mode *)
}

(* Below this share of the offered load an instance's normalized rate
   is noise (division by a near-zero weight): it is left out of the
   backup average, and a master below it is never judged suspicious. *)
let min_weight_share = 0.05

(* Below this backup throughput (req/s) the Δ test is not applied:
   with no meaningful traffic the ratio is noise. *)
let min_meaningful_rate = 50.0

let prune_idle_clients t =
  let prune = t.params.Params.monitoring_idle_prune in
  if prune > Time.zero then begin
    let period = Time.to_sec_f t.params.Params.monitoring_period in
    let keep_ticks =
      if period <= 0.0 then 1
      else Stdlib.max 1 (int_of_float (ceil (Time.to_sec_f prune /. period)))
    in
    let stale =
      Hashtbl.fold
        (fun client seen acc ->
          if t.tick_no - seen > keep_ticks then client :: acc else acc)
        t.client_seen []
    in
    List.iter
      (fun client ->
        Hashtbl.remove t.client_lat client;
        Hashtbl.remove t.client_seen client)
      stale
  end

let tick t ~now =
  t.tick_no <- t.tick_no + 1;
  prune_idle_clients t;
  let window = Time.to_sec_f (Time.sub now t.window_start) in
  let per_window counters =
    Array.map
      (fun c -> if window <= 0.0 then 0.0 else float_of_int c /. window)
      counters
  in
  let rates = per_window t.counters in
  let offered_rates = per_window t.offered in
  Array.fill t.counters 0 (Array.length t.counters) 0;
  Array.fill t.offered 0 (Array.length t.offered) 0;
  t.window_start <- now;
  record_measurement t (now, rates);
  (* The Δ verdict uses a short moving average: single 100 ms windows
     carry several percent of sampling noise at moderate rates, which
     would make any Δ close to 1 fire spuriously. *)
  t.recent <- rates :: (match t.recent with a :: b :: _ -> [ a; b ] | l -> l);
  t.offered_recent <-
    offered_rates
    :: (match t.offered_recent with a :: b :: _ -> [ a; b ] | l -> l);
  let n_inst = Array.length rates in
  let average windows =
    let avg = Array.make n_inst 0.0 in
    List.iter
      (fun r -> Array.iteri (fun i v -> avg.(i) <- avg.(i) +. v) r)
      windows;
    let k = float_of_int (List.length windows) in
    Array.iteri (fun i v -> avg.(i) <- v /. k) avg;
    avg
  in
  let averaged = average t.recent in
  (* Partition weights: each instance's share of the offered load over
     the same moving window. With no offered traffic recorded
     (redundant mode, or a cold start) the weights are uniform and the
     normalization below is the identity. *)
  let offered_avg = average t.offered_recent in
  let offered_total = Array.fold_left ( +. ) 0.0 offered_avg in
  let uniform = 1.0 /. float_of_int n_inst in
  let weights =
    if offered_total <= 0.0 then Array.make n_inst uniform
    else Array.map (fun v -> v /. offered_total) offered_avg
  in
  let weighted = offered_total > 0.0 in
  (* Normalized rate: observed rate scaled as if every instance saw a
     uniform share of the load. Uniform weights make this the raw
     rate, so the redundant-mode Δ test is unchanged. *)
  let norm i =
    if weights.(i) < min_weight_share then Float.nan
    else averaged.(i) *. (uniform /. weights.(i))
  in
  let master_norm = norm t.master in
  let master_rate = averaged.(t.master) in
  let backups = ref 0 in
  let backup_norm =
    let sum = ref 0.0 in
    Array.iteri
      (fun i _ ->
        if i <> t.master then begin
          let v = norm i in
          if not (Float.is_nan v) then begin
            sum := !sum +. v;
            incr backups
          end
        end)
      averaged;
    if !backups = 0 then 0.0 else !sum /. float_of_int !backups
  in
  let backup_rate =
    (* Raw mean over all backups, reported for observability (the
       verdict's decision uses the normalized figures). *)
    if n_inst <= 1 then 0.0
    else begin
      let sum = ref 0.0 in
      Array.iteri (fun i r -> if i <> t.master then sum := !sum +. r) averaged;
      !sum /. float_of_int (n_inst - 1)
    end
  in
  let suspicious =
    (not (Float.is_nan master_norm))
    && backup_norm >= min_meaningful_rate
    && master_norm < t.params.Params.delta *. backup_norm
  in
  (* The quantity the Δ test compares against the threshold; NaN when
     the backups are idle and the test is not applied. *)
  let ratio =
    if Float.is_nan master_norm then Float.nan
    else if backup_norm > 0.0 then master_norm /. backup_norm
    else Float.nan
  in
  let master_rate =
    if weighted && not (Float.is_nan master_norm) then master_norm
    else master_rate
  in
  let backup_rate = if weighted then backup_norm else backup_rate in
  { rates; master_rate; backup_rate; ratio; suspicious; weights }

let lambda_violation t ~latency =
  t.params.Params.lambda > Time.zero && latency > t.params.Params.lambda

let omega_violation t ~client =
  if t.params.Params.omega = Time.zero then false
  else
    match Hashtbl.find_opt t.client_lat client with
    | None -> false
    | Some arr ->
      let master = arr.(t.master) in
      if Float.is_nan master then false
      else begin
        let sum = ref 0.0 and count = ref 0 in
        Array.iteri
          (fun i l ->
            if i <> t.master && not (Float.is_nan l) then begin
              sum := !sum +. l;
              incr count
            end)
          arr;
        if !count = 0 then false
        else
          let backup_avg = !sum /. float_of_int !count in
          master -. backup_avg > Time.to_sec_f t.params.Params.omega
      end

let client_avg_latency t ~instance ~client =
  match Hashtbl.find_opt t.client_lat client with
  | None -> None
  | Some arr ->
    if Float.is_nan arr.(instance) then None else Some (Time.of_sec_f arr.(instance))

let set_master t instance = t.master <- instance

let history t =
  let cap = Array.length t.hist in
  List.init t.hist_len (fun i -> t.hist.((t.hist_start + i) mod cap))

let latest t =
  if t.hist_len = 0 then None
  else Some t.hist.((t.hist_start + t.hist_len - 1) mod Array.length t.hist)

let client_count t = Hashtbl.length t.client_lat

let register_probes t ~owner =
  ignore
    (Bftcap.Footprint.register ~owner ~name:"monitoring.client_lat"
       ~entries:(fun () -> Hashtbl.length t.client_lat)
       ~root:(fun () -> Some (Obj.repr t.client_lat))
       ());
  ignore
    (Bftcap.Footprint.register ~owner ~name:"monitoring.history"
       ~entries:(fun () -> t.hist_len)
       ~root:(fun () -> Some (Obj.repr t.hist))
       ())
