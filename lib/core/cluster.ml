open Dessim
open Bftapp

type t = {
  engine : Engine.t;
  net : Messages.t Bftnet.Network.t;
  params : Params.t;
  nodes : Node.t array;
  clients : Client.t array;
  seed : int64;
  transport : Bftnet.Network.transport;
}

let create ?(seed = 42L) ?(transport = Bftnet.Network.Tcp) ?net_config
    ?(service = fun () -> Null_service.create ()) ?(clients = 0)
    ?(payload_size = 8) params =
  let engine = Engine.create ~seed () in
  let n = Params.n params in
  let cfg =
    match net_config with
    | Some cfg -> cfg
    | None -> { (Bftnet.Network.default_config ~nodes:n) with transport }
  in
  let net = Bftnet.Network.create engine cfg in
  let nodes =
    Array.init n (fun id -> Node.create engine net params ~id ~service:(service ()))
  in
  let clients =
    Array.init clients (fun id ->
        Client.create engine net params ~id ~payload_size ())
  in
  Array.iter Node.start nodes;
  (* Engine-level gauges are callback-backed: read only at sample or
     export time, and re-registering rebinds them to the newest
     cluster's engine. *)
  Bftmetrics.Registry.gauge_fn Bftmetrics.Registry.default
    "dessim_events_processed"
    ~help:"Events processed by the simulation engine" ~labels:[]
    (fun () -> float_of_int (Engine.events_processed engine));
  Bftmetrics.Registry.gauge_fn Bftmetrics.Registry.default "dessim_queue_size"
    ~help:"Pending events in the simulation engine queue" ~labels:[]
    (fun () -> float_of_int (Engine.queue_size engine));
  (* Cluster-level capacity probes: the engine's event heap and the
     population's aggregate reply-collection tables. Entries-only (no
     deep root) — both are spread across structures the per-node
     probes already cover or the engine owns privately. *)
  ignore
    (Bftcap.Footprint.register ~owner:"cluster" ~name:"engine.queue"
       ~entries:(fun () -> Engine.queue_size engine)
       ~root:(fun () -> None)
       ());
  ignore
    (Bftcap.Footprint.register ~owner:"cluster" ~name:"clients.pending"
       ~entries:(fun () ->
         Array.fold_left (fun acc c -> acc + Client.pending_count c) 0 clients)
       ~root:(fun () -> None)
       ());
  { engine; net; params; nodes; clients; seed; transport }

let engine t = t.engine
let network t = t.net
let params t = t.params
let node t i = t.nodes.(i)
let nodes t = t.nodes
let client t i = t.clients.(i)
let clients t = t.clients

(* Incident-bundle hooks: a stable textual identity for the run
   (recorded once at doctor attach) and the node currently acting as
   master primary (re-read at dump time, after any instance change). *)
let describe t =
  [
    ("protocol", "rbft");
    ("ordering", Params.ordering_name t.params.Params.ordering);
    ("n", string_of_int (Params.n t.params));
    ("f", string_of_int t.params.Params.f);
    ("instances", string_of_int (Params.instances t.params));
    ("clients", string_of_int (Array.length t.clients));
    ("seed", Int64.to_string t.seed);
    ( "transport",
      match t.transport with Bftnet.Network.Tcp -> "tcp" | Udp -> "udp" );
  ]

let master_primary t =
  let node0 = t.nodes.(0) in
  let mi = Node.master_instance node0 in
  let view = Pbftcore.Replica.view (Node.replica node0 ~instance:mi) in
  Params.primary_of t.params ~instance:mi ~view

let run_for t d =
  let target = Dessim.Time.add (Engine.now t.engine) d in
  Engine.run ~until:target t.engine

(* Measure system progress at the most advanced node: a Byzantine or
   lagging node must not distort throughput readings. *)
let most_advanced t =
  Array.fold_left
    (fun best node ->
      if Node.executed_count node > Node.executed_count best then node else best)
    t.nodes.(0) t.nodes

let total_executed t = Node.executed_count (most_advanced t)

let throughput_between t start stop =
  Bftmetrics.Throughput.rate_between
    (Node.executed_counter (most_advanced t))
    start stop

let agreement_ok t ~faulty =
  (* A node that state-transferred adopted checkpointed state wholesale
     instead of executing the skipped batches; in a real deployment the
     application snapshot travels with the checkpoint, so the node is
     consistent but its local execution log is shorter. In redundant
     mode only the master instance executes, so only its transfers
     matter; in concurrent mode every instance feeds the merge. *)
  let skips_agreement node =
    match Node.ordering node with
    | Params.Redundant ->
      Pbftcore.Replica.state_transfers
        (Node.replica node ~instance:(Node.master_instance node))
      <> 0
    | Params.Concurrent ->
      let skips = ref false in
      for i = 0 to Params.instances t.params - 1 do
        if Pbftcore.Replica.state_transfers (Node.replica node ~instance:i) <> 0
        then skips := true
      done;
      !skips
  in
  let correct =
    Array.to_list t.nodes
    |> List.filter (fun node ->
           (not (List.mem (Node.id node) faulty)) && not (skips_agreement node))
  in
  match correct with
  | [] -> true
  | first :: rest ->
    (* Digests must agree up to the shortest execution prefix; since
       executions advance together in quiescent states, compare counts
       first and digests when equal. *)
    List.for_all
      (fun node ->
        Node.executed_count node = Node.executed_count first
        && String.equal (Node.execution_digest node) (Node.execution_digest first))
      rest
