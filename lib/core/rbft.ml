(** RBFT: Redundant Byzantine Fault Tolerance (Aublin, Ben Mokhtar,
    Quéma — ICDCS 2013).

    The library runs f+1 parallel PBFT-style ordering instances on
    3f+1 nodes; only the master instance's order is executed, and the
    backup instances let every node monitor the master primary's
    throughput and fairness. A slow or unfair master primary triggers
    a coordinated protocol instance change.

    Entry point: {!Cluster.create} with {!Params.default}. *)

module Params = Params
module Messages = Messages
module Monitoring = Monitoring
module Replycache = Replycache
module Node = Node
module Client = Client
module Cluster = Cluster
module Attacks = Attacks
module Codec = Codec
