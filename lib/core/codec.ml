open Bftnet
open Pbftcore.Types

let tag_request = 10
let tag_propagate = 11
let tag_instance = 12
let tag_instance_change = 13
let tag_reply = 14
let tag_propagate_batch = 15
let tag_busy = 16

let encode_request w (r : Messages.request) =
  Wire.Writer.u32 w r.desc.id.client;
  Wire.Writer.u64 w r.desc.id.rid;
  Wire.Writer.string w r.desc.op;
  (* The signature slot: a validity marker padded to signature size. *)
  Wire.Writer.u8 w (if r.sig_valid then 1 else 0);
  Wire.Writer.bytes w (String.make (Bftcrypto.Keys.signature_size - 1) '\000');
  Wire.Writer.list w (Wire.Writer.u32 w) r.mac_invalid_for

let decode_request r : Messages.request =
  let client = Wire.Reader.u32 r in
  let rid = Wire.Reader.u64 r in
  let op = Wire.Reader.string r in
  let sig_valid = Wire.Reader.u8 r = 1 in
  let (_ : string) = Wire.Reader.bytes r (Bftcrypto.Keys.signature_size - 1) in
  let mac_invalid_for = Wire.Reader.list r Wire.Reader.u32 in
  {
    Messages.desc = desc_of_op ~client ~rid op;
    sig_valid;
    mac_invalid_for;
  }

let encode ~order_full_requests msg =
  let w = Wire.Writer.create () in
  (match msg with
   | Messages.Request req ->
     Wire.Writer.u8 w tag_request;
     encode_request w req
   | Messages.Propagate { req; from; junk } ->
     Wire.Writer.u8 w tag_propagate;
     Wire.Writer.u32 w from;
     Wire.Writer.u8 w (if junk then 1 else 0);
     if junk then Wire.Writer.varint w req.Messages.desc.op_size
     else encode_request w req
   | Messages.Propagate_batch { reqs; owner; from } ->
     Wire.Writer.u8 w tag_propagate_batch;
     Wire.Writer.u8 w owner;
     Wire.Writer.u32 w from;
     Wire.Writer.list w (encode_request w) reqs
   | Messages.Instance { instance; msg } ->
     Wire.Writer.u8 w tag_instance;
     Wire.Writer.u8 w instance;
     Wire.Writer.string w (Pbftcore.Codec.encode ~order_full_requests msg)
   | Messages.Instance_change { cpi; node } ->
     Wire.Writer.u8 w tag_instance_change;
     Wire.Writer.u64 w cpi;
     Wire.Writer.u32 w node
   | Messages.Reply { id; result; node } ->
     Wire.Writer.u8 w tag_reply;
     Wire.Writer.u32 w id.client;
     Wire.Writer.u64 w id.rid;
     Wire.Writer.string w result;
     Wire.Writer.u32 w node
   | Messages.Busy { id; retry_after; node } ->
     Wire.Writer.u8 w tag_busy;
     Wire.Writer.u32 w id.client;
     Wire.Writer.u64 w id.rid;
     (* Virtual time is an integer nanosecond count. *)
     Wire.Writer.u64 w retry_after;
     Wire.Writer.u32 w node);
  Wire.Writer.contents w

let decode ~order_full_requests s =
  match
    let r = Wire.Reader.of_string s in
    let tag = Wire.Reader.u8 r in
    let msg =
      if tag = tag_request then Some (Messages.Request (decode_request r))
      else if tag = tag_propagate then begin
        let from = Wire.Reader.u32 r in
        let junk = Wire.Reader.u8 r = 1 in
        if junk then begin
          let op_size = Wire.Reader.varint r in
          let desc = { (desc_of_op ~client:(-1) ~rid:from "junk") with op_size } in
          Some
            (Messages.Propagate
               { req = { desc; sig_valid = false; mac_invalid_for = [] }; from; junk })
        end
        else
          let req = decode_request r in
          Some (Messages.Propagate { req; from; junk })
      end
      else if tag = tag_propagate_batch then begin
        let owner = Wire.Reader.u8 r in
        let from = Wire.Reader.u32 r in
        let reqs = Wire.Reader.list r decode_request in
        Some (Messages.Propagate_batch { reqs; owner; from })
      end
      else if tag = tag_instance then begin
        let instance = Wire.Reader.u8 r in
        let inner = Wire.Reader.string r in
        match Pbftcore.Codec.decode ~order_full_requests inner with
        | Some msg -> Some (Messages.Instance { instance; msg })
        | None -> None
      end
      else if tag = tag_instance_change then begin
        let cpi = Wire.Reader.u64 r in
        let node = Wire.Reader.u32 r in
        Some (Messages.Instance_change { cpi; node })
      end
      else if tag = tag_reply then begin
        let client = Wire.Reader.u32 r in
        let rid = Wire.Reader.u64 r in
        let result = Wire.Reader.string r in
        let node = Wire.Reader.u32 r in
        Some (Messages.Reply { id = { client; rid }; result; node })
      end
      else if tag = tag_busy then begin
        let client = Wire.Reader.u32 r in
        let rid = Wire.Reader.u64 r in
        let retry_after = Wire.Reader.u64 r in
        let node = Wire.Reader.u32 r in
        Some (Messages.Busy { id = { client; rid }; retry_after; node })
      end
      else None
    in
    match msg with
    | Some _ when Wire.Reader.at_end r -> msg
    | Some _ | None -> None
  with
  | v -> v
  | exception Wire.Reader.Truncated -> None
