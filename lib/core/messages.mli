(** Node-level messages of RBFT (Figure 5 of the paper), carrying the
    per-instance ordering traffic as a payload.

    Authentication is represented by validity flags: the simulator
    charges the CPU cost of MAC/signature checks through the cost
    model, and the flags say what the check would conclude. Faulty
    clients and nodes produce messages with [false] flags (invalid
    signatures, junk floods); correct ones always produce [true]. *)

open Pbftcore.Types

type request = {
  desc : request_desc;
  sig_valid : bool;  (** the client signature verifies *)
  mac_invalid_for : int list;
      (** nodes for which the MAC authenticator entry is broken — the
          selective-verification trick of worst-attack-1, action (i) *)
}

type t =
  | Request of request  (** client → all nodes (step 1) *)
  | Propagate of { req : request; from : int; junk : bool }
      (** node → nodes (step 2); [junk] marks flood padding whose MAC
          can never verify *)
  | Propagate_batch of { reqs : request list; owner : int; from : int }
      (** concurrent (bftrcc) ordering: all of a node's pending
          PROPAGATEs for the partition [owner] owns, authenticated by
          one batch MAC authenticator instead of per-request vectors *)
  | Instance of { instance : int; msg : Pbftcore.Messages.t }
      (** replica → replica of the same instance (steps 3–5) *)
  | Instance_change of { cpi : int; node : int }
      (** monitoring protocol (Section IV-D) *)
  | Reply of { id : request_id; result : string; node : int }
      (** node → client (step 6) *)
  | Busy of { id : request_id; retry_after : Dessim.Time.t; node : int }
      (** node → client backpressure: the admission gate
          ({!Bftflow.Admission}) refused the request because the node's
          in-flight budget is exhausted; [retry_after] hints when a
          retry can be admitted. Clients treat it as a shed, not a
          result: f+1 distinct BUSYs trigger a backed-off retry of the
          same request id *)

val request_wire_size : request -> n:int -> int
(** Signed request + MAC authenticator for the [n] nodes. *)

val wire_size : t -> n:int -> order_full_requests:bool -> int

val type_tag : t -> string
