open Dessim
open Bftcrypto
open Bftnet
open Pbftcore.Types

type behaviour = {
  mutable sig_valid : bool;
  mutable mac_invalid_for : int list;
  mutable heavy : bool;
  mutable send_only_to : int list;
}

type pending = {
  sent_at : Time.t;
  span : int;  (* root span id of the traced request; -1 if unsampled *)
  mutable replies : (int * string) list;  (* node, result *)
  mutable done_ : bool;
}

type t = {
  engine : Engine.t;
  net : Messages.t Network.t;
  params : Params.t;
  id : int;
  payload_size : int;
  behaviour : behaviour;
  mutable rid : int;
  mutable rate : float;
  mutable rate_epoch : int;
  mutable closed_loop : int;  (* outstanding-request window; 0 = open loop *)
  pending : pending Request_id_table.t;
  mutable sent : int;
  mutable completed : int;
  latencies : Bftmetrics.Hist.t;
  completions : Bftmetrics.Throughput.t;
  rng : Rng.t;
}

let id t = t.id
let behaviour t = t.behaviour
let sent t = t.sent
let completed t = t.completed
let latencies t = t.latencies
let completion_counter t = t.completions

let rec on_reply t (id : request_id) ~node ~result =
  match Request_id_table.find_opt t.pending id with
  | None -> ()
  | Some p when p.done_ -> ()
  | Some p ->
    if not (List.mem_assoc node p.replies) then begin
      p.replies <- (node, result) :: p.replies;
      let matching =
        List.length (List.filter (fun (_, r) -> String.equal r result) p.replies)
      in
      if matching >= t.params.Params.f + 1 then begin
        p.done_ <- true;
        t.completed <- t.completed + 1;
        let now = Engine.now t.engine in
        Bftmetrics.Hist.add t.latencies (Time.to_sec_f (Time.sub now p.sent_at));
        Bftmetrics.Throughput.record t.completions ~now;
        Bftspan.Tracer.finish p.span ~t1:now;
        Request_id_table.remove t.pending id;
        (* Closed loop: each completion funds the next request. *)
        if t.closed_loop > 0 then send_one t
      end
    end

and send_one t =
  let req = make_request t in
  let msg = Messages.Request req in
  let size = Messages.request_wire_size req ~n:(Params.n t.params) in
  let now = Engine.now t.engine in
  let span =
    if Bftspan.Tracer.sampled ~rid:req.Messages.desc.id.rid then
      Bftspan.Tracer.root ~client:t.id ~rid:req.Messages.desc.id.rid ~node:(-1)
        ~instance:(-1) ~tag:Bftspan.Tag.Client ~t0:now
    else -1
  in
  Request_id_table.replace t.pending req.Messages.desc.id
    { sent_at = now; span; replies = []; done_ = false };
  t.sent <- t.sent + 1;
  let targets =
    match t.behaviour.send_only_to with
    | [] -> List.init (Params.n t.params) (fun i -> i)
    | subset -> subset
  in
  List.iter
    (fun node ->
      Network.send ~span t.net ~src:(Principal.client t.id)
        ~dst:(Principal.node node) ~size msg)
    targets

and make_request t =
  t.rid <- t.rid + 1;
  let payload = String.make t.payload_size 'x' in
  let op =
    if t.behaviour.heavy then Bftapp.Null_service.heavy_op ~payload
    else Bftapp.Null_service.normal_op ~payload
  in
  let desc = desc_of_op ~client:t.id ~rid:t.rid op in
  {
    Messages.desc;
    sig_valid = t.behaviour.sig_valid;
    mac_invalid_for = t.behaviour.mac_invalid_for;
  }

let send_burst t ~count =
  for _ = 1 to count do
    send_one t
  done

let set_closed_loop t ~outstanding =
  t.rate <- 0.0;
  t.rate_epoch <- t.rate_epoch + 1;
  t.closed_loop <- outstanding;
  (* Top up to the window, counting requests already in flight. *)
  let in_flight = Request_id_table.length t.pending in
  for _ = 1 to Stdlib.max 0 (outstanding - in_flight) do
    send_one t
  done

let create engine net params ~id ?(payload_size = 8) () =
  let t =
    {
      engine;
      net;
      params;
      id;
      payload_size;
      behaviour =
        { sig_valid = true; mac_invalid_for = []; heavy = false; send_only_to = [] };
      rid = 0;
      rate = 0.0;
      rate_epoch = 0;
      closed_loop = 0;
      pending = Request_id_table.create 256;
      sent = 0;
      completed = 0;
      latencies = Bftmetrics.Hist.create ();
      completions = Bftmetrics.Throughput.create ();
      rng = Engine.fresh_rng engine;
    }
  in
  Network.register_client net id (fun d ->
      if d.Network.corrupted then ()  (* failed authenticator: ignore *)
      else
      match d.Network.payload with
      | Messages.Reply { id; result; node } -> on_reply t id ~node ~result
      | Messages.Request _ | Messages.Propagate _ | Messages.Propagate_batch _
      | Messages.Instance _ | Messages.Instance_change _ ->
        ());
  t

let set_rate t r =
  t.closed_loop <- 0;
  t.rate <- r;
  t.rate_epoch <- t.rate_epoch + 1;
  let epoch = t.rate_epoch in
  if r > 0.0 then begin
    let rec loop () =
      if t.rate_epoch = epoch && t.rate > 0.0 then begin
        let gap = Rng.exponential t.rng ~mean:(1.0 /. t.rate) in
        ignore
          (Engine.after t.engine (Time.of_sec_f gap) (fun () ->
               if t.rate_epoch = epoch && t.rate > 0.0 then begin
                 send_one t;
                 loop ()
               end))
      end
    in
    loop ()
  end
