open Dessim
open Bftcrypto
open Bftnet
open Pbftcore.Types

type behaviour = {
  mutable sig_valid : bool;
  mutable mac_invalid_for : int list;
  mutable heavy : bool;
  mutable send_only_to : int list;
  mutable make_op : (int -> string) option;
}

type pending = {
  sent_at : Time.t;
  span : int;  (* root span id of the traced request; -1 if unsampled *)
  req : Messages.request;  (* retained for BUSY-triggered retries *)
  mutable replies : (int * string) list;  (* node, result *)
  mutable done_ : bool;
  (* Backpressure state: distinct nodes that answered BUSY since the
     last (re)send, the largest retry hint among them, and how many
     retries happened (drives the exponential backoff). *)
  mutable busy_from : int list;
  mutable busy_hint : Time.t;
  mutable attempt : int;
}

type t = {
  engine : Engine.t;
  net : Messages.t Network.t;
  params : Params.t;
  id : int;
  payload_size : int;
  behaviour : behaviour;
  mutable rid : int;
  mutable rate : float;
  mutable rate_epoch : int;
  mutable closed_loop : int;  (* outstanding-request window; 0 = open loop *)
  pending : pending Request_id_table.t;
  mutable sent : int;
  mutable completed : int;
  latencies : Bftmetrics.Hist.t;
  completions : Bftmetrics.Throughput.t;
  rng : Rng.t;
  (* Lazily created on the first BUSY so runs that never shed draw
     exactly the same random streams as before the gate existed. *)
  mutable backoff : Bftflow.Backoff.t option;
  mutable busy_replies : int;
  mutable retries : int;
}

let id t = t.id
let behaviour t = t.behaviour
let sent t = t.sent
let completed t = t.completed
let latencies t = t.latencies
let pending_count t = Request_id_table.length t.pending
let completion_counter t = t.completions
let busy_replies t = t.busy_replies
let retries t = t.retries

let backoff_of t =
  match t.backoff with
  | Some b -> b
  | None ->
    let b =
      Bftflow.Backoff.create ~base:t.params.Params.busy_retry_base
        (Rng.split t.rng)
    in
    t.backoff <- Some b;
    b

let rec on_reply t (id : request_id) ~node ~result =
  match Request_id_table.find_opt t.pending id with
  | None -> ()
  | Some p when p.done_ -> ()
  | Some p ->
    if not (List.mem_assoc node p.replies) then begin
      p.replies <- (node, result) :: p.replies;
      let matching =
        List.length (List.filter (fun (_, r) -> String.equal r result) p.replies)
      in
      if matching >= t.params.Params.f + 1 then begin
        p.done_ <- true;
        t.completed <- t.completed + 1;
        let now = Engine.now t.engine in
        Bftmetrics.Hist.add t.latencies (Time.to_sec_f (Time.sub now p.sent_at));
        Bftmetrics.Throughput.record t.completions ~now;
        Bftspan.Tracer.finish p.span ~t1:now;
        Request_id_table.remove t.pending id;
        (* Closed loop: each completion funds the next request. *)
        if t.closed_loop > 0 then send_one t
      end
    end

and transmit t ~span (req : Messages.request) =
  let msg = Messages.Request req in
  let size = Messages.request_wire_size req ~n:(Params.n t.params) in
  let targets =
    match t.behaviour.send_only_to with
    | [] -> List.init (Params.n t.params) (fun i -> i)
    | subset -> subset
  in
  List.iter
    (fun node ->
      Network.send ~span t.net ~src:(Principal.client t.id)
        ~dst:(Principal.node node) ~size msg)
    targets

(* Retransmit watchdog, armed only when the admission gate exists
   (zero scheduled events otherwise, so gate-off runs replay
   identically). BUSY-triggered retries need f+1 distinct refusals,
   but admission decisions are independent per node: a request can be
   shed by fewer than f+1 nodes yet still miss its f+1 PROPAGATE
   quorum when the admitting nodes include faulty non-propagating
   ones — wedged forever while holding admission slots at every node
   that accepted it. The watchdog retransmits unanswered requests on a
   doubling timer; retransmits are idempotent (admitted nodes treat
   them as duplicates) and a fresh competitor for a slot everywhere
   the request was shed. *)
and arm_watchdog t (p : pending) ~rto =
  ignore
    (Engine.after t.engine rto (fun () ->
         if not p.done_ then begin
           t.retries <- t.retries + 1;
           transmit t ~span:p.span p.req;
           let cap = Time.mul_f t.params.Params.busy_retry_base 128.0 in
           arm_watchdog t p ~rto:(Time.min cap (Time.mul_f rto 2.0))
         end))

and send_one t =
  let req = make_request t in
  let now = Engine.now t.engine in
  let span =
    if Bftspan.Tracer.sampled ~rid:req.Messages.desc.id.rid then
      Bftspan.Tracer.root ~client:t.id ~rid:req.Messages.desc.id.rid ~node:(-1)
        ~instance:(-1) ~tag:Bftspan.Tag.Client ~t0:now
    else -1
  in
  let p =
    {
      sent_at = now;
      span;
      req;
      replies = [];
      done_ = false;
      busy_from = [];
      busy_hint = Time.zero;
      attempt = 0;
    }
  in
  Request_id_table.replace t.pending req.Messages.desc.id p;
  t.sent <- t.sent + 1;
  transmit t ~span req;
  if t.params.Params.admission_budget > 0 then
    arm_watchdog t p ~rto:(Time.mul_f t.params.Params.busy_retry_base 16.0)

and make_request t =
  t.rid <- t.rid + 1;
  let op =
    match t.behaviour.make_op with
    | Some f -> f t.rid
    | None ->
      let payload = String.make t.payload_size 'x' in
      if t.behaviour.heavy then Bftapp.Null_service.heavy_op ~payload
      else Bftapp.Null_service.normal_op ~payload
  in
  let desc = desc_of_op ~client:t.id ~rid:t.rid op in
  {
    Messages.desc;
    sig_valid = t.behaviour.sig_valid;
    mac_invalid_for = t.behaviour.mac_invalid_for;
  }

(* BUSY backpressure: a single refusal proves nothing (a Byzantine node
   can always say BUSY), but f+1 distinct refusals include one from a
   correct node — the request was genuinely shed somewhere and may
   never reach the f+1 PROPAGATE quorum, so retry it. The retry reuses
   the same request id: nodes that admitted the original treat it as a
   duplicate (or re-reply from the executed table), so retries are
   idempotent. The wait is the server hint floored exponential backoff
   of {!Bftflow.Backoff}, drawn from this client's own stream for
   determinism. *)
let on_busy t (id : request_id) ~node ~retry_after =
  match Request_id_table.find_opt t.pending id with
  | None -> ()
  | Some p when p.done_ -> ()
  | Some p ->
    if not (List.mem node p.busy_from) then begin
      p.busy_from <- node :: p.busy_from;
      p.busy_hint <- Time.max p.busy_hint retry_after;
      t.busy_replies <- t.busy_replies + 1;
      if List.length p.busy_from >= t.params.Params.f + 1 then begin
        let delay =
          Bftflow.Backoff.delay (backoff_of t) ~attempt:p.attempt
            ~hint:p.busy_hint
        in
        p.attempt <- p.attempt + 1;
        p.busy_from <- [];
        p.busy_hint <- Time.zero;
        t.retries <- t.retries + 1;
        let now = Engine.now t.engine in
        (* Attribute the idle wait to its own tag so the latency
           breakdown shows backoff instead of blaming net transit. *)
        ignore
          (Bftspan.Tracer.span ~parent:p.span ~tag:Bftspan.Tag.Backoff
             ~node:(-1) ~instance:(-1) ~t0:now ~t1:(Time.add now delay));
        ignore
          (Engine.after t.engine delay (fun () ->
               if not p.done_ then transmit t ~span:p.span p.req))
      end
    end

let send_burst t ~count =
  for _ = 1 to count do
    send_one t
  done

let set_closed_loop t ~outstanding =
  t.rate <- 0.0;
  t.rate_epoch <- t.rate_epoch + 1;
  t.closed_loop <- outstanding;
  (* Top up to the window, counting requests already in flight. *)
  let in_flight = Request_id_table.length t.pending in
  for _ = 1 to Stdlib.max 0 (outstanding - in_flight) do
    send_one t
  done

let create engine net params ~id ?(payload_size = 8) () =
  let t =
    {
      engine;
      net;
      params;
      id;
      payload_size;
      behaviour =
        {
          sig_valid = true;
          mac_invalid_for = [];
          heavy = false;
          send_only_to = [];
          make_op = None;
        };
      rid = 0;
      rate = 0.0;
      rate_epoch = 0;
      closed_loop = 0;
      pending = Request_id_table.create 8;  (* grows on demand; 10^5-client populations exist *)
      sent = 0;
      completed = 0;
      latencies = Bftmetrics.Hist.create ();
      completions = Bftmetrics.Throughput.create ();
      rng = Engine.fresh_rng engine;
      backoff = None;
      busy_replies = 0;
      retries = 0;
    }
  in
  Network.register_client net id (fun d ->
      if d.Network.corrupted then ()  (* failed authenticator: ignore *)
      else
      match d.Network.payload with
      | Messages.Reply { id; result; node } -> on_reply t id ~node ~result
      | Messages.Busy { id; retry_after; node } ->
        on_busy t id ~node ~retry_after
      | Messages.Request _ | Messages.Propagate _ | Messages.Propagate_batch _
      | Messages.Instance _ | Messages.Instance_change _ ->
        ());
  t

let set_rate t r =
  t.closed_loop <- 0;
  t.rate <- r;
  t.rate_epoch <- t.rate_epoch + 1;
  let epoch = t.rate_epoch in
  if r > 0.0 then begin
    let rec loop () =
      if t.rate_epoch = epoch && t.rate > 0.0 then begin
        let gap = Rng.exponential t.rng ~mean:(1.0 /. t.rate) in
        ignore
          (Engine.after t.engine (Time.of_sec_f gap) (fun () ->
               if t.rate_epoch = epoch && t.rate > 0.0 then begin
                 send_one t;
                 loop ()
               end))
      end
    in
    loop ()
  end
